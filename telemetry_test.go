package vax780

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestTelemetryIntervalInvariant is the acceptance check of the live
// telemetry layer: over a full composite run, the summed per-interval
// histogram cycles equal the composite histogram's total cycles — the
// board seen as a time series recomposes exactly to the board seen as
// the paper's averages.
func TestTelemetryIntervalInvariant(t *testing.T) {
	tel := NewTelemetry(2000, 0)
	res, err := Run(RunConfig{
		Instructions: 2000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
		Telemetry:    tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tel.IntervalCycleTotal(), res.Histogram().TotalCycles(); got != want {
		t.Errorf("interval cycle sum = %d, composite histogram total = %d", got, want)
	}

	c := tel.Counters()
	if c.Cycles != res.Histogram().TotalCycles() {
		t.Errorf("live cycle counter = %d, histogram total = %d",
			c.Cycles, res.Histogram().TotalCycles())
	}
	var instrs uint64
	for _, w := range res.PerWorkload {
		instrs += w.Instructions
	}
	if c.Instrs != instrs {
		t.Errorf("live instruction counter = %d, per-workload sum = %d", c.Instrs, instrs)
	}
	if c.Intervals == 0 {
		t.Error("no intervals recorded")
	}

	rows := tel.IntervalRows()
	if len(rows) != int(c.Intervals) {
		t.Errorf("%d rows for %d rolled intervals", len(rows), c.Intervals)
	}
	var rowInstrs uint64
	for _, r := range rows {
		rowInstrs += r.Instructions
	}
	// Row instruction counts come from the IRD bucket of each interval
	// histogram; their sum is the composite's instruction count.
	if rowInstrs != res.Instructions() {
		t.Errorf("row instruction sum = %d, composite = %d", rowInstrs, res.Instructions())
	}
}

// TestTelemetryAttachmentIsPassive verifies the paper's core discipline:
// the attached monitor must not perturb the measurement. A run with the
// full telemetry stack enabled produces bit-identical results.
func TestTelemetryAttachmentIsPassive(t *testing.T) {
	cfg := RunConfig{Instructions: 1500, Workloads: []WorkloadID{TimesharingB}}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = NewTelemetry(1000, 100000)
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *plain.Histogram() != *instrumented.Histogram() {
		t.Error("telemetry perturbed the histogram")
	}
	if plain.CPI() != instrumented.CPI() {
		t.Errorf("CPI changed: %g plain, %g instrumented", plain.CPI(), instrumented.CPI())
	}
}

func TestTelemetryExportsAndHandler(t *testing.T) {
	tel := NewTelemetry(1000, 200000)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	// Serve while the run executes — the live-monitor mode.
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		_, runErr = Run(RunConfig{
			Instructions: 2000,
			Workloads:    []WorkloadID{TimesharingA},
			Telemetry:    tel,
		})
	}()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}

	r, err := httpGet(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r, "vax780_cycles_total") {
		t.Error("metrics endpoint lacks cycle counter")
	}

	var csv, js, trace bytes.Buffer
	if err := tel.WriteIntervalsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "interval,start_cycle") {
		t.Error("CSV header missing")
	}
	if err := tel.WriteIntervalsJSON(&js); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatalf("interval JSON invalid: %v", err)
	}
	if err := tel.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(trace.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if _, ok := tf["traceEvents"].([]any); !ok {
		t.Error("trace lacks traceEvents array")
	}
}

func TestDescribeTelemetryProbes(t *testing.T) {
	d := DescribeTelemetryProbes()
	for _, want := range []string{"ebox.tick", "Cycle", "Recorder", "Tracer"} {
		if !strings.Contains(d, want) {
			t.Errorf("probe description lacks %q", want)
		}
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
