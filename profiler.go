package vax780

// The public face of the host-time profiler (internal/prof): attach a
// Profiler to RunConfig and the run attributes its own wall-clock
// nanoseconds onto the micro-architectural structure it simulates —
// control-store flows, straight-line segments, Table 8 cycle classes —
// exactly the way the paper's board attributes the 780's elapsed time
// onto its microcode. The in-run engine samples (every stride-th cycle's
// micro-PC, one nil test per cycle when detached); the exact engine
// prices the run's bit-exact composite histogram after the fact through
// Results.Profile. Both report the same Profile format.

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"

	"vax780/internal/prof"
	"vax780/internal/runlog"
	"vax780/internal/ulint"
	"vax780/internal/upc"
)

// Profile is a host-time attribution report: flows hottest first, with
// cycles, Table 8 class splits, shares, and (when priced) host ns.
type Profile = prof.Profile

// FlowCost is one flow's row of a Profile.
type FlowCost = prof.FlowCost

// Calibration prices simulated cycles in host ns per Table 8 class;
// solve one with vaxprof or prof.Solve, or load one with
// ReadCalibration.
type Calibration = prof.Calibration

// Span is one node of the profiler's wall-time tree (sweep → run →
// workload → flow).
type Span = prof.Span

// JITTarget is one fusible straight-line segment of the JIT targeting
// list, ranked by host ns × fusibility.
type JITTarget = prof.Target

// ReadCalibration loads a calibration written by vaxprof -calib-out.
func ReadCalibration(r io.Reader) (*Calibration, error) {
	return prof.ReadCalibration(r)
}

// flowIndex returns the flow index of the shared control store — the
// per-ROM cached analysis (ulint.IndexFor) the prof sampler, vaxlint,
// and the fusion engine all classify against, so the three cannot
// disagree about where a flow or segment begins.
func flowIndex() *ulint.FlowIndex {
	return ulint.IndexFor(machineROM())
}

// Profiler attaches the sampling host-time profiler to a run (set
// RunConfig.Profiler). While the run executes, each workload machine
// carries a micro-PC sampler; at every workload merge the profiler
// folds the samples in (in workload order, so the sampled histogram is
// bit-exact across Parallelism) and publishes a cumulative Profile for
// the telemetry /prof endpoint and vaxtop. After Run returns, Profile
// holds the whole run and SpanTree the measured wall-time hierarchy.
//
// A Profiler instance serves one Run at a time; Run resets it on entry,
// so reusing one across sequential runs is fine, sharing one across
// concurrent runs is not.
type Profiler struct {
	// SampleStride is the sampling period in cycles (default
	// upc.DefaultSampleStride = 64; the enabled overhead shrinks with
	// larger strides).
	SampleStride int

	// Calibration, when non-nil, is recorded on the profile so consumers
	// can price sampled cycles; the sampling engine itself distributes
	// measured wall time by share and does not need one.
	Calibration *Calibration

	// MaxFlows bounds the hot-flow lists in the ledger event and the
	// span tree (default 10; the full flow set is always in Profile).
	MaxFlows int

	// Trace, when non-nil, receives the span tree as Chrome trace-event
	// JSON (chrome://tracing, Perfetto) when the run finishes.
	Trace io.Writer

	// Spans, when non-nil, receives the span tree as JSONL rows — one
	// span per line with its slash-joined path — alongside the runlog.
	Spans io.Writer

	mu      sync.Mutex
	clock   *runlog.Clock
	agg     upc.Histogram // summed sampled counts, merged in workload order
	samples uint64
	wallNs  float64      // summed measured workload durations
	wl      []*prof.Span // workload spans in merge order
	root    *prof.Span   // set by finishRun
	latest  atomic.Pointer[prof.Profile]
}

// stride resolves the sampling period.
func (p *Profiler) stride() int {
	if p.SampleStride > 0 {
		return p.SampleStride
	}
	return upc.DefaultSampleStride
}

// maxFlows resolves the hot-flow list bound.
func (p *Profiler) maxFlows() int {
	if p.MaxFlows > 0 {
		return p.MaxFlows
	}
	return 10
}

// begin resets the profiler for a new run and starts its wall clock.
func (p *Profiler) begin() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock = runlog.NewClock()
	p.agg = upc.Histogram{}
	p.samples = 0
	p.wallNs = 0
	p.wl = nil
	p.root = nil
	p.latest.Store(nil)
}

// newSampler builds one workload machine's sampler.
func (p *Profiler) newSampler() *upc.Sampler {
	return upc.NewSampler(p.stride())
}

// nowNs reads the profiler's wall clock (0 on a nil profiler, so the
// supervisor needs no guards).
func (p *Profiler) nowNs() float64 {
	if p == nil {
		return 0
	}
	return p.clock.Ns()
}

// noteWorkload folds one completed workload into the profile: its
// sampled histogram (deterministic — the sample set is a pure function
// of the cycle stream and the stride), its measured duration, and its
// span with synthesized flow children. Called by the merge, in workload
// order, which is what keeps the aggregate bit-exact across -j.
func (p *Profiler) noteWorkload(name string, samp *upc.Sampler, startNs, endNs float64) {
	if p == nil || samp == nil {
		return
	}
	snap := samp.Snapshot()
	dur := endNs - startNs
	p.mu.Lock()
	defer p.mu.Unlock()
	p.agg.Add(snap)
	p.samples += samp.Taken()
	p.wallNs += dur

	ws := prof.NewSpan("workload", name, startNs, dur)
	wp := prof.Sampled(machineROM(), flowIndex(), snap, p.stride(), dur)
	prof.FlowSpans(ws, wp, p.maxFlows())
	p.wl = append(p.wl, ws)

	p.latest.Store(prof.Sampled(machineROM(), flowIndex(), &p.agg, p.stride(), p.wallNs))
}

// finishRun closes the run: builds the final profile and the span tree,
// and writes the Trace / Spans exports when configured.
func (p *Profiler) finishRun(label string) (*prof.Profile, error) {
	p.mu.Lock()
	final := prof.Sampled(machineROM(), flowIndex(), &p.agg, p.stride(), p.wallNs)
	p.latest.Store(final)
	root := prof.NewSpan("run", label, 0, p.clock.Ns())
	for _, ws := range p.wl {
		root.Add(ws)
	}
	p.root = root
	p.mu.Unlock()

	if p.Trace != nil {
		if err := prof.WriteChromeTrace(p.Trace, root); err != nil {
			return nil, fmt.Errorf("vax780: writing profile trace: %w", err)
		}
	}
	if p.Spans != nil {
		if err := prof.WriteJSONL(p.Spans, root); err != nil {
			return nil, fmt.Errorf("vax780: writing profile spans: %w", err)
		}
	}
	return final, nil
}

// Profile returns the latest published profile: cumulative while the
// run executes (updated at each workload merge), final after Run
// returns. Nil before the first workload completes. Safe to call from
// any goroutine.
func (p *Profiler) Profile() *Profile {
	return p.latest.Load()
}

// SpanTree returns the run's measured wall-time hierarchy (run →
// workload → flow). Nil until Run returns.
func (p *Profiler) SpanTree() *Span {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.root
}

// latestAny is the telemetry /prof closure (a typed nil must become an
// untyped one, or the handler's nil test would pass a dead pointer).
func (p *Profiler) latestAny() any {
	prof := p.latest.Load()
	if prof == nil {
		return nil
	}
	return prof
}

// profFlowRow is the deterministic per-flow row of the ledger's prof
// event: counts and shares only — the wall-clock side rides in the
// event's host group, which StripWallClock removes.
type profFlowRow struct {
	Name   string  `json:"name"`
	Entry  uint16  `json:"entry"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

// profRows converts a profile's hottest flows to ledger rows.
func profRows(p *prof.Profile, n int) []profFlowRow {
	top := p.Top(n)
	rows := make([]profFlowRow, len(top))
	for i, f := range top {
		rows[i] = profFlowRow{Name: f.Name, Entry: f.Entry, Cycles: f.Cycles, Share: f.Share}
	}
	return rows
}

// profSummaryAttrs is the run-done event's prof group: the profiler's
// deterministic summary.
func profSummaryAttrs(p *prof.Profile) []slog.Attr {
	attrs := []slog.Attr{
		slog.String("engine", p.Engine),
		slog.Int("stride", p.Stride),
		slog.Uint64("samples", p.Samples),
		slog.Uint64("cycles", p.TotalCycles),
	}
	if len(p.Flows) > 0 {
		attrs = append(attrs, slog.String("top_flow", p.Flows[0].Name))
	}
	return attrs
}

// Profile runs the exact attribution engine over the run's composite
// histogram: every bucket count assigned to its owning control-store
// flow and Table 8 class, priced by cal when non-nil (nil: cycles and
// shares only). The histogram is bit-exact across Parallelism and the
// calibration is a fixed input, so the profile is deterministic.
func (r *Results) Profile(cal *Calibration) *Profile {
	return prof.Exact(machineROM(), flowIndex(), r.hist, cal)
}

// JITTargets returns the ranked flow-fusion targeting list: every
// fusible straight-line segment the control store proves safe to fuse
// (ulint's segmentation), priced by the run's cycles in it and ranked
// by host ns × fusibility (cycles × fusibility when cal is nil).
func (r *Results) JITTargets(cal *Calibration) []JITTarget {
	return prof.Targets(machineROM(), flowIndex(), r.hist, cal)
}

// ClassCycles sums the composite histogram per Table 8 cycle class —
// the class-cycle vector a calibration probe pairs with a measured wall
// time (see vaxprof -calibrate).
func (r *Results) ClassCycles() [6]uint64 {
	return prof.ClassTotals(machineROM(), r.hist)
}
