package vax780

// RunConfig wiring of the flow-fusion superword engine
// (internal/ufuse): resolve the run's plan once up front — the cached
// whole-ROM compile by default, a seeded compile when the run
// restricts fusion to a vaxprof -targets selection, nil when the
// escape hatch is set — and hand it to every workload machine. This
// is also where ulint's proven segmentation (via the shared cached
// flow index) is bridged to the dependency-light fusion compiler: the
// machine layers never see the analyzer. The plan itself is immutable
// and shared; enabling or disabling fusion never changes measured
// data (the determinism suite holds fused runs byte-identical to
// interpreted ones), which is why neither NoFusion nor FusionTargets
// participates in the checkpoint fingerprint.

import (
	"fmt"
	"sync"

	"vax780/internal/ufuse"
	"vax780/internal/ulint"
	"vax780/internal/urom"
)

// fusibleSegments exports the ulint-proven fusible segments of rom in
// the fusion compiler's plain form, via the per-ROM cached flow index.
func fusibleSegments(rom *urom.ROM) []ufuse.Segment {
	var out []ufuse.Segment
	for _, f := range ulint.IndexFor(rom).Flows() {
		for _, s := range f.Segments {
			if s.Fusible {
				out = append(out, ufuse.Segment{Start: s.Start, Len: s.Len})
			}
		}
	}
	return out
}

// defaultPlanOnce memoizes the whole-ROM superword plan: the control
// store is assembled once and immutable, so one compile serves every
// run in the process.
var defaultPlanOnce struct {
	sync.Once
	plan *ufuse.Plan
	err  error
}

func defaultFusionPlan() (*ufuse.Plan, error) {
	defaultPlanOnce.Do(func() {
		rom := machineROM()
		defaultPlanOnce.plan, defaultPlanOnce.err = ufuse.Compile(rom, fusibleSegments(rom))
	})
	return defaultPlanOnce.plan, defaultPlanOnce.err
}

// fusionPlan resolves the run's superword plan.
func (c *RunConfig) fusionPlan() (*ufuse.Plan, error) {
	if c.NoFusion {
		return nil, nil
	}
	if len(c.FusionTargets) == 0 {
		return defaultFusionPlan()
	}
	rom := machineROM()
	want := make(map[uint16]bool, len(c.FusionTargets))
	for _, t := range c.FusionTargets {
		want[t.Start] = true
	}
	var seeds []ufuse.Segment
	for _, s := range fusibleSegments(rom) {
		if want[s.Start] {
			seeds = append(seeds, s)
		}
	}
	return ufuse.Compile(rom, seeds)
}

// FusionAudit compiles the default superword plan over the shipped
// microprogram and verifies it against the ulint segmentation: every
// superword must be exactly one segment the analyzer proved fusible,
// re-checked word by word against the fusion legality rules. It
// returns the number of audited superwords — the vaxlint gate prints
// it and fails the build on any error.
func FusionAudit() (int, error) {
	plan, err := defaultFusionPlan()
	if err != nil {
		return 0, err
	}
	rom := machineROM()
	if err := ufuse.Audit(plan, rom, fusibleSegments(rom)); err != nil {
		return 0, err
	}
	return plan.Superwords(), nil
}

// EffectsAuditReport is the result of the effect-summary audit over the
// shipped microprogram, printed by vaxlint -effects.
type EffectsAuditReport struct {
	// FusibleSegments / SummarizedEffects are the analyzer's coverage
	// counts: the -effects gate requires them equal (a proven summary
	// for 100% of fusible segments).
	FusibleSegments   int
	SummarizedEffects int
	// Superwords is the number of compiled superwords whose replay
	// stream was cross-checked against its summary.
	Superwords int
	// ReturnEdges / FusibleReturnEdges count the cross-flow uret fusion
	// edges and how many land on a superword head (chainable returns).
	ReturnEdges        int
	FusibleReturnEdges int
}

// FusionEffectsAudit runs the effect-summary gate over the shipped
// microprogram: the analyzer must have derived a proven EffectSummary
// for every fusible segment, the compiled plan's every superword must
// carry one, and each summary's micro-PC trajectory must equal the
// replay stream ufuse derives independently from the image. It also
// checks the return-site fusion edges: every edge marked fusible must
// land on a compiled superword head. Any failure means the fused
// executor could feed the measurement hooks a stream the analyzer did
// not prove — vaxlint fails the build on it.
func FusionEffectsAudit() (EffectsAuditReport, error) {
	var rep EffectsAuditReport
	plan, err := defaultFusionPlan()
	if err != nil {
		return rep, err
	}
	rom := machineROM()
	lint := LintControlStore()
	rep.FusibleSegments = lint.FusibleSegments
	rep.SummarizedEffects = lint.SummarizedEffects
	if rep.SummarizedEffects != rep.FusibleSegments {
		return rep, fmt.Errorf("effects: %d of %d fusible segments have a proven summary",
			rep.SummarizedEffects, rep.FusibleSegments)
	}
	sums := make([]ufuse.Summary, 0, len(lint.Effects))
	for _, s := range lint.Effects {
		sums = append(sums, ufuse.Summary{Start: s.Start, Len: s.Len, UPCs: s.UPCs})
	}
	if err := ufuse.AuditEffects(plan, rom, sums); err != nil {
		return rep, err
	}
	rep.Superwords = plan.Superwords()
	for _, e := range lint.URetEdges {
		rep.ReturnEdges++
		if e.Fusible {
			rep.FusibleReturnEdges++
			if plan.Len(e.To) == 0 {
				return rep, fmt.Errorf("effects: return edge %05o->%05o marked fusible but %05o heads no superword",
					e.From, e.To, e.To)
			}
		}
	}
	return rep, nil
}
