package vax780

// RunConfig wiring of the flow-fusion superword engine
// (internal/ufuse): resolve the run's plan once up front — the cached
// whole-ROM compile by default, a seeded compile when the run
// restricts fusion to a vaxprof -targets selection, nil when the
// escape hatch is set — and hand it to every workload machine. This
// is also where ulint's proven segmentation (via the shared cached
// flow index) is bridged to the dependency-light fusion compiler: the
// machine layers never see the analyzer. The plan itself is immutable
// and shared; enabling or disabling fusion never changes measured
// data (the determinism suite holds fused runs byte-identical to
// interpreted ones), which is why neither NoFusion nor FusionTargets
// participates in the checkpoint fingerprint.

import (
	"sync"

	"vax780/internal/ufuse"
	"vax780/internal/ulint"
	"vax780/internal/urom"
)

// fusibleSegments exports the ulint-proven fusible segments of rom in
// the fusion compiler's plain form, via the per-ROM cached flow index.
func fusibleSegments(rom *urom.ROM) []ufuse.Segment {
	var out []ufuse.Segment
	for _, f := range ulint.IndexFor(rom).Flows() {
		for _, s := range f.Segments {
			if s.Fusible {
				out = append(out, ufuse.Segment{Start: s.Start, Len: s.Len})
			}
		}
	}
	return out
}

// defaultPlanOnce memoizes the whole-ROM superword plan: the control
// store is assembled once and immutable, so one compile serves every
// run in the process.
var defaultPlanOnce struct {
	sync.Once
	plan *ufuse.Plan
	err  error
}

func defaultFusionPlan() (*ufuse.Plan, error) {
	defaultPlanOnce.Do(func() {
		rom := machineROM()
		defaultPlanOnce.plan, defaultPlanOnce.err = ufuse.Compile(rom, fusibleSegments(rom))
	})
	return defaultPlanOnce.plan, defaultPlanOnce.err
}

// fusionPlan resolves the run's superword plan.
func (c *RunConfig) fusionPlan() (*ufuse.Plan, error) {
	if c.NoFusion {
		return nil, nil
	}
	if len(c.FusionTargets) == 0 {
		return defaultFusionPlan()
	}
	rom := machineROM()
	want := make(map[uint16]bool, len(c.FusionTargets))
	for _, t := range c.FusionTargets {
		want[t.Start] = true
	}
	var seeds []ufuse.Segment
	for _, s := range fusibleSegments(rom) {
		if want[s.Start] {
			seeds = append(seeds, s)
		}
	}
	return ufuse.Compile(rom, seeds)
}

// FusionAudit compiles the default superword plan over the shipped
// microprogram and verifies it against the ulint segmentation: every
// superword must be exactly one segment the analyzer proved fusible,
// re-checked word by word against the fusion legality rules. It
// returns the number of audited superwords — the vaxlint gate prints
// it and fails the build on any error.
func FusionAudit() (int, error) {
	plan, err := defaultFusionPlan()
	if err != nil {
		return 0, err
	}
	rom := machineROM()
	if err := ufuse.Audit(plan, rom, fusibleSegments(rom)); err != nil {
		return 0, err
	}
	return plan.Superwords(), nil
}
