// Package vax780 reproduces Emer & Clark's "A Characterization of
// Processor Performance in the VAX-11/780" (ISCA 1984; 1998 retrospective):
// a micro-PC histogram monitor attached to a cycle-level simulation of the
// VAX-11/780, five synthetic VMS-style timesharing workloads standing in
// for the paper's measurement experiments, and the data-reduction
// methodology that produces the paper's Tables 1-9 from the raw histogram.
//
// The one-call entry point runs the composite experiment and renders every
// table against the published values:
//
//	res, err := vax780.Run(vax780.RunConfig{Instructions: 100_000})
//	if err != nil { ... }
//	fmt.Println(res.Report())
//
// Individual experiments, hardware ablations (TB flush interval, write
// buffer depth, cache geometry), the passive UPC monitor itself, and the
// trace-driven baseline the paper contrasts with are all exposed; see the
// examples directory and DESIGN.md.
package vax780
