package vax780

// Trace-layer acceptance tests for the root package: RunConfig.Trace
// must be as deterministic as every other artifact (byte-identical
// JSONL across Parallelism after StripWall), the checkpoint/resume
// path must show up as spans so a vaxd job's kill-and-restart trace
// stays connected, and the profiler splice must stay strictly additive
// (wall placement present with a Profiler, gone after StripWall, the
// remaining bytes identical to an unprofiled run).

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"vax780/internal/obs"
)

// runTraced executes cfg with a fresh recorder under the given trace
// ID and returns the wall-stripped JSONL export.
func runTraced(t *testing.T, cfg RunConfig, trace string) []byte {
	t.Helper()
	rec := obs.NewRecorder(trace)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	stripped, err := obs.StripWall(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return stripped
}

// kindCounts parses a JSONL trace and tallies spans by kind.
func kindCounts(t *testing.T, rows []byte) map[string]int {
	t.Helper()
	_, root, err := obs.ParseRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		counts[s.Kind]++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return counts
}

// TestTraceBitExactAcrossParallelism: the exported span tree is a pure
// function of the simulation — the same trace ID must produce the same
// bytes at every worker count, with no cross-worker ID coordination.
func TestTraceBitExactAcrossParallelism(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, TimesharingB, RTEScientific, RTECommercial},
	}
	scfg := cfg
	scfg.Parallelism = 1
	baseline := runTraced(t, scfg, "trace-det")
	if err := obs.ValidateSpans(baseline); err != nil {
		t.Fatalf("baseline trace schema: %v", err)
	}
	counts := kindCounts(t, baseline)
	if counts["run"] != 1 || counts["workload"] != len(cfg.Workloads) || counts["flow"] == 0 {
		t.Fatalf("baseline span kinds = %v, want 1 run, %d workloads, >0 flows",
			counts, len(cfg.Workloads))
	}
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("j=%d", workers), func(t *testing.T) {
			pcfg := cfg
			pcfg.Parallelism = workers
			got := runTraced(t, pcfg, "trace-det")
			if !bytes.Equal(baseline, got) {
				t.Errorf("trace JSONL differs from sequential run (%d vs %d bytes)",
					len(baseline), len(got))
			}
		})
	}
}

// TestTraceCheckpointResumeSpans kills a run after one workload (the
// haltAfter seam), resumes it from the checkpoint, and requires the
// causal story in the spans: the halted trace carries the one
// completed workload with its checkpoint span, and the resumed trace
// opens with a resume span before the remaining workloads — the link
// /trace/{jobid} relies on to connect a job across a vaxd restart.
func TestTraceCheckpointResumeSpans(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1200,
		Workloads:    []WorkloadID{TimesharingA, RTEEducational, RTECommercial},
		Checkpoint:   filepath.Join(t.TempDir(), "run.ckpt"),
	}

	killed := cfg
	killed.haltAfter = 1
	rec := obs.NewRecorder("trace-ckpt")
	killed.Trace = rec
	if _, err := Run(killed); !errors.Is(err, errRunHalted) {
		t.Fatalf("halted run: err = %v, want errRunHalted", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	halted, err := obs.StripWall(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSpans(halted); err != nil {
		t.Fatalf("halted trace schema: %v", err)
	}
	hc := kindCounts(t, halted)
	if hc["workload"] != 1 || hc["checkpoint"] != 1 || hc["resume"] != 0 {
		t.Fatalf("halted span kinds = %v, want 1 workload, 1 checkpoint, 0 resumes", hc)
	}

	resumed := cfg
	resumed.Resume = true
	resumed.Parallelism = 2
	got := runTraced(t, resumed, "trace-ckpt")
	if err := obs.ValidateSpans(got); err != nil {
		t.Fatalf("resumed trace schema: %v", err)
	}
	rc := kindCounts(t, got)
	if rc["resume"] != 1 {
		t.Errorf("resumed trace has %d resume spans, want 1", rc["resume"])
	}
	// Only the two outstanding workloads re-execute; the restored one
	// rides in the resume span's restored count, not as a workload.
	if rc["workload"] != 2 || rc["checkpoint"] != 2 {
		t.Errorf("resumed span kinds = %v, want 2 workloads each with a checkpoint", rc)
	}
	_, root, err := obs.ParseRows(got)
	if err != nil {
		t.Fatal(err)
	}
	if res := root.Children()[0]; res.Kind != "resume" {
		t.Errorf("first child of run = %s span, want resume (causal order)", res.Kind)
	} else if n, ok := res.AttrMap()["restored"].(float64); !ok || n != 1 {
		t.Errorf("resume restored attr = %v, want 1", res.AttrMap()["restored"])
	}
}

// TestTraceProfilerWallStrip: with a Profiler attached the workload
// spans gain wall placements (the profiler splice), and StripWall
// removes exactly that — the stripped bytes must equal the unprofiled
// run's, proving the splice is additive and never leaks host time into
// the deterministic export.
func TestTraceProfilerWallStrip(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
	}
	plain := runTraced(t, cfg, "trace-wall")

	prof := cfg
	prof.Profiler = &Profiler{}
	rec := obs.NewRecorder("trace-wall")
	prof.Trace = rec
	if _, err := Run(prof); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"start_ns"`)) {
		t.Error("profiled trace carries no wall placement; the splice exercises nothing")
	}
	stripped, err := obs.StripWall(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stripped, []byte(`"start_ns"`)) {
		t.Error("StripWall left start_ns in the export")
	}
	if !bytes.Equal(plain, stripped) {
		t.Errorf("stripped profiled trace differs from unprofiled trace (%d vs %d bytes)",
			len(plain), len(stripped))
	}
}

// TestTraceNilRecorderSafe: tracing off is the zero value — a run with
// no recorder must not panic on any span call site, and a nil recorder
// exports nothing.
func TestTraceNilRecorderSafe(t *testing.T) {
	if _, err := Run(RunConfig{
		Instructions: 800,
		Workloads:    []WorkloadID{TimesharingA},
		Checkpoint:   filepath.Join(t.TempDir(), "n.ckpt"),
	}); err != nil {
		t.Fatal(err)
	}
}
