package vax780

// Integration tests of the observability layer's three acceptance
// criteria: the ledger is byte-identical across Parallelism once
// wall-clock fields are stripped, a machine fault's flight-recorder
// snapshot ends on the faulting micro-PC, and the progress feed
// reports the fleet truthfully through to a Final snapshot.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// ledgerFor runs cfg with a ledger attached at the given parallelism
// and returns the raw JSONL bytes (and Run's error, for fault tests).
func ledgerFor(t *testing.T, cfg RunConfig, parallelism int) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Ledger = &buf
	cfg.Parallelism = parallelism
	_, err := Run(cfg)
	if verr := ValidateLedger(buf.Bytes()); verr != nil {
		t.Fatalf("ledger fails schema validation: %v", verr)
	}
	return buf.Bytes(), err
}

// countEvents tallies ledger lines per event type.
func countEvents(data []byte) map[string]int {
	n := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		for _, ev := range []string{
			"run-start", "workload-start", "workload-done", "faults-injected",
			"retry", "machine-fault", "checkpoint", "resumed", "run-done",
			"sweep-start", "sweep-point-done", "sweep-done",
		} {
			if strings.Contains(line, `"msg":"`+ev+`"`) {
				n[ev]++
			}
		}
	}
	return n
}

// TestLedgerDeterministicAcrossParallelism: the acceptance criterion —
// the same configuration's ledger, wall-clock fields stripped, is
// byte-identical at Parallelism 1 and 4, fault plan attached. Workload
// events buffer per workload and persist in workload order on the
// merge path, exactly like the histograms.
func TestLedgerDeterministicAcrossParallelism(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, TimesharingB, RTEScientific},
		Faults: &FaultConfig{
			Seed:    99,
			UPCDrop: 1e-4, UPCFlip: 1e-4, UPCSaturate: 1e-5,
		},
	}
	seq, err := ledgerFor(t, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ledgerFor(t, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	ss, err := StripLedgerWallClock(seq)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := StripLedgerWallClock(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ss, ps) {
		t.Errorf("stripped ledgers differ between -j 1 and -j 4:\nseq:\n%s\npar:\n%s", ss, ps)
	}

	n := countEvents(seq)
	want := map[string]int{
		"run-start": 1, "run-done": 1,
		"workload-start": 3, "workload-done": 3, "faults-injected": 3,
	}
	for ev, w := range want {
		if n[ev] != w {
			t.Errorf("%s events = %d, want %d", ev, n[ev], w)
		}
	}
	if !strings.Contains(string(seq), `"config":"`) {
		t.Error("run-start lacks the config hash")
	}
	if !strings.Contains(string(seq), `"host":{`) {
		t.Error("run-done lacks the host self-profile")
	}
}

// TestLedgerRepeatableSameConfig: two identical sequential runs strip
// to the same bytes — the ledger is a function of the configuration,
// not the session.
func TestLedgerRepeatableSameConfig(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1200,
		Workloads:    []WorkloadID{TimesharingA, RTECommercial},
	}
	a, err := ledgerFor(t, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ledgerFor(t, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	as, _ := StripLedgerWallClock(a)
	bs, _ := StripLedgerWallClock(b)
	if !bytes.Equal(as, bs) {
		t.Error("stripped ledgers differ between two identical runs")
	}
}

// faultCfg is a configuration that reliably aborts with a machine
// fault after one retry (mirrors TestMachineFaultTyped).
func faultCfg() RunConfig {
	return RunConfig{
		Instructions: 8000,
		Workloads:    []WorkloadID{TimesharingA},
		Faults: &FaultConfig{
			Seed:       3,
			MemParity:  0.01,
			MaxRetries: 1, RetryBackoff: 1,
		},
	}
}

// TestFaultFlightSnapshot: the acceptance criterion — a fault run's
// MachineFault carries the flight-recorder snapshot, annotated, and
// its final entry's micro-PC equals the fault's micro-PC. The same
// snapshot rides the ledger's machine-fault event.
func TestFaultFlightSnapshot(t *testing.T) {
	data, err := ledgerFor(t, faultCfg(), 1)
	if err == nil {
		t.Fatal("1% parity rate completed without a fault")
	}
	var mf *MachineFault
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, not a *MachineFault", err)
	}

	if len(mf.Flight) == 0 {
		t.Fatal("MachineFault.Flight is empty; faults auto-enable the recorder")
	}
	last := mf.Flight[len(mf.Flight)-1]
	if last.UPC != mf.UPC {
		t.Errorf("flight final uPC = %05o, fault uPC = %05o; snapshot must end on the faulting cycle",
			last.UPC, mf.UPC)
	}
	for i, e := range mf.Flight {
		if e.Class == "" || e.Region == "" {
			t.Fatalf("flight[%d] not annotated: %+v", i, e)
		}
		if i > 0 && e.Cycle <= mf.Flight[i-1].Cycle {
			t.Fatalf("flight cycles not increasing at %d: %d after %d",
				i, e.Cycle, mf.Flight[i-1].Cycle)
		}
	}

	n := countEvents(data)
	if n["machine-fault"] != 1 {
		t.Errorf("machine-fault events = %d, want 1", n["machine-fault"])
	}
	if n["retry"] == 0 {
		t.Error("no retry events before the terminal fault")
	}
	if n["run-done"] != 0 {
		t.Error("aborted run wrote a run-done event")
	}
	// The ledger's snapshot is the same one: its last entry names the
	// fault uPC.
	if !strings.Contains(string(data), fmt.Sprintf(`"upc":%d,"stalled"`, mf.UPC)) {
		t.Error("ledger machine-fault event lacks the faulting uPC in its flight snapshot")
	}
}

// TestFlightDepthControl: FlightDepth<0 disables the recorder even
// under a fault plan (Flight comes back nil); an explicit depth bounds
// the ring, still ending on the faulting cycle.
func TestFlightDepthControl(t *testing.T) {
	cfg := faultCfg()
	cfg.FlightDepth = -1
	_, err := Run(cfg)
	var mf *MachineFault
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, not a *MachineFault", err)
	}
	if mf.Flight != nil {
		t.Errorf("FlightDepth=-1 still recorded %d entries", len(mf.Flight))
	}

	cfg = faultCfg()
	cfg.FlightDepth = 64
	_, err = Run(cfg)
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, not a *MachineFault", err)
	}
	if len(mf.Flight) == 0 || len(mf.Flight) > 64 {
		t.Fatalf("FlightDepth=64 recorded %d entries", len(mf.Flight))
	}
	if last := mf.Flight[len(mf.Flight)-1]; last.UPC != mf.UPC {
		t.Errorf("bounded flight final uPC = %05o, fault uPC = %05o", last.UPC, mf.UPC)
	}
}

// TestProgressCallback: RunConfig.Progress receives periodic
// snapshots and exactly one Final snapshot whose totals match the
// run's results.
func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	res, err := Run(RunConfig{
		Instructions:     2000,
		Workloads:        []WorkloadID{TimesharingA, RTEEducational},
		ProgressInterval: 10 * time.Millisecond,
		Progress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	finals := 0
	for _, s := range snaps {
		if s.Final {
			finals++
		}
	}
	if finals != 1 || !snaps[len(snaps)-1].Final {
		t.Fatalf("want exactly one Final snapshot, last: finals=%d last.Final=%v",
			finals, snaps[len(snaps)-1].Final)
	}
	last := snaps[len(snaps)-1]
	if last.DoneUnits != 2 || last.TotalUnits != 2 {
		t.Errorf("final units = %d/%d, want 2/2", last.DoneUnits, last.TotalUnits)
	}
	var instrs, cycles uint64
	for _, w := range res.PerWorkload {
		instrs += w.Instructions
		cycles += w.Cycles
	}
	if last.Instrs != instrs || last.Cycles != cycles {
		t.Errorf("final snapshot totals %d instrs / %d cycles, results say %d / %d",
			last.Instrs, last.Cycles, instrs, cycles)
	}
}

// TestSweepLedgerDeterministic: the sweep's ledger carries sweep-start,
// one sweep-point-done per design point in input order, sweep-done —
// and strips to identical bytes at any Parallelism.
func TestSweepLedgerDeterministic(t *testing.T) {
	points := []SweepPoint{
		{Label: "a", Config: RunConfig{Instructions: 600, Workloads: []WorkloadID{TimesharingA}}},
		{Label: "b", Config: RunConfig{Instructions: 600, Workloads: []WorkloadID{TimesharingB}}},
		{Label: "c", Config: RunConfig{Instructions: 600, Workloads: []WorkloadID{RTEScientific}}},
	}
	sweepLedger := func(parallelism int) []byte {
		var buf bytes.Buffer
		res := Sweep(points, SweepOptions{Parallelism: parallelism, Ledger: &buf})
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Label, r.Err)
			}
		}
		if err := ValidateLedger(buf.Bytes()); err != nil {
			t.Fatalf("sweep ledger fails validation: %v", err)
		}
		return buf.Bytes()
	}

	seq := sweepLedger(1)
	par := sweepLedger(4)
	ss, _ := StripLedgerWallClock(seq)
	ps, _ := StripLedgerWallClock(par)
	if !bytes.Equal(ss, ps) {
		t.Errorf("stripped sweep ledgers differ between -j 1 and -j 4:\nseq:\n%s\npar:\n%s", ss, ps)
	}

	n := countEvents(seq)
	if n["sweep-start"] != 1 || n["sweep-done"] != 1 || n["sweep-point-done"] != 3 {
		t.Errorf("sweep events = %+v, want 1 start, 3 point-done, 1 done", n)
	}
	// Point events land in input order.
	text := string(seq)
	if strings.Index(text, `"point":"a"`) > strings.Index(text, `"point":"b"`) ||
		strings.Index(text, `"point":"b"`) > strings.Index(text, `"point":"c"`) {
		t.Error("sweep-point-done events not in input order")
	}
}

// TestSweepProgress: SweepOptions.Progress sees the whole sweep's
// budget and finishes with a Final snapshot covering every point.
func TestSweepProgress(t *testing.T) {
	points := []SweepPoint{
		{Label: "p0", Config: RunConfig{Instructions: 800, Workloads: []WorkloadID{TimesharingA}}},
		{Label: "p1", Config: RunConfig{Instructions: 800, Workloads: []WorkloadID{TimesharingB}}},
	}
	var mu sync.Mutex
	var last Progress
	got := false
	res := Sweep(points, SweepOptions{
		Parallelism:      2,
		ProgressInterval: 10 * time.Millisecond,
		Progress: func(p Progress) {
			mu.Lock()
			last, got = p, true
			mu.Unlock()
		},
	})
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !got || !last.Final {
		t.Fatalf("no Final sweep snapshot (got=%v, final=%v)", got, last.Final)
	}
	if last.DoneUnits != 2 || last.TotalUnits != 2 {
		t.Errorf("final sweep units = %d/%d, want 2/2", last.DoneUnits, last.TotalUnits)
	}
}
