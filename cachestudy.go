package vax780

import (
	"vax780/internal/cachesim"
	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/tbsim"
	"vax780/internal/workload"
)

// CacheConfig is one cache organization for an offline cache study.
type CacheConfig struct {
	Name          string
	Bytes         int
	Ways          int
	Block         int
	WriteAllocate bool
	FlushEvery    int // invalidate everything every N references (0 = never)
}

// CacheStudyResult is one configuration's outcome over a captured
// reference trace.
type CacheStudyResult struct {
	Config        CacheConfig
	ReadMissRatio float64
	MissesPerRef  float64
	Reads         uint64
	ReadMisses    uint64
	IReads        uint64
	IReadMisses   uint64
	Writes        uint64
	WriteMisses   uint64
}

// Study780Configs returns the sweep around the production design point
// (8 KB, 2-way, 8-byte blocks, no write-allocate) that the paper's
// companion cache study (reference [2]) explores.
func Study780Configs() []CacheConfig {
	var out []CacheConfig
	for _, c := range cachesim.Study780() {
		out = append(out, CacheConfig{
			Name: c.Name, Bytes: c.Bytes, Ways: c.Ways, Block: c.Block,
			WriteAllocate: c.WriteAllocate, FlushEvery: c.FlushEvery,
		})
	}
	return out
}

// CacheStudy captures one workload's physical reference trace on the
// stock machine and replays it against every given configuration — the
// trace-once, simulate-many methodology of the companion cache paper the
// Section 4 numbers come from.
func CacheStudy(id WorkloadID, instructions int, cfgs []CacheConfig) ([]CacheStudyResult, error) {
	p, err := id.profile(instructions)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	m := machine.New(machine.Config{Mem: mem.Config{}}, tr.Program)
	m.Mem.Trace = &mem.RefTrace{}
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}

	var out []CacheStudyResult
	for _, cfg := range cfgs {
		r := cachesim.Simulate(m.Mem.Trace, cachesim.Config{
			Name: cfg.Name, Bytes: cfg.Bytes, Ways: cfg.Ways, Block: cfg.Block,
			WriteAllocate: cfg.WriteAllocate, FlushEvery: cfg.FlushEvery,
		})
		out = append(out, CacheStudyResult{
			Config:        cfg,
			ReadMissRatio: r.ReadMissRatio(),
			MissesPerRef:  r.MissesPerRef(),
			Reads:         r.Reads,
			ReadMisses:    r.ReadMisses,
			IReads:        r.IReads,
			IReadMisses:   r.IReadMisses,
			Writes:        r.Writes,
			WriteMisses:   r.WriteMisses,
		})
	}
	return out, nil
}

// TBConfig is one translation buffer organization for an offline TB
// study.
type TBConfig struct {
	Name          string
	Entries       int
	Ways          int
	IgnoreFlushes bool // address-space tags: survive context switches
}

// TBStudyResult is one configuration's outcome over a captured probe
// trace.
type TBStudyResult struct {
	Config    TBConfig
	Probes    uint64
	Misses    uint64
	Flushes   uint64
	MissRatio float64
}

// StudyTBConfigs returns the sweep the companion TB paper (reference [3])
// explores around the production 128-entry 2-way split design.
func StudyTBConfigs() []TBConfig {
	var out []TBConfig
	for _, c := range tbsim.Study780() {
		out = append(out, TBConfig{
			Name: c.Name, Entries: c.Entries, Ways: c.Ways,
			IgnoreFlushes: c.IgnoreFlushes,
		})
	}
	return out
}

// TBStudy captures one workload's TB probe trace (including the
// context-switch flushes) and replays it against every configuration —
// the simulation half of the companion paper "Performance of the
// VAX-11/780 Translation Buffer: Simulation and Measurement".
func TBStudy(id WorkloadID, instructions int, cfgs []TBConfig) ([]TBStudyResult, error) {
	p, err := id.profile(instructions)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	m := machine.New(machine.Config{Mem: mem.Config{}}, tr.Program)
	m.Mem.VTrace = &mem.VATrace{}
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}

	var out []TBStudyResult
	for _, cfg := range cfgs {
		r := tbsim.Simulate(m.Mem.VTrace, tbsim.Config{
			Name: cfg.Name, Entries: cfg.Entries, Ways: cfg.Ways,
			IgnoreFlushes: cfg.IgnoreFlushes,
		})
		out = append(out, TBStudyResult{
			Config:    cfg,
			Probes:    r.Probes,
			Misses:    r.Misses,
			Flushes:   r.Flushes,
			MissRatio: r.MissRatio(),
		})
	}
	return out, nil
}
