package vax780

// Cancellation tests: RunContext/SweepContext semantics — deadline and
// cancel observed at workload boundaries, a cancellable supervisor
// backoff, and bit-identical resume of a canceled run.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vax780/internal/runlog"
)

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunConfig{Instructions: 2000, Workloads: []WorkloadID{TimesharingA}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The parallel path observes cancellation the same way.
	_, err = RunContext(ctx, RunConfig{Instructions: 2000, Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: err = %v, want context.Canceled", err)
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, RunConfig{Instructions: 2000, Workloads: []WorkloadID{TimesharingA}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCancelResumeBitIdentical cancels a sequential composite
// after its first workload completes (watching the live event bus),
// then resumes from the checkpoint the canceled run left behind. The
// resumed composite must be bit-identical to an uninterrupted run —
// cancellation is just a crash the run planned for.
func TestRunContextCancelResumeBitIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	base := RunConfig{
		Instructions: 20_000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific, RTECommercial},
	}

	uninterrupted, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bus := runlog.NewBus()
	ch, unsub := bus.Subscribe(64)
	defer unsub()
	go func() {
		for ev := range ch {
			if ev.Type == runlog.EvWlDone {
				cancel()
				return
			}
		}
	}()

	canceled := base
	canceled.Checkpoint = ckpt
	canceled.Parallelism = 1
	canceled.Events = bus
	_, err = RunContext(ctx, canceled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("canceled run left no checkpoint: %v", err)
	}

	resumed := base
	resumed.Checkpoint = ckpt
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed < 1 {
		t.Errorf("Resumed = %d, want >= 1 (cancel was after a workload boundary)", res.Resumed)
	}
	if *res.Histogram() != *uninterrupted.Histogram() {
		t.Error("resumed composite histogram differs from uninterrupted run")
	}
	if res.Report() != uninterrupted.Report() {
		t.Error("resumed report differs from uninterrupted run")
	}
}

// TestRetryBackoffCancellable: the supervisor's retry backoff must wake
// on cancellation instead of sleeping through it. A 10-second backoff
// with a cancel ~50ms in must return promptly with the context error.
func TestRetryBackoffCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, err := RunContext(ctx, RunConfig{
		Instructions: 8000,
		Workloads:    []WorkloadID{TimesharingA},
		Faults: &FaultConfig{
			Seed:         3,
			MemParity:    0.01, // aborts transiently, forcing the retry path
			MaxRetries:   5,
			RetryBackoff: 10 * time.Second,
		},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run took %v to observe cancel; backoff is not cancellable", elapsed)
	}
}

func TestSweepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points := []SweepPoint{
		{Label: "a", Config: RunConfig{Instructions: 2000, Workloads: []WorkloadID{TimesharingA}}},
		{Label: "b", Config: RunConfig{Instructions: 2000, Workloads: []WorkloadID{TimesharingB}}},
	}
	results := SweepContext(ctx, points, SweepOptions{})
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("point %s: err = %v, want context.Canceled", r.Label, r.Err)
		}
	}
}
