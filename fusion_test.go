package vax780

// The fusion acceptance suite: the flow-fusion superword engine must
// be an implementation detail, invisible in every observable byte.
// Each test runs the same configuration fused (the default) and
// interpreted (NoFusion) and compares the strongest artifacts
// available — histogram arrays, rendered reports, telemetry series and
// Chrome traces, fault-injection tallies, profiler fingerprints,
// stripped ledgers, checkpoint resume chains. The measurement hooks
// (telemetry probe, flight recorder, prof sampler) no longer deopt:
// fused dispatches replay each superword's statically-proven per-cycle
// effect stream into them, so a hooked fused run must still be
// byte-identical to a hooked interpreted one — the strongest form of
// the effect-summary proof. Only a fault plan still forces single-step
// mode (its per-reference poll points live in the interpreter), and
// that deopt contract keeps its own test.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// runFusionPair executes cfg fused and with NoFusion and returns both
// results. cfg must not set NoFusion.
func runFusionPair(t *testing.T, cfg RunConfig) (fused, interp *Results) {
	t.Helper()
	fused, err := Run(cfg)
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	icfg := cfg
	icfg.NoFusion = true
	interp, err = Run(icfg)
	if err != nil {
		t.Fatalf("interpreted run: %v", err)
	}
	return fused, interp
}

// TestFusionBitExact sweeps parallelism: at every -j the fused
// composite must be byte-identical to the interpreted one.
func TestFusionBitExact(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("j=%d", workers), func(t *testing.T) {
			fused, interp := runFusionPair(t, RunConfig{
				Instructions: 2000,
				Workloads:    AllWorkloads(),
				Parallelism:  workers,
			})
			compareResults(t, fused, interp)
		})
	}
}

// TestFusionAudit: the shipped control store compiles to a non-empty
// superword plan and every superword survives the word-by-word
// legality audit against the ulint segmentation (the vaxlint gate).
func TestFusionAudit(t *testing.T) {
	superwords, err := FusionAudit()
	if err != nil {
		t.Fatalf("FusionAudit: %v", err)
	}
	if superwords == 0 {
		t.Fatal("FusionAudit audited 0 superwords; the shipped ROM has fusible segments")
	}
}

// TestFusionTargetsSubset: restricting fusion to a -targets ranking's
// top rows is still bit-exact with full interpretation — a subset of a
// proven plan is a proven plan.
func TestFusionTargetsSubset(t *testing.T) {
	cfg := RunConfig{
		Instructions: 2000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
	}
	seed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := seed.JITTargets(nil)
	if len(targets) < 2 {
		t.Fatalf("ranking produced %d targets, want ≥ 2", len(targets))
	}
	tcfg := cfg
	tcfg.FusionTargets = targets[:2]
	fused, interp := runFusionPair(t, tcfg)
	compareResults(t, fused, interp)
}

// TestFusionTelemetryBitExact: an attached telemetry layer no longer
// deopts — the fused path interleaves the probe cycle by cycle in
// tick's exact order — and every telemetry artifact (live counters,
// interval CSV, Chrome trace) is byte-identical fused vs NoFusion.
// This matters because Recorder.roll snapshots the monitor histogram
// from inside Probe.Cycle at interval boundaries: a bulk histogram
// update would move counts across an interval edge.
func TestFusionTelemetryBitExact(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1800,
		Workloads:    []WorkloadID{TimesharingA, RTECommercial},
	}

	fcfg := cfg
	fcfg.Telemetry = NewTelemetry(1500, 200000)
	icfg := cfg
	icfg.NoFusion = true
	icfg.Telemetry = NewTelemetry(1500, 200000)

	fused, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := Run(icfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, fused, interp)

	if fc, ic := fcfg.Telemetry.Counters(), icfg.Telemetry.Counters(); fc != ic {
		t.Errorf("live counters differ:\nfused  %+v\ninterp %+v", fc, ic)
	}
	var fcsv, icsv bytes.Buffer
	if err := fcfg.Telemetry.WriteIntervalsCSV(&fcsv); err != nil {
		t.Fatal(err)
	}
	if err := icfg.Telemetry.WriteIntervalsCSV(&icsv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fcsv.Bytes(), icsv.Bytes()) {
		t.Error("interval CSV differs fused vs interpreted")
	}
	var ftr, itr bytes.Buffer
	if err := fcfg.Telemetry.WriteTrace(&ftr); err != nil {
		t.Fatal(err)
	}
	if err := icfg.Telemetry.WriteTrace(&itr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ftr.Bytes(), itr.Bytes()) {
		t.Error("Chrome trace differs fused vs interpreted")
	}
}

// TestFusionHooksBitExact is the tentpole acceptance test: with the
// telemetry probe, flight recorder, and sampling profiler ALL attached
// — the benchmark matrix's formerly 100%-interpreted cell — the fused
// composite must be byte-identical to the interpreted one at every -j:
// histograms, reports, ledgers, telemetry CSV and traces. The sampler
// rides along inside the profiler-equipped variant below; here the
// probe and recorder exercise the per-cycle interleave path, and the
// recorder-only pair exercises the bulk path.
func TestFusionHooksBitExact(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("j=%d", workers), func(t *testing.T) {
			cfg := RunConfig{
				Instructions: 1800,
				Workloads:    AllWorkloads(),
				Parallelism:  workers,
				FlightDepth:  64,
			}
			fcfg := cfg
			fcfg.Telemetry = NewTelemetry(1500, 200000)
			icfg := cfg
			icfg.NoFusion = true
			icfg.Telemetry = NewTelemetry(1500, 200000)

			fused, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}
			interp, err := Run(icfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, fused, interp)

			if fc, ic := fcfg.Telemetry.Counters(), icfg.Telemetry.Counters(); fc != ic {
				t.Errorf("live counters differ:\nfused  %+v\ninterp %+v", fc, ic)
			}
			var fcsv, icsv bytes.Buffer
			if err := fcfg.Telemetry.WriteIntervalsCSV(&fcsv); err != nil {
				t.Fatal(err)
			}
			if err := icfg.Telemetry.WriteIntervalsCSV(&icsv); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fcsv.Bytes(), icsv.Bytes()) {
				t.Error("interval CSV differs fused vs interpreted under hooks")
			}
			var ftr, itr bytes.Buffer
			if err := fcfg.Telemetry.WriteTrace(&ftr); err != nil {
				t.Fatal(err)
			}
			if err := icfg.Telemetry.WriteTrace(&itr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ftr.Bytes(), itr.Bytes()) {
				t.Error("Chrome trace differs fused vs interpreted under hooks")
			}
		})
	}
}

// TestFusionEffectsAudit: the -effects gate. Every fusible segment of
// the shipped store carries a proven effect summary, every superword's
// replay stream matches it, and every fusible return edge lands on a
// superword head.
func TestFusionEffectsAudit(t *testing.T) {
	rep, err := FusionEffectsAudit()
	if err != nil {
		t.Fatalf("FusionEffectsAudit: %v", err)
	}
	if rep.FusibleSegments == 0 || rep.SummarizedEffects != rep.FusibleSegments {
		t.Fatalf("effect coverage %d/%d; the gate requires 100%%",
			rep.SummarizedEffects, rep.FusibleSegments)
	}
	if rep.Superwords == 0 {
		t.Fatal("no superword replay streams audited")
	}
}

// TestFusionDeoptFaults: a fault plan forces single-step mode (its
// per-cycle injection decisions must see every micro-PC), and the
// injection tallies, retries, and degradation-annotated report are
// identical fused vs NoFusion.
func TestFusionDeoptFaults(t *testing.T) {
	fused, interp := runFusionPair(t, RunConfig{
		Instructions: 2500,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
		Faults: &FaultConfig{
			Seed:        7,
			UPCDrop:     1e-4,
			UPCFlip:     1e-4,
			UPCSaturate: 2e-4,
		},
	})
	compareResults(t, fused, interp)
	if fused.FaultInjections != interp.FaultInjections {
		t.Errorf("fault injections differ:\nfused  %s\ninterp %s",
			fused.FaultInjections, interp.FaultInjections)
	}
}

// TestFusionFlightRecorderBitExact: a forced-on flight recorder runs
// fused via RecordRun's bulk replay; the ring's contents and artifacts
// match NoFusion exactly.
func TestFusionFlightRecorderBitExact(t *testing.T) {
	fused, interp := runFusionPair(t, RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA},
		FlightDepth:  64,
	})
	compareResults(t, fused, interp)
}

// TestFusionProfilerBitExact: the sampling profiler's stride hook runs
// fused via SampleRun's bulk countdown replay; the sampled fingerprint
// (flows, cycles, shares, class vectors) and the stripped ledger are
// byte-identical fused vs NoFusion.
func TestFusionProfilerBitExact(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
	}
	fp, fres, fled := profiledRun(t, cfg, 1)
	icfg := cfg
	icfg.NoFusion = true
	ip, ires, iled := profiledRun(t, icfg, 1)

	compareResults(t, fres, ires)
	fprof, iprof := fp.Profile(), ip.Profile()
	if fprof == nil || iprof == nil {
		t.Fatal("profiler published no profile")
	}
	if ff, fi := sampledFingerprint(fprof), sampledFingerprint(iprof); ff != fi {
		t.Errorf("sampled profiles differ fused vs interpreted:\nfused:\n%s\ninterp:\n%s", ff, fi)
	}
	if !bytes.Equal(fled, iled) {
		t.Error("stripped ledgers differ fused vs interpreted")
	}
}

// TestFusionLedgerBitExact: the stripped run ledger — including the
// run-start config hash, which deliberately excludes fusion settings —
// is byte-identical fused vs NoFusion.
func TestFusionLedgerBitExact(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, RTECommercial},
	}
	run := func(noFusion bool) []byte {
		var led bytes.Buffer
		c := cfg
		c.NoFusion = noFusion
		c.Ledger = &led
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		stripped, err := StripLedgerWallClock(led.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return stripped
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Error("stripped ledger differs fused vs interpreted")
	}
}

// TestFusionResumeInterop: fusion is excluded from the checkpoint
// fingerprint, so a run killed while fused may be resumed interpreted
// and vice versa, and both resumed composites are byte-identical to an
// uninterrupted run.
func TestFusionResumeInterop(t *testing.T) {
	base := RunConfig{
		Instructions: 4000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific, RTECommercial},
		// A per-cycle hook rides along so the resume chain also proves
		// the hooked fused path checkpoint-compatible with the
		// interpreter.
		FlightDepth: 64,
	}
	uninterrupted, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, dir := range []struct {
		name                string
		killFused, resFused bool
	}{
		{"fused-then-interpreted", true, false},
		{"interpreted-then-fused", false, true},
	} {
		t.Run(dir.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			killed := base
			killed.Checkpoint = ckpt
			killed.NoFusion = !dir.killFused
			killed.haltAfter = 1
			if _, err := Run(killed); !errors.Is(err, errRunHalted) {
				t.Fatalf("halted run: err = %v, want errRunHalted", err)
			}
			resumed := base
			resumed.Checkpoint = ckpt
			resumed.Resume = true
			resumed.NoFusion = !dir.resFused
			res, err := Run(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resumed != 1 {
				t.Errorf("Resumed = %d, want 1", res.Resumed)
			}
			compareResults(t, res, uninterrupted)
		})
	}
}
