package vax780

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §3 for the experiment index). Each benchmark measures
// the cost of its reduction over a cached composite run and reports the
// headline measured-vs-paper numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result series. The full formatted tables come
// from cmd/vaxtables and cmd/vaxmon.

import (
	"sync"
	"testing"

	"vax780/internal/paper"
	"vax780/internal/vax"
)

const benchInstrPerExperiment = 40_000

var (
	benchOnce sync.Once
	benchRes  *Results
	benchErr  error
)

func benchComposite(b *testing.B) *Results {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = Run(RunConfig{Instructions: benchInstrPerExperiment})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

// BenchmarkFigure1BlockDiagram regenerates the Figure 1 system diagram
// from a fresh machine (component graph rendering, not a cached string).
func BenchmarkFigure1BlockDiagram(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = BlockDiagram()
	}
	b.ReportMetric(float64(len(s)), "bytes")
}

// BenchmarkTable1OpcodeGroups regenerates the opcode group frequencies.
func BenchmarkTable1OpcodeGroups(b *testing.B) {
	res := benchComposite(b)
	var simple float64
	for i := 0; i < b.N; i++ {
		for _, g := range res.Analysis().OpcodeGroups() {
			if g.Group == vax.GroupSimple {
				simple = g.Percent
			}
		}
	}
	b.ReportMetric(simple, "simple_pct")
	b.ReportMetric(paper.Table1[vax.GroupSimple].V, "paper_simple_pct")
}

// BenchmarkTable2PCChanging regenerates the PC-changing class table.
func BenchmarkTable2PCChanging(b *testing.B) {
	res := benchComposite(b)
	var pct, taken float64
	for i := 0; i < b.N; i++ {
		_, total := res.Analysis().PCChanging()
		pct, taken = total.PctOfInstrs, total.PctTaken
	}
	b.ReportMetric(pct, "pc_changing_pct")
	b.ReportMetric(taken, "taken_pct")
	b.ReportMetric(paper.Table2Total.PctOfInstrs.V, "paper_pc_changing_pct")
}

// BenchmarkTable3SpecifierCounts regenerates specifier counts.
func BenchmarkTable3SpecifierCounts(b *testing.B) {
	res := benchComposite(b)
	var total float64
	for i := 0; i < b.N; i++ {
		total = res.Analysis().SpecifierCounts().Total
	}
	b.ReportMetric(total, "specs_per_instr")
	b.ReportMetric(paper.Table3SpecsTotal.V, "paper_specs_per_instr")
}

// BenchmarkTable4SpecifierModes regenerates the mode distribution.
func BenchmarkTable4SpecifierModes(b *testing.B) {
	res := benchComposite(b)
	var register, indexed float64
	for i := 0; i < b.N; i++ {
		rows, idx := res.Analysis().SpecifierModes()
		register = rows[paper.T4Register].Total
		indexed = idx.Total
	}
	b.ReportMetric(register, "register_pct")
	b.ReportMetric(indexed, "indexed_pct")
	b.ReportMetric(paper.Table4[paper.T4Register].Total.V, "paper_register_pct")
}

// BenchmarkTable5MemoryOps regenerates the reads/writes table.
func BenchmarkTable5MemoryOps(b *testing.B) {
	res := benchComposite(b)
	var reads, writes float64
	for i := 0; i < b.N; i++ {
		_, total := res.Analysis().MemoryOps()
		reads, writes = total.Reads, total.Writes
	}
	b.ReportMetric(reads, "reads_per_instr")
	b.ReportMetric(writes, "writes_per_instr")
	b.ReportMetric(paper.Table5Total.Reads.V, "paper_reads_per_instr")
}

// BenchmarkTable6InstructionSize regenerates the size estimate.
func BenchmarkTable6InstructionSize(b *testing.B) {
	res := benchComposite(b)
	var bytes float64
	for i := 0; i < b.N; i++ {
		bytes = res.Analysis().InstructionSize().TotalBytes
	}
	b.ReportMetric(bytes, "instr_bytes")
	b.ReportMetric(paper.Table6TotalBytes.V, "paper_instr_bytes")
}

// BenchmarkTable7Headways regenerates the event headways.
func BenchmarkTable7Headways(b *testing.B) {
	res := benchComposite(b)
	var ints float64
	for i := 0; i < b.N; i++ {
		ints = res.Analysis().EventHeadways().Interrupts
	}
	b.ReportMetric(ints, "interrupt_headway")
	b.ReportMetric(paper.Table7Interrupts.V, "paper_interrupt_headway")
}

// BenchmarkTable8CPIMatrix regenerates the central CPI decomposition.
func BenchmarkTable8CPIMatrix(b *testing.B) {
	res := benchComposite(b)
	var cpi, rstall float64
	for i := 0; i < b.N; i++ {
		m := res.Analysis().CPIMatrix()
		cpi = m.Total
		rstall = m.ColTotals[paper.T8RStall]
	}
	b.ReportMetric(cpi, "cpi")
	b.ReportMetric(rstall, "rstall_per_instr")
	b.ReportMetric(paper.Table8Total.V, "paper_cpi")
}

// BenchmarkTable9PerGroupCycles regenerates the per-group cycle costs.
func BenchmarkTable9PerGroupCycles(b *testing.B) {
	res := benchComposite(b)
	var callret, char float64
	for i := 0; i < b.N; i++ {
		rows := res.Analysis().PerGroupCycles()
		callret = rows[vax.GroupCallRet][paper.NumT8Cols]
		char = rows[vax.GroupCharacter][paper.NumT8Cols]
	}
	b.ReportMetric(callret, "callret_cycles")
	b.ReportMetric(char, "character_cycles")
	b.ReportMetric(paper.Table9Total(paper.T8CallRet).V, "paper_callret_cycles")
}

// BenchmarkSec41IStream regenerates the §4.1 IB statistics.
func BenchmarkSec41IStream(b *testing.B) {
	res := benchComposite(b)
	var refs, bytesPerRef float64
	for i := 0; i < b.N; i++ {
		cs, _ := res.Analysis().CacheStudyStats()
		refs, bytesPerRef = cs.IBRefsPerInstr, cs.IBBytesPerRef
	}
	b.ReportMetric(refs, "ib_refs_per_instr")
	b.ReportMetric(bytesPerRef, "ib_bytes_per_ref")
	b.ReportMetric(paper.Sec4IBRefsPerInstr.V, "paper_ib_refs_per_instr")
}

// BenchmarkSec42CacheTB regenerates the §4.2 cache and TB statistics.
func BenchmarkSec42CacheTB(b *testing.B) {
	res := benchComposite(b)
	var miss, tbMiss, tbCycles float64
	for i := 0; i < b.N; i++ {
		cs, _ := res.Analysis().CacheStudyStats()
		tb := res.Analysis().TBMissStats()
		miss = cs.CacheMissPerInstr
		tbMiss = tb.MissesPerInstr
		tbCycles = tb.CyclesPerMiss
	}
	b.ReportMetric(miss, "cache_miss_per_instr")
	b.ReportMetric(tbMiss, "tb_miss_per_instr")
	b.ReportMetric(tbCycles, "tb_cycles_per_miss")
	b.ReportMetric(paper.Sec4TBMissCycles.V, "paper_tb_cycles_per_miss")
}

// BenchmarkAblationTraceVsUPC runs the A1 methodology comparison.
func BenchmarkAblationTraceVsUPC(b *testing.B) {
	var invisible float64
	for i := 0; i < b.N; i++ {
		cmp, err := CompareTraceDriven(TimesharingA, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		invisible = cmp.InvisibleFraction
	}
	b.ReportMetric(100*invisible, "invisible_pct")
}

// BenchmarkAblationTBFlush runs the A2 context-switch interval ablation:
// frequent rescheduling versus the measured 6418-instruction interval.
func BenchmarkAblationTBFlush(b *testing.B) {
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		f, err := Run(RunConfig{
			Instructions: 8_000, Workloads: []WorkloadID{TimesharingA},
			CtxSwitchHeadway: 600,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := Run(RunConfig{
			Instructions: 8_000, Workloads: []WorkloadID{TimesharingA},
			CtxSwitchHeadway: 50_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		fast = f.TBMiss().MissesPerInstr
		slow = s.TBMiss().MissesPerInstr
	}
	b.ReportMetric(fast, "tbmiss_600")
	b.ReportMetric(slow, "tbmiss_50000")
}

// BenchmarkAblationWriteBuffer runs the A3 write-buffer ablation: the
// one-longword buffer's 6-cycle occupancy versus an idealized fast one.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	var stock, fast float64
	for i := 0; i < b.N; i++ {
		st, err := Run(RunConfig{
			Instructions: 8_000, Workloads: []WorkloadID{TimesharingA},
		})
		if err != nil {
			b.Fatal(err)
		}
		fa, err := Run(RunConfig{
			Instructions: 8_000, Workloads: []WorkloadID{TimesharingA},
			WriteBusy: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		stock = st.CPI()
		fast = fa.CPI()
	}
	b.ReportMetric(stock, "cpi_wb6")
	b.ReportMetric(fast, "cpi_wb1")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// EBOX cycles per wall-clock second for one workload run end to end.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			Instructions: 20_000,
			Workloads:    []WorkloadID{TimesharingA},
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

// BenchmarkCompanionCacheStudy regenerates the reference-[2] methodology:
// trace once, sweep cache organizations offline.
func BenchmarkCompanionCacheStudy(b *testing.B) {
	var prod float64
	for i := 0; i < b.N; i++ {
		res, err := CacheStudy(TimesharingA, 10_000, Study780Configs())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Config.Name == "8KB/2way/8B" {
				prod = r.ReadMissRatio
			}
		}
	}
	b.ReportMetric(prod, "prod_read_miss_ratio")
}

// BenchmarkAblationOverlappedDecode measures the §5 what-if the paper
// calls out: the 11/750's overlapped I-Decode cycle.
func BenchmarkAblationOverlappedDecode(b *testing.B) {
	var base, over float64
	for i := 0; i < b.N; i++ {
		rb, err := Run(RunConfig{Instructions: 8_000, Workloads: []WorkloadID{TimesharingA}})
		if err != nil {
			b.Fatal(err)
		}
		ro, err := Run(RunConfig{Instructions: 8_000, Workloads: []WorkloadID{TimesharingA},
			OverlapDecode: true})
		if err != nil {
			b.Fatal(err)
		}
		base = rb.PerWorkload[0].CPI
		over = ro.PerWorkload[0].CPI
	}
	b.ReportMetric(base, "cpi_780")
	b.ReportMetric(over, "cpi_overlapped")
	b.ReportMetric(base-over, "cycles_saved")
}

// BenchmarkCompanionTBStudy regenerates the reference-[3] methodology:
// capture the TB probe trace once, sweep TB organizations offline.
func BenchmarkCompanionTBStudy(b *testing.B) {
	var prod float64
	for i := 0; i < b.N; i++ {
		res, err := TBStudy(TimesharingA, 10_000, StudyTBConfigs())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Config.Name == "128e/2way" {
				prod = r.MissRatio
			}
		}
	}
	b.ReportMetric(prod, "prod_tb_miss_ratio")
}
