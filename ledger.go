package vax780

// The public face of the run ledger: RunConfig.Ledger receives one
// JSONL event per run action (see internal/runlog for the schema), and
// MachineFault carries the flight-recorder snapshot annotated with each
// micro-PC's control-store region and Table 8 cycle class. The ledger
// file is specified to be byte-identical across Parallelism settings
// once wall-clock fields are stripped (runlog.StripWallClock): all
// workload-scoped events are buffered per workload and persisted at
// merge time in workload order, exactly like the histograms themselves.

import (
	"errors"
	"log/slog"
	"strings"

	"vax780/internal/analysis"
	"vax780/internal/runlog"
	"vax780/internal/upc"
)

// FlightEntry is one recorded cycle of the micro-PC flight recorder,
// annotated for post-mortems: the control-store region of the micro-PC
// and the Table 8 cycle class the cycle was attributed to.
type FlightEntry struct {
	Cycle   uint64 `json:"cycle"`
	UPC     uint16 `json:"upc"`
	Stalled bool   `json:"stalled"`
	Class   string `json:"class"`  // Table 8 cycle class (COMPUTE, READ, ...)
	Region  string `json:"region"` // control-store region of the micro-PC
}

// annotateFlight converts a raw recorder snapshot into the public,
// region- and class-annotated form. Annotation happens here — at fault
// time, off the hot path — so the recorder itself stores three words
// per cycle and nothing else.
func annotateFlight(raw []upc.FlightEntry) []FlightEntry {
	if len(raw) == 0 {
		return nil
	}
	rom := machineROM()
	out := make([]FlightEntry, len(raw))
	for i, e := range raw {
		fe := FlightEntry{Cycle: e.Cycle, UPC: e.UPC, Stalled: e.Stalled}
		mi := rom.Image.At(e.UPC)
		fe.Region = mi.Region.String()
		if _, col, ok := analysis.BucketCell(mi, e.Stalled); ok {
			fe.Class = col.String()
		} else {
			fe.Class = "UNATTRIBUTED"
		}
		out[i] = fe
	}
	return out
}

// ValidateLedger checks a JSONL ledger stream against the golden
// schema (the same validation the tests and CI run).
func ValidateLedger(data []byte) error {
	return runlog.Validate(strings.NewReader(string(data)))
}

// StripLedgerWallClock canonicalizes a JSONL ledger for determinism
// comparison: wall-clock fields (the per-record timestamp and the
// run-done host self-profile) removed, keys sorted. Two runs of the
// same configuration strip to identical bytes at any Parallelism.
func StripLedgerWallClock(data []byte) ([]byte, error) {
	return runlog.StripWallClock(data)
}

// workloadsLabel renders the run's workload list for the run-start
// event.
func workloadsLabel(ids []WorkloadID) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.String()
	}
	return strings.Join(names, ",")
}

// table8Attrs renders the Table 8 row totals (cycles per average
// instruction by activity) as the run-done event's summary group.
func table8Attrs(res *Results) []slog.Attr {
	rows := res.CPIRows()
	attrs := make([]slog.Attr, len(rows))
	for i, r := range rows {
		attrs[i] = slog.Float64(r.Activity, r.Cycles)
	}
	return attrs
}

// emitFault persists a workload's typed fault — with its flight
// snapshot — after the workload's buffered events. Called only from
// the single-threaded merge path, so fault events land at the same
// file position at any Parallelism.
func (s *runState) emitFault(mf *MachineFault) {
	s.led.Emit(runlog.FaultEvent(mf.Workload.String(), mf.Attempts, mf.UPC,
		mf.Cycle, mf.Site, mf.Cause, mf.Retrying, mf.Flight))
}

// failWorkload finalizes a failing workload on the merge path: absorb
// its buffered ledger events, persist the typed fault, and wrap the
// error per the public convention.
func (s *runState) failWorkload(child *runlog.Child, err error) error {
	s.led.Absorb(child)
	var mf *MachineFault
	if errors.As(err, &mf) {
		s.emitFault(mf)
	}
	return wrapWorkloadErr(err)
}
