package vax780

// The parallel-run scaling benchmark behind BENCH_parallel.json and
// `make bench-parallel`: one composite of eight workload machines, run
// at worker counts 1/2/4/8. On a multi-core host the wall-clock time
// should drop near-linearly until workers exceed cores; on any host the
// merged results are bit-exact across the whole curve (the determinism
// suite in parallel_test.go holds the proof).

import (
	"fmt"
	"testing"
)

// benchParallelWorkloads is the eight-machine composite: the five
// experiments plus repeats, so an 8-worker pool has one job per worker.
func benchParallelWorkloads() []WorkloadID {
	ids := AllWorkloads()
	ids = append(ids, TimesharingA, TimesharingB, RTEScientific)
	return ids
}

func BenchmarkParallelRun(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{
					Instructions: 10_000,
					Workloads:    benchParallelWorkloads(),
					Parallelism:  j,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = 0
				for _, w := range res.PerWorkload {
					cycles += w.Cycles
				}
			}
			b.ReportMetric(float64(cycles), "sim_cycles/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/sim_cycle")
		})
	}
}

// BenchmarkSweepThroughput measures the sweep engine on a small
// design-point fan: shared trace generation is amortized across points,
// so per-point cost should approach a bare Run of the same length.
func BenchmarkSweepThroughput(b *testing.B) {
	points := []SweepPoint{}
	for _, ways := range []int{1, 2, 4} {
		points = append(points, SweepPoint{
			Label: fmt.Sprintf("%d-way", ways),
			Config: RunConfig{
				Instructions: 10_000,
				Workloads:    []WorkloadID{TimesharingA},
				CacheWays:    ways,
			},
		})
	}
	for i := 0; i < b.N; i++ {
		for _, r := range Sweep(points, SweepOptions{}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(points)), "points/op")
}
