package vax780

// Live fleet progress: the worker slots of a run (or sweep) publish
// their position through lock-free cells; the runlog Tracker samples
// them periodically and derives rates and ETAs. The simulation side
// only ever stores atomics — every wall-clock read lives in
// internal/runlog, keeping the run itself clock-free.

import (
	"sync/atomic"

	"vax780/internal/machine"
	"vax780/internal/runlog"
)

// Progress is one fleet-progress snapshot, delivered to the
// RunConfig.Progress / SweepOptions.Progress callback, the telemetry
// /progress endpoint, and vaxtop.
type Progress = runlog.Snapshot

// ProgressWorker is the per-worker view inside a Progress snapshot.
type ProgressWorker = runlog.WorkerProgress

// slotJob is the unit a worker slot is currently executing.
type slotJob struct {
	label string
	total uint64 // instruction target of the unit
	cell  *machine.ProgressCell
}

// workerSlot is one pool worker's progress mailbox. The worker stores
// a job pointer at unit start and nil at unit end; the sampler reads
// whatever is current. Fault/retry tallies accumulate across units.
type workerSlot struct {
	idx     int
	prefix  string // label prefix (sweeps: the point label)
	cur     atomic.Pointer[slotJob]
	faults  atomic.Uint64
	retries atomic.Uint64
}

// begin marks the slot busy on a new unit. Nil-safe.
func (s *workerSlot) begin(label string, total uint64, cell *machine.ProgressCell) {
	if s == nil {
		return
	}
	j := &slotJob{label: s.prefix + label, total: total, cell: cell}
	s.cur.Store(j)
}

// end marks the slot idle. Nil-safe.
func (s *workerSlot) end() {
	if s == nil {
		return
	}
	s.cur.Store(nil)
}

// noteFault tallies one machine check seen by this slot. Nil-safe.
func (s *workerSlot) noteFault() {
	if s != nil {
		s.faults.Add(1)
	}
}

// noteRetry tallies one supervisor retry. Nil-safe.
func (s *workerSlot) noteRetry() {
	if s != nil {
		s.retries.Add(1)
	}
}

// fleet aggregates a run's worker slots plus the run-level totals the
// tracker needs for overall ETA. The merge path (single goroutine)
// advances the done counters; workers advance their own slots.
type fleet struct {
	slots       []*workerSlot
	totalUnits  int
	totalInstrs uint64
	doneUnits   atomic.Int64
	doneInstrs  atomic.Uint64
	doneCycles  atomic.Uint64
}

// newFleet builds a fleet of `workers` slots tracking `units` total
// units of `instrPerUnit` instructions each.
func newFleet(units, workers int, instrPerUnit uint64) *fleet {
	if workers < 1 {
		workers = 1
	}
	f := &fleet{
		totalUnits:  units,
		totalInstrs: uint64(units) * instrPerUnit,
		slots:       make([]*workerSlot, workers),
	}
	for i := range f.slots {
		f.slots[i] = &workerSlot{idx: i}
	}
	return f
}

// slot returns worker i's slot (clamped, so a caller can never index
// out of the pool).
func (f *fleet) slot(i int) *workerSlot {
	if f == nil {
		return nil
	}
	if i < 0 || i >= len(f.slots) {
		i = 0
	}
	return f.slots[i]
}

// noteDone folds one completed unit into the fleet totals. Nil-safe.
func (f *fleet) noteDone(instrs, cycles uint64) {
	if f == nil {
		return
	}
	f.doneUnits.Add(1)
	f.doneInstrs.Add(instrs)
	f.doneCycles.Add(cycles)
}

// sample is the tracker's closure: one consistent-enough observation
// of the whole fleet (the cells are independent atomics; exactness is
// not required of a progress display).
func (f *fleet) sample() runlog.FleetSample {
	fs := runlog.FleetSample{
		DoneUnits:   int(f.doneUnits.Load()),
		TotalUnits:  f.totalUnits,
		DoneInstrs:  f.doneInstrs.Load(),
		DoneCycles:  f.doneCycles.Load(),
		TotalInstrs: f.totalInstrs,
		Workers:     make([]runlog.WorkerSample, len(f.slots)),
	}
	for i, s := range f.slots {
		w := runlog.WorkerSample{
			Worker:  i,
			Faults:  s.faults.Load(),
			Retries: s.retries.Load(),
		}
		if j := s.cur.Load(); j != nil {
			w.Busy = true
			w.Label = j.label
			w.TotalInstrs = j.total
			w.Instrs, w.Cycles = j.cell.Load()
		}
		fs.Workers[i] = w
	}
	return fs
}
