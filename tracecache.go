package vax780

// Shared read-only trace cache. Workload generation is deterministic —
// a trace is a pure function of its workload shape — and machines
// never write the traces they execute (one trace already drives any
// number of concurrent machines under -j). Regenerating the identical
// trace for every Run was therefore pure overhead, and profiling the
// hot-loop benchmarks showed it dominating per-run host time once the
// superword engine had cut the dispatch cost: the 10k-instruction
// TIMESHARING-A trace costs several milliseconds of sampling,
// encoding, and allocation (plus the GC pressure of its garbage) per
// Run. Every run now resolves its traces through a process-wide cache
// of the sweep's proven design: same key, same immutability argument,
// same concurrency story. The cache is bounded (small LRU) so
// long-lived processes serving varied shapes — vaxd above all — hold a
// few hot traces, not an unbounded history.

import (
	"sync"

	"vax780/internal/workload"
)

// traceKey is the workload-shape identity of a generated trace:
// everything generation depends on. Two runs (or sweep design points)
// differing only in hardware parameters, fault plans, observers, or
// fusion share one trace — exactly the paper's method of replaying one
// measured address trace against many cache geometries (§5).
type traceKey struct {
	id      WorkloadID
	instr   int
	headway int
}

// traceCache shares generated (immutable) traces across runs. A zero
// cap means unbounded (the sweep's private cache: its key set is the
// sweep's own point list); a positive cap evicts least-recently-used
// entries beyond it (the process-wide cache).
type traceCache struct {
	mu    sync.Mutex
	m     map[traceKey]*workload.Trace
	order []traceKey // LRU order, oldest first; maintained when cap > 0
	cap   int
}

func newTraceCache() *traceCache {
	return &traceCache{m: make(map[traceKey]*workload.Trace)}
}

// sharedTraces is the process-wide cache every Run resolves traces
// through unless a sweep attached its own. Eight entries comfortably
// hold the standard five-workload composite plus custom shapes.
var sharedTraces = &traceCache{
	m:   make(map[traceKey]*workload.Trace),
	cap: 8,
}

// get returns the cached trace for the workload shape, generating it
// on first use. Generation holds the lock: concurrent requests for the
// same shape must not generate twice, and distinct shapes arriving
// together are rare enough (one per workload startup) that a per-key
// latch is not worth its complexity.
func (tc *traceCache) get(id WorkloadID, p workload.Profile, cfg *RunConfig) (*workload.Trace, error) {
	key := traceKey{id: id, instr: cfg.Instructions, headway: cfg.CtxSwitchHeadway}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tr, ok := tc.m[key]; ok {
		tc.touch(key)
		return tr, nil
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	tc.m[key] = tr
	tc.touch(key)
	if tc.cap > 0 && len(tc.m) > tc.cap {
		oldest := tc.order[0]
		tc.order = tc.order[1:]
		delete(tc.m, oldest)
	}
	return tr, nil
}

// touch moves key to the most-recently-used end of the LRU order.
func (tc *traceCache) touch(key traceKey) {
	if tc.cap <= 0 {
		return
	}
	for i, k := range tc.order {
		if k == key {
			tc.order = append(tc.order[:i], tc.order[i+1:]...)
			break
		}
	}
	tc.order = append(tc.order, key)
}
