package vax780

// Robustness tests: the fault-injection harness, the crash-safe
// supervisor, and the degradation-aware reduction.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vax780/internal/upc"
)

// TestZeroRateFaultPlanBitExact is the harness's no-perturbation
// property: attaching a fault plan whose every rate is zero must
// reproduce the unfaulted run bit-exactly — same histogram, same
// cycles, same report.
func TestZeroRateFaultPlanBitExact(t *testing.T) {
	base := RunConfig{Instructions: 8000, Workloads: []WorkloadID{TimesharingA, RTECommercial}}

	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = &FaultConfig{Seed: 12345} // all rates zero
	zero, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}

	if *clean.Histogram() != *zero.Histogram() {
		t.Error("zero-rate fault plan changed the composite histogram")
	}
	for i := range clean.PerWorkload {
		if clean.PerWorkload[i] != zero.PerWorkload[i] {
			t.Errorf("workload %d result changed: %+v vs %+v",
				i, clean.PerWorkload[i], zero.PerWorkload[i])
		}
	}
	if clean.Report() != zero.Report() {
		t.Error("zero-rate fault plan changed the report")
	}
	if zero.FaultInjections != "none" {
		t.Errorf("zero-rate plan injected: %s", zero.FaultInjections)
	}
}

// TestCheckpointResume kills a composite run after its first workload
// (via the haltAfter seam) and resumes it: the resumed composite must
// be bit-identical to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	base := RunConfig{
		Instructions: 6000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific, RTECommercial},
	}

	uninterrupted, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	killed := base
	killed.Checkpoint = ckpt
	killed.haltAfter = 1
	if _, err := Run(killed); !errors.Is(err, errRunHalted) {
		t.Fatalf("halted run: err = %v, want errRunHalted", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	resumed := base
	resumed.Checkpoint = ckpt
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", res.Resumed)
	}
	if *res.Histogram() != *uninterrupted.Histogram() {
		t.Error("resumed composite histogram differs from uninterrupted run")
	}
	if len(res.PerWorkload) != len(uninterrupted.PerWorkload) {
		t.Fatalf("resumed %d workloads, want %d",
			len(res.PerWorkload), len(uninterrupted.PerWorkload))
	}
	for i := range res.PerWorkload {
		if res.PerWorkload[i] != uninterrupted.PerWorkload[i] {
			t.Errorf("workload %d: %+v vs %+v",
				i, res.PerWorkload[i], uninterrupted.PerWorkload[i])
		}
	}
	if res.Report() != uninterrupted.Report() {
		t.Error("resumed report differs from uninterrupted run")
	}
	if res.WorkloadComparison() != uninterrupted.WorkloadComparison() {
		t.Error("resumed per-workload comparison differs")
	}
}

// TestResumeWithoutCheckpointFile starts from scratch when the
// checkpoint file does not exist.
func TestResumeWithoutCheckpointFile(t *testing.T) {
	cfg := RunConfig{
		Instructions: 3000,
		Workloads:    []WorkloadID{TimesharingA},
		Checkpoint:   filepath.Join(t.TempDir(), "absent.ckpt"),
		Resume:       true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 {
		t.Errorf("Resumed = %d, want 0", res.Resumed)
	}
}

// TestCheckpointMismatch: a checkpoint written under one measurement
// configuration must refuse to resume a different one.
func TestCheckpointMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	first := RunConfig{
		Instructions: 3000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
		Checkpoint:   ckpt,
		haltAfter:    1,
	}
	if _, err := Run(first); !errors.Is(err, errRunHalted) {
		t.Fatal(err)
	}

	changed := first
	changed.haltAfter = 0
	changed.Resume = true
	changed.Instructions = 4000 // measurement-relevant change
	if _, err := Run(changed); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("changed config: err = %v, want ErrCheckpointMismatch", err)
	}

	// More recorded workloads than the resuming run has is a mismatch
	// too, not an index panic.
	shrunk := first
	shrunk.haltAfter = 0
	shrunk.Resume = true
	shrunk.Workloads = nil // filled to all five; hash differs
	if _, err := Run(shrunk); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("shrunk workloads: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointCorruptionDetected: a flipped byte or truncation in the
// checkpoint file must surface as corruption, never as silent bad data.
func TestCheckpointCorruptionDetected(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := RunConfig{
		Instructions: 3000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
		Checkpoint:   ckpt,
		haltAfter:    1,
	}
	if _, err := Run(cfg); !errors.Is(err, errRunHalted) {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	resume := cfg
	resume.haltAfter = 0
	resume.Resume = true

	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := os.WriteFile(ckpt, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(resume); !errors.Is(err, upc.ErrCorrupt) {
		t.Errorf("flipped byte: err = %v, want ErrCorrupt", err)
	}

	if err := os.WriteFile(ckpt, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(resume); !errors.Is(err, upc.ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
}

// TestMachineFaultTyped: with machine-fault rates high enough to abort,
// Run returns a typed *MachineFault matching ErrMachineFault — and
// never lets a panic escape.
func TestMachineFaultTyped(t *testing.T) {
	_, err := Run(RunConfig{
		Instructions: 8000,
		Workloads:    []WorkloadID{TimesharingA},
		Faults: &FaultConfig{
			Seed:       3,
			MemParity:  0.01, // aborts well before retries can clear it
			MaxRetries: 1, RetryBackoff: 1,
		},
	})
	if err == nil {
		t.Fatal("1% parity rate completed without a fault")
	}
	if !errors.Is(err, ErrMachineFault) {
		t.Fatalf("err = %v, does not match ErrMachineFault", err)
	}
	var mf *MachineFault
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, not a *MachineFault", err)
	}
	if mf.Workload != TimesharingA || mf.Attempts < 2 || mf.Site == "" || mf.Cause == "" {
		t.Errorf("fault detail incomplete: %+v", mf)
	}
	if !mf.Retrying {
		t.Error("parity fault should be flagged transient")
	}
}

// TestMeasurementFaultsAnnotated: board-damage rates that corrupt the
// histogram but never abort the machine must complete with the
// degradation annotated in the report, not fail.
func TestMeasurementFaultsAnnotated(t *testing.T) {
	res, err := Run(RunConfig{
		Instructions: 8000,
		Workloads:    []WorkloadID{TimesharingA},
		Faults: &FaultConfig{
			Seed:        9,
			UPCSaturate: 0.001, // forces counters to capacity: always detectable
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultInjections == "" || res.FaultInjections == "none" {
		t.Fatalf("no injections recorded: %q", res.FaultInjections)
	}
	q := res.Analysis().Quality()
	if q == nil || !q.Degraded() {
		t.Fatal("forced saturation not detected as degradation")
	}
	if q.Saturated == 0 {
		t.Errorf("quality = %+v, want saturated buckets", q)
	}
	if c := q.Confidence(); c <= 0 || c >= 1 {
		t.Errorf("confidence = %v, want in (0,1)", c)
	}
	rep := res.Report()
	for _, want := range []string{"Measurement Quality", "coverage", "saturated"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestHealthyReportHasNoQualitySection: the quality rendering must not
// change the report of a clean run.
func TestHealthyReportHasNoQualitySection(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 3000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Analysis().Quality(); q == nil || q.Degraded() {
		t.Fatalf("clean run quality = %+v", q)
	}
	rep := res.Report()
	if strings.Contains(rep, "Measurement Quality") || strings.Contains(rep, "coverage") {
		t.Error("clean-run report carries degradation annotations")
	}
}

// TestAtomicHistogramSave: SaveHistogramFile must leave a loadable dump
// and no temp droppings.
func TestAtomicHistogramSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "composite.upch")
	res, err := Run(RunConfig{Instructions: 3000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.SaveHistogramFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := LoadHistogram(f)
	if err != nil {
		t.Fatal(err)
	}
	if *loaded.Histogram() != *res.Histogram() {
		t.Error("saved dump does not round-trip")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the dump", len(entries))
	}
}

// FuzzReadDump feeds arbitrary bytes to the checkpoint dump reader: it
// must never panic and must reject anything that does not checksum.
func FuzzReadDump(f *testing.F) {
	dir := f.TempDir()
	cfg := RunConfig{
		Instructions: 2000,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific},
		Checkpoint:   filepath.Join(dir, "seed.ckpt"),
		haltAfter:    1,
	}
	if _, err := Run(cfg); !errors.Is(err, errRunHalted) {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		f.Fatal(err)
	}
	hash := cfg.checkpointHash()

	f.Add(seed)
	f.Add([]byte("UPCK"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := readCheckpoint(path, hash)
		if err != nil {
			return
		}
		// Anything accepted must survive a rewrite-and-reread cycle.
		out := filepath.Join(t.TempDir(), "rewrite.ckpt")
		if err := writeCheckpoint(out, hash, recs); err != nil {
			t.Fatal(err)
		}
		if _, err := readCheckpoint(out, hash); err != nil {
			t.Fatalf("accepted checkpoint does not round-trip: %v", err)
		}
	})
}
