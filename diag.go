package vax780

import (
	"fmt"
	"strings"

	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/ucode"
	"vax780/internal/ulint"
	"vax780/internal/workload"
)

// BlockDiagram renders the Figure 1 block diagram of the stock
// VAX-11/780 configuration without running a workload.
func BlockDiagram() string {
	m := machine.New(machine.Config{Mem: mem.Config{}}, workload.NewProgram())
	return m.Describe()
}

// ControlStoreListing renders the full microprogram listing, one line per
// control-store location.
func ControlStoreListing() string {
	return machine.ROM().Image.Listing()
}

// VerifyMicrocode runs the static control-store checker over the
// microprogram and returns its findings as strings (empty = clean).
func VerifyMicrocode() []string {
	var out []string
	for _, i := range ucode.Verify(machine.ROM().Image) {
		out = append(out, i.String())
	}
	return out
}

// LintControlStore runs the whole-program static analyzer (the
// dispatch-rooted CFG passes of internal/ulint) over the shipped
// microprogram and dispatch tables.
func LintControlStore() *ulint.Report {
	return ulint.AnalyzeROM(machine.ROM())
}

// ControlStoreSummary renders region extents: how many microwords each
// Table 8 activity region occupies.
func ControlStoreSummary() string {
	img := machine.ROM().Image
	ext := img.RegionExtents()
	var b strings.Builder
	fmt.Fprintf(&b, "Control store: %d/%d microwords used\n", img.Size(), ucode.ControlStoreSize)
	total := 0
	for r := ucode.RegDecode; r < ucode.NumRegions; r++ {
		fmt.Fprintf(&b, "  %-12s %5d microwords\n", r, ext[r])
		total += ext[r]
	}
	fmt.Fprintf(&b, "  %-12s %5d microwords\n", "(reserved)", img.Size()-total)
	return b.String()
}
