package vax780

// Tests of the host-time profiler: the sampled attribution is
// bit-exact across Parallelism (cycle-driven sampling, workload-order
// merge), the exact engine's attribution is byte-identical seq↔par,
// the two engines agree on the hot flows, the /prof endpoint serves
// the live profile, the span exports carry the run→workload→flow
// hierarchy, and FlightDepth validation rejects non-power-of-two
// rings up front.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"vax780/internal/prof"
)

// profiledRun executes cfg with a fresh profiler attached and returns
// the profiler, the results, and the stripped ledger bytes.
func profiledRun(t *testing.T, cfg RunConfig, parallelism int) (*Profiler, *Results, []byte) {
	t.Helper()
	p := &Profiler{}
	cfg.Profiler = p
	cfg.Parallelism = parallelism
	var led bytes.Buffer
	cfg.Ledger = &led
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if verr := ValidateLedger(led.Bytes()); verr != nil {
		t.Fatalf("profiled ledger fails schema validation: %v", verr)
	}
	stripped, err := StripLedgerWallClock(led.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return p, res, stripped
}

// sampledFingerprint reduces a sampling profile to its deterministic
// core: everything except the wall-clock-derived ns fields.
func sampledFingerprint(p *Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s stride=%d samples=%d cycles=%d unattr=%d\n",
		p.Engine, p.Stride, p.Samples, p.TotalCycles, p.Unattributed)
	for _, f := range p.Flows {
		fmt.Fprintf(&b, "%s %05o %d %.9f %v\n", f.Name, f.Entry, f.Cycles, f.Share, f.ClassCycles)
	}
	return b.String()
}

// TestProfilerParallelBitExact: the sampled profile — flows, cycles,
// shares, class vectors — and the stripped ledger (including the prof
// event) are identical at Parallelism 1 and 4. The sampler triggers on
// cycle count, not on time, and snapshots merge in workload order, so
// parallel scheduling cannot move a single sample.
func TestProfilerParallelBitExact(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific, RTECommercial},
	}
	sp, sres, sled := profiledRun(t, cfg, 1)
	pp, pres, pled := profiledRun(t, cfg, 4)

	sprof, pprof := sp.Profile(), pp.Profile()
	if sprof == nil || pprof == nil {
		t.Fatal("profiler published no profile")
	}
	if sf, pf := sampledFingerprint(sprof), sampledFingerprint(pprof); sf != pf {
		t.Errorf("sampled profiles differ across parallelism:\nseq:\n%s\npar:\n%s", sf, pf)
	}
	if !bytes.Equal(sled, pled) {
		t.Error("stripped profiled ledgers differ across parallelism")
	}
	if !strings.Contains(string(sled), `"msg":"prof"`) {
		t.Error("profiled ledger carries no prof event")
	}

	// The exact engine prices the composite histogram, which is already
	// bit-exact seq↔par; its serialized attribution must match too.
	cal := prof.Uniform(10)
	sj, err := json.Marshal(sres.Profile(cal))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(pres.Profile(cal))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Error("exact profiles differ across parallelism")
	}
}

// TestExactSampledTopFlowsAgree: the two engines rank the same five
// flows hottest. Sampling is deterministic (stride-driven), so this is
// a fixed property of the workload, not a statistical one.
func TestExactSampledTopFlowsAgree(t *testing.T) {
	p := &Profiler{}
	res, err := Run(RunConfig{
		Instructions: 20_000,
		Workloads:    []WorkloadID{TimesharingA},
		Profiler:     p,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := res.Profile(nil)
	sampled := p.Profile()
	if sampled == nil {
		t.Fatal("no sampled profile")
	}
	names := func(pr *Profile) map[string]bool {
		m := map[string]bool{}
		for _, f := range pr.Top(5) {
			m[f.Name] = true
		}
		return m
	}
	en, sn := names(exact), names(sampled)
	if len(en) != 5 || len(sn) != 5 {
		t.Fatalf("top-5 sizes: exact %d, sampled %d", len(en), len(sn))
	}
	for n := range en {
		if !sn[n] {
			t.Errorf("exact top-5 flow %q missing from sampled top-5 %v", n, sn)
		}
	}

	// The sampled cycle estimate of the hottest flow is within 10% of
	// the exact count (stride 64 over ~10^5 cycles).
	eTop, sTop := exact.Top(1)[0], sampled.Top(1)[0]
	if eTop.Name != sTop.Name {
		t.Fatalf("hottest flow: exact %q, sampled %q", eTop.Name, sTop.Name)
	}
	ratio := float64(sTop.Cycles) / float64(eTop.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("hottest flow %q: sampled %d vs exact %d cycles (ratio %.3f)",
			eTop.Name, sTop.Cycles, eTop.Cycles, ratio)
	}
}

// TestProfEndpointServesProfile: /prof is 503 before any profiler run
// and serves the latest profile JSON afterwards.
func TestProfEndpointServesProfile(t *testing.T) {
	tel := NewTelemetry(1500, 0)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/prof")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/prof before any run: status %d, want 503", resp.StatusCode)
	}

	p := &Profiler{}
	if _, err := Run(RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA},
		Telemetry:    tel,
		Profiler:     p,
	}); err != nil {
		t.Fatal(err)
	}

	resp, err = srv.Client().Get(srv.URL + "/prof")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/prof after run: status %d, want 200", resp.StatusCode)
	}
	var served Profile
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Engine != "sampling" || len(served.Flows) == 0 {
		t.Fatalf("served profile: engine %q, %d flows", served.Engine, len(served.Flows))
	}
}

// TestProfilerSpanExports: the span tree has the run → workload → flow
// shape and both export formats carry it.
func TestProfilerSpanExports(t *testing.T) {
	var trace, spans bytes.Buffer
	p := &Profiler{Trace: &trace, Spans: &spans}
	ids := []WorkloadID{TimesharingA, RTEEducational}
	if _, err := Run(RunConfig{
		Instructions: 1500,
		Workloads:    ids,
		Profiler:     p,
	}); err != nil {
		t.Fatal(err)
	}

	root := p.SpanTree()
	if root == nil || root.Kind != "run" {
		t.Fatalf("span root = %+v, want a run span", root)
	}
	if len(root.Children) != len(ids) {
		t.Fatalf("run span has %d children, want %d workloads", len(root.Children), len(ids))
	}
	for _, ws := range root.Children {
		if ws.Kind != "workload" {
			t.Errorf("child span kind %q, want workload", ws.Kind)
		}
		if len(ws.Children) == 0 {
			t.Errorf("workload span %q has no flow children", ws.Name)
		}
	}

	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &chrome); err != nil {
		t.Fatalf("Chrome trace is not JSON: %v", err)
	}
	if len(chrome.TraceEvents) < len(ids)+1 {
		t.Errorf("Chrome trace has %d events", len(chrome.TraceEvents))
	}
	lines := strings.Split(strings.TrimSpace(spans.String()), "\n")
	if len(lines) < len(ids)+1 {
		t.Errorf("span JSONL has %d rows", len(lines))
	}
	for _, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("span JSONL row %q: %v", line, err)
		}
	}
}

// TestFlightDepthValidation: a positive non-power-of-two FlightDepth
// is rejected before any work; powers of two, zero, and negative
// depths pass.
func TestFlightDepthValidation(t *testing.T) {
	base := RunConfig{Instructions: 200, Workloads: []WorkloadID{TimesharingA}}

	cfg := base
	cfg.FlightDepth = 100
	if _, err := Run(cfg); err == nil {
		t.Fatal("FlightDepth=100 accepted, want rejection")
	} else if !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("FlightDepth=100 rejection says %q, want a power-of-two hint", err)
	}

	for _, depth := range []int{0, -1, 64, 256} {
		cfg := base
		cfg.FlightDepth = depth
		if _, err := Run(cfg); err != nil {
			t.Errorf("FlightDepth=%d rejected: %v", depth, err)
		}
	}
}
