package vax780

// The parallel execution engine of a composite run: the paper's
// composite histogram is the sum of independent per-workload
// measurements (§2.2), so the workload machines can execute
// concurrently as long as the merge is performed in workload order.
// Everything order-dependent — histogram summing, per-workload result
// rows, checkpoint records, telemetry splicing, fault-injection count
// aggregation — happens on the single merging goroutine, strictly in
// workload order, through the same runState.merge the sequential path
// uses. That shared merge is the bit-exactness argument in one line:
// the two paths differ only in *when* workloads execute, never in how
// their results combine.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vax780/internal/faults"
	"vax780/internal/runlog"
	"vax780/internal/telemetry"
)

// ErrSharedFaultPlan reports one *faults.Plan attached to more than
// one workload of a parallel run. Plan decision streams are stateful
// and single-goroutine; sharing one across concurrent machines would
// race and destroy determinism. The public API cannot construct this
// (Run derives an independent child plan per workload), so hitting it
// means an internal caller wired jobs by hand.
var ErrSharedFaultPlan = errors.New("vax780: fault plan shared between parallel workloads")

// wlJob is one pending workload of a parallel run.
type wlJob struct {
	idx  int // absolute index in cfg.Workloads
	id   WorkloadID
	tel  *telemetry.Telemetry // per-workload child sink (nil: no telemetry)
	plan *faults.Plan         // per-workload child plan (nil: no faults)
	led  *runlog.Child        // per-workload event buffer (nil: no ledger)
}

// wlOutcome is a workload's execution result, written by its worker
// and read by the merger after the job's ready channel closes.
type wlOutcome struct {
	one     *oneRun
	retries int
	err     error
}

// runParallel executes the pending workloads on a bounded worker pool
// and merges in workload order.
func (s *runState) runParallel() error {
	jobs := make([]wlJob, 0, len(s.cfg.Workloads)-len(s.recs))
	for i, id := range s.cfg.Workloads {
		if i < len(s.recs) {
			continue // resumed from the checkpoint
		}
		j := wlJob{idx: i, id: id, plan: s.cfg.childPlan(i), led: s.led.Child()}
		if s.tel != nil {
			j.tel = s.tel.NewChild()
		}
		jobs = append(jobs, j)
	}
	return s.runJobs(jobs)
}

// runJobs is the engine proper, factored out so tests can drive it
// with hand-built jobs (e.g. the shared-plan guard).
func (s *runState) runJobs(jobs []wlJob) error {
	seen := make(map[*faults.Plan]struct{}, len(jobs))
	for _, j := range jobs {
		if j.plan == nil {
			continue
		}
		if _, dup := seen[j.plan]; dup {
			return fmt.Errorf("%w (workload %s)", ErrSharedFaultPlan, j.id)
		}
		seen[j.plan] = struct{}{}
	}

	workers := s.cfg.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	outcomes := make([]wlOutcome, len(jobs))
	ready := make([]chan struct{}, len(jobs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64 // job dispenser
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := s.fleet.slot(w)
			for {
				n := int(next.Add(1)) - 1
				if n >= len(jobs) {
					return
				}
				if !aborted.Load() {
					j := jobs[n]
					if cerr := s.cfg.context().Err(); cerr != nil {
						// Canceled before this workload started: skip it.
						// Workloads already executing run to completion and
						// merge (and checkpoint) normally — cancellation
						// granularity is the workload, same as sequential.
						outcomes[n] = wlOutcome{err: cerr}
					} else if tr, err := s.cfg.workloadTrace(j.id); err != nil {
						outcomes[n] = wlOutcome{err: fmt.Errorf("%s: %w", j.id, err)}
					} else {
						env := wlEnv{idx: j.idx, id: j.id, tel: j.tel,
							plan: j.plan, led: j.led, slot: slot}
						one, retries, rerr := runWorkload(env, tr, s.cfg)
						outcomes[n] = wlOutcome{one: one, retries: retries, err: rerr}
					}
				}
				close(ready[n])
			}
		}(w)
	}
	// No worker may outlive the run (checkpoint files, the monitor
	// pool, and the race detector all assume it).
	defer wg.Wait()

	for n, j := range jobs {
		<-ready[n]
		out := outcomes[n]
		if out.err != nil {
			aborted.Store(true)
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				// Not a workload failure: the run was canceled. Everything
				// merged so far is checkpointed; report it in the public
				// cancellation form.
				return fmt.Errorf("vax780: run canceled: %w", out.err)
			}
			return s.failWorkload(j.led, out.err)
		}
		if s.tel != nil {
			// Same event order as the sequential timeline: the phase
			// marker (which also closes the previous workload's open
			// trace slices — already closed here by the child's own
			// Finish) precedes the workload's observations.
			s.tel.Phase(j.id.String())
			s.tel.Absorb(j.tel)
		}
		// Same discipline for the ledger: the workload's buffered events
		// persist here, in workload order, at any worker count.
		s.led.Absorb(j.led)
		if err := s.merge(j.id, out.one, out.retries, j.plan); err != nil {
			aborted.Store(true)
			return err
		}
	}
	return nil
}
