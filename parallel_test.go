package vax780

// The parallel-run acceptance suite: Parallelism > 1 must be an
// implementation detail, invisible in every observable byte. Each test
// runs the same configuration sequentially (Parallelism: 1) and
// concurrently, and compares the strongest artifacts available —
// histogram arrays, rendered reports, telemetry series and Chrome
// traces, fault-injection tallies, checkpoint files.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vax780/internal/faults"
	"vax780/internal/upc"
)

// runPair executes cfg sequentially and with the given parallelism and
// returns both results. cfg must not set Parallelism.
func runPair(t *testing.T, cfg RunConfig, workers int) (seq, par *Results) {
	t.Helper()
	scfg := cfg
	scfg.Parallelism = 1
	seq, err := Run(scfg)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	pcfg := cfg
	pcfg.Parallelism = workers
	par, err = Run(pcfg)
	if err != nil {
		t.Fatalf("parallel run (j=%d): %v", workers, err)
	}
	return seq, par
}

// compareResults applies the bit-exactness checks shared by the suite.
func compareResults(t *testing.T, seq, par *Results) {
	t.Helper()
	if *seq.Histogram() != *par.Histogram() {
		t.Error("composite histogram differs")
	}
	if !reflect.DeepEqual(seq.PerWorkload, par.PerWorkload) {
		t.Errorf("per-workload rows differ:\nseq %+v\npar %+v", seq.PerWorkload, par.PerWorkload)
	}
	if sr, pr := seq.Report(), par.Report(); sr != pr {
		t.Error("rendered report differs")
	}
	if sw, pw := seq.WorkloadComparison(), par.WorkloadComparison(); sw != pw {
		t.Error("workload comparison differs")
	}
	if seq.CPI() != par.CPI() {
		t.Errorf("CPI differs: %g sequential, %g parallel", seq.CPI(), par.CPI())
	}
	if seq.Retries != par.Retries {
		t.Errorf("retries differ: %d sequential, %d parallel", seq.Retries, par.Retries)
	}
	if seq.FaultInjections != par.FaultInjections {
		t.Errorf("fault injections differ:\nseq %s\npar %s",
			seq.FaultInjections, par.FaultInjections)
	}
}

// TestParallelBitExact sweeps workload counts and worker counts: the
// composite must be byte-identical to the sequential run in every case,
// including workers > workloads and workers > GOMAXPROCS.
func TestParallelBitExact(t *testing.T) {
	sets := [][]WorkloadID{
		{TimesharingA, RTEScientific},
		{TimesharingA, TimesharingB, RTEEducational, RTECommercial},
		AllWorkloads(),
	}
	for _, ids := range sets {
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("wl=%d/j=%d", len(ids), workers), func(t *testing.T) {
				seq, par := runPair(t, RunConfig{
					Instructions: 1500,
					Workloads:    ids,
				}, workers)
				compareResults(t, seq, par)
			})
		}
	}
}

// TestParallelTelemetryBitExact attaches the full telemetry stack to
// both runs: the interval time series, the live counters, and the
// Chrome trace must splice back to the sequential timeline exactly.
func TestParallelTelemetryBitExact(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1800,
		Workloads:    []WorkloadID{TimesharingA, RTEScientific, RTECommercial},
	}

	scfg := cfg
	scfg.Parallelism = 1
	scfg.Telemetry = NewTelemetry(1500, 200000)
	seq, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}

	pcfg := cfg
	pcfg.Parallelism = 3
	pcfg.Telemetry = NewTelemetry(1500, 200000)
	par, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}

	compareResults(t, seq, par)

	if sc, pc := scfg.Telemetry.Counters(), pcfg.Telemetry.Counters(); sc != pc {
		t.Errorf("live counters differ:\nseq %+v\npar %+v", sc, pc)
	}
	if sr, pr := scfg.Telemetry.IntervalRows(), pcfg.Telemetry.IntervalRows(); !reflect.DeepEqual(sr, pr) {
		t.Errorf("interval rows differ: %d sequential, %d parallel rows", len(sr), len(pr))
	}

	var scsv, pcsv bytes.Buffer
	if err := scfg.Telemetry.WriteIntervalsCSV(&scsv); err != nil {
		t.Fatal(err)
	}
	if err := pcfg.Telemetry.WriteIntervalsCSV(&pcsv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scsv.Bytes(), pcsv.Bytes()) {
		t.Error("interval CSV differs")
	}

	var strace, ptrace bytes.Buffer
	if err := scfg.Telemetry.WriteTrace(&strace); err != nil {
		t.Fatal(err)
	}
	if err := pcfg.Telemetry.WriteTrace(&ptrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(strace.Bytes(), ptrace.Bytes()) {
		t.Error("Chrome trace differs")
	}
}

// TestParallelFaultsBitExact: with a fault plan attached, each workload
// derives its own child plan from (seed, index), so the injection
// tallies, retries, and the degradation-annotated report must match the
// sequential run byte for byte.
func TestParallelFaultsBitExact(t *testing.T) {
	seq, par := runPair(t, RunConfig{
		Instructions: 1500,
		Workloads:    []WorkloadID{TimesharingA, TimesharingB, RTEScientific},
		Faults: &FaultConfig{
			Seed:    99,
			UPCDrop: 1e-4, UPCFlip: 1e-4, UPCSaturate: 1e-5,
		},
	}, 4)
	compareResults(t, seq, par)
	if seq.FaultInjections == "" {
		t.Error("fault run recorded no injections; the test exercises nothing")
	}
}

// TestParallelCheckpointBitExact: the checkpoint file written by a
// parallel run is byte-identical to the sequential one (records land in
// workload order), and resume interoperates freely — a sequentially
// written checkpoint resumes under a parallel run and vice versa.
func TestParallelCheckpointBitExact(t *testing.T) {
	dir := t.TempDir()
	cfg := RunConfig{
		Instructions: 1200,
		Workloads:    []WorkloadID{TimesharingA, RTEEducational, RTECommercial},
	}

	scfg := cfg
	scfg.Parallelism = 1
	scfg.Checkpoint = filepath.Join(dir, "seq.ckpt")
	seq, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Parallelism = 4
	pcfg.Checkpoint = filepath.Join(dir, "par.ckpt")
	par, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, seq, par)

	sb, err := os.ReadFile(scfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := os.ReadFile(pcfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Error("checkpoint files differ between sequential and parallel runs")
	}

	// Kill a sequential run after one workload, resume it in parallel.
	killed := cfg
	killed.Parallelism = 1
	killed.Checkpoint = filepath.Join(dir, "mixed.ckpt")
	killed.haltAfter = 1
	if _, err := Run(killed); !errors.Is(err, errRunHalted) {
		t.Fatalf("halted run: err = %v, want errRunHalted", err)
	}
	resumed := cfg
	resumed.Parallelism = 4
	resumed.Checkpoint = killed.Checkpoint
	resumed.Resume = true
	mixed, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Resumed != 1 {
		t.Errorf("resumed %d workloads, want 1", mixed.Resumed)
	}
	compareResults(t, seq, mixed)

	// And the reverse: kill a parallel run, resume sequentially.
	killedPar := cfg
	killedPar.Parallelism = 4
	killedPar.Checkpoint = filepath.Join(dir, "mixed2.ckpt")
	killedPar.haltAfter = 1
	if _, err := Run(killedPar); !errors.Is(err, errRunHalted) {
		t.Fatalf("halted parallel run: err = %v, want errRunHalted", err)
	}
	resumedSeq := cfg
	resumedSeq.Parallelism = 1
	resumedSeq.Checkpoint = killedPar.Checkpoint
	resumedSeq.Resume = true
	mixed2, err := Run(resumedSeq)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, seq, mixed2)
}

// TestParallelFaultsWithCheckpoint combines everything order-sensitive
// at once: faults, checkpointing, and a parallel pool.
func TestParallelFaultsWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := RunConfig{
		Instructions: 1200,
		Workloads:    []WorkloadID{TimesharingA, TimesharingB, RTEScientific},
		Faults: &FaultConfig{
			Seed:    7,
			UPCDrop: 1e-4, UPCFlip: 1e-4,
		},
	}
	scfg := cfg
	scfg.Parallelism = 1
	scfg.Checkpoint = filepath.Join(dir, "seq.ckpt")
	seq, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Parallelism = 2
	pcfg.Checkpoint = filepath.Join(dir, "par.ckpt")
	par, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, seq, par)
	sb, _ := os.ReadFile(scfg.Checkpoint)
	pb, _ := os.ReadFile(pcfg.Checkpoint)
	if !bytes.Equal(sb, pb) {
		t.Error("checkpoint files differ under faults")
	}
}

// TestParallelErrorPrecedence: when a workload aborts, the parallel run
// reports the same (lowest-index) error the sequential run would, not
// whichever worker failed first on the wall clock.
func TestParallelErrorPrecedence(t *testing.T) {
	cfg := RunConfig{
		Instructions: 2500,
		Workloads:    AllWorkloads(),
		Faults: &FaultConfig{
			Seed: 3, MemParity: 0.01,
			MaxRetries: 1, RetryBackoff: 1,
		},
	}
	scfg := cfg
	scfg.Parallelism = 1
	_, seqErr := Run(scfg)
	pcfg := cfg
	pcfg.Parallelism = 4
	_, parErr := Run(pcfg)
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("outcome differs: sequential err = %v, parallel err = %v", seqErr, parErr)
	}
	if seqErr == nil {
		t.Skip("fault rate produced no abort at this length; nothing to compare")
	}
	var smf, pmf *MachineFault
	if !errors.As(seqErr, &smf) || !errors.As(parErr, &pmf) {
		t.Fatalf("expected MachineFault from both: %v / %v", seqErr, parErr)
	}
	if smf.Workload != pmf.Workload || smf.UPC != pmf.UPC || smf.Cycle != pmf.Cycle {
		t.Errorf("fault identity differs:\nseq %+v\npar %+v", smf, pmf)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error text differs:\nseq %s\npar %s", seqErr, parErr)
	}
}

// TestSharedFaultPlanGuard drives the pool engine directly with one
// plan wired to two jobs — the misuse the public API cannot produce —
// and expects the typed refusal.
func TestSharedFaultPlanGuard(t *testing.T) {
	cfg := RunConfig{
		Instructions: 1000,
		Workloads:    []WorkloadID{TimesharingA, TimesharingB},
		Parallelism:  2,
	}
	cfg.fill()
	s := &runState{cfg: cfg, composite: &upc.Histogram{}, res: &Results{cfg: cfg}}
	plan := faults.NewPlan(1, faults.Rates{UPCDrop: 1e-6})
	jobs := []wlJob{
		{idx: 0, id: TimesharingA, plan: plan},
		{idx: 1, id: TimesharingB, plan: plan},
	}
	err := s.runJobs(jobs)
	if !errors.Is(err, ErrSharedFaultPlan) {
		t.Fatalf("err = %v, want ErrSharedFaultPlan", err)
	}
	if want := TimesharingB.String(); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the offending workload %s", err, want)
	}
}

// TestSweepMatchesIndividualRuns: a sweep point is an ordinary Run —
// sharing the trace cache with concurrent neighbours must not change a
// byte of its results.
func TestSweepMatchesIndividualRuns(t *testing.T) {
	mk := func(headway int) RunConfig {
		return RunConfig{
			Instructions:     1500,
			Workloads:        []WorkloadID{TimesharingA},
			CtxSwitchHeadway: headway,
		}
	}
	points := []SweepPoint{
		{Label: "fast-switch", Config: mk(700)},
		{Label: "paper", Config: mk(0)},
		{Label: "slow-switch", Config: mk(20000)},
		// Same shape as "paper": shares its cached trace.
		{Label: "paper-again", Config: mk(0)},
	}
	swept := Sweep(points, SweepOptions{Parallelism: 4})
	if len(swept) != len(points) {
		t.Fatalf("%d results for %d points", len(swept), len(points))
	}
	for i, r := range swept {
		if r.Label != points[i].Label {
			t.Errorf("result %d label %q, want %q (order must be input order)", i, r.Label, points[i].Label)
		}
		if r.Err != nil {
			t.Fatalf("point %q: %v", r.Label, r.Err)
		}
		solo, err := Run(points[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if *solo.Histogram() != *r.Results.Histogram() {
			t.Errorf("point %q: histogram differs from a solo Run", r.Label)
		}
		if solo.Report() != r.Results.Report() {
			t.Errorf("point %q: report differs from a solo Run", r.Label)
		}
	}
	if a, b := swept[1].Results, swept[3].Results; *a.Histogram() != *b.Histogram() {
		t.Error("identical design points disagree (trace cache not deterministic)")
	}
}

// TestSweepRejectsSingleRunState: telemetry sinks and checkpoint files
// are single-run state; attaching either to a sweep point is refused
// per point without failing the neighbours.
func TestSweepRejectsSingleRunState(t *testing.T) {
	good := RunConfig{Instructions: 1000, Workloads: []WorkloadID{TimesharingA}}
	withTel := good
	withTel.Telemetry = NewTelemetry(1000, 0)
	withCkpt := good
	withCkpt.Checkpoint = filepath.Join(t.TempDir(), "x.ckpt")

	swept := Sweep([]SweepPoint{
		{Label: "ok", Config: good},
		{Label: "tel", Config: withTel},
		{Label: "ckpt", Config: withCkpt},
	}, SweepOptions{})

	if swept[0].Err != nil || swept[0].Results == nil {
		t.Errorf("clean point failed: %v", swept[0].Err)
	}
	if swept[1].Err == nil {
		t.Error("telemetry point accepted; want error")
	}
	if swept[2].Err == nil {
		t.Error("checkpoint point accepted; want error")
	}
}
