package vax780

import (
	"sort"

	"vax780/internal/analysis"
	"vax780/internal/machine"
	"vax780/internal/workload"
)

// CustomWorkload defines a user workload by scaling the calibrated
// composite profile — running your own experiment under the paper's
// measurement methodology.
type CustomWorkload struct {
	Name  string
	Seed  int64
	Users int

	// Content multipliers; zero means unchanged.
	FloatScale   float64
	CharScale    float64
	DecimalScale float64
	ProcScale    float64
	SyscallScale float64
	LoopScale    float64

	// IdleFraction injects the VMS Null process (branch-to-self) the
	// paper deliberately excluded; see RunCustom's doc.
	IdleFraction float64

	// Locality overrides; zero means the calibrated defaults.
	HotPages  int
	ColdPages int
	ColdFrac  float64

	// Event headway overrides; zero means the Table 7 values.
	InterruptHeadway int
	CtxSwitchHeadway int
}

// RunCustom measures a custom workload on the stock 11/780 and returns
// the same Results as Run. Note the paper's warning about idle time
// (§2.2): with IdleFraction > 0 the Null process floods the
// per-instruction statistics — CPI drops toward the cost of a
// branch-to-self and every frequency is diluted — which is exactly why
// the paper excluded it.
func RunCustom(cw CustomWorkload, instructions int) (*Results, error) {
	p := workload.Custom(workload.CustomConfig{
		Name:             cw.Name,
		Seed:             cw.Seed,
		Instructions:     instructions,
		Users:            cw.Users,
		FloatScale:       cw.FloatScale,
		CharScale:        cw.CharScale,
		DecimalScale:     cw.DecimalScale,
		ProcScale:        cw.ProcScale,
		SyscallScale:     cw.SyscallScale,
		LoopScale:        cw.LoopScale,
		IdleFraction:     cw.IdleFraction,
		HotPages:         cw.HotPages,
		ColdPages:        cw.ColdPages,
		ColdFrac:         cw.ColdFrac,
		InterruptHeadway: cw.InterruptHeadway,
		CtxSwitchHeadway: cw.CtxSwitchHeadway,
	})
	cfg := RunConfig{Instructions: instructions}
	cfg.fill()
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	one, err := runOne(tr, cfg, nil, nil, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	hw := analysis.HWCounters{Mem: one.machine.Mem.Stats, IBConsumed: one.machine.IB.Consumed}
	res := &Results{
		cfg:      cfg,
		analysis: analysis.New(machine.ROM(), one.hist).WithHardwareCounters(hw),
		hist:     one.hist,
		describe: one.machine.Describe(),
	}
	res.PerWorkload = []WorkloadResult{{
		Workload:     NumWorkloads, // custom: outside the five
		Instructions: one.machine.Stats.Instrs,
		Cycles:       one.machine.E.Now,
		CPI:          one.machine.CPI(),
	}}
	return res, nil
}

// HotSpot is one ranked control-store location.
type HotSpot struct {
	Addr    uint16
	Label   string // nearest preceding flow label
	Region  string
	Cycles  uint64 // total (normal + stalled)
	Stalled uint64
}

// HotSpots ranks the busiest control-store locations of a composite run,
// resolved to their flow labels — the "additional interpretation of the
// raw histogram data" workflow of §2.2.
func (r *Results) HotSpots(n int) []HotSpot {
	img := machine.ROM().Image
	h := r.hist
	var all []HotSpot
	lastLabel := ""
	for addr := 0; addr < img.Size(); addr++ {
		mi := img.At(uint16(addr))
		if mi.Label != "" {
			lastLabel = mi.Label
		}
		norm, stall := h.At(uint16(addr))
		if norm+stall == 0 {
			continue
		}
		all = append(all, HotSpot{
			Addr:    uint16(addr),
			Label:   lastLabel,
			Region:  mi.Region.String(),
			Cycles:  norm + stall,
			Stalled: stall,
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Cycles > all[j].Cycles })
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}
