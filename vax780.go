package vax780

import (
	"errors"
	"fmt"

	"vax780/internal/analysis"
	"vax780/internal/faults"
	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/telemetry"
	"vax780/internal/tracesim"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// WorkloadID selects one of the paper's five measurement experiments.
type WorkloadID int

// The five experiments of §2.2.
const (
	TimesharingA   WorkloadID = iota // research-group machine, ~15 users
	TimesharingB                     // CPU-development machine, ~30 users
	RTEEducational                   // RTE script: program development, 40 users
	RTEScientific                    // RTE script: scientific computation, 40 users
	RTECommercial                    // RTE script: transaction processing, 32 users
	NumWorkloads
)

var workloadNames = [...]string{
	"TIMESHARING-A", "TIMESHARING-B", "RTE-EDU", "RTE-SCI", "RTE-COM",
}

func (w WorkloadID) String() string {
	if w < 0 || int(w) >= len(workloadNames) {
		return fmt.Sprintf("Workload(%d)", int(w))
	}
	return workloadNames[w]
}

// WorkloadByName resolves a workload name (as printed by String).
func WorkloadByName(name string) (WorkloadID, error) {
	for i, n := range workloadNames {
		if n == name {
			return WorkloadID(i), nil
		}
	}
	return 0, fmt.Errorf("vax780: unknown workload %q", name)
}

// AllWorkloads lists the five experiments in paper order.
func AllWorkloads() []WorkloadID {
	ids := make([]WorkloadID, NumWorkloads)
	for i := range ids {
		ids[i] = WorkloadID(i)
	}
	return ids
}

func (w WorkloadID) profile(instructions int) (workload.Profile, error) {
	switch w {
	case TimesharingA:
		return workload.TimesharingA(instructions), nil
	case TimesharingB:
		return workload.TimesharingB(instructions), nil
	case RTEEducational:
		return workload.RTEEducational(instructions), nil
	case RTEScientific:
		return workload.RTEScientific(instructions), nil
	case RTECommercial:
		return workload.RTECommercial(instructions), nil
	}
	return workload.Profile{}, fmt.Errorf("vax780: unknown workload %d", int(w))
}

// RunConfig configures a measurement run. The zero value runs all five
// experiments at a moderate length on the stock 11/780 configuration.
type RunConfig struct {
	// Instructions per experiment (default 50,000).
	Instructions int

	// Workloads to run and sum into the composite histogram (default:
	// all five, as the paper's composite).
	Workloads []WorkloadID

	// Hardware overrides; zero values select the 11/780 parameters.
	CacheBytes  int // data cache size (8 KB)
	CacheWays   int // associativity (2)
	TBEntries   int // translation buffer entries (128)
	MissLatency int // SBI read latency in cycles (6)
	WriteBusy   int // write-buffer occupancy per write (6)

	// CtxSwitchHeadway overrides the context-switch interval in
	// instructions (0 = the measured 6418); the TB flush-interval study
	// sweeps this.
	CtxSwitchHeadway int

	// Strict verifies every IB decode against the trace (slower; on by
	// default in tests, off by default here).
	Strict bool

	// Telemetry, when non-nil, attaches the live telemetry layer to the
	// run: live counters and the HTTP monitor, and optionally the
	// interval recorder and Chrome trace collector (see Telemetry). The
	// same instance observes all configured workloads on one continuous
	// timeline, exactly as the board stayed attached across the paper's
	// five experiments.
	Telemetry *Telemetry

	// OverlapDecode enables the 11/750-style overlapped I-Decode cycle —
	// the improvement the paper names in §5 ("saving the non-overlapped
	// I-Decode cycle could save one cycle on each non-PC-changing
	// instruction. The later VAX model 11/750 did [this].") Note that the
	// histogram's IRD-based instruction count no longer sees overlapped
	// decodes; judge the effect by the per-workload CPI, which uses the
	// machine's own instruction counter.
	OverlapDecode bool

	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan to the run (see FaultConfig). The supervisor retries
	// workloads that abort on transient machine checks; degradation the
	// run survives (saturated, corrupted, or dropped histogram counts)
	// is annotated by the analysis instead of failing the run.
	Faults *FaultConfig

	// Checkpoint, when non-empty, names a crash-safe progress file
	// written atomically after each completed workload. A run killed
	// mid-composite can be resumed from it with Resume.
	Checkpoint string

	// Resume loads an existing Checkpoint file before running and skips
	// the workloads it records, reusing their histograms bit-exactly. A
	// missing checkpoint file starts from scratch; one written under a
	// different measurement configuration is ErrCheckpointMismatch.
	Resume bool

	// haltAfter is a test seam: when positive, the run stops with
	// errRunHalted once that many workloads (counting resumed ones)
	// have completed and checkpointed — a deterministic stand-in for a
	// measurement host killed mid-composite.
	haltAfter int
}

// errRunHalted reports a run stopped by the haltAfter test seam.
var errRunHalted = fmt.Errorf("vax780: run halted by test seam")

func (c *RunConfig) fill() {
	if c.Instructions <= 0 {
		c.Instructions = 50_000
	}
	if len(c.Workloads) == 0 {
		c.Workloads = AllWorkloads()
	}
}

func (c *RunConfig) memConfig() mem.Config {
	return mem.Config{
		CacheBytes:  c.CacheBytes,
		CacheWays:   c.CacheWays,
		TBEntries:   c.TBEntries,
		MissLatency: c.MissLatency,
		WriteBusy:   c.WriteBusy,
	}
}

// Run executes the configured experiments on fresh machines, sums their
// UPC histograms into the composite, and returns the reduced results.
//
// Run is a hardened supervisor: with a fault plan attached it recovers
// panics into typed *MachineFault errors, retries workloads that abort
// on transient machine checks (capped exponential backoff), and — when
// a Checkpoint path is configured — snapshots progress atomically after
// each completed workload so a killed run resumes bit-identically.
func Run(cfg RunConfig) (*Results, error) {
	cfg.fill()
	composite := &upc.Histogram{}
	var hw analysis.HWCounters
	res := &Results{cfg: cfg}

	var tel *telemetry.Telemetry
	if cfg.Telemetry != nil {
		tel = cfg.Telemetry.ensure()
	}

	var plan *faults.Plan
	if cfg.Faults != nil {
		plan = faults.NewPlan(cfg.Faults.Seed, cfg.Faults.rates())
	}

	// Resume: fold completed workloads back in from the checkpoint.
	var recs []ckptRecord
	ckptHash := cfg.checkpointHash()
	if cfg.Checkpoint != "" && cfg.Resume {
		var err error
		recs, err = readCheckpoint(cfg.Checkpoint, ckptHash)
		if err != nil {
			return nil, err
		}
		if len(recs) > len(cfg.Workloads) {
			return nil, fmt.Errorf("%w: %d recorded workloads, run has %d",
				ErrCheckpointMismatch, len(recs), len(cfg.Workloads))
		}
		for _, rec := range recs {
			composite.Add(rec.Hist)
			hw.Mem.Add(&rec.Mem)
			hw.IBConsumed += rec.IBConsumed
			res.PerWorkload = append(res.PerWorkload, WorkloadResult{
				Workload:     rec.Workload,
				Instructions: rec.Instrs,
				Cycles:       rec.Cycles,
				CPI:          float64(rec.Cycles) / float64(rec.Instrs),
			})
			res.perHist = append(res.perHist, rec.Hist)
		}
		res.Resumed = len(recs)
	}

	res.describe = BlockDiagram()
	for i, id := range cfg.Workloads {
		if i < len(recs) {
			continue // completed before the crash; folded in above
		}
		p, err := id.profile(cfg.Instructions)
		if err != nil {
			return nil, err
		}
		if cfg.CtxSwitchHeadway > 0 {
			p.CtxSwitchHeadway = cfg.CtxSwitchHeadway
		}
		if tel != nil {
			tel.Phase(id.String())
		}
		one, err := runWorkload(id, p, cfg, tel, plan, res)
		if err != nil {
			var mf *MachineFault
			if errors.As(err, &mf) {
				return nil, err // already carries the vax780 prefix
			}
			return nil, fmt.Errorf("vax780: %w", err)
		}
		composite.Add(one.hist)
		hw.Mem.Add(&one.machine.Mem.Stats)
		hw.IBConsumed += one.machine.IB.Consumed
		res.PerWorkload = append(res.PerWorkload, WorkloadResult{
			Workload:     id,
			Instructions: one.machine.Stats.Instrs,
			Cycles:       one.machine.E.Now,
			CPI:          one.machine.CPI(),
		})
		res.perHist = append(res.perHist, one.hist)
		res.describe = one.machine.Describe()

		if cfg.Checkpoint != "" {
			recs = append(recs, ckptRecord{
				Workload:   id,
				Instrs:     one.machine.Stats.Instrs,
				Cycles:     one.machine.E.Now,
				IBConsumed: one.machine.IB.Consumed,
				Mem:        one.machine.Mem.Stats,
				Hist:       one.hist,
			})
			if err := writeCheckpoint(cfg.Checkpoint, ckptHash, recs); err != nil {
				return nil, fmt.Errorf("vax780: writing checkpoint: %w", err)
			}
		}
		if cfg.haltAfter > 0 && i+1 >= cfg.haltAfter {
			return nil, errRunHalted
		}
	}

	if tel != nil {
		tel.Finish()
	}
	if plan != nil {
		res.FaultInjections = plan.Injected().String()
	}
	res.analysis = analysis.New(machine.ROM(), composite).WithHardwareCounters(hw)
	res.hist = composite
	return res, nil
}

type oneRun struct {
	machine   *machine.Machine
	hist      *upc.Histogram
	saturated bool
}

// runOne executes one workload attempt on a fresh machine. It is the
// panic-recovery boundary: any panic that escapes the simulation
// surfaces as a *faults.MachineCheck, never as a process crash.
func runOne(p workload.Profile, cfg RunConfig, tel *telemetry.Telemetry,
	plan *faults.Plan) (one *oneRun, err error) {

	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	mon := upc.New()
	mon.Start()
	mc := machine.Config{
		Mem:           cfg.memConfig(),
		Monitor:       mon,
		Strict:        cfg.Strict,
		OverlapDecode: cfg.OverlapDecode,
	}
	if tel != nil {
		// Assign only a live layer: a nil *telemetry.Telemetry boxed in
		// the interface would defeat the machine's nil check.
		mc.Telemetry = tel
	}
	if plan != nil {
		// Same care: never box a nil *faults.Plan.
		mc.Faults = plan
	}
	m := machine.New(mc, tr.Program)
	defer func() {
		if r := recover(); r != nil {
			one = nil
			err = &faults.MachineCheck{
				Code:  faults.CodePanic,
				Cycle: m.E.Now,
				Site:  "vax780.runOne",
				Err:   fmt.Errorf("%v", r),
			}
		}
	}()
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}
	mon.Stop()
	if mon.Saturated() && plan == nil {
		// Organic saturation without a fault plan is a configuration
		// error (the run is too long for the counters): fail loudly.
		// Under a fault plan, saturation is expected degradation and the
		// analysis annotates it instead.
		return nil, fmt.Errorf("histogram counters saturated")
	}
	return &oneRun{machine: m, hist: mon.Snapshot(), saturated: mon.Saturated()}, nil
}

// TraceDrivenComparison is the A1 ablation: what a trace-driven timing
// model (the methodology the paper's introduction critiques) estimates
// for the same workload, versus what the UPC monitor measures.
type TraceDrivenComparison struct {
	Workload     WorkloadID
	EstimatedCPI float64 // trace-driven nominal estimate
	MeasuredCPI  float64 // UPC-measured, including stalls and overhead
	// InvisibleFraction is the share of real processor time the
	// trace-driven model cannot see.
	InvisibleFraction float64
	SkippedEvents     uint64 // interrupt deliveries absent from the user trace
}

// CompareTraceDriven runs one workload under both methodologies.
func CompareTraceDriven(id WorkloadID, instructions int) (*TraceDrivenComparison, error) {
	p, err := id.profile(instructions)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	m := machine.New(machine.Config{Mem: mem.Config{}}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}
	est, err := tracesim.NewModel(machine.ROM()).EstimateTrace(tr.Items)
	if err != nil {
		return nil, err
	}
	cmp := tracesim.Compare(est, m.CPI())
	return &TraceDrivenComparison{
		Workload:          id,
		EstimatedCPI:      cmp.EstimatedCPI,
		MeasuredCPI:       cmp.MeasuredCPI,
		InvisibleFraction: cmp.UnderestimateFraction,
		SkippedEvents:     est.SkippedEvents,
	}, nil
}
