package vax780

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"vax780/internal/analysis"
	"vax780/internal/faults"
	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/obs"
	"vax780/internal/prof"
	"vax780/internal/runlog"
	"vax780/internal/telemetry"
	"vax780/internal/tracesim"
	"vax780/internal/ufuse"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// WorkloadID selects one of the paper's five measurement experiments.
type WorkloadID int

// The five experiments of §2.2.
const (
	TimesharingA   WorkloadID = iota // research-group machine, ~15 users
	TimesharingB                     // CPU-development machine, ~30 users
	RTEEducational                   // RTE script: program development, 40 users
	RTEScientific                    // RTE script: scientific computation, 40 users
	RTECommercial                    // RTE script: transaction processing, 32 users
	NumWorkloads
)

var workloadNames = [...]string{
	"TIMESHARING-A", "TIMESHARING-B", "RTE-EDU", "RTE-SCI", "RTE-COM",
}

func (w WorkloadID) String() string {
	if w < 0 || int(w) >= len(workloadNames) {
		return fmt.Sprintf("Workload(%d)", int(w))
	}
	return workloadNames[w]
}

// WorkloadByName resolves a workload name (as printed by String).
func WorkloadByName(name string) (WorkloadID, error) {
	for i, n := range workloadNames {
		if n == name {
			return WorkloadID(i), nil
		}
	}
	return 0, fmt.Errorf("vax780: unknown workload %q", name)
}

// AllWorkloads lists the five experiments in paper order.
func AllWorkloads() []WorkloadID {
	ids := make([]WorkloadID, NumWorkloads)
	for i := range ids {
		ids[i] = WorkloadID(i)
	}
	return ids
}

func (w WorkloadID) profile(instructions int) (workload.Profile, error) {
	switch w {
	case TimesharingA:
		return workload.TimesharingA(instructions), nil
	case TimesharingB:
		return workload.TimesharingB(instructions), nil
	case RTEEducational:
		return workload.RTEEducational(instructions), nil
	case RTEScientific:
		return workload.RTEScientific(instructions), nil
	case RTECommercial:
		return workload.RTECommercial(instructions), nil
	}
	return workload.Profile{}, fmt.Errorf("vax780: unknown workload %d", int(w))
}

// RunConfig configures a measurement run. The zero value runs all five
// experiments at a moderate length on the stock 11/780 configuration.
type RunConfig struct {
	// Instructions per experiment (default 50,000).
	Instructions int

	// Workloads to run and sum into the composite histogram (default:
	// all five, as the paper's composite).
	Workloads []WorkloadID

	// Hardware overrides; zero values select the 11/780 parameters.
	CacheBytes  int // data cache size (8 KB)
	CacheWays   int // associativity (2)
	TBEntries   int // translation buffer entries (128)
	MissLatency int // SBI read latency in cycles (6)
	WriteBusy   int // write-buffer occupancy per write (6)

	// CtxSwitchHeadway overrides the context-switch interval in
	// instructions (0 = the measured 6418); the TB flush-interval study
	// sweeps this.
	CtxSwitchHeadway int

	// Strict verifies every IB decode against the trace (slower; on by
	// default in tests, off by default here).
	Strict bool

	// Telemetry, when non-nil, attaches the live telemetry layer to the
	// run: live counters and the HTTP monitor, and optionally the
	// interval recorder and Chrome trace collector (see Telemetry). The
	// same instance observes all configured workloads on one continuous
	// timeline, exactly as the board stayed attached across the paper's
	// five experiments.
	Telemetry *Telemetry

	// OverlapDecode enables the 11/750-style overlapped I-Decode cycle —
	// the improvement the paper names in §5 ("saving the non-overlapped
	// I-Decode cycle could save one cycle on each non-PC-changing
	// instruction. The later VAX model 11/750 did [this].") Note that the
	// histogram's IRD-based instruction count no longer sees overlapped
	// decodes; judge the effect by the per-workload CPI, which uses the
	// machine's own instruction counter.
	OverlapDecode bool

	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan to the run (see FaultConfig). The supervisor retries
	// workloads that abort on transient machine checks; degradation the
	// run survives (saturated, corrupted, or dropped histogram counts)
	// is annotated by the analysis instead of failing the run.
	Faults *FaultConfig

	// Checkpoint, when non-empty, names a crash-safe progress file
	// written atomically after each completed workload. A run killed
	// mid-composite can be resumed from it with Resume.
	Checkpoint string

	// Resume loads an existing Checkpoint file before running and skips
	// the workloads it records, reusing their histograms bit-exactly. A
	// missing checkpoint file starts from scratch; one written under a
	// different measurement configuration is ErrCheckpointMismatch.
	Resume bool

	// Parallelism bounds how many workload machines of the composite
	// execute concurrently (default: GOMAXPROCS). 1 forces the
	// sequential path. The parallel composite is bit-exact with the
	// sequential one — histograms, tables, reports, telemetry series,
	// fault injections, and checkpoint bytes — because results merge in
	// workload order, each workload's fault plan derives independently
	// from the seed, and per-machine telemetry splices onto one
	// timeline at merge. Parallelism is excluded from the checkpoint
	// fingerprint: a sequential run may resume a parallel one and vice
	// versa.
	Parallelism int

	// Ledger, when non-nil, receives the run ledger: one JSONL event per
	// run action (run-start with the configuration hash, workload
	// start/done, checkpoint written/resumed, fault-injection tallies,
	// retries, machine faults with their flight-recorder snapshots, and
	// run-done with the Table 8 summary and a host self-profile). The
	// stream is byte-identical across Parallelism settings once
	// wall-clock fields are stripped (StripLedgerWallClock).
	Ledger io.Writer

	// Progress, when non-nil, receives periodic fleet snapshots:
	// per-worker current workload, instructions and simulated cycles,
	// instr/s, ETA, and fault/retry tallies. The callback runs on the
	// tracker's goroutine; it must not block for long.
	Progress func(Progress)

	// ProgressInterval is the snapshot period (default 1s, minimum
	// 10ms). It has no effect on the simulation — progress sampling
	// reads lock-free cells the machines update per trace item.
	ProgressInterval time.Duration

	// FlightDepth controls the micro-PC flight recorder, the ring of the
	// last N cycles the EBOX keeps for post-mortems: 0 (the default)
	// enables it at upc.DefaultFlightDepth when a fault plan is
	// attached and disables it otherwise; > 0 forces it on at that
	// depth; < 0 forces it off. On a MachineFault the recorder's
	// snapshot — final entry the faulting micro-PC — rides on the typed
	// fault and the ledger. A positive depth must be a power of two
	// (the ring is mask-indexed); Run rejects anything else.
	FlightDepth int

	// Events, when non-nil, is an externally owned live event bus the
	// run publishes its ledger events on, instead of allocating its own.
	// This is the per-job SSE plumbing of the vaxd service: the daemon
	// owns one bus per job and subscribes SSE clients to it before,
	// during, and after the job's run. Outside the repository the field
	// is unusable (runlog is an internal package) and should be left nil.
	Events *runlog.Bus

	// Trace, when non-nil, records the run as a causal span tree: a run
	// root, a resume span when a checkpoint was folded in, and per
	// workload a span carrying its cycles/CPI with retry, checkpoint,
	// and hot-flow children (exact bucket attribution via the profiler's
	// flow index, so the spans decompose the same way Table 8 does).
	// The recorder's JSONL export is byte-identical across Parallelism
	// settings; with a Profiler also attached, workload spans gain wall
	// placements (removed by obs.StripWall). This is how a vaxd job's
	// bundle gets its trace.jsonl and how /trace/{jobid} splices the
	// run onto the service spans. Like Events, the field is internal
	// plumbing (internal/obs) and unusable outside the repository.
	Trace *obs.Recorder

	// Profiler, when non-nil, attaches the sampling host-time profiler:
	// every stride-th cycle's micro-PC is sampled (one nil test per
	// cycle when detached), classified onto control-store flows, and
	// published as a cumulative Profile — on the telemetry /prof
	// endpoint while the run executes, in the ledger's prof event and
	// run-done summary, and via Profiler.Profile after Run returns.
	// See Profiler for the span-tree and trace exports.
	Profiler *Profiler

	// NoFusion disables the flow-fusion superword engine, forcing
	// single-step interpretation of every microword. Fusion is on by
	// default and bit-exact with interpretation — ulint proves each
	// fused run pure, and any enabled observation hook (telemetry,
	// fault plan, flight recorder, profiler sampler) already forces
	// single-step — so this escape hatch exists for A/B measurement
	// and debugging. Like Parallelism, it is excluded from the
	// checkpoint fingerprint: a fused run may resume an unfused one
	// and vice versa, bit-identically.
	NoFusion bool

	// FusionTargets, when non-empty, restricts fusion to the listed
	// segments — typically a vaxprof -targets ranking's top rows — so a
	// measurement can ask how much of the fusion win the hottest
	// superwords carry. Empty fuses every segment the control store
	// proves legal. Ignored when NoFusion is set.
	FusionTargets []JITTarget

	// haltAfter is a test seam: when positive, the run stops with
	// errRunHalted once that many workloads (counting resumed ones)
	// have completed and checkpointed — a deterministic stand-in for a
	// measurement host killed mid-composite.
	haltAfter int

	// traces, when non-nil, substitutes generation with a shared
	// read-only trace cache (set by Sweep: design points that share a
	// workload shape reuse one generated trace).
	traces *traceCache

	// slot, when non-nil, is the worker slot this run reports progress
	// through (set by Sweep: the sweep-level fleet owns the slots and a
	// point's sequential run feeds its worker's slot).
	slot *workerSlot

	// ctx is the run's cancellation context (set by RunContext; nil
	// means context.Background()). Cancellation is observed at workload
	// boundaries — before each pending workload starts, and inside the
	// supervisor's retry backoff — never mid-simulation, so everything
	// that completed before the cancel is already merged and (when a
	// Checkpoint is configured) durably checkpointed.
	ctx context.Context

	// fusion is the resolved superword plan (set once by RunContext
	// from NoFusion/FusionTargets; nil single-steps everything).
	fusion *ufuse.Plan
}

// errRunHalted reports a run stopped by the haltAfter test seam.
var errRunHalted = fmt.Errorf("vax780: run halted by test seam")

func (c *RunConfig) fill() {
	if c.Instructions <= 0 {
		c.Instructions = 50_000
	}
	if len(c.Workloads) == 0 {
		c.Workloads = AllWorkloads()
	}
}

// validate rejects configurations Run cannot honor. Checked before any
// work starts, so a bad configuration fails fast with a clear error
// instead of silently rounding or misbehaving mid-run.
func (c *RunConfig) validate() error {
	if d := c.FlightDepth; d > 0 && d&(d-1) != 0 {
		return fmt.Errorf("vax780: FlightDepth %d is not a power of two "+
			"(the flight recorder ring is mask-indexed; use the next power of two, "+
			"0 for the default, or a negative depth to disable the recorder)", d)
	}
	return nil
}

func (c *RunConfig) memConfig() mem.Config {
	return mem.Config{
		CacheBytes:  c.CacheBytes,
		CacheWays:   c.CacheWays,
		TBEntries:   c.TBEntries,
		MissLatency: c.MissLatency,
		WriteBusy:   c.WriteBusy,
	}
}

// parallelism resolves the effective worker count.
func (c *RunConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// observed reports whether the run carries any observability consumer
// (ledger, progress callback, telemetry, or an external event bus) —
// only then does Run pay for the event plumbing; an unobserved run
// allocates none of it.
func (c *RunConfig) observed() bool {
	return c.Ledger != nil || c.Progress != nil || c.Telemetry != nil || c.Events != nil
}

// context resolves the run's cancellation context.
func (c *RunConfig) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// ctxErr reports the run's cancellation, in the public error form, or
// nil while the run may continue. The returned error matches
// context.Canceled / context.DeadlineExceeded with errors.Is.
func (c *RunConfig) ctxErr() error {
	if err := c.context().Err(); err != nil {
		return fmt.Errorf("vax780: run canceled: %w", err)
	}
	return nil
}

// flightDepth resolves the flight-recorder configuration to a ring
// depth (0: recorder disabled).
func (c *RunConfig) flightDepth() int {
	switch {
	case c.FlightDepth > 0:
		return c.FlightDepth
	case c.FlightDepth < 0:
		return 0
	case c.Faults != nil:
		return upc.DefaultFlightDepth
	}
	return 0
}

// childPlan builds workload index i's independent fault plan. Both the
// sequential and the parallel path derive one child plan per workload
// from (seed, index), so a workload's injection stream never depends
// on how many decisions earlier workloads drew — the property that
// makes parallel fault injection bit-exact with sequential, and a
// resumed run bit-exact with an uninterrupted one.
func (c *RunConfig) childPlan(i int) *faults.Plan {
	if c.Faults == nil {
		return nil
	}
	return faults.NewPlan(faults.ChildSeed(c.Faults.Seed, i), c.Faults.rates())
}

// trace materializes workload id's instruction trace, through the
// sweep's cache when one is attached and the process-wide shared
// cache otherwise. Traces are read-only once generated (machines
// never write them), so one trace can drive any number of concurrent
// machines — and repeated runs of the same workload shape (benchmark
// iterations, vaxd jobs, fused-vs-interpreted A/B pairs) reuse one
// generated trace instead of re-deriving it per run.
func (c *RunConfig) trace(id WorkloadID, p workload.Profile) (*workload.Trace, error) {
	if c.traces != nil {
		return c.traces.get(id, p, c)
	}
	return sharedTraces.get(id, p, c)
}

// workloadTrace resolves workload id's profile (with overrides) and
// materializes its trace.
func (c *RunConfig) workloadTrace(id WorkloadID) (*workload.Trace, error) {
	p, err := id.profile(c.Instructions)
	if err != nil {
		return nil, err
	}
	if c.CtxSwitchHeadway > 0 {
		p.CtxSwitchHeadway = c.CtxSwitchHeadway
	}
	return c.trace(id, p)
}

// Run executes the configured experiments on fresh machines, sums their
// UPC histograms into the composite, and returns the reduced results.
//
// Run is a hardened supervisor: with a fault plan attached it recovers
// panics into typed *MachineFault errors, retries workloads that abort
// on transient machine checks (capped exponential backoff), and — when
// a Checkpoint path is configured — snapshots progress atomically after
// each completed workload so a killed run resumes bit-identically.
//
// With Parallelism > 1 the pending workloads execute concurrently on a
// bounded worker pool; results are merged strictly in workload order,
// so the composite is bit-exact with the sequential run.
func Run(cfg RunConfig) (*Results, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation and deadline semantics: when ctx
// is canceled (or its deadline passes), the run stops at the next
// workload boundary — or immediately, if the supervisor is waiting out
// a retry backoff — and returns an error matching context.Canceled or
// context.DeadlineExceeded under errors.Is. Workloads that completed
// before the cancel are already merged, and when a Checkpoint path is
// configured they are durably checkpointed, so a canceled run can be
// resumed later (Resume) and its final composite is bit-identical to an
// uninterrupted run. Cancellation is never observed mid-workload: the
// granularity of a composite run is the workload, exactly like the
// crash-recovery granularity of the checkpoint format.
func RunContext(ctx context.Context, cfg RunConfig) (*Results, error) {
	cfg.ctx = ctx
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plan, planErr := cfg.fusionPlan()
	if planErr != nil {
		return nil, planErr
	}
	cfg.fusion = plan
	if cfg.Profiler != nil {
		cfg.Profiler.begin()
	}
	s := &runState{
		cfg:       cfg,
		composite: &upc.Histogram{},
		res:       &Results{cfg: cfg},
		ckptHash:  cfg.checkpointHash(),
	}
	if cfg.Telemetry != nil {
		s.tel = cfg.Telemetry.ensure()
	}
	if cfg.Trace != nil {
		s.span = cfg.Trace.Begin("run", workloadsLabel(cfg.Workloads)).
			Attr("config", fmt.Sprintf("%016x", s.ckptHash)).
			Attr("workloads", len(cfg.Workloads)).
			Attr("instructions", cfg.Instructions)
	}
	if cfg.observed() {
		s.led = runlog.NewOn(cfg.Ledger, cfg.Events)
		var seed uint64
		if cfg.Faults != nil {
			seed = cfg.Faults.Seed
		}
		s.led.Emit(runlog.RunStartEvent(s.ckptHash, workloadsLabel(cfg.Workloads),
			len(cfg.Workloads), cfg.Instructions, seed, cfg.Faults != nil))
	}

	// Resume: fold completed workloads back in from the checkpoint.
	if cfg.Checkpoint != "" && cfg.Resume {
		var err error
		s.recs, err = readCheckpoint(cfg.Checkpoint, s.ckptHash)
		if err != nil {
			return nil, err
		}
		if len(s.recs) > len(cfg.Workloads) {
			return nil, fmt.Errorf("%w: %d recorded workloads, run has %d",
				ErrCheckpointMismatch, len(s.recs), len(cfg.Workloads))
		}
		for _, rec := range s.recs {
			s.composite.Add(rec.Hist)
			s.hw.Mem.Add(&rec.Mem)
			s.hw.IBConsumed += rec.IBConsumed
			s.res.PerWorkload = append(s.res.PerWorkload, WorkloadResult{
				Workload:     rec.Workload,
				Instructions: rec.Instrs,
				Cycles:       rec.Cycles,
				CPI:          float64(rec.Cycles) / float64(rec.Instrs),
			})
			s.res.perHist = append(s.res.perHist, rec.Hist)
		}
		s.res.Resumed = len(s.recs)
		s.completed = len(s.recs)
		if len(s.recs) > 0 {
			s.led.Emit(runlog.ResumeEvent(cfg.Checkpoint, len(s.recs)))
			s.span.Child("resume", "resume").Attr("restored", len(s.recs))
		}
	}

	s.res.describe = BlockDiagram()
	pending := len(cfg.Workloads) - len(s.recs)
	parallel := pending > 1 && cfg.parallelism() > 1

	if cfg.observed() {
		workers := 1
		if parallel {
			workers = min(cfg.parallelism(), pending)
		}
		s.fleet = newFleet(len(cfg.Workloads), workers, uint64(cfg.Instructions))
		for _, rec := range s.recs {
			s.fleet.noteDone(rec.Instrs, rec.Cycles)
		}
		s.tracker = runlog.NewTracker(cfg.ProgressInterval, s.fleet.sample, cfg.Progress)
		s.tracker.Attach(s.led)
		if s.tel != nil {
			s.tel.SetEvents(s.led.Bus())
			s.tel.SetProgress(s.tracker.Latest)
		}
		s.tracker.Start()
	}
	if s.tel != nil && cfg.Profiler != nil {
		s.tel.SetProf(cfg.Profiler.latestAny)
	}

	var err error
	if parallel {
		err = s.runParallel()
	} else {
		err = s.runSequential()
	}
	if err != nil {
		s.tracker.Stop()
		return nil, err
	}
	return s.finish()
}

// runState carries a composite run's accumulating results; the
// sequential and parallel paths share its merge and finish steps, which
// is what keeps the two bit-exact: there is only one merge.
type runState struct {
	cfg       RunConfig
	tel       *telemetry.Telemetry
	composite *upc.Histogram
	hw        analysis.HWCounters
	res       *Results
	recs      []ckptRecord
	ckptHash  uint64
	injected  faults.Counts
	completed int // workloads completed, counting resumed ones

	// Observability (nil on unobserved runs; every consumer is nil-safe).
	led     *runlog.Ledger
	fleet   *fleet
	tracker *runlog.Tracker
	span    *obs.Span // trace root (nil without cfg.Trace)
}

// traceMaxFlows caps the hot-flow children recorded under each
// workload span: enough to show what dominated, small enough that a
// sweep's traces stay proportional to its ledger.
const traceMaxFlows = 5

// runSequential is the in-order execution path (Parallelism <= 1, or
// nothing left to parallelize).
func (s *runState) runSequential() error {
	for i, id := range s.cfg.Workloads {
		if i < len(s.recs) {
			continue // completed before the crash; folded in by Run
		}
		if err := s.cfg.ctxErr(); err != nil {
			return err // completed workloads are merged and checkpointed
		}
		tr, err := s.cfg.workloadTrace(id)
		if err != nil {
			return fmt.Errorf("vax780: %s: %w", id, err)
		}
		plan := s.cfg.childPlan(i)
		if s.tel != nil {
			s.tel.Phase(id.String())
		}
		slot := s.fleet.slot(0)
		if s.fleet == nil {
			slot = s.cfg.slot // a sweep point's run feeds the sweep's slot
		}
		child := s.led.Child()
		env := wlEnv{idx: i, id: id, tel: s.tel, plan: plan, led: child, slot: slot}
		one, retries, err := runWorkload(env, tr, s.cfg)
		if err != nil {
			return s.failWorkload(child, err)
		}
		s.led.Absorb(child)
		if err := s.merge(id, one, retries, plan); err != nil {
			return err
		}
	}
	return nil
}

// wrapWorkloadErr applies the public error convention: typed machine
// faults pass through (they carry the vax780 prefix), anything else
// gets it added.
func wrapWorkloadErr(err error) error {
	var mf *MachineFault
	if errors.As(err, &mf) {
		return err
	}
	return fmt.Errorf("vax780: %w", err)
}

// merge folds one completed workload into the composite — the single
// accumulation point both execution paths share. Callers invoke it in
// workload order.
func (s *runState) merge(id WorkloadID, one *oneRun, retries int, plan *faults.Plan) error {
	s.composite.Add(one.hist)
	s.cfg.Profiler.noteWorkload(id.String(), one.samp, one.profStart, one.profEnd)
	s.hw.Mem.Add(&one.machine.Mem.Stats)
	s.hw.IBConsumed += one.machine.IB.Consumed
	s.res.Retries += retries
	s.res.PerWorkload = append(s.res.PerWorkload, WorkloadResult{
		Workload:     id,
		Instructions: one.machine.Stats.Instrs,
		Cycles:       one.machine.E.Now,
		CPI:          one.machine.CPI(),
	})
	s.res.perHist = append(s.res.perHist, one.hist)
	s.res.describe = one.machine.Describe()
	if plan != nil {
		s.injected.Add(plan.Injected())
	}
	s.fleet.noteDone(one.machine.Stats.Instrs, one.machine.E.Now)

	// Trace: one workload span, with the flows that dominated it as
	// children. Exact bucket attribution (prof.Exact over this
	// workload's own histogram) keeps the span tree a pure function of
	// the simulation, so the export is byte-identical across -j; the
	// wall placement is additive and only present under a Profiler.
	ws := s.span.Child("workload", id.String()).
		Attr("index", s.completed).
		Attr("instructions", one.machine.Stats.Instrs).
		Attr("cpi", one.machine.CPI()).
		SetCycles(one.machine.E.Now)
	if retries > 0 {
		ws.Child("retry", "retries").Attr("count", retries)
	}
	if s.span != nil {
		p := prof.Exact(machineROM(), flowIndex(), one.hist, nil)
		for _, f := range p.Top(traceMaxFlows) {
			ws.Child("flow", f.Name).
				Attr("entry", int(f.Entry)).
				Attr("share", f.Share).
				SetCycles(f.Cycles)
		}
		if s.cfg.Profiler != nil && one.profEnd > one.profStart {
			ws.SetWall(one.profStart, one.profEnd-one.profStart)
		}
	}

	if s.cfg.Checkpoint != "" {
		s.recs = append(s.recs, ckptRecord{
			Workload:   id,
			Instrs:     one.machine.Stats.Instrs,
			Cycles:     one.machine.E.Now,
			IBConsumed: one.machine.IB.Consumed,
			Mem:        one.machine.Mem.Stats,
			Hist:       one.hist,
		})
		if err := writeCheckpoint(s.cfg.Checkpoint, s.ckptHash, s.recs); err != nil {
			return fmt.Errorf("vax780: writing checkpoint: %w", err)
		}
		s.led.Emit(runlog.CheckpointEvent(s.cfg.Checkpoint, len(s.recs)))
		ws.Child("checkpoint", "checkpoint").Attr("records", len(s.recs))
	}
	s.completed++
	if s.cfg.haltAfter > 0 && s.completed >= s.cfg.haltAfter {
		return errRunHalted
	}
	return nil
}

// finish closes the run and reduces the composite.
func (s *runState) finish() (*Results, error) {
	if s.tel != nil {
		s.tel.Finish()
	}
	if s.cfg.Faults != nil {
		s.res.FaultInjections = s.injected.String()
	}
	s.res.analysis = analysis.New(machine.ROM(), s.composite).WithHardwareCounters(s.hw)
	s.res.hist = s.composite
	s.tracker.Stop()

	// Close the profiler before run-done so its ledger event precedes
	// the run's, and its summary can ride on the run-done record.
	var profAttrs []slog.Attr
	if s.cfg.Profiler != nil {
		p, err := s.cfg.Profiler.finishRun(workloadsLabel(s.cfg.Workloads))
		if err != nil {
			return nil, err
		}
		if s.led != nil {
			s.led.Emit(runlog.ProfEvent(p.Engine, p.Stride, p.Samples, p.TotalCycles,
				profRows(p, s.cfg.Profiler.maxFlows()),
				map[string]any{"wall_ns": p.WallNs}))
		}
		profAttrs = profSummaryAttrs(p)
	}
	if s.span != nil {
		var cycles uint64
		for _, w := range s.res.PerWorkload {
			cycles += w.Cycles
		}
		s.span.SetCycles(cycles).
			Attr("retries", s.res.Retries).
			Attr("resumed", s.res.Resumed)
	}
	if s.led != nil {
		var instrs, cycles uint64
		for _, w := range s.res.PerWorkload {
			instrs += w.Instructions
			cycles += w.Cycles
		}
		s.led.Emit(runlog.RunDoneEvent(len(s.cfg.Workloads), instrs, cycles,
			s.res.CPI(), s.res.Retries, s.res.Resumed, s.res.FaultInjections,
			table8Attrs(s.res), profAttrs, s.led.Host(cycles)))
	}
	return s.res, nil
}

type oneRun struct {
	machine   *machine.Machine
	hist      *upc.Histogram
	saturated bool

	// Profiling sidecar (nil/zero without a Profiler): the workload's
	// micro-PC sampler and its measured start/end on the profiler clock.
	samp      *upc.Sampler
	profStart float64
	profEnd   float64
}

// monPool recycles histogram monitors between workload machines: the
// monitor's count array is by far the largest allocation of a run, and
// sweeps burn one per design point per workload. Pooled monitors are
// Reset (cleared, stopped, fault detached) before reuse.
var monPool = sync.Pool{New: func() any { return upc.New() }}

// runOne executes one workload attempt on a fresh machine driven by
// the given (read-only, shareable) trace. It is the panic-recovery
// boundary: any panic that escapes the simulation surfaces as a
// *faults.MachineCheck, never as a process crash.
func runOne(tr *workload.Trace, cfg RunConfig, tel *telemetry.Telemetry,
	plan *faults.Plan, fr *upc.FlightRecorder, cell *machine.ProgressCell,
	samp *upc.Sampler) (one *oneRun, err error) {

	var mon *upc.Monitor
	if tel == nil {
		// Without telemetry nothing retains the monitor after the
		// snapshot, so it can go back to the pool. A telemetry-bound
		// monitor stays referenced by the sink (board snapshots, HTTP
		// readout) and must not be recycled.
		mon = monPool.Get().(*upc.Monitor)
		mon.Reset()
		defer monPool.Put(mon)
	} else {
		mon = upc.New()
	}
	mon.Start()
	mc := machine.Config{
		Mem:           cfg.memConfig(),
		Monitor:       mon,
		Strict:        cfg.Strict,
		OverlapDecode: cfg.OverlapDecode,
		Flight:        fr,
		Sampler:       samp,
		Progress:      cell,
		Fusion:        cfg.fusion,
	}
	if tel != nil {
		// Assign only a live layer: a nil *telemetry.Telemetry boxed in
		// the interface would defeat the machine's nil check.
		mc.Telemetry = tel
	}
	if plan != nil {
		// Same care: never box a nil *faults.Plan.
		mc.Faults = plan
	}
	m := machine.New(mc, tr.Program)
	defer func() {
		if r := recover(); r != nil {
			one = nil
			err = &faults.MachineCheck{
				Code:  faults.CodePanic,
				Cycle: m.E.Now,
				Site:  "vax780.runOne",
				Err:   fmt.Errorf("%v", r),
			}
		}
	}()
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}
	mon.Stop()
	if mon.Saturated() && plan == nil {
		// Organic saturation without a fault plan is a configuration
		// error (the run is too long for the counters): fail loudly.
		// Under a fault plan, saturation is expected degradation and the
		// analysis annotates it instead.
		return nil, fmt.Errorf("histogram counters saturated")
	}
	return &oneRun{machine: m, hist: mon.Snapshot(), saturated: mon.Saturated()}, nil
}

// TraceDrivenComparison is the A1 ablation: what a trace-driven timing
// model (the methodology the paper's introduction critiques) estimates
// for the same workload, versus what the UPC monitor measures.
type TraceDrivenComparison struct {
	Workload     WorkloadID
	EstimatedCPI float64 // trace-driven nominal estimate
	MeasuredCPI  float64 // UPC-measured, including stalls and overhead
	// InvisibleFraction is the share of real processor time the
	// trace-driven model cannot see.
	InvisibleFraction float64
	SkippedEvents     uint64 // interrupt deliveries absent from the user trace
}

// CompareTraceDriven runs one workload under both methodologies.
func CompareTraceDriven(id WorkloadID, instructions int) (*TraceDrivenComparison, error) {
	p, err := id.profile(instructions)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	m := machine.New(machine.Config{Mem: mem.Config{}}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		return nil, err
	}
	est, err := tracesim.NewModel(machine.ROM()).EstimateTrace(tr.Items)
	if err != nil {
		return nil, err
	}
	cmp := tracesim.Compare(est, m.CPI())
	return &TraceDrivenComparison{
		Workload:          id,
		EstimatedCPI:      cmp.EstimatedCPI,
		MeasuredCPI:       cmp.MeasuredCPI,
		InvisibleFraction: cmp.UnderestimateFraction,
		SkippedEvents:     est.SkippedEvents,
	}, nil
}
