package vax780

import (
	"io"
	"net/http"
	"sync"

	"vax780/internal/machine"
	"vax780/internal/telemetry"
)

// Telemetry configures and owns the live telemetry layer of a run: the
// paper's passive-observation discipline applied to the reproduction
// itself. Attach one via RunConfig.Telemetry to watch a run live
// (Handler), export a Chrome trace of its microcode activity
// (WriteTrace), or record a per-interval CPI-decomposition time series
// (WriteIntervalsCSV / WriteIntervalsJSON).
//
// Set the option fields before first use; the underlying layer is built
// lazily on the first method call (or by Run). The zero value enables
// live counters only.
type Telemetry struct {
	// IntervalCycles enables the interval recorder: every N simulated
	// cycles the UPC histogram and hardware counters are snapshotted
	// into the time series (0 disables the recorder).
	IntervalCycles uint64

	// TraceMaxEvents enables the Chrome trace-event collector, capped at
	// this many retained events (0 disables tracing; negative means
	// unlimited — a long run can collect millions of events).
	TraceMaxEvents int

	once  sync.Once
	inner *telemetry.Telemetry
}

// NewTelemetry returns a telemetry layer with the given interval period
// and trace cap (either may be zero to disable that component).
func NewTelemetry(intervalCycles uint64, traceMaxEvents int) *Telemetry {
	return &Telemetry{IntervalCycles: intervalCycles, TraceMaxEvents: traceMaxEvents}
}

func (t *Telemetry) ensure() *telemetry.Telemetry {
	t.once.Do(func() {
		t.inner = telemetry.New(telemetry.Options{
			ROM:            machine.ROM(),
			IntervalCycles: t.IntervalCycles,
			TraceMaxEvents: t.TraceMaxEvents,
		})
	})
	return t.inner
}

// Handler returns the live-monitor HTTP handler: Prometheus-text
// /metrics, expvar at /debug/vars, net/http/pprof at /debug/pprof/,
// the histogram board's Unibus register mirror at /board/{start,
// stop,clear,csr,read}, the SSE interval stream at /events, fleet
// progress at /progress, and the host-time profiler's latest sampled
// profile at /prof. It is safe to serve while a run executes.
func (t *Telemetry) Handler() http.Handler { return t.ensure().Handler() }

// TelemetryCounters is a plain snapshot of the live counters.
type TelemetryCounters struct {
	Cycles      uint64
	StallCycles uint64
	Instrs      uint64
	CPI         float64
	CacheMissD  uint64
	CacheMissI  uint64
	TBMissD     uint64
	TBMissI     uint64
	IBRefills   uint64
	Interrupts  uint64
	CtxSwitches uint64
	Intervals   uint64
}

// Counters snapshots the live counters; safe to call from any goroutine
// while a run executes.
func (t *Telemetry) Counters() TelemetryCounters {
	c := &t.ensure().C
	return TelemetryCounters{
		Cycles:      c.Cycles.Load(),
		StallCycles: c.StallCycles.Load(),
		Instrs:      c.Instrs.Load(),
		CPI:         c.CPI(),
		CacheMissD:  c.CacheMissD.Load(),
		CacheMissI:  c.CacheMissI.Load(),
		TBMissD:     c.TBMissD.Load(),
		TBMissI:     c.TBMissI.Load(),
		IBRefills:   c.IBRefills.Load(),
		Interrupts:  c.Interrupts.Load(),
		CtxSwitches: c.CtxSwitches.Load(),
		Intervals:   c.Intervals.Load(),
	}
}

// IntervalRows returns the recorded per-interval CPI-decomposition time
// series (nil when the recorder was disabled). Call after Run returns.
func (t *Telemetry) IntervalRows() []telemetry.IntervalRow {
	return t.ensure().Rows()
}

// IntervalCycleTotal sums every interval's histogram cycles; on an
// unperturbed run this equals the composite histogram's total cycles.
func (t *Telemetry) IntervalCycleTotal() uint64 {
	t.ensure().Finish()
	if rec := t.inner.Recorder(); rec != nil {
		return rec.TotalCycles()
	}
	return 0
}

// WriteIntervalsCSV writes the interval time series as CSV.
func (t *Telemetry) WriteIntervalsCSV(w io.Writer) error {
	return t.ensure().WriteIntervalsCSV(w)
}

// WriteIntervalsJSON writes the interval time series as JSON.
func (t *Telemetry) WriteIntervalsJSON(w io.Writer) error {
	return t.ensure().WriteIntervalsJSON(w)
}

// WriteTrace writes the collected Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return t.ensure().WriteTrace(w)
}

// DescribeTelemetryProbes renders the probe-point map of the telemetry
// layer (where each event is tapped and what consumes it).
func DescribeTelemetryProbes() string { return telemetry.DescribeProbes() }
