package vax780

// The sweep engine: every §5 experiment of the paper is an independent
// machine configuration run against the same workloads, and the
// characterization studies (cache geometry, TB size, flush interval,
// decode overlap, fault rates) are sweeps over such design points. The
// engine fans the points across a bounded worker pool while sharing
// every piece of immutable state a point does not own: the assembled
// control store (built once, process-wide, by the machine package),
// the generated workload traces (read-only once built, cached by
// shape), and the pooled histogram monitors.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"vax780/internal/runlog"
)

// SweepPoint is one design point of a characterization sweep.
type SweepPoint struct {
	// Label identifies the point in results and tables (e.g. "8KB/2-way").
	Label string
	// Config is the point's run configuration. Points must be
	// self-contained: a Telemetry instance, Checkpoint path, or
	// Profiler cannot be attached to a sweep point (all are single-run
	// state; the point fails with an error).
	Config RunConfig
}

// SweepResult pairs a design point with its outcome. Exactly one of
// Results/Err is set.
type SweepResult struct {
	Label   string
	Results *Results
	Err     error
}

// SweepOptions tunes the sweep engine.
type SweepOptions struct {
	// Parallelism bounds concurrently executing design points
	// (default: GOMAXPROCS). Each point runs its own workloads
	// sequentially — the fan-out is across points.
	Parallelism int

	// Ledger, when non-nil, receives the sweep ledger: sweep-start, one
	// sweep-point-done per design point, and sweep-done, as JSONL. The
	// stream is byte-identical across Parallelism settings once
	// wall-clock fields are stripped: point events persist in input
	// order after the fan-out completes.
	Ledger io.Writer

	// Progress, when non-nil, receives periodic fleet snapshots of the
	// sweep workers: each worker's current design point and workload
	// (label "point/workload"), instructions, rates, and ETA against the
	// whole sweep's instruction budget.
	Progress func(Progress)

	// ProgressInterval is the snapshot period (default 1s, minimum 10ms).
	ProgressInterval time.Duration
}

// observed reports whether the sweep carries an observability consumer.
func (o *SweepOptions) observed() bool {
	return o.Ledger != nil || o.Progress != nil
}

// pointInstrBudget estimates a design point's instruction total (its
// per-workload count times its workload count, with Run's defaults) for
// the sweep-wide ETA.
func pointInstrBudget(pt SweepPoint) uint64 {
	instrs := pt.Config.Instructions
	if instrs <= 0 {
		instrs = 50_000
	}
	n := len(pt.Config.Workloads)
	if n == 0 {
		n = int(NumWorkloads)
	}
	return uint64(instrs) * uint64(n)
}

// Sweep executes the design points concurrently and returns their
// results in input order. Results are deterministic: each point is an
// ordinary Run (bit-exact with running it alone), and shared state is
// all immutable — the control store, the cached traces, the workload
// programs.
func Sweep(points []SweepPoint, opt SweepOptions) []SweepResult {
	return SweepContext(context.Background(), points, opt)
}

// SweepContext is Sweep with cancellation and deadline semantics:
// design points that have not started when ctx is canceled are skipped
// (their SweepResult carries an error matching context.Canceled or
// context.DeadlineExceeded), points already executing observe the
// cancellation at their next workload boundary, and completed points
// keep their results. The ledger still closes with a sweep-done event,
// so a canceled sweep's JSONL stream remains schema-valid.
func SweepContext(ctx context.Context, points []SweepPoint, opt SweepOptions) []SweepResult {
	out := make([]SweepResult, len(points))
	cache := newTraceCache()

	workers := opt.Parallelism
	if workers <= 0 {
		workers = RunConfig{}.parallelismDefault()
	}
	if workers > len(points) {
		workers = len(points)
	}

	// Sweep-level observability: one ledger and one fleet spanning every
	// design point. Point events buffer per point and persist in input
	// order after the fan-out, exactly like Run's per-workload events.
	var led *runlog.Ledger
	var fl *fleet
	var tracker *runlog.Tracker
	children := make([]*runlog.Child, len(points))
	if opt.observed() {
		led = runlog.New(opt.Ledger)
		led.Emit(runlog.SweepStartEvent(len(points)))
		fl = newFleet(len(points), workers, 0)
		for _, pt := range points {
			fl.totalInstrs += pointInstrBudget(pt)
		}
		tracker = runlog.NewTracker(opt.ProgressInterval, fl.sample, opt.Progress)
		tracker.Attach(led)
		tracker.Start()
	}

	var idx int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := fl.slot(w)
			for {
				mu.Lock()
				n := idx
				idx++
				mu.Unlock()
				if n >= len(points) {
					return
				}
				child := led.Child()
				children[n] = child
				out[n] = runPoint(ctx, points[n], cache, slot)
				var instrs, cycles uint64
				var cpi float64
				var errMsg string
				if r := out[n].Results; r != nil {
					for _, wl := range r.PerWorkload {
						instrs += wl.Instructions
						cycles += wl.Cycles
					}
					cpi = r.CPI()
				}
				if out[n].Err != nil {
					errMsg = out[n].Err.Error()
				}
				child.Emit(runlog.PointDoneEvent(out[n].Label, n, instrs, cycles, cpi, errMsg))
				fl.noteDone(instrs, cycles)
			}
		}(w)
	}
	wg.Wait()

	if led != nil {
		for _, c := range children {
			led.Absorb(c)
		}
		errs := 0
		for _, r := range out {
			if r.Err != nil {
				errs++
			}
		}
		led.Emit(runlog.SweepDoneEvent(len(points), errs))
		tracker.Stop()
	}
	return out
}

// runPoint executes one design point with the shared trace cache,
// reporting progress through the sweep worker's slot (nil when the
// sweep is unobserved).
func runPoint(ctx context.Context, pt SweepPoint, cache *traceCache, slot *workerSlot) SweepResult {
	res := SweepResult{Label: pt.Label}
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("vax780: sweep point %q: run canceled: %w", pt.Label, err)
		return res
	}
	cfg := pt.Config
	if cfg.Telemetry != nil {
		res.Err = fmt.Errorf("vax780: sweep point %q: telemetry cannot be attached to a sweep point", pt.Label)
		return res
	}
	if cfg.Checkpoint != "" {
		res.Err = fmt.Errorf("vax780: sweep point %q: checkpointing cannot be attached to a sweep point", pt.Label)
		return res
	}
	if cfg.Profiler != nil {
		res.Err = fmt.Errorf("vax780: sweep point %q: a profiler cannot be attached to a sweep point (profile the point as its own Run)", pt.Label)
		return res
	}
	// The sweep's concurrency lives at the point level; each point runs
	// its workloads in sequence on its worker.
	cfg.Parallelism = 1
	cfg.traces = cache
	if slot != nil {
		slot.prefix = pt.Label + "/"
		cfg.slot = slot
	}
	res.Results, res.Err = RunContext(ctx, cfg)
	return res
}

// parallelismDefault exposes the default worker count (GOMAXPROCS)
// without needing a filled config.
func (RunConfig) parallelismDefault() int {
	var c RunConfig
	return c.parallelism()
}
