// Command vaxtop is a live fleet-progress viewer for a running
// measurement: it polls the /progress endpoint a vaxmon -serve (or any
// program serving Telemetry.Handler) exposes and renders the worker
// table in place — which workload each pool worker is simulating, how
// far along it is, its instruction rate and ETA, and the run-wide
// fault/retry tallies. When the run carries a host-time profiler
// (RunConfig.Profiler), vaxtop also polls /prof and appends the hot
// control-store flows — where the simulator's own time is going, live.
// The terminal handling is plain ANSI (cursor home + clear), no
// external dependencies; when stdout is not a terminal — or with
// -lines — each snapshot prints as a block instead, so vaxtop pipes
// cleanly into a log.
//
// With -jobs, vaxtop watches a vaxd service instead of a run monitor:
// the pane seeds from GET /jobs and then follows the service-wide
// GET /events SSE stream, showing every job's lifecycle (queued →
// running → done/failed/evicted/timed-out), cache hits, requeue
// counts, and the shed/drain tallies admission control is applying.
//
// Usage:
//
//	vaxtop [-url http://localhost:8780] [-interval 1s] [-once] [-lines] [-flows 5] [-jobs]
//
// -once fetches and prints a single snapshot and exits (0 when a
// snapshot was served, 1 otherwise) — usable as a health probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"vax780"
)

func main() {
	url := flag.String("url", "http://localhost:8780", "base URL of the live monitor (vaxmon -serve)")
	interval := flag.Duration("interval", time.Second, "poll period")
	once := flag.Bool("once", false, "print one snapshot and exit")
	lines := flag.Bool("lines", false, "line mode: print snapshot blocks instead of redrawing in place")
	flows := flag.Int("flows", 5, "hot control-store flows to show from /prof (0 disables the section)")
	jobsMode := flag.Bool("jobs", false, "fleet mode: watch a vaxd service (GET /jobs + /events SSE)")
	flag.Parse()

	ansi := !*lines && !*once && stdoutIsTerminal()
	client := &http.Client{Timeout: 5 * time.Second}

	if *jobsMode {
		runFleet(client, *url, *interval, *once, *lines)
		return
	}

	for {
		snap, err := fetchProgress(client, *url)
		switch {
		case err != nil && *once:
			fmt.Fprintln(os.Stderr, "vaxtop:", err)
			os.Exit(1)
		case err != nil:
			if ansi {
				fmt.Print("\x1b[H\x1b[J")
			}
			fmt.Printf("vaxtop: %s — waiting: %v\n", *url, err)
		default:
			prof, _ := fetchProf(client, *url) // nil when no profiler attached
			if ansi {
				fmt.Print("\x1b[H\x1b[J")
			}
			fmt.Print(render(*url, snap))
			fmt.Print(renderProf(prof, *flows))
		}
		if *once {
			return
		}
		if snap != nil && snap.Final && err == nil {
			return // the run finished; leave the last frame on screen
		}
		time.Sleep(*interval)
	}
}

// stdoutIsTerminal reports whether stdout is a character device — the
// no-dependency TTY test that decides between in-place redraw and line
// mode.
func stdoutIsTerminal() bool {
	fi, err := os.Stdout.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// fetchProgress GETs one fleet snapshot; a 503 (no run attached yet)
// comes back as an error so the caller keeps waiting.
func fetchProgress(client *http.Client, base string) (*vax780.Progress, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/progress")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/progress: %s", resp.Status)
	}
	var s vax780.Progress
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("/progress: %w", err)
	}
	return &s, nil
}

// fetchProf GETs the latest host-time profile; any failure (no
// profiler attached, no sample merged yet) comes back as an error and
// the section is simply omitted.
func fetchProf(client *http.Client, base string) (*vax780.Profile, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/prof")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/prof: %s", resp.Status)
	}
	var p vax780.Profile
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("/prof: %w", err)
	}
	return &p, nil
}

// renderProf formats the hot-flow section under the worker table.
func renderProf(p *vax780.Profile, n int) string {
	if p == nil || n <= 0 || len(p.Flows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n  hot flows (host time, %s engine, %d samples)\n",
		p.Engine, p.Samples)
	fmt.Fprintf(&b, "  %-24s %12s %7s %10s\n", "FLOW", "CYCLES", "SHARE", "HOST MS")
	for _, f := range p.Flows {
		if n--; n < 0 {
			break
		}
		ms := "-"
		if f.Ns > 0 {
			ms = fmt.Sprintf("%.1f", f.Ns/1e6)
		}
		fmt.Fprintf(&b, "  %-24s %12d %6.2f%% %10s\n",
			f.Name, f.Cycles, 100*f.Share, ms)
	}
	return b.String()
}

// render formats one snapshot as the full display frame.
func render(url string, s *vax780.Progress) string {
	var b strings.Builder
	state := "running"
	if s.Final {
		state = "done"
	}
	fmt.Fprintf(&b, "vaxtop — %s  [%s]  elapsed %s  units %d/%d  eta %s\n",
		url, state, fmtSeconds(s.ElapsedSeconds), s.DoneUnits, s.TotalUnits,
		fmtSeconds(s.ETASeconds))
	fmt.Fprintf(&b, "  %d instructions  %d sim cycles  %s instr/s  %.1f ns/sim-cycle  faults %d  retries %d\n\n",
		s.Instrs, s.Cycles, fmtRate(s.InstrRate), s.NsPerSimCycle, s.Faults, s.Retries)
	fmt.Fprintf(&b, "  %-3s %-28s %12s %12s %12s %10s %8s %3s %3s\n",
		"W", "WORKLOAD", "INSTR", "TARGET", "CYCLES", "INSTR/S", "ETA", "F", "R")
	for _, w := range s.Workers {
		label := w.Label
		if !w.Busy {
			label = "(idle)"
		}
		fmt.Fprintf(&b, "  %-3d %-28s %12d %12d %12d %10s %8s %3d %3d\n",
			w.Worker, label, w.Instrs, w.TotalInstrs, w.Cycles,
			fmtRate(w.InstrRate), fmtSeconds(w.ETASeconds), w.Faults, w.Retries)
	}
	return b.String()
}

// fmtSeconds renders a duration estimate compactly ("-" when unknown).
func fmtSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	d := time.Duration(s * float64(time.Second))
	if d >= time.Minute {
		return d.Round(time.Second).String()
	}
	return fmt.Sprintf("%.1fs", s)
}

// fmtRate renders an instruction rate with k/M suffixes.
func fmtRate(r float64) string {
	switch {
	case r <= 0:
		return "-"
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}
