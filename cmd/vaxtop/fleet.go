// Fleet mode (-jobs): vaxtop as a vaxd service viewer. The pane seeds
// from GET /jobs, then stays live on the service-wide GET /events SSE
// stream — the same journal-backed bus the /metrics counters recompose
// from — rendering the job table, per-state tallies, and the shed
// counts admission control is applying.

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// fleetEvent is the union of journal-event fields the pane renders;
// it doubles as the GET /jobs row shape (the job snapshot JSON).
type fleetEvent struct {
	Msg          string  `json:"msg"`
	ID           string  `json:"id"`
	Tenant       string  `json:"tenant"`
	State        string  `json:"state"`
	Cause        string  `json:"cause"`
	Cached       bool    `json:"cached"`
	Requeues     int     `json:"requeues"`
	Reason       string  `json:"reason"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`
}

// fleetState is the pane's model, shared between the SSE reader
// goroutine and the render loop.
type fleetState struct {
	mu        sync.Mutex
	jobs      map[string]*fleetEvent
	order     []string // admission order (sorted IDs)
	sheds     map[string]int
	drains    int
	connected bool
	lastErr   error
}

func newFleetState() *fleetState {
	return &fleetState{jobs: make(map[string]*fleetEvent), sheds: make(map[string]int)}
}

// seed replaces the job table with the service's current list.
func (f *fleetState) seed(rows []fleetEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.jobs = make(map[string]*fleetEvent, len(rows))
	f.order = f.order[:0]
	for i := range rows {
		r := rows[i]
		f.jobs[r.ID] = &r
		f.order = append(f.order, r.ID)
	}
	sort.Strings(f.order)
}

// apply folds one live event into the model.
func (f *fleetState) apply(msg string, ev fleetEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch msg {
	case "job-queued":
		if _, ok := f.jobs[ev.ID]; !ok {
			f.order = append(f.order, ev.ID)
			sort.Strings(f.order)
		}
		ev.State = "queued"
		f.jobs[ev.ID] = &ev
	case "job-start":
		if j, ok := f.jobs[ev.ID]; ok {
			j.State = "running"
			j.Requeues = ev.Requeues
		}
	case "job-done":
		if j, ok := f.jobs[ev.ID]; ok {
			j.State = ev.State
			j.Cause = ev.Cause
			j.Cached = ev.Cached
			j.Instructions = ev.Instructions
			j.Cycles = ev.Cycles
			j.CPI = ev.CPI
		}
	case "job-shed":
		f.sheds[ev.Reason]++
	case "drain":
		f.drains++
	}
}

func (f *fleetState) setConn(ok bool, err error) {
	f.mu.Lock()
	f.connected, f.lastErr = ok, err
	f.mu.Unlock()
}

// runFleet is the -jobs main loop: one goroutine follows the SSE
// stream (reseeding the table on every reconnect), while this loop
// re-renders at the poll interval.
func runFleet(client *http.Client, base string, interval time.Duration, once, lines bool) {
	f := newFleetState()
	if rows, err := fetchJobs(client, base); err == nil {
		f.seed(rows)
		f.setConn(true, nil)
	} else {
		f.setConn(false, err)
	}
	if once {
		fmt.Print(f.render(base))
		f.mu.Lock()
		defer f.mu.Unlock()
		if !f.connected {
			fmt.Fprintln(os.Stderr, "vaxtop:", f.lastErr)
			os.Exit(1)
		}
		return
	}

	go followEvents(client, base, f, interval)

	ansi := !lines && stdoutIsTerminal()
	for {
		if ansi {
			fmt.Print("\x1b[H\x1b[J")
		}
		fmt.Print(f.render(base))
		time.Sleep(interval)
	}
}

// fetchJobs GETs the service's job list.
func fetchJobs(client *http.Client, base string) ([]fleetEvent, error) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/jobs: %s", resp.Status)
	}
	var rows []fleetEvent
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, fmt.Errorf("/jobs: %w", err)
	}
	return rows, nil
}

// followEvents subscribes to the SSE stream, applying each event to
// the model; on any disconnect it reseeds from /jobs (events missed
// while down are reflected there) and resubscribes.
func followEvents(client *http.Client, base string, f *fleetState, retry time.Duration) {
	// Streaming reads must not time out; clone the client without one.
	stream := &http.Client{Transport: client.Transport}
	for {
		if rows, err := fetchJobs(client, base); err == nil {
			f.seed(rows)
		}
		err := consumeSSE(stream, strings.TrimRight(base, "/")+"/events", f)
		f.setConn(false, err)
		time.Sleep(retry)
	}
}

// consumeSSE follows one event-stream connection until it drops.
func consumeSSE(client *http.Client, url string, f *fleetState) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/events: %s", resp.Status)
	}
	f.setConn(true, nil)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev fleetEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				f.apply(event, ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("/events: stream closed")
}

// render formats the fleet pane.
func (f *fleetState) render(base string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	conn := "live"
	if !f.connected {
		conn = "reconnecting"
		if f.lastErr != nil {
			conn = fmt.Sprintf("reconnecting (%v)", f.lastErr)
		}
	}
	states := map[string]int{}
	for _, id := range f.order {
		states[f.jobs[id].State]++
	}
	fmt.Fprintf(&b, "vaxtop — fleet %s  [%s]  jobs %d  queued %d  running %d  done %d  failed %d  evicted %d  timed-out %d\n",
		base, conn, len(f.order), states["queued"], states["running"],
		states["done"], states["failed"], states["evicted"], states["timed-out"])
	var shedParts []string
	for _, r := range sortedKeys(f.sheds) {
		shedParts = append(shedParts, fmt.Sprintf("%s=%d", r, f.sheds[r]))
	}
	shed := "none"
	if len(shedParts) > 0 {
		shed = strings.Join(shedParts, "  ")
	}
	fmt.Fprintf(&b, "  sheds: %s   drains: %d\n\n", shed, f.drains)
	fmt.Fprintf(&b, "  %-9s %-12s %-9s %3s %5s %12s %12s %6s  %s\n",
		"JOB", "TENANT", "STATE", "REQ", "CACHE", "INSTR", "CYCLES", "CPI", "CAUSE")
	for _, id := range f.order {
		j := f.jobs[id]
		tenant := j.Tenant
		if tenant == "" {
			tenant = "-"
		}
		cache := "-"
		if j.Cached {
			cache = "hit"
		}
		cpi := "-"
		if j.CPI > 0 {
			cpi = fmt.Sprintf("%.2f", j.CPI)
		}
		fmt.Fprintf(&b, "  %-9s %-12s %-9s %3d %5s %12d %12d %6s  %s\n",
			j.ID, tenant, j.State, j.Requeues, cache, j.Instructions, j.Cycles, cpi, j.Cause)
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
