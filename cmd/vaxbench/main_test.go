package main

import (
	"math"
	"strings"
	"testing"
)

// TestParseBenchMedians: repetition lines reduce to medians, the
// GOMAXPROCS suffix strips from names, sim_cycles/op produces the
// derived ns-per-sim-cycle, and non-benchmark noise is skipped.
func TestParseBenchMedians(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: vax780
BenchmarkFaults/off-8            100   6000000 ns/op   100000 sim_cycles/op
BenchmarkFaults/off-8            100   6600000 ns/op   100000 sim_cycles/op
BenchmarkFaults/off-8            100   6300000 ns/op   100000 sim_cycles/op
BenchmarkAlloc-8                 500      2000 ns/op      3 allocs/op
PASS
ok  	vax780	1.234s
`
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(results), results)
	}

	r, ok := results["BenchmarkFaults/off"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from BenchmarkFaults/off-8")
	}
	if r.NsPerOp != 6300000 || r.Runs != 3 {
		t.Errorf("median = %v over %d runs, want 6300000 over 3", r.NsPerOp, r.Runs)
	}
	if math.Abs(r.NsPerSimCycle-63.0) > 1e-9 {
		t.Errorf("ns_per_sim_cycle = %v, want 63.0", r.NsPerSimCycle)
	}

	a := results["BenchmarkAlloc"]
	if a.NsPerOp != 2000 || a.NsPerSimCycle != 0 {
		t.Errorf("no-cycles benchmark = %+v, want bare ns/op", a)
	}
}

// TestMedianEvenCount: even repetition counts average the middle pair.
func TestMedianEvenCount(t *testing.T) {
	if got := median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("median(1,2,3,4) = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v, want 0", got)
	}
}
