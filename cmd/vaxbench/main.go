// Command vaxbench maintains BENCH_history.json, the repo's
// longitudinal benchmark record: it parses `go test -bench` output on
// stdin, reduces each benchmark's repetitions to medians (ns/op plus
// the sim_cycles/op metric the perf benchmarks report, from which it
// derives ns per simulated cycle), and appends one dated entry. The
// per-PR BENCH_*.json files freeze each change's measurement method
// and adjudication; the history file strings their headline numbers
// into one comparable series.
//
// Usage:
//
//	go test -run xxx -bench 'Faults|Telemetry|ParallelRun' -count 3 . | vaxbench -label "my change"
//	vaxbench -print
//	vaxbench -compare [-threshold 5] old.json new.json
//
// -history selects the file (default BENCH_history.json). -print
// renders the recorded series as a table instead of appending.
// -compare diffs two recorded files (each a history file or a single
// entry; a history contributes its latest entry) benchmark by
// benchmark and exits nonzero when any common benchmark slowed by more
// than -threshold percent — the CI tripwire's adjudication step. Exit
// codes: 0 on success, 1 when parsing/the file fails or -compare found
// a regression, 2 on usage errors (e.g. no benchmark lines on stdin).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// benchLine matches one `go test -bench` result line; repetition
// suffixes like -8 (GOMAXPROCS) are stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)((?:\s+[\d.e+]+ \S+)+)$`)

// metricPair matches one "value unit" column.
var metricPair = regexp.MustCompile(`([\d.e+]+) (\S+)`)

// Result is one benchmark's reduced measurement in a history entry.
type Result struct {
	NsPerOp        float64 `json:"ns_per_op"`
	SimCyclesPerOp float64 `json:"sim_cycles_per_op,omitempty"`
	NsPerSimCycle  float64 `json:"ns_per_sim_cycle,omitempty"`
	Runs           int     `json:"runs"`
}

// Entry is one dated benchmark session.
type Entry struct {
	Date    string            `json:"date"`
	Label   string            `json:"label"`
	GOOS    string            `json:"goos"`
	GOARCH  string            `json:"goarch"`
	Results map[string]Result `json:"results"`
}

// History is the whole BENCH_history.json document.
type History struct {
	Description string  `json:"description"`
	Entries     []Entry `json:"entries"`
}

func main() {
	historyPath := flag.String("history", "BENCH_history.json", "history file to append to / print")
	label := flag.String("label", "", "label of the appended entry (e.g. the change being measured)")
	printOnly := flag.Bool("print", false, "print the recorded series instead of appending")
	compare := flag.Bool("compare", false, "compare two result files (old new args); exit 1 on regression")
	threshold := flag.Float64("threshold", 5, "regression threshold for -compare, in percent ns/op growth")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "vaxbench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	hist, err := loadHistory(*historyPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxbench:", err)
		os.Exit(1)
	}

	if *printOnly {
		printHistory(hist)
		return
	}

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxbench:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "vaxbench: no benchmark result lines on stdin (pipe `go test -bench` output in)")
		os.Exit(2)
	}
	hist.Entries = append(hist.Entries, Entry{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Label:   *label,
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Results: results,
	})
	if err := saveHistory(*historyPath, hist); err != nil {
		fmt.Fprintln(os.Stderr, "vaxbench:", err)
		os.Exit(1)
	}
	fmt.Printf("vaxbench: appended %d benchmark(s) to %s\n", len(results), *historyPath)
	for _, name := range sortedKeys(results) {
		r := results[name]
		if r.NsPerSimCycle > 0 {
			fmt.Printf("  %-40s %14.0f ns/op  %6.1f ns/sim-cycle  (median of %d)\n",
				name, r.NsPerOp, r.NsPerSimCycle, r.Runs)
		} else {
			fmt.Printf("  %-40s %14.0f ns/op  (median of %d)\n", name, r.NsPerOp, r.Runs)
		}
	}
}

// loadHistory reads the history file; a missing file starts an empty
// history rather than failing, so the first append bootstraps it.
func loadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || (err == nil && len(data) == 0) {
		return &History{
			Description: "Longitudinal benchmark record: one dated entry per session, medians over -count repetitions. Appended by cmd/vaxbench (make bench-all); per-change measurement methods live in the BENCH_*.json files.",
		}, nil
	}
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &h, nil
}

func saveHistory(path string, h *History) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseBench reduces `go test -bench` output to per-benchmark medians.
func parseBench(f io.Reader) (map[string]Result, error) {
	nsRuns := map[string][]float64{}
	cycleRuns := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		for _, mp := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mp[1], 64)
			if err != nil {
				continue
			}
			switch mp[2] {
			case "ns/op":
				nsRuns[name] = append(nsRuns[name], v)
			case "sim_cycles/op":
				cycleRuns[name] = append(cycleRuns[name], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(nsRuns))
	for name, runs := range nsRuns {
		r := Result{NsPerOp: median(runs), Runs: len(runs)}
		if cycles := cycleRuns[name]; len(cycles) > 0 {
			r.SimCyclesPerOp = median(cycles)
			if r.SimCyclesPerOp > 0 {
				r.NsPerSimCycle = r.NsPerOp / r.SimCyclesPerOp
			}
		}
		out[name] = r
	}
	return out, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func printHistory(h *History) {
	if len(h.Entries) == 0 {
		fmt.Println("vaxbench: history is empty")
		return
	}
	for _, e := range h.Entries {
		fmt.Printf("%s  %s  (%s/%s)\n", e.Date, e.Label, e.GOOS, e.GOARCH)
		for _, name := range sortedKeys(e.Results) {
			r := e.Results[name]
			if r.NsPerSimCycle > 0 {
				fmt.Printf("  %-40s %14.0f ns/op  %6.1f ns/sim-cycle\n", name, r.NsPerOp, r.NsPerSimCycle)
			} else {
				fmt.Printf("  %-40s %14.0f ns/op\n", name, r.NsPerOp)
			}
		}
		fmt.Println()
	}
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
