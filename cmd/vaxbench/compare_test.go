package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeHistory(t *testing.T, dir, name string, results map[string]Result) string {
	t.Helper()
	h := History{Entries: []Entry{{Date: "2026-01-01", Label: "t", Results: results}}}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareResultsFlagsRegression(t *testing.T) {
	old := map[string]Result{
		"BenchmarkFaults/off": {NsPerOp: 1000},
		"BenchmarkProf/off":   {NsPerOp: 2000},
	}
	new := map[string]Result{
		"BenchmarkFaults/off": {NsPerOp: 1030}, // +3%: inside a 5% threshold
		"BenchmarkProf/off":   {NsPerOp: 2400}, // +20%: regression
	}
	deltas := compareResults(old, new, 5)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	// Sorted worst first.
	if deltas[0].name != "BenchmarkProf/off" || !deltas[0].regression {
		t.Fatalf("worst delta = %+v, want BenchmarkProf/off regression", deltas[0])
	}
	if deltas[1].regression {
		t.Fatalf("BenchmarkFaults/off at +3%% flagged as regression under 5%% threshold")
	}
}

func TestCompareResultsIgnoresDisjointBenchmarks(t *testing.T) {
	old := map[string]Result{"A": {NsPerOp: 100}, "OnlyOld": {NsPerOp: 5}}
	new := map[string]Result{"A": {NsPerOp: 90}, "OnlyNew": {NsPerOp: 5}}
	deltas := compareResults(old, new, 5)
	if len(deltas) != 1 || deltas[0].name != "A" {
		t.Fatalf("deltas = %+v, want only the shared benchmark", deltas)
	}
	if deltas[0].regression {
		t.Fatalf("an improvement flagged as regression")
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeHistory(t, dir, "old.json", map[string]Result{"B": {NsPerOp: 1000}})
	slow := writeHistory(t, dir, "slow.json", map[string]Result{"B": {NsPerOp: 1200}})
	same := writeHistory(t, dir, "same.json", map[string]Result{"B": {NsPerOp: 1010}})
	other := writeHistory(t, dir, "other.json", map[string]Result{"C": {NsPerOp: 1}})

	if code := runCompare(oldPath, same, 5); code != 0 {
		t.Fatalf("clean compare exit = %d, want 0", code)
	}
	if code := runCompare(oldPath, slow, 5); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1", code)
	}
	if code := runCompare(oldPath, other, 5); code != 2 {
		t.Fatalf("disjoint compare exit = %d, want 2", code)
	}
	if code := runCompare(oldPath, filepath.Join(dir, "missing.json"), 5); code != 1 {
		t.Fatalf("missing-file compare exit = %d, want 1", code)
	}
}

func TestLoadResultsSingleEntry(t *testing.T) {
	dir := t.TempDir()
	e := Entry{Results: map[string]Result{"X": {NsPerOp: 7}}}
	data, _ := json.Marshal(e)
	path := filepath.Join(dir, "entry.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := loadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["X"].NsPerOp != 7 {
		t.Fatalf("single-entry results = %+v", res)
	}
}
