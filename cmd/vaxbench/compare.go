package main

// The regression diff behind `vaxbench -compare old.json new.json`:
// benchmark-by-benchmark ns/op deltas between two recorded result
// files, with a configurable trip threshold. CI runs it as the A/B
// tripwire's adjudication step — base and head benchmark output each
// reduced to a file by the ordinary vaxbench append path, then
// compared here — so the pass/fail rule lives in one reviewed place
// instead of inline workflow scripting.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// loadResults reads one -compare operand: a history file (its latest
// entry speaks for it) or a single entry object with a "results" map.
func loadResults(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if n := len(h.Entries); n > 0 {
		return h.Entries[n-1].Results, nil
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err == nil && len(e.Results) > 0 {
		return e.Results, nil
	}
	return nil, fmt.Errorf("%s: no benchmark entries (append with vaxbench first)", path)
}

// delta is one benchmark's movement between the two files.
type delta struct {
	name       string
	oldNs      float64
	newNs      float64
	percent    float64 // ns/op growth, positive = slower
	regression bool
}

// compareResults diffs every benchmark present in both maps. threshold
// is the allowed ns/op growth in percent; anything above it is a
// regression.
func compareResults(old, new map[string]Result, threshold float64) []delta {
	var out []delta
	for name, o := range old {
		n, ok := new[name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		pct := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		out = append(out, delta{
			name:       name,
			oldNs:      o.NsPerOp,
			newNs:      n.NsPerOp,
			percent:    pct,
			regression: pct > threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].percent != out[j].percent {
			return out[i].percent > out[j].percent
		}
		return out[i].name < out[j].name
	})
	return out
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(oldPath, newPath string, threshold float64) int {
	old, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxbench:", err)
		return 1
	}
	new, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxbench:", err)
		return 1
	}
	deltas := compareResults(old, new, threshold)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "vaxbench: the two files share no benchmarks")
		return 2
	}
	fmt.Printf("benchmark comparison (%s -> %s, threshold %+.1f%%)\n", oldPath, newPath, threshold)
	fmt.Printf("%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressed := 0
	for _, d := range deltas {
		mark := ""
		if d.regression {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-44s %14.0f %14.0f %+8.2f%%%s\n", d.name, d.oldNs, d.newNs, d.percent, mark)
	}
	if regressed > 0 {
		fmt.Printf("%d benchmark(s) regressed beyond %+.1f%%\n", regressed, threshold)
		return 1
	}
	fmt.Println("no regression beyond threshold")
	return 0
}
