package main

import (
	"strings"
	"testing"

	"vax780"
)

func TestMarkdownSections(t *testing.T) {
	tel := vax780.NewTelemetry(intervalCyclesFor(5000), 0)
	res, err := vax780.Run(vax780.RunConfig{Instructions: 5000, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(res, tel, 5000)
	wants := []string{
		"# EXPERIMENTS — paper vs. measured",
		"## Headline",
		"## Per-experiment runs",
		"## Figure 1 — system structure",
		"## Table 1 — opcode group frequency",
		"## Table 2 — PC-changing instructions",
		"## Table 3 — specifiers per average instruction",
		"## Table 4 — operand specifier distribution",
		"## Table 5 — D-stream reads and writes",
		"## Table 6 — estimated size of average instruction",
		"## Table 7 — interrupt and context-switch headway",
		"## Table 8 — average VAX instruction timing",
		"## Table 9 — cycles per instruction within each group",
		"## Section 4 — implementation events",
		"## Ablation A1",
		"## Interval time series",
		"recomposes exactly",
		"10.593",        // the paper CPI appears
		"TIMESHARING-A", // all five experiments listed
		"RTE-COM",
	}
	for _, w := range wants {
		if !strings.Contains(md, w) {
			t.Errorf("markdown missing %q", w)
		}
	}
	// Every markdown table row must be well-formed (starts and ends with a pipe).
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Errorf("malformed table row: %q", line)
		}
	}
}
