// Command vaxtables regenerates every table and figure of the paper from
// a fresh composite run and emits a markdown paper-vs-measured record —
// the generator behind EXPERIMENTS.md.
//
// Usage:
//
//	vaxtables [-n INSTRUCTIONS] [-o FILE] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vax780"
	"vax780/internal/paper"
	"vax780/internal/vax"
)

func main() {
	var (
		n    = flag.Int("n", 100_000, "instructions per experiment")
		out  = flag.String("o", "", "write markdown to FILE instead of stdout")
		jobs = flag.Int("j", 0, "workload machines to run concurrently (0 = GOMAXPROCS; output is bit-exact at any -j)")
	)
	flag.Parse()

	// The telemetry layer rides along on the composite run to produce
	// the interval time-series section.
	tel := vax780.NewTelemetry(intervalCyclesFor(*n), 0)
	res, err := vax780.Run(vax780.RunConfig{Instructions: *n, Telemetry: tel, Parallelism: *jobs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxtables:", err)
		os.Exit(1)
	}
	md := Markdown(res, tel, *n)
	if *out == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vaxtables:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// intervalCyclesFor picks a recorder period giving a readable number of
// rows for a composite run of perExperiment instructions per workload
// (the five workloads run at roughly the paper's 10.6 CPI).
func intervalCyclesFor(perExperiment int) uint64 {
	total := uint64(perExperiment) * 5 * 11
	period := total / 25
	if period < 1000 {
		period = 1000
	}
	return period
}

// Markdown renders the full paper-vs-measured record. tel may be nil to
// omit the interval time-series section.
func Markdown(res *vax780.Results, tel *vax780.Telemetry, perExperiment int) string {
	a := res.Analysis()
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	w("# EXPERIMENTS — paper vs. measured")
	w("")
	w("Reproduction of Emer & Clark, *A Characterization of Processor")
	w("Performance in the VAX-11/780* (ISCA 1984 / 1998 retrospective).")
	w("Composite of the five experiments (%d instructions each; the", perExperiment)
	w("histograms are summed, as in §2.2 of the paper). Regenerate with:")
	w("")
	w("    go run ./cmd/vaxtables -n %d -o EXPERIMENTS.md", perExperiment)
	w("")
	w("Reference-value provenance: plain numbers are legible in the")
	w("available text; `†` marks values reconstructed to satisfy legible")
	w("totals; `‡` marks values derived arithmetically (see DESIGN.md).")
	w("")
	w("## Headline")
	w("")
	w("| Metric | Measured | Paper |")
	w("|---|---|---|")
	w("| Cycles per average instruction | %.3f | 10.593 |", res.CPI())
	w("| Instructions analyzed | %d | — |", res.Instructions())
	w("")

	w("## Per-experiment runs")
	w("")
	w("| Experiment | Instructions | Cycles | CPI |")
	w("|---|---|---|---|")
	for _, p := range res.PerWorkload {
		w("| %s | %d | %d | %.3f |", p.Workload, p.Instructions, p.Cycles, p.CPI)
	}
	w("")

	w("## Per-workload comparison")
	w("")
	w("```")
	w("%s", strings.TrimRight(res.WorkloadComparison(), "\n"))
	w("```")
	w("")

	w("## Figure 1 — system structure")
	w("")
	w("Reproduced as the component graph rendered by `cmd/vaxdiag`:")
	w("")
	w("```")
	w("%s", strings.TrimRight(res.BlockDiagram(), "\n"))
	w("```")
	w("")

	mark := func(p paper.Provenance) string {
		switch p {
		case paper.Reconstructed:
			return "†"
		case paper.Derived:
			return "‡"
		}
		return ""
	}

	w("## Table 1 — opcode group frequency (percent)")
	w("")
	w("| Group | Measured | Paper |")
	w("|---|---|---|")
	for _, g := range a.OpcodeGroups() {
		ref := paper.Table1[g.Group]
		w("| %s | %.2f | %.2f%s |", g.Group, g.Percent, ref.V, mark(ref.P))
	}
	w("")

	w("## Table 2 — PC-changing instructions")
	w("")
	w("| Branch type | %% of instrs | Paper | %% taken | Paper |")
	w("|---|---|---|---|---|")
	rows, total := a.PCChanging()
	for _, r := range rows {
		ref, ok := paper.Table2[r.Class]
		if !ok {
			continue
		}
		w("| %s | %.1f | %.1f | %.0f | %.0f |",
			r.Class, r.PctOfInstrs, ref.PctOfInstrs.V, r.PctTaken, ref.PctTaken.V)
	}
	w("| **TOTAL** | %.1f | %.1f | %.0f | %.0f |",
		total.PctOfInstrs, paper.Table2Total.PctOfInstrs.V,
		total.PctTaken, paper.Table2Total.PctTaken.V)
	w("")

	w("## Table 3 — specifiers per average instruction")
	w("")
	sc := a.SpecifierCounts()
	w("| Item | Measured | Paper |")
	w("|---|---|---|")
	w("| First specifiers | %.3f | %.3f |", sc.First, paper.Table3FirstSpecs.V)
	w("| Other specifiers | %.3f | %.3f |", sc.Other, paper.Table3OtherSpecs.V)
	w("| Branch displacements | %.3f | %.3f |", sc.BranchDisp, paper.Table3BranchDisp.V)
	w("")

	w("## Table 4 — operand specifier distribution (percent)")
	w("")
	w("| Mode | SPEC1 | Paper | SPEC2-6 | Paper | Total | Paper |")
	w("|---|---|---|---|---|---|---|")
	modeRows, indexed := a.SpecifierModes()
	for _, r := range modeRows {
		ref := paper.Table4[r.Mode]
		w("| %s | %.1f | %.1f%s | %.1f | %.1f%s | %.1f | %.1f%s |",
			r.Mode, r.Spec1, ref.Spec1.V, mark(ref.Spec1.P),
			r.SpecN, ref.SpecN.V, mark(ref.SpecN.P),
			r.Total, ref.Total.V, mark(ref.Total.P))
	}
	ri := paper.Table4Indexed
	w("| %s | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f |",
		"Percent indexed", indexed.Spec1, ri.Spec1.V, indexed.SpecN, ri.SpecN.V,
		indexed.Total, ri.Total.V)
	w("")

	w("## Table 5 — D-stream reads and writes per average instruction")
	w("")
	w("| Source | Reads | Paper | Writes | Paper |")
	w("|---|---|---|---|---|")
	memRows, memTotal := a.MemoryOps()
	for _, r := range memRows {
		ref := paper.Table5[r.Source]
		w("| %s | %.3f | %.3f%s | %.3f | %.3f%s |",
			r.Source, r.Reads, ref.Reads.V, mark(ref.Reads.P),
			r.Writes, ref.Writes.V, mark(ref.Writes.P))
	}
	w("| **TOTAL** | %.3f | %.3f | %.3f | %.3f |",
		memTotal.Reads, paper.Table5Total.Reads.V,
		memTotal.Writes, paper.Table5Total.Writes.V)
	w("")

	w("## Table 6 — estimated size of average instruction")
	w("")
	est := a.InstructionSize()
	w("| Item | Measured | Paper |")
	w("|---|---|---|")
	w("| Specifiers per instruction | %.2f | %.2f |", est.SpecCount, paper.Table3SpecsTotal.V)
	w("| Average specifier bytes | %.2f | %.2f |", est.SpecBytes, paper.Table6SpecBytes.V)
	w("| Estimated instruction bytes | %.2f | %.2f |", est.TotalBytes, paper.Table6TotalBytes.V)
	if est.MeasuredBytes > 0 {
		w("| Consumed bytes (hardware counter) | %.2f | — |", est.MeasuredBytes)
	}
	w("")

	w("## Table 7 — interrupt and context-switch headway (instructions)")
	w("")
	h := a.EventHeadways()
	w("| Event | Measured | Paper |")
	w("|---|---|---|")
	w("| Software interrupt requests | %.0f | %.0f |", h.SoftIntRequests, paper.Table7SoftIntRequests.V)
	w("| Hardware and software interrupts | %.0f | %.0f |", h.Interrupts, paper.Table7Interrupts.V)
	w("| Context switches | %.0f | %.0f |", h.ContextSwitches, paper.Table7ContextSwitches.V)
	w("")

	w("## Table 8 — average VAX instruction timing (cycles per instruction)")
	w("")
	w("Measured value first, paper value in parentheses.")
	w("")
	m := a.CPIMatrix()
	header := "| Activity |"
	sep := "|---|"
	for c := paper.Table8Col(0); c < paper.NumT8Cols; c++ {
		header += fmt.Sprintf(" %s |", c)
		sep += "---|"
	}
	header += " Total |"
	sep += "---|"
	w("%s", header)
	w("%s", sep)
	for r := paper.Table8Row(0); r < paper.NumT8Rows; r++ {
		line := fmt.Sprintf("| %s |", r)
		for c := paper.Table8Col(0); c < paper.NumT8Cols; c++ {
			ref := paper.Table8[r][c]
			line += fmt.Sprintf(" %.3f (%.3f%s) |", m.Cells[r][c], ref.V, mark(ref.P))
		}
		rt := paper.Table8RowTotals[r]
		line += fmt.Sprintf(" %.3f (%.3f%s) |", m.RowTotals[r], rt.V, mark(rt.P))
		w("%s", line)
	}
	line := "| **TOTAL** |"
	for c := paper.Table8Col(0); c < paper.NumT8Cols; c++ {
		line += fmt.Sprintf(" %.3f (%.3f) |", m.ColTotals[c], paper.Table8ColTotals[c].V)
	}
	line += fmt.Sprintf(" **%.3f (%.3f)** |", m.Total, paper.Table8Total.V)
	w("%s", line)
	w("")

	w("## Table 9 — cycles per instruction within each group")
	w("")
	w("| Group | Measured | Paper‡ |")
	w("|---|---|---|")
	pg := a.PerGroupCycles()
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		cells, ok := pg[g]
		if !ok {
			continue
		}
		w("| %s | %.2f | %.2f |", g, cells[paper.NumT8Cols],
			paper.Table9Total(paper.GroupRow(g)).V)
	}
	w("")

	w("## Section 4 — implementation events")
	w("")
	tb := a.TBMissStats()
	w("| Metric | Measured | Paper |")
	w("|---|---|---|")
	w("| TB misses per instruction | %.4f | %.4f |", tb.MissesPerInstr, paper.Sec4TBMissPerInstr.V)
	w("| &nbsp;&nbsp;D-stream | %.4f | %.4f |", tb.DPerInstr, paper.Sec4TBMissD.V)
	w("| &nbsp;&nbsp;I-stream | %.4f | %.4f |", tb.IPerInstr, paper.Sec4TBMissI.V)
	w("| Cycles per TB miss | %.2f | %.2f |", tb.CyclesPerMiss, paper.Sec4TBMissCycles.V)
	w("| PTE read stall per miss | %.2f | %.2f |", tb.StallPerMiss, paper.Sec4TBMissStall.V)
	if cs, ok := a.CacheStudyStats(); ok {
		w("| IB references per instruction | %.2f | %.2f |", cs.IBRefsPerInstr, paper.Sec4IBRefsPerInstr.V)
		w("| IB bytes consumed per reference | %.2f | %.2f |", cs.IBBytesPerRef, paper.Sec4IBBytesPerRef.V)
		w("| Cache read misses per instruction | %.3f | %.3f |", cs.CacheMissPerInstr, paper.Sec4CacheMissPerInstr.V)
		w("| &nbsp;&nbsp;I-stream | %.3f | %.3f |", cs.CacheMissI, paper.Sec4CacheMissI.V)
		w("| &nbsp;&nbsp;D-stream | %.3f | %.3f |", cs.CacheMissD, paper.Sec4CacheMissD.V)
		w("| Unaligned refs per instruction | %.4f | %.4f |", cs.UnalignedPerInstr, paper.UnalignedPerInstr.V)
	}
	w("")

	w("## Section 5 — the paper's observations, re-evaluated")
	w("")
	w("| Verdict | Claim | Measured |")
	w("|---|---|---|")
	for _, o := range a.Observations() {
		verdict := "holds"
		if !o.Holds {
			verdict = "**FAILS**"
		}
		w("| %s | %s | %s |", verdict, o.Claim, o.Detail)
	}
	w("")

	w("## Ablation A1 — UPC histogram vs. trace-driven timing model")
	w("")
	if cmp, err := vax780.CompareTraceDriven(vax780.TimesharingA, perExperiment); err == nil {
		w("| Metric | Value |")
		w("|---|---|")
		w("| Trace-driven estimated CPI | %.2f |", cmp.EstimatedCPI)
		w("| UPC-measured CPI | %.2f |", cmp.MeasuredCPI)
		w("| Time invisible to the trace-driven model | %.0f%% |", 100*cmp.InvisibleFraction)
		w("| Interrupt deliveries absent from the user trace | %d |", cmp.SkippedEvents)
		w("")
		w("The gap is the paper's methodological point (§1): benchmark and")
		w("trace-driven methods cannot see stalls or operating-system and")
		w("multiprogramming effects; the histogram monitor measures them")
		w("directly on the live system.")
	} else {
		w("(comparison failed: %v)", err)
	}
	w("")

	ablN := perExperiment / 4
	if ablN < 10_000 {
		ablN = 10_000
	}

	w("## Ablation A2 — context-switch interval vs. TB behaviour")
	w("")
	w("Each switch flushes the process half of the 128-entry TB (§3.4).")
	w("")
	w("| Switch every (instr) | TB misses/instr | CPI |")
	w("|---|---|---|")
	for _, headway := range []int{1000, 6418, 50000} {
		r, err := vax780.Run(vax780.RunConfig{
			Instructions: ablN, Workloads: []vax780.WorkloadID{vax780.TimesharingA},
			CtxSwitchHeadway: headway,
		})
		if err != nil {
			w("| %d | error: %v | |", headway, err)
			continue
		}
		w("| %d | %.4f | %.3f |", headway, r.TBMiss().MissesPerInstr, r.CPI())
	}
	w("")

	w("## Ablation A3 — write buffer occupancy")
	w("")
	w("The 11/780's one-longword write buffer is busy 6 cycles per write;")
	w("a write attempted sooner stalls (§2.1).")
	w("")
	w("| Buffer busy (cycles) | Write-stall cycles/instr | CPI |")
	w("|---|---|---|")
	for _, busy := range []int{1, 6, 12} {
		r, err := vax780.Run(vax780.RunConfig{
			Instructions: ablN, Workloads: []vax780.WorkloadID{vax780.TimesharingA},
			WriteBusy: busy,
		})
		if err != nil {
			w("| %d | error: %v | |", busy, err)
			continue
		}
		m := r.Analysis().CPIMatrix()
		w("| %d | %.3f | %.3f |", busy, m.ColTotals[paper.T8WStall], r.CPI())
	}
	w("")

	w("## Ablation A4 — overlapped I-Decode (the 11/750 improvement of §5)")
	w("")
	base, err1 := vax780.Run(vax780.RunConfig{
		Instructions: ablN, Workloads: []vax780.WorkloadID{vax780.TimesharingA}})
	over, err2 := vax780.Run(vax780.RunConfig{
		Instructions: ablN, Workloads: []vax780.WorkloadID{vax780.TimesharingA},
		OverlapDecode: true})
	if err1 == nil && err2 == nil {
		b0 := base.PerWorkload[0].CPI
		o0 := over.PerWorkload[0].CPI
		w("| Machine | CPI |")
		w("|---|---|")
		w("| 11/780 (non-overlapped decode) | %.3f |", b0)
		w("| overlapped decode (11/750 style) | %.3f |", o0)
		w("| cycles saved per instruction | %.3f |", b0-o0)
		w("")
		w("§5 predicts saving \"one cycle on each non-PC-changing")
		w("instruction\" — about 0.74 cycles at the measured branch rates.")
	}
	w("")

	w("## Companion study C1 — cache organization sweep (reference [2])")
	w("")
	w("Captured reference trace replayed against alternative caches —")
	w("the methodology behind every Section 4 cache number.")
	w("")
	w("| Organization | Read miss ratio | I-stream | D-stream |")
	w("|---|---|---|---|")
	if study, err := vax780.CacheStudy(vax780.TimesharingA, ablN, vax780.Study780Configs()); err == nil {
		for _, r := range study {
			iRatio, dRatio := 0.0, 0.0
			if r.IReads > 0 {
				iRatio = float64(r.IReadMisses) / float64(r.IReads)
			}
			if r.Reads > 0 {
				dRatio = float64(r.ReadMisses) / float64(r.Reads)
			}
			w("| %s | %.4f | %.4f | %.4f |", r.Config.Name, r.ReadMissRatio, iRatio, dRatio)
		}
	} else {
		w("(study failed: %v)", err)
	}
	w("")

	writeHotFlowSection(w, res)

	if tel != nil {
		writeIntervalSection(w, res, tel)
	}
	return b.String()
}

// writeHotFlowSection renders the composite's hot control-store flows —
// the cycle-share side of the host-time profiler. Only the
// deterministic columns appear here (cycles and shares from the
// bit-exact composite histogram); host ns/cycle pricing depends on the
// machine the document was generated on, so it stays in vaxprof.
func writeHotFlowSection(w func(string, ...interface{}), res *vax780.Results) {
	p := res.Profile(nil)
	if p == nil || len(p.Flows) == 0 {
		return
	}
	w("## Hot control-store flows — where the composite's cycles go")
	w("")
	w("The flow-level reduction of the composite histogram (exact")
	w("profiler engine, unpriced): each microflow's share of all")
	w("simulated cycles, with its split over the Table 8 cycle classes.")
	w("Price these flows in host ns/cycle — and get the JIT targeting")
	w("list ranked by host cost × fusibility — with `go run ./cmd/vaxprof`.")
	w("")
	w("| # | Flow | Entry | Cycles | Share | Compute | Read | RStall | Write | WStall | IBStall |")
	w("|---|---|---|---|---|---|---|---|---|---|---|")
	const maxFlows = 12
	var shown uint64
	for i, f := range p.Top(maxFlows) {
		w("| %d | %s | %04x | %d | %.1f%% | %d | %d | %d | %d | %d | %d |",
			i+1, f.Name, f.Entry, f.Cycles, 100*f.Share,
			f.ClassCycles[0], f.ClassCycles[1], f.ClassCycles[2],
			f.ClassCycles[3], f.ClassCycles[4], f.ClassCycles[5])
		shown += f.Cycles
	}
	w("")
	w("The %d flows shown cover %.1f%% of the %d composite cycles", len(p.Top(maxFlows)),
		100*float64(shown)/float64(p.TotalCycles), p.TotalCycles)
	w("(%d flows total, %d cycles unattributed to any flow).", len(p.Flows), p.Unattributed)
	w("")
}

// writeIntervalSection renders the live-telemetry interval study: the
// per-interval CPI decomposition the paper's §2.2 names as missing from
// its averages-only reduction ("no measures of the variation of the
// statistics during the measurement are collected").
func writeIntervalSection(w func(string, ...interface{}), res *vax780.Results, tel *vax780.Telemetry) {
	rows := tel.IntervalRows()
	if len(rows) == 0 {
		return
	}
	w("## Interval time series — the variation §2.2 could not measure")
	w("")
	w("The live telemetry layer snapshotted the UPC histogram and the")
	w("hardware counters during the composite run, decomposing each")
	w("interval's CPI by cycle class (Table 8 columns). Workload phase")
	w("boundaries are visible as steps in the SIMPLE%% column.")
	w("")
	w("| # | Cycles | Instrs | CPI | Compute | Read | RStall | Write | WStall | IBStall | SIMPLE%% | TB miss |")
	w("|---|---|---|---|---|---|---|---|---|---|---|---|")
	const maxRows = 30
	shown := rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, r := range shown {
		w("| %d | %d | %d | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.1f | %d |",
			r.Index, r.Cycles, r.Instructions, r.CPI,
			r.Compute, r.Read, r.ReadStall, r.Write, r.WriteStall, r.IBStall,
			r.SimplePct, r.TBMissD+r.TBMissI)
	}
	if len(rows) > maxRows {
		w("| … | (%d more intervals) | | | | | | | | | | |", len(rows)-maxRows)
	}
	w("")
	w("Invariant check: the %d interval histograms sum to %d cycles;", len(rows), tel.IntervalCycleTotal())
	w("the composite histogram holds %d cycles — the time series", res.Histogram().TotalCycles())
	w("recomposes exactly to the paper's averages. Export the full series")
	w("with `vaxmon -intervals-csv` / `-intervals-json`, watch it live with")
	w("`vaxmon -serve :8780`, or open a per-cycle view in Perfetto via")
	w("`vaxmon -trace run.json`.")
	w("")
}
