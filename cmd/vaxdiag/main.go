// Command vaxdiag prints the simulated system's structure: the Figure 1
// block diagram, the control-store region summary, the static microcode
// verifier's verdict, and (with -listing) the full microprogram listing.
// -probes adds the telemetry layer's probe-point map: where each live
// observation is tapped and what consumes it. -lint runs the
// whole-program control-store analyzer (internal/ulint) and prints its
// attribution proof and per-flow worst-case cycle bounds.
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780"
)

func main() {
	listing := flag.Bool("listing", false, "print the full control store listing")
	probes := flag.Bool("probes", false, "print the telemetry probe-point map")
	lint := flag.Bool("lint", false, "run the control-store static analyzer and print flow bounds")
	flag.Parse()

	fmt.Println(vax780.BlockDiagram())
	if *probes {
		fmt.Println(vax780.DescribeTelemetryProbes())
		fmt.Println()
	}
	fmt.Println(vax780.ControlStoreSummary())

	issues := vax780.VerifyMicrocode()
	if len(issues) == 0 {
		fmt.Println("microcode verifier: clean")
	} else {
		fmt.Printf("microcode verifier: %d issues\n", len(issues))
		for _, i := range issues {
			fmt.Println(" ", i)
		}
		defer os.Exit(1)
	}

	if *lint {
		rep := vax780.LintControlStore()
		fmt.Println()
		fmt.Println(rep.Summary())
		for _, f := range rep.Findings {
			fmt.Println(" ", f)
		}
		fmt.Println()
		fmt.Println("per-flow worst-case cycle bounds (stalls excluded):")
		for _, b := range rep.Bounds {
			fmt.Println(" ", b)
		}
		if !rep.Proven() || len(rep.Errors()) > 0 {
			defer os.Exit(1)
		}
	}

	if *listing {
		fmt.Println()
		fmt.Println(vax780.ControlStoreListing())
	}
}
