// Command vaxdiag prints the simulated system's structure: the Figure 1
// block diagram, the control-store region summary, the static microcode
// verifier's verdict, and (with -listing) the full microprogram listing.
// -probes adds the telemetry layer's probe-point map: where each live
// observation is tapped and what consumes it. -lint runs the
// whole-program control-store analyzer (internal/ulint) and prints its
// attribution proof and per-flow worst-case cycle bounds.
//
// -ledger FILE switches to the run-ledger pretty-printer: the JSONL
// event stream a run wrote (vaxmon -ledger, RunConfig.Ledger) is
// validated against the golden schema and rendered one event per line.
// -ev TYPE[,TYPE...] filters to the named event types (e.g.
// "machine-fault,retry"); exit code 1 when the file fails validation.
//
// -obs DATA_DIR switches to the observability auditor: the vaxd data
// directory's journal is validated against the golden event schema,
// the counters it implies are recomposed and printed, and every
// committed bundle's trace.jsonl is checked against the span schema.
// With -metrics URL the live /metrics counters are additionally proven
// to recompose exactly from the journal (obs.Validate). Exit code 1 on
// any failed check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vax780"
)

func main() {
	listing := flag.Bool("listing", false, "print the full control store listing")
	probes := flag.Bool("probes", false, "print the telemetry probe-point map")
	lint := flag.Bool("lint", false, "run the control-store static analyzer and print flow bounds")
	ledger := flag.String("ledger", "", "pretty-print a run-ledger JSONL file instead of the system structure")
	evFilter := flag.String("ev", "", "with -ledger: only print these comma-separated event types")
	obsDir := flag.String("obs", "", "audit a vaxd data directory's observability invariants (journal, counters, traces)")
	metricsURL := flag.String("metrics", "", "with -obs: prove this live /metrics endpoint recomposes from the journal")
	flag.Parse()

	if *obsDir != "" {
		if err := runObs(*obsDir, *metricsURL); err != nil {
			fmt.Fprintln(os.Stderr, "vaxdiag:", err)
			os.Exit(1)
		}
		return
	}

	if *ledger != "" {
		if err := printLedger(*ledger, *evFilter); err != nil {
			fmt.Fprintln(os.Stderr, "vaxdiag:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println(vax780.BlockDiagram())
	if *probes {
		fmt.Println(vax780.DescribeTelemetryProbes())
		fmt.Println()
	}
	fmt.Println(vax780.ControlStoreSummary())

	issues := vax780.VerifyMicrocode()
	if len(issues) == 0 {
		fmt.Println("microcode verifier: clean")
	} else {
		fmt.Printf("microcode verifier: %d issues\n", len(issues))
		for _, i := range issues {
			fmt.Println(" ", i)
		}
		defer os.Exit(1)
	}

	if *lint {
		rep := vax780.LintControlStore()
		fmt.Println()
		fmt.Println(rep.Summary())
		for _, f := range rep.Findings {
			fmt.Println(" ", f)
		}
		fmt.Println()
		fmt.Println("per-flow worst-case cycle bounds (stalls excluded):")
		for _, b := range rep.Bounds {
			fmt.Println(" ", b)
		}
		if !rep.Proven() || len(rep.Errors()) > 0 {
			defer os.Exit(1)
		}
	}

	if *listing {
		fmt.Println()
		fmt.Println(vax780.ControlStoreListing())
	}
}

// printLedger validates and renders a run-ledger JSONL file: one line
// per event — sequence, time, event type, then the event's own
// attributes in sorted key order (envelope fields elided).
func printLedger(path, evFilter string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := vax780.ValidateLedger(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	keep := map[string]bool{}
	for _, t := range strings.Split(evFilter, ",") {
		if t = strings.TrimSpace(t); t != "" {
			keep[t] = true
		}
	}

	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return err
		}
		ev, _ := rec["msg"].(string)
		if len(keep) > 0 && !keep[ev] {
			continue
		}
		seq, _ := rec["seq"].(float64)
		tstamp, _ := rec["time"].(string)
		keys := make([]string, 0, len(rec))
		for k := range rec {
			switch k {
			case "time", "level", "msg", "seq":
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "%4.0f  %s  %-18s", seq, tstamp, ev)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%s", k, renderValue(rec[k]))
		}
		fmt.Println(b.String())
	}
	return nil
}

// renderValue compacts one attribute for the single-line rendering:
// scalars as-is, structures re-marshaled (the flight snapshot of a
// machine-fault event stays one JSON blob on the line).
func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.3f", x)
	case bool:
		return fmt.Sprintf("%t", x)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}
