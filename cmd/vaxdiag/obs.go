// The -obs mode: offline verification of a vaxd data directory's
// observability invariants. Three checks, all against the same
// append-only journal the service recovers from:
//
//  1. every complete journal record validates against the golden
//     runlog event schema (a torn final line is reported, not fatal —
//     the next vaxd start truncates it);
//  2. the counters the journal implies (obs.Recompose) are printed,
//     and with -metrics URL the live /metrics counters are proven to
//     recompose exactly from them (obs.Validate);
//  3. every committed bundle's trace.jsonl validates against the span
//     schema.
//
// Exit code 1 when any check fails.

package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vax780/internal/castore"
	"vax780/internal/obs"
	"vax780/internal/runlog"
)

func runObs(data, metricsURL string) error {
	raw, err := os.ReadFile(filepath.Join(data, "journal.jsonl"))
	if err != nil {
		return err
	}
	if i := bytes.LastIndexByte(raw, '\n'); i < 0 {
		if len(raw) > 0 {
			fmt.Printf("journal: single torn record (%d bytes), no complete events\n", len(raw))
		}
		raw = nil
	} else {
		if i+1 < len(raw) {
			fmt.Printf("journal: torn tail (%d bytes) ignored; next vaxd start repairs it\n", len(raw)-i-1)
		}
		raw = raw[:i+1]
	}
	records := bytes.Count(raw, []byte{'\n'})
	if records > 0 {
		if err := runlog.Validate(bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("journal schema: %w", err)
		}
	}
	fmt.Printf("journal: %d records, schema valid\n", records)

	counts, err := obs.Recompose(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("recomposed counters (%d series):\n", len(keys))
	for _, k := range keys {
		fmt.Printf("  %s %g\n", k, counts[k])
	}

	if metricsURL != "" {
		live, err := fetchCounters(metricsURL)
		if err != nil {
			return err
		}
		if err := obs.Validate(live, bytes.NewReader(raw)); err != nil {
			return err
		}
		fmt.Printf("live /metrics: %d counter series recompose exactly from the journal\n", len(live))
	}

	store, err := castore.Open(data)
	if err != nil {
		return err
	}
	defer store.Close()
	bundleKeys, err := store.Keys()
	if err != nil {
		return err
	}
	traced := 0
	for _, key := range bundleKeys {
		names, err := store.Bundle(key)
		if err != nil {
			return err
		}
		hasTrace := false
		for _, n := range names {
			if n == "trace.jsonl" {
				hasTrace = true
			}
		}
		if !hasTrace {
			continue // sweep bundles carry no trace
		}
		rows, err := store.ReadFile(key, "trace.jsonl")
		if err != nil {
			return err
		}
		if err := obs.ValidateSpans(rows); err != nil {
			return fmt.Errorf("bundle %s trace: %w", key, err)
		}
		traced++
	}
	fmt.Printf("bundles: %d committed, %d traces span-schema valid\n", len(bundleKeys), traced)
	return nil
}

// fetchCounters scrapes the vaxd counter families from a /metrics
// endpoint. Counters are exactly the vaxd_*_total series; histograms
// and gauges are outside the recomposition contract.
func fetchCounters(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	live := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		family := series
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if !strings.HasPrefix(family, "vaxd_") || !strings.HasSuffix(family, "_total") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(valStr, "%g", &v); err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		live[series] = v
	}
	return live, nil
}
