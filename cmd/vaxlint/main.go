// Command vaxlint runs the control-store static analyzer over the
// shipped microprogram: the dispatch-rooted CFG passes that prove
// attribution completeness (every tickable histogram bucket maps to a
// Table 8 CPI cell), flow termination, stall/trap path legality, and
// dead-word absence. It then audits the flow-fusion superword plan:
// every fused segment must be exactly one straight-line run the
// analyzer proved legal, re-verified word by word. Exit status is
// nonzero on any error-severity finding or audit failure, so CI can
// gate on it.
//
//	-bounds   also print the per-flow worst-case cycle bounds
//	-effects  also run the effect-summary audit: every fusible segment
//	          must carry a proven per-cycle effect stream, every
//	          superword's replay must match it, and every fusible uret
//	          return edge must land on a superword head
//	-json     write the machine-readable proof report to stdout (implies
//	          -effects; nothing else is printed on success)
//	-strict   fail on warnings too
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780"
)

func main() {
	bounds := flag.Bool("bounds", false, "print per-flow worst-case cycle bounds")
	effects := flag.Bool("effects", false, "audit superword effect summaries and return-site fusion")
	jsonOut := flag.Bool("json", false, "write the machine-readable proof report to stdout")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	flag.Parse()

	if *jsonOut {
		b, err := vax780.LintJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxlint:", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
		rep := vax780.LintControlStore()
		if len(rep.Errors()) > 0 || (*strict && !rep.Clean()) || !rep.Proven() {
			os.Exit(1)
		}
		return
	}

	rep := vax780.LintControlStore()
	fmt.Println(rep.Summary())
	for _, f := range rep.Findings {
		fmt.Println(" ", f)
	}
	if *bounds {
		fmt.Println("\nper-flow worst-case cycle bounds (stalls excluded):")
		for _, b := range rep.Bounds {
			fmt.Println(" ", b)
		}
	}

	superwords, err := vax780.FusionAudit()
	if err != nil {
		fmt.Println("fusion:", err)
		os.Exit(1)
	}
	fmt.Printf("fusion: %d superwords audited, every one an ulint-proven straight-line segment\n",
		superwords)

	if *effects {
		audit, err := vax780.FusionEffectsAudit()
		if err != nil {
			fmt.Println("effects:", err)
			os.Exit(1)
		}
		fmt.Printf("effects: %d/%d fusible segments carry a proven per-cycle effect summary\n",
			audit.SummarizedEffects, audit.FusibleSegments)
		fmt.Printf("effects: %d superword replay streams match their summaries\n",
			audit.Superwords)
		fmt.Printf("effects: %d uret return edges, %d fusible (land on a superword head)\n",
			audit.ReturnEdges, audit.FusibleReturnEdges)
	}

	if len(rep.Errors()) > 0 || (*strict && !rep.Clean()) || !rep.Proven() {
		os.Exit(1)
	}
}
