// Command vaxvet is the repository's Go-invariant multichecker. It
// loads and type-checks every production package of the module with the
// stdlib source importer (no x/tools dependency) and runs the
// internal/golint analyzer suite:
//
//	hotpath      no allocations, defers, goroutines, or unguarded
//	             interface calls in the per-cycle tick functions
//	probeguard   telemetry hook calls (Probe/probe/tel fields) must be
//	             dominated by a nil check
//	determinism  no wall-clock reads or global rand draws; runs are
//	             pure functions of seed and config
//	atomicwrite  result and checkpoint commits go through staging
//	             write → fsync → atomic rename, never a bare write
//
// Exit status is nonzero when any diagnostic is emitted, so `make lint`
// and CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780/internal/golint"
)

func main() {
	dir := flag.String("dir", "", "module directory (default: walk up from cwd)")
	flag.Parse()

	root, modPath, err := golint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxvet:", err)
		os.Exit(2)
	}
	paths, err := golint.ListPackages(root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxvet:", err)
		os.Exit(2)
	}
	pkgs, err := golint.LoadPackages(root, modPath, paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxvet:", err)
		os.Exit(2)
	}

	diags := golint.Run(pkgs, golint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	fmt.Printf("vaxvet: %d packages, 4 analyzers, 0 diagnostics\n", len(pkgs))
}
