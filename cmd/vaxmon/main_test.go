package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vax780"
)

func TestJobsParallelism(t *testing.T) {
	cases := []struct {
		in   int
		want int
		ok   bool
	}{
		{0, 0, true}, // auto: defer to the library default
		{1, 1, true}, // sequential
		{8, 8, true}, // bounded pool
		{-1, 0, false},
		{-99, 0, false},
	}
	for _, c := range cases {
		got, err := jobsParallelism(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("jobsParallelism(%d): unexpected error %v", c.in, err)
			}
			if got != c.want {
				t.Errorf("jobsParallelism(%d) = %d, want %d", c.in, got, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("jobsParallelism(%d): want error, got %d", c.in, got)
		} else if !strings.Contains(err.Error(), "-j") {
			t.Errorf("jobsParallelism(%d): error %q does not name the flag", c.in, err)
		}
	}
}

// TestOpenLedger: "-" aliases stderr without a real close; a path
// creates the file and the returned closer flushes it.
func TestOpenLedger(t *testing.T) {
	w, closeFn, err := openLedger("-")
	if err != nil {
		t.Fatal(err)
	}
	if w != os.Stderr {
		t.Error(`openLedger("-") did not return stderr`)
	}
	closeFn()

	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, closeFn, err = openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	closeFn()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x\n" {
		t.Errorf("ledger file holds %q", data)
	}

	if _, _, err := openLedger(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("openLedger into a missing directory did not fail")
	}
}

// TestProgressLine: the -progress stderr line carries the fleet state
// a user scans for — completed units, busy workloads, fault tallies.
func TestProgressLine(t *testing.T) {
	line := progressLine(vax780.Progress{
		DoneUnits: 2, TotalUnits: 5,
		InstrRate: 1500, ETASeconds: 12,
		Faults: 1, Retries: 3,
		Workers: []vax780.ProgressWorker{
			{Label: "TIMESHARING-A", Busy: true},
			{Label: "(old)", Busy: false},
			{Label: "RTE-SCIENTIFIC", Busy: true},
		},
	})
	for _, want := range []string{
		"2/5 workloads", "TIMESHARING-A,RTE-SCIENTIFIC",
		"1500 instr/s", "eta 12s", "faults 1 retries 3",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q lacks %q", line, want)
		}
	}
	if strings.Contains(line, "(old)") {
		t.Error("progress line shows an idle worker's stale label")
	}

	idle := progressLine(vax780.Progress{TotalUnits: 5})
	if !strings.Contains(idle, "0/5 workloads  -") {
		t.Errorf("idle progress line %q lacks the '-' placeholder", idle)
	}
}

// TestPrintFlightTail: the fault post-mortem prints the last n flight
// entries, octal micro-PCs, with stalls flagged.
func TestPrintFlightTail(t *testing.T) {
	mf := &vax780.MachineFault{}
	for i := 0; i < 12; i++ {
		mf.Flight = append(mf.Flight, vax780.FlightEntry{
			Cycle: uint64(100 + i), UPC: uint16(i), Class: "COMPUTE", Region: "IFETCH",
			Stalled: i == 11,
		})
	}
	var b strings.Builder
	printFlightTail(&b, mf, 8)
	out := b.String()
	for _, want := range []string{
		"last 8 of 12 cycles", "uPC 00013", "COMPUTE", "IFETCH", "STALLED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flight tail output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "uPC 00003") {
		t.Error("flight tail printed entries outside the last 8")
	}

	b.Reset()
	printFlightTail(&b, &vax780.MachineFault{}, 8)
	if b.Len() != 0 {
		t.Errorf("empty flight printed %q", b.String())
	}
}
