package main

import (
	"strings"
	"testing"
)

func TestJobsParallelism(t *testing.T) {
	cases := []struct {
		in   int
		want int
		ok   bool
	}{
		{0, 0, true}, // auto: defer to the library default
		{1, 1, true}, // sequential
		{8, 8, true}, // bounded pool
		{-1, 0, false},
		{-99, 0, false},
	}
	for _, c := range cases {
		got, err := jobsParallelism(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("jobsParallelism(%d): unexpected error %v", c.in, err)
			}
			if got != c.want {
				t.Errorf("jobsParallelism(%d) = %d, want %d", c.in, got, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("jobsParallelism(%d): want error, got %d", c.in, got)
		} else if !strings.Contains(err.Error(), "-j") {
			t.Errorf("jobsParallelism(%d): error %q does not name the flag", c.in, err)
		}
	}
}
