// Command vaxmon runs one workload (or the full composite) under the UPC
// histogram monitor and prints every table of the paper with the
// published values alongside — the reproduction's main measurement tool.
//
// Usage:
//
//	vaxmon [-workload NAME] [-n INSTRUCTIONS] [-strict] [-hot N] [-j N]
//	       [-save FILE] [-load FILE] [-compare] [-quiet]
//	       [-faults RATE] [-fault-seed SEED]
//	       [-checkpoint FILE] [-resume]
//	       [-ledger FILE] [-progress]
//	       [-serve ADDR] [-interval-cycles N] [-trace FILE]
//	       [-intervals-csv FILE] [-intervals-json FILE]
//
// With no -workload, all five experiments run and their histograms are
// summed into the composite, as in the paper. -save dumps the composite
// histogram (the board readout); -load re-analyzes a saved dump without
// re-simulating; -compare prints the per-workload comparison matrix.
//
// -faults injects measurement and machine faults at the given
// per-event rate, deterministically from -fault-seed; the report then
// carries bucket-coverage confidence annotations. -checkpoint makes the
// run crash-safe: the composite state is snapshotted atomically after
// every completed workload, and -resume picks a killed run up from the
// snapshot, bit-identically.
//
// -j bounds how many workload machines run concurrently (default
// GOMAXPROCS); the composite is bit-exact at any -j, so the flag only
// changes wall-clock time. The /board command endpoints act on the
// currently-merging timeline, so live board control with -serve is most
// useful at -j 1.
//
// -serve starts the live monitor before the run: Prometheus-text
// /metrics, expvar /debug/vars, net/http/pprof /debug/pprof/, the
// histogram board's Unibus register mirror at /board/{start,stop,clear,
// csr,read}, the run-ledger event stream as SSE at /events, and the
// fleet-progress snapshot at /progress. -trace writes a Chrome
// trace-event JSON of the run (chrome://tracing, Perfetto);
// -intervals-csv / -intervals-json export the per-interval
// CPI-decomposition time series.
//
// -ledger FILE writes the run ledger — one JSONL event per run action
// (see vaxdiag -ledger for a pretty-printer) — to FILE ("-" for
// stderr). -progress prints a live fleet-progress line to stderr while
// the run executes; vaxtop renders the same feed against -serve.
// -quiet suppresses the paper tables, leaving the per-workload summary
// (and any -hot/-compare extras); use it when the ledger or exports
// are the product.
//
// Exit codes: 0 on success, 1 when the run or analysis fails (a
// machine fault prints its micro-PC flight-recorder tail), 2 on a
// usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"vax780"
)

func main() {
	var (
		name      = flag.String("workload", "", "single workload: TIMESHARING-A, TIMESHARING-B, RTE-EDU, RTE-SCI, RTE-COM (default: all five)")
		n         = flag.Int("n", 100_000, "instructions per experiment")
		strict    = flag.Bool("strict", false, "verify every IB decode against the trace")
		hot       = flag.Int("hot", 0, "also print the N hottest histogram locations")
		save      = flag.String("save", "", "save the composite histogram dump to FILE")
		load      = flag.String("load", "", "analyze a saved histogram dump instead of simulating")
		compare   = flag.Bool("compare", false, "print the per-workload comparison")
		jobs      = flag.Int("j", 0, "workload machines to run concurrently (0 = GOMAXPROCS; results are bit-exact at any -j)")
		intervals = flag.Int("intervals", 0, "also run an interval-variation study with this snapshot interval")

		ledgerOut = flag.String("ledger", "", "write the run ledger (JSONL, one event per run action) to FILE (\"-\" = stderr)")
		progress  = flag.Bool("progress", false, "print a live fleet-progress line to stderr during the run")
		quiet     = flag.Bool("quiet", false, "suppress the paper tables; print only the per-workload summary")

		faultRate  = flag.Float64("faults", 0, "inject faults at this per-event rate in every class (0 = off)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed of the deterministic fault plan")
		checkpoint = flag.String("checkpoint", "", "snapshot the run state to FILE after each completed workload")
		resume     = flag.Bool("resume", false, "resume a killed run from the -checkpoint snapshot")

		serve    = flag.String("serve", "", "serve the live monitor (/metrics, /debug/pprof/, /board/*) on ADDR, e.g. :8780")
		interval = flag.Uint64("interval-cycles", 0, "record the interval time series every N cycles (default 100000 when an interval export or -serve is active)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to FILE")
		traceMax = flag.Int("trace-max", 2_000_000, "cap on retained trace events (-1 = unlimited)")
		csvOut   = flag.String("intervals-csv", "", "write the interval time series as CSV to FILE")
		jsonOut  = flag.String("intervals-json", "", "write the interval time series as JSON to FILE")
	)
	flag.Parse()

	parallelism, err := jobsParallelism(*jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxmon:", err)
		os.Exit(2)
	}

	tel := buildTelemetry(*serve, *interval, *traceOut, *traceMax, *csvOut, *jsonOut)
	if *load != "" && (tel != nil || *ledgerOut != "" || *progress) {
		fmt.Fprintln(os.Stderr, "vaxmon: telemetry, -ledger, and -progress need a live run, not -load")
		os.Exit(2)
	}
	if *serve != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "vaxmon: live monitor on http://%s/metrics\n", *serve)
			if err := http.ListenAndServe(*serve, tel.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "vaxmon: monitor:", err)
			}
		}()
	}

	var res *vax780.Results
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		res, err = vax780.LoadHistogram(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Printf("Analyzing saved histogram %s\n\n", *load)
	} else {
		cfg := vax780.RunConfig{
			Instructions: *n, Strict: *strict, Telemetry: tel,
			Checkpoint: *checkpoint, Resume: *resume,
			Parallelism: parallelism,
		}
		if *ledgerOut != "" {
			w, closeLedger, err := openLedger(*ledgerOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vaxmon:", err)
				os.Exit(1)
			}
			defer closeLedger()
			cfg.Ledger = w
		}
		if *progress {
			cfg.Progress = printProgress
		}
		if *faultRate > 0 {
			cfg.Faults = vax780.UniformFaults(*faultSeed, *faultRate)
		}
		if *resume && *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "vaxmon: -resume needs -checkpoint FILE")
			os.Exit(2)
		}
		if *name != "" {
			id, err := vax780.WorkloadByName(*name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Workloads = []vax780.WorkloadID{id}
		}
		var err error
		res, err = vax780.Run(cfg)
		if err != nil {
			var mf *vax780.MachineFault
			if errors.As(err, &mf) {
				fmt.Fprintf(os.Stderr, "vaxmon: %v\n  at uPC %05o, cycle %d, site %s (%s)\n",
					err, mf.UPC, mf.Cycle, mf.Site, mf.Cause)
				printFlightTail(os.Stderr, mf, 8)
				if *checkpoint != "" {
					fmt.Fprintf(os.Stderr, "  completed workloads are checkpointed in %s; rerun with -resume\n", *checkpoint)
				}
			} else {
				fmt.Fprintln(os.Stderr, "vaxmon:", err)
			}
			os.Exit(1)
		}
	}

	fmt.Println("VAX-11/780 UPC histogram measurement")
	fmt.Println()
	for _, w := range res.PerWorkload {
		fmt.Printf("  %-14s %9d instructions  %10d cycles  CPI %.3f\n",
			w.Workload, w.Instructions, w.Cycles, w.CPI)
	}
	if res.Resumed > 0 {
		fmt.Printf("  (%d workload(s) restored from checkpoint)\n", res.Resumed)
	}
	if res.FaultInjections != "" {
		fmt.Printf("  faults injected: %s\n", res.FaultInjections)
		if res.Retries > 0 {
			fmt.Printf("  transient faults retried: %d\n", res.Retries)
		}
	}
	if !*quiet {
		fmt.Println()
		fmt.Println(res.Report())
	}

	if *compare {
		fmt.Println(res.WorkloadComparison())
	}
	if *intervals > 0 {
		id := vax780.TimesharingA
		if *name != "" {
			id, _ = vax780.WorkloadByName(*name)
		}
		s, err := vax780.RunIntervals(id, *n, *intervals)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Printf("Interval variation (%s, every %d instructions):\n", id, *intervals)
		for i, p := range s.Points {
			fmt.Printf("  %4d  CPI %6.2f  SIMPLE %5.1f%%\n", i, p.CPI, p.SimplePct)
		}
		fmt.Printf("  mean %.2f  stddev %.2f  range [%.2f, %.2f]\n",
			s.MeanCPI, s.StdDevCPI, s.MinCPI, s.MaxCPI)
	}
	if *hot > 0 {
		printHotBuckets(res, *hot)
	}
	if *save != "" {
		if err := res.SaveHistogramFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Println("histogram dump saved to", *save)
	}

	if tel != nil {
		exportTelemetry(tel, *traceOut, *csvOut, *jsonOut)
		if *serve != "" {
			fmt.Fprintf(os.Stderr, "vaxmon: run complete; monitor still serving on %s (interrupt to exit)\n", *serve)
			select {}
		}
	}
}

// jobsParallelism validates the -j flag and resolves it to a
// RunConfig.Parallelism value: 0 keeps the library default (GOMAXPROCS),
// positive values bound the worker pool, anything else is an error.
func jobsParallelism(j int) (int, error) {
	if j < 0 {
		return 0, fmt.Errorf("-j must be 0 (auto) or a positive worker count, got %d", j)
	}
	return j, nil
}

// buildTelemetry assembles the telemetry layer the requested outputs
// need; it returns nil when no telemetry flag is active so the run
// takes the uninstrumented path.
func buildTelemetry(serve string, interval uint64, traceOut string, traceMax int, csvOut, jsonOut string) *vax780.Telemetry {
	if serve == "" && traceOut == "" && csvOut == "" && jsonOut == "" && interval == 0 {
		return nil
	}
	if interval == 0 {
		interval = 100_000
	}
	max := 0
	if traceOut != "" {
		max = traceMax
	}
	return vax780.NewTelemetry(interval, max)
}

func exportTelemetry(tel *vax780.Telemetry, traceOut, csvOut, jsonOut string) {
	write := func(path, what string, f func(io.Writer) error) {
		if path == "" {
			return
		}
		out, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		if err := f(out); err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(traceOut, "Chrome trace (chrome://tracing, Perfetto)", tel.WriteTrace)
	write(csvOut, "interval time series (CSV)", tel.WriteIntervalsCSV)
	write(jsonOut, "interval time series (JSON)", tel.WriteIntervalsJSON)
}

// openLedger resolves the -ledger destination: "-" streams to stderr
// (so the event stream interleaves with the progress line, not the
// report), anything else creates the file.
func openLedger(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stderr, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// printProgress renders one fleet snapshot as a single overwritten
// stderr line (plain carriage-return animation; the final snapshot
// ends the line).
func printProgress(p vax780.Progress) {
	fmt.Fprintf(os.Stderr, "\r\x1b[K%s", progressLine(p))
	if p.Final {
		fmt.Fprintln(os.Stderr)
	}
}

// progressLine renders one snapshot's text (sans terminal control).
func progressLine(p vax780.Progress) string {
	busy := ""
	for _, w := range p.Workers {
		if w.Busy {
			if busy != "" {
				busy += ","
			}
			busy += w.Label
		}
	}
	if busy == "" {
		busy = "-"
	}
	return fmt.Sprintf("vaxmon: %d/%d workloads  %s  %.0f instr/s  eta %.0fs  faults %d retries %d",
		p.DoneUnits, p.TotalUnits, busy, p.InstrRate, p.ETASeconds, p.Faults, p.Retries)
}

// printFlightTail prints the last n annotated flight-recorder entries
// of a machine fault — the post-mortem the recorder exists for.
func printFlightTail(w io.Writer, mf *vax780.MachineFault, n int) {
	if len(mf.Flight) == 0 {
		return
	}
	tail := mf.Flight
	if len(tail) > n {
		tail = tail[len(tail)-n:]
	}
	fmt.Fprintf(w, "  flight recorder (last %d of %d cycles):\n", len(tail), len(mf.Flight))
	for _, e := range tail {
		stall := ""
		if e.Stalled {
			stall = "  STALLED"
		}
		fmt.Fprintf(w, "    cycle %9d  uPC %05o  %-12s %s%s\n",
			e.Cycle, e.UPC, e.Class, e.Region, stall)
	}
}

func printHotBuckets(res *vax780.Results, n int) {
	fmt.Printf("Hottest %d control-store locations:\n", n)
	for _, h := range res.HotSpots(n) {
		fmt.Printf("  %05o  %-24s %-10s %12d cycles (%d stalled)\n",
			h.Addr, h.Label, h.Region, h.Cycles, h.Stalled)
	}
}
