// Command vaxmon runs one workload (or the full composite) under the UPC
// histogram monitor and prints every table of the paper with the
// published values alongside — the reproduction's main measurement tool.
//
// Usage:
//
//	vaxmon [-workload NAME] [-n INSTRUCTIONS] [-strict] [-hot N]
//	       [-save FILE] [-load FILE] [-compare]
//
// With no -workload, all five experiments run and their histograms are
// summed into the composite, as in the paper. -save dumps the composite
// histogram (the board readout); -load re-analyzes a saved dump without
// re-simulating; -compare prints the per-workload comparison matrix.
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780"
)

func main() {
	var (
		name      = flag.String("workload", "", "single workload: TIMESHARING-A, TIMESHARING-B, RTE-EDU, RTE-SCI, RTE-COM (default: all five)")
		n         = flag.Int("n", 100_000, "instructions per experiment")
		strict    = flag.Bool("strict", false, "verify every IB decode against the trace")
		hot       = flag.Int("hot", 0, "also print the N hottest histogram locations")
		save      = flag.String("save", "", "save the composite histogram dump to FILE")
		load      = flag.String("load", "", "analyze a saved histogram dump instead of simulating")
		compare   = flag.Bool("compare", false, "print the per-workload comparison")
		intervals = flag.Int("intervals", 0, "also run an interval-variation study with this snapshot interval")
	)
	flag.Parse()

	var res *vax780.Results
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		res, err = vax780.LoadHistogram(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Printf("Analyzing saved histogram %s\n\n", *load)
	} else {
		cfg := vax780.RunConfig{Instructions: *n, Strict: *strict}
		if *name != "" {
			id, err := vax780.WorkloadByName(*name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Workloads = []vax780.WorkloadID{id}
		}
		var err error
		res, err = vax780.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
	}

	fmt.Println("VAX-11/780 UPC histogram measurement")
	fmt.Println()
	for _, w := range res.PerWorkload {
		fmt.Printf("  %-14s %9d instructions  %10d cycles  CPI %.3f\n",
			w.Workload, w.Instructions, w.Cycles, w.CPI)
	}
	fmt.Println()
	fmt.Println(res.Report())

	if *compare {
		fmt.Println(res.WorkloadComparison())
	}
	if *intervals > 0 {
		id := vax780.TimesharingA
		if *name != "" {
			id, _ = vax780.WorkloadByName(*name)
		}
		s, err := vax780.RunIntervals(id, *n, *intervals)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Printf("Interval variation (%s, every %d instructions):\n", id, *intervals)
		for i, p := range s.Points {
			fmt.Printf("  %4d  CPI %6.2f  SIMPLE %5.1f%%\n", i, p.CPI, p.SimplePct)
		}
		fmt.Printf("  mean %.2f  stddev %.2f  range [%.2f, %.2f]\n",
			s.MeanCPI, s.StdDevCPI, s.MinCPI, s.MaxCPI)
	}
	if *hot > 0 {
		printHotBuckets(res, *hot)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		if err := res.SaveHistogram(f); err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vaxmon:", err)
			os.Exit(1)
		}
		fmt.Println("histogram dump saved to", *save)
	}
}

func printHotBuckets(res *vax780.Results, n int) {
	fmt.Printf("Hottest %d control-store locations:\n", n)
	for _, h := range res.HotSpots(n) {
		fmt.Printf("  %05o  %-24s %-10s %12d cycles (%d stalled)\n",
			h.Addr, h.Label, h.Region, h.Cycles, h.Stalled)
	}
}
