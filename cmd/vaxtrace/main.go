// Command vaxtrace generates a workload and dumps its executed
// instruction trace in VAX MACRO syntax, with the overhead events
// interleaved — a window into exactly what the simulated 11/780 runs.
//
// Usage:
//
//	vaxtrace [-workload NAME] [-n INSTRUCTIONS] [-head N]
//	         [-save FILE] [-load FILE] [-sim-trace FILE]
//
// -save archives the generated trace (program image + items) for
// bit-identical replay; -load dumps a previously saved trace instead of
// generating one. -sim-trace additionally executes the trace on an
// instrumented machine and writes a Chrome trace-event JSON of the
// microcode activity, loadable in chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/telemetry"
	"vax780/internal/upc"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "TIMESHARING-A", "workload name")
		n        = flag.Int("n", 5_000, "instructions to generate")
		head     = flag.Int("head", 120, "trace items to print")
		save     = flag.String("save", "", "archive the trace to FILE")
		load     = flag.String("load", "", "dump a previously saved trace instead of generating")
		simTrace = flag.String("sim-trace", "", "execute the trace and write a Chrome trace-event JSON to FILE")
		traceMax = flag.Int("trace-max", 2_000_000, "cap on retained trace events (-1 = unlimited)")
	)
	flag.Parse()

	var tr *workload.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = workload.ReadTrace(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
	} else {
		p, err := profileByName(*name, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(2)
		}
		tr, err = workload.Generate(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "trace archived to", *save)
	}

	fmt.Printf("%s: %d items, %d instructions, %d bytes of code\n\n",
		tr.Name, len(tr.Items), tr.Instructions(), tr.Program.Bytes())

	printed := 0
	for _, it := range tr.Items {
		if printed >= *head {
			break
		}
		printed++
		switch it.Kind {
		case workload.KindInterrupt:
			fmt.Printf("          ========== interrupt -> %08X ==========\n", it.HandlerPC)
		case workload.KindInstr:
			in := it.In
			marks := ""
			if in.Info().PCClass != vax.PCNone {
				if in.Taken {
					marks = fmt.Sprintf("  ; taken -> %08X", in.Target)
				} else {
					marks = "  ; not taken"
				}
			}
			if in.SIRR {
				marks += "  ; posts software interrupt"
			}
			fmt.Printf("%08X  %s%s\n", in.PC, vax.Disasm(in), marks)
		}
	}

	fmt.Printf("\n(%d more items)\n", len(tr.Items)-printed)
	printSummary(tr)

	if *simTrace != "" {
		if err := writeSimTrace(tr, *simTrace, *traceMax); err != nil {
			fmt.Fprintln(os.Stderr, "vaxtrace:", err)
			os.Exit(1)
		}
	}
}

// writeSimTrace executes the trace on an instrumented machine and
// exports the collected Chrome trace-event JSON.
func writeSimTrace(tr *workload.Trace, path string, maxEvents int) error {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), TraceMaxEvents: maxEvents})
	mon := upc.New()
	mon.Start()
	m := machine.New(machine.Config{Mem: mem.Config{}, Monitor: mon, Telemetry: tel}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		return err
	}
	tel.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tel.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "Chrome trace of %d instructions (%d cycles) written to %s\n",
		m.Stats.Instrs, m.E.Now, path)
	return nil
}

func profileByName(name string, n int) (workload.Profile, error) {
	for _, p := range workload.AllProfiles(n) {
		if p.Name == name {
			return p, nil
		}
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q", name)
}

func printSummary(tr *workload.Trace) {
	var bytes, count int
	var groups [vax.NumGroups]int
	for _, it := range tr.Items {
		if it.Kind != workload.KindInstr {
			continue
		}
		count++
		bytes += it.In.Size()
		groups[it.In.Info().Group]++
	}
	fmt.Printf("\naverage instruction size: %.2f bytes\n", float64(bytes)/float64(count))
	fmt.Println("group mix:")
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		fmt.Printf("  %-10s %6.2f%%\n", g, 100*float64(groups[g])/float64(count))
	}
}
