// Command vaxprof is the micro-architectural host-time profiler: it
// runs the paper's composite measurement and reports where the
// *simulator's own* wall-clock time goes, attributed to the
// control-store flows of the simulated machine — the exact complement
// of the UPC board, which reports where the *simulated* cycles go.
//
// Two engines back the report. The sampling engine rides inside the
// run (RunConfig.Profiler): every stride-th cycle's micro-PC is
// classified onto flows and the measured wall time distributed by
// share. The exact engine prices the run's bit-exact composite
// histogram with a per-class calibration — the host ns/cycle of each
// Table 8 cycle class, solved from interleaved per-workload timing
// probes (each workload weights compute, memory, and stalls
// differently, so the five runs give five independent equations).
//
// Usage:
//
//	vaxprof [-n 50000] [-top 15] [-stride 64]      hot-flow tables, both engines
//	vaxprof -targets                               JIT targeting list (fusible segments)
//	vaxprof -diff old.json new.json                compare two saved profiles
//	vaxprof -o prof.json -calib-out cal.json       save the exact profile / calibration
//	vaxprof -calib cal.json                        reuse a saved calibration (skip probing)
//	vaxprof -chrome trace.json -spans spans.jsonl  span-tree exports (sweep→run→workload→flow)
//	vaxprof -ledger run.jsonl                      also write the run ledger JSONL
//
// Exit codes: 0 on success, 1 on any failure, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"vax780"
	"vax780/internal/prof"
)

func main() {
	n := flag.Int("n", 50_000, "instructions per workload")
	top := flag.Int("top", 15, "flows (or targets) to print")
	stride := flag.Int("stride", 0, "sampling stride in cycles (0: default 64)")
	reps := flag.Int("reps", 3, "interleaved timing repetitions per calibration probe")
	targets := flag.Bool("targets", false, "print the JIT targeting list instead of the hot-flow tables")
	diff := flag.Bool("diff", false, "diff two saved profiles (old.json new.json args) and exit")
	out := flag.String("o", "", "write the exact-engine profile JSON here")
	calibIn := flag.String("calib", "", "load a saved calibration instead of probing")
	calibOut := flag.String("calib-out", "", "write the solved calibration JSON here")
	chrome := flag.String("chrome", "", "write the span tree as Chrome trace-event JSON here")
	spans := flag.String("spans", "", "write the span tree as JSONL rows here")
	ledger := flag.String("ledger", "", "write the run ledger JSONL here")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "vaxprof: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *top))
	}

	if err := run(*n, *top, *stride, *reps, *targets,
		*out, *calibIn, *calibOut, *chrome, *spans, *ledger); err != nil {
		fmt.Fprintln(os.Stderr, "vaxprof:", err)
		os.Exit(1)
	}
}

// runDiff loads and diffs two saved profiles; returns the exit code.
func runDiff(oldPath, newPath string, top int) int {
	load := func(path string) (*vax780.Profile, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return prof.ReadProfile(f)
	}
	oldP, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxprof:", err)
		return 1
	}
	newP, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaxprof:", err)
		return 1
	}
	deltas := prof.DiffProfiles(oldP, newP)
	fmt.Print(prof.RenderDiff(deltas, top, 0.001))
	return 0
}

// run is the measurement path: calibrate (or load), run the composite
// with the sampling profiler attached, print both engines' views, and
// write whatever exports were requested.
func run(n, top, stride, reps int, targets bool,
	out, calibIn, calibOut, chrome, spansPath, ledgerPath string) error {

	// Calibration: load a saved one (skips probing), or solve one from
	// the interleaved measurement session.
	var preCal *vax780.Calibration
	if calibIn != "" {
		f, err := os.Open(calibIn)
		if err != nil {
			return err
		}
		c, err := prof.ReadCalibration(f)
		f.Close()
		if err != nil {
			return err
		}
		preCal = c
		fmt.Printf("calibration: %s (%d probes, host %s)\n\n", calibIn, c.Probes, c.Host)
	}

	m, err := measure(n, reps, stride, top, preCal, ledgerPath)
	if err != nil {
		return err
	}
	cal, profiler, res, wallNs := m.cal, m.profiler, m.res, m.wallNs

	if calibOut != "" {
		f, err := os.Create(calibOut)
		if err != nil {
			return err
		}
		if err := cal.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if targets {
		list := res.JITTargets(cal)
		fmt.Print(prof.RenderTargets(list, top))
		return writeExports(profiler, res, cal, wallNs, out, chrome, spansPath)
	}

	exact := res.Profile(cal)
	exact.WallNs = wallNs
	fmt.Print(exact.Table(top))
	fmt.Println()
	if sampled := profiler.Profile(); sampled != nil {
		fmt.Print(sampled.Table(top))
	}
	if exact.WallNs > 0 {
		err := 100 * (exact.TotalNs - exact.WallNs) / exact.WallNs
		fmt.Printf("\nreconciliation: exact total %.3f ms vs measured %.3f ms (%+.1f%%)\n",
			exact.TotalNs/1e6, exact.WallNs/1e6, err)
	}
	return writeExports(profiler, res, cal, wallNs, out, chrome, spansPath)
}

// writeExports emits the requested files after a measurement run.
func writeExports(profiler *vax780.Profiler, res *vax780.Results,
	cal *vax780.Calibration, wallNs float64, out, chrome, spansPath string) error {

	if out != "" {
		exact := res.Profile(cal)
		exact.WallNs = wallNs
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := exact.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if chrome == "" && spansPath == "" {
		return nil
	}
	root := sweepSpan(profiler)
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := prof.WriteChromeTrace(f, root); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if spansPath != "" {
		f, err := os.Create(spansPath)
		if err != nil {
			return err
		}
		if err := prof.WriteJSONL(f, root); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// sweepSpan wraps the measured run's span tree under a sweep-level
// root, completing the sweep → run → workload → flow hierarchy (the
// calibration probes were the sweep's other runs; only the profiled
// composite carries measured spans).
func sweepSpan(profiler *vax780.Profiler) *vax780.Span {
	runSpan := profiler.SpanTree()
	root := prof.NewSpan("sweep", "vaxprof", runSpan.StartNs, runSpan.DurNs)
	root.Add(runSpan)
	return root
}
