package main

// The measurement loop: solve the per-class host cost (ns per
// simulated cycle of each Table 8 class) from timed single-workload
// runs, and time the profiled composite itself in the same breath.
// Each workload weights compute, memory traffic, and stalls
// differently, so the per-workload (class-cycle vector, wall ns) pairs
// form the overdetermined system prof.Solve prices. Two MissLatency
// variants join the pool to move stall weight independently of the
// instruction mix, which conditions the read/write-stall columns.
//
// Everything is interleaved: repetition r of every probe AND of the
// composite runs before repetition r+1 of any, so host noise (thermal
// drift, noisy neighbours, GC epochs) hits all arms alike instead of
// whichever phase ran last — the same A/B discipline the repo's
// overhead gates use. Each arm keeps its minimum wall time across
// repetitions, the standard low-noise estimator for a deterministic
// computation; the composite's reconciliation reference takes that
// minimum per workload, so one slow workload in an otherwise-fast
// repetition does not inflate it.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"vax780"
	"vax780/internal/prof"
)

// stopwatch is the fallback wall-clock reader (used only when a run
// carried no profiler to time its workloads).
type stopwatch struct{ start time.Time }

func newStopwatch() stopwatch { return stopwatch{start: time.Now()} }

func (s stopwatch) ns() float64 { return float64(time.Since(s.start)) }

// probeConfig is one calibration point: a run configuration whose
// class-cycle vector and wall time become one equation. pool names the
// workload whose composite spans time the same work this probe times —
// a plain single-workload probe on the stock configuration is exactly
// one workload of the sequential composite, so their timing
// observations share one per-workload minimum. Variant probes
// (MissLatency overrides) run different machine timing and keep their
// own minima.
type probeConfig struct {
	label string
	pool  string
	cfg   vax780.RunConfig
}

// timedRun executes one run with a throwaway sampling profiler attached
// and returns the results plus the profiler's summed workload-span
// time. Timing through the profiler keeps every measurement in this
// command — probe and profiled composite alike — on the same window
// (workload execution including sampling overhead, excluding run setup
// such as trace generation), which is what makes the exact engine's
// total reconcile with the measured time.
func timedRun(cfg vax780.RunConfig, stride int) (*vax780.Results, float64, error) {
	p := &vax780.Profiler{SampleStride: stride}
	cfg.Profiler = p
	// Collect before the window opens: a GC epoch landing inside one
	// arm's window and not another's is the dominant single-run noise.
	runtime.GC()
	sw := newStopwatch()
	res, err := vax780.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	ns := sw.ns()
	if prof := p.Profile(); prof != nil && prof.WallNs > 0 {
		ns = prof.WallNs
	}
	return res, ns, nil
}

// probePlan builds the calibration points: the five workloads alone,
// plus two miss-latency variants that shift stall weight.
func probePlan(n int) []probeConfig {
	var plan []probeConfig
	for _, id := range vax780.AllWorkloads() {
		plan = append(plan, probeConfig{
			label: id.String(),
			pool:  id.String(),
			cfg: vax780.RunConfig{
				Instructions: n,
				Workloads:    []vax780.WorkloadID{id},
				Parallelism:  1,
			},
		})
	}
	for _, miss := range []int{2, 12} {
		plan = append(plan, probeConfig{
			label: fmt.Sprintf("%s miss=%d", vax780.TimesharingA, miss),
			cfg: vax780.RunConfig{
				Instructions: n,
				Workloads:    []vax780.WorkloadID{vax780.TimesharingA},
				MissLatency:  miss,
				Parallelism:  1,
			},
		})
	}
	return plan
}

// measurement is everything one interleaved measurement session
// produces: the solved (or passed-through) calibration, the kept
// composite profiler and results, and the reconciliation reference.
type measurement struct {
	cal      *vax780.Calibration
	profiler *vax780.Profiler
	res      *vax780.Results
	wallNs   float64
}

// measure runs the interleaved session: reps repetitions of every
// calibration probe (skipped when preCal is non-nil) and of the
// profiled composite. The composite repetition with the lowest wall
// time supplies the reported profiler and results; ledgerPath, when
// set, is rewritten per repetition and ends up with the last
// repetition's stream (identical across repetitions up to host
// timestamps, the simulation being deterministic).
func measure(n, reps, stride, top int, preCal *vax780.Calibration, ledgerPath string) (*measurement, error) {
	if reps < 1 {
		reps = 1
	}
	var plan []probeConfig
	if preCal == nil {
		plan = probePlan(n)
		fmt.Fprintf(os.Stderr,
			"vaxprof: measuring (%d probes + composite) x %d reps, %d instructions per workload\n",
			len(plan), reps, n)
	}

	// One discarded warm-up run: the first simulation in a process pays
	// allocator growth and cold caches no later run sees; timing it
	// into an arm would bias that arm upward.
	warm := vax780.RunConfig{
		Instructions: n,
		Workloads:    []vax780.WorkloadID{vax780.TimesharingA},
		Parallelism:  1,
	}
	if _, _, err := timedRun(warm, stride); err != nil {
		return nil, fmt.Errorf("warm-up run: %w", err)
	}

	m := &measurement{cal: preCal}
	probes := make([]prof.Probe, len(plan))
	// minWl pools every timing observation of one workload's work on
	// the stock configuration — plain probe runs and composite spans
	// alike — into one per-workload minimum.
	minWl := map[string]float64{}
	pool := func(name string, ns float64) {
		if d, ok := minWl[name]; !ok || ns < d {
			minWl[name] = ns
		}
	}
	bestNs := 0.0
	for rep := 0; rep < reps; rep++ {
		for i := range plan {
			res, ns, err := timedRun(plan[i].cfg, stride)
			if err != nil {
				return nil, fmt.Errorf("calibration probe %q: %w", plan[i].label, err)
			}
			if p := plan[i].pool; p != "" {
				pool(p, ns)
			}
			if rep == 0 {
				probes[i] = prof.Probe{
					Label:       plan[i].label,
					ClassCycles: res.ClassCycles(),
					WallNs:      ns,
				}
			} else if ns < probes[i].WallNs {
				probes[i].WallNs = ns
			}
		}

		p := &vax780.Profiler{SampleStride: stride, MaxFlows: top}
		cfg := vax780.RunConfig{Instructions: n, Parallelism: 1, Profiler: p}
		var led io.WriteCloser
		if ledgerPath != "" {
			f, err := os.Create(ledgerPath)
			if err != nil {
				return nil, err
			}
			led = f
			cfg.Ledger = f
		}
		runtime.GC()
		sw := newStopwatch()
		res, err := vax780.Run(cfg)
		if led != nil {
			if cerr := led.Close(); err == nil && cerr != nil {
				err = cerr
			}
		}
		if err != nil {
			return nil, err
		}
		ns := sw.ns()
		if pr := p.Profile(); pr != nil && pr.WallNs > 0 {
			ns = pr.WallNs
		}
		if m.profiler == nil || ns < bestNs {
			m.profiler, m.res, bestNs = p, res, ns
		}
		if root := p.SpanTree(); root != nil {
			for _, ws := range root.Children {
				pool(ws.Name, ws.DurNs)
			}
		}
	}

	// The reconciliation reference: each workload's fastest observation
	// — probe run or composite span — summed. min-of-everything on both
	// sides is what cancels the shared host's noise.
	m.wallNs = bestNs
	if len(minWl) > 0 {
		sum := 0.0
		for _, d := range minWl {
			sum += d
		}
		m.wallNs = sum
	}

	if preCal == nil {
		// The plain workload probes adopt the pooled minima too: the
		// calibration equations and the reference then price the same
		// observations, so fit residuals — not phase-to-phase host
		// drift — are the only reconciliation error left.
		for i := range plan {
			if p := plan[i].pool; p != "" {
				if d, ok := minWl[p]; ok && d < probes[i].WallNs {
					probes[i].WallNs = d
				}
			}
		}
		cal, err := prof.Solve(probes)
		if err != nil {
			return nil, fmt.Errorf("calibration solve: %w", err)
		}
		cal.Host = runtime.GOOS + "/" + runtime.GOARCH
		for _, p := range probes {
			pred := cal.Price(p.ClassCycles)
			fmt.Fprintf(os.Stderr, "vaxprof:   probe %-24s measured %7.1f ms  fitted %7.1f ms (%+.1f%%)\n",
				p.Label, p.WallNs/1e6, pred/1e6, 100*(pred-p.WallNs)/p.WallNs)
		}
		fmt.Fprintf(os.Stderr, "vaxprof: calibration ns/cycle by class:")
		for i, ns := range cal.NsPerClass {
			fmt.Fprintf(os.Stderr, " %s=%.1f", classAbbrev(i), ns)
		}
		fmt.Fprintln(os.Stderr)
		m.cal = cal
	}
	return m, nil
}

// classAbbrev names a Table 8 column compactly for the stderr line.
func classAbbrev(col int) string {
	names := [...]string{"COMP", "READ", "RSTL", "WRIT", "WSTL", "IBST"}
	if col < len(names) {
		return names[col]
	}
	return fmt.Sprintf("C%d", col)
}
