package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vax780"
	"vax780/internal/castore"
	"vax780/internal/jobs"
)

func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	store, err := castore.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	mgr, err := jobs.New(jobs.Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return newHandler(mgr)
}

func postJob(t *testing.T, srv *httptest.Server, body string) (int, jobs.Job) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobs.Job
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatalf("decoding job: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, j
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, srv *httptest.Server, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var j jobs.Job
		if code := getJSON(t, srv.URL+"/jobs/"+id, &j); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAPISubmitPollFetch(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	spec := `{"workloads":["TIMESHARING-A"],"instructions":1500}`
	code, job := postJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit: status %d, want 202", code)
	}
	done := waitDone(t, srv, job.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Cause)
	}

	// Bundle list and file fetch.
	var bundle struct {
		Key   string   `json:"key"`
		Files []string `json:"files"`
	}
	if code := getJSON(t, srv.URL+"/results/"+done.Key, &bundle); code != http.StatusOK {
		t.Fatalf("GET /results/{key}: status %d", code)
	}
	if len(bundle.Files) != 4 {
		t.Fatalf("bundle files = %v", bundle.Files)
	}
	resp, err := http.Get(srv.URL + "/results/" + done.Key + "/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(report, []byte("CPI")) {
		t.Fatalf("report fetch: status %d, %d bytes", resp.StatusCode, len(report))
	}

	// Cache hit on resubmission: 200, not 202.
	code, again := postJob(t, srv, spec)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit: status %d cached %v, want 200 cached", code, again.Cached)
	}

	// Job list includes both submissions.
	var list []jobs.Job
	if code := getJSON(t, srv.URL+"/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("GET /jobs: status %d, %d jobs", code, len(list))
	}
}

func TestAPIErrorMapping(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	if code, _ := postJob(t, srv, `{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", code)
	}
	if code, _ := postJob(t, srv, `{"workloads":["PDP-11"]}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", code)
	}
	if code, _ := postJob(t, srv, `{"bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/results/0123456789abcdef", nil); code != http.StatusNotFound {
		t.Errorf("unknown bundle: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

func TestAPIJobEventsSSE(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	// Three long workloads (~200ms of simulation) so the subscription
	// below lands while the job is still running; the bus only carries
	// live events, and job-done is published at classification.
	code, job := postJob(t, srv, `{"workloads":["TIMESHARING-A","TIMESHARING-B","RTE-EDU"],"instructions":60000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no job-done event on the SSE stream")
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early: %v", err)
		}
		if strings.HasPrefix(line, "event: job-done") {
			return
		}
	}
}

// startVaxd launches a built vaxd binary and returns its base URL plus
// a channel that yields the exit error when the process ends.
func startVaxd(t *testing.T, bin, data string) (*exec.Cmd, string, chan error) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", data)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				addrCh <- strings.TrimSuffix(strings.Fields(rest)[0], ",")
			}
		}
	}()
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, waitCh
	case err := <-waitCh:
		t.Fatalf("vaxd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("vaxd never reported its listen address")
	}
	panic("unreachable")
}

// TestVaxdSIGTERMDrainRestart is the full crash-tolerance contract,
// end to end against the real binary: SIGTERM mid-job exits 0 after
// draining, a restart over the same data directory requeues and
// resumes the job from its checkpoint, and the final bundle is
// byte-identical to an uninterrupted in-process run. The resubmission
// then hits the cache.
func TestVaxdSIGTERMDrainRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "vaxd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vaxd: %v\n%s", err, out)
	}
	data := filepath.Join(t.TempDir(), "data")

	// Life 1: submit a three-workload job and SIGTERM once the first
	// checkpoint exists (>= 1 workload committed, run still going).
	cmd1, url1, wait1 := startVaxd(t, bin, data)
	// parallelism 1 keeps workloads strictly sequential, so the SIGTERM
	// below lands with later workloads not yet started — they requeue
	// rather than running to completion inside the drain.
	spec := `{"workloads":["TIMESHARING-A","TIMESHARING-B","RTE-EDU"],"instructions":50000,"parallelism":1}`
	resp, err := http.Post(url1+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	ckpt := filepath.Join(data, "staging", job.ID, "run.ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared; cannot interrupt mid-job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wait1:
		if err != nil {
			t.Fatalf("vaxd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("vaxd did not exit after SIGTERM")
	}

	// Life 2: restart over the same data dir; the job must requeue,
	// resume, and complete.
	_, url2, _ := startVaxd(t, bin, data)
	var done jobs.Job
	deadline = time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(url2 + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&done)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if done.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted job stuck in %s", done.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("after restart: state %s (%s)", done.State, done.Cause)
	}
	if done.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1 (the job must have been requeued)", done.Requeues)
	}

	fetch := func(name string) []byte {
		r, err := http.Get(url2 + "/results/" + done.Key + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", name, r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Contains(fetch("ledger.jsonl"), []byte("checkpoint-resumed")) {
		t.Error("bundle ledger has no checkpoint-resumed event; the restarted job re-ran from scratch")
	}

	// Byte-identical to an uninterrupted in-process run.
	res, err := vax780.Run(vax780.RunConfig{
		Instructions: 50000,
		Workloads: []vax780.WorkloadID{
			vax780.TimesharingA, vax780.TimesharingB, vax780.RTEEducational,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantHist bytes.Buffer
	if err := res.SaveHistogram(&wantHist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetch("histogram.upch"), wantHist.Bytes()) {
		t.Error("served histogram differs from uninterrupted run")
	}
	if string(fetch("report.txt")) != res.Report() {
		t.Error("served report differs from uninterrupted run")
	}

	// Resubmission is a cache hit: HTTP 200 with cached=true.
	r2, err := http.Post(url2+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var cached jobs.Job
	if err := json.NewDecoder(r2.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || !cached.Cached {
		t.Fatalf("resubmit: status %d cached %v, want 200 cached", r2.StatusCode, cached.Cached)
	}
	if fmt.Sprint(cached.Key) != fmt.Sprint(done.Key) {
		t.Fatalf("cached key %s != original %s", cached.Key, done.Key)
	}
}
