package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vax780"
	"vax780/internal/castore"
	"vax780/internal/jobs"
	"vax780/internal/obs"
)

func newTestService(t *testing.T, cfg jobs.Config) (*handler, *jobs.Manager, *obs.Metrics) {
	t.Helper()
	if cfg.Store == nil {
		store, err := castore.Open(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		cfg.Store = store
	}
	met := obs.NewMetrics()
	cfg.Metrics = met
	mgr, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return newHandler(mgr, met), mgr, met
}

func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	h, _, _ := newTestService(t, jobs.Config{})
	return h.routes()
}

func postJob(t *testing.T, srv *httptest.Server, body string) (int, jobs.Job) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobs.Job
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatalf("decoding job: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, j
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, srv *httptest.Server, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var j jobs.Job
		if code := getJSON(t, srv.URL+"/jobs/"+id, &j); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAPISubmitPollFetch(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	spec := `{"workloads":["TIMESHARING-A"],"instructions":1500}`
	code, job := postJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit: status %d, want 202", code)
	}
	done := waitDone(t, srv, job.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Cause)
	}

	// Bundle list and file fetch.
	var bundle struct {
		Key   string   `json:"key"`
		Files []string `json:"files"`
	}
	if code := getJSON(t, srv.URL+"/results/"+done.Key, &bundle); code != http.StatusOK {
		t.Fatalf("GET /results/{key}: status %d", code)
	}
	if len(bundle.Files) != 5 {
		t.Fatalf("bundle files = %v", bundle.Files)
	}
	resp, err := http.Get(srv.URL + "/results/" + done.Key + "/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(report, []byte("CPI")) {
		t.Fatalf("report fetch: status %d, %d bytes", resp.StatusCode, len(report))
	}

	// Cache hit on resubmission: 200, not 202.
	code, again := postJob(t, srv, spec)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit: status %d cached %v, want 200 cached", code, again.Cached)
	}

	// Job list includes both submissions.
	var list []jobs.Job
	if code := getJSON(t, srv.URL+"/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("GET /jobs: status %d, %d jobs", code, len(list))
	}
}

func TestAPIErrorMapping(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	if code, _ := postJob(t, srv, `{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", code)
	}
	if code, _ := postJob(t, srv, `{"workloads":["PDP-11"]}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", code)
	}
	if code, _ := postJob(t, srv, `{"bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/results/0123456789abcdef", nil); code != http.StatusNotFound {
		t.Errorf("unknown bundle: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

func TestAPIJobEventsSSE(t *testing.T) {
	srv := httptest.NewServer(newTestHandler(t))
	defer srv.Close()

	// Three long workloads (~200ms of simulation) so the subscription
	// below lands while the job is still running; the bus only carries
	// live events, and job-done is published at classification.
	code, job := postJob(t, srv, `{"workloads":["TIMESHARING-A","TIMESHARING-B","RTE-EDU"],"instructions":60000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no job-done event on the SSE stream")
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early: %v", err)
		}
		if strings.HasPrefix(line, "event: job-done") {
			return
		}
	}
}

// TestHealthzReadinessAndDrainWindow pins the liveness/readiness
// split: before the manager is installed (journal replay in progress)
// /healthz is 503 "starting" while /livez is 200; once draining
// begins, /healthz turns 503 "draining" for the whole drain window and
// stays there after the drain completes.
func TestHealthzReadinessAndDrainWindow(t *testing.T) {
	// Phase 1: booting — no manager behind the handler yet.
	h := newHandler(nil, obs.NewMetrics())
	srv := httptest.NewServer(h.routes())
	defer srv.Close()

	if code, reason := getHealth(t, srv.URL); code != http.StatusServiceUnavailable || reason != "starting" {
		t.Fatalf("booting healthz: status %d reason %q, want 503 starting", code, reason)
	}
	if code := getJSON(t, srv.URL+"/livez", nil); code != http.StatusOK {
		t.Fatalf("booting livez: status %d, want 200", code)
	}
	if code, _ := postJob(t, srv, `{"workloads":["TIMESHARING-A"],"instructions":1000}`); code != http.StatusServiceUnavailable {
		t.Fatalf("booting submit: status %d, want 503", code)
	}

	// Phase 2: ready — install a manager whose runner blocks until
	// released, so the drain window below stays open.
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	t.Cleanup(release) // unblock the worker even if an assertion fails
	runner := func(ctx context.Context, cfg vax780.RunConfig) (*vax780.Results, error) {
		<-block
		return nil, errors.New("released")
	}
	store, err := castore.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	met := obs.NewMetrics()
	mgr, err := jobs.New(jobs.Config{Store: store, Runner: runner, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	h.setManager(mgr)
	if code, _ := getHealth(t, srv.URL); code != http.StatusOK {
		t.Fatalf("ready healthz: status %d, want 200", code)
	}

	// Phase 3: draining — a job is mid-run (ignoring cancellation), so
	// Drain blocks; readiness must already be failing.
	code, job := postJob(t, srv, `{"workloads":["TIMESHARING-A"],"instructions":1000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if j, _ := mgr.Get(job.ID); j.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	drained := make(chan int, 1)
	go func() { drained <- mgr.Drain("test") }()
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, reason := getHealth(t, srv.URL)
		if code == http.StatusServiceUnavailable {
			if reason != "draining" {
				t.Fatalf("drain-window reason = %q, want draining", reason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never failed during drain window")
		}
		time.Sleep(time.Millisecond)
	}
	if code := getJSON(t, srv.URL+"/livez", nil); code != http.StatusOK {
		t.Fatal("livez must stay 200 while draining")
	}
	release()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	// Drained is terminal for this process: readiness stays down.
	if code, reason := getHealth(t, srv.URL); code != http.StatusServiceUnavailable || reason != "draining" {
		t.Fatalf("post-drain healthz: status %d reason %q, want 503 draining", code, reason)
	}
}

// getHealth fetches /healthz, decoding the body whatever the status.
func getHealth(t *testing.T, base string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		OK     bool   `json:"ok"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return resp.StatusCode, health.Reason
}

// TestMetricsEndpoint checks the Prometheus surface end to end: the
// counters move with traffic, render deterministically, and recompose
// exactly from the service journal.
func TestMetricsEndpoint(t *testing.T) {
	h, mgr, met := newTestService(t, jobs.Config{})
	srv := httptest.NewServer(h.routes())
	defer srv.Close()

	spec := `{"workloads":["TIMESHARING-A"],"instructions":1200,"tenant":"alice"}`
	code, job := postJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitDone(t, srv, job.ID)
	if code, _ := postJob(t, srv, spec); code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want cache hit", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	for _, series := range []string{
		`vaxd_jobs_submitted_total{tenant="alice"} 2`,
		`vaxd_cache_hits_total 1`,
		`vaxd_job_starts_total 1`,
		`vaxd_requests_total{tenant="alice"} 2`,
		`vaxd_queue_depth 0`,
		`vaxd_store_objects 1`,
		`vaxd_request_duration_seconds_count{tenant="alice"} 2`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	// The exported counters must recompose from the journal.
	var journal bytes.Buffer
	err = mgr.Store().ReplayJournal(func(line []byte) error {
		journal.Write(line)
		journal.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(met.Counters(), &journal); err != nil {
		t.Fatalf("counters do not recompose: %v", err)
	}
}

// TestTraceEndpoint checks /trace/{id}: a schema-valid connected span
// tree from HTTP admission down to control-store flows, plus the
// chrome://tracing rendering.
func TestTraceEndpoint(t *testing.T) {
	h, _, _ := newTestService(t, jobs.Config{})
	srv := httptest.NewServer(h.routes())
	defer srv.Close()

	code, job := postJob(t, srv, `{"workloads":["TIMESHARING-A"],"instructions":1500}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitDone(t, srv, job.ID)

	resp, err := http.Get(srv.URL + "/trace/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: status %d (%s)", resp.StatusCode, rows)
	}
	if err := obs.ValidateSpans(rows); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	kinds := traceKinds(t, rows)
	for _, k := range []string{"job", "http", "queue", "attempt", "run", "workload", "flow"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %s span: %v", k, kinds)
		}
	}

	resp, err = http.Get(srv.URL + "/trace/" + job.ID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome trace: %v (%d events)", err, len(doc.TraceEvents))
	}

	if code := getJSON(t, srv.URL+"/trace/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", code)
	}
}

// traceKinds tallies span kinds in a JSONL trace export.
func traceKinds(t *testing.T, rows []byte) map[string]int {
	t.Helper()
	_, root, err := obs.ParseRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		kinds[s.Kind]++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return kinds
}

// startVaxd launches a built vaxd binary and returns its base URL plus
// a channel that yields the exit error when the process ends.
func startVaxd(t *testing.T, bin, data string) (*exec.Cmd, string, chan error) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", data)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				addrCh <- strings.TrimSuffix(strings.Fields(rest)[0], ",")
			}
		}
	}()
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	select {
	case addr := <-addrCh:
		url := "http://" + addr
		// The socket answers before recovery finishes; wait for
		// readiness so tests can submit immediately.
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, url, waitCh
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("vaxd never became ready")
			}
			time.Sleep(5 * time.Millisecond)
		}
	case err := <-waitCh:
		t.Fatalf("vaxd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("vaxd never reported its listen address")
	}
	panic("unreachable")
}

// TestVaxdSIGTERMDrainRestart is the full crash-tolerance contract,
// end to end against the real binary: SIGTERM mid-job exits 0 after
// draining, a restart over the same data directory requeues and
// resumes the job from its checkpoint, and the final bundle is
// byte-identical to an uninterrupted in-process run. The resubmission
// then hits the cache.
func TestVaxdSIGTERMDrainRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "vaxd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vaxd: %v\n%s", err, out)
	}
	data := filepath.Join(t.TempDir(), "data")

	// Life 1: submit a three-workload job and SIGTERM once the first
	// checkpoint exists (>= 1 workload committed, run still going).
	cmd1, url1, wait1 := startVaxd(t, bin, data)
	// parallelism 1 keeps workloads strictly sequential, so the SIGTERM
	// below lands with later workloads not yet started — they requeue
	// rather than running to completion inside the drain.
	spec := `{"workloads":["TIMESHARING-A","TIMESHARING-B","RTE-EDU"],"instructions":50000,"parallelism":1}`
	resp, err := http.Post(url1+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	ckpt := filepath.Join(data, "staging", job.ID, "run.ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared; cannot interrupt mid-job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wait1:
		if err != nil {
			t.Fatalf("vaxd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("vaxd did not exit after SIGTERM")
	}

	// Life 2: restart over the same data dir; the job must requeue,
	// resume, and complete.
	_, url2, _ := startVaxd(t, bin, data)
	var done jobs.Job
	deadline = time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(url2 + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&done)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if done.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted job stuck in %s", done.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("after restart: state %s (%s)", done.State, done.Cause)
	}
	if done.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1 (the job must have been requeued)", done.Requeues)
	}

	fetch := func(name string) []byte {
		r, err := http.Get(url2 + "/results/" + done.Key + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", name, r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Contains(fetch("ledger.jsonl"), []byte("checkpoint-resumed")) {
		t.Error("bundle ledger has no checkpoint-resumed event; the restarted job re-ran from scratch")
	}

	// Byte-identical to an uninterrupted in-process run.
	res, err := vax780.Run(vax780.RunConfig{
		Instructions: 50000,
		Workloads: []vax780.WorkloadID{
			vax780.TimesharingA, vax780.TimesharingB, vax780.RTEEducational,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantHist bytes.Buffer
	if err := res.SaveHistogram(&wantHist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetch("histogram.upch"), wantHist.Bytes()) {
		t.Error("served histogram differs from uninterrupted run")
	}
	if string(fetch("report.txt")) != res.Report() {
		t.Error("served report differs from uninterrupted run")
	}

	// Resubmission is a cache hit: HTTP 200 with cached=true.
	r2, err := http.Post(url2+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var cached jobs.Job
	if err := json.NewDecoder(r2.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || !cached.Cached {
		t.Fatalf("resubmit: status %d cached %v, want 200 cached", r2.StatusCode, cached.Cached)
	}
	if fmt.Sprint(cached.Key) != fmt.Sprint(done.Key) {
		t.Fatalf("cached key %s != original %s", cached.Key, done.Key)
	}

	// The assembled trace must connect both process lives into one
	// tree: admission HTTP, two queue/attempt pairs (life 1 evicted,
	// life 2 done), and the run subtree with its resume span and
	// control-store flows spliced under the final attempt.
	tr, err := http.Get(url2 + "/trace/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: status %d (%s)", tr.StatusCode, rows)
	}
	if err := obs.ValidateSpans(rows); err != nil {
		t.Fatalf("kill-and-restart trace invalid: %v", err)
	}
	kinds := traceKinds(t, rows)
	switch {
	case kinds["job"] != 1 || kinds["run"] != 1:
		t.Errorf("trace not a single connected job: %v", kinds)
	case kinds["attempt"] < 2 || kinds["queue"] < 2:
		t.Errorf("trace missing the evicted first life: %v", kinds)
	case kinds["resume"] == 0:
		t.Errorf("trace has no resume span; checkpoint link lost: %v", kinds)
	case kinds["http"] == 0 || kinds["workload"] == 0 || kinds["flow"] == 0:
		t.Errorf("trace does not reach HTTP and flow leaves: %v", kinds)
	}

	// Restart counters are cumulative: both lives' starts and the drain
	// survive the journal replay into the second process's /metrics.
	mr, err := http.Get(url2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metText, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, series := range []string{"vaxd_job_starts_total 2", "vaxd_drains_total 1"} {
		if !bytes.Contains(metText, []byte(series)) {
			t.Errorf("/metrics after restart missing %q", series)
		}
	}
}
