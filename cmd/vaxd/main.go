// Command vaxd is the simulation service: a crash-tolerant daemon that
// accepts measurement jobs over HTTP, feeds them through the
// simulator's run engine behind admission control, and serves results
// from a content-addressed store.
//
//	vaxd -data /var/lib/vaxd -addr :8780
//
// API:
//
//	POST /jobs              submit a job spec (JSON); 202 + job record,
//	                        or 200 when the result is already cached.
//	                        Rejections: 400 bad spec, 429 queue full or
//	                        quota exceeded, 503 draining.
//	GET  /jobs              list all known jobs
//	GET  /jobs/{id}         one job record
//	GET  /jobs/{id}/events  the job's live run ledger as SSE
//	GET  /events            the service-wide journal stream as SSE
//	                        (every job's lifecycle events; vaxtop -jobs)
//	GET  /results/{key}     a committed bundle's file list
//	GET  /results/{key}/{file}  one bundle file (ledger.jsonl,
//	                        histogram.upch, report.txt, meta.json,
//	                        trace.jsonl, ...)
//	GET  /trace/{id}        the job's assembled causal trace: HTTP
//	                        admission → queue → attempt(s) → run →
//	                        workloads → control-store flows, one
//	                        connected tree even across a kill/restart.
//	                        ?format=chrome emits chrome://tracing JSON.
//	GET  /metrics           Prometheus text: per-tenant RED counters,
//	                        latency histograms, queue/store gauges.
//	                        Counters recompose from the journal
//	                        (obs.Validate; `vaxdiag -obs` checks).
//	GET  /healthz           readiness: 503 until the journal replay
//	                        completes, 503 again once draining starts.
//	GET  /livez             liveness: 200 whenever the process serves.
//
// On SIGTERM/SIGINT vaxd drains: admission stops, in-flight jobs are
// canceled at their next workload boundary (their checkpoints stay in
// the store's staging area), every unfinished job is journaled as
// evicted, and the process exits 0. The next vaxd over the same -data
// directory replays the journal, requeues the evicted jobs, and their
// runs resume from checkpoint — completing bit-identically to runs
// that were never interrupted.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"vax780/internal/castore"
	"vax780/internal/jobs"
	"vax780/internal/obs"
	"vax780/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8780", "HTTP listen address")
		data    = flag.String("data", "vaxd-data", "data directory (store, staging, journal)")
		depth   = flag.Int("queue", 16, "admission queue depth (submissions beyond it get 429)")
		workers = flag.Int("workers", 1, "concurrent job runners")
		rate    = flag.Float64("quota-rate", 0, "per-tenant admission tokens per second (0 = no quotas)")
		burst   = flag.Float64("quota-burst", 0, "per-tenant token bucket capacity")
	)
	flag.Parse()
	if err := run(*addr, *data, *depth, *workers, *rate, *burst); err != nil {
		fmt.Fprintln(os.Stderr, "vaxd:", err)
		os.Exit(1)
	}
}

func run(addr, data string, depth, workers int, rate, burst float64) error {
	// Listener first: the socket answers immediately, with /healthz
	// reporting 503 "starting" until journal replay finishes, so
	// orchestrators can distinguish "booting" from "dead".
	met := obs.NewMetrics()
	h := newHandler(nil, met)
	srv := &http.Server{Addr: addr, Handler: h.routes()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("vaxd: listening on %s, data in %s", ln.Addr(), data)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	store, err := castore.Open(data)
	if err != nil {
		srv.Close()
		<-done
		return err
	}
	defer store.Close()

	mgr, err := jobs.New(jobs.Config{
		Store:      store,
		QueueDepth: depth,
		Workers:    workers,
		Quota:      jobs.Quota{Rate: rate, Burst: burst},
		Metrics:    met,
	})
	if err != nil {
		srv.Close()
		<-done
		return err
	}
	h.setManager(mgr)
	log.Printf("vaxd: ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		mgr.Close()
		return err
	case s := <-sig:
		log.Printf("vaxd: %v: draining", s)
		requeued := mgr.Drain(s.String())
		log.Printf("vaxd: drained, %d jobs requeued for next process", requeued)
		srv.Close()
		<-done
		return nil
	}
}

// handler is the service's HTTP surface. The manager pointer is set
// once startup recovery completes; until then every job route answers
// 503 and /healthz reports not-ready.
type handler struct {
	mgr     atomic.Pointer[jobs.Manager]
	metrics *obs.Metrics
}

// newHandler builds the surface; pass a nil manager to start in the
// "booting" state and install the manager later with setManager.
func newHandler(mgr *jobs.Manager, met *obs.Metrics) *handler {
	h := &handler{metrics: met}
	if mgr != nil {
		h.setManager(mgr)
	}
	return h
}

func (h *handler) setManager(mgr *jobs.Manager) { h.mgr.Store(mgr) }

func (h *handler) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", h.list)
	mux.HandleFunc("GET /jobs/{id}", h.get)
	mux.HandleFunc("GET /jobs/{id}/events", h.events)
	mux.HandleFunc("GET /events", h.fleetEvents)
	mux.HandleFunc("GET /results/{key}", h.bundle)
	mux.HandleFunc("GET /results/{key}/{file}", h.file)
	mux.HandleFunc("GET /trace/{id}", h.trace)
	mux.HandleFunc("GET /metrics", h.prometheus)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /livez", h.livez)
	return mux
}

// manager returns the job manager, or answers 503 and returns nil while
// the service is still replaying its journal.
func (h *handler) manager(w http.ResponseWriter) *jobs.Manager {
	m := h.mgr.Load()
	if m == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "starting: journal replay in progress"})
	}
	return m
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps a jobs-layer error onto the wire via the tested
// HTTPStatus table, as a small JSON problem document.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, jobs.HTTPStatus(err), map[string]string{"error": err.Error()})
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	start := time.Now()
	var spec jobs.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		err = fmt.Errorf("%w: %v", jobs.ErrBadSpec, err)
		writeErr(w, err)
		m.NoteHTTP("", "POST /jobs", spec.Tenant, jobs.HTTPStatus(err), time.Since(start).Nanoseconds())
		return
	}
	job, err := m.Submit(spec)
	if err != nil {
		writeErr(w, err)
		m.NoteHTTP("", "POST /jobs", spec.Tenant, jobs.HTTPStatus(err), time.Since(start).Nanoseconds())
		return
	}
	code := http.StatusAccepted
	if job.Cached {
		code = http.StatusOK // answered from the content-addressed cache
	}
	writeJSON(w, code, job)
	// Submissions are journaled (polls are not): the journal fsyncs per
	// record, and admission traffic is what the RED counters measure.
	m.NoteHTTP(job.ID, "POST /jobs", spec.Tenant, code, time.Since(start).Nanoseconds())
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, m.List())
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	m.ServeEvents(w, r, r.PathValue("id"))
}

// fleetEvents streams the service-wide journal bus: every lifecycle
// record for every job, as it is journaled. vaxtop -jobs renders it.
func (h *handler) fleetEvents(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	telemetry.ServeBus(w, r, m.EventsBus())
}

func (h *handler) bundle(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	key := r.PathValue("key")
	names, err := m.Store().Bundle(key)
	if err != nil {
		if errors.Is(err, castore.ErrNoBundle) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "files": names})
}

func (h *handler) file(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	key, name := r.PathValue("key"), r.PathValue("file")
	f, err := m.Store().Open(key, name)
	if err != nil {
		if errors.Is(err, castore.ErrNoBundle) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".jsonl"):
		w.Header().Set("Content-Type", "application/json")
	case strings.HasSuffix(name, ".txt"):
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	io.Copy(w, f)
}

// trace assembles one job's end-to-end causal trace from the service
// journal plus the committed bundle's run trace, as span rows (JSONL)
// or, with ?format=chrome, as a chrome://tracing JSON document.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	m := h.manager(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	job, err := m.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	var journal bytes.Buffer
	err = m.Store().ReplayJournal(func(line []byte) error {
		journal.Write(line)
		journal.WriteByte('\n')
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var bundleTrace []byte
	if m.Store().Has(job.Key) {
		// Sweep bundles carry no trace; assembly degrades gracefully.
		bundleTrace, _ = m.Store().ReadFile(job.Key, "trace.jsonl")
	}
	trace, root, err := obs.AssembleJob(&journal, id, bundleTrace)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		obs.WriteChromeTrace(w, trace, root)
		return
	}
	obs.WriteRows(w, trace, root)
}

func (h *handler) prometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.metrics.WritePrometheus(w)
}

// healthz is readiness: not ready while the journal is still replaying
// (a restarted vaxd may requeue jobs during this window) and not ready
// again once draining starts, so load balancers stop routing
// submissions that would only be shed.
func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if m := h.mgr.Load(); m == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ok": false, "reason": "starting"})
	} else if m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ok": false, "reason": "draining"})
	} else {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	}
}

// livez is liveness: the process is serving, whatever its readiness.
func (h *handler) livez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
