// Command vaxd is the simulation service: a crash-tolerant daemon that
// accepts measurement jobs over HTTP, feeds them through the
// simulator's run engine behind admission control, and serves results
// from a content-addressed store.
//
//	vaxd -data /var/lib/vaxd -addr :8780
//
// API:
//
//	POST /jobs              submit a job spec (JSON); 202 + job record,
//	                        or 200 when the result is already cached.
//	                        Rejections: 400 bad spec, 429 queue full or
//	                        quota exceeded, 503 draining.
//	GET  /jobs              list all known jobs
//	GET  /jobs/{id}         one job record
//	GET  /jobs/{id}/events  the job's live run ledger as SSE
//	GET  /results/{key}     a committed bundle's file list
//	GET  /results/{key}/{file}  one bundle file (ledger.jsonl,
//	                        histogram.upch, report.txt, meta.json, ...)
//	GET  /healthz           liveness + drain state
//
// On SIGTERM/SIGINT vaxd drains: admission stops, in-flight jobs are
// canceled at their next workload boundary (their checkpoints stay in
// the store's staging area), every unfinished job is journaled as
// evicted, and the process exits 0. The next vaxd over the same -data
// directory replays the journal, requeues the evicted jobs, and their
// runs resume from checkpoint — completing bit-identically to runs
// that were never interrupted.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vax780/internal/castore"
	"vax780/internal/jobs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8780", "HTTP listen address")
		data    = flag.String("data", "vaxd-data", "data directory (store, staging, journal)")
		depth   = flag.Int("queue", 16, "admission queue depth (submissions beyond it get 429)")
		workers = flag.Int("workers", 1, "concurrent job runners")
		rate    = flag.Float64("quota-rate", 0, "per-tenant admission tokens per second (0 = no quotas)")
		burst   = flag.Float64("quota-burst", 0, "per-tenant token bucket capacity")
	)
	flag.Parse()
	if err := run(*addr, *data, *depth, *workers, *rate, *burst); err != nil {
		fmt.Fprintln(os.Stderr, "vaxd:", err)
		os.Exit(1)
	}
}

func run(addr, data string, depth, workers int, rate, burst float64) error {
	store, err := castore.Open(data)
	if err != nil {
		return err
	}
	defer store.Close()

	mgr, err := jobs.New(jobs.Config{
		Store:      store,
		QueueDepth: depth,
		Workers:    workers,
		Quota:      jobs.Quota{Rate: rate, Burst: burst},
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: newHandler(mgr)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("vaxd: listening on %s, data in %s", ln.Addr(), data)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		mgr.Close()
		return err
	case s := <-sig:
		log.Printf("vaxd: %v: draining", s)
		requeued := mgr.Drain(s.String())
		log.Printf("vaxd: drained, %d jobs requeued for next process", requeued)
		srv.Close()
		<-done
		return nil
	}
}

// handler is the service's HTTP surface over one job manager.
type handler struct {
	mgr *jobs.Manager
}

func newHandler(mgr *jobs.Manager) http.Handler {
	h := &handler{mgr: mgr}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", h.list)
	mux.HandleFunc("GET /jobs/{id}", h.get)
	mux.HandleFunc("GET /jobs/{id}/events", h.events)
	mux.HandleFunc("GET /results/{key}", h.bundle)
	mux.HandleFunc("GET /results/{key}/{file}", h.file)
	mux.HandleFunc("GET /healthz", h.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps a jobs-layer error onto the wire via the tested
// HTTPStatus table, as a small JSON problem document.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, jobs.HTTPStatus(err), map[string]string{"error": err.Error()})
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", jobs.ErrBadSpec, err))
		return
	}
	job, err := h.mgr.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	code := http.StatusAccepted
	if job.Cached {
		code = http.StatusOK // answered from the content-addressed cache
	}
	writeJSON(w, code, job)
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.mgr.List())
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	job, err := h.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	h.mgr.ServeEvents(w, r, r.PathValue("id"))
}

func (h *handler) bundle(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	names, err := h.mgr.Store().Bundle(key)
	if err != nil {
		if errors.Is(err, castore.ErrNoBundle) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "files": names})
}

func (h *handler) file(w http.ResponseWriter, r *http.Request) {
	key, name := r.PathValue("key"), r.PathValue("file")
	f, err := h.mgr.Store().Open(key, name)
	if err != nil {
		if errors.Is(err, castore.ErrNoBundle) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".jsonl"):
		w.Header().Set("Content-Type", "application/json")
	case strings.HasSuffix(name, ".txt"):
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	io.Copy(w, f)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
