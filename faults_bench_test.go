package vax780

// Fault-hook overhead benchmarks. The fault injectors ride the same
// nil-checked hook pattern as the telemetry probes, so a run with no
// plan attached must cost within 1% of the telemetry-era baseline
// (BENCH_telemetry.json's "off" variant) — that gate is recorded in
// BENCH_faults.json. The other variants price an attached-but-inert
// plan (all rates zero: every hook called, nothing fires) and an
// actively injecting one.

import "testing"

func benchFaultRun(b *testing.B, fc *FaultConfig) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
			Faults:       fc,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkFaults(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		// No plan: the disabled path the <1% gate prices — every hook is
		// one nil pointer check.
		benchFaultRun(b, nil)
	})
	b.Run("zero-plan", func(b *testing.B) {
		// Plan attached, all rates zero: hooks call into the plan, each
		// class declines without drawing.
		benchFaultRun(b, &FaultConfig{Seed: 1})
	})
	b.Run("injecting", func(b *testing.B) {
		// Measurement faults only, so the run completes deterministically.
		benchFaultRun(b, &FaultConfig{
			Seed: 1, UPCDrop: 1e-4, UPCFlip: 1e-4, UPCSaturate: 1e-5,
		})
	})
}
