package vax780

// Telemetry-overhead benchmarks. The paper's board was passive in
// hardware; the reproduction's probes must be near-passive in software.
// BenchmarkTelemetry/off runs the exact RunConfig the seed ran — its
// only added cost is the nil probe check on the hot paths — and is the
// <5%-regression gate recorded in BENCH_telemetry.json. The other
// variants price each telemetry component.

import "testing"

func benchRun(b *testing.B, tel func() *Telemetry) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
		}
		if tel != nil {
			cfg.Telemetry = tel()
		}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkTelemetry(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchRun(b, nil)
	})
	b.Run("counters", func(b *testing.B) {
		benchRun(b, func() *Telemetry { return NewTelemetry(0, 0) })
	})
	b.Run("intervals", func(b *testing.B) {
		benchRun(b, func() *Telemetry { return NewTelemetry(10_000, 0) })
	})
	b.Run("full", func(b *testing.B) {
		benchRun(b, func() *Telemetry { return NewTelemetry(10_000, 1_000_000) })
	})
}
