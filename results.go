package vax780

import (
	"vax780/internal/analysis"
	"vax780/internal/machine"
	"vax780/internal/paper"
	"vax780/internal/report"
	"vax780/internal/upc"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// machineROM returns the shared microprogram.
func machineROM() *urom.ROM { return machine.ROM() }

// WorkloadResult summarizes one experiment's run.
type WorkloadResult struct {
	Workload     WorkloadID
	Instructions uint64
	Cycles       uint64
	CPI          float64
}

// Results holds a composite measurement: the summed histogram, the
// hardware counters, and accessors for every table of the paper.
type Results struct {
	cfg         RunConfig
	analysis    *analysis.Analysis
	hist        *upc.Histogram
	perHist     []*upc.Histogram
	describe    string
	PerWorkload []WorkloadResult

	// Retries counts workload attempts the supervisor repeated after
	// transient machine checks (0 on a healthy run).
	Retries int

	// Resumed counts workloads folded in from a checkpoint rather than
	// re-executed (0 when the run started from scratch).
	Resumed int

	// FaultInjections summarizes what the attached fault plan injected,
	// per class (empty when no plan was attached or nothing fired).
	FaultInjections string
}

// Instructions returns the composite instruction count (the execution
// count of the IRD microinstruction).
func (r *Results) Instructions() uint64 { return r.analysis.Instructions() }

// CPI returns cycles per average instruction (the paper's headline 10.6).
func (r *Results) CPI() float64 { return r.analysis.CPIMatrix().Total }

// Report renders every table with the paper's values alongside.
func (r *Results) Report() string { return report.New(r.analysis).All() }

// BlockDiagram renders the Figure 1 system structure.
func (r *Results) BlockDiagram() string { return r.describe }

// GroupPercent is a public Table 1 row.
type GroupPercent struct {
	Group   string
	Percent float64
	Paper   float64
}

// OpcodeGroups returns the measured Table 1 with the published values.
func (r *Results) OpcodeGroups() []GroupPercent {
	var out []GroupPercent
	for _, g := range r.analysis.OpcodeGroups() {
		out = append(out, GroupPercent{
			Group:   g.Group.String(),
			Percent: g.Percent,
			Paper:   paper.Table1[g.Group].V,
		})
	}
	return out
}

// CPIBreakdown is a public Table 8 row summary.
type CPIBreakdown struct {
	Activity string
	Cycles   float64 // per average instruction
	Paper    float64
}

// CPIRows returns the Table 8 row totals.
func (r *Results) CPIRows() []CPIBreakdown {
	m := r.analysis.CPIMatrix()
	var out []CPIBreakdown
	for row := paper.Table8Row(0); row < paper.NumT8Rows; row++ {
		out = append(out, CPIBreakdown{
			Activity: row.String(),
			Cycles:   m.RowTotals[row],
			Paper:    paper.Table8RowTotals[row].V,
		})
	}
	return out
}

// CycleClasses returns the Table 8 column totals (the six cycle classes).
func (r *Results) CycleClasses() []CPIBreakdown {
	m := r.analysis.CPIMatrix()
	var out []CPIBreakdown
	for c := paper.Table8Col(0); c < paper.NumT8Cols; c++ {
		out = append(out, CPIBreakdown{
			Activity: c.String(),
			Cycles:   m.ColTotals[c],
			Paper:    paper.Table8ColTotals[c].V,
		})
	}
	return out
}

// TBStats is the public §4.2 translation buffer summary.
type TBStats struct {
	MissesPerInstr float64
	CyclesPerMiss  float64
	StallPerMiss   float64
	PaperMisses    float64
	PaperCycles    float64
}

// TBMiss returns the translation buffer statistics.
func (r *Results) TBMiss() TBStats {
	tb := r.analysis.TBMissStats()
	return TBStats{
		MissesPerInstr: tb.MissesPerInstr,
		CyclesPerMiss:  tb.CyclesPerMiss,
		StallPerMiss:   tb.StallPerMiss,
		PaperMisses:    paper.Sec4TBMissPerInstr.V,
		PaperCycles:    paper.Sec4TBMissCycles.V,
	}
}

// CacheStats is the public §4.1-4.2 cache-study summary.
type CacheStats struct {
	MissPerInstr   float64
	MissD, MissI   float64
	IBRefsPerInstr float64
	IBBytesPerRef  float64
}

// CacheStudy returns the hardware-counter statistics.
func (r *Results) CacheStudy() CacheStats {
	cs, _ := r.analysis.CacheStudyStats()
	return CacheStats{
		MissPerInstr:   cs.CacheMissPerInstr,
		MissD:          cs.CacheMissD,
		MissI:          cs.CacheMissI,
		IBRefsPerInstr: cs.IBRefsPerInstr,
		IBBytesPerRef:  cs.IBBytesPerRef,
	}
}

// PCChangingPercent returns the Table 2 totals: percent of instructions
// that may change the PC, and the percent of those that do.
func (r *Results) PCChangingPercent() (pctOfInstrs, pctTaken float64) {
	_, total := r.analysis.PCChanging()
	return total.PctOfInstrs, total.PctTaken
}

// AverageInstructionBytes returns the Table 6 estimate.
func (r *Results) AverageInstructionBytes() float64 {
	return r.analysis.InstructionSize().TotalBytes
}

// Headways returns the Table 7 event headways.
func (r *Results) Headways() (softIntReq, interrupts, ctxSwitches float64) {
	h := r.analysis.EventHeadways()
	return h.SoftIntRequests, h.Interrupts, h.ContextSwitches
}

// PerGroupCycles returns the Table 9 execute-phase totals by group name.
func (r *Results) PerGroupCycles() map[string]float64 {
	out := make(map[string]float64)
	for g, cells := range r.analysis.PerGroupCycles() {
		out[g.String()] = cells[paper.NumT8Cols]
	}
	return out
}

// WorkloadComparison renders the five experiments side by side: the
// per-workload view behind the paper's composite (each experiment was
// measured separately and the histograms summed, §2.2).
func (r *Results) WorkloadComparison() string {
	if len(r.perHist) == 0 {
		return ""
	}
	names := make([]string, len(r.perHist))
	analyses := make([]*analysis.Analysis, len(r.perHist))
	for i, h := range r.perHist {
		names[i] = r.PerWorkload[i].Workload.String()
		analyses[i] = analysis.New(machineROM(), h)
	}
	return report.WorkloadComparison(names, analyses)
}

// Analysis exposes the underlying reduction for advanced use (the cmd
// tools and benchmarks use it for the full per-cell tables).
func (r *Results) Analysis() *analysis.Analysis { return r.analysis }

// Histogram exposes the raw composite histogram.
func (r *Results) Histogram() *upc.Histogram { return r.hist }

// GroupNames lists the Table 1 group names in paper order.
func GroupNames() []string {
	out := make([]string, vax.NumGroups)
	for g := vax.Group(0); g < vax.NumGroups; g++ {
		out[g] = g.String()
	}
	return out
}
