package vax780

// Superword-engine benchmarks: the same no-hook hot-loop configuration
// as BenchmarkFaults/off, fused (the default) and interpreted
// (NoFusion), so the pair prices exactly what fusion buys. The two
// variants are simulation-identical — same cycles, same histogram —
// which the determinism suite proves; only host ns/op may differ.
// BENCH_fusion.json records the adjudicated numbers and the
// interleaved A/B method.

import "testing"

func benchFusionRun(b *testing.B, noFusion bool) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
			NoFusion:     noFusion,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkFusion(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		// The default path: ulint-proven straight-line runs execute as
		// superwords; everything else single-steps.
		benchFusionRun(b, false)
	})
	b.Run("off", func(b *testing.B) {
		// The escape hatch: every microword single-stepped, the
		// pre-fusion hot loop.
		benchFusionRun(b, true)
	})
}

func benchFusionHooksRun(b *testing.B, noFusion bool) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
			NoFusion:     noFusion,
			Telemetry:    NewTelemetry(1500, 200000),
			FlightDepth:  64,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkFusionHooks(b *testing.B) {
	// The telemetry-on cell: probe, interval recorder, and flight
	// recorder all attached. Before the effect-summary engine this cell
	// interpreted 100% of cycles; now the fused path replays per-cycle
	// effects into the hooks in tick() order, so "on" and "off" stay
	// byte-identical (the bit-exactness suite proves it) and only host
	// ns/op differs.
	b.Run("on", func(b *testing.B) { benchFusionHooksRun(b, false) })
	b.Run("off", func(b *testing.B) { benchFusionHooksRun(b, true) })
}
