package vax780

import (
	"io"

	"vax780/internal/analysis"
	"vax780/internal/machine"
	"vax780/internal/upc"
)

// SaveHistogram writes the composite histogram dump — the artifact the
// measurement procedure of §2.2 produced by reading the board over the
// Unibus after each experiment. Dumps from separate runs can be reloaded
// and summed offline, exactly as the paper built its composite.
func (r *Results) SaveHistogram(w io.Writer) error {
	_, err := r.hist.WriteTo(w)
	return err
}

// SaveHistogramFile writes the composite histogram dump to path
// atomically (temp file in the same directory, fsync, rename), so a
// crash mid-write never leaves a truncated dump where a good one —
// or nothing — should be.
func (r *Results) SaveHistogramFile(path string) error {
	return upc.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := r.hist.WriteTo(w)
		return err
	})
}

// LoadHistogram reads a histogram dump and returns Results backed by it.
// Hardware-counter analyses (the §4 cache study) are unavailable: a dump
// holds only what the board counted, which is the point of the paper's
// method boundary.
func LoadHistogram(rd io.Reader) (*Results, error) {
	h, err := upc.ReadHistogram(rd)
	if err != nil {
		return nil, err
	}
	return &Results{
		analysis: analysis.New(machine.ROM(), h),
		hist:     h,
		describe: BlockDiagram(),
	}, nil
}

// MergeHistograms loads several dumps and sums them into one composite
// Results (the five-experiment workflow, offline).
func MergeHistograms(readers ...io.Reader) (*Results, error) {
	sum := &upc.Histogram{}
	for _, rd := range readers {
		h, err := upc.ReadHistogram(rd)
		if err != nil {
			return nil, err
		}
		sum.Add(h)
	}
	return &Results{
		analysis: analysis.New(machine.ROM(), sum),
		hist:     sum,
		describe: BlockDiagram(),
	}, nil
}
