package vax780

// The shared trace cache must hand repeated runs of one workload shape
// the identical immutable trace (that is the perf win), keep distinct
// shapes distinct (that is correctness), and evict LRU-first under its
// bound (that is vaxd not hoarding memory).

import (
	"testing"

	"vax780/internal/workload"
)

// cachedTrace resolves id's trace through tc exactly as a run would.
func cachedTrace(t *testing.T, tc *traceCache, id WorkloadID, instr int) *workload.Trace {
	t.Helper()
	cfg := RunConfig{Instructions: instr}
	cfg.fill()
	p, err := id.profile(cfg.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tc.get(id, p, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceCacheReusesSameShape(t *testing.T) {
	tc := newTraceCache()
	a := cachedTrace(t, tc, TimesharingA, 300)
	b := cachedTrace(t, tc, TimesharingA, 300)
	if a != b {
		t.Error("same shape regenerated instead of reusing the cached trace")
	}
	if c := cachedTrace(t, tc, TimesharingA, 400); c == a {
		t.Error("different instruction count shared a trace")
	}
	if d := cachedTrace(t, tc, RTEScientific, 300); d == a {
		t.Error("different workload shared a trace")
	}
}

func TestTraceCacheEvictsLRU(t *testing.T) {
	tc := &traceCache{m: make(map[traceKey]*workload.Trace), cap: 2}
	a := cachedTrace(t, tc, TimesharingA, 300)
	cachedTrace(t, tc, TimesharingB, 300)
	// Touch A so B is now the least recently used, then overflow.
	cachedTrace(t, tc, TimesharingA, 300)
	cachedTrace(t, tc, RTEScientific, 300)
	if len(tc.m) != 2 {
		t.Fatalf("cache holds %d entries, cap is 2", len(tc.m))
	}
	if a2 := cachedTrace(t, tc, TimesharingA, 300); a2 != a {
		t.Error("recently used entry was evicted")
	}
}

// TestRunUsesSharedTraceCache: two plain runs of one shape resolve the
// identical trace object through the process-wide cache.
func TestRunUsesSharedTraceCache(t *testing.T) {
	cfg := RunConfig{Instructions: 300}
	cfg.fill()
	p, err := TimesharingA.profile(cfg.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cfg.trace(TimesharingA, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.trace(TimesharingA, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Run's trace resolution bypassed the shared cache")
	}
}
