package vax780

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vax780/internal/faults"
	"vax780/internal/machine"
	"vax780/internal/runlog"
	"vax780/internal/telemetry"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// FaultConfig configures the deterministic fault-injection plan of a
// run: per-event probabilities for each fault class, all driven from
// independent streams of a single seed, so the same (seed, rates)
// against the same workloads injects the identical fault sequence. The
// zero rate for a class is bit-exactly equivalent to not modeling that
// class at all.
type FaultConfig struct {
	// Seed selects the fault sequence.
	Seed uint64

	// UPCDrop is the probability a histogram count pulse is lost.
	UPCDrop float64
	// UPCFlip is the probability a count pulse flips a random counter
	// bit (board RAM corruption).
	UPCFlip float64
	// UPCSaturate is the probability a count pulse sticks the ticked
	// counter at its capacity.
	UPCSaturate float64
	// CSRGlitch is the probability a Unibus readout of the board
	// returns garbage.
	CSRGlitch float64
	// MemParity is the probability a D-stream or PTE read takes a
	// memory parity error (a transient machine check).
	MemParity float64
	// IBDrop is the probability an arrived IB refill longword is lost
	// in transit (timing-only: the IB refetches).
	IBDrop float64
	// MachineCheck is the per-instruction probability of a spontaneous
	// machine-check abort (transient).
	MachineCheck float64

	// MaxRetries bounds how many times the supervisor re-runs a
	// workload after a transient machine check before giving up
	// (default 3). Non-transient faults are never retried.
	MaxRetries int

	// RetryBackoff is the delay before the first retry, doubled per
	// subsequent attempt and capped at 16x (default 50ms). Tests set it
	// to a microsecond.
	RetryBackoff time.Duration
}

// UniformFaults returns a FaultConfig with every class at rate.
func UniformFaults(seed uint64, rate float64) *FaultConfig {
	return &FaultConfig{
		Seed:    seed,
		UPCDrop: rate, UPCFlip: rate, UPCSaturate: rate,
		CSRGlitch: rate, MemParity: rate, IBDrop: rate,
		MachineCheck: rate,
	}
}

func (c *FaultConfig) rates() faults.Rates {
	return faults.Rates{
		UPCDrop: c.UPCDrop, UPCFlip: c.UPCFlip, UPCSaturate: c.UPCSaturate,
		CSRGlitch: c.CSRGlitch, MemParity: c.MemParity, IBDrop: c.IBDrop,
		MachineCheck: c.MachineCheck,
	}
}

func (c *FaultConfig) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 3
}

func (c *FaultConfig) backoffBase() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 50 * time.Millisecond
}

// ErrMachineFault is the sentinel every *MachineFault matches with
// errors.Is: any workload abort the supervisor surfaced as a typed
// error rather than a crash.
var ErrMachineFault = errors.New("vax780: machine fault")

// MachineFault is the typed error Run returns when a workload aborts on
// a machine check — injected, organic, or a panic recovered at the
// supervisor boundary. It carries the micro-PC, cycle, and fault site
// of the abort.
type MachineFault struct {
	Workload WorkloadID
	Attempts int    // run attempts made, including the failing one
	UPC      uint16 // micro-PC at the abort
	Cycle    uint64 // EBOX cycle at the abort
	Site     string // fault site, e.g. "ebox.doMem read"
	Cause    string // human-readable fault class
	Retrying bool   // true when the fault was transient (retries exhausted)
	Err      error  // underlying machine check or recovered panic

	// Flight is the micro-PC flight recorder's snapshot of the failing
	// attempt, oldest first; its final entry is the faulting micro-PC
	// (Flight[len-1].UPC == UPC). Nil when the recorder was disabled.
	Flight []FlightEntry
}

func (f *MachineFault) Error() string {
	return fmt.Sprintf("vax780: %s: machine fault after %d attempt(s): %v",
		f.Workload, f.Attempts, f.Err)
}

// Unwrap exposes the underlying machine check.
func (f *MachineFault) Unwrap() error { return f.Err }

// Is matches the ErrMachineFault sentinel.
func (f *MachineFault) Is(target error) bool { return target == ErrMachineFault }

// wlEnv is the per-workload execution environment a supervisor runs
// under: its position in the composite, the shared telemetry layer,
// its independent fault plan, its buffered ledger child, and the pool
// worker slot it reports progress through. The observability fields
// are nil on unobserved runs; every consumer is nil-safe.
type wlEnv struct {
	idx  int
	id   WorkloadID
	tel  *telemetry.Telemetry
	plan *faults.Plan
	led  *runlog.Child
	slot *workerSlot
}

// sleepContext waits out d, or returns the context's error the moment
// it is canceled — the cancellable replacement for the supervisor's old
// bare time.Sleep, which could pin a draining daemon to the full 16x
// backoff ladder.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// runWorkload is the supervised execution of one workload: run it
// against the pre-generated trace, and on a transient machine check
// retry with capped exponential backoff; on a non-transient fault (or
// exhausted retries) surface a *MachineFault carrying the flight
// recorder's snapshot of the failing attempt. It returns the retry
// count instead of mutating shared state, so any number of workload
// supervisors can run concurrently.
func runWorkload(env wlEnv, tr *workload.Trace, cfg RunConfig) (*oneRun, int, error) {
	env.led.Emit(runlog.WlStartEvent(env.id.String(), env.idx, cfg.Instructions))

	maxRetries := 0
	var backoff time.Duration
	if cfg.Faults != nil {
		maxRetries = cfg.Faults.maxRetries()
		backoff = cfg.Faults.backoffBase()
	}
	maxBackoff := backoff * 16

	var fr *upc.FlightRecorder
	if d := cfg.flightDepth(); d > 0 {
		fr = upc.NewFlightRecorder(d)
	}
	var cell *machine.ProgressCell
	if env.slot != nil {
		cell = &machine.ProgressCell{}
	}
	var samp *upc.Sampler
	if cfg.Profiler != nil {
		samp = cfg.Profiler.newSampler()
	}

	retries := 0
	for attempt := 1; ; attempt++ {
		fr.Reset()   // each attempt gets a clean ring
		samp.Reset() // and clean samples: a retried attempt never mixes in
		startNs := cfg.Profiler.nowNs()
		env.slot.begin(env.id.String(), uint64(cfg.Instructions), cell)
		one, err := runOne(tr, cfg, env.tel, env.plan, fr, cell, samp)
		env.slot.end()
		if err == nil {
			one.samp = samp
			one.profStart = startNs
			one.profEnd = cfg.Profiler.nowNs()
			if env.plan != nil {
				inj := env.plan.Injected()
				env.led.Emit(runlog.FaultsEvent(env.id.String(), env.idx,
					inj.Total(), inj.String()))
			}
			env.led.Emit(runlog.WlDoneEvent(env.id.String(), env.idx,
				one.machine.Stats.Instrs, one.machine.E.Now, one.machine.CPI(),
				retries, one.saturated))
			return one, retries, nil
		}
		var mck *faults.MachineCheck
		if !errors.As(err, &mck) {
			// Not a machine fault (workload generation, config): report
			// as-is.
			return nil, retries, fmt.Errorf("%s: %w", env.id, err)
		}
		env.slot.noteFault()
		if mck.Transient() && attempt <= maxRetries {
			// The plan's decision streams keep advancing across
			// attempts, so the same environmental fault need not recur;
			// the trace is read-only and reused as-is.
			retries++
			env.slot.noteRetry()
			env.led.Emit(runlog.RetryEvent(env.id.String(), env.idx, attempt,
				mck.Code.String(), mck.UPC, mck.Cycle, backoff.Milliseconds()))
			if serr := sleepContext(cfg.context(), backoff); serr != nil {
				// A draining or deadline-bound run must not block on the
				// backoff ladder: surface the cancellation immediately.
				return nil, retries, serr
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		return nil, retries, &MachineFault{
			Workload: env.id,
			Attempts: attempt,
			UPC:      mck.UPC,
			Cycle:    mck.Cycle,
			Site:     mck.Site,
			Cause:    mck.Code.String(),
			Retrying: mck.Transient(),
			Err:      mck,
			Flight:   annotateFlight(fr.Snapshot()),
		}
	}
}
