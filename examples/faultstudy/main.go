// Faultstudy: how measurement faults degrade the paper's numbers — and
// how far the degradation-aware reduction can be trusted.
//
// The UPC histogram technique is passive: the board counts pulses on
// the micro-PC bus, and §2.2's method assumes every pulse lands in the
// right counter. A real board on a live Unibus does not get that
// guarantee — counters saturate, RAM bits flip, count pulses drop.
// This example injects exactly those faults at a sweep of rates (from
// one seed, deterministically), reduces each damaged histogram with
// the degradation-aware analysis, and plots the CPI-estimate error
// against the bucket corruption and the reduction's own confidence
// number. The question it answers: when the analysis says "92%
// confidence", how wrong is the CPI actually?
//
// The rate points run concurrently through vax780.Sweep: every point
// shares the one generated workload trace, each carries its own
// deterministic fault plan, and the results land in sweep order.
//
// A second, shorter demonstration raises the machine-fault rates
// (memory parity, spontaneous machine checks) to show the supervisor
// surfacing typed errors — never a crash — and retrying transients.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"vax780"
)

func main() {
	var (
		n    = flag.Int("n", 40_000, "instructions per run")
		seed = flag.Uint64("seed", 780, "fault plan seed")
	)
	flag.Parse()

	id := vax780.TimesharingA

	// One sweep covers the ground truth (no fault plan attached) and the
	// six measurement-fault rates: board damage only (drop, bit-flip,
	// saturation), which corrupts the histogram but never aborts the
	// machine — the run completes and the reduction must cope.
	rates := []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}
	points := []vax780.SweepPoint{{
		Label: "clean",
		Config: vax780.RunConfig{
			Workloads: []vax780.WorkloadID{id}, Instructions: *n,
		},
	}}
	for _, rate := range rates {
		points = append(points, vax780.SweepPoint{
			Label: fmt.Sprintf("%.0e", rate),
			Config: vax780.RunConfig{
				Workloads: []vax780.WorkloadID{id}, Instructions: *n,
				Faults: &vax780.FaultConfig{
					Seed:    *seed,
					UPCDrop: rate, UPCFlip: rate, UPCSaturate: rate / 10,
				},
			},
		})
	}
	swept := vax780.Sweep(points, vax780.SweepOptions{})
	for _, r := range swept {
		if r.Err != nil {
			log.Fatal(r.Err) // measurement faults never abort the machine
		}
	}

	trueCPI := swept[0].Results.CPI()
	fmt.Printf("Ground truth: %s, %d instructions, CPI %.3f\n\n", id, *n, trueCPI)

	fmt.Println("CPI-estimate error vs histogram corruption:")
	fmt.Printf("%10s %8s %8s %8s %10s %8s  %s\n",
		"rate", "damaged", "conf%", "CPI", "err%", "excl-cyc", "")
	for i, rate := range rates {
		res := swept[i+1].Results
		q := res.Analysis().Quality()
		cpi := res.CPI()
		errPct := 100 * math.Abs(cpi-trueCPI) / trueCPI
		bar := strings.Repeat("#", int(math.Min(errPct*4, 40)))
		if q.InstrCountDegraded {
			// The normalizer itself is damaged: every rate, the CPI
			// included, is a ratio of suspect numbers.
			bar += " [IRD damaged]"
		}
		fmt.Printf("%10.0e %8d %8.2f %8.3f %10.3f %8d  %s\n",
			rate, q.Saturated+q.Corrupt+q.Phantom, 100*q.Confidence(),
			cpi, errPct, q.ExcludedCycles, bar)
	}

	fmt.Println("\nThe excluded buckets make the reduced numbers lower bounds;")
	fmt.Println("the confidence column is the reduction's own estimate of how")
	fmt.Println("much of the measurement survives. Error grows as confidence")
	fmt.Println("falls — the annotation tracks the real damage.")

	// Machine faults: parity errors and spontaneous machine checks abort
	// the run. The supervisor retries transients and, when retries are
	// exhausted, returns a typed error per sweep point — the harness
	// never panics, and one aborting point never takes down its
	// neighbours.
	fmt.Println("\nMachine-fault handling (typed errors, not crashes):")
	hardRates := []float64{1e-5, 1e-3}
	hard := make([]vax780.SweepPoint, len(hardRates))
	for i, rate := range hardRates {
		hard[i] = vax780.SweepPoint{
			Label: fmt.Sprintf("%.0e", rate),
			Config: vax780.RunConfig{
				Workloads: []vax780.WorkloadID{id}, Instructions: *n,
				Faults: &vax780.FaultConfig{
					Seed: *seed, MemParity: rate, MachineCheck: rate / 10,
					MaxRetries: 2, RetryBackoff: 1, // immediate retries for the demo
				},
			},
		}
	}
	for i, r := range vax780.Sweep(hard, vax780.SweepOptions{}) {
		rate := hardRates[i]
		switch {
		case r.Err == nil:
			fmt.Printf("  rate %.0e: completed, %d transient retry(s), CPI %.3f\n",
				rate, r.Results.Retries, r.Results.CPI())
		case errors.Is(r.Err, vax780.ErrMachineFault):
			var mf *vax780.MachineFault
			errors.As(r.Err, &mf)
			fmt.Printf("  rate %.0e: aborted after %d attempt(s): %s at uPC %05o (typed error)\n",
				rate, mf.Attempts, mf.Cause, mf.UPC)
		default:
			log.Fatal(r.Err)
		}
	}
}
