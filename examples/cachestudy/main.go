// Cachestudy: reproduce the companion cache study's methodology
// (Clark, "Cache Performance in the VAX-11/780", reference [2] of the
// paper): capture the physical reference trace of a timesharing run once,
// then replay it against alternative cache organizations. Every cache
// number in Section 4 of the characterization paper comes from this kind
// of study, because the UPC histogram cannot see the hardware-controlled
// cache.
//
// A second sweep runs whole machines (not replays) at alternative cache
// geometries through vax780.Sweep: the design points execute
// concurrently, share one generated workload trace, and report the
// end-to-end effect — miss rate *and* CPI — that the replay study's
// isolated cache model cannot.
package main

import (
	"flag"
	"fmt"
	"log"

	"vax780"
)

func main() {
	n := flag.Int("n", 40_000, "instructions to trace")
	flag.Parse()

	results, err := vax780.CacheStudy(vax780.TimesharingA, *n, vax780.Study780Configs())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cache organization sweep over one captured reference trace")
	fmt.Println("(production design point: 8KB/2way/8B, write-through, no write-allocate)")
	fmt.Println()
	fmt.Printf("%-16s %12s %12s %12s\n", "organization", "read miss", "I-miss", "D-miss")
	for _, r := range results {
		fmt.Printf("%-16s %12.4f %12.4f %12.4f\n",
			r.Config.Name,
			r.ReadMissRatio,
			ratio(r.IReadMisses, r.IReads),
			ratio(r.ReadMisses, r.Reads))
	}

	fmt.Println("\nThe paper's composite reports 0.28 cache read misses per")
	fmt.Println("instruction at the production point (0.18 I-stream + 0.10 D-stream).")

	// Full-machine geometry sweep: each point is a complete simulated
	// 11/780 with a different data cache, all driven by the same cached
	// trace. Where the replay study isolates the cache, this shows the
	// miss rate's downstream cost in CPI.
	type geom struct {
		label string
		bytes int
		ways  int
	}
	geoms := []geom{
		{"2KB/1-way", 2 << 10, 1},
		{"4KB/2-way", 4 << 10, 2},
		{"8KB/2-way", 8 << 10, 2}, // production
		{"16KB/2-way", 16 << 10, 2},
		{"16KB/4-way", 16 << 10, 4},
	}
	points := make([]vax780.SweepPoint, len(geoms))
	for i, g := range geoms {
		points[i] = vax780.SweepPoint{
			Label: g.label,
			Config: vax780.RunConfig{
				Instructions: *n,
				Workloads:    []vax780.WorkloadID{vax780.TimesharingA},
				CacheBytes:   g.bytes,
				CacheWays:    g.ways,
			},
		}
	}

	fmt.Println("\nFull-machine cache geometry sweep (same trace, whole 11/780):")
	fmt.Printf("%-16s %14s %10s\n", "geometry", "miss/instr", "CPI")
	for _, r := range vax780.Sweep(points, vax780.SweepOptions{}) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		cs := r.Results.CacheStudy()
		fmt.Printf("%-16s %14.4f %10.3f\n", r.Label, cs.MissPerInstr, r.Results.CPI())
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
