// Cachestudy: reproduce the companion cache study's methodology
// (Clark, "Cache Performance in the VAX-11/780", reference [2] of the
// paper): capture the physical reference trace of a timesharing run once,
// then replay it against alternative cache organizations. Every cache
// number in Section 4 of the characterization paper comes from this kind
// of study, because the UPC histogram cannot see the hardware-controlled
// cache.
package main

import (
	"flag"
	"fmt"
	"log"

	"vax780"
)

func main() {
	n := flag.Int("n", 40_000, "instructions to trace")
	flag.Parse()

	results, err := vax780.CacheStudy(vax780.TimesharingA, *n, vax780.Study780Configs())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cache organization sweep over one captured reference trace")
	fmt.Println("(production design point: 8KB/2way/8B, write-through, no write-allocate)")
	fmt.Println()
	fmt.Printf("%-16s %12s %12s %12s\n", "organization", "read miss", "I-miss", "D-miss")
	for _, r := range results {
		fmt.Printf("%-16s %12.4f %12.4f %12.4f\n",
			r.Config.Name,
			r.ReadMissRatio,
			ratio(r.IReadMisses, r.IReads),
			ratio(r.ReadMisses, r.Reads))
	}

	fmt.Println("\nThe paper's composite reports 0.28 cache read misses per")
	fmt.Println("instruction at the production point (0.18 I-stream + 0.10 D-stream).")
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
