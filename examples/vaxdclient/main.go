// Vaxdclient: the submit-poll-fetch walkthrough against a running
// vaxd. It speaks the whole job API with nothing but net/http:
//
//  1. POST /jobs submits a measurement spec. A fresh submission is
//     answered 202 with a queued job; a spec whose content address is
//     already in the store is answered 200 with a finished job and
//     cached=true — no simulation happens.
//  2. GET /jobs/{id} polls the job through its lifecycle
//     (queued -> running -> done/failed/evicted/timed-out).
//  3. GET /results/{key} lists the result bundle; each file is then
//     fetched by name. The bundle is the measurement's durable form:
//     ledger.jsonl (schema-validated event log), histogram.upch (the
//     composite micro-PC histogram), report.txt, meta.json.
//
// Start a daemon first:
//
//	go run ./cmd/vaxd -data /tmp/vaxd
//
// then:
//
//	go run ./examples/vaxdclient -addr 127.0.0.1:8780
//
// Run it twice: the second submission is a cache hit served from the
// content-addressed store, byte-identical to the first result.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

// jobView mirrors the wire shape of internal/jobs.Job. The example
// decodes only what it prints; unknown fields are ignored.
type jobView struct {
	ID       string  `json:"id"`
	Key      string  `json:"key"`
	State    string  `json:"state"`
	Cause    string  `json:"cause,omitempty"`
	Cached   bool    `json:"cached"`
	Requeues int     `json:"requeues"`
	Instrs   uint64  `json:"instructions"`
	CPI      float64 `json:"cpi"`
}

func terminal(state string) bool {
	switch state {
	case "done", "failed", "timed-out":
		return true
	}
	return false
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "vaxd address")
	n := flag.Int("n", 20_000, "instructions per workload")
	workloads := flag.String("workloads", "TIMESHARING-A,RTE-EDU", "comma-separated workload names (empty: all five)")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-attempt deadline in ms (0: none)")
	flag.Parse()
	base := "http://" + *addr

	// 1. Submit. The spec names only the measurement identity; where
	// and how it runs (queue slot, worker, checkpoints) is the
	// daemon's business.
	spec := map[string]any{"instructions": *n}
	if *workloads != "" {
		spec["workloads"] = strings.Split(*workloads, ",")
	}
	if *deadlineMS > 0 {
		spec["deadline_ms"] = *deadlineMS
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("submit: %v (is vaxd running? go run ./cmd/vaxd)", err)
	}
	var job jobView
	if err := decode(resp, &job); err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("submitted %s: state=%s cached=%v key=%s\n", job.ID, job.State, job.Cached, job.Key)

	// 2. Poll to a terminal state. A cached answer is already done.
	for !terminal(job.State) {
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		if err := decode(r, &job); err != nil {
			log.Fatalf("poll: %v", err)
		}
		fmt.Printf("  %s: %s\n", job.ID, job.State)
	}
	if job.State != "done" {
		log.Fatalf("job ended %s: %s", job.State, job.Cause)
	}
	fmt.Printf("done: %d instructions, CPI %.2f, requeues %d, cached %v\n",
		job.Instrs, job.CPI, job.Requeues, job.Cached)

	// 3. Fetch the bundle.
	var bundle struct {
		Key   string   `json:"key"`
		Files []string `json:"files"`
	}
	r, err := http.Get(base + "/results/" + job.Key)
	if err != nil {
		log.Fatalf("bundle: %v", err)
	}
	if err := decode(r, &bundle); err != nil {
		log.Fatalf("bundle: %v", err)
	}
	fmt.Printf("bundle %s: %s\n", bundle.Key, strings.Join(bundle.Files, " "))

	rep, err := http.Get(base + "/results/" + job.Key + "/report.txt")
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	defer rep.Body.Close()
	fmt.Println("--- report.txt ---")
	if _, err := io.Copy(os.Stdout, rep.Body); err != nil {
		log.Fatal(err)
	}

	// A second identical POST now returns 200 with cached=true; vaxd
	// serves the bytes above straight from the store.
}

// decode drains one HTTP response into v, failing on non-2xx status.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}
