// Tracecompare: the paper's methodological argument, run as an
// experiment. A trace-driven instruction timing model (Peuto & Shustek
// style, the method the paper's introduction critiques) estimates each
// workload's CPI from the architectural trace alone; the UPC histogram
// measures the real thing. The gap is the time the trace-driven method
// cannot see: cache and write-buffer stalls, IB stalls, TB miss service,
// and operating-system activity.
package main

import (
	"flag"
	"fmt"
	"log"

	"vax780"
)

func main() {
	n := flag.Int("n", 30_000, "instructions per workload")
	flag.Parse()

	fmt.Println("Trace-driven timing model vs. UPC histogram measurement")
	fmt.Println()
	fmt.Printf("%-15s %12s %12s %12s %10s\n",
		"workload", "trace CPI", "UPC CPI", "invisible", "missed ints")

	for _, id := range vax780.AllWorkloads() {
		cmp, err := vax780.CompareTraceDriven(id, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %12.2f %12.2f %11.0f%% %10d\n",
			cmp.Workload, cmp.EstimatedCPI, cmp.MeasuredCPI,
			100*cmp.InvisibleFraction, cmp.SkippedEvents)
	}

	fmt.Println("\nNeither benchmark speed nor trace-driven studies \"can give the")
	fmt.Println("details of instruction timing, and neither can be applied to")
	fmt.Println("operating systems or to multiprogramming workloads\" (§1).")
}
