// Postmortem: a fault autopsy from the run ledger and the micro-PC
// flight recorder.
//
// A machine check on the real 11/780 left the operator two artifacts:
// the console's micro-PC trace and whatever the run log recorded. This
// example rebuilds that workflow end to end. It runs a workload under
// memory-parity rates high enough to exhaust the supervisor's retries,
// writing the run ledger to a JSONL file; the run fails with a typed
// *vax780.MachineFault carrying the flight-recorder snapshot — the
// last N micro-PCs before the abort, each annotated with its
// control-store region and Table 8 cycle class, the final entry being
// the faulting cycle itself.
//
// The autopsy then proceeds from both artifacts:
//
//  1. From the error: the flight tail is summarized by region and
//     class — which microcode the machine was executing on the way
//     into the fault, and how much of that path was stalled.
//  2. From the ledger: the JSONL is re-read and validated against the
//     golden schema, the retry/backoff history is reconstructed, and
//     the machine-fault event's embedded snapshot is cross-checked
//     against the in-memory one (they are the same snapshot).
//
// Because the fault plan is seed-deterministic, the whole autopsy is
// reproducible: same seed, same faulting micro-PC, same flight path.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"vax780"
)

func main() {
	var (
		n    = flag.Int("n", 20_000, "instructions")
		seed = flag.Uint64("seed", 3, "fault plan seed")
		tail = flag.Int("tail", 12, "flight entries to print")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "postmortem")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ledgerPath := filepath.Join(dir, "run.jsonl")

	fmt.Println("== the run ==")
	mf := crash(*n, *seed, ledgerPath)
	fmt.Printf("workload %s aborted: %s at uPC %05o, cycle %d (attempt %d)\n\n",
		mf.Workload, mf.Cause, mf.UPC, mf.Cycle, mf.Attempts)

	fmt.Println("== autopsy 1: the flight recorder ==")
	autopsyFlight(mf, *tail)

	fmt.Println("== autopsy 2: the ledger ==")
	autopsyLedger(ledgerPath, mf)
}

// crash runs until the parity rate defeats the retry budget and
// returns the typed fault. The ledger lands in ledgerPath.
func crash(n int, seed uint64, ledgerPath string) *vax780.MachineFault {
	f, err := os.Create(ledgerPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	_, err = vax780.Run(vax780.RunConfig{
		Instructions: n,
		Workloads:    []vax780.WorkloadID{vax780.TimesharingA},
		Ledger:       f,
		Faults: &vax780.FaultConfig{
			Seed:       seed,
			MemParity:  0.01, // far beyond what retries can clear
			MaxRetries: 2, RetryBackoff: 1,
		},
	})
	if err == nil {
		log.Fatal("the run survived; raise the parity rate")
	}
	var mf *vax780.MachineFault
	if !errors.As(err, &mf) {
		log.Fatalf("not a machine fault: %v", err)
	}
	if len(mf.Flight) == 0 {
		log.Fatal("no flight snapshot (recorder auto-enables under a fault plan)")
	}
	return mf
}

// autopsyFlight reads the microcode path out of the snapshot: the tail
// itself, then the region/class mix of the whole recorded window.
func autopsyFlight(mf *vax780.MachineFault, tail int) {
	fl := mf.Flight
	if last := fl[len(fl)-1]; last.UPC != mf.UPC {
		log.Fatalf("snapshot ends at uPC %05o, fault at %05o", last.UPC, mf.UPC)
	}

	fmt.Printf("last %d of %d recorded cycles:\n", tail, len(fl))
	start := len(fl) - tail
	if start < 0 {
		start = 0
	}
	for _, e := range fl[start:] {
		stall := ""
		if e.Stalled {
			stall = "  STALLED"
		}
		fmt.Printf("  cycle %8d  uPC %05o  %-12s %s%s\n", e.Cycle, e.UPC, e.Class, e.Region, stall)
	}

	regions, classes := map[string]int{}, map[string]int{}
	stalled := 0
	for _, e := range fl {
		regions[e.Region]++
		classes[e.Class]++
		if e.Stalled {
			stalled++
		}
	}
	fmt.Printf("\npath into the fault (%d cycles, %d stalled):\n", len(fl), stalled)
	fmt.Printf("  regions: %s\n", tally(regions, len(fl)))
	fmt.Printf("  classes: %s\n\n", tally(classes, len(fl)))
}

// autopsyLedger re-reads the JSONL: validates it, replays the retry
// history, and cross-checks the persisted snapshot against the typed
// error's.
func autopsyLedger(path string, mf *vax780.MachineFault) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := vax780.ValidateLedger(data); err != nil {
		log.Fatalf("ledger fails the golden schema: %v", err)
	}
	fmt.Printf("%s validates against the golden schema\n", filepath.Base(path))

	var persisted []vax780.FlightEntry
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Msg     string               `json:"msg"`
			Attempt int                  `json:"attempt"`
			Cause   string               `json:"cause"`
			Backoff int                  `json:"backoff_ms"`
			UPC     uint16               `json:"upc"`
			Flight  []vax780.FlightEntry `json:"flight"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			log.Fatal(err)
		}
		switch rec.Msg {
		case "retry":
			fmt.Printf("  retry %d: %s cleared, backoff %dms\n", rec.Attempt, rec.Cause, rec.Backoff)
		case "machine-fault":
			persisted = rec.Flight
			fmt.Printf("  machine-fault at uPC %05o with %d flight entries\n", rec.UPC, len(rec.Flight))
		}
	}
	if len(persisted) != len(mf.Flight) {
		log.Fatalf("ledger snapshot has %d entries, error carries %d", len(persisted), len(mf.Flight))
	}
	for i := range persisted {
		if persisted[i] != mf.Flight[i] {
			log.Fatalf("snapshot divergence at entry %d: %+v vs %+v", i, persisted[i], mf.Flight[i])
		}
	}
	fmt.Println("  ledger snapshot == MachineFault.Flight, entry for entry")
	fmt.Println("\nrerun with the same -seed to reproduce this exact autopsy;")
	fmt.Println("pretty-print the full ledger with: vaxdiag -ledger <file>")
}

// tally renders a count map as "NAME 62%" terms, largest first.
func tally(m map[string]int, total int) string {
	type kv struct {
		k string
		v int
	}
	var s []kv
	for k, v := range m {
		s = append(s, kv{k, v})
	}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j].v > s[i].v {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = fmt.Sprintf("%s %d%%", e.k, 100*e.v/total)
	}
	return strings.Join(parts, ", ")
}
