// Quickstart: run the composite measurement and print the headline
// results — the shortest path from zero to the paper's CPI breakdown.
package main

import (
	"fmt"
	"log"

	"vax780"
)

func main() {
	// Run all five experiments (20k instructions each) and sum their
	// UPC histograms into the composite, as the paper does.
	res, err := vax780.Run(vax780.RunConfig{Instructions: 20_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Instructions measured: %d\n", res.Instructions())
	fmt.Printf("Cycles per average VAX instruction: %.2f (paper: 10.59)\n\n", res.CPI())

	fmt.Println("Where the time goes (cycles per instruction):")
	for _, row := range res.CycleClasses() {
		fmt.Printf("  %-9s %6.3f  (paper %.3f)\n", row.Activity, row.Cycles, row.Paper)
	}

	fmt.Println("\nOpcode group frequencies:")
	for _, g := range res.OpcodeGroups() {
		fmt.Printf("  %-10s %6.2f%%  (paper %.2f%%)\n", g.Group, g.Percent, g.Paper)
	}
}
