// Jobtrace: the observability walkthrough against a running vaxd. It
// submits one measurement, then pulls the three artifacts the service
// derives from its journal — speaking nothing but net/http:
//
//  1. POST /jobs + GET /jobs/{id} — the same submit/poll loop as
//     examples/vaxdclient.
//  2. GET /trace/{id} — the job's causal trace as JSONL spans: the
//     service side (job → http/queue/attempt) assembled from the
//     journal, spliced onto the run side (run → workload → flow)
//     staged in the result bundle. The example renders the tree with
//     cycle costs; ?format=chrome fetches the same tree as a Chrome
//     trace (chrome://tracing, Perfetto) written next to the binary.
//  3. GET /metrics — the Prometheus counters the journal implies
//     (every vaxd_*_total series is machine-checked against the
//     journal by obs.Validate; vaxdiag -obs re-proves it offline).
//
// Start a daemon first:
//
//	go run ./cmd/vaxd -data /tmp/vaxd
//
// then:
//
//	go run ./examples/jobtrace -addr 127.0.0.1:8780
//
// Kill and restart the daemon mid-job and the trace stays connected:
// the requeued attempt, the resume span, and the re-run workloads all
// hang off the same job root.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

type jobView struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	State  string `json:"state"`
	Cause  string `json:"cause,omitempty"`
	Cached bool   `json:"cached"`
}

// spanRow mirrors the JSONL wire form of one trace span (obs.Row).
type spanRow struct {
	ID     string         `json:"id"`
	Parent string         `json:"parent"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Path   string         `json:"path"`
	Cycles uint64         `json:"cycles"`
	Attrs  map[string]any `json:"attrs"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "vaxd address")
	n := flag.Int("n", 20_000, "instructions per workload")
	workloads := flag.String("workloads", "TIMESHARING-A,RTE-SCI", "comma-separated workload names")
	chrome := flag.String("chrome", "jobtrace_chrome.json", "write the Chrome-format trace here (empty: skip)")
	flag.Parse()
	base := "http://" + *addr

	// 1. Submit and poll to a terminal state.
	spec := map[string]any{
		"instructions": *n,
		"workloads":    strings.Split(*workloads, ","),
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("submit: %v (is vaxd running? go run ./cmd/vaxd)", err)
	}
	var job jobView
	if err := decode(resp, &job); err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("submitted %s: state=%s cached=%v\n", job.ID, job.State, job.Cached)
	for job.State == "queued" || job.State == "running" {
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		if err := decode(r, &job); err != nil {
			log.Fatalf("poll: %v", err)
		}
	}
	if job.State != "done" {
		log.Fatalf("job ended %s: %s", job.State, job.Cause)
	}

	// 2. The causal trace: HTTP admission down to the hot flows.
	r, err := http.Get(base + "/trace/" + job.ID)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	rows, err := readOK(r)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Printf("\n--- /trace/%s ---\n", job.ID)
	printTree(rows)

	if *chrome != "" {
		r, err := http.Get(base + "/trace/" + job.ID + "?format=chrome")
		if err != nil {
			log.Fatalf("chrome trace: %v", err)
		}
		data, err := readOK(r)
		if err != nil {
			log.Fatalf("chrome trace: %v", err)
		}
		if err := os.WriteFile(*chrome, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace written to %s (load in chrome://tracing or Perfetto)\n", *chrome)
	}

	// 3. The counters the same journal implies.
	r, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	metrics, err := readOK(r)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	fmt.Println("\n--- /metrics (counters; proven against the journal by vaxdiag -obs) ---")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.Contains(line, "_total") && !strings.HasPrefix(line, "#") {
			fmt.Println(" ", line)
		}
	}
}

// printTree renders the JSONL span rows as an indented tree. Depth is
// the span's path depth, so the wire order (depth-first, parents
// before children) prints directly.
func printTree(rows []byte) {
	for _, line := range bytes.Split(rows, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var s spanRow
		if err := json.Unmarshal(line, &s); err != nil {
			log.Fatalf("trace row: %v", err)
		}
		indent := strings.Repeat("  ", strings.Count(s.Path, "/"))
		cost := ""
		if s.Cycles > 0 {
			cost = fmt.Sprintf("  %d cycles", s.Cycles)
		}
		detail := ""
		switch s.Kind {
		case "flow":
			if share, ok := s.Attrs["share"].(float64); ok {
				detail = fmt.Sprintf("  (%.1f%% of workload)", 100*share)
			}
		case "resume":
			if n, ok := s.Attrs["restored"].(float64); ok {
				detail = fmt.Sprintf("  (%.0f workloads restored)", n)
			}
		case "attempt":
			if cause, ok := s.Attrs["cause"].(string); ok && cause != "" {
				detail = "  (" + cause + ")"
			}
		}
		fmt.Printf("%s%s %s%s%s\n", indent, s.Kind, s.Name, cost, detail)
	}
}

// readOK drains one response, failing on non-2xx status.
func readOK(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}

// decode drains one HTTP response into v, failing on non-2xx status.
func decode(resp *http.Response, v any) error {
	data, err := readOK(resp)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
