// Custom: define your own workload experiment and measure it — here a
// COBOL transaction shop (decimal- and string-heavy), plus the Null
// process ablation the paper warns about.
package main

import (
	"fmt"
	"log"

	"vax780"
)

func main() {
	cobol := vax780.CustomWorkload{
		Name:         "COBOL-SHOP",
		Seed:         7,
		Users:        24,
		DecimalScale: 40, // packed decimal everywhere
		CharScale:    5,
		FloatScale:   0.1,
		SyscallScale: 2,
	}
	res, err := vax780.RunCustom(cobol, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: CPI %.2f (composite baseline: 10.6)\n\n", cobol.Name, res.CPI())
	fmt.Println("Group mix under the custom workload:")
	for _, g := range res.OpcodeGroups() {
		fmt.Printf("  %-10s %6.2f%%  (composite %.2f%%)\n", g.Group, g.Percent, g.Paper)
	}

	fmt.Println("\nHottest microcode flows:")
	for _, h := range res.HotSpots(8) {
		fmt.Printf("  %05o  %-22s %-10s %10d cycles (%d stalled)\n",
			h.Addr, h.Label, h.Region, h.Cycles, h.Stalled)
	}

	// The Null-process bias: §2.2 excludes VMS's idle loop because it
	// "would bias all per-instruction statistics in proportion to the
	// idleness of the system". Measure the bias directly.
	fmt.Println("\nThe Null-process bias (why the paper excluded idle time):")
	fmt.Printf("%12s %8s %10s\n", "idle frac", "CPI", "SIMPLE %")
	for _, idle := range []float64{0, 0.25, 0.5, 0.75} {
		r, err := vax780.RunCustom(vax780.CustomWorkload{
			Name: "IDLE-STUDY", Seed: 11, IdleFraction: idle,
		}, 25_000)
		if err != nil {
			log.Fatal(err)
		}
		var simple float64
		for _, g := range r.OpcodeGroups() {
			if g.Group == "SIMPLE" {
				simple = g.Percent
			}
		}
		fmt.Printf("%12.2f %8.2f %10.1f\n", idle, r.CPI(), simple)
	}
}
