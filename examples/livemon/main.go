// Livemon: watch a measurement run through the live telemetry layer —
// the paper's passive histogram board, observable over HTTP while the
// simulated 11/780 executes.
//
// The example serves the monitor, runs the composite in the background,
// polls its own /metrics and /board endpoints the way an operator (or a
// Prometheus scraper) would, and finally exports the interval time
// series and a Chrome trace.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"vax780"
)

func main() {
	// Enable all three telemetry components: live counters (always on),
	// an interval snapshot every 100k cycles, and a capped Chrome trace.
	tel := vax780.NewTelemetry(100_000, 500_000)

	// Serve the monitor. A real deployment would use
	// http.ListenAndServe(":8780", tel.Handler()); the example uses a
	// test server so it needs no free port.
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	fmt.Println("live monitor at", srv.URL)

	done := make(chan *vax780.Results, 1)
	go func() {
		res, err := vax780.Run(vax780.RunConfig{
			Instructions: 20_000,
			Telemetry:    tel,
		})
		if err != nil {
			log.Fatal(err)
		}
		done <- res
	}()

	res := <-done

	// Scrape our own Prometheus endpoint, as a monitoring stack would.
	fmt.Println("\n/metrics (Prometheus text, excerpt):")
	for _, line := range strings.Split(get(srv.URL+"/metrics"), "\n") {
		if strings.HasPrefix(line, "vax780_") {
			fmt.Println(" ", line)
		}
	}

	// Read the histogram board over its HTTP Unibus mirror: CSR status,
	// then the five hottest control-store locations.
	fmt.Println("\n/board/csr:", strings.TrimSpace(get(srv.URL+"/board/csr")))
	var hot struct {
		Buckets []struct {
			Addr    int    `json:"addr"`
			Normal  uint64 `json:"normal"`
			Stalled uint64 `json:"stalled"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(get(srv.URL+"/board/read?hot=5")), &hot); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhottest control-store buckets via /board/read?hot=5:")
	for _, bkt := range hot.Buckets {
		fmt.Printf("  %05o  %d cycles (%d stalled)\n", bkt.Addr, bkt.Normal, bkt.Stalled)
	}

	// The live counters agree with the offline reduction.
	c := tel.Counters()
	fmt.Printf("\nlive counters: %d cycles, %d instructions, CPI %.3f\n",
		c.Cycles, c.Instrs, c.CPI)
	fmt.Printf("offline composite: %d cycles, CPI %.3f\n",
		res.Histogram().TotalCycles(), res.CPI())

	// Export the interval time series and the Perfetto-loadable trace.
	csv, err := os.Create("intervals.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := tel.WriteIntervalsCSV(csv); err != nil {
		log.Fatal(err)
	}
	csv.Close()
	trace, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := tel.WriteTrace(trace); err != nil {
		log.Fatal(err)
	}
	trace.Close()
	fmt.Printf("\nwrote intervals.csv (%d intervals) and trace.json (open in chrome://tracing or https://ui.perfetto.dev)\n",
		c.Intervals)
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}
