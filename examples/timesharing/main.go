// Timesharing: the full reproduction of the paper's measurement
// campaign — five workload experiments, composite histogram, and every
// table printed against the published values.
package main

import (
	"flag"
	"fmt"
	"log"

	"vax780"
)

func main() {
	n := flag.Int("n", 60_000, "instructions per experiment")
	flag.Parse()

	fmt.Println("Running the five measurement experiments of Emer & Clark (1984):")
	res, err := vax780.Run(vax780.RunConfig{Instructions: *n})
	if err != nil {
		log.Fatal(err)
	}

	for _, w := range res.PerWorkload {
		fmt.Printf("  %-14s %8d instructions, CPI %.3f\n",
			w.Workload, w.Instructions, w.CPI)
	}
	fmt.Println("\nComposite analysis (sum of the five UPC histograms):")
	fmt.Println(res.Report())
}
