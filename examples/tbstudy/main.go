// TB study: sweep the context-switch interval and watch the translation
// buffer miss rate respond — the study §3.4 of the paper points at when
// it says the context-switch headway "is useful in setting the flush
// interval in cache and translation buffer simulations" (their companion
// paper is reference [3]).
//
// Each context switch flushes the process half of the 128-entry TB; the
// more often VMS reschedules, the more of each quantum is spent
// refilling it. The eight design points run concurrently through
// vax780.Sweep — each is an ordinary Run, bit-exact with running it
// alone — and print in sweep order.
package main

import (
	"flag"
	"fmt"
	"log"

	"vax780"
)

func main() {
	n := flag.Int("n", 25_000, "instructions per sweep point")
	flag.Parse()

	fmt.Println("Context-switch interval vs. translation buffer behaviour")
	fmt.Println("(the paper's measured interval is 6418 instructions)")
	fmt.Println()
	fmt.Printf("%12s %14s %14s %10s\n",
		"switch every", "TB miss/instr", "cycles/miss", "CPI")

	headways := []int{500, 1000, 2000, 4000, 6418, 12000, 25000, 100000}
	points := make([]vax780.SweepPoint, len(headways))
	for i, headway := range headways {
		points[i] = vax780.SweepPoint{
			Label: fmt.Sprintf("%d", headway),
			Config: vax780.RunConfig{
				Instructions:     *n,
				Workloads:        []vax780.WorkloadID{vax780.TimesharingA},
				CtxSwitchHeadway: headway,
			},
		}
	}
	for i, r := range vax780.Sweep(points, vax780.SweepOptions{}) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		tb := r.Results.TBMiss()
		fmt.Printf("%12d %14.4f %14.2f %10.3f\n",
			headways[i], tb.MissesPerInstr, tb.CyclesPerMiss, r.Results.CPI())
	}

	fmt.Println("\nAt the measured 6418-instruction interval the paper reports")
	fmt.Println("0.029 TB misses per instruction at 21.6 cycles each.")

	// Second half: the companion paper's simulation methodology —
	// capture the TB probe trace once, replay it against alternative
	// organizations ("Performance of the VAX-11/780 Translation Buffer:
	// Simulation and Measurement", reference [3]).
	fmt.Println("\nTB organization sweep over one captured probe trace:")
	fmt.Printf("%-20s %12s %10s %10s\n", "organization", "miss ratio", "misses", "flushes")
	study, err := vax780.TBStudy(vax780.TimesharingA, *n, vax780.StudyTBConfigs())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range study {
		fmt.Printf("%-20s %12.4f %10d %10d\n",
			r.Config.Name, r.MissRatio, r.Misses, r.Flushes)
	}
}
