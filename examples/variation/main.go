// Variation: interval measurement — the extension the paper itself says
// its method lacks. Section 2.2 lists as a disadvantage that "the
// analysis produces only average behavior characterizations of the
// processor over the measurement interval, since no measures of the
// variation of the statistics during the measurement are collected."
//
// Snapshotting the histogram board periodically (a Unibus read sequence
// the hardware fully supports) and differencing the snapshots fills that
// gap: per-interval CPI, with the workload's phase structure visible.
//
// A closing sweep runs all five workloads concurrently through
// vax780.Sweep and compares their composite CPIs: the between-workload
// spread the paper's Table 1 shows, next to the within-workload spread
// the intervals recover.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"vax780"
)

func main() {
	var (
		n        = flag.Int("n", 60_000, "instructions to run")
		interval = flag.Int("interval", 5_000, "instructions per snapshot interval")
	)
	flag.Parse()

	s, err := vax780.RunIntervals(vax780.RTECommercial, *n, *interval)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CPI variation over %d-instruction intervals (%s):\n\n",
		*interval, s.Workload)
	fmt.Printf("%10s %8s %8s  %s\n", "interval", "CPI", "SIMPLE%", "")
	for i, p := range s.Points {
		bar := strings.Repeat("#", int((p.CPI-8)*6))
		fmt.Printf("%10d %8.2f %8.1f  %s\n", i, p.CPI, p.SimplePct, bar)
	}
	fmt.Printf("\nmean CPI %.2f, stddev %.2f, range [%.2f, %.2f]\n",
		s.MeanCPI, s.StdDevCPI, s.MinCPI, s.MaxCPI)
	fmt.Println("\nThe composite average (the paper's 10.6) hides this spread;")
	fmt.Println("interval snapshots of the same passive board recover it.")

	// Between-workload variation: one sweep point per experiment, run
	// concurrently, each an ordinary single-workload measurement.
	ids := vax780.AllWorkloads()
	points := make([]vax780.SweepPoint, len(ids))
	for i, id := range ids {
		points[i] = vax780.SweepPoint{
			Label: id.String(),
			Config: vax780.RunConfig{
				Instructions: *n,
				Workloads:    []vax780.WorkloadID{id},
			},
		}
	}
	fmt.Println("\nBetween-workload CPI spread (all five experiments):")
	fmt.Printf("%-16s %8s %14s\n", "workload", "CPI", "TB miss/instr")
	for _, r := range vax780.Sweep(points, vax780.SweepOptions{}) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("%-16s %8.3f %14.4f\n",
			r.Label, r.Results.CPI(), r.Results.TBMiss().MissesPerInstr)
	}
}
