package vax780

// Profiler-overhead benchmarks. The sampler rides the same nil-checked
// hook pattern as the telemetry probes and fault injectors, so a run
// with no profiler attached must cost within 1% of the fault-era
// baseline (BenchmarkFaults/off) — CI gates that A/B across base and
// head with vaxbench -compare, and BENCH_prof.json records the
// adjudication. The other variants price the attached sampler at the
// default stride and the exact engine's attribution walk over a
// composite histogram.

import (
	"testing"

	"vax780/internal/runlog"
)

// newBenchClock returns the sanctioned wall-clock reader (the run
// ledger's clock; the simulation itself stays clock-free).
func newBenchClock() *runlog.Clock { return runlog.NewClock() }

// minNs reduces one timing arm to its minimum — the low-noise
// estimator for a deterministic computation (every disturbance only
// adds time, so the minimum is the closest observation to true cost).
func minNs(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func benchProfRun(b *testing.B, attach bool) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
		}
		if attach {
			cfg.Profiler = &Profiler{}
		}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkProf(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		// No profiler: the disabled path the <1% gate prices — the
		// EBOX hook is one nil pointer check per cycle.
		benchProfRun(b, false)
	})
	b.Run("sampling", func(b *testing.B) {
		// Sampler attached at the default stride (64): a counter
		// decrement per cycle, a micro-PC store every 64th.
		benchProfRun(b, true)
	})
	b.Run("exact", func(b *testing.B) {
		// The exact engine alone: attribute an already-measured
		// composite histogram onto flows (no simulation in the loop).
		res, err := Run(RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := res.Profile(nil); len(p.Flows) == 0 {
				b.Fatal("empty profile")
			}
		}
	})
}

// TestProfilerSamplingOverheadInterleaved is the in-process A/B: pairs
// of runs, profiler detached then attached, interleaved so host drift
// hits both arms alike. The attached sampler at the default stride
// must stay within 25% of the detached run in at least one of three
// measurement sessions — a loose in-process bound (CI's cross-revision
// vaxbench -compare gate is the precise one); what this test pins down
// is that attaching the sampler cannot be catastrophically slow. Each
// arm reduces to its minimum (the low-noise estimator for a
// deterministic computation) and a session under the bound ends the
// test: on a noisy shared host single runs spread ±40% and any single
// session can come in high, but only a genuinely slow sampler stays
// over the bound across every pair of all three sessions.
func TestProfilerSamplingOverheadInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const pairs = 7
	cfg := RunConfig{Instructions: 10_000, Workloads: []WorkloadID{TimesharingA}}

	time1 := func(attach bool) float64 {
		c := cfg
		if attach {
			c.Profiler = &Profiler{}
		}
		sw := newBenchClock()
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		return sw.Ns()
	}

	// Warm both paths once (trace generation, allocator) off the books.
	time1(false)
	time1(true)

	const sessions = 3
	best := 0.0
	for s := 0; s < sessions; s++ {
		var off, on []float64
		for i := 0; i < pairs; i++ {
			off = append(off, time1(false))
			on = append(on, time1(true))
		}
		offMin, onMin := minNs(off), minNs(on)
		overhead := 100 * (onMin - offMin) / offMin
		t.Logf("sampling overhead session %d: off %.2f ms, on %.2f ms (%+.1f%%, min of %d pairs)",
			s+1, offMin/1e6, onMin/1e6, overhead, pairs)
		if overhead <= 25 {
			return
		}
		if s == 0 || overhead < best {
			best = overhead
		}
	}
	t.Errorf("attached sampler overhead %.1f%% exceeds the 25%% in-process bound in all %d sessions",
		best, sessions)
}
