package vax780

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkload) != int(NumWorkloads) {
		t.Errorf("ran %d workloads, want %d", len(res.PerWorkload), NumWorkloads)
	}
	if res.Instructions() < 5*6000 {
		t.Errorf("composite instructions = %d", res.Instructions())
	}
	if cpi := res.CPI(); cpi < 7 || cpi > 15 {
		t.Errorf("CPI = %.2f", cpi)
	}
	if !strings.Contains(res.Report(), "Table 8") {
		t.Error("report missing Table 8")
	}
	if !strings.Contains(res.BlockDiagram(), "EBOX") {
		t.Error("block diagram missing EBOX")
	}
}

func TestRunSingleWorkload(t *testing.T) {
	res, err := Run(RunConfig{
		Instructions: 25000,
		Workloads:    []WorkloadID{RTEScientific},
		Strict:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkload) != 1 || res.PerWorkload[0].Workload != RTEScientific {
		t.Errorf("per-workload results wrong: %+v", res.PerWorkload)
	}
	groups := res.OpcodeGroups()
	if len(groups) == 0 {
		t.Fatal("no group frequencies")
	}
	var float float64
	for _, g := range groups {
		if g.Group == "FLOAT" {
			float = g.Percent
		}
	}
	if float < 3 {
		t.Errorf("scientific workload FLOAT = %.1f%%, expected elevated", float)
	}
}

func TestRunAccessors(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 5000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.CPIRows(); len(rows) != 14 {
		t.Errorf("CPI rows = %d, want 14", len(rows))
	}
	if cols := res.CycleClasses(); len(cols) != 6 {
		t.Errorf("cycle classes = %d, want 6", len(cols))
	}
	tb := res.TBMiss()
	if tb.MissesPerInstr <= 0 || tb.CyclesPerMiss <= 0 {
		t.Errorf("TB stats empty: %+v", tb)
	}
	cs := res.CacheStudy()
	if cs.IBRefsPerInstr <= 0 {
		t.Errorf("cache study empty: %+v", cs)
	}
	pct, taken := res.PCChangingPercent()
	if pct < 25 || pct > 50 || taken < 50 || taken > 85 {
		t.Errorf("PC-changing %.1f%%/%.1f%%", pct, taken)
	}
	if b := res.AverageInstructionBytes(); b < 3 || b > 5 {
		t.Errorf("avg instruction bytes = %.2f", b)
	}
	if _, ints, _ := res.Headways(); ints < 300 || ints > 1500 {
		t.Errorf("interrupt headway = %.0f", ints)
	}
	if pg := res.PerGroupCycles(); pg["CALL/RET"] < 15 {
		t.Errorf("per-group CALL/RET = %.1f", pg["CALL/RET"])
	}
	if res.Histogram().TotalCycles() == 0 {
		t.Error("histogram empty")
	}
}

func TestWorkloadNames(t *testing.T) {
	for _, id := range AllWorkloads() {
		got, err := WorkloadByName(id.String())
		if err != nil || got != id {
			t.Errorf("round trip %v: %v %v", id, got, err)
		}
	}
	if _, err := WorkloadByName("NOPE"); err == nil {
		t.Error("unknown name should fail")
	}
	if WorkloadID(99).String() == "" {
		t.Error("out-of-range name empty")
	}
}

func TestHardwareOverrides(t *testing.T) {
	// A tiny cache must increase CPI.
	big, err := Run(RunConfig{Instructions: 8000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(RunConfig{
		Instructions: 8000,
		Workloads:    []WorkloadID{TimesharingA},
		CacheBytes:   1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.CPI() <= big.CPI() {
		t.Errorf("1KB cache CPI %.2f should exceed 8KB cache CPI %.2f",
			small.CPI(), big.CPI())
	}
}

func TestCtxSwitchHeadwaySweepChangesTBMisses(t *testing.T) {
	frequent, err := Run(RunConfig{
		Instructions: 40000, Workloads: []WorkloadID{TimesharingA},
		CtxSwitchHeadway: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	rare, err := Run(RunConfig{
		Instructions: 40000, Workloads: []WorkloadID{TimesharingA},
		CtxSwitchHeadway: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frequent.TBMiss().MissesPerInstr <= rare.TBMiss().MissesPerInstr {
		t.Errorf("frequent switching TB misses %.4f should exceed rare %.4f",
			frequent.TBMiss().MissesPerInstr, rare.TBMiss().MissesPerInstr)
	}
}

func TestCompareTraceDriven(t *testing.T) {
	cmp, err := CompareTraceDriven(TimesharingA, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EstimatedCPI >= cmp.MeasuredCPI {
		t.Errorf("trace-driven %.2f should underestimate measured %.2f",
			cmp.EstimatedCPI, cmp.MeasuredCPI)
	}
	if cmp.InvisibleFraction < 0.1 {
		t.Errorf("invisible fraction %.2f suspiciously small", cmp.InvisibleFraction)
	}
	if cmp.SkippedEvents == 0 {
		t.Error("no skipped interrupt deliveries")
	}
}

func TestDiagnostics(t *testing.T) {
	if !strings.Contains(BlockDiagram(), "Translation Buffer") {
		t.Error("block diagram incomplete")
	}
	l := ControlStoreListing()
	if !strings.Contains(l, "ird") || !strings.Contains(l, "tbmiss") {
		t.Error("control store listing incomplete")
	}
	s := ControlStoreSummary()
	for _, want := range []string{"Decode", "Spec1", "Mem Mgmt", "microwords"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestGroupNames(t *testing.T) {
	names := GroupNames()
	if len(names) != 7 || names[0] != "SIMPLE" || names[6] != "DECIMAL" {
		t.Errorf("GroupNames = %v", names)
	}
}

func TestWorkloadComparison(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cmp := res.WorkloadComparison()
	for _, want := range []string{"TIMESHARING-A", "RTE-COM", "CPI", "FLOAT %", "TB miss/instr"} {
		if !strings.Contains(cmp, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
	// A custom run (no per-workload histograms) renders empty.
	cres, err := RunCustom(CustomWorkload{Seed: 2}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if cres.WorkloadComparison() != "" {
		t.Error("custom run should have no comparison")
	}
}

func TestVerifyMicrocodeClean(t *testing.T) {
	if issues := VerifyMicrocode(); len(issues) != 0 {
		t.Errorf("microcode verifier found issues: %v", issues)
	}
}
