package vax780

import (
	"fmt"

	"vax780/internal/analysis"
	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// IntervalPoint is one measurement interval of an interval run.
type IntervalPoint struct {
	Instructions uint64
	Cycles       uint64
	CPI          float64
	SimplePct    float64
}

// IntervalSeries reports how the statistics vary during a measurement —
// the extension the paper's §2.2 lists as a limitation of its
// averages-only analysis ("no measures of the variation of the
// statistics during the measurement are collected").
type IntervalSeries struct {
	Workload  WorkloadID
	Points    []IntervalPoint
	MeanCPI   float64
	StdDevCPI float64
	MinCPI    float64
	MaxCPI    float64
}

// RunIntervals runs one workload, snapshotting the UPC histogram every
// interval instructions, and returns the per-interval variation series.
func RunIntervals(id WorkloadID, instructions, interval int) (*IntervalSeries, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("vax780: interval must be positive")
	}
	p, err := id.profile(instructions)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	mon := upc.New()
	mon.Start()
	m := machine.New(machine.Config{Mem: mem.Config{}, Monitor: mon}, tr.Program)
	hists, err := m.RunIntervals(tr.Stream(), uint64(interval))
	if err != nil {
		return nil, err
	}
	s := analysis.Intervals(machine.ROM(), hists)
	out := &IntervalSeries{
		Workload:  id,
		MeanCPI:   s.MeanCPI,
		StdDevCPI: s.StdDevCPI,
		MinCPI:    s.MinCPI,
		MaxCPI:    s.MaxCPI,
	}
	for _, pt := range s.Points {
		out.Points = append(out.Points, IntervalPoint{
			Instructions: pt.Instructions,
			Cycles:       pt.Cycles,
			CPI:          pt.CPI,
			SimplePct:    pt.SimplePct,
		})
	}
	return out, nil
}
