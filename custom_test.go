package vax780

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCustomScalesContent(t *testing.T) {
	res, err := RunCustom(CustomWorkload{
		Name: "DECIMAL-HEAVY", Seed: 3, DecimalScale: 40, FloatScale: 0.1,
	}, 15000)
	if err != nil {
		t.Fatal(err)
	}
	var decimal, float float64
	for _, g := range res.OpcodeGroups() {
		switch g.Group {
		case "DECIMAL":
			decimal = g.Percent
		case "FLOAT":
			float = g.Percent
		}
	}
	if decimal < 0.5 {
		t.Errorf("DECIMAL = %.2f%%, scaling x40 had no effect", decimal)
	}
	if float > 1.5 {
		t.Errorf("FLOAT = %.2f%%, scaling x0.1 had no effect", float)
	}
	if res.CPI() < 7 || res.CPI() > 18 {
		t.Errorf("CPI = %.2f", res.CPI())
	}
}

func TestRunCustomDefaultsMatchComposite(t *testing.T) {
	res, err := RunCustom(CustomWorkload{Seed: 5}, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI() < 9 || res.CPI() > 12.5 {
		t.Errorf("unscaled custom CPI = %.2f, want near 10.6", res.CPI())
	}
}

func TestIdleFractionBiasesStatistics(t *testing.T) {
	// The paper excluded the VMS Null process because it "would bias all
	// per-instruction statistics in proportion to the idleness of the
	// system" (§2.2). Verify the bias: more idle → lower CPI, more SIMPLE.
	busy, err := RunCustom(CustomWorkload{Seed: 9}, 15000)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := RunCustom(CustomWorkload{Seed: 9, IdleFraction: 0.6}, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if idle.CPI() >= busy.CPI() {
		t.Errorf("idle CPI %.2f should be below busy CPI %.2f", idle.CPI(), busy.CPI())
	}
	simple := func(r *Results) float64 {
		for _, g := range r.OpcodeGroups() {
			if g.Group == "SIMPLE" {
				return g.Percent
			}
		}
		return 0
	}
	if simple(idle) <= simple(busy) {
		t.Errorf("idle SIMPLE %.1f%% should exceed busy %.1f%%", simple(idle), simple(busy))
	}
	// PC-changing share balloons with branch-to-self spinning.
	pcIdle, _ := idle.PCChangingPercent()
	pcBusy, _ := busy.PCChangingPercent()
	if pcIdle <= pcBusy {
		t.Errorf("idle PC-changing %.1f%% should exceed busy %.1f%%", pcIdle, pcBusy)
	}
}

func TestHotSpots(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 6000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	hs := res.HotSpots(10)
	if len(hs) != 10 {
		t.Fatalf("got %d hot spots", len(hs))
	}
	// Ranked descending.
	for i := 1; i < len(hs); i++ {
		if hs[i].Cycles > hs[i-1].Cycles {
			t.Errorf("hot spots not sorted: %d before %d", hs[i-1].Cycles, hs[i].Cycles)
		}
	}
	// The IRD location is the single most-executed non-stall location;
	// it must be near the top with the label "ird".
	foundIRD := false
	for _, h := range hs {
		if h.Label == "ird" {
			foundIRD = true
			if h.Cycles < res.Instructions() {
				t.Errorf("ird cycles %d < instructions %d", h.Cycles, res.Instructions())
			}
		}
		if h.Label == "" {
			t.Error("hot spot with empty label")
		}
		if h.Region == "" || strings.HasPrefix(h.Region, "Region(") {
			t.Errorf("bad region %q", h.Region)
		}
	}
	if !foundIRD {
		t.Error("ird not among the top 10 hot spots")
	}
	// Asking for more than exist returns all.
	all := res.HotSpots(0)
	if len(all) < 100 {
		t.Errorf("only %d populated locations", len(all))
	}
}

func TestRunIntervalsPublic(t *testing.T) {
	s, err := RunIntervals(TimesharingA, 12000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) < 3 {
		t.Fatalf("only %d interval points", len(s.Points))
	}
	if s.MeanCPI < 7 || s.MeanCPI > 15 {
		t.Errorf("mean CPI = %.2f", s.MeanCPI)
	}
	if s.MinCPI > s.MaxCPI {
		t.Error("min > max")
	}
	if _, err := RunIntervals(TimesharingA, 1000, 0); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestSaveLoadHistogram(t *testing.T) {
	res, err := Run(RunConfig{Instructions: 4000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveHistogram(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Instructions() != res.Instructions() {
		t.Errorf("loaded %d instructions, saved %d", loaded.Instructions(), res.Instructions())
	}
	if loaded.CPI() != res.CPI() {
		t.Errorf("loaded CPI %.4f != saved %.4f", loaded.CPI(), res.CPI())
	}
	// The §4 cache study needs hardware counters, which a dump lacks.
	if cs := loaded.CacheStudy(); cs.IBRefsPerInstr != 0 {
		t.Error("dump-backed results should have no cache study")
	}
	if !strings.Contains(loaded.Report(), "Table 8") {
		t.Error("dump-backed report incomplete")
	}
}

func TestMergeHistograms(t *testing.T) {
	a, err := Run(RunConfig{Instructions: 3000, Workloads: []WorkloadID{TimesharingA}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{Instructions: 3000, Workloads: []WorkloadID{RTECommercial}})
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.SaveHistogram(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveHistogram(&bufB); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeHistograms(&bufA, &bufB)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Instructions() != a.Instructions()+b.Instructions() {
		t.Errorf("merged %d != %d + %d",
			merged.Instructions(), a.Instructions(), b.Instructions())
	}
}

func TestCacheStudyPublic(t *testing.T) {
	res, err := CacheStudy(TimesharingA, 8000, Study780Configs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Study780Configs()) {
		t.Fatalf("got %d results", len(res))
	}
	// Find the production point and a smaller cache; the smaller one
	// must miss more.
	var prod, small float64
	for _, r := range res {
		switch r.Config.Name {
		case "8KB/2way/8B":
			prod = r.ReadMissRatio
		case "1KB/2way/8B":
			small = r.ReadMissRatio
		}
	}
	if small <= prod {
		t.Errorf("1KB (%.4f) should miss more than 8KB (%.4f)", small, prod)
	}
}

func TestTBStudyPublic(t *testing.T) {
	res, err := TBStudy(TimesharingA, 8000, StudyTBConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(StudyTBConfigs()) {
		t.Fatalf("got %d results", len(res))
	}
	var small, big float64
	for _, r := range res {
		if r.Probes == 0 {
			t.Errorf("%s: no probes", r.Config.Name)
		}
		switch r.Config.Name {
		case "64e/2way":
			small = r.MissRatio
		case "512e/2way":
			big = r.MissRatio
		}
	}
	if big >= small {
		t.Errorf("512-entry TB (%.4f) should miss less than 64-entry (%.4f)", big, small)
	}
}
