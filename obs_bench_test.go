package vax780

// Trace-recorder overhead benchmarks. RunConfig.Trace rides the same
// nil-checked hook pattern as the telemetry probes, fault injectors,
// and profiler sampler, and its spans are emitted only at run and
// workload boundaries — so a run with no recorder attached must cost
// within 1% of the baseline, and CI gates BenchmarkObs/off A/B across
// base and head with vaxbench -compare (make bench-obs writes the
// BENCH_obs.json adjudication). The "on" variant prices the attached
// recorder including the JSONL export and wall strip — the exact work
// a vaxd job performs to stage trace.jsonl into its bundle.

import (
	"bytes"
	"testing"

	"vax780/internal/obs"
)

func benchObsRun(b *testing.B, attach bool) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := RunConfig{
			Instructions: 10_000,
			Workloads:    []WorkloadID{TimesharingA},
		}
		var rec *obs.Recorder
		if attach {
			rec = obs.NewRecorder("bench")
			cfg.Trace = rec
		}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.PerWorkload[0].Cycles
		if attach {
			var buf bytes.Buffer
			if err := rec.WriteJSONL(&buf); err != nil {
				b.Fatal(err)
			}
			if _, err := obs.StripWall(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(cycles), "sim_cycles/op")
}

func BenchmarkObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		// No recorder: the disabled path the <1% gate prices — every
		// span call site is a nil pointer test.
		benchObsRun(b, false)
	})
	b.Run("on", func(b *testing.B) {
		// Recorder attached: span construction at workload boundaries,
		// exact flow attribution, JSONL export, wall strip.
		benchObsRun(b, true)
	})
}

// TestTraceOverheadInterleaved is the in-process A/B: pairs of runs,
// recorder detached then attached, interleaved so host drift hits both
// arms alike. The attached recorder must stay within 25% of the
// detached run in at least one of three measurement sessions — a loose
// in-process bound (CI's cross-revision vaxbench -compare gate on
// BenchmarkObs/off is the precise one); what this test pins down is
// that span recording at workload granularity cannot be
// catastrophically slow. Each arm reduces to its minimum, and a
// session under the bound ends the test — only a genuinely slow
// recorder stays over the bound across all three sessions.
func TestTraceOverheadInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const pairs = 7
	cfg := RunConfig{Instructions: 10_000, Workloads: []WorkloadID{TimesharingA}}

	time1 := func(attach bool) float64 {
		c := cfg
		if attach {
			c.Trace = obs.NewRecorder("bench")
		}
		sw := newBenchClock()
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		return sw.Ns()
	}

	// Warm both paths once (trace generation, allocator) off the books.
	time1(false)
	time1(true)

	const sessions = 3
	best := 0.0
	for s := 0; s < sessions; s++ {
		var off, on []float64
		for i := 0; i < pairs; i++ {
			off = append(off, time1(false))
			on = append(on, time1(true))
		}
		offMin, onMin := minNs(off), minNs(on)
		overhead := 100 * (onMin - offMin) / offMin
		t.Logf("recorder overhead session %d: off %.2f ms, on %.2f ms (%+.1f%%, min of %d pairs)",
			s+1, offMin/1e6, onMin/1e6, overhead, pairs)
		if overhead <= 25 {
			return
		}
		if s == 0 || overhead < best {
			best = overhead
		}
	}
	t.Errorf("attached recorder overhead %.1f%% exceeds the 25%% in-process bound in all %d sessions",
		best, sessions)
}
