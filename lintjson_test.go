package vax780

import (
	"os"
	"testing"
)

// TestLintJSONMatchesGolden regenerates the machine-readable proof
// report and diffs it byte for byte against the committed golden. CI
// archives the regenerated report as an artifact and gates on this
// test: any change to what the analyzer proves about the shipped
// control store — coverage counts, findings, fusion/effects audit
// numbers — must arrive as a reviewed golden update.
//
// To refresh after an intentional change:
//
//	go run ./cmd/vaxlint -json > vaxlint_golden.json
func TestLintJSONMatchesGolden(t *testing.T) {
	got, err := LintJSON()
	if err != nil {
		t.Fatalf("LintJSON: %v", err)
	}
	want, err := os.ReadFile("vaxlint_golden.json")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("lint JSON report drifted from vaxlint_golden.json\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLintJSONDeterministic pins the property the golden diff depends
// on: two renders in one process are byte-identical.
func TestLintJSONDeterministic(t *testing.T) {
	a, err := LintJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := LintJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("LintJSON output is not deterministic")
	}
}
