package vax780

// Machine-readable lint report: the full static proof state of the
// shipped microprogram — findings, attribution coverage, effect-summary
// coverage, fusion audit counts — serialized deterministically so CI
// can archive it as an artifact and diff it against the committed
// golden (vaxlint_golden.json). A diff means the shipped control store
// or an analyzer pass changed what is proven; both deserve a reviewed
// golden update, never a silent drift.

import (
	"encoding/json"
	"fmt"

	"vax780/internal/ulint"
)

// LintJSONFinding is one analyzer finding in the JSON report.
type LintJSONFinding struct {
	Pass     string `json:"pass"` // finding kind (the pass that emitted it)
	Addr     string `json:"addr"` // control-store address, octal
	Flow     string `json:"flow,omitempty"`
	Severity string `json:"severity"`
	Msg      string `json:"msg"`
}

// LintJSONReport is the report envelope. Field order is fixed by the
// struct (encoding/json preserves it), findings arrive in the
// analyzer's deterministic sort order, and no map participates — the
// bytes are reproducible run to run.
type LintJSONReport struct {
	Schema int `json:"schema"`

	Words             int `json:"words"`
	Reachable         int `json:"reachable"`
	TickableBuckets   int `json:"tickable_buckets"`
	AttributedBuckets int `json:"attributed_buckets"`

	FusibleSegments   int `json:"fusible_segments"`
	SummarizedEffects int `json:"summarized_effects"`

	Superwords         int `json:"superwords"`
	ReturnEdges        int `json:"return_edges"`
	FusibleReturnEdges int `json:"fusible_return_edges"`

	Findings []LintJSONFinding `json:"findings"`
}

// lintJSONSchema versions the report shape; bump it when fields change
// meaning so a stale golden fails loudly instead of diffing confusingly.
const lintJSONSchema = 1

// buildLintJSON assembles the report from an analyzer run and the
// effects-audit counts.
func buildLintJSON(rep *ulint.Report, audit EffectsAuditReport) *LintJSONReport {
	out := &LintJSONReport{
		Schema:             lintJSONSchema,
		Words:              rep.Words,
		Reachable:          rep.Reachable,
		TickableBuckets:    rep.TickableBuckets,
		AttributedBuckets:  rep.AttributedBuckets,
		FusibleSegments:    rep.FusibleSegments,
		SummarizedEffects:  rep.SummarizedEffects,
		Superwords:         audit.Superwords,
		ReturnEdges:        audit.ReturnEdges,
		FusibleReturnEdges: audit.FusibleReturnEdges,
		Findings:           []LintJSONFinding{}, // [] not null: stable goldens
	}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, LintJSONFinding{
			Pass:     f.Kind.String(),
			Addr:     fmt.Sprintf("%05o", f.Addr),
			Flow:     f.Flow,
			Severity: f.Severity.String(),
			Msg:      f.Msg,
		})
	}
	return out
}

// LintJSON renders the shipped microprogram's full proof report as
// deterministic, newline-terminated, indented JSON. The effects audit
// runs as part of it; an audit failure is an error, not a report —
// a report must only ever describe a provable store.
func LintJSON() ([]byte, error) {
	audit, err := FusionEffectsAudit()
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(buildLintJSON(LintControlStore(), audit), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
