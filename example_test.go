package vax780_test

import (
	"fmt"
	"os"

	"vax780"
)

// ExampleRun runs the composite measurement and prints the headline CPI.
func ExampleRun() {
	res, err := vax780.Run(vax780.RunConfig{Instructions: 10_000})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The measured CPI lands near the paper's 10.593; the exact value
	// depends on the workload seeds.
	fmt.Println(res.CPI() > 8 && res.CPI() < 14)
	// Output: true
}

// ExampleRunCustom measures a user-defined decimal-heavy workload.
func ExampleRunCustom() {
	res, err := vax780.RunCustom(vax780.CustomWorkload{
		Name:         "COBOL",
		Seed:         1,
		DecimalScale: 30,
	}, 10_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	var decimal float64
	for _, g := range res.OpcodeGroups() {
		if g.Group == "DECIMAL" {
			decimal = g.Percent
		}
	}
	fmt.Println(decimal > 0.3) // far above the composite's 0.03%
	// Output: true
}

// ExampleCompareTraceDriven quantifies the paper's methodological
// argument: the share of processor time a trace-driven model cannot see.
func ExampleCompareTraceDriven() {
	cmp, err := vax780.CompareTraceDriven(vax780.TimesharingA, 10_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(cmp.EstimatedCPI < cmp.MeasuredCPI)
	// Output: true
}

// ExampleResults_SaveHistogram shows the dump/reload workflow: measure,
// save the board readout, analyze offline.
func ExampleResults_SaveHistogram() {
	res, err := vax780.Run(vax780.RunConfig{
		Instructions: 5_000,
		Workloads:    []vax780.WorkloadID{vax780.TimesharingA},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	f, err := os.CreateTemp("", "*.upch")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.Remove(f.Name())
	if err := res.SaveHistogram(f); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := f.Seek(0, 0); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := vax780.LoadHistogram(f)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(loaded.Instructions() == res.Instructions())
	// Output: true
}

// ExampleTBStudy sweeps translation buffer organizations over one
// captured probe trace (the companion paper's methodology).
func ExampleTBStudy() {
	results, err := vax780.TBStudy(vax780.TimesharingA, 8_000, []vax780.TBConfig{
		{Name: "small", Entries: 32, Ways: 2},
		{Name: "production", Entries: 128, Ways: 2},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(results[1].MissRatio < results[0].MissRatio)
	// Output: true
}
