GO ?= go

.PHONY: all fmt fmt-check vet lint build test race bench bench-telemetry bench-faults bench-parallel bench-prof bench-obs bench-vaxd bench-fusion bench-fusion-hooks bench-all bench-smoke vaxd-smoke experiments clean

all: fmt-check vet lint build test

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full static-analysis gate: go vet, the repo's Go-invariant
# multichecker (internal/golint via cmd/vaxvet), and the control-store
# analyzer (internal/ulint via cmd/vaxlint) proving complete CPI
# attribution over the shipped microprogram.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/vaxvet
	$(GO) run ./cmd/vaxlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# The telemetry-overhead gate; compare against BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 20x -count 3 .

# The fault-hook overhead gate; compare against BENCH_faults.json
# (disabled hooks must stay within 1% of the telemetry-era baseline).
bench-faults:
	$(GO) test -run xxx -bench BenchmarkFaults -benchtime 20x -count 3 .

# The parallel-run scaling curve and hot-loop throughput gate; compare
# against BENCH_parallel.json (which records the measurement method).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallelRun|BenchmarkSimulatorThroughput' -benchtime 10x -count 3 .

# The profiler-overhead gate; compare against BENCH_prof.json (the
# disabled sampler hook must stay within 1% of the fault-era baseline).
bench-prof:
	$(GO) test -run xxx -bench BenchmarkProf -benchtime 20x -count 3 .

# The trace-recorder gate: BenchmarkObs prices a run with the span
# recorder detached (the disabled path — every call site is one nil
# pointer test) and attached (span construction, exact flow
# attribution, JSONL export, wall strip — the work a vaxd job does to
# stage trace.jsonl). The two arms alternate at process granularity
# with the order swapped halfway — the interleaved A/B method recorded
# in BENCH_obs.json — then reduce to pooled medians and adjudicate via
# vaxbench -compare: the attached recorder must stay within 25%% of a
# detached run. The <1%% disabled-path gate is cross-revision and
# lives in CI (recorder-overhead job: base BenchmarkObs/off — or the
# fault/prof-era baselines before this layer existed — against head's,
# adjudicated at the same threshold as bench-faults/bench-prof).
bench-obs:
	@set -e; \
	$(GO) test -c -o /tmp/vax_obs.test .; \
	: > /tmp/obs_off.txt; : > /tmp/obs_on.txt; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_obs.test -test.run xxx -test.bench '^BenchmarkObs$$/^off$$' -test.benchtime 10x >> /tmp/obs_off.txt; \
		/tmp/vax_obs.test -test.run xxx -test.bench '^BenchmarkObs$$/^on$$' -test.benchtime 10x >> /tmp/obs_on.txt; \
	done; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_obs.test -test.run xxx -test.bench '^BenchmarkObs$$/^on$$' -test.benchtime 10x >> /tmp/obs_on.txt; \
		/tmp/vax_obs.test -test.run xxx -test.bench '^BenchmarkObs$$/^off$$' -test.benchtime 10x >> /tmp/obs_off.txt; \
	done; \
	rm -f /tmp/obs_detached.json /tmp/obs_attached.json; \
	$(GO) run ./cmd/vaxbench -history /tmp/obs_detached.json -label detached < /tmp/obs_off.txt; \
	sed 's|^BenchmarkObs/on|BenchmarkObs/off|' /tmp/obs_on.txt \
		| $(GO) run ./cmd/vaxbench -history /tmp/obs_attached.json -label attached; \
	$(GO) run ./cmd/vaxbench -compare -threshold 25 /tmp/obs_detached.json /tmp/obs_attached.json

# The fusion-speedup gate: BenchmarkFusion prices the no-hook hot loop
# fused (the default) and interpreted (NoFusion) over one shared
# generated trace. The two variants alternate at process granularity,
# order swapped halfway — the interleaved A/B method recorded in
# BENCH_fusion.json — then reduce to pooled medians and adjudicate via
# vaxbench -compare: the superword engine must never be slower than
# the interpreter it replaces. Twelve pooled-median samples a side and
# a 3%% threshold keep shared-runner noise (one 100ms CPU-steal burst
# inflates a whole process sample) from tripping the gate; the
# authoritative base-vs-head adjudication lives in BENCH_fusion.json.
bench-fusion:
	@set -e; \
	$(GO) test -c -o /tmp/vax_fusion.test .; \
	: > /tmp/fusion_on.txt; : > /tmp/fusion_off.txt; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusion$$/^on$$' -test.benchtime 10x >> /tmp/fusion_on.txt; \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusion$$/^off$$' -test.benchtime 10x >> /tmp/fusion_off.txt; \
	done; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusion$$/^off$$' -test.benchtime 10x >> /tmp/fusion_off.txt; \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusion$$/^on$$' -test.benchtime 10x >> /tmp/fusion_on.txt; \
	done; \
	rm -f /tmp/fusion_interp.json /tmp/fusion_fused.json; \
	sed 's|^BenchmarkFusion/off|BenchmarkFusion/on|' /tmp/fusion_off.txt \
		| $(GO) run ./cmd/vaxbench -history /tmp/fusion_interp.json -label interpreted; \
	$(GO) run ./cmd/vaxbench -history /tmp/fusion_fused.json -label fused < /tmp/fusion_on.txt; \
	$(GO) run ./cmd/vaxbench -compare -threshold 3 /tmp/fusion_interp.json /tmp/fusion_fused.json

# The hooks-cell fusion gate: the same interleaved A/B as bench-fusion
# but with the full telemetry layer attached (interval recorder, Chrome
# tracer, flight recorder) — the cell that interpreted 100%% of its
# cycles before the effect-summary engine proved superword replay legal
# under hooks. The adjudication is the same no-regression tripwire:
# fusing under telemetry must never be slower than interpreting under
# telemetry; the recorded speedup lives in BENCH_fusion.json.
bench-fusion-hooks:
	@set -e; \
	$(GO) test -c -o /tmp/vax_fusion.test .; \
	: > /tmp/fusionh_on.txt; : > /tmp/fusionh_off.txt; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusionHooks$$/^on$$' -test.benchtime 10x >> /tmp/fusionh_on.txt; \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusionHooks$$/^off$$' -test.benchtime 10x >> /tmp/fusionh_off.txt; \
	done; \
	for i in 1 2 3 4 5 6; do \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusionHooks$$/^off$$' -test.benchtime 10x >> /tmp/fusionh_off.txt; \
		/tmp/vax_fusion.test -test.run xxx -test.bench '^BenchmarkFusionHooks$$/^on$$' -test.benchtime 10x >> /tmp/fusionh_on.txt; \
	done; \
	rm -f /tmp/fusionh_interp.json /tmp/fusionh_fused.json; \
	sed 's|^BenchmarkFusionHooks/off|BenchmarkFusionHooks/on|' /tmp/fusionh_off.txt \
		| $(GO) run ./cmd/vaxbench -history /tmp/fusionh_interp.json -label interpreted-hooks; \
	$(GO) run ./cmd/vaxbench -history /tmp/fusionh_fused.json -label fused-hooks < /tmp/fusionh_on.txt; \
	$(GO) run ./cmd/vaxbench -compare -threshold 3 /tmp/fusionh_interp.json /tmp/fusionh_fused.json

# The service cache-hit gate; compare against BENCH_vaxd.json (a
# regression past the generous threshold means resubmissions started
# re-simulating instead of hitting the content-addressed store).
bench-vaxd:
	$(GO) test -run xxx -bench BenchmarkCacheHit -benchtime 200x -count 3 ./internal/jobs

# End-to-end service smoke: build vaxd, start it on a scratch data
# dir, run the walkthrough client twice — the second submission must
# be answered from the content-addressed cache — then SIGTERM the
# daemon and require a clean drained exit.
vaxd-smoke:
	@set -e; \
	dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/vaxd ./cmd/vaxd; \
	$(GO) build -o $$dir/vaxdclient ./examples/vaxdclient; \
	$$dir/vaxd -addr 127.0.0.1:8788 -data $$dir/data & pid=$$!; \
	for i in $$(seq 1 100); do \
		curl -fs -o /dev/null http://127.0.0.1:8788/healthz 2>/dev/null && break; \
		sleep 0.1; \
	done; \
	$$dir/vaxdclient -addr 127.0.0.1:8788 -n 5000 -workloads TIMESHARING-A; \
	out=$$($$dir/vaxdclient -addr 127.0.0.1:8788 -n 5000 -workloads TIMESHARING-A); \
	echo "$$out" | grep -q 'cached=true' || \
		{ echo "vaxd-smoke: resubmission was not served from cache"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "vaxd-smoke: ok (cache hit + clean drain)"

# The longitudinal record: run the three per-change benchmark suites
# and append one dated medians entry to BENCH_history.json (cmd/vaxbench).
# LABEL names the change being measured.
bench-all:
	$(GO) test -run xxx -bench 'BenchmarkTelemetry|BenchmarkFaults|BenchmarkParallelRun|BenchmarkProf|BenchmarkObs' \
		-benchtime 20x -count 3 . | $(GO) run ./cmd/vaxbench -label "$(LABEL)"

# CI's cheap variant: one iteration of each suite piped through the
# vaxbench parser (into a throwaway history) to prove the toolchain works.
bench-smoke:
	@rm -f /tmp/vaxbench_smoke.json
	$(GO) test -run xxx -bench 'BenchmarkTelemetry|BenchmarkFaults|BenchmarkParallelRun|BenchmarkProf|BenchmarkObs' \
		-benchtime 1x -count 1 . | $(GO) run ./cmd/vaxbench -history /tmp/vaxbench_smoke.json -label smoke

experiments:
	$(GO) run ./cmd/vaxtables -n 200000 -o EXPERIMENTS.md

clean:
	$(GO) clean ./...
