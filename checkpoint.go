package vax780

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"

	"vax780/internal/mem"
	"vax780/internal/upc"
)

// Checkpoint format. A composite run writes one of these atomically
// after each completed workload, so a measurement host killed
// mid-composite resumes with the completed experiments intact and their
// histograms bit-identical. Per-workload histograms are embedded in the
// existing UPCH dump format, which carries this format's versioning for
// the bulk of the data.
//
//	magic   [4]byte  "UPCK"
//	version uint16   1
//	config  uint64   FNV-64a hash of the measurement-relevant RunConfig
//	count   uint32   completed workload records
//	record:
//	  workload   uint32
//	  instrs     uint64
//	  cycles     uint64
//	  ibconsumed uint64
//	  memstats   uint16 field count, then that many uint64 fields
//	  histogram  embedded UPCH dump
//	crc32   uint32   IEEE, over everything above
const (
	ckptMagic   = "UPCK"
	ckptVersion = 1
)

// ErrCheckpointMismatch reports a checkpoint written under a different
// measurement configuration than the resuming run's.
var ErrCheckpointMismatch = errors.New("vax780: checkpoint does not match run configuration")

// ckptRecord is one completed workload: everything Run accumulates from
// it, so a resumed composite is bit-identical to an uninterrupted one.
type ckptRecord struct {
	Workload   WorkloadID
	Instrs     uint64
	Cycles     uint64
	IBConsumed uint64
	Mem        mem.Stats
	Hist       *upc.Histogram
}

// ConfigHash returns the run's measurement-configuration fingerprint:
// the same FNV-64a hash the checkpoint format embeds and the run ledger
// reports as "config". Two configurations with equal hashes measure the
// same thing — same workloads, lengths, and hardware parameters — so
// their composite histograms are bit-identical; that equivalence is
// what the vaxd result cache keys on (extended there with the fault
// plan's identity, which perturbs measured data but is deliberately
// outside the checkpoint fingerprint).
func (c RunConfig) ConfigHash() uint64 {
	c.fill()
	return c.checkpointHash()
}

// checkpointHash fingerprints the parts of the configuration that
// determine the measured data. Telemetry and fault settings are
// deliberately excluded: a run killed under fault injection may be
// resumed with observation or injection reconfigured — the completed
// workloads' histograms are data either way.
func (c *RunConfig) checkpointHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|instr=%d|wl=%v|cache=%d/%d|tb=%d|miss=%d|wb=%d|ctx=%d|strict=%t|overlap=%t",
		ckptVersion, c.Instructions, c.Workloads,
		c.CacheBytes, c.CacheWays, c.TBEntries, c.MissLatency, c.WriteBusy,
		c.CtxSwitchHeadway, c.Strict, c.OverlapDecode)
	return h.Sum64()
}

// memStatsFields flattens mem.Stats for serialization, in declaration
// order. Adding a field to mem.Stats must extend this list (the field
// count written per record catches a mismatch as corruption).
func memStatsFields(s *mem.Stats) []uint64 {
	return []uint64{
		s.DReads, s.DWrites, s.DReadMisses,
		s.IReads, s.IReadMisses, s.IBytes,
		s.DTBMisses, s.ITBMisses,
		s.PTEReads, s.PTEReadMisses,
		s.ReadStall, s.WriteStall, s.SBIBusy, s.Unaligned,
	}
}

func setMemStatsFields(s *mem.Stats, v []uint64) {
	s.DReads, s.DWrites, s.DReadMisses = v[0], v[1], v[2]
	s.IReads, s.IReadMisses, s.IBytes = v[3], v[4], v[5]
	s.DTBMisses, s.ITBMisses = v[6], v[7]
	s.PTEReads, s.PTEReadMisses = v[8], v[9]
	s.ReadStall, s.WriteStall, s.SBIBusy, s.Unaligned = v[10], v[11], v[12], v[13]
}

// writeCheckpoint atomically replaces the checkpoint file at path with
// the given completed records.
func writeCheckpoint(path string, configHash uint64, recs []ckptRecord) error {
	return upc.AtomicWriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		crc := crc32.NewIEEE()
		mw := io.MultiWriter(bw, crc)

		if _, err := mw.Write([]byte(ckptMagic)); err != nil {
			return err
		}
		hdr := make([]byte, 14)
		binary.LittleEndian.PutUint16(hdr[0:], ckptVersion)
		binary.LittleEndian.PutUint64(hdr[2:], configHash)
		binary.LittleEndian.PutUint32(hdr[10:], uint32(len(recs)))
		if _, err := mw.Write(hdr); err != nil {
			return err
		}
		for i := range recs {
			if err := writeCkptRecord(mw, &recs[i]); err != nil {
				return err
			}
		}
		sum := make([]byte, 4)
		binary.LittleEndian.PutUint32(sum, crc.Sum32())
		if _, err := bw.Write(sum); err != nil {
			return err
		}
		return bw.Flush()
	})
}

func writeCkptRecord(w io.Writer, r *ckptRecord) error {
	stats := memStatsFields(&r.Mem)
	buf := make([]byte, 4+8*3+2+8*len(stats))
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.Workload))
	binary.LittleEndian.PutUint64(buf[4:], r.Instrs)
	binary.LittleEndian.PutUint64(buf[12:], r.Cycles)
	binary.LittleEndian.PutUint64(buf[20:], r.IBConsumed)
	binary.LittleEndian.PutUint16(buf[28:], uint16(len(stats)))
	for i, v := range stats {
		binary.LittleEndian.PutUint64(buf[30+8*i:], v)
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	_, err := r.Hist.WriteTo(w)
	return err
}

// readCheckpoint loads a checkpoint, verifying its checksum and that it
// was written under the same measurement configuration. A missing file
// returns (nil, nil): nothing to resume.
func readCheckpoint(path string, configHash uint64) ([]ckptRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	crc := crc32.NewIEEE()
	tr := io.TeeReader(bufio.NewReader(f), crc)

	head := make([]byte, 18)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, ckptReadErr("header", err)
	}
	if string(head[:4]) != ckptMagic {
		return nil, ckptCorrupt("bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != ckptVersion {
		return nil, fmt.Errorf("%w: checkpoint version %d, reader supports %d",
			upc.ErrUnsupportedVersion, v, ckptVersion)
	}
	if h := binary.LittleEndian.Uint64(head[6:]); h != configHash {
		return nil, fmt.Errorf("%w: config hash %016x, run has %016x",
			ErrCheckpointMismatch, h, configHash)
	}
	count := binary.LittleEndian.Uint32(head[14:])
	if count > 1024 {
		return nil, ckptCorrupt("implausible record count %d", count)
	}

	recs := make([]ckptRecord, 0, count)
	for i := uint32(0); i < count; i++ {
		r, err := readCkptRecord(tr)
		if err != nil {
			return nil, err
		}
		recs = append(recs, *r)
	}
	want := crc.Sum32() // captured before the checksum bytes enter the tee
	sum := make([]byte, 4)
	if _, err := io.ReadFull(tr, sum); err != nil {
		return nil, ckptReadErr("checksum", err)
	}
	if got := binary.LittleEndian.Uint32(sum); got != want {
		return nil, ckptCorrupt("checksum mismatch: file %08x, computed %08x", got, want)
	}
	return recs, nil
}

func readCkptRecord(r io.Reader) (*ckptRecord, error) {
	head := make([]byte, 30)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, ckptReadErr("record header", err)
	}
	rec := &ckptRecord{
		Workload:   WorkloadID(binary.LittleEndian.Uint32(head[0:])),
		Instrs:     binary.LittleEndian.Uint64(head[4:]),
		Cycles:     binary.LittleEndian.Uint64(head[12:]),
		IBConsumed: binary.LittleEndian.Uint64(head[20:]),
	}
	nf := int(binary.LittleEndian.Uint16(head[28:]))
	if nf != len(memStatsFields(&rec.Mem)) {
		return nil, ckptCorrupt("memory-counter field count %d, want %d",
			nf, len(memStatsFields(&rec.Mem)))
	}
	buf := make([]byte, 8*nf)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, ckptReadErr("memory counters", err)
	}
	vals := make([]uint64, nf)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	setMemStatsFields(&rec.Mem, vals)
	h, err := upc.ReadHistogram(r)
	if err != nil {
		return nil, err
	}
	rec.Hist = h
	return rec, nil
}

func ckptCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{upc.ErrCorrupt}, args...)...)
}

func ckptReadErr(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ckptCorrupt("truncated while reading %s: %v", what, err)
	}
	return fmt.Errorf("vax780: reading checkpoint %s: %w", what, err)
}
