package golint

import "testing"

func atomicAnalyzer() *Analyzer {
	return AtomicWriteAnalyzer(map[string]bool{"p": true})
}

func TestAtomicWriteBansWriteFile(t *testing.T) {
	src := `package p

import "os"

func commit(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`
	diags := runOn(t, src, atomicAnalyzer())
	wantMsgs(t, diags, "os.WriteFile commits bytes with no fsync")
}

func TestAtomicWriteRequiresSyncOnCreate(t *testing.T) {
	src := `package p

import "os"

func bare(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data)
	return f.Close()
}

func synced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
`
	diags := runOn(t, src, atomicAnalyzer())
	wantMsgs(t, diags, "os.Create with no Sync in the same function")
}

func TestAtomicWriteRequiresSyncOnRename(t *testing.T) {
	src := `package p

import "os"

func publish(tmp, dst string) error {
	return os.Rename(tmp, dst)
}

func atomic(tmp, dst string, data []byte) error {
	f, err := os.CreateTemp("", "x")
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(f.Name(), dst)
}
`
	diags := runOn(t, src, atomicAnalyzer())
	wantMsgs(t, diags, "os.Rename publishes a file whose bytes were never synced")
}

func TestAtomicWriteAppendJournalExempt(t *testing.T) {
	// Append-only journals sync per record at the write site; the open
	// itself needs no same-function Sync.
	src := `package p

import "os"

func openJournal(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func openTruncate(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}
`
	diags := runOn(t, src, atomicAnalyzer())
	wantMsgs(t, diags, "os.OpenFile with no Sync in the same function")
}

func TestAtomicWriteScopedToTargetPackages(t *testing.T) {
	src := `package p

import "os"

func anything(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`
	an := AtomicWriteAnalyzer(map[string]bool{"q": true})
	if diags := runOn(t, src, an); len(diags) != 0 {
		t.Fatalf("non-target package should be skipped, got %v", diags)
	}
}
