package golint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc type-checks one synthetic source file as package path "p" and
// wraps it as a Package, bypassing the module loader.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func runOn(t *testing.T, src string, an *Analyzer) []Diagnostic {
	t.Helper()
	return Run([]*Package{loadSrc(t, src)}, []*Analyzer{an})
}

func wantMsgs(t *testing.T, diags []Diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(substrs), diags)
	}
	for i, want := range substrs {
		if !strings.Contains(diags[i].Msg, want) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Msg, want)
		}
	}
}

const hotSrc = `package p

type Hook interface{ Fire(int) }

type M struct {
	Probe Hook
	buf   []int
	n     int
}

func (m *M) tick() {
	m.n++
	if m.Probe != nil {
		m.Probe.Fire(m.n)
	}
}

func (m *M) slow() {
	m.buf = append(m.buf, m.n)
	m.Probe.Fire(m.n)
}
`

func TestHotPathCleanFunction(t *testing.T) {
	an := HotPathAnalyzer([]HotTarget{{PkgPath: "p", Recv: "M", Func: "tick"}})
	if diags := runOn(t, hotSrc, an); len(diags) != 0 {
		t.Fatalf("guarded tick should be clean, got %v", diags)
	}
}

func TestHotPathFlagsTargetOnly(t *testing.T) {
	// slow allocates and makes an unguarded interface call, but only when
	// it is named as a hot target.
	an := HotPathAnalyzer([]HotTarget{{PkgPath: "p", Recv: "M", Func: "slow"}})
	diags := runOn(t, hotSrc, an)
	wantMsgs(t, diags,
		"append allocates on the per-cycle path",
		"unguarded interface call m.Probe.Fire")
}

func TestHotPathAllocForms(t *testing.T) {
	src := `package p

type T struct{ a, b int }

type M struct{ s string }

func (m *M) tick() {
	_ = T{1, 2}
	_ = make([]int, 4)
	_ = new(T)
	_ = func() int { return 1 }
	_ = m.s + "x"
	defer func() {}()
	go func() {}()
}
`
	an := HotPathAnalyzer([]HotTarget{{PkgPath: "p", Recv: "M", Func: "tick"}})
	diags := runOn(t, src, an)
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Msg)
	}
	joined := strings.Join(kinds, "\n")
	for _, want := range []string{
		"composite literal", "make allocates", "new allocates",
		"function literal", "string concatenation", "defer on the per-cycle path",
		"goroutine launch",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestHotPathOtherPackageIgnored(t *testing.T) {
	an := HotPathAnalyzer([]HotTarget{{PkgPath: "q", Recv: "M", Func: "slow"}})
	if diags := runOn(t, hotSrc, an); len(diags) != 0 {
		t.Fatalf("target in another package should not match, got %v", diags)
	}
}

const probeSrc = `package p

type Hook interface{ Fire(int) }

type M struct {
	Probe Hook
	tel   Hook
	Fault Hook
	n     int
}

func (m *M) guarded() {
	if m.Probe != nil {
		m.Probe.Fire(1)
	}
	if m.tel != nil && m.n > 0 {
		m.tel.Fire(2)
	}
}

func (m *M) unguarded() {
	m.Probe.Fire(3)
	if m.n > 0 {
		m.tel.Fire(4)
	}
}

func (m *M) fault() {
	m.Fault.Fire(5)
}
`

func TestProbeGuardGuardedClean(t *testing.T) {
	diags := runOn(t, probeSrc, ProbeGuardAnalyzer())
	wantMsgs(t, diags,
		"m.Probe.Fire without a dominating nil check",
		"m.tel.Fire without a dominating nil check")
}

func TestProbeGuardIgnoresOtherFields(t *testing.T) {
	// m.Fault is interface-typed but not a probe field; the guard for it
	// lives in its caller by construction.
	for _, d := range runOn(t, probeSrc, ProbeGuardAnalyzer()) {
		if strings.Contains(d.Msg, "Fault") {
			t.Errorf("Fault field should be exempt: %v", d)
		}
	}
}

func TestProbeGuardElseBranchNotGuarded(t *testing.T) {
	src := `package p

type Hook interface{ Fire() }

type M struct{ Probe Hook }

func (m *M) f() {
	if m.Probe != nil {
		_ = 1
	} else {
		m.Probe.Fire()
	}
}
`
	diags := runOn(t, src, ProbeGuardAnalyzer())
	wantMsgs(t, diags, "m.Probe.Fire without a dominating nil check")
}

func TestDeterminism(t *testing.T) {
	src := `package p

import (
	"math/rand"
	"time"
)

func bad() (int64, int) {
	t := time.Now()
	_ = time.Since(t)
	return t.Unix(), rand.Intn(6)
}

func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	time.Sleep(time.Millisecond)
	return r.Intn(6)
}
`
	diags := runOn(t, src, DeterminismAnalyzer())
	wantMsgs(t, diags,
		"time.Now reads the wall clock",
		"time.Since reads the wall clock",
		"rand.Intn draws from the global generator")
}

// TestRepoInvariants is the real gate: every production package of the
// module must come through the full analyzer suite with zero
// diagnostics. This is the programmatic equivalent of cmd/vaxvet.
func TestRepoInvariants(t *testing.T) {
	root, modPath, err := ModuleRoot("")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	paths, err := ListPackages(root, modPath)
	if err != nil {
		t.Fatalf("ListPackages: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages (%d): %v", len(paths), paths)
	}
	pkgs, err := LoadPackages(root, modPath, paths)
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

func TestListPackagesFindsKnown(t *testing.T) {
	root, modPath, err := ModuleRoot("")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	paths, err := ListPackages(root, modPath)
	if err != nil {
		t.Fatalf("ListPackages: %v", err)
	}
	has := func(p string) bool {
		for _, q := range paths {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, want := range []string{modPath, modPath + "/internal/ebox", modPath + "/internal/golint"} {
		if !has(want) {
			t.Errorf("ListPackages missing %s in %v", want, paths)
		}
	}
}
