package golint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotTarget names one function on the per-cycle hot path: the EBOX and
// IBOX tick functions and the monitor's inlined count pulse, which
// together run once per simulated 200 ns cycle. Recv is the receiver
// type name ("" for plain functions).
type HotTarget struct {
	PkgPath string
	Recv    string
	Func    string
}

// DefaultHotTargets is the repository's per-cycle path.
var DefaultHotTargets = []HotTarget{
	{PkgPath: "vax780/internal/ebox", Recv: "EBOX", Func: "tick"},
	{PkgPath: "vax780/internal/ebox", Recv: "EBOX", Func: "fusedReplay"},
	{PkgPath: "vax780/internal/ibox", Recv: "IBox", Func: "Tick"},
	{PkgPath: "vax780/internal/ibox", Recv: "IBox", Func: "TickRun"},
	{PkgPath: "vax780/internal/upc", Recv: "Monitor", Func: "Fast"},
	{PkgPath: "vax780/internal/upc", Recv: "Monitor", Func: "TickFast"},
	{PkgPath: "vax780/internal/upc", Recv: "Monitor", Func: "TickRun"},
	{PkgPath: "vax780/internal/upc", Recv: "FlightRecorder", Func: "Record"},
	{PkgPath: "vax780/internal/upc", Recv: "FlightRecorder", Func: "RecordRun"},
	{PkgPath: "vax780/internal/upc", Recv: "Sampler", Func: "Sample"},
	{PkgPath: "vax780/internal/upc", Recv: "Sampler", Func: "SampleRun"},
}

// HotPathAnalyzer flags heap allocations, defers, goroutine launches and
// unguarded interface-method calls inside the named hot functions. These
// functions execute once per simulated cycle — hundreds of millions of
// times per composite run — so an allocation or an un-devirtualized
// interface dispatch there is a measured regression (the PR that
// devirtualized the monitor hook bought ~18% on the cycle loop). Guarded
// interface calls (`if e.Probe != nil { e.Probe.Cycle(...) }`) are the
// sanctioned escape hatch for optional hooks.
func HotPathAnalyzer(targets []HotTarget) *Analyzer {
	an := &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocations and unguarded interface calls in per-cycle functions",
	}
	an.Run = func(pass *Pass) {
		want := make(map[[2]string]bool)
		for _, t := range targets {
			if t.PkgPath == pass.Pkg.Path {
				want[[2]string{t.Recv, t.Func}] = true
			}
		}
		if len(want) == 0 {
			return
		}
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !want[[2]string{recvTypeName(fd), fd.Name.Name}] {
					continue
				}
				checkHotBody(pass, fd)
			}
		}
	}
	return an
}

// recvTypeName extracts the receiver's type name, stripping pointers.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch v := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(v.Pos(), "%s: composite literal allocates on the per-cycle path", name)
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "%s: function literal allocates on the per-cycle path", name)
		case *ast.DeferStmt:
			pass.Reportf(v.Pos(), "%s: defer on the per-cycle path", name)
		case *ast.GoStmt:
			pass.Reportf(v.Pos(), "%s: goroutine launch on the per-cycle path", name)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(pass.Pkg, v.X) {
				pass.Reportf(v.Pos(), "%s: string concatenation allocates on the per-cycle path", name)
			}
		case *ast.CallExpr:
			for _, b := range []string{"make", "new", "append"} {
				if IsBuiltinCall(pass.Pkg, v, b) {
					pass.Reportf(v.Pos(), "%s: %s allocates on the per-cycle path", name, b)
				}
			}
			if recv, ok := InterfaceReceiver(pass.Pkg, v); ok && !NilGuarded(stack, recv) {
				pass.Reportf(v.Pos(),
					"%s: unguarded interface call %s.%s on the per-cycle path; devirtualize or nil-guard it",
					name, recv, v.Fun.(*ast.SelectorExpr).Sel.Name)
			}
		}
	})
}

func isStringType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// probeFieldNames are the optional-hook fields the telemetry layer
// attaches: nil on an uninstrumented machine by design, so every call
// through them must be dominated by a nil check. (The monitor's fault
// hook is guarded one frame up by construction and is not in this set.)
var probeFieldNames = map[string]bool{
	"Probe": true,
	"probe": true,
	"tel":   true,
}

// ProbeGuardAnalyzer enforces the nil-check-before-probe pattern
// everywhere: a method call through a Probe/probe/tel interface field
// must sit inside `if <field> != nil { ... }`. The hooks are nil unless
// telemetry is attached, so an unguarded call is a latent panic on
// every uninstrumented run.
func ProbeGuardAnalyzer() *Analyzer {
	an := &Analyzer{
		Name: "probeguard",
		Doc:  "require nil guards on telemetry probe hook calls",
	}
	an.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			WalkStack(file, func(n ast.Node, stack []ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				field, ok := sel.X.(*ast.SelectorExpr)
				if !ok || !probeFieldNames[field.Sel.Name] {
					return
				}
				recv, isIface := InterfaceReceiver(pass.Pkg, call)
				if !isIface {
					return
				}
				if !NilGuarded(stack, recv) {
					pass.Reportf(call.Pos(),
						"call to probe hook %s.%s without a dominating nil check",
						recv, sel.Sel.Name)
				}
			})
		}
	}
	return an
}

// bannedRandFuncs: package-level math/rand calls draw from the global
// generator — shared, lockable, unseedable-per-run state that breaks
// replayable runs. Constructing an explicitly seeded generator is the
// sanctioned pattern, so the constructors stay legal.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// DeterminismExemptions names the packages allowed to read the wall
// clock. The run ledger is the repository's one sanctioned home for
// host-side timestamps, rates, and ETAs (they describe the host, never
// the simulation, and are stripped by runlog.StripWallClock before any
// determinism comparison); vaxtop renders those live observations and
// vaxbench datestamps benchmark-history rows. Everything else —
// including the whole simulation, the pools, the supervisor, and the
// telemetry layer — remains clock-free, which is what keeps runs pure
// functions of seed and configuration.
var DeterminismExemptions = map[string]bool{
	"vax780/internal/runlog": true,
	"vax780/cmd/vaxtop":      true,
	"vax780/cmd/vaxbench":    true,
	"vax780/cmd/vaxprof":     true,

	// The vaxd service layer: admission token buckets refill on wall
	// time and job deadlines are wall deadlines. Both sit strictly
	// outside the runs they admit — a job's simulated bytes stay a pure
	// function of its spec, which is what lets the service serve cached
	// bundles as authoritative results.
	"vax780/internal/jobs": true,
	"vax780/cmd/vaxd":      true,
}

// DeterminismAnalyzer flags wall-clock reads (time.Now/Since/Until) and
// global math/rand draws. Every run of the simulator is specified to be
// a pure function of its seed and configuration — that is what makes
// histograms diffable across machines and crashes replayable by the
// supervisor — and wall-clock or global-generator input silently breaks
// it. time.Sleep and time.Duration remain legal: pacing a retry loop
// consumes wall time but does not let it into the simulation. The
// packages in DeterminismExemptions (the observability layer's
// wall-clock home) are skipped.
func DeterminismAnalyzer() *Analyzer {
	an := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads and global rand draws in run paths",
	}
	an.Run = func(pass *Pass) {
		if DeterminismExemptions[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, name, ok := PkgFuncCall(pass.Pkg, call)
				if !ok {
					return true
				}
				switch {
				case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock; runs must be functions of seed and config", name)
				case path == "math/rand" && !allowedRandFuncs[name]:
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global generator; use a seeded *rand.Rand", name)
				}
				return true
			})
		}
	}
	return an
}

// DefaultAtomicWritePaths names the packages whose file commits must be
// crash-safe: the result store (published bundles survive a crash
// mid-commit), the histogram persistence layer (upc.AtomicWriteFile is
// the blessed staging-write → fsync → rename pattern), and the root
// package's checkpoint writer.
var DefaultAtomicWritePaths = map[string]bool{
	"vax780":                  true,
	"vax780/internal/castore": true,
	"vax780/internal/upc":     true,
}

// AtomicWriteAnalyzer proves the durable-commit discipline in the named
// packages: result and checkpoint files reach disk through staging
// write → fsync → atomic rename, never a bare write. Concretely, per
// function body:
//
//   - os.WriteFile is banned outright — it commits bytes at their final
//     path with no fsync, so a crash can publish a torn file;
//   - os.Create / os.CreateTemp / os.OpenFile must be accompanied by a
//     .Sync() call in the same function, unless the open flags include
//     O_APPEND (append-only journals sync per record at the call site
//     that writes them);
//   - os.Rename — the publish step — likewise requires a .Sync() in the
//     same function, so nothing is renamed into place before its bytes
//     (or the directory entry) are durable.
func AtomicWriteAnalyzer(paths map[string]bool) *Analyzer {
	an := &Analyzer{
		Name: "atomicwrite",
		Doc:  "require staging-write, fsync, atomic-rename on result and checkpoint commits",
	}
	an.Run = func(pass *Pass) {
		if !paths[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkAtomicWrites(pass, fd)
			}
		}
	}
	return an
}

func checkAtomicWrites(pass *Pass, fd *ast.FuncDecl) {
	// One scan for the sanctioning Sync call, one for the os file
	// operations it licenses.
	hasSync := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
				hasSync = true
			}
		}
		return true
	})
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, fn, ok := PkgFuncCall(pass.Pkg, call)
		if !ok || path != "os" {
			return true
		}
		switch fn {
		case "WriteFile":
			pass.Reportf(call.Pos(),
				"%s: os.WriteFile commits bytes with no fsync; stage, Sync, then rename into place", name)
		case "Create", "CreateTemp":
			if !hasSync {
				pass.Reportf(call.Pos(),
					"%s: os.%s with no Sync in the same function; a crash can publish a torn file", name, fn)
			}
		case "OpenFile":
			if openFlagsInclude(call, "O_APPEND") {
				return true
			}
			if !hasSync {
				pass.Reportf(call.Pos(),
					"%s: os.OpenFile with no Sync in the same function; a crash can publish a torn file", name)
			}
		case "Rename":
			if !hasSync {
				pass.Reportf(call.Pos(),
					"%s: os.Rename publishes a file whose bytes were never synced in this function", name)
			}
		}
		return true
	})
}

// openFlagsInclude reports whether an os.OpenFile call's flag argument
// mentions the named os flag constant.
func openFlagsInclude(call *ast.CallExpr, flag string) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == flag {
			found = true
		}
		return true
	})
	return found
}

// All returns the repository's analyzer suite with default
// configuration.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAnalyzer(DefaultHotTargets),
		ProbeGuardAnalyzer(),
		DeterminismAnalyzer(),
		AtomicWriteAnalyzer(DefaultAtomicWritePaths),
	}
}
