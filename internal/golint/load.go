package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks up from dir (or the working directory when dir is
// empty) to the enclosing go.mod and returns its directory and module
// path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("golint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("golint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ListPackages enumerates every package directory of the module that
// holds non-test Go files, as import paths (the ./... of the driver).
func ListPackages(root, modPath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, modPath)
				} else {
					paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// LoadPackages parses and type-checks the given import paths of the
// module rooted at root. Test files are excluded: the invariants the
// analyzers encode are production-path properties.
func LoadPackages(root, modPath string, importPaths []string) ([]*Package, error) {
	fset := token.NewFileSet()
	// The source importer type-checks dependency packages from source on
	// demand, so intra-module imports resolve without compiled export
	// data.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, ip := range importPaths {
		dir := root
		if ip != modPath {
			rel, ok := strings.CutPrefix(ip, modPath+"/")
			if !ok {
				return nil, fmt.Errorf("golint: import path %q outside module %q", ip, modPath)
			}
			dir = filepath.Join(root, filepath.FromSlash(rel))
		}

		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("golint: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}

		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ip, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("golint: type-checking %s: %w", ip, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  ip,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
