// Package golint is a dependency-free static-analysis framework in the
// shape of go/analysis, plus the analyzers that encode this repository's
// hot-path and determinism invariants (see analyzers.go).
//
// The repo carries zero external dependencies, so the x/tools analysis
// driver is not available; this package provides the minimal equivalent
// on top of go/ast, go/types and the source importer: load packages,
// type-check them, run analyzers, collect position-tagged diagnostics.
// The cmd/vaxvet multichecker drives it over the whole module in CI.
package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Msg)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one checker: a name for diagnostics, documentation, and a
// run function over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the collected
// diagnostics in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			an.Run(&Pass{Analyzer: an, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// WalkStack traverses root in depth-first order, calling fn with each
// node and its ancestor stack (outermost first, excluding the node
// itself). The stack slice is reused between calls; copy it to retain.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// NilGuarded reports whether some enclosing if-statement proves the
// expression rendered as exprStr non-nil at the flagged node: the node
// sits inside the body (not the else branch) of an if whose condition
// contains the conjunct `exprStr != nil`. This is the repo's sanctioned
// telemetry pattern — `if e.Probe != nil { e.Probe.Cycle(...) }` — so
// the guard must dominate the call, which body membership guarantees.
func NilGuarded(stack []ast.Node, exprStr string) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifStmt, ok := stack[i-1].(*ast.IfStmt)
		if !ok {
			continue
		}
		if stack[i] != ast.Node(ifStmt.Body) {
			continue
		}
		if condProvesNonNil(ifStmt.Cond, exprStr) {
			return true
		}
	}
	return false
}

// condProvesNonNil matches `X != nil` conjuncts (through && chains and
// parentheses) against the printed receiver expression.
func condProvesNonNil(cond ast.Expr, exprStr string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condProvesNonNil(c.X, exprStr)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return condProvesNonNil(c.X, exprStr) || condProvesNonNil(c.Y, exprStr)
		}
		if c.Op == token.NEQ {
			if isNil(c.Y) && types.ExprString(c.X) == exprStr {
				return true
			}
			if isNil(c.X) && types.ExprString(c.Y) == exprStr {
				return true
			}
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// InterfaceReceiver returns the printed receiver expression of a method
// call through an interface, or ok=false for concrete-type calls,
// function values, conversions and builtins. Devirtualized calls are
// the hot path's whole point, so concrete calls never need guards.
func InterfaceReceiver(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if _, isIface := selection.Recv().Underlying().(*types.Interface); !isIface {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// IsBuiltinCall reports whether call invokes the named builtin.
func IsBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// PkgFuncCall returns (package path, function name) when call is a
// direct call of a package-level function through an imported package
// name, e.g. time.Now() or rand.Intn(6).
func PkgFuncCall(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
