// Package mem models the VAX-11/780 memory subsystem with the timing
// behaviour the paper measures: a microcode-managed translation buffer, a
// write-through data cache, a one-longword write buffer, and the SBI path
// to main memory.
//
// The model is timing-only: it decides how many EBOX cycles each reference
// stalls and keeps the hardware event counters that the paper's companion
// cache study (reference [2]) provides — the UPC monitor itself cannot see
// cache or IB events, and neither does the analysis package; it reads
// these counters through the machine's "cache study" channel instead.
package mem

import "fmt"

// Config holds the memory system geometry and timing. Zero fields are
// replaced by the 11/780 values by Default.
type Config struct {
	CacheBytes     int // data cache size (11/780: 8 KB)
	CacheWays      int // associativity (2)
	CacheBlock     int // block size in bytes (8)
	TBEntries      int // translation buffer entries (128, split in halves)
	TBWays         int // TB associativity (2)
	PageBytes      int // VAX page size (512)
	MissLatency    int // cycles from SBI request to data (6, simplest case)
	WriteBusy      int // cycles the write buffer is busy per write (6)
	MemoryBytes    int // main memory size (8 MB on all measured systems)
	PTERegionBytes int // physical region holding page tables
}

// Default returns the VAX-11/780 configuration used in the paper's
// measurements.
func Default() Config {
	return Config{
		CacheBytes:     8 << 10,
		CacheWays:      2,
		CacheBlock:     8,
		TBEntries:      128,
		TBWays:         2,
		PageBytes:      512,
		MissLatency:    6,
		WriteBusy:      6,
		MemoryBytes:    8 << 20,
		PTERegionBytes: 512 << 10,
	}
}

func (c *Config) fillDefaults() {
	d := Default()
	if c.CacheBytes == 0 {
		c.CacheBytes = d.CacheBytes
	}
	if c.CacheWays == 0 {
		c.CacheWays = d.CacheWays
	}
	if c.CacheBlock == 0 {
		c.CacheBlock = d.CacheBlock
	}
	if c.TBEntries == 0 {
		c.TBEntries = d.TBEntries
	}
	if c.TBWays == 0 {
		c.TBWays = d.TBWays
	}
	if c.PageBytes == 0 {
		c.PageBytes = d.PageBytes
	}
	if c.MissLatency == 0 {
		c.MissLatency = d.MissLatency
	}
	if c.WriteBusy == 0 {
		c.WriteBusy = d.WriteBusy
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = d.MemoryBytes
	}
	if c.PTERegionBytes == 0 {
		c.PTERegionBytes = d.PTERegionBytes
	}
}

// Probe is the passive telemetry hook of the memory subsystem: like the
// UPC board, attaching one changes nothing about the measured system.
// It is nil on an uninstrumented machine (the fast path).
type Probe interface {
	// CacheMiss observes a cache read miss (D-stream, PTE, or I-stream)
	// and the stall/latency cycles it cost.
	CacheMiss(now uint64, istream bool, pa uint32, stall int)
}

// FaultInjector is the memory subsystem's fault hook (see
// internal/faults): a deterministic plan deciding, per D-stream read,
// whether the reference takes a memory parity error. nil on a healthy
// system — the fast path is one pointer check per reference.
type FaultInjector interface {
	// MemParity reports whether this read takes a parity error.
	MemParity(pa uint32) bool
}

// Stats are the hardware event counters: the numbers the paper's Section 4
// takes from the earlier cache study rather than from the UPC histogram.
type Stats struct {
	DReads        uint64 // D-stream read references (physical)
	DWrites       uint64 // D-stream write references (physical)
	DReadMisses   uint64
	IReads        uint64 // I-stream (IB) references
	IReadMisses   uint64
	IBytes        uint64 // bytes delivered to the IB
	DTBMisses     uint64
	ITBMisses     uint64
	PTEReads      uint64
	PTEReadMisses uint64
	ReadStall     uint64 // cycles
	WriteStall    uint64 // cycles
	SBIBusy       uint64 // cycles the backplane bus was occupied
	Unaligned     uint64 // unaligned D-stream references (extra physical refs)
}

// Add accumulates other into st — the counter summing behind the
// paper's composite workload and the telemetry interval totals.
func (st *Stats) Add(other *Stats) {
	st.DReads += other.DReads
	st.DWrites += other.DWrites
	st.DReadMisses += other.DReadMisses
	st.IReads += other.IReads
	st.IReadMisses += other.IReadMisses
	st.IBytes += other.IBytes
	st.DTBMisses += other.DTBMisses
	st.ITBMisses += other.ITBMisses
	st.PTEReads += other.PTEReads
	st.PTEReadMisses += other.PTEReadMisses
	st.ReadStall += other.ReadStall
	st.WriteStall += other.WriteStall
	st.SBIBusy += other.SBIBusy
	st.Unaligned += other.Unaligned
}

// Sub subtracts other from st: the delta between two counter snapshots,
// the unit of the telemetry layer's interval time series.
func (st *Stats) Sub(other *Stats) {
	st.DReads -= other.DReads
	st.DWrites -= other.DWrites
	st.DReadMisses -= other.DReadMisses
	st.IReads -= other.IReads
	st.IReadMisses -= other.IReadMisses
	st.IBytes -= other.IBytes
	st.DTBMisses -= other.DTBMisses
	st.ITBMisses -= other.ITBMisses
	st.PTEReads -= other.PTEReads
	st.PTEReadMisses -= other.PTEReadMisses
	st.ReadStall -= other.ReadStall
	st.WriteStall -= other.WriteStall
	st.SBIBusy -= other.SBIBusy
	st.Unaligned -= other.Unaligned
}

// System is the memory subsystem.
type System struct {
	cfg   Config
	tb    *TB
	cache *Cache
	Stats Stats

	// Trace, when non-nil, captures every physical reference for the
	// companion cache-study workflow (see RefTrace).
	Trace *RefTrace

	// VTrace, when non-nil, captures every TB probe and flush for the
	// companion TB-study workflow (see VATrace).
	VTrace *VATrace

	// probe, when non-nil, observes cache misses for the telemetry layer.
	probe Probe

	// fault, when non-nil, injects memory parity errors on reads. A
	// fired parity error is latched in parityPA/parityHit until the
	// EBOX collects it and runs the machine-check abort.
	fault     FaultInjector
	parityPA  uint32
	parityHit bool

	asid uint32 // current process context for process-space translation

	// sbiFreeAt is the cycle at which the SBI finishes its current
	// transaction; concurrent activity queues behind it.
	sbiFreeAt uint64
	// wbFreeAt is the cycle at which the one-longword write buffer frees.
	wbFreeAt uint64
}

// New builds a memory system from cfg (zero fields take 11/780 defaults).
func New(cfg Config) *System {
	cfg.fillDefaults()
	s := &System{cfg: cfg}
	s.tb = newTB(cfg.TBEntries, cfg.TBWays, cfg.PageBytes)
	s.cache = newCache(cfg.CacheBytes, cfg.CacheWays, cfg.CacheBlock)
	return s
}

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// SetProbe attaches a telemetry probe (nil detaches it).
func (s *System) SetProbe(p Probe) { s.probe = p }

// SetFault attaches a fault injector (nil detaches it).
func (s *System) SetFault(f FaultInjector) { s.fault = f }

// TakeParity collects a latched parity error: the faulting physical
// address and whether one fired since the last collection. The EBOX
// checks it after each data reference when a fault plan is attached and
// routes the abort through the machine-check path.
func (s *System) TakeParity() (pa uint32, ok bool) {
	if !s.parityHit {
		return 0, false
	}
	s.parityHit = false
	return s.parityPA, true
}

// SetASID switches the process context used for process-space address
// translation. It does NOT flush the TB: the LDPCTX microcode flow is
// responsible for calling FlushProcessTB, exactly as on the real machine.
func (s *System) SetASID(id uint32) { s.asid = id }

// ASID returns the current process context.
func (s *System) ASID() uint32 { return s.asid }

// FlushProcessTB invalidates the process half of the translation buffer.
func (s *System) FlushProcessTB() {
	s.recordFlush()
	s.tb.flushProcess()
}

// systemSpace reports whether va is in VAX system space (bit 31 set).
func systemSpace(va uint32) bool { return va&0x8000_0000 != 0 }

// Translate probes the TB for va. On a hit it returns the physical
// address. On a miss it returns ok=false and the caller must run the TB
// miss service microcode (which performs the PTE read and calls InsertTB)
// before retrying.
func (s *System) Translate(va uint32) (pa uint32, ok bool) {
	s.recordVA(va)
	vpn := va / uint32(s.cfg.PageBytes)
	sys := systemSpace(va)
	if !s.tb.lookup(vpn, sys) {
		return 0, false
	}
	return s.frame(vpn, sys) + va%uint32(s.cfg.PageBytes), true
}

// InsertTB installs the translation for va, evicting as needed. Called by
// the TB-miss microcode flow after its PTE fetch.
func (s *System) InsertTB(va uint32) {
	vpn := va / uint32(s.cfg.PageBytes)
	s.tb.insert(vpn, systemSpace(va))
}

// frame deterministically assigns a physical frame to each (space, asid,
// vpn) so that physical addresses are stable across the run without
// simulating real page tables.
func (s *System) frame(vpn uint32, sys bool) uint32 {
	key := vpn
	if !sys {
		key = key*2654435761 + s.asid*40503
	} else {
		key = key * 2246822519
	}
	frames := uint32(s.cfg.MemoryBytes / s.cfg.PageBytes)
	return (key % frames) * uint32(s.cfg.PageBytes)
}

// PTEAddr returns the physical address of the page table entry mapping
// va. Adjacent pages have adjacent PTEs, so PTE reads enjoy the spatial
// locality the real machine's page tables had.
func (s *System) PTEAddr(va uint32) uint32 {
	vpn := va / uint32(s.cfg.PageBytes)
	base := uint32(s.cfg.MemoryBytes - s.cfg.PTERegionBytes)
	var off uint32
	if systemSpace(va) {
		off = (vpn * 4) % uint32(s.cfg.PTERegionBytes/2)
	} else {
		off = uint32(s.cfg.PTERegionBytes/2) +
			((s.asid*16384+vpn)*4)%uint32(s.cfg.PTERegionBytes/2)
	}
	return base + off
}

// sbiAcquire queues a transaction of busy cycles on the SBI starting no
// earlier than now, returning when its data is available.
func (s *System) sbiAcquire(now uint64, busy int) (dataAt uint64) {
	start := now
	if s.sbiFreeAt > start {
		start = s.sbiFreeAt
	}
	dataAt = start + uint64(busy)
	s.sbiFreeAt = dataAt
	s.Stats.SBIBusy += uint64(busy)
	return dataAt
}

// DRead performs an EBOX D-stream read at physical address pa, returning
// the read-stall cycles the EBOX incurs ("the requesting microinstruction
// simply waits for the data to arrive", §4.3).
func (s *System) DRead(pa uint32, now uint64) (stall int) {
	s.Stats.DReads++
	s.record(RefDRead, pa)
	if s.fault != nil && s.fault.MemParity(pa) {
		s.parityPA, s.parityHit = pa, true
	}
	if s.cache.access(pa, true) {
		return 0
	}
	s.Stats.DReadMisses++
	dataAt := s.sbiAcquire(now, s.cfg.MissLatency)
	stall = int(dataAt - now)
	s.Stats.ReadStall += uint64(stall)
	if s.probe != nil {
		s.probe.CacheMiss(now, false, pa, stall)
	}
	return stall
}

// PTERead performs the page-table-entry read of the TB miss routine. It is
// a D-stream read but counted separately so the analysis can report the
// 3.5-cycle average PTE stall of §4.2.
func (s *System) PTERead(pa uint32, now uint64) (stall int) {
	s.Stats.PTEReads++
	s.record(RefPTERead, pa)
	if s.fault != nil && s.fault.MemParity(pa) {
		s.parityPA, s.parityHit = pa, true
	}
	if s.cache.access(pa, true) {
		return 0
	}
	s.Stats.PTEReadMisses++
	dataAt := s.sbiAcquire(now, s.cfg.MissLatency)
	stall = int(dataAt - now)
	s.Stats.ReadStall += uint64(stall)
	if s.probe != nil {
		s.probe.CacheMiss(now, false, pa, stall)
	}
	return stall
}

// DWrite performs an EBOX D-stream write at pa. The 11/780 write-through
// scheme: the write buffers in the one-longword write buffer and completes
// over the SBI; the EBOX stalls only when the buffer is still busy with
// the previous write (§2.1). The cache is updated only on a write hit (no
// write-allocate).
func (s *System) DWrite(pa uint32, now uint64) (stall int) {
	s.Stats.DWrites++
	s.record(RefDWrite, pa)
	if s.wbFreeAt > now {
		stall = int(s.wbFreeAt - now)
		s.Stats.WriteStall += uint64(stall)
	}
	issued := now + uint64(stall)
	done := s.sbiAcquire(issued, s.cfg.WriteBusy)
	s.wbFreeAt = done
	s.cache.access(pa, false) // update on hit; no allocate on miss
	return stall
}

// IRead performs an IB refill read of one longword at pa. The EBOX does
// not stall; the IB receives the data after the returned latency. miss
// reports whether the reference went to memory.
func (s *System) IRead(pa uint32, now uint64) (latency int, miss bool) {
	s.Stats.IReads++
	s.record(RefIRead, pa)
	if s.cache.access(pa, true) {
		return 0, false
	}
	s.Stats.IReadMisses++
	dataAt := s.sbiAcquire(now, s.cfg.MissLatency)
	if s.probe != nil {
		s.probe.CacheMiss(now, true, pa, int(dataAt-now))
	}
	return int(dataAt - now), true
}

// NoteIBytes counts bytes actually delivered to the IB (the IB accepts
// only as many bytes as it has room for at arrival time, §4.1).
func (s *System) NoteIBytes(n int) { s.Stats.IBytes += uint64(n) }

// NoteUnaligned counts an unaligned D-stream reference.
func (s *System) NoteUnaligned() { s.Stats.Unaligned++ }

// NoteTBMiss counts one translation-buffer miss. The machine calls it once
// per microtrap (D-stream) or once per I-fetch miss flag (I-stream), so
// repeated probes during service do not double count.
func (s *System) NoteTBMiss(istream bool) {
	if istream {
		s.Stats.ITBMisses++
	} else {
		s.Stats.DTBMisses++
	}
}

// CacheReadMissRate returns D-stream and I-stream read misses per the
// given instruction count (the cache study's headline numbers).
func (st *Stats) CacheReadMissRate(instr uint64) (d, i float64) {
	if instr == 0 {
		return 0, 0
	}
	return float64(st.DReadMisses) / float64(instr),
		float64(st.IReadMisses) / float64(instr)
}

func (st *Stats) String() string {
	return fmt.Sprintf("dR=%d dRm=%d iR=%d iRm=%d dW=%d tbD=%d tbI=%d rdStall=%d wrStall=%d",
		st.DReads, st.DReadMisses, st.IReads, st.IReadMisses, st.DWrites,
		st.DTBMisses, st.ITBMisses, st.ReadStall, st.WriteStall)
}
