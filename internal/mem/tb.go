package mem

// TB models the 11/780 translation buffer: 128 entries organized as two
// halves — one for system-space addresses, one for process-space — each
// set-associative. A context switch (the LDPCTX microcode) flushes only
// the process half; this split is why the paper's companion study [3]
// cares about context-switch headway for TB simulations (§3.4).
type TB struct {
	ways     int
	sets     int // sets per half
	pageBits uint

	// entries[half][set][way]; half 0 = process, 1 = system.
	entries [2][][]tbEntry
	// clock drives round-robin replacement, as the real TB's random
	// replacement is well-approximated by it at this granularity.
	clock uint32
}

type tbEntry struct {
	vpn   uint32
	valid bool
}

func newTB(entries, ways, pageBytes int) *TB {
	setsPerHalf := entries / 2 / ways
	if setsPerHalf < 1 {
		setsPerHalf = 1
	}
	t := &TB{ways: ways, sets: setsPerHalf}
	for half := 0; half < 2; half++ {
		t.entries[half] = make([][]tbEntry, setsPerHalf)
		for s := range t.entries[half] {
			t.entries[half][s] = make([]tbEntry, ways)
		}
	}
	return t
}

func (t *TB) halfFor(sys bool) int {
	if sys {
		return 1
	}
	return 0
}

// lookup probes the TB for vpn in the given space.
func (t *TB) lookup(vpn uint32, sys bool) bool {
	set := t.entries[t.halfFor(sys)][vpn%uint32(t.sets)]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return true
		}
	}
	return false
}

// insert installs vpn, evicting round-robin within its set.
func (t *TB) insert(vpn uint32, sys bool) {
	set := t.entries[t.halfFor(sys)][vpn%uint32(t.sets)]
	for i := range set {
		if !set[i].valid {
			set[i] = tbEntry{vpn: vpn, valid: true}
			return
		}
		if set[i].vpn == vpn {
			return
		}
	}
	t.clock++
	set[t.clock%uint32(t.ways)] = tbEntry{vpn: vpn, valid: true}
}

// flushProcess invalidates the process half.
func (t *TB) flushProcess() {
	for s := range t.entries[0] {
		for w := range t.entries[0][s] {
			t.entries[0][s][w].valid = false
		}
	}
}
