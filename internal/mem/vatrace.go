package mem

// VARef is one virtual-address translation event (a TB probe), or a
// process-half flush marker (Flush=true) from a context switch.
type VARef struct {
	VA    uint32
	Flush bool
}

// VATrace captures the virtual reference stream seen by the translation
// buffer — the raw material of the paper's other companion study (Clark &
// Emer, "Performance of the VAX-11/780 Translation Buffer: Simulation and
// Measurement", reference [3]): TB probes captured from the live machine
// and replayed against alternative TB organizations.
//
// Retried probes after a miss-service appear in the trace, exactly as the
// real TB saw them.
type VATrace struct {
	Refs []VARef
}

// recordVA appends one probe when VA tracing is attached.
func (s *System) recordVA(va uint32) {
	if s.VTrace != nil {
		s.VTrace.Refs = append(s.VTrace.Refs, VARef{VA: va})
	}
}

// recordFlush appends a process-half flush marker.
func (s *System) recordFlush() {
	if s.VTrace != nil {
		s.VTrace.Refs = append(s.VTrace.Refs, VARef{Flush: true})
	}
}
