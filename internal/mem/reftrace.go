package mem

// RefKind classifies one physical memory reference.
type RefKind uint8

// Reference kinds.
const (
	RefDRead RefKind = iota
	RefDWrite
	RefIRead
	RefPTERead
)

var refKindNames = [...]string{"d-read", "d-write", "i-read", "pte-read"}

func (k RefKind) String() string {
	if int(k) < len(refKindNames) {
		return refKindNames[k]
	}
	return "?"
}

// Ref is one physical reference in a captured trace.
type Ref struct {
	Kind RefKind
	PA   uint32
}

// RefTrace captures the physical reference stream of a run — the raw
// material of the paper's companion cache study (Clark, "Cache
// Performance in the VAX-11/780", reference [2]): traces captured from
// the live machine and replayed against alternative cache organizations
// offline.
type RefTrace struct {
	Refs []Ref
}

// record appends one reference when tracing is attached.
func (s *System) record(k RefKind, pa uint32) {
	if s.Trace != nil {
		s.Trace.Refs = append(s.Trace.Refs, Ref{Kind: k, PA: pa})
	}
}
