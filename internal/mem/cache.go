package mem

// Cache models the 11/780 data cache: physically addressed, write-through,
// no write-allocate. Both the D-stream and the IB refill path reference
// it; a read miss fills the block, a write updates only on hit.
type Cache struct {
	ways      int
	sets      int
	blockBits uint

	tags  [][]uint32
	valid [][]bool
	// round-robin victim pointer per set (the 780 used random
	// replacement; round-robin is the standard deterministic stand-in).
	victim []uint32
}

func newCache(bytes, ways, block int) *Cache {
	sets := bytes / (ways * block)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{ways: ways, sets: sets, blockBits: log2(block)}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.victim = make([]uint32, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint32, ways)
		c.valid[i] = make([]bool, ways)
	}
	return c
}

func log2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// access references physical address pa. allocate selects read behaviour
// (fill on miss) versus write behaviour (update on hit only). It reports
// whether the reference hit.
func (c *Cache) access(pa uint32, allocate bool) bool {
	blk := pa >> c.blockBits
	set := blk % uint32(c.sets)
	tag := blk / uint32(c.sets)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	if allocate {
		v := c.victim[set] % uint32(c.ways)
		c.victim[set]++
		c.tags[set][v] = tag
		c.valid[set][v] = true
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}
