package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultsAre780(t *testing.T) {
	s := New(Config{})
	c := s.Config()
	if c.CacheBytes != 8<<10 || c.CacheWays != 2 || c.CacheBlock != 8 {
		t.Errorf("cache geometry %d/%d/%d, want 8192/2/8", c.CacheBytes, c.CacheWays, c.CacheBlock)
	}
	if c.TBEntries != 128 || c.TBWays != 2 {
		t.Errorf("TB geometry %d/%d, want 128/2", c.TBEntries, c.TBWays)
	}
	if c.MissLatency != 6 || c.WriteBusy != 6 {
		t.Errorf("latencies %d/%d, want 6/6", c.MissLatency, c.WriteBusy)
	}
	if c.PageBytes != 512 {
		t.Errorf("page size %d, want 512", c.PageBytes)
	}
}

func TestTranslateMissThenHit(t *testing.T) {
	s := New(Config{})
	va := uint32(0x1234)
	if _, ok := s.Translate(va); ok {
		t.Fatal("cold TB should miss")
	}
	s.InsertTB(va)
	pa, ok := s.Translate(va)
	if !ok {
		t.Fatal("TB should hit after insert")
	}
	if pa%512 != va%512 {
		t.Errorf("page offset not preserved: pa=%#x va=%#x", pa, va)
	}
	// Same page, different offset: still a hit, same frame.
	pa2, ok := s.Translate(va + 4)
	if !ok || pa2 != pa+4 {
		t.Errorf("same-page translation inconsistent: %#x vs %#x", pa2, pa+4)
	}
}

func TestTranslationStableAcrossCalls(t *testing.T) {
	s := New(Config{})
	s.InsertTB(0x4000)
	pa1, _ := s.Translate(0x4000)
	pa2, _ := s.Translate(0x4000)
	if pa1 != pa2 {
		t.Error("translation not stable")
	}
}

func TestProcessFlushKeepsSystemHalf(t *testing.T) {
	s := New(Config{})
	user := uint32(0x0000_2000)
	sys := uint32(0x8000_2000)
	s.InsertTB(user)
	s.InsertTB(sys)
	s.FlushProcessTB()
	if _, ok := s.Translate(user); ok {
		t.Error("process translation survived process flush")
	}
	if _, ok := s.Translate(sys); !ok {
		t.Error("system translation lost on process flush")
	}
}

func TestASIDSeparatesProcessSpaces(t *testing.T) {
	s := New(Config{})
	va := uint32(0x6000)
	s.SetASID(1)
	s.InsertTB(va)
	pa1, _ := s.Translate(va)
	s.SetASID(2)
	// The TB is NOT flushed by SetASID (that is LDPCTX's job) — the entry
	// still hits, but the frame differs per ASID, so a machine that fails
	// to flush would see the wrong mapping. Here we only check frames
	// differ across ASIDs after a proper flush+insert.
	s.FlushProcessTB()
	s.InsertTB(va)
	pa2, _ := s.Translate(va)
	if pa1 == pa2 {
		t.Error("different ASIDs map to identical frames (hash degenerate)")
	}
	// System space is shared: same frame regardless of ASID.
	sysVA := uint32(0x8000_4000)
	s.InsertTB(sysVA)
	sp1, _ := s.Translate(sysVA)
	s.SetASID(7)
	sp2, _ := s.Translate(sysVA)
	if sp1 != sp2 {
		t.Error("system space frame changed with ASID")
	}
}

func TestDReadMissThenHit(t *testing.T) {
	s := New(Config{})
	stall := s.DRead(0x1000, 100)
	if stall != 6 {
		t.Errorf("cold read stall = %d, want 6", stall)
	}
	if s.Stats.DReadMisses != 1 || s.Stats.DReads != 1 {
		t.Errorf("stats: %+v", s.Stats)
	}
	// Same block: hit, no stall.
	if stall := s.DRead(0x1004, 110); stall != 0 {
		t.Errorf("same-block read stalled %d", stall)
	}
	if s.Stats.DReadMisses != 1 {
		t.Error("hit counted as miss")
	}
}

func TestWriteBufferStall(t *testing.T) {
	s := New(Config{})
	if stall := s.DWrite(0x2000, 100); stall != 0 {
		t.Errorf("first write stalled %d", stall)
	}
	// A write 2 cycles later finds the buffer busy: the 11/780 stalls the
	// difference (6-cycle buffer occupancy minus 2 elapsed).
	if stall := s.DWrite(0x2004, 102); stall != 4 {
		t.Errorf("second write stall = %d, want 4", stall)
	}
	// A write 6+ cycles after the previous write's issue does not stall.
	if stall := s.DWrite(0x2008, 120); stall != 0 {
		t.Errorf("spaced write stalled %d", stall)
	}
	if s.Stats.WriteStall != 4 {
		t.Errorf("WriteStall = %d, want 4", s.Stats.WriteStall)
	}
}

func TestWriteNoAllocate(t *testing.T) {
	s := New(Config{})
	s.DWrite(0x3000, 0)
	// The written block must not have been allocated: a read of it misses.
	if stall := s.DRead(0x3000, 50); stall == 0 {
		t.Error("write allocated a cache block; 11/780 is no-write-allocate")
	}
	// But a write to a resident block updates it (and the block stays).
	s.DRead(0x4000, 100) // fill
	s.DWrite(0x4000, 150)
	if stall := s.DRead(0x4000, 200); stall != 0 {
		t.Error("write invalidated a resident block")
	}
}

func TestSBIContentionDelaysConcurrentMisses(t *testing.T) {
	s := New(Config{})
	// An IB miss occupies the SBI; an immediately following D-read miss
	// waits behind it.
	lat, miss := s.IRead(0x5000, 100)
	if !miss || lat != 6 {
		t.Fatalf("IRead: lat=%d miss=%v", lat, miss)
	}
	stall := s.DRead(0x6000, 102)
	if stall != 10 { // SBI free at 106, data at 112, stall = 112-102
		t.Errorf("contended read stall = %d, want 10", stall)
	}
}

func TestIReadCountsBytes(t *testing.T) {
	s := New(Config{})
	s.IRead(0x7000, 0)
	s.NoteIBytes(4)
	s.IRead(0x7004, 10)
	s.NoteIBytes(2)
	if s.Stats.IReads != 2 || s.Stats.IBytes != 6 {
		t.Errorf("IReads=%d IBytes=%d", s.Stats.IReads, s.Stats.IBytes)
	}
}

func TestPTEReadCounted(t *testing.T) {
	s := New(Config{})
	pte := s.PTEAddr(0x9000)
	s.PTERead(pte, 0)
	if s.Stats.PTEReads != 1 || s.Stats.PTEReadMisses != 1 {
		t.Errorf("PTE stats: %+v", s.Stats)
	}
	// Adjacent page's PTE shares the block often enough to hit sometimes;
	// at minimum the same PTE re-read hits.
	if stall := s.PTERead(pte, 20); stall != 0 {
		t.Error("re-read of same PTE missed")
	}
}

func TestPTEAddrAdjacency(t *testing.T) {
	s := New(Config{})
	a := s.PTEAddr(0 * 512)
	b := s.PTEAddr(1 * 512)
	if b != a+4 {
		t.Errorf("adjacent pages' PTEs not adjacent: %#x %#x", a, b)
	}
}

func TestNoteCounters(t *testing.T) {
	s := New(Config{})
	s.NoteTBMiss(false)
	s.NoteTBMiss(true)
	s.NoteTBMiss(true)
	s.NoteUnaligned()
	if s.Stats.DTBMisses != 1 || s.Stats.ITBMisses != 2 || s.Stats.Unaligned != 1 {
		t.Errorf("note counters: %+v", s.Stats)
	}
}

func TestCacheEvictionLRUish(t *testing.T) {
	// Fill one set beyond its associativity and check the first block is
	// gone: 2-way, 512 sets, 8-byte blocks → same set every 4096 bytes.
	s := New(Config{})
	s.DRead(0x0000, 0)
	s.DRead(0x1000, 10)
	s.DRead(0x2000, 20) // evicts one of the first two
	miss := 0
	if s.DRead(0x0000, 30) > 0 {
		miss++
	}
	if s.DRead(0x1000, 40) > 0 {
		miss++
	}
	if miss == 0 {
		t.Error("no eviction after overfilling a set")
	}
}

func TestQuickTranslationOffsetsPreserved(t *testing.T) {
	s := New(Config{})
	f := func(va uint32) bool {
		s.InsertTB(va)
		pa, ok := s.Translate(va)
		if !ok {
			return false
		}
		return pa%512 == va%512 && pa < uint32(s.Config().MemoryBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCacheNeverPanicsAndMissRateSane(t *testing.T) {
	s := New(Config{})
	misses := 0
	const n = 10000
	for i := 0; i < n; i++ {
		// A longword-strided walk over 64 KB: sequential longwords share
		// 8-byte blocks (hits) while the 8×-cache working set forces
		// steady misses on block boundaries.
		pa := uint32((i * 4) % (64 << 10))
		if s.DRead(pa, uint64(i*12)) > 0 {
			misses++
		}
	}
	if misses == 0 || misses == n {
		t.Errorf("degenerate miss behaviour: %d/%d", misses, n)
	}
}

func TestStatsString(t *testing.T) {
	s := New(Config{})
	s.DRead(0, 0)
	if s.Stats.String() == "" {
		t.Error("empty stats string")
	}
	d, i := s.Stats.CacheReadMissRate(1)
	if d != 1 || i != 0 {
		t.Errorf("miss rates %f %f", d, i)
	}
	if d, i := s.Stats.CacheReadMissRate(0); d != 0 || i != 0 {
		t.Error("zero-instruction rate should be zero")
	}
}

func TestSBIBusyAccounting(t *testing.T) {
	s := New(Config{})
	s.DRead(0x1000, 0) // miss: 6 SBI cycles
	s.DWrite(0x2000, 20)
	if s.Stats.SBIBusy != 6+6 {
		t.Errorf("SBIBusy = %d, want 12", s.Stats.SBIBusy)
	}
	s.DRead(0x1000, 40) // hit: no SBI traffic
	if s.Stats.SBIBusy != 12 {
		t.Errorf("hit added SBI busy: %d", s.Stats.SBIBusy)
	}
}

func TestRefTraceRecording(t *testing.T) {
	s := New(Config{})
	s.Trace = &RefTrace{}
	s.DRead(0x1000, 0)
	s.DWrite(0x2000, 10)
	s.IRead(0x3000, 20)
	s.PTERead(0x4000, 30)
	want := []Ref{
		{RefDRead, 0x1000}, {RefDWrite, 0x2000},
		{RefIRead, 0x3000}, {RefPTERead, 0x4000},
	}
	if len(s.Trace.Refs) != len(want) {
		t.Fatalf("recorded %d refs", len(s.Trace.Refs))
	}
	for i, w := range want {
		if s.Trace.Refs[i] != w {
			t.Errorf("ref %d = %+v, want %+v", i, s.Trace.Refs[i], w)
		}
	}
	for _, k := range []RefKind{RefDRead, RefDWrite, RefIRead, RefPTERead} {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if RefKind(9).String() != "?" {
		t.Error("unknown kind should render ?")
	}
}

func TestVATraceRecording(t *testing.T) {
	s := New(Config{})
	s.VTrace = &VATrace{}
	s.Translate(0x1234)
	s.FlushProcessTB()
	s.Translate(0x8000_0010)
	refs := s.VTrace.Refs
	if len(refs) != 3 {
		t.Fatalf("recorded %d events", len(refs))
	}
	if refs[0].Flush || refs[0].VA != 0x1234 {
		t.Errorf("event 0: %+v", refs[0])
	}
	if !refs[1].Flush {
		t.Error("event 1 should be a flush")
	}
	if refs[2].VA != 0x8000_0010 {
		t.Errorf("event 2: %+v", refs[2])
	}
}

func TestTracingOffByDefault(t *testing.T) {
	s := New(Config{})
	s.DRead(0x1000, 0)
	s.Translate(0x1000)
	if s.Trace != nil || s.VTrace != nil {
		t.Error("tracing should be nil by default")
	}
}
