package castore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStageCommitRoundTrip(t *testing.T) {
	s := openStore(t)
	st, err := s.Stage("j-000001")
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	if err := st.WriteFile("report.txt", []byte("CPI 10.6\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := st.WriteFile("meta.json", []byte("{}\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if s.Has("deadbeef") {
		t.Fatal("Has before commit")
	}
	if err := st.Commit("deadbeef"); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !s.Has("deadbeef") {
		t.Fatal("Has after commit = false")
	}
	names, err := s.Bundle("deadbeef")
	if err != nil {
		t.Fatalf("Bundle: %v", err)
	}
	if want := []string{"meta.json", "report.txt"}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("Bundle = %v, want %v", names, want)
	}
	data, err := s.ReadFile("deadbeef", "report.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(data, []byte("CPI 10.6\n")) {
		t.Fatalf("ReadFile = %q", data)
	}
	// Staging directory is gone after commit.
	if _, err := os.Stat(st.Dir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging dir survives commit: %v", err)
	}
}

func TestCommitFirstWriterWins(t *testing.T) {
	s := openStore(t)
	a, _ := s.Stage("j-000001")
	b, _ := s.Stage("j-000002")
	if err := a.WriteFile("report.txt", []byte("first\n")); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile("report.txt", []byte("second\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit("cafef00d"); err != nil {
		t.Fatalf("first Commit: %v", err)
	}
	if err := b.Commit("cafef00d"); err != nil {
		t.Fatalf("second Commit: %v", err)
	}
	data, err := s.ReadFile("cafef00d", "report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first\n" {
		t.Fatalf("bundle content = %q, want the first writer's", data)
	}
	if _, err := os.Stat(b.Dir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("loser's staging dir not discarded")
	}
	races := s.TakeCommitRaces()
	if len(races) != 1 || races[0] != "cafef00d" {
		t.Fatalf("TakeCommitRaces = %v, want [cafef00d]", races)
	}
	if again := s.TakeCommitRaces(); len(again) != 0 {
		t.Fatalf("TakeCommitRaces did not drain: %v", again)
	}
}

func TestCommitRace(t *testing.T) {
	s := openStore(t)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		st, err := s.Stage(fmt.Sprintf("j-%06d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WriteFile("x", []byte(fmt.Sprintf("writer %d\n", i))); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.Commit("abcd1234"); err != nil {
				t.Errorf("Commit: %v", err)
			}
		}()
	}
	wg.Wait()
	if !s.Has("abcd1234") {
		t.Fatal("no bundle after racing commits")
	}
	ents, _ := os.ReadDir(filepath.Join(s.Root(), "staging"))
	if len(ents) != 0 {
		t.Fatalf("%d staging dirs survive the race", len(ents))
	}
	if races := s.TakeCommitRaces(); len(races) != n-1 {
		t.Fatalf("recorded %d commit races, want %d", len(races), n-1)
	}
}

func TestRepairJournalTornTail(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJournal([]byte(`{"msg":"a"}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: a partial record with no newline.
	path := filepath.Join(root, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"msg":"to`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.RepairJournal()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RepairJournal dropped %d records, want 1", n)
	}
	// The next append must start a fresh record, not concatenate onto
	// the torn one — the corruption repair exists to prevent.
	if err := s2.AppendJournal([]byte(`{"msg":"b"}`)); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := s2.ReplayJournal(func(line []byte) error {
		got = append(got, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{`{"msg":"a"}`, `{"msg":"b"}`}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("journal after repair+append = %q, want %q", got, want)
	}
	// A clean journal repairs to a no-op.
	if n, err := s2.RepairJournal(); err != nil || n != 0 {
		t.Fatalf("RepairJournal on clean journal = %d, %v", n, err)
	}
}

func TestStageSurvivesReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stage("j-000001")
	if err := st.WriteFile("run.ckpt", []byte("checkpoint bytes")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Stage("j-000001")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st2.Path("run.ckpt"))
	if err != nil {
		t.Fatalf("checkpoint lost across reopen: %v", err)
	}
	if string(data) != "checkpoint bytes" {
		t.Fatalf("checkpoint = %q", data)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := openStore(t)
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := s.Stage(bad); err == nil {
			t.Errorf("Stage(%q) accepted", bad)
		}
		if _, err := s.Open(bad, "x"); err == nil {
			t.Errorf("Open(%q) accepted", bad)
		}
		if _, err := s.Open("good", bad); err == nil {
			t.Errorf("Open(key, %q) accepted", bad)
		}
		if s.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
}

func TestNoBundleSentinel(t *testing.T) {
	s := openStore(t)
	if _, err := s.Bundle("0123456789abcdef"); !errors.Is(err, ErrNoBundle) {
		t.Fatalf("Bundle err = %v, want ErrNoBundle", err)
	}
	if _, err := s.Open("0123456789abcdef", "report.txt"); !errors.Is(err, ErrNoBundle) {
		t.Fatalf("Open err = %v, want ErrNoBundle", err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 3; i++ {
		if err := s.AppendJournal([]byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := s.ReplayJournal(func(line []byte) error {
		got = append(got, string(line))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"n":0}`, `{"n":1}`, `{"n":2}`}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
}

func TestJournalWriterStripsNewline(t *testing.T) {
	s := openStore(t)
	w := s.JournalWriter()
	if _, err := w.Write([]byte("{\"a\":1}\n")); err != nil {
		t.Fatal(err)
	}
	var got []string
	s.ReplayJournal(func(line []byte) error { got = append(got, string(line)); return nil })
	if len(got) != 1 || got[0] != `{"a":1}` {
		t.Fatalf("replay = %q", got)
	}
}

func TestJournalTornFinalLineIgnored(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendJournal([]byte(`{"complete":true}`))
	s.Close()
	// Simulate a torn write: append half a record with no newline.
	f, err := os.OpenFile(filepath.Join(root, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"torn":`)
	f.Close()

	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got []string
	if err := s2.ReplayJournal(func(line []byte) error {
		got = append(got, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != `{"complete":true}` {
		t.Fatalf("replay = %q, want only the complete record", got)
	}
	// And the journal still appends after the torn tail.
	if err := s2.AppendJournal([]byte(`{"next":1}`)); err != nil {
		t.Fatal(err)
	}
}
