// Package castore is the content-addressed result store of the vaxd
// service: one immutable bundle directory per measurement identity,
// plus the append-only journal crash recovery replays.
//
// The design borrows nanoBench's record-per-measurement discipline
// (PAPERS.md): the served artifact is one addressable, machine-readable
// bundle — ledger, histogram, report, profile spans — keyed by the hash
// of everything that determines its bytes. Because the simulator is a
// pure function of seed and configuration (bit-exact across -j, proven
// by the determinism suite), two submissions with equal keys would
// produce identical bundles; serving the stored one is not an
// approximation, it is the answer.
//
// Layout under the root:
//
//	objects/<key>/...   committed bundles, immutable once present
//	staging/<id>/...    per-job scratch: bundle assembly + checkpoints
//	journal.jsonl       append-only job journal (the owner defines the
//	                    record schema; vaxd writes runlog job events)
//
// Commit is crash-safe: a bundle is assembled in staging and renamed
// into objects/ in one step, so a reader never observes a partial
// bundle. When two jobs race to commit one key, the first writer wins
// and the loser's staging is discarded — determinism makes the two
// bundles interchangeable. The package itself never reads the wall
// clock; any timestamps in bundle metadata are the caller's.
package castore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoBundle reports a key with no committed bundle.
var ErrNoBundle = errors.New("castore: no bundle under key")

// Store is one on-disk content-addressed store. Safe for concurrent
// use; journal appends are serialized.
type Store struct {
	root string

	mu      sync.Mutex
	journal *os.File
	races   []string // keys whose commits lost the first-writer race
}

// Open creates (or reopens) the store rooted at root.
func Open(root string) (*Store, error) {
	for _, dir := range []string{root, filepath.Join(root, "objects"), filepath.Join(root, "staging")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("castore: %w", err)
		}
	}
	j, err := os.OpenFile(filepath.Join(root, "journal.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("castore: opening journal: %w", err)
	}
	return &Store{root: root, journal: j}, nil
}

// Close releases the journal handle. The store directory remains valid
// for a later Open (that is the crash-recovery path).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validName rejects path elements that could escape the store.
func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("castore: invalid name %q", name)
	}
	return nil
}

func (s *Store) objectDir(key string) string {
	return filepath.Join(s.root, "objects", key)
}

// Has reports whether a committed bundle exists under key.
func (s *Store) Has(key string) bool {
	if validName(key) != nil {
		return false
	}
	st, err := os.Stat(s.objectDir(key))
	return err == nil && st.IsDir()
}

// Bundle lists a committed bundle's file names, sorted.
func (s *Store) Bundle(key string) ([]string, error) {
	if err := validName(key); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(s.objectDir(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoBundle, key)
	}
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open returns a reader on one file of a committed bundle.
func (s *Store) Open(key, name string) (io.ReadCloser, error) {
	if err := validName(key); err != nil {
		return nil, err
	}
	if err := validName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(s.objectDir(key), name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoBundle, key, name)
	}
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	return f, nil
}

// ReadFile reads one file of a committed bundle whole.
func (s *Store) ReadFile(key, name string) ([]byte, error) {
	f, err := s.Open(key, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Keys lists every committed bundle key, sorted.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Staging is one job's scratch directory: checkpoint files while the
// job runs, then the assembled bundle. It survives a crash (recovery
// re-stages the same id and the run resumes from the checkpoint found
// there) and disappears on Commit or Abandon.
type Staging struct {
	store *Store
	id    string
	dir   string
}

// Stage creates (or re-opens, after a crash) the staging directory for
// the given job id.
func (s *Store) Stage(id string) (*Staging, error) {
	if err := validName(id); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.root, "staging", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	return &Staging{store: s, id: id, dir: dir}, nil
}

// Dir returns the staging directory path.
func (st *Staging) Dir() string { return st.dir }

// Path returns the path of one file inside the staging directory.
func (st *Staging) Path(name string) string { return filepath.Join(st.dir, name) }

// WriteFile writes one staged file and syncs it: a staged file's bytes
// must be on disk before Commit's rename can publish them, or a crash
// between the two could publish a bundle with torn members.
func (st *Staging) WriteFile(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	f, err := os.OpenFile(st.Path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("castore: staging %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("castore: staging %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("castore: syncing staged %s: %w", name, err)
	}
	return f.Close()
}

// Remove deletes one staged file if present (e.g. the run checkpoint,
// which is job scratch and must not enter the bundle).
func (st *Staging) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	err := os.Remove(st.Path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Commit publishes the staged files as the bundle under key, in one
// rename. Every staged file is synced first — writers that stream into
// the staging directory through their own handles (the job manager's
// ledger and histogram writers) get their durability here, so the
// published bundle can never contain a member the disk had not yet
// accepted. If a bundle already exists under key the staged copy is
// discarded — first writer wins; determinism makes the copies
// interchangeable. Either way the staging directory is gone afterwards.
func (st *Staging) Commit(key string) error {
	if err := validName(key); err != nil {
		return err
	}
	if err := st.syncAll(); err != nil {
		return err
	}
	st.store.mu.Lock()
	defer st.store.mu.Unlock()
	dst := st.store.objectDir(key)
	if _, err := os.Stat(dst); err == nil {
		// First writer won. The discarded bundle was identical by
		// determinism, so nothing is lost — but the race itself was
		// invisible until now; record it so the job manager can journal
		// and count it (an unexpected race rate means duplicate work
		// admission should have deduplicated).
		st.store.races = append(st.store.races, key)
		return os.RemoveAll(st.dir)
	}
	if err := os.Rename(st.dir, dst); err != nil {
		return fmt.Errorf("castore: committing %s: %w", key, err)
	}
	// Best-effort durability of the rename itself.
	if d, err := os.Open(filepath.Dir(dst)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// syncAll fsyncs every regular file in the staging directory and then
// the directory itself, making the staged tree durable before the
// commit rename points the store at it.
func (st *Staging) syncAll() error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("castore: syncing staging %s: %w", st.id, err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		f, err := os.Open(filepath.Join(st.dir, e.Name()))
		if err != nil {
			return fmt.Errorf("castore: syncing staged %s: %w", e.Name(), err)
		}
		syncErr := f.Sync()
		closeErr := f.Close()
		if syncErr != nil {
			return fmt.Errorf("castore: syncing staged %s: %w", e.Name(), syncErr)
		}
		if closeErr != nil {
			return fmt.Errorf("castore: syncing staged %s: %w", e.Name(), closeErr)
		}
	}
	d, err := os.Open(st.dir)
	if err != nil {
		return fmt.Errorf("castore: syncing staging %s: %w", st.id, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("castore: syncing staging %s: %w", st.id, syncErr)
	}
	return closeErr
}

// Abandon discards the staging directory and everything in it.
func (st *Staging) Abandon() error {
	return os.RemoveAll(st.dir)
}

// AppendJournal appends one line-terminated record to the journal and
// syncs it. line must be a single JSONL record without the newline.
func (s *Store) AppendJournal(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return errors.New("castore: journal closed")
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := s.journal.Write(buf); err != nil {
		return fmt.Errorf("castore: journal append: %w", err)
	}
	return s.journal.Sync()
}

// journalWriter adapts AppendJournal to io.Writer for the runlog
// ledger, which emits exactly one line per Write call.
type journalWriter struct{ s *Store }

func (w journalWriter) Write(p []byte) (int, error) {
	line := p
	for len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	if err := w.s.AppendJournal(line); err != nil {
		return 0, err
	}
	return len(p), nil
}

// JournalWriter returns an io.Writer appending one journal record per
// Write call (the runlog JSON handler's contract).
func (s *Store) JournalWriter() io.Writer { return journalWriter{s} }

// TakeCommitRaces drains the keys whose commits lost a first-writer-
// wins race since the last call.
func (s *Store) TakeCommitRaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.races
	s.races = nil
	return out
}

// RepairJournal truncates a torn final record — the partial line a
// crash mid-append leaves behind. Replay already ignores the torn
// tail, but without repair the next O_APPEND write would concatenate
// onto the partial line, silently corrupting two records; with it the
// journal is clean before the ledger reopens for append. Returns the
// number of records dropped (0 or 1). Callers run it after replay and
// before appending anything new.
func (s *Store) RepairJournal() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.root, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("castore: reading journal: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return 0, nil
	}
	keep := 0
	if nl := bytes.LastIndexByte(data, '\n'); nl >= 0 {
		keep = nl + 1
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("castore: repairing journal: %w", err)
	}
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return 0, fmt.Errorf("castore: repairing journal: %w", err)
	}
	syncErr := f.Sync()
	closeErr := f.Close()
	if syncErr != nil {
		return 0, fmt.Errorf("castore: repairing journal: %w", syncErr)
	}
	if closeErr != nil {
		return 0, fmt.Errorf("castore: repairing journal: %w", closeErr)
	}
	return 1, nil
}

// ReplayJournal calls fn for every complete record in the journal, in
// append order. A truncated final line (torn write at crash) is
// silently dropped: the journal is recovery input, and a record that
// never fully landed describes an action that may not have happened.
func (s *Store) ReplayJournal(fn func(line []byte) error) error {
	data, err := os.ReadFile(filepath.Join(s.root, "journal.jsonl"))
	if err != nil {
		return fmt.Errorf("castore: reading journal: %w", err)
	}
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return nil // torn final record: ignore
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}
