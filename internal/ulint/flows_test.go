package ulint

import (
	"testing"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

func TestFlowIndexShippedROM(t *testing.T) {
	rom := urom.Build()
	ix := NewFlowIndex(rom)
	flows := ix.Flows()
	if len(flows) == 0 {
		t.Fatal("shipped ROM produced no flows")
	}

	for fi, f := range flows {
		if len(f.Words) == 0 {
			t.Fatalf("flow %s has no words", f.Name)
		}
		// The entry is owned by a flow with the same entry address
		// (shared tails may assign a word to an earlier flow, but the
		// entry word of the lowest flow claiming it must resolve).
		if owner, ok := ix.FlowOf(f.Entry); !ok {
			t.Fatalf("flow %s: entry %05o unowned", f.Name, f.Entry)
		} else if flows[owner].Entry > f.Entry {
			t.Fatalf("flow %s: entry owned by later flow %s", f.Name, flows[owner].Name)
		}
		// Segments cover a subset of the flow's words, contiguously.
		inFlow := make(map[uint16]bool, len(f.Words))
		for _, w := range f.Words {
			inFlow[w] = true
		}
		covered := 0
		for _, s := range f.Segments {
			if s.Len < 1 {
				t.Fatalf("flow %s: empty segment at %05o", f.Name, s.Start)
			}
			for w := s.Start; w < s.End(); w++ {
				if !inFlow[w] {
					t.Fatalf("flow %s: segment word %05o outside the flow", f.Name, w)
				}
				covered++
			}
			if s.Fusible {
				if s.Len < 2 {
					t.Fatalf("flow %s: single-word segment %05o marked fusible", f.Name, s.Start)
				}
				for w := s.Start; w < s.End(); w++ {
					mi := rom.Image.At(w)
					if mi.Mem != ucode.MemNone || mi.IBStall || mi.Loop != ucode.LoopNone {
						t.Fatalf("flow %s: fusible segment %05o contains scheduling word %05o",
							f.Name, s.Start, w)
					}
				}
			}
		}
		if covered != len(f.Words) {
			t.Fatalf("flow %s: segments cover %d of %d words", f.Name, covered, len(f.Words))
		}
		_ = fi
	}
}

func TestFlowIndexBoundsAttached(t *testing.T) {
	rom := urom.Build()
	ix := NewFlowIndex(rom)
	rep := AnalyzeROM(rom)
	if !rep.Clean() {
		t.Skip("shipped ROM not clean; bounds coverage not expected")
	}
	for _, f := range ix.Flows() {
		if f.Straight <= 0 || f.Worst < f.Straight {
			t.Fatalf("flow %s: bounds straight=%d worst=%d", f.Name, f.Straight, f.Worst)
		}
	}
}

func TestFlowIndexHasFusibleSegments(t *testing.T) {
	// The JIT targeting list depends on at least some of the shipped
	// control store being provably fusible.
	ix := NewFlowIndex(urom.Build())
	total := 0
	for _, f := range ix.Flows() {
		total += f.FusibleWords()
	}
	if total == 0 {
		t.Fatal("no fusible straight-line segments anywhere in the shipped ROM")
	}
}

func TestFlowIndexDeterministic(t *testing.T) {
	rom := urom.Build()
	a, b := NewFlowIndex(rom), NewFlowIndex(rom)
	fa, fb := a.Flows(), b.Flows()
	if len(fa) != len(fb) {
		t.Fatalf("flow counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Name != fb[i].Name || fa[i].Entry != fb[i].Entry ||
			len(fa[i].Words) != len(fb[i].Words) || len(fa[i].Segments) != len(fb[i].Segments) {
			t.Fatalf("flow %d differs between identical builds", i)
		}
	}
	for addr := 0; addr < rom.Image.Size(); addr++ {
		oa, oka := a.FlowOf(uint16(addr))
		ob, okb := b.FlowOf(uint16(addr))
		if oa != ob || oka != okb {
			t.Fatalf("owner of %05o differs between identical builds", addr)
		}
	}
}

func TestFlowOfOutOfRange(t *testing.T) {
	ix := NewFlowIndex(urom.Build())
	if _, ok := ix.FlowOf(0); ok {
		t.Fatal("reset word must be unowned")
	}
}
