package ulint

// The shared flow-index cache: one analysis per assembled ROM image,
// reused by the prof sampler, vaxlint, and the fusion seeder.

import (
	"sync"
	"testing"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

// TestIndexForCachesPerROM: repeated lookups of one ROM return the
// identical index (the analysis ran once); a distinct ROM gets its
// own.
func TestIndexForCachesPerROM(t *testing.T) {
	a, b := urom.Build(), urom.Build()
	if IndexFor(a) != IndexFor(a) {
		t.Error("IndexFor re-derived the analysis for the same ROM")
	}
	if IndexFor(a) == IndexFor(b) {
		t.Error("IndexFor shared one analysis across distinct ROM instances")
	}
}

// TestIndexForConcurrent hammers the cache from many goroutines: every
// caller must observe the same index for the same ROM.
func TestIndexForConcurrent(t *testing.T) {
	rom := urom.Build()
	want := IndexFor(rom)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if IndexFor(rom) != want {
				t.Error("concurrent IndexFor returned a different index")
			}
		}()
	}
	wg.Wait()
}

// TestSchedulingWordsAreSingletons: the fusion-oriented segmentation
// isolates every scheduling word (memory function, IB stall, loop
// load) in its own single-word segment, so the fusible segments are
// exactly the maximal pure straight-line runs.
func TestSchedulingWordsAreSingletons(t *testing.T) {
	rom := urom.Build()
	for _, f := range NewFlowIndex(rom).Flows() {
		for _, s := range f.Segments {
			if s.Len == 1 {
				continue
			}
			for w := s.Start; w < s.End(); w++ {
				mi := rom.Image.At(w)
				if mi.Mem != ucode.MemNone || mi.IBStall || mi.Loop != ucode.LoopNone {
					t.Fatalf("flow %s: scheduling word %05o inside multi-word segment %05o+%d",
						f.Name, w, s.Start, s.Len)
				}
			}
		}
	}
}

// TestFusibleInteriorsArePure: fusible segments never perform an IB
// function before their final word — the superword executor applies no
// IB side effects for interior words, so the analyzer must not prove
// any.
func TestFusibleInteriorsArePure(t *testing.T) {
	rom := urom.Build()
	for _, f := range NewFlowIndex(rom).Flows() {
		for _, s := range f.Segments {
			if !s.Fusible {
				continue
			}
			for w := s.Start; w < s.End()-1; w++ {
				mi := rom.Image.At(w)
				if mi.Seq != ucode.SeqNext {
					t.Fatalf("flow %s: fusible interior %05o sequences (%v)", f.Name, w, mi.Seq)
				}
				if mi.IB != ucode.IBNone {
					t.Fatalf("flow %s: fusible interior %05o performs IB function %v", f.Name, w, mi.IB)
				}
			}
		}
	}
}
