package ulint

import (
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/paper"
	"vax780/internal/ucode"
	"vax780/internal/upc"
	"vax780/internal/urom"
)

// TestShippedROMProven is the analyzer's reason to exist: the shipped
// control store passes every pass with zero findings, every word is
// reachable from the dispatch tables, and every tickable bucket is
// attributed to a Table 8 cell — the attribution-completeness proof.
func TestShippedROMProven(t *testing.T) {
	rep := AnalyzeROM(urom.Build())
	if !rep.Clean() {
		for _, f := range rep.Findings {
			t.Errorf("finding: %v", f)
		}
		t.Fatalf("shipped ROM has %d findings", len(rep.Findings))
	}
	if !rep.Proven() {
		t.Fatalf("attribution incomplete: %d/%d buckets",
			rep.AttributedBuckets, rep.TickableBuckets)
	}
	if rep.Reachable != rep.Words {
		t.Errorf("reachable %d of %d words: dead microcode in the shipped store",
			rep.Reachable, rep.Words)
	}
	if len(rep.Bounds) == 0 {
		t.Error("no flow bounds computed")
	}
	for _, b := range rep.Bounds {
		if b.Straight < 1 || b.Worst < b.Straight {
			t.Errorf("flow %s: nonsensical bound %+v", b.Name, b)
		}
		for _, l := range b.Loops {
			if l.Cap < 1 || l.Body < 1 {
				t.Errorf("flow %s: nonsensical loop bound %+v", b.Name, l)
			}
		}
	}
}

// TestStaticAttributionMatchesDynamic cross-checks the static proof
// against the dynamic reduction bucket for bucket: planting one count in
// every tickable bucket the analyzer saw must land every single count in
// a CPI cell — the matrix total equals the analyzer's bucket count, so
// neither side attributes a bucket the other drops.
func TestStaticAttributionMatchesDynamic(t *testing.T) {
	rom := urom.Build()
	rep := AnalyzeROM(rom)
	if !rep.Proven() {
		t.Fatal("precondition: shipped ROM must prove complete")
	}

	img := rom.Image
	h := &upc.Histogram{}
	planted := 0
	for addr := 1; addr < img.Size(); addr++ {
		mi := img.At(uint16(addr))
		if analysis.BucketTickable(mi, false) {
			h.Normal[addr] = 1
			planted++
		}
		if analysis.BucketTickable(mi, true) {
			h.Stalled[addr] = 1
			planted++
		}
	}
	if planted != rep.TickableBuckets {
		t.Fatalf("planted %d buckets, analyzer counted %d", planted, rep.TickableBuckets)
	}

	m := analysis.New(rom, h).CPIMatrix()
	var total float64
	for r := paper.Table8Row(0); r < paper.NumT8Rows; r++ {
		for c := paper.Table8Col(0); c < paper.NumT8Cols; c++ {
			total += m.Cells[r][c]
		}
	}
	if int(total) != rep.AttributedBuckets {
		t.Errorf("dynamic reduction attributed %v counts, static proof %d buckets",
			total, rep.AttributedBuckets)
	}
}

// --- golden broken control stores ---

// brokenStore assembles a minimal image around a decode word and returns
// it with matching roots. mutate adds the flows under test.
func brokenStore(t *testing.T, mutate func(a *ucode.Assembler)) (*ucode.Image, Roots) {
	t.Helper()
	a := ucode.NewAssembler()
	a.Region(ucode.RegDecode)
	a.Label("ird").DecodeInstr("decode")
	mutate(a)
	img, err := a.Assemble()
	if err != nil {
		t.Fatalf("assembling golden store: %v", err)
	}
	roots := Roots{IRD: img.Addr("ird")}
	for _, name := range img.SortedLabels() {
		if len(name) > 5 && name[:5] == "exec." {
			roots.Exec = append(roots.Exec, img.Addr(name))
		}
	}
	return img, roots
}

func kindCount(rep *Report, k Kind) int { return len(rep.ByKind(k)) }

// TestGoldenDeadFlow: a fully labelled flow that no dispatch table
// points at. ucode.Verify's label-rooted walk considers it alive — only
// the dispatch-rooted analyzer can see it is dead.
func TestGoldenDeadFlow(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.live").End("dispatched")
		a.Label("orphan").Compute(1, "never dispatched").End("done")
	})
	rep := Analyze(img, roots)

	dead := rep.ByKind(KindDeadWord)
	if len(dead) != 2 {
		t.Fatalf("want 2 dead words (the orphan flow), got %v", rep.Findings)
	}
	for _, f := range dead {
		if f.Severity != ucode.SevWarning {
			t.Errorf("dead word should be a warning: %v", f)
		}
	}
	// The per-word verifier must NOT have seen it: that is the point.
	for _, f := range rep.ByKind(KindVerify) {
		if f.VerifyKind == ucode.IssueUnreachable {
			t.Errorf("label-rooted verifier unexpectedly flagged the orphan: %v", f)
		}
	}
}

// TestGoldenNonTerminatingFlow: a jump cycle with no loop counter. Every
// per-word check passes — both jumps are in range with labelled targets —
// yet no execution of the flow can ever reach IRD.
func TestGoldenNonTerminatingFlow(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.spin").Jump("exec.spin.b", "to b")
		a.Label("exec.spin.b").Jump("exec.spin", "back to a")
	})
	rep := Analyze(img, roots)
	if kindCount(rep, KindNonTerminating) == 0 {
		t.Fatalf("jump cycle not reported: %v", rep.Findings)
	}
	if kindCount(rep, KindVerify) != 0 {
		t.Errorf("per-word verifier should be blind to this: %v", rep.ByKind(KindVerify))
	}
	// The broken flow must be excluded from the bounds table.
	for _, b := range rep.Bounds {
		if b.Name == "exec.spin" {
			t.Errorf("non-terminating flow got a bound: %v", b)
		}
	}
}

// TestGoldenCounterReloadInLoop: a loop whose head reloads the loop
// counter restarts itself every iteration. The loop closer itself is
// legal (backward, in range); only body analysis catches the reload.
func TestGoldenCounterReloadInLoop(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.reload").LoopLoad(ucode.LoopImm, 4, "init count")
		a.Label("exec.reload.head").LoopLoad(ucode.LoopImm, 4, "reload every pass")
		a.Compute(1, "body")
		a.LoopBack("exec.reload.head", ucode.MemNone, "again")
		a.End("done")
	})
	rep := Analyze(img, roots)
	found := false
	for _, f := range rep.ByKind(KindNonTerminating) {
		if f.Addr == img.Addr("exec.reload.head") {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter reload inside loop body not reported: %v", rep.Findings)
	}
}

// TestGoldenUnattributedBucket: a reachable word outside every region is
// invisible to the Table 8 decomposition — its cycles would be counted
// by the monitor and dropped by the reduction.
func TestGoldenUnattributedBucket(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.ok").Compute(1, "fine")
		a.Region(ucode.RegNone)
		a.End("regionless tail, reachable by fall-through")
	})
	rep := Analyze(img, roots)
	if kindCount(rep, KindUnattributed) != 1 {
		t.Fatalf("unattributed bucket not reported exactly once: %v", rep.Findings)
	}
	if rep.Proven() {
		t.Error("Proven() must be false with an unattributed bucket")
	}
	// The per-word region check fires too; both views of the same rot.
	hasNoRegion := false
	for _, f := range rep.ByKind(KindVerify) {
		if f.VerifyKind == ucode.IssueNoRegion {
			hasNoRegion = true
		}
	}
	if !hasNoRegion {
		t.Error("expected the wrapped no-region verify issue alongside")
	}
}

// TestGoldenIllegalStallEntry: an IB-stall wait word reached by
// fall-through would count phantom IB-stall cycles. Per-word checks see
// a perfectly well-formed stall word; only the edge view catches it.
func TestGoldenIllegalStallEntry(t *testing.T) {
	var stall uint16
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.f").Compute(1, "falls into the stall word")
		a.Region(ucode.RegDecode)
		a.Label("stall.bad").IBStallLoc(ucode.IBDecodeSpec, "stall")
	})
	stall = img.Addr("stall.bad")
	roots.StallSpecN = stall
	rep := Analyze(img, roots)
	if kindCount(rep, KindIllegalStall) != 1 {
		t.Fatalf("illegal stall entry not reported: %v", rep.Findings)
	}
	if f := rep.ByKind(KindIllegalStall)[0]; f.Addr != stall {
		t.Errorf("finding at %05o, want %05o", f.Addr, stall)
	}
}

// TestGoldenTrapIllegalFlow: the EBOX trap loop executes only
// next/jump/rfi and no I-stream functions; a dispatch inside a trap
// service flow would error at the first TB miss in the field.
func TestGoldenTrapIllegalFlow(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegMemMgmt)
		a.Label("tbmiss").
			Compute(1, "classify").
			DecodeSpec("dispatch inside a trap flow")
	})
	roots.Trap = []uint16{img.Addr("tbmiss")}
	rep := Analyze(img, roots)
	if kindCount(rep, KindTrapIllegalSeq) != 1 {
		t.Fatalf("illegal trap sequencer not reported: %v", rep.Findings)
	}
	if kindCount(rep, KindTrapIllegalIB) != 1 {
		t.Fatalf("I-stream function in trap flow not reported: %v", rep.Findings)
	}
}

// TestGoldenPTEOutsideTrap: a physical PTE read in an execute flow
// bypasses translation on a path where no fault is being serviced.
func TestGoldenPTEOutsideTrap(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.pte").
			Mem(ucode.MemReadPTE, "PTE read in an execute flow").
			End("done")
	})
	rep := Analyze(img, roots)
	if kindCount(rep, KindPTEOutsideTrap) != 1 {
		t.Fatalf("PTE read outside trap flows not reported: %v", rep.Findings)
	}
}

// TestGoldenBadRoot: a dispatch table pointing outside the image stops
// the graph passes instead of panicking on an out-of-range access.
func TestGoldenBadRoot(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.x").End("fine")
	})
	roots.Exec = append(roots.Exec, uint16(img.Size()+100))
	rep := Analyze(img, roots)
	if kindCount(rep, KindBadRoot) != 1 {
		t.Fatalf("out-of-range root not reported: %v", rep.Findings)
	}
	if rep.TickableBuckets != 0 {
		t.Error("graph passes should not run on a structurally broken store")
	}
}

// TestGoldenLoopBound pins the bound arithmetic on a known shape: a
// 2-word body looped up to 5 times plus entry and exit words.
func TestGoldenLoopBound(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.loop").LoopLoad(ucode.LoopImm, 5, "count = 5")
		a.Label("exec.loop.head").Compute(1, "body work")
		a.LoopBack("exec.loop.head", ucode.MemNone, "close")
		a.End("done")
	})
	rep := Analyze(img, roots)
	var fb *FlowBound
	for i := range rep.Bounds {
		if rep.Bounds[i].Name == "exec.loop" {
			fb = &rep.Bounds[i]
		}
	}
	if fb == nil {
		t.Fatalf("no bound for exec.loop: %+v", rep.Bounds)
	}
	// Straight: load + body + closer + end = 4; worst adds 4 extra
	// 2-cycle iterations.
	if fb.Straight != 4 || fb.Worst != 4+4*2 {
		t.Errorf("bound = straight %d worst %d, want 4 and 12", fb.Straight, fb.Worst)
	}
	if len(fb.Loops) != 1 || fb.Loops[0].Cap != 5 || fb.Loops[0].Body != 2 {
		t.Errorf("loop bound %+v, want cap 5 body 2", fb.Loops)
	}
}

// TestFindingString pins the report line format.
func TestFindingString(t *testing.T) {
	f := Finding{Kind: KindDeadWord, Severity: ucode.SevWarning, Addr: 8, Flow: "exec.x", Msg: "m"}
	if got := f.String(); got != "00010 (exec.x): warning: [dead-word] m" {
		t.Errorf("Finding.String = %q", got)
	}
}

// TestKindNamesDistinct: every finding kind renders a distinct name.
func TestKindNamesDistinct(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
}
