package ulint

import (
	"sort"

	"vax780/internal/ucode"
)

// EdgeKind classifies a control-flow edge by the mechanism that takes
// it. The passes discriminate on kind: stall words may only be entered
// by Dispatch/Call edges, termination ignores Dispatch exits, loop
// analysis treats LoopBack edges as bounded.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFall     EdgeKind = iota // SeqNext fall-through
	EdgeJump                     // SeqJump
	EdgeLoopBack                 // SeqLoop while the counter is positive
	EdgeLoopExit                 // SeqLoop fall-through when it reaches zero
	EdgeDispatch                 // I-Decode table dispatch (IRD, specifier, store, base)
	EdgeCall                     // B-DISP micro-subroutine entry
	EdgeReturn                   // SeqURet to a collected return site
	EdgeTrap                     // abort cycle into a microtrap service entry
)

var edgeKindNames = [...]string{
	"fall", "jump", "loop-back", "loop-exit", "dispatch", "call", "return", "trap",
}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return "EdgeKind(?)"
}

// Edge is one outgoing control transfer.
type Edge struct {
	To   uint16
	Kind EdgeKind
}

// predEdge is one incoming control transfer.
type predEdge struct {
	From uint16
	Kind EdgeKind
}

// cfg is the inter-flow control flow graph: the exact successor relation
// the EBOX microsequencer implements, with dispatch-table fan-out made
// explicit.
type cfg struct {
	img  *ucode.Image
	succ [][]Edge
	pred [][]predEdge

	// returnSites are the locations a SeqURet can transfer to: the
	// taken-path targets of conditional branch cycles plus the word after
	// each stand-alone branch-decode dispatch.
	returnSites []uint16
}

// buildCFG constructs the graph. It assumes the image passed the
// structural subset of ucode.Verify (targets in range, no fall-through
// past the end); Analyze enforces that before calling.
func buildCFG(img *ucode.Image, roots Roots) *cfg {
	n := img.Size()
	g := &cfg{
		img:  img,
		succ: make([][]Edge, n),
		pred: make([][]predEdge, n),
	}

	// Collect SeqURet return sites first: the B-DISP subroutine is shared,
	// so its return edge fans out to every call site's continuation. The
	// set is deduplicated through one map (shared sites stay O(1) to
	// collect, never O(sites) per collector) and sorted by site address,
	// so the URet fan-out — and everything derived from it, like the
	// return-fusion edges — is deterministic regardless of where in the
	// image the collecting words sit.
	seen := make(map[uint16]bool)
	for addr := 0; addr < n; addr++ {
		mi := img.At(uint16(addr))
		var site uint16
		switch {
		case mi.Seq == ucode.SeqCondTaken:
			site = mi.Target
		case mi.Seq == ucode.SeqDispatch && mi.IB == ucode.IBDecodeBranch && !mi.IBStall:
			// Stand-alone always-taken branch decode returns to the next word.
			site = uint16(addr) + 1
		default:
			continue
		}
		if !seen[site] {
			seen[site] = true
			g.returnSites = append(g.returnSites, site)
		}
	}
	sort.Slice(g.returnSites, func(i, j int) bool {
		return g.returnSites[i] < g.returnSites[j]
	})

	for addr := 0; addr < n; addr++ {
		a := uint16(addr)
		mi := img.At(a)
		add := func(to uint16, kind EdgeKind) {
			// Address 0 encodes an absent table entry; a stall word's
			// dispatch set includes its own context's stall location, which
			// is not a transfer (the wait re-executes the same bucket).
			if to == 0 || to == a || int(to) >= n {
				return
			}
			g.succ[a] = append(g.succ[a], Edge{To: to, Kind: kind})
			g.pred[to] = append(g.pred[to], predEdge{From: a, Kind: kind})
		}

		switch mi.Seq {
		case ucode.SeqNext:
			add(a+1, EdgeFall)

		case ucode.SeqJump:
			add(mi.Target, EdgeJump)

		case ucode.SeqLoop:
			add(mi.Target, EdgeLoopBack)
			add(a+1, EdgeLoopExit)

		case ucode.SeqEndInstr, ucode.SeqTrapRet:
			// Terminators: back to IRD / back to the trapped reference.

		case ucode.SeqStore:
			// Register destination ends the instruction; memory destination
			// dispatches to the position's result-store flow.
			add(roots.RStore[0], EdgeDispatch)
			add(roots.RStore[1], EdgeDispatch)

		case ucode.SeqCondTaken:
			// Taken: decode the displacement (possibly stalling) and call
			// the B-DISP subroutine, which returns to Target (a return
			// site, reached via the URet edges). Untaken ends the
			// instruction in this cycle.
			add(roots.BDisp, EdgeCall)
			add(roots.StallBDisp, EdgeCall)

		case ucode.SeqURet:
			for _, site := range g.returnSites {
				add(site, EdgeReturn)
			}

		case ucode.SeqDispatch:
			switch mi.IB {
			case ucode.IBDecodeInstr:
				// Opcode consumed: first-specifier flow (possibly after a
				// specifier stall), index preamble, or straight to execute.
				add(roots.StallInstr, EdgeDispatch)
				add(roots.StallSpec1, EdgeDispatch)
				for _, e := range roots.Spec1 {
					add(e, EdgeDispatch)
				}
				add(roots.Idx[0], EdgeDispatch)
				for _, e := range roots.Exec {
					add(e, EdgeDispatch)
				}
			case ucode.IBDecodeSpec:
				// Next specifier or the execute flow.
				add(roots.StallSpecN, EdgeDispatch)
				for _, e := range roots.SpecN {
					add(e, EdgeDispatch)
				}
				add(roots.Idx[1], EdgeDispatch)
				for _, e := range roots.Exec {
					add(e, EdgeDispatch)
				}
			case ucode.IBDecodeBranch:
				add(roots.BDisp, EdgeCall)
				add(roots.StallBDisp, EdgeCall)
			case ucode.IBNone:
				// Index-preamble base dispatch: the pending base entry is
				// always a later-position specifier flow (the sharing the
				// paper's SPEC1/SPEC2-6 attribution artifact comes from).
				for _, e := range roots.SpecN {
					add(e, EdgeDispatch)
				}
			}
		}
	}

	// The trap machinery: one abort cycle, then the service entry.
	if roots.Abort != 0 {
		for _, t := range roots.Trap {
			if int(t) < n && t != roots.Abort {
				g.succ[roots.Abort] = append(g.succ[roots.Abort], Edge{To: t, Kind: EdgeTrap})
				g.pred[t] = append(g.pred[t], predEdge{From: roots.Abort, Kind: EdgeTrap})
			}
		}
	}
	return g
}

// reachableFrom runs a forward walk over all edge kinds from the given
// roots and returns the visited set.
func (g *cfg) reachableFrom(roots []uint16) []bool {
	reached := make([]bool, len(g.succ))
	stack := append([]uint16(nil), roots...)
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(a) >= len(reached) || reached[a] {
			continue
		}
		reached[a] = true
		for _, e := range g.succ[a] {
			if !reached[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return reached
}
