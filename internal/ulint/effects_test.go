package ulint

import (
	"testing"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

// --- shipped-ROM effect coverage ---

// TestShippedROMEffectsProven is the -effects gate's substance: every
// fusible segment of the shipped control store carries a proven
// EffectSummary, and every summary's trajectory is the closed form the
// fused replay assumes.
func TestShippedROMEffectsProven(t *testing.T) {
	rep := AnalyzeROM(urom.Build())
	if rep.FusibleSegments == 0 {
		t.Fatal("no fusible segments found in the shipped ROM")
	}
	if rep.SummarizedEffects != rep.FusibleSegments {
		t.Fatalf("effect summaries proven for %d of %d fusible segments",
			rep.SummarizedEffects, rep.FusibleSegments)
	}
	if len(rep.Effects) != rep.SummarizedEffects {
		t.Fatalf("%d summaries recorded, %d counted", len(rep.Effects), rep.SummarizedEffects)
	}
	for _, s := range rep.Effects {
		if len(s.UPCs) != s.Len || len(s.Classes) != s.Len {
			t.Fatalf("summary %05o+%d has %d UPCs, %d classes", s.Start, s.Len, len(s.UPCs), len(s.Classes))
		}
		for i, u := range s.UPCs {
			if u != s.Start+uint16(i) {
				t.Fatalf("summary %05o+%d: cycle %d at %05o, want the closed form %05o",
					s.Start, s.Len, i, u, s.Start+uint16(i))
			}
		}
	}
}

// TestFlowIndexEffects checks the cached-index plumbing: every proven
// summary is resolvable by segment head, and the return edges ride
// along.
func TestFlowIndexEffects(t *testing.T) {
	rom := urom.Build()
	ix := NewFlowIndex(rom)
	rep := AnalyzeROM(rom)
	if len(ix.Effects()) == 0 {
		t.Fatal("flow index carries no effect summaries")
	}
	for _, s := range ix.Effects() {
		got, ok := ix.EffectOf(s.Start)
		if !ok || got.Len != s.Len {
			t.Fatalf("EffectOf(%05o) = %v, %v", s.Start, got, ok)
		}
	}
	if len(ix.ReturnEdges()) != len(rep.URetEdges) {
		t.Fatalf("index has %d return edges, report %d", len(ix.ReturnEdges()), len(rep.URetEdges))
	}
}

// --- golden broken control stores for the new passes ---

// TestGoldenEffectMismatch: a regionless word spliced into the middle of
// a straight-line run. The segmentation still calls the run fusible —
// the word is a pure fall-through compute cycle — but its histogram
// bucket has no Table 8 cell, so the closed-form effect stream cannot
// be replayed and the effect proof must reject the segment.
func TestGoldenEffectMismatch(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.fx").Compute(1, "head")
		a.Region(ucode.RegNone)
		a.Compute(1, "regionless interior")
		a.Region(ucode.RegExecSimple)
		a.Compute(1, "third")
		a.End("done")
	})
	rep := Analyze(img, roots)

	bad := img.Addr("exec.fx") + 1
	mm := rep.ByKind(KindEffectMismatch)
	if len(mm) != 1 {
		t.Fatalf("want exactly one effect mismatch, got %v", rep.Findings)
	}
	if mm[0].Addr != bad {
		t.Errorf("mismatch at %05o, want %05o", mm[0].Addr, bad)
	}
	if mm[0].Severity != ucode.SevError {
		t.Errorf("effect mismatch must be an error: %v", mm[0])
	}
	if rep.SummarizedEffects >= rep.FusibleSegments {
		t.Errorf("coverage %d/%d should show the unproven segment",
			rep.SummarizedEffects, rep.FusibleSegments)
	}
}

// TestGoldenURetBadTarget: conditional branches whose taken-path return
// sites are an IB-stall wait word and a trap-service word — locations a
// B-DISP return must never land on. Both words are structurally
// well-formed; only the return-site pass sees the illegal landing.
func TestGoldenURetBadTarget(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.br1").CondTaken("stall.bad", "returns to a stall word")
		a.Label("exec.br2").CondTaken("trap.bad", "returns into trap service")
		a.Region(ucode.RegDecode)
		a.Label("stall.bad").IBStallLoc(ucode.IBDecodeSpec, "stall")
		a.Region(ucode.RegMemMgmt)
		a.Label("trap.bad").Compute(1, "trap work").TrapRet("rfi")
	})
	roots.Trap = []uint16{img.Addr("trap.bad")}
	rep := Analyze(img, roots)

	bad := rep.ByKind(KindURetBadTarget)
	if len(bad) != 2 {
		t.Fatalf("want two bad return sites (stall + trap), got %v", rep.Findings)
	}
	want := map[uint16]bool{img.Addr("stall.bad"): true, img.Addr("trap.bad"): true}
	for _, f := range bad {
		if !want[f.Addr] {
			t.Errorf("unexpected bad-target finding at %05o", f.Addr)
		}
		if f.Severity != ucode.SevError {
			t.Errorf("bad return site must be an error: %v", f)
		}
	}
}

// TestGoldenURetMidSegment: a conditional branch whose return site lands
// in the interior of another flow's fusible segment. In the branch's own
// flow the return edge makes the site a segment head, but in the owning
// flow it stays interior — fusing that segment would jump the return
// into the middle of a superword.
func TestGoldenURetMidSegment(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.a").Compute(1, "w0")
		a.Label("mid.x").Compute(1, "w1: the foreign return site")
		a.Compute(1, "w2")
		a.End("w3")
		a.Label("exec.b").CondTaken("mid.x", "returns mid-segment")
	})
	rep := Analyze(img, roots)

	mid := rep.ByKind(KindURetMidSegment)
	if len(mid) != 1 {
		t.Fatalf("want exactly one mid-segment return site, got %v", rep.Findings)
	}
	if want := img.Addr("mid.x"); mid[0].Addr != want {
		t.Errorf("finding at %05o, want %05o", mid[0].Addr, want)
	}
	if mid[0].Severity != ucode.SevError {
		t.Errorf("mid-segment return site must be an error: %v", mid[0])
	}
}

// TestReturnFusionEdges: the positive case. A taken branch calls the
// B-DISP subroutine, whose uret returns to a site rooting a fusible
// segment — the pass must emit exactly that cross-flow edge, marked
// fusible, with no findings.
func TestReturnFusionEdges(t *testing.T) {
	img, roots := brokenStore(t, func(a *ucode.Assembler) {
		a.Region(ucode.RegExecSimple)
		a.Label("exec.br").CondTaken("exec.cont", "taken branch")
		a.Label("exec.cont").Compute(1, "c0").Compute(1, "c1").End("done")
		a.Label("bdisp").Compute(1, "displacement add").URet("return")
	})
	roots.BDisp = img.Addr("bdisp")
	rep := Analyze(img, roots)

	for _, k := range []Kind{KindURetBadTarget, KindURetMidSegment, KindEffectMismatch} {
		if n := kindCount(rep, k); n != 0 {
			t.Fatalf("unexpected %v findings: %v", k, rep.Findings)
		}
	}
	if len(rep.URetEdges) != 1 {
		t.Fatalf("want one return-fusion edge, got %v", rep.URetEdges)
	}
	e := rep.URetEdges[0]
	if e.From != img.Addr("bdisp")+1 || e.To != img.Addr("exec.cont") {
		t.Errorf("edge %05o->%05o, want %05o->%05o",
			e.From, e.To, img.Addr("bdisp")+1, img.Addr("exec.cont"))
	}
	if !e.Fusible {
		t.Error("return site roots a fusible segment; edge must be marked fusible")
	}
}

// TestShippedROMReturnEdges pins the shipped store's return-edge count
// against the committed vaxlint golden: 5 edges (the golden JSON's
// return_edges) with deterministic order.
func TestShippedROMReturnEdges(t *testing.T) {
	rep := AnalyzeROM(urom.Build())
	if len(rep.URetEdges) == 0 {
		t.Fatal("shipped ROM has uret words but no return edges")
	}
	for i := 1; i < len(rep.URetEdges); i++ {
		a, b := rep.URetEdges[i-1], rep.URetEdges[i]
		if b.From < a.From || (b.From == a.From && b.To <= a.To) {
			t.Fatalf("return edges not in deterministic order: %+v then %+v", a, b)
		}
	}
}
