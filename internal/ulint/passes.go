package ulint

import (
	"fmt"
	"sort"

	"vax780/internal/analysis"
	"vax780/internal/ucode"
)

// passDeadWords computes dispatch-rooted reachability. Control enters
// the store only at the decode dispatch, interrupt delivery, and the
// microtrap path; every other word must be reachable from those through
// real edges. This is strictly stronger than the label-rooted check in
// ucode.Verify: a fully-formed flow whose dispatch-table entry was
// dropped is dead here but alive there.
func (a *analyzer) passDeadWords(r *Report) {
	a.reached = a.cfg.reachableFrom(a.roots.globals())
	for addr := 1; addr < a.img.Size(); addr++ {
		if a.reached[addr] {
			r.Reachable++
			continue
		}
		mi := a.img.At(uint16(addr))
		what := "word"
		if mi.Label != "" {
			what = fmt.Sprintf("flow %q", mi.Label)
		}
		a.add(Finding{
			Kind:     KindDeadWord,
			Severity: ucode.SevWarning,
			Addr:     uint16(addr),
			Msg:      fmt.Sprintf("%s is unreachable from every dispatch entry point", what),
		})
	}
}

// passAttribution is the completeness proof: every histogram bucket the
// EBOX can tick on a reachable word must map to a Table 8 cell under
// analysis.BucketCell — the same function the dynamic reduction uses.
// A tickable-but-unattributed bucket means a workload could spend
// cycles the CPI decomposition silently drops.
func (a *analyzer) passAttribution(r *Report) {
	for addr := 1; addr < a.img.Size(); addr++ {
		if !a.reached[addr] {
			continue
		}
		mi := a.img.At(uint16(addr))
		for _, stalled := range []bool{false, true} {
			if !analysis.BucketTickable(mi, stalled) {
				continue
			}
			r.TickableBuckets++
			if _, _, ok := analysis.BucketCell(mi, stalled); ok {
				r.AttributedBuckets++
				continue
			}
			set := "normal"
			if stalled {
				set = "stalled"
			}
			a.addf(KindUnattributed, ucode.SevError, uint16(addr), "",
				"tickable %s-set bucket has no Table 8 cell (region %v)", set, mi.Region)
		}
	}
}

// passTrapLegality checks the microtrap service flows against the trap
// loop's contract: the EBOX trap executor accepts only SeqNext, SeqJump
// and SeqTrapRet, and performs no I-stream side effects, so any other
// sequencer or IB function in a trap flow is a runtime error waiting for
// the first TB miss. PTE reads bypass translation and are meaningful
// only inside trap service, so one reachable anywhere else is flagged.
func (a *analyzer) passTrapLegality() {
	n := a.img.Size()
	inTrap := make([]bool, n)
	stack := append([]uint16(nil), a.roots.Trap...)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inTrap[w] {
			continue
		}
		inTrap[w] = true
		for _, e := range a.cfg.succ[w] {
			if (e.Kind == EdgeFall || e.Kind == EdgeJump) && !inTrap[e.To] {
				stack = append(stack, e.To)
			}
		}
	}

	for addr := 1; addr < n; addr++ {
		mi := a.img.At(uint16(addr))
		if inTrap[addr] {
			switch mi.Seq {
			case ucode.SeqNext, ucode.SeqJump, ucode.SeqTrapRet:
			default:
				a.addf(KindTrapIllegalSeq, ucode.SevError, uint16(addr), "",
					"trap service flow uses %v; the trap loop accepts only next/jump/rfi", mi.Seq)
			}
			if mi.IB != ucode.IBNone {
				a.addf(KindTrapIllegalIB, ucode.SevError, uint16(addr), "",
					"trap service flow carries I-stream function %v, which the trap loop cannot execute", mi.IB)
			}
		} else if a.reached[addr] && mi.Mem == ucode.MemReadPTE {
			a.addf(KindPTEOutsideTrap, ucode.SevError, uint16(addr), "",
				"physical PTE read reachable outside the trap service flows")
		}
	}
}

// passStallEntry checks that IB-stall wait locations are entered only by
// the dispatch machinery. A fall-through, jump or loop edge into a stall
// word would execute it as ordinary microcode, counting IB-stall cycles
// that never happened — corrupting exactly the metric the stall words
// exist to isolate (§4.3).
func (a *analyzer) passStallEntry() {
	for addr := 1; addr < a.img.Size(); addr++ {
		if !a.img.At(uint16(addr)).IBStall {
			continue
		}
		for _, p := range a.cfg.pred[addr] {
			switch p.Kind {
			case EdgeDispatch, EdgeCall:
			default:
				a.addf(KindIllegalStall, ucode.SevError, uint16(addr), "",
					"IB-stall word entered by %v edge from %05o; stall words may only be dispatch targets",
					p.Kind, p.From)
			}
		}
	}
}

// intraSucc returns the successors of a word within one flow: the edges
// control follows between a dispatch entry and the flow's exits. The
// taken path of a conditional branch continues at its target (the
// B-DISP subroutine returns there), so it is an intra-flow edge; table
// dispatches and instruction terminators are flow exits.
func (a *analyzer) intraSucc(addr uint16) []Edge {
	mi := a.img.At(addr)
	switch mi.Seq {
	case ucode.SeqNext:
		return []Edge{{To: addr + 1, Kind: EdgeFall}}
	case ucode.SeqJump:
		return []Edge{{To: mi.Target, Kind: EdgeJump}}
	case ucode.SeqLoop:
		return []Edge{{To: mi.Target, Kind: EdgeLoopBack}, {To: addr + 1, Kind: EdgeLoopExit}}
	case ucode.SeqCondTaken:
		return []Edge{{To: mi.Target, Kind: EdgeReturn}}
	}
	return nil
}

// isFlowExit reports whether executing the word can end the flow: table
// dispatches hand control to another flow, terminators end the
// instruction or trap, and a conditional branch ends the instruction on
// its untaken path.
func isFlowExit(mi *ucode.MicroInst) bool {
	switch mi.Seq {
	case ucode.SeqDispatch, ucode.SeqEndInstr, ucode.SeqStore,
		ucode.SeqTrapRet, ucode.SeqURet, ucode.SeqCondTaken:
		return true
	}
	return false
}

// flowEntries enumerates every flow entry point, deduplicated and
// sorted: the units of the termination and bounds passes.
func (a *analyzer) flowEntries() []uint16 {
	set := make(map[uint16]bool)
	for _, e := range a.roots.all() {
		set[e.addr] = true
	}
	out := make([]uint16, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flowWords collects the words of one flow by walking intra-flow edges
// from its entry.
func (a *analyzer) flowWords(entry uint16) []uint16 {
	seen := make(map[uint16]bool)
	stack := []uint16{entry}
	var words []uint16
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(w) >= a.img.Size() || seen[w] {
			continue
		}
		seen[w] = true
		words = append(words, w)
		for _, e := range a.intraSucc(w) {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	return words
}

// flowName renders the flow entry's label for findings and bounds.
func (a *analyzer) flowName(entry uint16) string {
	if l := a.img.At(entry).Label; l != "" {
		return l
	}
	return fmt.Sprintf("%05o", entry)
}

// passTermination proves each flow reaches an exit on all paths:
//
//  1. with the bounded loop back edges removed, the flow's graph must be
//     acyclic — a jump cycle has no counter to run it down, so it never
//     terminates;
//  2. no word inside a loop body may reload the loop counter — the EBOX
//     has one counter, and a reload inside the body restarts the loop
//     every iteration;
//  3. every word must reach an exit (redundant given 1 and the per-word
//     checks, kept as a structural backstop).
func (a *analyzer) passTermination() {
	for _, entry := range a.flowEntries() {
		words := a.flowWords(entry)
		name := a.flowName(entry)
		inFlow := make(map[uint16]bool, len(words))
		for _, w := range words {
			inFlow[w] = true
		}

		// (1) cycle detection with LoopBack edges removed.
		if at, found := a.findCycle(words, false); found {
			a.add(Finding{
				Kind: KindNonTerminating, Severity: ucode.SevError,
				Addr: at, Flow: name,
				Msg: "flow cycles without a bounded loop back edge; no path terminates",
			})
			a.badFlows[entry] = true
			continue
		}

		// (2) counter reloads inside loop bodies.
		for _, closer := range words {
			if a.img.At(closer).Seq != ucode.SeqLoop {
				continue
			}
			for _, w := range a.loopBody(closer, inFlow) {
				if mi := a.img.At(w); mi.Loop != ucode.LoopNone {
					a.add(Finding{
						Kind: KindNonTerminating, Severity: ucode.SevError,
						Addr: w, Flow: name,
						Msg: fmt.Sprintf("loop counter reloaded inside the body of the loop closing at %05o", closer),
					})
					a.badFlows[entry] = true
				}
			}
		}
		if a.badFlows[entry] {
			continue
		}

		// (3) exit reachability.
		exitReach := make(map[uint16]bool)
		var stack []uint16
		for _, w := range words {
			if isFlowExit(a.img.At(w)) {
				stack = append(stack, w)
			}
		}
		rev := make(map[uint16][]uint16)
		for _, w := range words {
			for _, e := range a.intraSucc(w) {
				if inFlow[e.To] {
					rev[e.To] = append(rev[e.To], w)
				}
			}
		}
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if exitReach[w] {
				continue
			}
			exitReach[w] = true
			stack = append(stack, rev[w]...)
		}
		for _, w := range words {
			if !exitReach[w] {
				a.add(Finding{
					Kind: KindNoExit, Severity: ucode.SevError,
					Addr: w, Flow: name,
					Msg: "no path from this word reaches a flow exit",
				})
				a.badFlows[entry] = true
			}
		}
	}
}

// findCycle runs an iterative three-color DFS over the flow's intra
// graph and reports the first cycle target. withLoopBack includes the
// bounded loop edges.
func (a *analyzer) findCycle(words []uint16, withLoopBack bool) (uint16, bool) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[uint16]int, len(words))
	inFlow := make(map[uint16]bool, len(words))
	for _, w := range words {
		inFlow[w] = true
	}
	type frame struct {
		node uint16
		next int
	}
	for _, start := range words {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := a.intraSucc(f.node)
			advanced := false
			for f.next < len(succ) {
				e := succ[f.next]
				f.next++
				if !withLoopBack && e.Kind == EdgeLoopBack {
					continue
				}
				if !inFlow[e.To] {
					continue
				}
				switch color[e.To] {
				case grey:
					return e.To, true
				case white:
					color[e.To] = grey
					stack = append(stack, frame{node: e.To})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return 0, false
}

// loopBody returns the words of the loop closed by closer: the words
// reachable from the loop head (closer's target) that can reach closer
// again, following only non-LoopBack intra edges. Includes the head and
// the closer.
func (a *analyzer) loopBody(closer uint16, inFlow map[uint16]bool) []uint16 {
	head := a.img.At(closer).Target

	fwd := make(map[uint16]bool)
	stack := []uint16{head}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fwd[w] || !inFlow[w] {
			continue
		}
		fwd[w] = true
		if w == closer {
			continue // the back edge itself is excluded
		}
		for _, e := range a.intraSucc(w) {
			if e.Kind != EdgeLoopBack && !fwd[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	if !fwd[closer] {
		return nil // closer unreachable from its own head: degenerate
	}

	rev := make(map[uint16][]uint16)
	for w := range fwd {
		for _, e := range a.intraSucc(w) {
			if e.Kind != EdgeLoopBack && fwd[e.To] {
				rev[e.To] = append(rev[e.To], w)
			}
		}
	}
	bwd := make(map[uint16]bool)
	stack = []uint16{closer}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if bwd[w] {
			continue
		}
		bwd[w] = true
		stack = append(stack, rev[w]...)
	}

	var body []uint16
	for w := range fwd {
		if bwd[w] {
			body = append(body, w)
		}
	}
	sort.Slice(body, func(i, j int) bool { return body[i] < body[j] })
	return body
}
