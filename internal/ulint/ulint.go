// Package ulint is the control-store static analyzer: it proves, over
// the assembled ROM and its dispatch tables, the properties the
// measurement methodology assumes but the per-word checks in
// internal/ucode cannot see.
//
// Where ucode.Verify inspects one microword at a time and trusts labels
// as entry points, ulint reconstructs the precise inter-flow control
// flow graph the EBOX actually executes — dispatch tables from
// internal/urom, opcode entry points, the shared specifier and B-DISP
// flows, trap service entries — and runs whole-program passes over it:
//
//   - attribution completeness: every histogram bucket the monitor can
//     tick on a reachable microword maps to exactly one activity ×
//     cycle-class cell of the Table 8 CPI decomposition, using the same
//     analysis.BucketCell map the dynamic reduction applies, so static
//     and dynamic attribution cannot diverge;
//   - flow termination: every flow entered from a dispatch table
//     reaches an end-of-instruction exit on all paths, and every cycle
//     in a flow closes through a bounded SeqLoop back edge;
//   - path legality: trap service flows use only the sequencer
//     functions the EBOX trap loop accepts, PTE reads appear only
//     inside trap flows, and IB-stall wait words are entered only by
//     dispatch (never by sequential fall-through or jump);
//   - dead-word detection rooted at the true dispatch entry points, so
//     a labelled flow nothing dispatches into is found dead even though
//     the label-rooted verifier considers it live;
//   - per-flow worst-case cycle bounds (excluding memory and IB stalls,
//     which the control store cannot bound), surfaced by vaxdiag.
//
// A clean report makes the paper's central invariant — every counted
// cycle is attributed to exactly one cell of the CPI decomposition —
// a property of the control store itself, proven for all workloads
// rather than observed on the ones that were run.
package ulint

import (
	"fmt"
	"sort"
	"strings"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

// Kind classifies an analyzer finding.
type Kind uint8

// Finding kinds.
const (
	KindVerify         Kind = iota // wrapped ucode.Verify issue (see VerifyKind)
	KindDeadWord                   // unreachable from every dispatch entry point
	KindUnattributed               // tickable bucket outside the CPI decomposition
	KindNonTerminating             // flow cycle with no bounded loop back edge
	KindNoExit                     // flow path that cannot reach an exit
	KindTrapIllegalSeq             // trap-flow word with a sequencer the trap loop rejects
	KindTrapIllegalIB              // trap-flow word carrying an I-stream request
	KindPTEOutsideTrap             // PTE read reachable outside trap service flows
	KindIllegalStall               // IB-stall word entered by fall-through or jump
	KindBadRoot                    // dispatch-table entry outside the image
	KindEffectMismatch             // fusible segment whose symbolic effects diverge from the closed form
	KindURetBadTarget              // uret return site landing somewhere a return must never enter
	KindURetMidSegment             // uret return site inside a fusible segment's interior
	NumKinds
)

var kindNames = [...]string{
	"verify", "dead-word", "unattributed", "non-terminating", "no-exit",
	"trap-illegal-seq", "trap-illegal-ib", "pte-outside-trap",
	"illegal-stall", "bad-root", "effect-mismatch", "uret-bad-target",
	"uret-mid-segment",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// Finding is one analyzer result.
type Finding struct {
	Kind     Kind
	Severity ucode.Severity
	Addr     uint16
	// Flow names the flow entry label under which the finding was
	// discovered, when the pass is flow-scoped ("" for global passes).
	Flow string
	// VerifyKind carries the underlying per-word issue kind when Kind
	// is KindVerify.
	VerifyKind ucode.IssueKind
	Msg        string
}

func (f Finding) String() string {
	loc := fmt.Sprintf("%05o", f.Addr)
	if f.Flow != "" {
		loc += " (" + f.Flow + ")"
	}
	return fmt.Sprintf("%s: %s: [%s] %s", loc, f.Severity, f.Kind, f.Msg)
}

// Report is the full analyzer output over one image.
type Report struct {
	Findings []Finding

	// Attribution-completeness proof summary.
	Words             int // microwords in the image, excluding the reset word
	Reachable         int // reachable from the dispatch entry points
	TickableBuckets   int // (address, count-set) buckets the EBOX can pulse
	AttributedBuckets int // of those, mapped to a Table 8 cell

	// Bounds holds per-flow worst-case cycle bounds for flows that
	// passed the termination checks.
	Bounds []FlowBound

	// Effect-summary proof results (passEffects): one proven summary per
	// fusible segment, plus the counts behind the 100%-coverage claim.
	Effects           []EffectSummary
	FusibleSegments   int // distinct fusible (start, len) segments found
	SummarizedEffects int // of those, with a proven EffectSummary

	// URetEdges are the cross-flow fusion edges of the return-site pass:
	// for every reachable SeqURet word, one edge per collected return
	// site, marked fusible when the site roots a fusible segment.
	URetEdges []URetEdge
}

// Clean reports whether the analysis found no findings at all.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Errors returns the findings graded SevError.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == ucode.SevError {
			out = append(out, f)
		}
	}
	return out
}

// ByKind returns the findings of one kind.
func (r *Report) ByKind(k Kind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Proven reports whether attribution completeness holds: every tickable
// bucket on every reachable word is attributed to exactly one CPI cell.
func (r *Report) Proven() bool {
	return r.TickableBuckets == r.AttributedBuckets && len(r.ByKind(KindUnattributed)) == 0
}

// Summary renders the one-paragraph verdict vaxlint and vaxdiag print.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "control store: %d words, %d reachable from dispatch roots\n",
		r.Words, r.Reachable)
	fmt.Fprintf(&b, "attribution: %d/%d tickable buckets mapped to a CPI cell",
		r.AttributedBuckets, r.TickableBuckets)
	if r.Proven() {
		b.WriteString(" (complete)\n")
	} else {
		b.WriteString(" (INCOMPLETE)\n")
	}
	if len(r.Findings) == 0 {
		b.WriteString("findings: none")
	} else {
		errs := len(r.Errors())
		fmt.Fprintf(&b, "findings: %d (%d errors, %d warnings)",
			len(r.Findings), errs, len(r.Findings)-errs)
	}
	return b.String()
}

// analysis bundles the per-run state shared by the passes.
type analyzer struct {
	img   *ucode.Image
	roots Roots
	cfg   *cfg

	// reached is the dispatch-rooted reachable set (passDeadWords).
	reached []bool
	// badFlows marks flow entries with termination findings, which the
	// bounds pass must skip (a longest path over a cyclic graph is
	// meaningless).
	badFlows map[uint16]bool

	findings map[findingKey]Finding
}

type findingKey struct {
	kind Kind
	vk   ucode.IssueKind
	addr uint16
}

func (a *analyzer) add(f Finding) {
	k := findingKey{kind: f.Kind, vk: f.VerifyKind, addr: f.Addr}
	if prev, dup := a.findings[k]; dup {
		// Keep the first flow attribution; the finding itself is one.
		_ = prev
		return
	}
	a.findings[k] = f
}

func (a *analyzer) addf(k Kind, sev ucode.Severity, addr uint16, flow string, format string, args ...interface{}) {
	a.add(Finding{
		Kind:     k,
		Severity: sev,
		Addr:     addr,
		Flow:     flow,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// AnalyzeROM runs the analyzer over an assembled ROM, deriving the
// roots from its dispatch tables.
func AnalyzeROM(rom *urom.ROM) *Report {
	return Analyze(rom.Image, RootsFromROM(rom))
}

// Analyze runs every pass over an image with explicit roots. Most
// callers use AnalyzeROM; tests construct small images and roots
// directly.
func Analyze(img *ucode.Image, roots Roots) *Report {
	a := &analyzer{
		img:      img,
		roots:    roots,
		badFlows: make(map[uint16]bool),
		findings: make(map[findingKey]Finding),
	}

	// Per-word checks first: the whole-program passes assume targets in
	// range, so a structurally broken image reports and stops early.
	structural := false
	for _, issue := range ucode.Verify(img) {
		a.add(Finding{
			Kind:       KindVerify,
			Severity:   issue.Severity,
			Addr:       issue.Addr,
			VerifyKind: issue.Kind,
			Msg:        issue.Msg,
		})
		switch issue.Kind {
		case ucode.IssueJumpRange, ucode.IssueLoopRange, ucode.IssueCondRange,
			ucode.IssueFallThroughEnd, ucode.IssueUnknownSeq:
			structural = true
		}
	}
	if !a.checkRoots() {
		structural = true
	}

	r := &Report{Words: img.Size() - 1}
	if !structural {
		a.cfg = buildCFG(img, a.roots)
		a.passDeadWords(r)
		a.passAttribution(r)
		a.passTrapLegality()
		a.passStallEntry()
		a.passTermination()
		a.passBounds(r)
		a.passEffects(r)
		a.passReturnFusion(r)
	}

	for _, f := range a.findings {
		r.Findings = append(r.Findings, f)
	}
	sort.Slice(r.Findings, func(i, j int) bool {
		if r.Findings[i].Addr != r.Findings[j].Addr {
			return r.Findings[i].Addr < r.Findings[j].Addr
		}
		if r.Findings[i].Kind != r.Findings[j].Kind {
			return r.Findings[i].Kind < r.Findings[j].Kind
		}
		return r.Findings[i].VerifyKind < r.Findings[j].VerifyKind
	})
	return r
}

// checkRoots validates that every dispatch-table entry lands inside the
// image; an out-of-range root means the tables and the image do not
// belong together and the graph passes cannot run.
func (a *analyzer) checkRoots() bool {
	ok := true
	n := a.img.Size()
	check := func(addr uint16, what string) {
		if int(addr) >= n {
			a.addf(KindBadRoot, ucode.SevError, addr, "",
				"%s entry %05o outside the %d-word image", what, addr, n)
			ok = false
		}
	}
	for _, e := range a.roots.all() {
		check(e.addr, e.what)
	}
	return ok
}
