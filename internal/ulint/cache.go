package ulint

import (
	"sync"

	"vax780/internal/urom"
)

// indexCache memoizes one FlowIndex per assembled ROM image. The index
// is derived purely from the immutable control store, so identity
// keying is sound: the same *urom.ROM always yields the same analysis.
var indexCache sync.Map // *urom.ROM → *FlowIndex

// IndexFor returns rom's flow index, building it at most once per
// assembled image. The CFG walk and bounds passes behind NewFlowIndex
// are the expensive part of the analyzer; the prof sampler, vaxlint,
// and the fusion engine all classify against this shared cached
// analysis instead of re-deriving it per run, and therefore cannot
// disagree about where a flow or segment begins.
func IndexFor(rom *urom.ROM) *FlowIndex {
	if v, ok := indexCache.Load(rom); ok {
		return v.(*FlowIndex)
	}
	v, _ := indexCache.LoadOrStore(rom, NewFlowIndex(rom))
	return v.(*FlowIndex)
}
