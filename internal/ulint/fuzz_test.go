package ulint

import (
	"testing"

	"vax780/internal/ucode"
	"vax780/internal/ufuse"
	"vax780/internal/urom"
)

// FuzzCFGBuild drives the CFG builder and every graph pass over
// mutated control stores: random rewrites of sequencer fields, targets,
// IB functions, memory/loop fields, and dispatch roots. Two properties
// must survive any mutation:
//
//  1. Analyze never panics — a corrupt image produces findings, not a
//     crash (vaxlint runs on stores that are broken by definition);
//  2. cross-checker agreement — every segment the analyzer still calls
//     fusible must pass ufuse's independent word-by-word legality proof
//     (Compile), and the compiled plan must pass Audit against the same
//     set. The analyzer and the fusion engine prove fusibility from the
//     same rules through different code; the fuzzer hunts for an input
//     where they disagree.
func FuzzCFGBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 1, 7, 2, 0, 3, 0o377})
	f.Add([]byte{5, 0, 0, 200, 6, 0, 4, 1, 7, 0, 2, 2})
	f.Add([]byte{9, 0, 5, 0, 10, 0, 1, 255, 11, 0, 6, 6, 12, 0, 7, 13})

	f.Fuzz(func(t *testing.T, data []byte) {
		img, roots := fuzzBaseStore(t)

		// Each 4-byte record mutates one word: [addr-lo, addr-hi, field, value].
		for i := 0; i+4 <= len(data); i += 4 {
			addr := uint16(int(data[i]) | int(data[i+1])<<8)
			if int(addr) >= img.Size() {
				addr = uint16(int(addr) % img.Size())
			}
			mi := img.At(addr)
			v := data[i+3]
			switch data[i+2] % 8 {
			case 0:
				mi.Seq = ucode.SeqFunc(v % 12) // includes out-of-enum values
			case 1:
				mi.Target = uint16(v) // in- and out-of-image targets
			case 2:
				mi.IB = ucode.IBFunc(v % 6)
			case 3:
				mi.IBStall = v&1 != 0
			case 4:
				mi.Mem = ucode.MemFunc(v % 14)
			case 5:
				mi.Loop = ucode.LoopSrc(v % 8)
			case 6:
				mi.Region = ucode.Region(v % 12)
			case 7:
				// Root mutation: retarget an exec entry anywhere, including
				// out of range (checkRoots must catch it, not a panic).
				if len(roots.Exec) > 0 {
					roots.Exec[int(v)%len(roots.Exec)] = uint16(v) * 3
				}
			}
		}

		// Property 1: no panic, whatever the mutations did.
		rep := Analyze(img, roots)
		_ = rep.Summary()

		// Property 2: the analyzer's fusible segments must pass the
		// fusion engine's independent proof. The flow walk does not need
		// the CFG, so it runs even on structurally broken stores.
		a := &analyzer{img: img, roots: roots}
		segs := a.fusibleSegs()
		var plain []ufuse.Segment
		for _, s := range segs {
			plain = append(plain, ufuse.Segment{Start: s.Start, Len: s.Len})
		}
		if len(plain) == 0 {
			return
		}
		plan, err := ufuse.Compile(&urom.ROM{Image: img}, plain)
		if err != nil {
			t.Fatalf("analyzer-fusible segment fails ufuse legality: %v", err)
		}
		if err := ufuse.Audit(plan, &urom.ROM{Image: img}, plain); err != nil {
			t.Fatalf("compiled plan fails audit against its own segment set: %v", err)
		}
		// Every proven effect summary must also match ufuse's replay
		// stream on the mutated store.
		for _, sum := range rep.Effects {
			stream, err := ufuse.ReplayStream(img, sum.Start, sum.Len)
			if err != nil {
				t.Fatalf("proven summary %05o+%d rejected by replay derivation: %v",
					sum.Start, sum.Len, err)
			}
			for i := range stream {
				if stream[i] != sum.UPCs[i] {
					t.Fatalf("summary %05o+%d cycle %d: analyzer %05o, ufuse %05o",
						sum.Start, sum.Len, i, sum.UPCs[i], stream[i])
				}
			}
		}
	})
}

// fuzzBaseStore assembles a small valid store with the flow shapes the
// mutations get to corrupt: straight-line runs, a loop, a branch with
// its B-DISP subroutine, a stall word, and a trap flow.
func fuzzBaseStore(t *testing.T) (*ucode.Image, Roots) {
	t.Helper()
	a := ucode.NewAssembler()
	a.Region(ucode.RegDecode)
	a.Label("ird").DecodeInstr("decode")
	a.Label("stall.spec").IBStallLoc(ucode.IBDecodeSpec, "wait")
	a.Region(ucode.RegExecSimple)
	a.Label("exec.line").Compute(1, "w0").Compute(1, "w1").Compute(1, "w2").End("done")
	a.Label("exec.loop").LoopLoad(ucode.LoopImm, 3, "count")
	a.Label("exec.loop.head").Compute(1, "body")
	a.LoopBack("exec.loop.head", ucode.MemNone, "again")
	a.End("done")
	a.Label("exec.br").CondTaken("exec.cont", "taken branch")
	a.Label("exec.cont").Compute(1, "c0").Compute(1, "c1").End("done")
	a.Label("bdisp").Compute(1, "disp add").URet("return")
	a.Region(ucode.RegMemMgmt)
	a.Label("tbmiss").Compute(1, "classify").TrapRet("rfi")
	img, err := a.Assemble()
	if err != nil {
		t.Fatalf("assembling fuzz base store: %v", err)
	}
	roots := Roots{
		IRD:        img.Addr("ird"),
		StallSpecN: img.Addr("stall.spec"),
		BDisp:      img.Addr("bdisp"),
		Trap:       []uint16{img.Addr("tbmiss")},
	}
	for _, name := range img.SortedLabels() {
		if len(name) > 5 && name[:5] == "exec." {
			roots.Exec = append(roots.Exec, img.Addr(name))
		}
	}
	return img, roots
}
