package ulint

import (
	"fmt"
	"sort"
	"strings"

	"vax780/internal/ucode"
)

// LoopBound describes one bounded loop inside a flow.
type LoopBound struct {
	Head   uint16        // loop head (the closer's back-edge target)
	Closer uint16        // the SeqLoop word
	Body   int           // worst-case cycles of one iteration
	Src    ucode.LoopSrc // what loads the counter
	Cap    int           // maximum iteration count
}

// FlowBound is the worst-case cycle bound of one flow, excluding memory
// and IB stalls (the control store cannot bound those — they depend on
// cache and I-stream behaviour) and excluding the flows a dispatch exit
// continues into (each flow is bounded separately; an instruction's
// bound is the sum over the flows it passes through).
type FlowBound struct {
	Name  string
	Entry uint16

	// Straight is the longest path from entry to an exit with every loop
	// executed once.
	Straight int

	// Loops are the flow's bounded loops; Worst adds their extra
	// iterations to Straight.
	Loops []LoopBound
	Worst int
}

func (f FlowBound) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %05o  straight %3d  worst %4d", f.Name, f.Entry, f.Straight, f.Worst)
	for _, l := range f.Loops {
		fmt.Fprintf(&b, "  [loop@%05o body %d × cap %d]", l.Closer, l.Body, l.Cap)
	}
	return b.String()
}

// loopCap is the analyzer's iteration ceiling per counter source. The
// data-dependent counts are bounded by the architecture: 15 saveable
// registers, 16 longwords per string buffer slice the generator emits,
// 64 bytes per byte-serial slice, 16 decimal digit pairs (31 digits),
// and 2 longwords for a bit field crossing a boundary. LoopImm takes
// its exact count from the loading word instead.
func loopCap(src ucode.LoopSrc, immN int) int {
	switch src {
	case ucode.LoopImm:
		if immN < 1 {
			return 1
		}
		return immN
	case ucode.LoopRegCount:
		return 15
	case ucode.LoopStrLW:
		return 16
	case ucode.LoopStrBytes:
		return 64
	case ucode.LoopDigits:
		return 16
	case ucode.LoopFieldLen:
		return 2
	}
	return 1
}

// passBounds computes per-flow worst-case cycle bounds for every flow
// that passed the termination checks. Word cost is one cycle; the taken
// path of a conditional branch adds the one-cycle B-DISP subroutine.
func (a *analyzer) passBounds(r *Report) {
	for _, entry := range a.flowEntries() {
		if a.badFlows[entry] {
			continue
		}
		words := a.flowWords(entry)
		inFlow := make(map[uint16]bool, len(words))
		for _, w := range words {
			inFlow[w] = true
		}

		fb := FlowBound{
			Name:     a.flowName(entry),
			Entry:    entry,
			Straight: a.longestPath(entry, inFlow),
		}
		fb.Worst = fb.Straight

		for _, closer := range words {
			if a.img.At(closer).Seq != ucode.SeqLoop {
				continue
			}
			body := a.loopBody(closer, inFlow)
			if len(body) == 0 {
				continue
			}
			lb := LoopBound{
				Head:   a.img.At(closer).Target,
				Closer: closer,
				Body:   len(body),
				Src:    a.loopSrcFor(closer, inFlow),
			}
			lb.Cap = loopCap(lb.Src, a.loopImmFor(closer, inFlow))
			fb.Loops = append(fb.Loops, lb)
			fb.Worst += (lb.Cap - 1) * lb.Body
		}
		r.Bounds = append(r.Bounds, fb)
	}
	sort.Slice(r.Bounds, func(i, j int) bool { return r.Bounds[i].Entry < r.Bounds[j].Entry })
}

// longestPath computes the longest entry-to-exit path over the flow's
// acyclic graph (LoopBack edges removed; termination proved that first),
// memoized per word.
func (a *analyzer) longestPath(entry uint16, inFlow map[uint16]bool) int {
	memo := make(map[uint16]int)
	var visit func(w uint16) int
	visit = func(w uint16) int {
		if c, ok := memo[w]; ok {
			return c
		}
		cost := 1
		best := 0
		for _, e := range a.intraSucc(w) {
			if e.Kind == EdgeLoopBack || !inFlow[e.To] {
				continue
			}
			if e.Kind == EdgeReturn {
				// Taken conditional branch: the B-DISP subroutine runs one
				// cycle before control returns to the target.
				if c := 1 + visit(e.To); c > best {
					best = c
				}
				continue
			}
			if c := visit(e.To); c > best {
				best = c
			}
		}
		cost += best
		memo[w] = cost
		return cost
	}
	return visit(entry)
}

// loopSrcFor finds the counter source feeding a loop closer: the
// loop-load word in the flow that can reach the closer's head without
// crossing a back edge. Multiple candidate loads take the one with the
// largest cap (a conservative bound).
func (a *analyzer) loopSrcFor(closer uint16, inFlow map[uint16]bool) ucode.LoopSrc {
	src := ucode.LoopNone
	bestCap := 0
	for w := range inFlow {
		mi := a.img.At(w)
		if mi.Loop == ucode.LoopNone {
			continue
		}
		if !a.reachesForward(w, a.img.At(closer).Target, inFlow) {
			continue
		}
		if c := loopCap(mi.Loop, mi.N); c > bestCap {
			bestCap = c
			src = mi.Loop
		}
	}
	return src
}

// loopImmFor returns the immediate count of the LoopImm load feeding the
// closer, when there is one.
func (a *analyzer) loopImmFor(closer uint16, inFlow map[uint16]bool) int {
	best := 0
	for w := range inFlow {
		mi := a.img.At(w)
		if mi.Loop != ucode.LoopImm {
			continue
		}
		if !a.reachesForward(w, a.img.At(closer).Target, inFlow) {
			continue
		}
		if mi.N > best {
			best = mi.N
		}
	}
	return best
}

// reachesForward reports whether to is reachable from from via
// non-LoopBack intra edges within the flow.
func (a *analyzer) reachesForward(from, to uint16, inFlow map[uint16]bool) bool {
	seen := make(map[uint16]bool)
	stack := []uint16{from}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if w == to {
			return true
		}
		if seen[w] || !inFlow[w] {
			continue
		}
		seen[w] = true
		for _, e := range a.intraSucc(w) {
			if e.Kind != EdgeLoopBack && !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return false
}
