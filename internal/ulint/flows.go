package ulint

// Flow metadata export: the static flow structure the host-time
// profiler (internal/prof) attributes wall-clock nanoseconds onto, and
// the flow-fusion JIT picks targets from. The analyzer already
// reconstructs flows for its termination and bounds passes; this file
// packages them — per-flow word sets, an address → flow index over the
// whole control store, and the maximal straight-line segments with
// their fusibility — behind a public API, so profiling and linting
// cannot disagree about where a flow begins or ends.

import (
	"sort"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

// Segment is one maximal straight-line run of microwords inside a flow:
// consecutive addresses entered only at the top, linked only by
// fall-through, ended by the first word that branches, dispatches, or
// is itself another segment's entry. A scheduling word — a memory
// reference, an IB-stall wait, or a loop-counter load — always forms a
// single-word segment of its own, so the fusible segments are exactly
// the maximal pure-compute runs. Segments are the fusion engine's unit
// of work: a fusible segment executes as one superword with no
// intervening control decision.
type Segment struct {
	Start uint16
	Len   int

	// Fusible marks a segment the control store proves safe to execute
	// as one superword (internal/ufuse): at least two words, none
	// touching memory, waiting on the IB, or loading the loop counter,
	// and no interior word performing an IB function or sequencing
	// anywhere but fall-through. The final word may branch, dispatch,
	// or redirect — the fused executor hands it to the ordinary
	// sequencer, which is the proven deopt point. Memory words stall
	// data-dependently and IB-stall words wait on the I-stream — both
	// are scheduling points a fused block cannot contain.
	Fusible bool
}

// End returns the address one past the segment's last word.
func (s Segment) End() uint16 { return s.Start + uint16(s.Len) }

// Flow is one dispatch-rooted flow of the control store, exported for
// attribution: its entry, name, word set, worst-case cycle bounds (zero
// when the termination pass rejected the flow), and straight-line
// segmentation.
type Flow struct {
	Name     string
	Entry    uint16
	Words    []uint16 // sorted ascending
	Straight int      // longest path with each loop run once (0: unbounded)
	Worst    int      // Straight plus bounded loop refills (0: unbounded)
	Segments []Segment
}

// FusibleWords counts the words inside fusible segments — the numerator
// of the flow's fusibility share.
func (f *Flow) FusibleWords() int {
	n := 0
	for _, s := range f.Segments {
		if s.Fusible {
			n += s.Len
		}
	}
	return n
}

// FlowIndex resolves any control-store address to its owning flow in
// O(1) — the classification step of the sampling profiler, run once per
// sample bucket. Words reachable from more than one entry (shared
// tails) belong to the lowest entry, deterministically.
type FlowIndex struct {
	flows []Flow
	owner []int32 // per address; -1 = no flow owns it

	// effects maps a fusible segment head to its proven EffectSummary
	// (passEffects); retEdges are the cross-flow return-fusion edges
	// (passReturnFusion). Both come from the same AnalyzeROM run that
	// supplies the flow bounds, so the index and the lint report cannot
	// disagree about which superwords carry a proof.
	effects  map[uint16]EffectSummary
	retEdges []URetEdge
}

// NewFlowIndex builds the flow index of an assembled ROM.
func NewFlowIndex(rom *urom.ROM) *FlowIndex {
	a := &analyzer{img: rom.Image, roots: RootsFromROM(rom)}
	ix := &FlowIndex{owner: make([]int32, rom.Image.Size())}
	for i := range ix.owner {
		ix.owner[i] = -1
	}
	for _, entry := range a.flowEntries() {
		words := a.flowWords(entry)
		f := Flow{
			Name:     a.flowName(entry),
			Entry:    entry,
			Words:    words,
			Segments: segments(a.img, entry, words),
		}
		idx := int32(len(ix.flows))
		ix.flows = append(ix.flows, f)
		for _, w := range words {
			if ix.owner[w] < 0 {
				ix.owner[w] = idx
			}
		}
	}
	// Bounds ride along when the flow terminates cleanly; the bounds
	// pass shares the analyzer's flow walk, so entries match exactly.
	rep := AnalyzeROM(rom)
	byEntry := make(map[uint16]FlowBound, len(rep.Bounds))
	for _, b := range rep.Bounds {
		byEntry[b.Entry] = b
	}
	for i := range ix.flows {
		if b, ok := byEntry[ix.flows[i].Entry]; ok {
			ix.flows[i].Straight = b.Straight
			ix.flows[i].Worst = b.Worst
		}
	}
	ix.effects = make(map[uint16]EffectSummary, len(rep.Effects))
	for _, sum := range rep.Effects {
		// Longest proven summary per head wins, matching ufuse.Compile's
		// longer-run-wins plan construction.
		if prev, ok := ix.effects[sum.Start]; !ok || sum.Len > prev.Len {
			ix.effects[sum.Start] = sum
		}
	}
	ix.retEdges = rep.URetEdges
	return ix
}

// EffectOf returns the proven EffectSummary rooted at addr, if the
// effect pass derived one (addr heads a fusible segment and the
// symbolic execution matched the closed form).
func (ix *FlowIndex) EffectOf(addr uint16) (EffectSummary, bool) {
	sum, ok := ix.effects[addr]
	return sum, ok
}

// Effects returns every proven summary, sorted by segment head.
func (ix *FlowIndex) Effects() []EffectSummary {
	out := make([]EffectSummary, 0, len(ix.effects))
	for _, sum := range ix.effects {
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ReturnEdges returns the cross-flow return-fusion edges. The slice is
// shared: callers must not mutate it.
func (ix *FlowIndex) ReturnEdges() []URetEdge { return ix.retEdges }

// Flows returns the flows in entry order. The slice is shared: callers
// must not mutate it.
func (ix *FlowIndex) Flows() []Flow { return ix.flows }

// FlowOf returns the index (into Flows) of the flow owning addr, or
// false when no flow claims it (dead words, the reset word).
func (ix *FlowIndex) FlowOf(addr uint16) (int, bool) {
	if int(addr) >= len(ix.owner) || ix.owner[addr] < 0 {
		return 0, false
	}
	return int(ix.owner[addr]), true
}

// segments splits a flow's word set into maximal straight-line runs.
// A word starts a new segment when it is the flow entry, a join (more
// than one intra-flow edge targets it), the target of anything other
// than its predecessor's fall-through, a scheduling word, or the word
// after one. A segment extends only across fall-through links between
// pure words; the first branching word closes it (inclusive), and a
// scheduling word — memory reference, IB-stall wait, loop-counter load
// — always sits alone, so the fusible segments are exactly the maximal
// pure-compute runs the fusion engine executes as superwords.
func segments(img *ucode.Image, entry uint16, words []uint16) []Segment {
	inFlow := make(map[uint16]bool, len(words))
	for _, w := range words {
		inFlow[w] = true
	}
	// Count intra-flow predecessors and note fall-through-only entry.
	preds := make(map[uint16]int, len(words))
	fallIn := make(map[uint16]bool, len(words))
	a := &analyzer{img: img}
	for _, w := range words {
		for _, e := range a.intraSucc(w) {
			if !inFlow[e.To] {
				continue
			}
			preds[e.To]++
			if e.Kind == EdgeFall {
				fallIn[e.To] = true
			}
		}
	}
	sched := func(w uint16) bool {
		mi := img.At(w)
		return mi.Mem != ucode.MemNone || mi.IBStall || mi.Loop != ucode.LoopNone
	}
	starts := func(w uint16) bool {
		if w == entry || sched(w) {
			return true
		}
		if preds[w] != 1 || !fallIn[w] {
			return true
		}
		// The only predecessor is w-1's fall-through; a scheduling word
		// there closed its own segment, so w opens the next one.
		return sched(w - 1)
	}

	var out []Segment
	sorted := append([]uint16(nil), words...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < len(sorted); {
		w := sorted[i]
		if !starts(w) {
			i++ // swallowed by a previous segment, or unreachable oddity
			continue
		}
		seg := Segment{Start: w, Len: 1}
		cur := w
		for !sched(cur) {
			if img.At(cur).Seq != ucode.SeqNext {
				break // branching word closes the segment
			}
			next := cur + 1
			if !inFlow[next] || starts(next) {
				break
			}
			seg.Len++
			cur = next
		}
		// Fusible: a pure run of at least two words whose interior does
		// nothing but count a compute cycle and fall through. The final
		// word may branch, dispatch, or redirect the I-stream — the
		// fused executor hands it to the ordinary sequencer.
		seg.Fusible = seg.Len >= 2
		for k := 0; k+1 < seg.Len && seg.Fusible; k++ {
			if img.At(seg.Start+uint16(k)).IB != ucode.IBNone {
				seg.Fusible = false
			}
		}
		out = append(out, seg)
		// Skip past the words this segment consumed.
		for i < len(sorted) && sorted[i] < seg.End() && sorted[i] >= seg.Start {
			i++
		}
	}
	return out
}
