package ulint

// Flow metadata export: the static flow structure the host-time
// profiler (internal/prof) attributes wall-clock nanoseconds onto, and
// the flow-fusion JIT picks targets from. The analyzer already
// reconstructs flows for its termination and bounds passes; this file
// packages them — per-flow word sets, an address → flow index over the
// whole control store, and the maximal straight-line segments with
// their fusibility — behind a public API, so profiling and linting
// cannot disagree about where a flow begins or ends.

import (
	"sort"

	"vax780/internal/ucode"
	"vax780/internal/urom"
)

// Segment is one maximal straight-line run of microwords inside a flow:
// consecutive addresses entered only at the top, linked only by
// fall-through, ended by the first word that branches, dispatches, or
// is itself another segment's entry. Segments are the JIT's unit of
// work: a fusible segment executes as one block with no intervening
// control decision.
type Segment struct {
	Start uint16
	Len   int

	// Fusible marks a segment the control store proves safe to fuse
	// into a single host-code block: at least two words, none touching
	// memory, waiting on the IB, or loading the loop counter. Memory
	// words stall data-dependently and IB-stall words wait on the
	// I-stream — both are scheduling points a fused block cannot contain.
	Fusible bool
}

// End returns the address one past the segment's last word.
func (s Segment) End() uint16 { return s.Start + uint16(s.Len) }

// Flow is one dispatch-rooted flow of the control store, exported for
// attribution: its entry, name, word set, worst-case cycle bounds (zero
// when the termination pass rejected the flow), and straight-line
// segmentation.
type Flow struct {
	Name     string
	Entry    uint16
	Words    []uint16 // sorted ascending
	Straight int      // longest path with each loop run once (0: unbounded)
	Worst    int      // Straight plus bounded loop refills (0: unbounded)
	Segments []Segment
}

// FusibleWords counts the words inside fusible segments — the numerator
// of the flow's fusibility share.
func (f *Flow) FusibleWords() int {
	n := 0
	for _, s := range f.Segments {
		if s.Fusible {
			n += s.Len
		}
	}
	return n
}

// FlowIndex resolves any control-store address to its owning flow in
// O(1) — the classification step of the sampling profiler, run once per
// sample bucket. Words reachable from more than one entry (shared
// tails) belong to the lowest entry, deterministically.
type FlowIndex struct {
	flows []Flow
	owner []int32 // per address; -1 = no flow owns it
}

// NewFlowIndex builds the flow index of an assembled ROM.
func NewFlowIndex(rom *urom.ROM) *FlowIndex {
	a := &analyzer{img: rom.Image, roots: RootsFromROM(rom)}
	ix := &FlowIndex{owner: make([]int32, rom.Image.Size())}
	for i := range ix.owner {
		ix.owner[i] = -1
	}
	for _, entry := range a.flowEntries() {
		words := a.flowWords(entry)
		f := Flow{
			Name:     a.flowName(entry),
			Entry:    entry,
			Words:    words,
			Segments: segments(a.img, entry, words),
		}
		idx := int32(len(ix.flows))
		ix.flows = append(ix.flows, f)
		for _, w := range words {
			if ix.owner[w] < 0 {
				ix.owner[w] = idx
			}
		}
	}
	// Bounds ride along when the flow terminates cleanly; the bounds
	// pass shares the analyzer's flow walk, so entries match exactly.
	rep := AnalyzeROM(rom)
	byEntry := make(map[uint16]FlowBound, len(rep.Bounds))
	for _, b := range rep.Bounds {
		byEntry[b.Entry] = b
	}
	for i := range ix.flows {
		if b, ok := byEntry[ix.flows[i].Entry]; ok {
			ix.flows[i].Straight = b.Straight
			ix.flows[i].Worst = b.Worst
		}
	}
	return ix
}

// Flows returns the flows in entry order. The slice is shared: callers
// must not mutate it.
func (ix *FlowIndex) Flows() []Flow { return ix.flows }

// FlowOf returns the index (into Flows) of the flow owning addr, or
// false when no flow claims it (dead words, the reset word).
func (ix *FlowIndex) FlowOf(addr uint16) (int, bool) {
	if int(addr) >= len(ix.owner) || ix.owner[addr] < 0 {
		return 0, false
	}
	return int(ix.owner[addr]), true
}

// segments splits a flow's word set into maximal straight-line runs.
// A word starts a new segment when it is the flow entry, a join (more
// than one intra-flow edge targets it), or the target of anything other
// than its predecessor's fall-through. A segment extends only across
// fall-through links; the first branching word closes it (inclusive).
func segments(img *ucode.Image, entry uint16, words []uint16) []Segment {
	inFlow := make(map[uint16]bool, len(words))
	for _, w := range words {
		inFlow[w] = true
	}
	// Count intra-flow predecessors and note fall-through-only entry.
	preds := make(map[uint16]int, len(words))
	fallIn := make(map[uint16]bool, len(words))
	a := &analyzer{img: img}
	for _, w := range words {
		for _, e := range a.intraSucc(w) {
			if !inFlow[e.To] {
				continue
			}
			preds[e.To]++
			if e.Kind == EdgeFall {
				fallIn[e.To] = true
			}
		}
	}
	starts := func(w uint16) bool {
		if w == entry {
			return true
		}
		return preds[w] != 1 || !fallIn[w]
	}

	var out []Segment
	sorted := append([]uint16(nil), words...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < len(sorted); {
		w := sorted[i]
		if !starts(w) {
			i++ // swallowed by a previous segment, or unreachable oddity
			continue
		}
		seg := Segment{Start: w, Len: 1, Fusible: true}
		cur := w
		for {
			mi := img.At(cur)
			if mi.Mem != ucode.MemNone || mi.IBStall || mi.Loop != ucode.LoopNone {
				seg.Fusible = false
			}
			if mi.Seq != ucode.SeqNext {
				break // branching word closes the segment
			}
			next := cur + 1
			if !inFlow[next] || starts(next) {
				break
			}
			seg.Len++
			cur = next
		}
		if seg.Len < 2 {
			seg.Fusible = false
		}
		out = append(out, seg)
		// Skip past the words this segment consumed.
		for i < len(sorted) && sorted[i] < seg.End() && sorted[i] >= seg.Start {
			i++
		}
	}
	return out
}
