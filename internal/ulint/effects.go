package ulint

// The effect-summary engine: for every fusible segment the analyzer
// proves, derive the closed-form per-cycle effect stream that executing
// the segment as one superword must replay into the measurement hooks —
// and prove, by symbolic execution of the single-step semantics over
// the control-store image, that the stream is exactly what interpreting
// the segment word by word would produce.
//
// The closed form for a fusible segment rooted at S with length n is:
//
//	cycle i ∈ [0, n): micro-PC S+i, stalled=false, one normal-set
//	histogram increment at bucket S+i with a defined Table 8 cell,
//	one I-Fetch advance with a free cache port, Now advancing by one.
//
// The symbolic executor re-derives the same stream from the words
// themselves: it walks the segment applying the EBOX's single-step
// rules (a pure word ticks its own bucket un-stalled, advances the
// I-Fetch stage, and sequences by fall-through), and any word whose
// single-step effect deviates — a memory function or IB wait that would
// stall, a loop-counter load, an interior sequencer that is not
// fall-through, an interior I-stream function, or a bucket the Table 8
// attribution map does not cover — is a KindEffectMismatch error, the
// same grade of failure as a hole in the 783/783 attribution proof.
// A clean pass therefore licenses the fused executor to replay the
// closed form into the telemetry probe, sampler, and flight recorder
// without consulting the words again.
//
// The second pass proves return-site fusion legality: every location a
// SeqURet can transfer to (cfg.go's collected return sites) must be a
// place the B-DISP subroutine may legally land — not an IB-stall wait,
// not trap service, not the abort word, and never the interior of a
// fusible segment (a superword is proven single-entry; a return edge
// into its middle would falsify that proof). Each (uret, site) pair
// becomes a cross-flow URetEdge, marked fusible when the site roots a
// fusible segment — the static license for the fused dispatch to chain
// straight through a microsubroutine return into the next superword.

import (
	"sort"

	"vax780/internal/analysis"
	"vax780/internal/paper"
	"vax780/internal/ucode"
)

// EffectClass is the Table 8 cell one fused cycle's histogram increment
// is attributed to, via the same analysis.BucketCell map the dynamic
// reduction uses.
type EffectClass struct {
	Row paper.Table8Row
	Col paper.Table8Col
}

// EffectSummary is the proven per-cycle effect stream of one fusible
// segment: cycle i observes micro-PC UPCs[i] (always Start+i — the
// symbolic executor proves the trajectory never deviates), stalled =
// false, one normal-set histogram increment attributed to Classes[i],
// and one I-Fetch advance with a free cache port.
type EffectSummary struct {
	Start   uint16
	Len     int
	UPCs    []uint16
	Classes []EffectClass
}

// URetEdge is one cross-flow fusion edge of the return-site pass: a
// SeqURet word (From) transferring to a collected return site (To).
// Fusible marks sites rooting a fusible segment — landings the fused
// dispatch may chain into as the next superword.
type URetEdge struct {
	From    uint16
	To      uint16
	Fusible bool
}

// effectViolation reports the first word of a segment whose single-step
// effect deviates from the closed form.
type effectViolation struct {
	addr uint16
	msg  string
}

// summarize symbolically executes the fusible segment rooted at start
// and derives its EffectSummary, or the violation that falsifies the
// closed form. It mirrors the EBOX single-step semantics for pure
// words: tick(upc, stalled=false) — a normal-set histogram increment at
// the word's own bucket — then the sequencer, which for every interior
// word must resolve to upc+1.
func summarize(img *ucode.Image, start uint16, n int) (EffectSummary, *effectViolation) {
	sum := EffectSummary{
		Start:   start,
		Len:     n,
		UPCs:    make([]uint16, 0, n),
		Classes: make([]EffectClass, 0, n),
	}
	upc := start
	for i := 0; i < n; i++ {
		// The closed form says cycle i executes Start+i; the symbolic
		// trajectory must agree or the bulk replay would observe the
		// wrong micro-PC stream.
		if want := start + uint16(i); upc != want {
			return sum, &effectViolation{addr: upc, msg: "symbolic trajectory diverges from the closed form"}
		}
		mi := img.At(upc)
		if mi.Mem != ucode.MemNone || mi.IBStall || mi.Loop != ucode.LoopNone {
			return sum, &effectViolation{addr: upc,
				msg: "scheduling word (memory, IB stall, or loop load) inside a fusible segment: its cycle count is data-dependent, not closed-form"}
		}
		if i < n-1 {
			if mi.Seq != ucode.SeqNext {
				return sum, &effectViolation{addr: upc,
					msg: "interior word sequences instead of falling through; single-step would leave the segment"}
			}
			if mi.IB != ucode.IBNone {
				return sum, &effectViolation{addr: upc,
					msg: "interior word performs an I-stream function the bulk replay cannot reproduce"}
			}
		}
		// The cycle's histogram increment: normal set, the word's own
		// bucket. It must carry a Table 8 cell, or the fused bulk tick
		// would add counts the CPI decomposition silently drops.
		row, col, ok := analysis.BucketCell(mi, false)
		if !ok {
			return sum, &effectViolation{addr: upc,
				msg: "fused cycle's histogram bucket has no Table 8 cell; bulk replay would count unattributed cycles"}
		}
		sum.UPCs = append(sum.UPCs, upc)
		sum.Classes = append(sum.Classes, EffectClass{Row: row, Col: col})
		upc++ // SeqNext: the one sequencer interior words may use
	}
	return sum, nil
}

// fusibleSegs returns the distinct fusible (start, len) segments across
// every flow, sorted by start then length. Shared flow tails can
// surface the same run from two flows; the set is deduplicated so the
// effect proof and its coverage counts are per segment, not per flow.
func (a *analyzer) fusibleSegs() []Segment {
	type key struct {
		start uint16
		n     int
	}
	seen := make(map[key]bool)
	var out []Segment
	for _, entry := range a.flowEntries() {
		words := a.flowWords(entry)
		for _, s := range segments(a.img, entry, words) {
			if !s.Fusible {
				continue
			}
			k := key{s.Start, s.Len}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// passEffects derives and proves an EffectSummary for every fusible
// segment. A violation is an error finding: the segment looked fusible
// to the structural segmentation, but its single-step effects cannot be
// replayed closed-form, so fusing it would change what the hooks
// observe.
func (a *analyzer) passEffects(r *Report) {
	for _, s := range a.fusibleSegs() {
		r.FusibleSegments++
		sum, viol := summarize(a.img, s.Start, s.Len)
		if viol != nil {
			a.addf(KindEffectMismatch, ucode.SevError, viol.addr, "",
				"effect summary for segment %05o+%d fails at %05o: %s",
				s.Start, s.Len, viol.addr, viol.msg)
			continue
		}
		r.SummarizedEffects++
		r.Effects = append(r.Effects, sum)
	}
}

// trapWords computes the words of the microtrap service flows (the
// same walk passTrapLegality roots at Roots.Trap).
func (a *analyzer) trapWords() []bool {
	inTrap := make([]bool, a.img.Size())
	stack := append([]uint16(nil), a.roots.Trap...)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(w) >= len(inTrap) || inTrap[w] {
			continue
		}
		inTrap[w] = true
		for _, e := range a.cfg.succ[w] {
			if (e.Kind == EdgeFall || e.Kind == EdgeJump) && !inTrap[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return inTrap
}

// passReturnFusion proves every collected uret return site is a legal
// landing and emits the cross-flow fusion edges. Return sites are
// sorted and deduplicated by buildCFG, so the edge list is
// deterministic.
func (a *analyzer) passReturnFusion(r *Report) {
	// Fusible heads and fusible interiors over the whole store.
	headLen := make(map[uint16]int)
	interiorOf := make(map[uint16]Segment)
	for _, s := range a.fusibleSegs() {
		if headLen[s.Start] < s.Len {
			headLen[s.Start] = s.Len
		}
		for k := 1; k < s.Len; k++ {
			w := s.Start + uint16(k)
			if _, dup := interiorOf[w]; !dup {
				interiorOf[w] = s
			}
		}
	}
	inTrap := a.trapWords()

	for _, site := range a.cfg.returnSites {
		if int(site) >= a.img.Size() {
			a.addf(KindURetBadTarget, ucode.SevError, site, "",
				"uret return site %05o lies outside the %d-word image", site, a.img.Size())
			continue
		}
		mi := a.img.At(site)
		switch {
		case mi.IBStall:
			a.addf(KindURetBadTarget, ucode.SevError, site, "",
				"uret return site %05o is an IB-stall wait word; returns would count phantom stall cycles", site)
		case inTrap[site]:
			a.addf(KindURetBadTarget, ucode.SevError, site, "",
				"uret return site %05o lies inside a microtrap service flow", site)
		case a.roots.Abort != 0 && site == a.roots.Abort:
			a.addf(KindURetBadTarget, ucode.SevError, site, "",
				"uret return site %05o is the abort word", site)
		}
		if s, mid := interiorOf[site]; mid {
			a.addf(KindURetMidSegment, ucode.SevError, site, "",
				"uret return site %05o lands inside fusible segment %05o+%d; the segment's single-entry proof is falsified",
				site, s.Start, s.Len)
		}
	}

	// One cross-flow edge per (reachable SeqURet word, return site).
	var urets []uint16
	for addr := 1; addr < a.img.Size(); addr++ {
		if a.reached != nil && !a.reached[addr] {
			continue
		}
		if a.img.At(uint16(addr)).Seq == ucode.SeqURet {
			urets = append(urets, uint16(addr))
		}
	}
	for _, u := range urets {
		for _, site := range a.cfg.returnSites {
			if int(site) >= a.img.Size() {
				continue
			}
			r.URetEdges = append(r.URetEdges, URetEdge{
				From:    u,
				To:      site,
				Fusible: headLen[site] > 0,
			})
		}
	}
}
