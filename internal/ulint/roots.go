package ulint

import (
	"sort"

	"vax780/internal/urom"
	"vax780/internal/vax"
)

// Roots is the set of control-store entry points the I-Decode stage and
// the EBOX trap machinery can transfer to: the inputs the CFG builder
// needs beyond the image itself. Address 0 is the reserved reset word,
// so 0 encodes "absent" for the scalar entries (small test images leave
// most of them absent).
type Roots struct {
	// IRD is the instruction-decode dispatch location.
	IRD uint16

	// IB-stall wait locations by decode context.
	StallInstr uint16
	StallSpec1 uint16
	StallSpecN uint16
	StallBDisp uint16

	// Spec1 and SpecN are the deduplicated non-indexed specifier flow
	// entries for the first and later specifier positions; Idx holds the
	// index-mode preambles (pos 0 = first specifier).
	Spec1 []uint16
	SpecN []uint16
	Idx   [2]uint16

	// BDisp is the shared branch-displacement micro-subroutine entry.
	BDisp uint16

	// RStore are the memory result-store flow entries by position.
	RStore [2]uint16

	// Exec is the deduplicated set of execute-flow entries: base,
	// optimized, and memory-variant entries plus the SIRR exit.
	Exec []uint16

	// Trap are the microtrap service entries (TB miss, unaligned read,
	// unaligned write), entered through the abort cycle.
	Trap []uint16

	// Interrupt is the interrupt/exception delivery flow entry; Abort is
	// the one-cycle abort location every microtrap passes through.
	Interrupt uint16
	Abort     uint16
}

// RootsFromROM extracts the analyzer's root set from the assembled
// dispatch tables.
func RootsFromROM(rom *urom.ROM) Roots {
	r := Roots{
		IRD:        rom.IRD,
		StallInstr: rom.IBStallInstr,
		StallSpec1: rom.IBStallSpec1,
		StallSpecN: rom.IBStallSpecN,
		StallBDisp: rom.IBStallBDisp,
		Idx:        rom.IdxEntry,
		BDisp:      rom.BDisp,
		RStore:     rom.RStore,
		Interrupt:  rom.Interrupt,
		Abort:      rom.Abort,
	}

	for pos := 0; pos < 2; pos++ {
		set := make(map[uint16]bool)
		for m := vax.AddrMode(0); m < vax.NumAddrModes; m++ {
			for v := urom.AccVariant(0); v < urom.NumAccVariants; v++ {
				set[rom.SpecEntry[pos][m][v]] = true
			}
		}
		if pos == 0 {
			r.Spec1 = sortedSet(set)
		} else {
			r.SpecN = sortedSet(set)
		}
	}

	exec := make(map[uint16]bool)
	for op := 0; op < 256; op++ {
		if !rom.HasExecFlow[op] {
			continue
		}
		exec[rom.ExecEntry[op]] = true
		if rom.ExecEntryOpt[op] != 0 {
			exec[rom.ExecEntryOpt[op]] = true
		}
		if rom.ExecEntryMem[op] != 0 {
			exec[rom.ExecEntryMem[op]] = true
		}
	}
	if rom.ExecEntrySIRR != 0 {
		exec[rom.ExecEntrySIRR] = true
	}
	r.Exec = sortedSet(exec)

	trap := make(map[uint16]bool)
	for _, t := range []uint16{rom.TBMiss, rom.UnalignedRead, rom.UnalignedWrite} {
		if t != 0 {
			trap[t] = true
		}
	}
	r.Trap = sortedSet(trap)
	return r
}

func sortedSet(set map[uint16]bool) []uint16 {
	out := make([]uint16, 0, len(set))
	for a := range set {
		if a != 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type rootEntry struct {
	addr uint16
	what string
}

// all enumerates every present root for validation, with a description
// for the bad-root finding.
func (r *Roots) all() []rootEntry {
	var out []rootEntry
	add := func(addr uint16, what string) {
		if addr != 0 {
			out = append(out, rootEntry{addr, what})
		}
	}
	add(r.IRD, "IRD")
	add(r.StallInstr, "instr-stall")
	add(r.StallSpec1, "spec1-stall")
	add(r.StallSpecN, "specN-stall")
	add(r.StallBDisp, "bdisp-stall")
	for _, a := range r.Spec1 {
		add(a, "spec1")
	}
	for _, a := range r.SpecN {
		add(a, "specN")
	}
	add(r.Idx[0], "idx1")
	add(r.Idx[1], "idxN")
	add(r.BDisp, "bdisp")
	add(r.RStore[0], "rstore1")
	add(r.RStore[1], "rstoreN")
	for _, a := range r.Exec {
		add(a, "exec")
	}
	for _, a := range r.Trap {
		add(a, "trap")
	}
	add(r.Interrupt, "interrupt")
	add(r.Abort, "abort")
	return out
}

// globals returns the reachability roots: the locations control enters
// without any predecessor microword — the decode dispatch, interrupt
// delivery, and the microtrap path (abort plus the service entries,
// which the trap machinery enters directly from any trapping memory
// reference).
func (r *Roots) globals() []uint16 {
	var out []uint16
	for _, a := range []uint16{r.IRD, r.Interrupt, r.Abort} {
		if a != 0 {
			out = append(out, a)
		}
	}
	out = append(out, r.Trap...)
	return out
}
