package ucode

import (
	"strings"
	"testing"
)

func TestVerifyCleanImage(t *testing.T) {
	a := NewAssembler()
	a.Region(RegDecode)
	a.Label("ird").DecodeInstr("d")
	a.Label("stall").IBStallLoc(ucodeStallFunc, "s")
	a.Region(RegExecSimple)
	a.Label("flow").Compute(2, "work").End("done")
	a.Label("loop.head").LoopLoad(LoopImm, 3, "init")
	a.Label("loop.body").Compute(1, "body")
	a.LoopBack("loop.body", MemNone, "again")
	a.End("done")
	img := a.MustAssemble()
	if issues := Verify(img); len(issues) != 0 {
		t.Errorf("clean image has issues: %v", issues)
	}
}

const ucodeStallFunc = IBDecodeInstr

// kinds collects the issue kinds found by Verify.
func kinds(issues []Issue) map[IssueKind]int {
	out := make(map[IssueKind]int)
	for _, i := range issues {
		out[i.Kind]++
	}
	return out
}

func TestVerifyCatchesForwardLoop(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("bad").LoopBack("fwd", MemNone, "forward loop")
	a.Label("fwd").End("target")
	img := a.MustAssemble()
	issues := Verify(img)
	if kinds(issues)[IssueLoopForward] != 1 {
		t.Errorf("forward loop not reported: %v", issues)
	}
	fwd := FilterKind(issues, IssueLoopForward)
	if len(fwd) != 1 || fwd[0].Severity != SevError {
		t.Errorf("forward loop should be a single error finding: %v", fwd)
	}
	if !strings.Contains(fwd[0].Msg, "cannot terminate") {
		t.Errorf("message changed: %q", fwd[0].Msg)
	}
}

func TestVerifyCatchesFallThroughEnd(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("x").Compute(1, "falls off the end")
	img := a.MustAssemble()
	issues := Verify(img)
	if kinds(issues)[IssueFallThroughEnd] != 1 {
		t.Errorf("fall-through past end not reported: %v", issues)
	}
}

func TestVerifyCatchesUnreachable(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("a").End("done")
	a.Compute(1, "orphan") // no label, nothing falls into it
	a.End("orphan end")
	img := a.MustAssemble()
	issues := FilterKind(Verify(img), IssueUnreachable)
	if len(issues) != 2 {
		t.Errorf("found %d unreachable locations, want 2: %v", len(issues), issues)
	}
	for _, i := range issues {
		if i.Severity != SevWarning {
			t.Errorf("unreachable should be a warning: %v", i)
		}
	}
}

func TestVerifyCatchesStallWithMemory(t *testing.T) {
	a := NewAssembler()
	a.Region(RegDecode)
	a.Label("s").emit(MicroInst{IB: IBDecodeInstr, Seq: SeqDispatch, IBStall: true, Mem: MemReadOperand})
	img := a.MustAssemble()
	if kinds(Verify(img))[IssueStallMem] != 1 {
		t.Errorf("stall-with-memory not reported: %v", Verify(img))
	}
}

func TestVerifyCatchesRegionlessCode(t *testing.T) {
	a := NewAssembler()
	a.Label("noregion").End("no region set")
	img := a.MustAssemble()
	if kinds(Verify(img))[IssueNoRegion] != 1 {
		t.Errorf("regionless location not reported: %v", Verify(img))
	}
}

func TestVerifyKindsCoverMessages(t *testing.T) {
	// Every kind renders a distinct name for report grouping.
	seen := make(map[string]IssueKind)
	for k := IssueKind(0); k < NumIssueKinds; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %v and %v share the name %q", prev, k, s)
		}
		seen[s] = k
	}
}

// TestIssueString pins the historical rendering: tooling that parsed the
// free-form "%05o: msg" lines must keep working across the typed-kind
// refactor.
func TestIssueString(t *testing.T) {
	i := Issue{Kind: IssueUnreachable, Addr: 8, Msg: "boom"}
	if i.String() != "00010: boom" {
		t.Errorf("Issue.String = %q", i.String())
	}
}

func TestLabelPastEndRejected(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("x").End("done")
	a.Label("dangling")
	if _, err := a.Assemble(); err == nil {
		t.Error("label past the end of the program not rejected")
	}
}
