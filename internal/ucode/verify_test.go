package ucode

import (
	"strings"
	"testing"
)

func TestVerifyCleanImage(t *testing.T) {
	a := NewAssembler()
	a.Region(RegDecode)
	a.Label("ird").DecodeInstr("d")
	a.Label("stall").IBStallLoc(ucodeStallFunc, "s")
	a.Region(RegExecSimple)
	a.Label("flow").Compute(2, "work").End("done")
	a.Label("loop.head").LoopLoad(LoopImm, 3, "init")
	a.Label("loop.body").Compute(1, "body")
	a.LoopBack("loop.body", MemNone, "again")
	a.End("done")
	img := a.MustAssemble()
	if issues := Verify(img); len(issues) != 0 {
		t.Errorf("clean image has issues: %v", issues)
	}
}

const ucodeStallFunc = IBDecodeInstr

func TestVerifyCatchesForwardLoop(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("bad").LoopBack("fwd", MemNone, "forward loop")
	a.Label("fwd").End("target")
	img := a.MustAssemble()
	found := false
	for _, i := range Verify(img) {
		if strings.Contains(i.Msg, "cannot terminate") {
			found = true
		}
	}
	if !found {
		t.Error("forward loop not reported")
	}
}

func TestVerifyCatchesFallThroughEnd(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("x").Compute(1, "falls off the end")
	img := a.MustAssemble()
	found := false
	for _, i := range Verify(img) {
		if strings.Contains(i.Msg, "falls through past the end") {
			found = true
		}
	}
	if !found {
		t.Error("fall-through past end not reported")
	}
}

func TestVerifyCatchesUnreachable(t *testing.T) {
	a := NewAssembler()
	a.Region(RegExecSimple)
	a.Label("a").End("done")
	a.Compute(1, "orphan") // no label, nothing falls into it
	a.End("orphan end")
	img := a.MustAssemble()
	found := 0
	for _, i := range Verify(img) {
		if strings.Contains(i.Msg, "unreachable") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d unreachable locations, want 2", found)
	}
}

func TestVerifyCatchesStallWithMemory(t *testing.T) {
	a := NewAssembler()
	a.Region(RegDecode)
	a.Label("s").emit(MicroInst{IB: IBDecodeInstr, Seq: SeqDispatch, IBStall: true, Mem: MemReadOperand})
	img := a.MustAssemble()
	found := false
	for _, i := range Verify(img) {
		if strings.Contains(i.Msg, "IB-stall location with a memory function") {
			found = true
		}
	}
	if !found {
		t.Error("stall-with-memory not reported")
	}
}

func TestVerifyCatchesRegionlessCode(t *testing.T) {
	a := NewAssembler()
	a.Label("noregion").End("no region set")
	img := a.MustAssemble()
	found := false
	for _, i := range Verify(img) {
		if strings.Contains(i.Msg, "outside any region") {
			found = true
		}
	}
	if !found {
		t.Error("regionless location not reported")
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Addr: 8, Msg: "boom"}
	if i.String() != "00010: boom" {
		t.Errorf("Issue.String = %q", i.String())
	}
}
