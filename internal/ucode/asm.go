package ucode

import (
	"fmt"
	"sort"
	"strings"
)

// Assembler builds a control-store image from symbolic flows. Flows are
// emitted sequentially; labels are resolved at Assemble time so flows may
// reference each other in any order (the microcode-sharing jumps depend on
// this).
type Assembler struct {
	insts  []MicroInst
	labels map[string]uint16
	fixups []fixup
	region Region
	// pending holds labels bound since the last emit, waiting to be
	// attached to the next emitted instruction. Indexing them here keeps
	// emit O(1); the old implementation scanned the whole label map per
	// instruction, making assembly quadratic in program size.
	pending []string
	errlist []string
}

type fixup struct {
	addr  int
	label string
}

// NewAssembler returns an empty assembler. Address 0 is reserved as an
// invalid location (the real machine's microaddress 0 is the reset entry).
func NewAssembler() *Assembler {
	a := &Assembler{labels: make(map[string]uint16)}
	a.insts = append(a.insts, MicroInst{Label: "reset", Comment: "reserved"})
	return a
}

// Region sets the region tag applied to subsequently emitted locations.
func (a *Assembler) Region(r Region) *Assembler {
	a.region = r
	return a
}

// Label binds name to the next emitted location.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errf("duplicate label %q", name)
		return a
	}
	a.labels[name] = uint16(len(a.insts))
	a.pending = append(a.pending, name)
	return a
}

// emit appends one microinstruction in the current region, attaching the
// first label bound to this address (deterministically — the map scan
// this replaces picked one in map iteration order).
func (a *Assembler) emit(mi MicroInst) *Assembler {
	mi.Region = a.region
	if mi.Label == "" && len(a.pending) > 0 {
		mi.Label = a.pending[0]
	}
	a.pending = a.pending[:0]
	a.insts = append(a.insts, mi)
	return a
}

// Compute emits n autonomous compute cycles.
func (a *Assembler) Compute(n int, comment string) *Assembler {
	for i := 0; i < n; i++ {
		c := comment
		if n > 1 {
			c = fmt.Sprintf("%s (%d/%d)", comment, i+1, n)
		}
		a.emit(MicroInst{Seq: SeqNext, Comment: c})
	}
	return a
}

// Mem emits one memory-function cycle.
func (a *Assembler) Mem(f MemFunc, comment string) *Assembler {
	return a.emit(MicroInst{Mem: f, Seq: SeqNext, Comment: comment})
}

// LoopLoad emits a compute cycle that loads the loop counter.
func (a *Assembler) LoopLoad(src LoopSrc, n int, comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqNext, Loop: src, N: n, Comment: comment})
}

// LoopBack emits the loop-closing microinstruction: decrement the counter
// and jump back to label while it remains positive. The microinstruction
// itself may also carry a memory function (the common "read/write inside
// the loop-closing cycle" idiom).
func (a *Assembler) LoopBack(label string, mem MemFunc, comment string) *Assembler {
	a.fixups = append(a.fixups, fixup{addr: len(a.insts), label: label})
	return a.emit(MicroInst{Mem: mem, Seq: SeqLoop, Comment: comment})
}

// Jump emits an unconditional jump to label.
func (a *Assembler) Jump(label string, comment string) *Assembler {
	a.fixups = append(a.fixups, fixup{addr: len(a.insts), label: label})
	return a.emit(MicroInst{Seq: SeqJump, Comment: comment})
}

// DecodeInstr emits the IRD microinstruction: one compute cycle that
// consumes the opcode byte and dispatches on it.
func (a *Assembler) DecodeInstr(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBDecodeInstr, Seq: SeqDispatch, Comment: comment})
}

// DecodeSpec emits a specifier-decode dispatch cycle.
func (a *Assembler) DecodeSpec(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBDecodeSpec, Seq: SeqDispatch, Comment: comment})
}

// DecodeBranch emits a branch-displacement decode dispatch cycle.
func (a *Assembler) DecodeBranch(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBDecodeBranch, Seq: SeqDispatch, Comment: comment})
}

// Redirect emits the cycle that commands I-Fetch to refill from the branch
// target (paper §5: "an additional cycle is consumed in the execute phase
// of the instruction to redirect the IB").
func (a *Assembler) Redirect(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBRedirect, Seq: SeqNext, Comment: comment})
}

// IBStallLoc emits an IB-stall wait location: executed once per cycle in
// which a decode found insufficient bytes in the IB. Sequencing re-issues
// the same decode each cycle, so Seq is SeqDispatch with the stall flag.
func (a *Assembler) IBStallLoc(f IBFunc, comment string) *Assembler {
	return a.emit(MicroInst{IB: f, Seq: SeqDispatch, IBStall: true, Comment: comment})
}

// End emits the end-of-instruction microinstruction (back to IRD).
func (a *Assembler) End(comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqEndInstr, Comment: comment})
}

// EndMem emits an end-of-instruction cycle that also performs a memory
// function (common: the final result write ends the instruction).
func (a *Assembler) EndMem(f MemFunc, comment string) *Assembler {
	return a.emit(MicroInst{Mem: f, Seq: SeqEndInstr, Comment: comment})
}

// EndStore emits the final execute compute cycle of a flow whose result
// goes to the destination specifier: the sequencer continues to the RSTORE
// microroutine when the destination is in memory and ends the instruction
// otherwise (the register store shares this cycle — the 11/780's
// literal/register optimization).
func (a *Assembler) EndStore(comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqStore, Comment: comment})
}

// CondTaken emits a compute cycle that jumps to label when the current
// instruction's branch is taken and falls through otherwise.
func (a *Assembler) CondTaken(label string, comment string) *Assembler {
	a.fixups = append(a.fixups, fixup{addr: len(a.insts), label: label})
	return a.emit(MicroInst{Seq: SeqCondTaken, Comment: comment})
}

// SkipBranch emits an end-of-instruction cycle that consumes the untaken
// branch's displacement bytes from the IB without computing the target
// (paper §5: B-DISP has fewer compute cycles than there are branch
// displacements because untaken branches skip the computation).
func (a *Assembler) SkipBranch(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBSkipBranch, Seq: SeqEndInstr, Comment: comment})
}

// DispatchBase emits a cycle that dispatches to the base-mode flow of an
// indexed specifier (the EBOX holds the pending base entry computed at
// decode time).
func (a *Assembler) DispatchBase(comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqDispatch, Comment: comment})
}

// TrapRet emits the microtrap return cycle (retry the trapped reference).
func (a *Assembler) TrapRet(comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqTrapRet, Comment: comment})
}

// URet emits a micro-subroutine return cycle (used by the shared B-DISP
// flow to return to its caller's redirect cycle).
func (a *Assembler) URet(comment string) *Assembler {
	return a.emit(MicroInst{Seq: SeqURet, Comment: comment})
}

// EndRedirect emits a cycle that redirects I-Fetch to the branch target and
// ends the instruction.
func (a *Assembler) EndRedirect(comment string) *Assembler {
	return a.emit(MicroInst{IB: IBRedirect, Seq: SeqEndInstr, Comment: comment})
}

// CondBranchDisp emits the fused conditional-branch cycle of a
// displacement branch: when the branch is taken it requests the branch
// displacement decode (dispatching to the B-DISP flow, which returns to
// takenLabel); when untaken it consumes the displacement bytes and ends
// the instruction in this same cycle.
func (a *Assembler) CondBranchDisp(takenLabel string, comment string) *Assembler {
	a.fixups = append(a.fixups, fixup{addr: len(a.insts), label: takenLabel})
	return a.emit(MicroInst{Seq: SeqCondTaken, IB: IBDecodeBranch, Comment: comment})
}

func (a *Assembler) errf(format string, args ...interface{}) {
	a.errlist = append(a.errlist, fmt.Sprintf(format, args...))
}

// Image is an assembled control store.
type Image struct {
	Insts  []MicroInst
	Labels map[string]uint16
}

// Assemble resolves all fixups and returns the finished image.
func (a *Assembler) Assemble() (*Image, error) {
	for _, f := range a.fixups {
		addr, ok := a.labels[f.label]
		if !ok {
			a.errf("undefined label %q", f.label)
			continue
		}
		a.insts[f.addr].Target = addr
	}
	// Bind labels onto their instructions for listings. A label past the
	// last instruction names nothing and can only produce out-of-range
	// targets, so it is an assembly error.
	for name, addr := range a.labels {
		if int(addr) >= len(a.insts) {
			a.errf("label %q bound past the end of the program", name)
			continue
		}
		if a.insts[addr].Label == "" {
			a.insts[addr].Label = name
		}
	}
	if len(a.insts) > ControlStoreSize {
		a.errf("control store overflow: %d locations > %d", len(a.insts), ControlStoreSize)
	}
	if len(a.errlist) > 0 {
		return nil, fmt.Errorf("ucode: assembly errors:\n  %s", strings.Join(a.errlist, "\n  "))
	}
	return &Image{
		Insts:  append([]MicroInst(nil), a.insts...),
		Labels: copyLabels(a.labels),
	}, nil
}

func copyLabels(m map[string]uint16) map[string]uint16 {
	out := make(map[string]uint16, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// MustAssemble is Assemble for program-construction paths where an error
// is a build bug.
func (a *Assembler) MustAssemble() *Image {
	img, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}

// Addr returns the address bound to label, panicking if undefined: image
// consumers use it to build dispatch tables at init time.
func (img *Image) Addr(label string) uint16 {
	addr, ok := img.Labels[label]
	if !ok {
		panic("ucode: undefined label " + label)
	}
	return addr
}

// At returns the microinstruction at addr.
func (img *Image) At(addr uint16) *MicroInst {
	return &img.Insts[addr]
}

// Size returns the number of occupied control-store locations.
func (img *Image) Size() int { return len(img.Insts) }

// Listing renders a human-readable control-store listing, one line per
// location, grouped by region.
func (img *Image) Listing() string {
	var b strings.Builder
	for addr, mi := range img.Insts {
		fmt.Fprintf(&b, "%05o  %-10s %s\n", addr, mi.Region, mi.String())
	}
	return b.String()
}

// RegionExtents returns, for each region, the number of control-store
// locations it occupies. Useful for the vaxdiag listing and layout tests.
func (img *Image) RegionExtents() map[Region]int {
	out := make(map[Region]int)
	for _, mi := range img.Insts {
		out[mi.Region]++
	}
	return out
}

// SortedLabels returns all labels in address order.
func (img *Image) SortedLabels() []string {
	names := make([]string, 0, len(img.Labels))
	for n := range img.Labels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return img.Labels[names[i]] < img.Labels[names[j]]
	})
	return names
}
