package ucode

import (
	"fmt"
	"testing"
)

// FuzzAssemble drives the assembler with an arbitrary byte-coded program
// and checks the label/fixup resolution invariants: Assemble never
// panics; on success every jump/loop/cond target is inside the image and
// every label resolves to the address it was bound at; on failure the
// error is structured (non-empty, mentions every failing construct
// class). The byte stream is an opcode tape: each byte selects one
// assembler operation, with label names drawn from a small pool so
// duplicate labels, forward references, and dangling fixups all occur.
func FuzzAssemble(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 4, 0, 4, 0, 4})       // duplicate labels
	f.Add([]byte{2, 2, 2})                // dangling forward jumps
	f.Add([]byte{4, 3, 1, 4, 3, 1, 5})    // loops over bound labels
	f.Add([]byte{6, 0, 7, 1, 8, 2, 5, 5}) // dispatch and stall mix

	f.Fuzz(func(t *testing.T, tape []byte) {
		a := NewAssembler()
		a.Region(RegExecSimple)
		name := func(i int) string { return fmt.Sprintf("L%d", int(tape[i])%8) }
		for i := 0; i < len(tape); i++ {
			switch tape[i] % 9 {
			case 0:
				a.Compute(1, "c")
			case 1:
				a.Mem(MemReadOperand, "m")
			case 2:
				a.Jump(name(i), "j")
			case 3:
				a.LoopBack(name(i), MemNone, "lb")
			case 4:
				a.Label(name(i))
			case 5:
				a.End("e")
			case 6:
				a.CondTaken(name(i), "ct")
			case 7:
				a.DecodeSpec("ds")
			case 8:
				a.LoopLoad(LoopImm, int(tape[i]/9), "ll")
			}
		}
		img, err := a.Assemble()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("assembly error with empty message")
			}
			return
		}
		n := img.Size()
		for addr := 0; addr < n; addr++ {
			mi := img.At(uint16(addr))
			switch mi.Seq {
			case SeqJump, SeqLoop, SeqCondTaken:
				if int(mi.Target) >= n {
					t.Fatalf("resolved target %05o at %05o outside image of %d words",
						mi.Target, addr, n)
				}
			}
		}
		for lname, addr := range img.Labels {
			if int(addr) >= n {
				t.Fatalf("label %q bound past the image: %05o >= %d", lname, addr, n)
			}
			if got := img.Addr(lname); got != addr {
				t.Fatalf("label %q: Addr says %05o, map says %05o", lname, got, addr)
			}
		}
		// Labels survive onto instructions for the listing: a label's
		// instruction either carries that name or another label bound to
		// the same address.
		byAddr := make(map[uint16]bool)
		for _, addr := range img.Labels {
			byAddr[addr] = true
		}
		for addr := range byAddr {
			if img.At(addr).Label == "" {
				t.Fatalf("labelled address %05o has no label attached", addr)
			}
		}
	})
}
