package ucode

import (
	"strings"
	"testing"
)

func TestMemFuncClasses(t *testing.T) {
	reads := []MemFunc{MemReadOperand, MemReadPointer, MemReadStack, MemReadString, MemReadPTE, MemReadScalar}
	writes := []MemFunc{MemWriteOperand, MemWriteStack, MemWriteString, MemWriteScalar}
	for _, m := range reads {
		if !m.IsRead() || m.IsWrite() {
			t.Errorf("%v: IsRead=%v IsWrite=%v, want read", m, m.IsRead(), m.IsWrite())
		}
	}
	for _, m := range writes {
		if m.IsRead() || !m.IsWrite() {
			t.Errorf("%v: IsRead=%v IsWrite=%v, want write", m, m.IsRead(), m.IsWrite())
		}
	}
	if MemNone.IsRead() || MemNone.IsWrite() {
		t.Error("MemNone should be neither read nor write")
	}
}

func TestAssembleSimpleFlow(t *testing.T) {
	a := NewAssembler()
	a.Region(RegDecode)
	a.Label("ird").DecodeInstr("decode")
	a.Region(RegExecSimple)
	a.Label("exec.move").EndStore("move")
	a.Label("loopy").LoopLoad(LoopImm, 3, "load")
	a.Label("loopy.body").Compute(2, "work")
	a.LoopBack("loopy.body", MemNone, "again")
	a.End("done")
	img, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if img.Size() < 7 {
		t.Fatalf("image too small: %d", img.Size())
	}
	ird := img.Addr("ird")
	if ird == 0 {
		t.Error("ird assembled at reserved address 0")
	}
	mi := img.At(ird)
	if mi.IB != IBDecodeInstr || mi.Seq != SeqDispatch {
		t.Errorf("ird microinstruction wrong: %+v", mi)
	}
	body := img.Addr("loopy.body")
	// The LoopBack instruction is 2 after the body start (Compute ×2).
	lb := img.At(body + 2)
	if lb.Seq != SeqLoop || lb.Target != body {
		t.Errorf("loopback: %+v, want SeqLoop to %d", lb, body)
	}
	if img.At(img.Addr("exec.move")).Region != RegExecSimple {
		t.Error("region tag lost")
	}
}

func TestAssembleDuplicateLabel(t *testing.T) {
	a := NewAssembler()
	a.Label("x").Compute(1, "")
	a.Label("x").Compute(1, "")
	if _, err := a.Assemble(); err == nil {
		t.Error("duplicate label should fail assembly")
	}
}

func TestAssembleUndefinedTarget(t *testing.T) {
	a := NewAssembler()
	a.Jump("nowhere", "")
	if _, err := a.Assemble(); err == nil {
		t.Error("undefined target should fail assembly")
	}
}

func TestAddrPanicsOnUnknownLabel(t *testing.T) {
	img := NewAssembler().MustAssemble()
	defer func() {
		if recover() == nil {
			t.Error("Addr of unknown label should panic")
		}
	}()
	img.Addr("ghost")
}

func TestListingAndExtents(t *testing.T) {
	a := NewAssembler()
	a.Region(RegSpec1)
	a.Label("spec1.reg").DecodeSpec("register specifier")
	a.Region(RegMemMgmt)
	a.Label("tbmiss").Compute(3, "probe").Mem(MemReadPTE, "read PTE").TrapRet("retry")
	img := a.MustAssemble()
	l := img.Listing()
	if !strings.Contains(l, "spec1.reg") || !strings.Contains(l, "tbmiss") {
		t.Errorf("listing missing labels:\n%s", l)
	}
	ext := img.RegionExtents()
	if ext[RegMemMgmt] != 5 {
		t.Errorf("RegMemMgmt extent = %d, want 5", ext[RegMemMgmt])
	}
	if ext[RegSpec1] != 1 {
		t.Errorf("RegSpec1 extent = %d, want 1", ext[RegSpec1])
	}
}

func TestClassString(t *testing.T) {
	cases := []struct {
		mi   MicroInst
		want string
	}{
		{MicroInst{}, "compute"},
		{MicroInst{Mem: MemReadOperand}, "read"},
		{MicroInst{Mem: MemWriteStack}, "write"},
		{MicroInst{IBStall: true}, "ibstall"},
	}
	for _, c := range cases {
		if got := c.mi.ClassString(); got != c.want {
			t.Errorf("ClassString(%+v) = %q, want %q", c.mi, got, c.want)
		}
	}
}

func TestSortedLabels(t *testing.T) {
	a := NewAssembler()
	a.Label("zz").Compute(1, "")
	a.Label("aa").Compute(1, "")
	img := a.MustAssemble()
	labels := img.SortedLabels()
	// Address order, not name order: zz was emitted first.
	if len(labels) != 2 || labels[0] != "zz" || labels[1] != "aa" {
		t.Errorf("SortedLabels = %v", labels)
	}
}

func TestControlStoreOverflow(t *testing.T) {
	a := NewAssembler()
	a.Compute(ControlStoreSize+1, "filler")
	if _, err := a.Assemble(); err == nil {
		t.Error("overflowing the control store should fail assembly")
	}
}

func TestCondBranchDispEncoding(t *testing.T) {
	a := NewAssembler()
	a.Label("br").CondBranchDisp("take", "test & maybe decode")
	a.Label("take").EndRedirect("go")
	img := a.MustAssemble()
	mi := img.At(img.Addr("br"))
	if mi.Seq != SeqCondTaken || mi.IB != IBDecodeBranch || mi.Target != img.Addr("take") {
		t.Errorf("CondBranchDisp encoded wrong: %+v", mi)
	}
	take := img.At(img.Addr("take"))
	if take.IB != IBRedirect || take.Seq != SeqEndInstr {
		t.Errorf("EndRedirect encoded wrong: %+v", take)
	}
}
