// Package ucode defines the behavioural micro-ISA of the simulated
// VAX-11/780 EBOX and a small symbolic microassembler that builds the
// control store image executed by the ebox package.
//
// The real 11/780 microword is 99 bits of horizontal control; this model
// keeps only the fields that determine what the Emer & Clark UPC histogram
// monitor can observe: what kind of cycle a microinstruction is (compute,
// read, write), whether it requests an I-stream decode, and how the
// microsequencer advances. Microinstruction addresses — the thing the
// histogram is keyed by — are fully faithful: every microinstruction has a
// distinct control-store location, flows share code exactly where the
// paper says the real microcode shared it, and the control store fits in
// the monitor's 16 K buckets.
package ucode

import "fmt"

// ControlStoreSize is the number of addressable control store locations,
// matching the UPC monitor's 16,000-bucket board rounded to the 11/780's
// addressing (the paper's monitor had 16K addressable count locations).
const ControlStoreSize = 16384

// MemFunc selects the memory function of a microinstruction, and — for
// operand references — where the effective address comes from. On the real
// machine this is the memory-request field plus address-mux selects; here
// the ebox resolves each selector against the current instruction context.
type MemFunc uint8

// Memory functions.
const (
	MemNone         MemFunc = iota
	MemReadOperand          // D-stream read at the current specifier's address
	MemReadPointer          // indirection fetch for a deferred specifier
	MemReadStack            // pop: read at SP, then SP += 4
	MemReadString           // next source longword of a string operand
	MemReadPTE              // page-table entry read (TB miss service)
	MemReadScalar           // other D-stream read from instruction context
	MemWriteOperand         // D-stream write at the current specifier's address
	MemWriteStack           // push: SP -= 4, write at SP
	MemWriteString          // next destination longword of a string operand
	MemWriteScalar          // other D-stream write from instruction context
)

// IsRead reports whether the function is a D-stream read.
func (m MemFunc) IsRead() bool {
	return m >= MemReadOperand && m <= MemReadScalar
}

// IsWrite reports whether the function is a D-stream write.
func (m MemFunc) IsWrite() bool {
	return m >= MemWriteOperand && m <= MemWriteScalar
}

var memNames = [...]string{
	"-", "rd.op", "rd.ptr", "rd.stk", "rd.str", "rd.pte", "rd.sc",
	"wr.op", "wr.stk", "wr.str", "wr.sc",
}

func (m MemFunc) String() string {
	if int(m) < len(memNames) {
		return memNames[m]
	}
	return fmt.Sprintf("MemFunc(%d)", m)
}

// IBFunc selects the I-stream request of a microinstruction. Decode
// requests hand sequencing to the I-Decode stage: the next micro-PC is a
// dispatch address computed from the IB contents (or the IB-stall address
// when the IB holds insufficient bytes).
type IBFunc uint8

// I-stream functions.
const (
	IBNone         IBFunc = iota
	IBDecodeInstr         // consume opcode byte; dispatch to first specifier or execute flow
	IBDecodeSpec          // consume one specifier; dispatch to its mode flow
	IBDecodeBranch        // consume the branch displacement; dispatch to the B-DISP flow
	IBRedirect            // command I-Fetch to refill from the branch target
	IBSkipBranch          // consume an untaken branch's displacement bytes in-cycle
)

var ibNames = [...]string{"-", "ird", "spec", "bdisp", "redir", "skip"}

func (f IBFunc) String() string {
	if int(f) < len(ibNames) {
		return ibNames[f]
	}
	return fmt.Sprintf("IBFunc(%d)", f)
}

// SeqFunc selects how the microsequencer finds the next micro-PC.
type SeqFunc uint8

// Sequencer functions.
const (
	SeqNext     SeqFunc = iota // fall through to the next location
	SeqJump                    // unconditional jump to Target
	SeqLoop                    // decrement loop counter; jump to Target while > 0
	SeqDispatch                // next uPC from the I-Decode stage (requires an IB decode func)
	SeqEndInstr                // instruction complete; return to IRD
	SeqStore                   // result store dispatch: to the RSTORE flow if the
	// destination specifier is in memory, otherwise end the instruction
	// (register results use the combined specifier/execute cycle)
	SeqCondTaken // jump to Target if the instruction's branch is taken
	SeqTrapRet   // return from microtrap: retry the trapped memory cycle
	SeqURet      // return from micro-subroutine (B-DISP flow)
)

var seqNames = [...]string{"next", "jump", "loop", "disp", "end", "store", "cond", "rfi", "uret"}

func (s SeqFunc) String() string {
	if int(s) < len(seqNames) {
		return seqNames[s]
	}
	return fmt.Sprintf("SeqFunc(%d)", s)
}

// LoopSrc selects what loads the EBOX loop counter. The counts are
// data-dependent values carried by the instruction context (string length,
// register-mask population count, decimal digit count).
type LoopSrc uint8

// Loop counter sources.
const (
	LoopNone     LoopSrc = iota
	LoopImm              // immediate count from the N field
	LoopRegCount         // registers to move (CALL/RET/PUSHR/POPR)
	LoopStrLW            // ceil(string length / 4): longwords in a string
	LoopStrBytes         // string length in bytes
	LoopDigits           // decimal digit pairs
	LoopFieldLen         // bit-field length in longwords
)

// Region tags a control-store address with the activity row of Table 8 it
// belongs to. The paper's analysis relies on knowing the control-store
// layout; this is that knowledge, recorded by the microassembler.
type Region uint8

// Control-store regions (Table 8 rows).
const (
	RegNone Region = iota
	RegDecode
	RegSpec1 // first-specifier flows
	RegSpecN // specifier 2..6 flows
	RegBDisp // branch displacement processing
	RegExecSimple
	RegExecField
	RegExecFloat
	RegExecCallRet
	RegExecSystem
	RegExecCharacter
	RegExecDecimal
	RegIntExcept // interrupt and exception microcode
	RegMemMgmt   // memory management (TB miss service, alignment)
	RegAbort     // abort cycles: one per microtrap, one per patch
	NumRegions
)

var regionNames = [...]string{
	"-", "Decode", "Spec1", "Spec2-6", "B-Disp",
	"Simple", "Field", "Float", "Call/Ret", "System", "Character", "Decimal",
	"Int/Except", "Mem Mgmt", "Abort",
}

func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", r)
}

// MicroInst is one control-store location.
type MicroInst struct {
	Mem     MemFunc
	IB      IBFunc
	Seq     SeqFunc
	Target  uint16  // resolved jump/loop target
	Loop    LoopSrc // loop counter load performed by this microinstruction
	N       int     // immediate count for LoopImm
	Region  Region
	IBStall bool   // this is an IB-stall wait location (paper §4.3)
	Label   string // symbolic label if this location is a flow entry/target
	Comment string
}

// ClassString renders the cycle class the analysis will assign to
// non-stalled executions of this location.
func (mi *MicroInst) ClassString() string {
	switch {
	case mi.IBStall:
		return "ibstall"
	case mi.Mem.IsRead():
		return "read"
	case mi.Mem.IsWrite():
		return "write"
	}
	return "compute"
}

func (mi *MicroInst) String() string {
	s := fmt.Sprintf("%-22s %-7s %-6s %-5s", mi.Label, mi.Mem, mi.IB, mi.Seq)
	if mi.Seq == SeqJump || mi.Seq == SeqLoop {
		s += fmt.Sprintf(" ->%04o", mi.Target)
	}
	if mi.Comment != "" {
		s += "  ; " + mi.Comment
	}
	return s
}
