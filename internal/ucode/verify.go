package ucode

import "fmt"

// IssueKind classifies a static-analysis finding. Downstream tooling
// (the ulint analyzer, vaxdiag, tests) filters and asserts on kinds
// instead of matching message substrings.
type IssueKind uint8

// Issue kinds.
const (
	IssueUnknown          IssueKind = iota
	IssueFallThroughEnd             // SeqNext at the last control-store location
	IssueJumpRange                  // jump target outside the image
	IssueJumpNoLabel                // jump target carries no label
	IssueLoopRange                  // loop target outside the image
	IssueLoopForward                // loop closer jumps forward (cannot terminate)
	IssueCondNoDecode               // conditional branch cycle without a branch decode
	IssueCondRange                  // taken-path target outside the image
	IssueBadDispatch                // dispatch with an IB function that cannot dispatch
	IssueUnknownSeq                 // sequencer function outside the defined set
	IssueStallMem                   // IB-stall location with a memory function
	IssueStallNoRedisp              // IB-stall location that does not re-dispatch
	IssueMemReadWrite               // memory function both reads and writes
	IssueNoRegion                   // location outside any region
	IssueLoopLoadConflict           // loop counter load with both a source and an immediate
	IssueUnreachable                // no flow can reach the location
	NumIssueKinds
)

var issueKindNames = [...]string{
	"unknown", "fall-through-end", "jump-range", "jump-no-label",
	"loop-range", "loop-forward", "cond-no-decode", "cond-range",
	"bad-dispatch", "unknown-seq", "stall-mem", "stall-no-redispatch",
	"mem-read-write", "no-region", "loop-load-conflict", "unreachable",
}

func (k IssueKind) String() string {
	if int(k) < len(issueKindNames) {
		return issueKindNames[k]
	}
	return fmt.Sprintf("IssueKind(%d)", k)
}

// Severity grades a finding. Errors mean the image cannot execute
// correctly; warnings mean the image wastes control store or relies on
// an unlabelled target but still runs.
type Severity uint8

// Severities.
const (
	SevError Severity = iota
	SevWarning
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// severityFor grades each issue kind. Unlabelled jump targets and
// unreachable words are layout hygiene; everything else breaks the
// microprogram.
func severityFor(k IssueKind) Severity {
	switch k {
	case IssueJumpNoLabel, IssueUnreachable:
		return SevWarning
	}
	return SevError
}

// Issue is one static-analysis finding in a control-store image.
type Issue struct {
	Kind     IssueKind
	Severity Severity
	Addr     uint16
	Msg      string
}

// String keeps the historical "%05o: msg" rendering; tooling that parsed
// the free-form output continues to work unchanged.
func (i Issue) String() string {
	return fmt.Sprintf("%05o: %s", i.Addr, i.Msg)
}

// FilterKind returns the subset of issues with the given kind.
func FilterKind(issues []Issue, k IssueKind) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// Verify statically checks an assembled control store for the classes of
// microprogramming bugs the 11/780's own development tooling screened
// for: jumps out of range, fall-through past the end of store, loop
// closers that jump forward (non-terminating), dispatches without decode
// functions, memory functions on stall locations, and unreachable
// regions. It returns every issue found; an empty slice means the image
// passes.
func Verify(img *Image) []Issue {
	var issues []Issue
	n := img.Size()
	add := func(addr uint16, k IssueKind, format string, args ...interface{}) {
		issues = append(issues, Issue{
			Kind:     k,
			Severity: severityFor(k),
			Addr:     addr,
			Msg:      fmt.Sprintf(format, args...),
		})
	}

	labelled := make(map[uint16]bool, len(img.Labels))
	for _, a := range img.Labels {
		labelled[a] = true
	}

	for addr := 0; addr < n; addr++ {
		mi := img.At(uint16(addr))
		a := uint16(addr)

		switch mi.Seq {
		case SeqNext:
			if addr == n-1 {
				add(a, IssueFallThroughEnd, "falls through past the end of the control store")
			}
		case SeqJump:
			if int(mi.Target) >= n {
				add(a, IssueJumpRange, "jump target %05o out of range", mi.Target)
			} else if !labelled[mi.Target] && mi.Target != 0 {
				add(a, IssueJumpNoLabel, "jump target %05o has no label", mi.Target)
			}
		case SeqLoop:
			if int(mi.Target) >= n {
				add(a, IssueLoopRange, "loop target %05o out of range", mi.Target)
			} else if mi.Target >= a {
				add(a, IssueLoopForward, "loop closer jumps forward to %05o (cannot terminate)", mi.Target)
			}
		case SeqCondTaken:
			if mi.IB != IBDecodeBranch {
				add(a, IssueCondNoDecode, "conditional branch cycle without a branch decode")
			}
			if int(mi.Target) >= n {
				add(a, IssueCondRange, "taken-path target %05o out of range", mi.Target)
			}
		case SeqDispatch:
			// Dispatch needs a decode function or a pending-base dispatch
			// (IBNone, used only by the index preambles).
			switch mi.IB {
			case IBDecodeInstr, IBDecodeSpec, IBDecodeBranch, IBNone:
			default:
				add(a, IssueBadDispatch, "dispatch with IB function %v", mi.IB)
			}
		case SeqEndInstr, SeqStore, SeqTrapRet, SeqURet:
			// terminators are always fine
		default:
			add(a, IssueUnknownSeq, "unknown sequencer function %d", mi.Seq)
		}

		if mi.IBStall {
			if mi.Mem != MemNone {
				add(a, IssueStallMem, "IB-stall location with a memory function")
			}
			if mi.Seq != SeqDispatch {
				add(a, IssueStallNoRedisp, "IB-stall location must re-dispatch")
			}
		}

		if mi.Mem.IsRead() && mi.Mem.IsWrite() {
			add(a, IssueMemReadWrite, "memory function both reads and writes")
		}

		if mi.Region == RegNone && addr != 0 {
			add(a, IssueNoRegion, "location outside any region")
		}

		if mi.Loop != LoopNone && mi.Loop != LoopImm && mi.N != 0 {
			add(a, IssueLoopLoadConflict, "loop counter load with both source %d and immediate %d", mi.Loop, mi.N)
		}
	}

	issues = append(issues, verifyReachability(img, labelled)...)
	return issues
}

// verifyReachability walks the static successor graph from every label
// (flow entries are entered via dispatch tables, so labels are roots) and
// reports locations no flow can reach.
//
// This is the label-rooted check: it trusts that every label is a real
// entry point. The ulint analyzer performs the stricter dispatch-rooted
// walk, which also finds labelled flows nothing dispatches into.
func verifyReachability(img *Image, labelled map[uint16]bool) []Issue {
	n := img.Size()
	reached := make([]bool, n)
	var stack []uint16
	for a := range labelled {
		stack = append(stack, a)
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(a) >= n || reached[a] {
			continue
		}
		reached[a] = true
		mi := img.At(a)
		switch mi.Seq {
		case SeqNext:
			stack = append(stack, a+1)
		case SeqJump:
			stack = append(stack, mi.Target)
		case SeqLoop, SeqCondTaken:
			stack = append(stack, a+1, mi.Target)
		}
		// Dispatches and terminators end the static walk; their
		// successors come from dispatch tables (the labels themselves).
	}
	var issues []Issue
	for a := 1; a < n; a++ {
		if !reached[a] {
			issues = append(issues, Issue{
				Kind:     IssueUnreachable,
				Severity: severityFor(IssueUnreachable),
				Addr:     uint16(a),
				Msg:      "unreachable location",
			})
		}
	}
	return issues
}
