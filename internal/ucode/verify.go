package ucode

import "fmt"

// Issue is one static-analysis finding in a control-store image.
type Issue struct {
	Addr uint16
	Msg  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%05o: %s", i.Addr, i.Msg)
}

// Verify statically checks an assembled control store for the classes of
// microprogramming bugs the 11/780's own development tooling screened
// for: jumps out of range, fall-through past the end of store, loop
// closers that jump forward (non-terminating), dispatches without decode
// functions, memory functions on stall locations, and unreachable
// regions. It returns every issue found; an empty slice means the image
// passes.
func Verify(img *Image) []Issue {
	var issues []Issue
	n := img.Size()
	add := func(addr uint16, format string, args ...interface{}) {
		issues = append(issues, Issue{Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}

	labelled := make(map[uint16]bool, len(img.Labels))
	for _, a := range img.Labels {
		labelled[a] = true
	}

	for addr := 0; addr < n; addr++ {
		mi := img.At(uint16(addr))
		a := uint16(addr)

		switch mi.Seq {
		case SeqNext:
			if addr == n-1 {
				add(a, "falls through past the end of the control store")
			}
		case SeqJump:
			if int(mi.Target) >= n {
				add(a, "jump target %05o out of range", mi.Target)
			} else if !labelled[mi.Target] && mi.Target != 0 {
				add(a, "jump target %05o has no label", mi.Target)
			}
		case SeqLoop:
			if int(mi.Target) >= n {
				add(a, "loop target %05o out of range", mi.Target)
			} else if mi.Target >= a {
				add(a, "loop closer jumps forward to %05o (cannot terminate)", mi.Target)
			}
		case SeqCondTaken:
			if mi.IB != IBDecodeBranch {
				add(a, "conditional branch cycle without a branch decode")
			}
			if int(mi.Target) >= n {
				add(a, "taken-path target %05o out of range", mi.Target)
			}
		case SeqDispatch:
			// Dispatch needs a decode function or a pending-base dispatch
			// (IBNone, used only by the index preambles).
			switch mi.IB {
			case IBDecodeInstr, IBDecodeSpec, IBDecodeBranch, IBNone:
			default:
				add(a, "dispatch with IB function %v", mi.IB)
			}
		case SeqEndInstr, SeqStore, SeqTrapRet, SeqURet:
			// terminators are always fine
		default:
			add(a, "unknown sequencer function %d", mi.Seq)
		}

		if mi.IBStall {
			if mi.Mem != MemNone {
				add(a, "IB-stall location with a memory function")
			}
			if mi.Seq != SeqDispatch {
				add(a, "IB-stall location must re-dispatch")
			}
		}

		if mi.Mem.IsRead() && mi.Mem.IsWrite() {
			add(a, "memory function both reads and writes")
		}

		if mi.Region == RegNone && addr != 0 {
			add(a, "location outside any region")
		}

		if mi.Loop != LoopNone && mi.Loop != LoopImm && mi.N != 0 {
			add(a, "loop counter load with both source %d and immediate %d", mi.Loop, mi.N)
		}
	}

	issues = append(issues, verifyReachability(img, labelled)...)
	return issues
}

// verifyReachability walks the static successor graph from every label
// (flow entries are entered via dispatch tables, so labels are roots) and
// reports locations no flow can reach.
func verifyReachability(img *Image, labelled map[uint16]bool) []Issue {
	n := img.Size()
	reached := make([]bool, n)
	var stack []uint16
	for a := range labelled {
		stack = append(stack, a)
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(a) >= n || reached[a] {
			continue
		}
		reached[a] = true
		mi := img.At(a)
		switch mi.Seq {
		case SeqNext:
			stack = append(stack, a+1)
		case SeqJump:
			stack = append(stack, mi.Target)
		case SeqLoop, SeqCondTaken:
			stack = append(stack, a+1, mi.Target)
		}
		// Dispatches and terminators end the static walk; their
		// successors come from dispatch tables (the labels themselves).
	}
	var issues []Issue
	for a := 1; a < n; a++ {
		if !reached[a] {
			issues = append(issues, Issue{Addr: uint16(a), Msg: "unreachable location"})
		}
	}
	return issues
}
