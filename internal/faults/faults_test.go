package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// drive exercises every hook against a fixed event stream and returns a
// transcript of the decisions, so two plans can be compared bit-exactly.
func drive(p *Plan, events int) string {
	var b strings.Builder
	for i := 0; i < events; i++ {
		addr := uint16(i % 997)
		fmt.Fprintf(&b, "%t,", p.DropTick(addr, i%2 == 0))
		fmt.Fprintf(&b, "%d,", p.CorruptTick(addr))
		fmt.Fprintf(&b, "%t,", p.SaturateTick(addr))
		v, g := p.GlitchRead(uint16(i%8), uint16(i))
		fmt.Fprintf(&b, "%d%t,", v, g)
		fmt.Fprintf(&b, "%t,", p.MemParity(uint32(i)*4))
		fmt.Fprintf(&b, "%t,", p.DropRefill(uint32(i)*8))
		fmt.Fprintf(&b, "%t;", p.InjectAbort(uint64(i)))
	}
	return b.String()
}

func TestPlanDeterminism(t *testing.T) {
	a := NewPlan(42, Uniform(0.05))
	b := NewPlan(42, Uniform(0.05))
	if drive(a, 2000) != drive(b, 2000) {
		t.Fatal("same (seed, rates) produced different fault sequences")
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("injection counts differ: %v vs %v", a.Injected(), b.Injected())
	}
	if a.Injected().Total() == 0 {
		t.Fatal("5% uniform rate over 2000 events injected nothing")
	}

	c := NewPlan(43, Uniform(0.05))
	if drive(a, 2000) == drive(c, 2000) {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestZeroRateClassIsInert(t *testing.T) {
	// A class at rate zero must not fire and must not draw, so the other
	// classes' streams are unperturbed: the mem-parity decisions of a
	// plan with IBDrop=0 match those of a plan that also drops refills.
	withDrop := NewPlan(7, Rates{MemParity: 0.1, IBDrop: 0.5})
	without := NewPlan(7, Rates{MemParity: 0.1})

	var a, b strings.Builder
	for i := 0; i < 3000; i++ {
		withDrop.DropRefill(uint32(i))
		without.DropRefill(uint32(i))
		fmt.Fprintf(&a, "%t", withDrop.MemParity(uint32(i)))
		fmt.Fprintf(&b, "%t", without.MemParity(uint32(i)))
	}
	if a.String() != b.String() {
		t.Error("an inert class perturbed another class's stream")
	}
	if n := without.Injected(); n[classIBDrop] != 0 {
		t.Errorf("zero-rate class injected %d faults", n[classIBDrop])
	}
}

func TestZeroRatesNeverFire(t *testing.T) {
	p := NewPlan(99, Rates{})
	if !p.Rates().Zero() {
		t.Error("zero Rates not Zero()")
	}
	if s := drive(p, 500); strings.Contains(s, "true") {
		t.Error("all-zero plan fired a fault")
	}
	if p.Injected().Total() != 0 {
		t.Errorf("all-zero plan recorded injections: %v", p.Injected())
	}
	if p.Injected().String() != "none" {
		t.Errorf("empty Counts renders %q, want none", p.Injected().String())
	}
}

func TestCorruptTickMask(t *testing.T) {
	p := NewPlan(1, Rates{UPCFlip: 1})
	for i := 0; i < 200; i++ {
		mask := p.CorruptTick(uint16(i))
		if mask == 0 {
			t.Fatal("rate-1 flip did not fire")
		}
		if mask&(mask-1) != 0 {
			t.Fatalf("mask %#x is not a single bit", mask)
		}
		if mask >= 1<<48 {
			t.Fatalf("mask %#x above bit 47", mask)
		}
	}
}

func TestCountsString(t *testing.T) {
	var c Counts
	c[classMemParity] = 2
	c[classUPCDrop] = 1
	got := c.String()
	if !strings.Contains(got, "mem-parity=2") || !strings.Contains(got, "upc-drop=1") {
		t.Errorf("Counts.String() = %q", got)
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
}

func TestTransientClassification(t *testing.T) {
	transient := []Code{CodeMemParity, CodeInjectedAbort}
	organic := []Code{CodeMicrocodeBug, CodeIBOverrun, CodeMissingFlow, CodePanic, CodeNone}
	for _, c := range transient {
		if !c.Transient() {
			t.Errorf("%v should be transient", c)
		}
	}
	for _, c := range organic {
		if c.Transient() {
			t.Errorf("%v should not be transient", c)
		}
	}
}

func TestMachineCheckError(t *testing.T) {
	detail := errors.New("pte walk failed")
	m := &MachineCheck{
		Code: CodeMemParity, UPC: 0o123, Cycle: 456,
		Site: "ebox.doMem read", VA: 0x1000, Err: detail,
	}
	s := m.Error()
	for _, want := range []string{"memory parity error", "0123", "456", "ebox.doMem read", "0x1000", "pte walk failed"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q missing %q", s, want)
		}
	}
	if !errors.Is(m, detail) {
		t.Error("MachineCheck does not unwrap its detail")
	}
	if !m.Transient() {
		t.Error("parity machine check should be transient")
	}
}
