// Package faults implements a deterministic, seed-driven fault-injection
// plan for the simulated measurement pipeline, plus the typed
// machine-check abort that every fault path (injected or organic)
// reports through.
//
// The paper's UPC board is passive hardware on a live Unibus: real
// boards saturate, drop count pulses, and return garbage over the bus,
// and the measured machine itself takes memory parity errors and
// machine checks. This package models those failures so the measurement
// pipeline can be hardened against them and the data reduction can be
// validated under degradation.
//
// Determinism: every fault class draws from its own splitmix64 stream
// derived from (seed, class), so decisions in one class never perturb
// another class's sequence, and a plan with a zero rate for a class is
// bit-exactly equivalent to no plan at all for that class. The hooks
// use only builtin types, so the packages that carry them (upc, mem,
// ibox, machine) declare their own small injector interfaces and this
// package satisfies them without any import in either direction — the
// same zero-overhead-when-disabled pattern as the telemetry probes.
package faults

import "fmt"

// Code identifies the origin of a machine-check abort.
type Code int

// Machine-check codes. Injected codes are transient: the condition was
// environmental (a fault plan decision) and a retry of the run may
// succeed. Organic codes are internal invariant violations that were
// panics before the fault/abort path existed; they are deterministic
// and retrying cannot help.
const (
	CodeNone          Code = iota
	CodeMemParity          // injected memory parity error on a D-stream read
	CodeInjectedAbort      // plan-scheduled spontaneous machine check
	CodeMicrocodeBug       // unhandled memory function in a microinstruction
	CodeIBOverrun          // I-Decode consumed beyond the instruction buffer
	CodeMissingFlow        // opcode with no execute flow in the control store
	CodePanic              // a panic recovered at the supervisor boundary
)

var codeNames = map[Code]string{
	CodeNone:          "none",
	CodeMemParity:     "memory parity error",
	CodeInjectedAbort: "injected machine check",
	CodeMicrocodeBug:  "microcode bug (unhandled mem function)",
	CodeIBOverrun:     "IB consume overrun",
	CodeMissingFlow:   "missing execute flow",
	CodePanic:         "recovered panic",
}

func (c Code) String() string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Code(%d)", int(c))
}

// Transient reports whether a retry of the run can clear the fault:
// true for injected (environmental) faults, false for internal
// invariant violations.
func (c Code) Transient() bool {
	return c == CodeMemParity || c == CodeInjectedAbort
}

// MachineCheck is the typed abort every fault path reports: the
// machine-level analogue of the VAX machine-check exception, carrying
// the micro-PC and cycle at which the abort was taken and the fault
// site. It wraps any underlying error.
type MachineCheck struct {
	Code  Code
	UPC   uint16 // micro-PC at the abort cycle
	Cycle uint64 // EBOX cycle (200 ns units) at the abort
	Site  string // fault site, e.g. "ebox.doMem", "machine.runInstr"
	VA    uint32 // faulting address, when one exists
	Err   error  // underlying detail, if any
}

func (m *MachineCheck) Error() string {
	s := fmt.Sprintf("machine check: %s at uPC %#o cycle %d (%s)",
		m.Code, m.UPC, m.Cycle, m.Site)
	if m.VA != 0 {
		s += fmt.Sprintf(" va %#x", m.VA)
	}
	if m.Err != nil {
		s += ": " + m.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying detail error.
func (m *MachineCheck) Unwrap() error { return m.Err }

// Transient reports whether retrying the run may clear the fault.
func (m *MachineCheck) Transient() bool { return m.Code.Transient() }

// Rates are per-event fault probabilities, one per fault class. All
// zero (the zero value) disables every class; a nil *Plan and an
// all-zero Plan produce bit-identical runs.
type Rates struct {
	// UPCDrop is the probability a histogram count pulse is dropped
	// (the board misses a Tick).
	UPCDrop float64
	// UPCFlip is the probability a Tick flips a random bit of the
	// ticked bucket's counter (board RAM corruption).
	UPCFlip float64
	// UPCSaturate is the probability a Tick forces the ticked counter
	// to its capacity (stuck-high counter).
	UPCSaturate float64
	// CSRGlitch is the probability a Unibus register read of the board
	// returns garbage (bus noise on the readout path).
	CSRGlitch float64
	// MemParity is the probability a D-stream or PTE read takes a
	// memory parity error, aborting the instruction with a machine
	// check.
	MemParity float64
	// IBDrop is the probability an arrived IB refill longword is
	// dropped in transit (the IB refetches; timing-only).
	IBDrop float64
	// MachineCheck is the per-instruction probability of a spontaneous
	// machine-check abort.
	MachineCheck float64
}

// Zero reports whether every class rate is zero.
func (r Rates) Zero() bool {
	return r == Rates{}
}

// Uniform returns Rates with every class set to rate.
func Uniform(rate float64) Rates {
	return Rates{
		UPCDrop: rate, UPCFlip: rate, UPCSaturate: rate,
		CSRGlitch: rate, MemParity: rate, IBDrop: rate,
		MachineCheck: rate,
	}
}

// Fault classes index the per-class rng streams and injection counters.
const (
	classUPCDrop = iota
	classUPCFlip
	classUPCSaturate
	classCSRGlitch
	classMemParity
	classIBDrop
	classMachineCheck
	numClasses
)

var classNames = [numClasses]string{
	"upc-drop", "upc-flip", "upc-saturate", "csr-glitch",
	"mem-parity", "ib-drop", "machine-check",
}

// Counts reports how many faults of each class a plan has injected.
type Counts [numClasses]uint64

// Add accumulates other into c: the per-workload child plans of a
// composite run merge their injection counts through here.
func (c *Counts) Add(other Counts) {
	for i, v := range other {
		c[i] += v
	}
}

// Total sums the injections across classes.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

func (c Counts) String() string {
	s := ""
	for i, v := range c {
		if v == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", classNames[i], v)
	}
	if s == "" {
		return "none"
	}
	return s
}

// splitmix64 is the per-class deterministic stream: tiny, fast, and
// seedable so every class's decision sequence depends only on (seed,
// class, draw index).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Plan is a deterministic fault-injection plan. A nil *Plan is a valid
// "no faults" plan for every hook (the hooks are never called: the
// carrying packages nil-check their injector field, so the disabled
// fast path costs one pointer test). Plan is used from the single
// simulation goroutine only.
type Plan struct {
	seed     uint64
	rates    Rates
	streams  [numClasses]splitmix64
	injected Counts
}

// ChildSeed derives the fault-plan seed of one workload of a composite
// run from the run's configured seed and the workload's index. Each
// workload gets its own Plan built from its child seed, so its
// injection stream depends only on (run seed, workload index, its own
// event stream) — never on how many events earlier workloads drew or
// on execution order. The derivation is a splitmix64 step (golden-ratio
// offset then the finalizer), giving well-separated child seeds even
// for adjacent indices.
func ChildSeed(seed uint64, index int) uint64 {
	z := seed + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewPlan builds a plan from a seed and per-class rates. The same
// (seed, rates) always yields the same fault sequence against the same
// event stream.
func NewPlan(seed uint64, rates Rates) *Plan {
	p := &Plan{seed: seed, rates: rates}
	for c := range p.streams {
		// Distinct, well-separated stream seeds per class.
		p.streams[c] = splitmix64{s: seed ^ (uint64(c+1) * 0xa0761d6478bd642f)}
	}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Rates returns the plan's per-class rates.
func (p *Plan) Rates() Rates { return p.rates }

// Injected returns the per-class injection counts so far.
func (p *Plan) Injected() Counts { return p.injected }

// decide draws one decision from a class stream. A zero rate returns
// false without drawing, so a class at rate zero is bit-exactly inert.
func (p *Plan) decide(class int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if p.streams[class].float() >= rate {
		return false
	}
	p.injected[class]++
	return true
}

// --- upc.Monitor injector hooks ---

// DropTick reports whether this count pulse is lost.
func (p *Plan) DropTick(addr uint16, stalled bool) bool {
	return p.decide(classUPCDrop, p.rates.UPCDrop)
}

// CorruptTick returns an XOR mask to apply to the ticked bucket's
// counter (0 = no corruption). Bits up to 47 may flip, so corruption
// can exceed the counter's architectural capacity — which is exactly
// how the analysis detects it.
func (p *Plan) CorruptTick(addr uint16) uint64 {
	if !p.decide(classUPCFlip, p.rates.UPCFlip) {
		return 0
	}
	return 1 << (p.streams[classUPCFlip].next() % 48)
}

// SaturateTick reports whether the ticked counter is forced to its
// capacity.
func (p *Plan) SaturateTick(addr uint16) bool {
	return p.decide(classUPCSaturate, p.rates.UPCSaturate)
}

// --- upc.Bus injector hook ---

// GlitchRead optionally corrupts a Unibus register read of the board,
// returning the garbled value and true when a glitch fires.
func (p *Plan) GlitchRead(off, v uint16) (uint16, bool) {
	if !p.decide(classCSRGlitch, p.rates.CSRGlitch) {
		return v, false
	}
	return v ^ uint16(p.streams[classCSRGlitch].next()), true
}

// --- mem.System injector hook ---

// MemParity reports whether this D-stream (or PTE) read takes a memory
// parity error.
func (p *Plan) MemParity(pa uint32) bool {
	return p.decide(classMemParity, p.rates.MemParity)
}

// --- ibox.IBox injector hook ---

// DropRefill reports whether this arrived IB refill longword is lost
// in transit (the IB refetches it; purely a timing perturbation).
func (p *Plan) DropRefill(va uint32) bool {
	return p.decide(classIBDrop, p.rates.IBDrop)
}

// --- machine injector hook ---

// InjectAbort reports whether a spontaneous machine check aborts the
// instruction about to execute.
func (p *Plan) InjectAbort(now uint64) bool {
	return p.decide(classMachineCheck, p.rates.MachineCheck)
}
