// Package machine assembles the complete simulated VAX-11/780: the memory
// subsystem, the I-Fetch and EBOX pipeline stages, the microprogram, and
// the optional UPC histogram monitor — the measured system of the paper.
// It executes workload traces, injecting the VMS-style overhead events
// (interrupt delivery, context switching) those traces carry.
package machine

import (
	"fmt"
	"strings"
	"sync/atomic"

	"vax780/internal/ebox"
	"vax780/internal/ibox"
	"vax780/internal/mem"
	"vax780/internal/ucode"
	"vax780/internal/ufuse"
	"vax780/internal/upc"
	"vax780/internal/urom"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

// Telemetry is the machine's view of the live telemetry layer (the
// concrete implementation lives in internal/telemetry; the machine, like
// the ebox with its Monitor, only knows the observation points). It
// combines the per-layer probes with the machine-level events.
type Telemetry interface {
	ebox.Probe
	ibox.Probe
	mem.Probe

	// Bind attaches this machine's monitor and hardware counters; the
	// telemetry timeline continues across machines of a composite run.
	Bind(mon *upc.Monitor, stats *mem.Stats)
	// Instr observes an instruction decode.
	Instr(now uint64, pc uint32, op vax.Opcode)
	// Interrupt observes an interrupt delivery.
	Interrupt(now uint64, handler uint32)
	// CtxSwitch observes a context switch.
	CtxSwitch(now uint64, from, to uint32)
}

// FaultPlan is the machine's view of a fault-injection plan (the
// concrete implementation lives in internal/faults). It combines the
// per-layer injector hooks with the machine-level injected abort. Like
// Telemetry, the machine only knows the injection points; a nil plan is
// a healthy machine and costs one nil check per hook site.
type FaultPlan interface {
	upc.FaultInjector
	upc.BusFaultInjector
	mem.FaultInjector
	ibox.FaultInjector

	// InjectAbort reports whether a spontaneous machine check aborts
	// the instruction about to execute.
	InjectAbort(now uint64) bool
}

// Stack layout constants: each process gets a 64 KB stack region; the
// interrupt stack lives in system space.
const (
	procStackBase  = 0x4000_0000
	procStackSlot  = 0x0100_0000
	stackBytes     = 64 << 10
	intStackHi     = 0x8011_0000
	intStackLo     = intStackHi - stackBytes
	pcbBase        = 0x8020_0000
	scbVectorBase  = 0x8000_0200 // interrupt vector reads
	sysScratchBase = 0x8030_0000
)

// Config configures a machine.
type Config struct {
	Mem     mem.Config
	Monitor *upc.Monitor // nil: run unmonitored
	Strict  bool         // verify IB decode against the trace

	// Telemetry, when non-nil, attaches the live telemetry layer: its
	// probes are threaded through the EBOX, IB, and memory subsystem,
	// and it is bound to this machine's monitor and hardware counters.
	Telemetry Telemetry

	// OverlapDecode enables the 11/750-style overlapped I-Decode (§5 of
	// the paper: saves one cycle on each non-PC-changing instruction).
	OverlapDecode bool

	// Faults, when non-nil, attaches a fault-injection plan: its hooks
	// are threaded through the monitor, memory subsystem, and I-Fetch
	// stage, and the EBOX polls for latched parity errors.
	Faults FaultPlan

	// Flight, when non-nil, attaches the micro-PC flight recorder to the
	// EBOX (one pointer test per cycle when absent).
	Flight *upc.FlightRecorder

	// Sampler, when non-nil, attaches the host-time profiler's micro-PC
	// sampler to the EBOX (same disabled cost as Flight).
	Sampler *upc.Sampler

	// Progress, when non-nil, receives this machine's live position:
	// instructions retired and cycles simulated, stored atomically once
	// per trace item (never per cycle — the cycle loop stays clean).
	Progress *ProgressCell

	// Fusion, when non-nil, attaches the flow-fusion superword plan:
	// the EBOX executes ulint-proven straight-line runs as single
	// dispatches whenever every per-cycle hook is disabled. The plan is
	// threaded through unconditionally — the EBOX itself deopts to
	// single-step interpretation while any telemetry probe, fault plan,
	// flight recorder, or sampler is attached, so observability
	// semantics are unchanged.
	Fusion *ufuse.Plan
}

// ProgressCell is the machine's live-progress mailbox: written by the
// running machine's goroutine, read by the progress tracker's sampler.
type ProgressCell struct {
	Instrs atomic.Uint64
	Cycles atomic.Uint64
}

// Set publishes the machine's current position. Nil-safe.
func (p *ProgressCell) Set(instrs, cycles uint64) {
	if p == nil {
		return
	}
	p.Instrs.Store(instrs)
	p.Cycles.Store(cycles)
}

// Load reads the current position. Nil-safe (zeroes).
func (p *ProgressCell) Load() (instrs, cycles uint64) {
	if p == nil {
		return 0, 0
	}
	return p.Instrs.Load(), p.Cycles.Load()
}

// RunStats are execution-level counters kept by the machine itself.
type RunStats struct {
	Instrs     uint64
	Interrupts uint64
	Resyncs    uint64
}

// Machine is the simulated system.
type Machine struct {
	Mem *mem.System
	ROM *urom.ROM
	IB  *ibox.IBox
	E   *ebox.EBOX
	Mon *upc.Monitor

	Stats RunStats

	// tel is the attached telemetry layer (nil: uninstrumented).
	tel Telemetry

	// faults is the attached fault plan (nil: healthy machine).
	faults FaultPlan

	// progress is the attached live-progress cell (nil: untracked).
	progress *ProgressCell

	prog    *workload.Program
	started bool

	// Hot code-page cache for the IB byte source (one machine = one
	// goroutine, so this needs no locking).
	cachePage uint32
	cacheData *[512]byte
	cacheUsed *[512]bool
	inInt     bool   // executing on the interrupt stack
	savedSP   uint32 // process SP while on the interrupt stack
	curASID   uint32

	// ctxBuf is the reused execution-context buffer: one InstrCtx per
	// machine instead of one per instruction (the context is dead once
	// the EBOX flow completes, so the next Step may overwrite it).
	ctxBuf ebox.InstrCtx

	procSP map[uint32]uint32 // per-process saved stack pointers
}

// codeByte is the IB's byte source: Program.Byte with a one-page cache
// (instruction fetch is overwhelmingly sequential within a page).
func (m *Machine) codeByte(va uint32) (byte, bool) {
	pg := va >> 9
	if pg != m.cachePage || m.cacheData == nil {
		m.cacheData, m.cacheUsed = m.prog.Page(va)
		m.cachePage = pg
	}
	if m.cacheData == nil {
		return 0, false
	}
	off := va & 511
	return m.cacheData[off], m.cacheUsed[off]
}

// sharedROM is built once: the microprogram is immutable.
var sharedROM = urom.Build()

// ROM returns the microprogram shared by all machines.
func ROM() *urom.ROM { return sharedROM }

// New builds a machine that will execute over the given program image.
func New(cfg Config, prog *workload.Program) *Machine {
	m := &Machine{
		Mem:    mem.New(cfg.Mem),
		ROM:    sharedROM,
		Mon:    cfg.Monitor,
		prog:   prog,
		procSP: make(map[uint32]uint32),
	}
	m.IB = ibox.New(m.Mem, m.codeByte)
	var mon ebox.Monitor
	if cfg.Monitor != nil {
		mon = cfg.Monitor
	}
	m.E = ebox.New(m.ROM, m.Mem, m.IB, mon)
	m.E.Strict = cfg.Strict
	m.E.OverlapDecode = cfg.OverlapDecode
	if cfg.Telemetry != nil {
		m.tel = cfg.Telemetry
		cfg.Telemetry.Bind(cfg.Monitor, &m.Mem.Stats)
		m.E.Probe = m.tel
		m.IB.Probe = m.tel
		m.Mem.SetProbe(m.tel)
	}
	if cfg.Faults != nil {
		m.faults = cfg.Faults
		if cfg.Monitor != nil {
			cfg.Monitor.SetFault(cfg.Faults)
		}
		m.Mem.SetFault(cfg.Faults)
		m.IB.Fault = cfg.Faults
		m.E.CheckFaults = true
	}
	m.E.FR = cfg.Flight
	m.E.Samp = cfg.Sampler
	m.E.Fuse = cfg.Fusion
	m.progress = cfg.Progress
	m.setProcess(1)
	return m
}

// setProcess switches the EBOX stack context to the given process.
func (m *Machine) setProcess(asid uint32) {
	if !m.inInt && m.started {
		m.procSP[m.curASID] = m.E.SP
	}
	m.curASID = asid
	m.Mem.SetASID(asid)
	lo := uint32(procStackBase + asid*procStackSlot)
	hi := lo + stackBytes
	sp, ok := m.procSP[asid]
	if !ok {
		sp = hi - 4096 // leave headroom for pops above the initial SP
	}
	m.E.SP, m.E.StackLo, m.E.StackHi = sp, lo, hi
}

// Run executes the whole stream.
func (m *Machine) Run(s workload.Stream) error {
	for {
		it, ok := s.Next()
		if !ok {
			return nil
		}
		if err := m.Step(it); err != nil {
			m.progress.Set(m.Stats.Instrs, m.E.Now)
			return err
		}
		m.progress.Set(m.Stats.Instrs, m.E.Now)
	}
}

// RunIntervals executes the stream, snapshotting the attached monitor
// every interval instructions, and returns the per-interval histogram
// deltas — the variation data the paper's averages-only reduction could
// not provide (§2.2). A trailing partial interval is included.
func (m *Machine) RunIntervals(s workload.Stream, interval uint64) ([]*upc.Histogram, error) {
	if m.Mon == nil {
		return nil, fmt.Errorf("machine: RunIntervals requires a monitor")
	}
	if interval == 0 {
		return nil, fmt.Errorf("machine: interval must be positive")
	}
	var out []*upc.Histogram
	prev := m.Mon.Snapshot()
	next := m.Stats.Instrs + interval
	for {
		it, ok := s.Next()
		if !ok {
			break
		}
		if err := m.Step(it); err != nil {
			return nil, err
		}
		m.progress.Set(m.Stats.Instrs, m.E.Now)
		if m.Stats.Instrs >= next {
			cur := m.Mon.Snapshot()
			out = append(out, cur.Diff(prev))
			prev = cur
			next += interval
		}
	}
	last := m.Mon.Snapshot().Diff(prev)
	if last.TotalCycles() > 0 {
		out = append(out, last)
	}
	return out, nil
}

// Step executes one trace item.
func (m *Machine) Step(it *workload.Item) error {
	switch it.Kind {
	case workload.KindInterrupt:
		return m.deliverInterrupt(it)
	case workload.KindInstr:
		return m.runInstr(it)
	}
	return fmt.Errorf("machine: unknown item kind %d", it.Kind)
}

// deliverInterrupt runs the interrupt microcode: switch to the interrupt
// stack, push PC/PSL, redirect to the handler.
func (m *Machine) deliverInterrupt(it *workload.Item) error {
	m.Stats.Interrupts++
	if m.tel != nil {
		m.tel.Interrupt(m.E.Now, it.HandlerPC)
	}
	if !m.inInt {
		m.savedSP = m.E.SP
		m.E.SP, m.E.StackLo, m.E.StackHi = intStackHi-8, intStackLo, intStackHi
		m.inInt = true
	}
	ctx := &m.ctxBuf
	*ctx = ebox.InstrCtx{
		In:        nil,
		DstSpec:   -1,
		FieldSpec: -1,
		ScalarVA:  scbVectorBase,
		Target:    it.HandlerPC,
	}
	return m.E.RunOverhead(m.ROM.Interrupt, ctx)
}

// runInstr executes one traced instruction.
func (m *Machine) runInstr(it *workload.Item) error {
	in := it.In
	if !m.started {
		m.IB.Redirect(in.PC)
		m.started = true
	} else if m.IB.BufVA() != in.PC {
		// The trace and the IB disagree — resynchronize. On a consistent
		// workload this never fires; the counter makes violations visible.
		m.IB.ForceResync(in.PC)
		m.Stats.Resyncs++
	}

	if m.tel != nil {
		m.tel.Instr(m.E.Now, in.PC, in.Op)
	}
	if m.faults != nil && m.faults.InjectAbort(m.E.Now) {
		return m.E.InjectMachineCheck("machine.runInstr")
	}
	ctx := m.buildCtx(in)
	if err := m.E.RunInstr(ctx); err != nil {
		return err
	}
	m.Stats.Instrs++

	// Architectural side effects the microcode flows signal to the
	// simulated operating environment.
	switch in.Op {
	case vax.LDPCTX:
		// LDPCTX's microcode flushed the process half of the TB; the
		// machine-level effect is the context change itself.
		m.Mem.FlushProcessTB()
		if m.tel != nil {
			m.tel.CtxSwitch(m.E.Now, m.curASID, it.SwitchTo)
		}
		if m.inInt {
			// The scheduler runs on the interrupt stack. The outgoing
			// process's SP was parked at interrupt entry; bank it, and
			// stage the incoming process's SP for the REI that ends the
			// handler. The EBOX keeps using the interrupt stack until
			// then.
			m.procSP[m.curASID] = m.savedSP
			m.curASID = it.SwitchTo
			m.Mem.SetASID(it.SwitchTo)
			lo := uint32(procStackBase + it.SwitchTo*procStackSlot)
			sp, ok := m.procSP[it.SwitchTo]
			if !ok {
				sp = lo + stackBytes - 4096
			}
			m.savedSP = sp
		} else {
			m.setProcess(it.SwitchTo)
		}
	case vax.REI:
		if m.inInt {
			m.inInt = false
			m.E.SP = m.savedSP
			lo := uint32(procStackBase + m.curASID*procStackSlot)
			m.E.StackLo, m.E.StackHi = lo, lo+stackBytes
		}
	}
	return nil
}

// buildCtx derives the execution context of one instruction: destination
// specifier, field-base specifier, string cursors, and the scalar data
// cursor, per the conventions the microcode flows rely on.
func (m *Machine) buildCtx(in *vax.Instr) *ebox.InstrCtx {
	info := in.Info()
	ctx := &m.ctxBuf
	*ctx = ebox.InstrCtx{
		In:        in,
		DstSpec:   -1,
		FieldSpec: -1,
		ScalarVA:  sysScratchBase + uint32(m.Stats.Instrs%64)*4,
		Target:    in.Target,
	}

	addrSpecs := make([]int, 0, 3)
	for i, t := range info.Specs {
		sp := &in.Specs[i]
		switch t.Access {
		case vax.AccWrite, vax.AccModify:
			if sp.Mode.IsMemory() {
				ctx.DstSpec = i // last memory write/modify wins
			}
		case vax.AccVField:
			ctx.FieldSpec = i
		case vax.AccAddress:
			addrSpecs = append(addrSpecs, i)
		}
	}

	// String cursors: the first address operand is the source string, the
	// last the destination (MOVC3: len, src, dst; decimal ops likewise).
	if len(addrSpecs) > 0 {
		ctx.StrSrc = in.Specs[addrSpecs[0]].Addr
		ctx.StrDst = in.Specs[addrSpecs[len(addrSpecs)-1]].Addr
		// The scalar cursor also points at structured data the flow
		// touches (entry masks, queue headers).
		ctx.ScalarVA = in.Specs[addrSpecs[len(addrSpecs)-1]].Addr
	}

	switch info.Flow {
	case vax.FlowCase:
		// The case dispatch table follows the instruction.
		ctx.ScalarVA = in.PC + uint32(in.Size())
	case vax.FlowSvpctx, vax.FlowLdpctx:
		ctx.ScalarVA = pcbBase + m.curASID*0x200
	}
	return ctx
}

// CPI returns total cycles per executed instruction so far.
func (m *Machine) CPI() float64 {
	if m.Stats.Instrs == 0 {
		return 0
	}
	return float64(m.E.Now) / float64(m.Stats.Instrs)
}

// Describe renders the Figure 1 block diagram of the simulated system:
// the CPU pipeline and memory subsystem components and their connections.
func (m *Machine) Describe() string {
	cfg := m.Mem.Config()
	ext := m.ROM.Image.RegionExtents()
	used := 0
	for _, n := range ext {
		used += n
	}
	const width = 68
	box := func(line string) string {
		if len(line) > width {
			line = line[:width]
		}
		return "  |" + line + strings.Repeat(" ", width-len(line)) + "|\n"
	}
	hdr := func(title string) string {
		pad := width - len(title) - 2
		left := pad / 2
		return "  +" + strings.Repeat("-", left) + " " + title + " " +
			strings.Repeat("-", pad-left) + "+\n"
	}
	var b strings.Builder
	b.WriteString("VAX-11/780 (simulated) — Figure 1 block diagram\n\n")
	b.WriteString(hdr("CPU pipeline"))
	b.WriteString(box(""))
	b.WriteString(box("  I-Fetch ---> IB (8 bytes) ---> I-Decode --dispatch--> EBOX"))
	b.WriteString(box("     |                              ^                    |"))
	b.WriteString(box("     |                              +------ control -----+"))
	b.WriteString(box(fmt.Sprintf("     |        control store: %d/%d microwords", used, ucode.ControlStoreSize)))
	b.WriteString(box("     |        (the UPC histogram monitor taps the micro-PC)"))
	b.WriteString("  +-----|----------------------------------------------------|---------+\n")
	b.WriteString("        | I-stream reads                        D-stream reads | writes\n")
	b.WriteString("        v                                                      v\n")
	b.WriteString(hdr("memory subsystem"))
	b.WriteString(box(""))
	b.WriteString(box(fmt.Sprintf("  Translation Buffer: %d entries, %d-way, split system/process",
		cfg.TBEntries, cfg.TBWays)))
	b.WriteString(box("        | physical address"))
	b.WriteString(box("        v"))
	b.WriteString(box(fmt.Sprintf("  Cache: %d KB, %d-way, %d-byte blocks, write-through",
		cfg.CacheBytes>>10, cfg.CacheWays, cfg.CacheBlock)))
	b.WriteString(box("        | read miss            \\--> Write Buffer (1 longword)"))
	b.WriteString(box("        v                                  |"))
	b.WriteString(box(fmt.Sprintf("  SBI (Synchronous Backplane Interconnect), %d-cycle memory read",
		cfg.MissLatency)))
	b.WriteString(box("        |"))
	b.WriteString(box("        v"))
	b.WriteString(box(fmt.Sprintf("  Memory: %d MB", cfg.MemoryBytes>>20)))
	b.WriteString("  +" + strings.Repeat("-", width) + "+\n")
	b.WriteString("  EBOX microinstruction time: 200 ns (1 cycle)\n")
	return b.String()
}
