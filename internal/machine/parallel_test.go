package machine

import (
	"sync"
	"testing"

	"vax780/internal/mem"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// TestMachinesRunConcurrently verifies that independent machines sharing
// the immutable microprogram can run in parallel (run under -race to
// catch any accidental shared mutable state; the control store image must
// be read-only at run time).
func TestMachinesRunConcurrently(t *testing.T) {
	profiles := workload.AllProfiles(4000)
	var wg sync.WaitGroup
	errs := make([]error, len(profiles))
	cpis := make([]float64, len(profiles))
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p workload.Profile) {
			defer wg.Done()
			tr, err := workload.Generate(p)
			if err != nil {
				errs[i] = err
				return
			}
			mon := upc.New()
			mon.Start()
			m := New(Config{Mem: mem.Config{}, Monitor: mon, Strict: true}, tr.Program)
			if err := m.Run(tr.Stream()); err != nil {
				errs[i] = err
				return
			}
			cpis[i] = m.CPI()
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("machine %d: %v", i, err)
		}
		if cpis[i] < 6 || cpis[i] > 18 {
			t.Errorf("machine %d: CPI %.2f", i, cpis[i])
		}
	}
}
