package machine

import (
	"bytes"
	"testing"

	"vax780/internal/mem"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// TestGeneratedWorkloadRunsStrict is the central integration test: a
// synthesized timesharing workload must execute with strict decode
// verification, zero I-stream resyncs, and exact cycle conservation.
func TestGeneratedWorkloadRunsStrict(t *testing.T) {
	tr, err := workload.Generate(workload.TimesharingA(30000))
	if err != nil {
		t.Fatal(err)
	}
	mon := upc.New()
	mon.Start()
	m := New(Config{Mem: mem.Config{}, Monitor: mon, Strict: true}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("resyncs = %d, want 0 (trace and IB disagree)", m.Stats.Resyncs)
	}
	if got := mon.Snapshot().TotalCycles(); got != m.E.Now {
		t.Errorf("cycle conservation broken: monitor %d, ebox %d", got, m.E.Now)
	}
	ird, _ := mon.Read(m.ROM.IRD)
	if ird != m.Stats.Instrs {
		t.Errorf("IRD count %d != instructions %d", ird, m.Stats.Instrs)
	}

	cpi := m.CPI()
	if cpi < 7 || cpi > 15 {
		t.Errorf("CPI = %.2f; the paper measures 10.6", cpi)
	}

	st := &m.Mem.Stats
	instr := float64(m.Stats.Instrs)
	t.Logf("CPI=%.2f", cpi)
	t.Logf("reads/instr=%.3f (paper .783)  writes/instr=%.3f (paper .409)",
		float64(st.DReads)/instr, float64(st.DWrites)/instr)
	t.Logf("cache read miss/instr: D=%.3f (paper .10)  I=%.3f (paper .18)",
		float64(st.DReadMisses)/instr, float64(st.IReadMisses)/instr)
	t.Logf("TB miss/instr: D=%.4f (paper .020)  I=%.4f (paper .009)",
		float64(st.DTBMisses)/instr, float64(st.ITBMisses)/instr)
	t.Logf("IB refs/instr=%.2f (paper 2.2)  bytes/ref=%.2f (paper 1.7)",
		float64(st.IReads)/instr, float64(st.IBytes)/float64(st.IReads))
	t.Logf("read stall/instr=%.2f (paper .96)  write stall/instr=%.2f (paper .45)",
		float64(st.ReadStall)/instr, float64(st.WriteStall)/instr)
	t.Logf("unaligned/instr=%.4f (paper .016)", float64(st.Unaligned)/instr)
	t.Logf("PTE stall/miss=%.2f (paper 3.5)", safeDiv(float64(0), 1)) // see TB stats below
	if st.DTBMisses+st.ITBMisses > 0 {
		t.Logf("TB service PTE reads=%d misses=%d", st.PTEReads, st.PTEReadMisses)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func TestAllProfilesRunStrict(t *testing.T) {
	for _, p := range workload.AllProfiles(6000) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr, err := workload.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			m := New(Config{Mem: mem.Config{}, Strict: true}, tr.Program)
			if err := m.Run(tr.Stream()); err != nil {
				t.Fatal(err)
			}
			if m.Stats.Resyncs != 0 {
				t.Errorf("resyncs = %d", m.Stats.Resyncs)
			}
			if cpi := m.CPI(); cpi < 6 || cpi > 18 {
				t.Errorf("CPI = %.2f out of range", cpi)
			}
		})
	}
}

// TestArchivedTraceReplaysIdentically: a trace archived to bytes and
// reloaded must execute bit-identically on a fresh machine.
func TestArchivedTraceReplaysIdentically(t *testing.T) {
	orig, err := workload.Generate(workload.TimesharingB(8000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tr *workload.Trace) (uint64, mem.Stats) {
		m := New(Config{Mem: mem.Config{}, Strict: true}, tr.Program)
		if err := m.Run(tr.Stream()); err != nil {
			t.Fatal(err)
		}
		return m.E.Now, m.Mem.Stats
	}
	c1, s1 := run(orig)
	c2, s2 := run(loaded)
	if c1 != c2 {
		t.Errorf("cycles differ: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Errorf("memory stats differ:\n%+v\n%+v", s1, s2)
	}
}
