package machine

// Machine-level fusion coverage: a machine handed a superword plan
// must produce the same monitored data, cycle count, and CPI as one
// interpreting every microword — and an attached per-cycle hook (the
// flight recorder here) must force single-step execution, proven by
// the recorder observing every contiguous cycle.

import (
	"testing"

	"vax780/internal/mem"
	"vax780/internal/ufuse"
	"vax780/internal/ulint"
	"vax780/internal/upc"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

// testPlan compiles the shipped ROM's full superword plan.
func testPlan(t *testing.T) *ufuse.Plan {
	t.Helper()
	rom := ROM()
	var segs []ufuse.Segment
	for _, f := range ulint.IndexFor(rom).Flows() {
		for _, s := range f.Segments {
			if s.Fusible {
				segs = append(segs, ufuse.Segment{Start: s.Start, Len: s.Len})
			}
		}
	}
	p, err := ufuse.Compile(rom, segs)
	if err != nil {
		t.Fatalf("compiling the shipped plan: %v", err)
	}
	if p.Superwords() == 0 {
		t.Fatal("shipped plan has no superwords")
	}
	return p
}

// fusionWorkload is a small mixed trace: straight-line ALU work (the
// fusible flows), a taken branch, and memory traffic (deopt points).
func fusionWorkload(t *testing.T) *workload.Trace {
	t.Helper()
	var ins []*vax.Instr
	for i := 0; i < 40; i++ {
		ins = append(ins,
			&vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{litSpec(int32(i % 60)), regSpec(1)}},
			&vax.Instr{Op: vax.ADDL2, Specs: []vax.Specifier{litSpec(1), regSpec(2)}},
			&vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{
				memSpec(vax.ModeLongDisp, 3, 0x40, 0x9000+uint32(i)*4), regSpec(4)}},
			&vax.Instr{Op: vax.NOP},
		)
	}
	return layout(t, 0x1000, ins)
}

func runWorkload(t *testing.T, tr *workload.Trace, cfg Config) (*Machine, *upc.Histogram) {
	t.Helper()
	mon := upc.New()
	mon.Start()
	cfg.Mem = mem.Config{}
	cfg.Monitor = mon
	cfg.Strict = true
	m := New(cfg, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	return m, mon.Snapshot()
}

// TestFusedMachineBitExact: same trace, fused and interpreted — the
// histogram, final cycle counter, instruction count, and CPI match.
func TestFusedMachineBitExact(t *testing.T) {
	tr := fusionWorkload(t)
	fm, fh := runWorkload(t, tr, Config{Fusion: testPlan(t)})
	im, ih := runWorkload(t, tr, Config{})

	if *fh != *ih {
		t.Error("histograms differ fused vs interpreted")
	}
	if fm.E.Now != im.E.Now {
		t.Errorf("cycle counters differ: %d fused, %d interpreted", fm.E.Now, im.E.Now)
	}
	if fm.CPI() != im.CPI() {
		t.Errorf("CPI differs: %g fused, %g interpreted", fm.CPI(), im.CPI())
	}
	if fm.E.Instrs != im.E.Instrs {
		t.Errorf("instruction counts differ: %d fused, %d interpreted", fm.E.Instrs, im.E.Instrs)
	}
}

// TestFlightRecorderForcesSingleStep: with the recorder attached the
// EBOX must deopt — every cycle is recorded, contiguously, even though
// a superword plan is wired in — and the recorded stream matches a
// plan-free machine's exactly.
func TestFlightRecorderForcesSingleStep(t *testing.T) {
	tr := fusionWorkload(t)

	frFused := upc.NewFlightRecorder(1 << 16)
	fm, fh := runWorkload(t, tr, Config{Fusion: testPlan(t), Flight: frFused})
	frInterp := upc.NewFlightRecorder(1 << 16)
	im, ih := runWorkload(t, tr, Config{Flight: frInterp})

	if *fh != *ih {
		t.Error("histograms differ fused vs interpreted under the recorder")
	}
	if frFused.Recorded() != fm.E.Now {
		t.Fatalf("recorder saw %d cycles of %d: fusion skipped cycles despite the hook",
			frFused.Recorded(), fm.E.Now)
	}
	fs, is := frFused.Snapshot(), frInterp.Snapshot()
	if len(fs) != len(is) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(fs), len(is))
	}
	for i := range fs {
		if fs[i] != is[i] {
			t.Fatalf("flight entry %d differs: %+v vs %+v", i, fs[i], is[i])
		}
		if i > 0 && fs[i].Cycle != fs[i-1].Cycle+1 {
			t.Fatalf("recorded cycles not contiguous at entry %d", i)
		}
	}
	_ = im
}
