package machine

import (
	"testing"

	"vax780/internal/mem"
	"vax780/internal/workload"
)

// runWith executes one fixed workload on a machine with the given memory
// configuration and returns it for inspection.
func runWith(t *testing.T, cfg mem.Config) *Machine {
	t.Helper()
	tr, err := workload.Generate(workload.TimesharingA(15000))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Mem: cfg}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCacheSizeSweepMonotone(t *testing.T) {
	// Bigger caches must not miss more on the identical reference stream.
	var prev float64 = -1
	for _, kb := range []int{1, 2, 8, 32} {
		m := runWith(t, mem.Config{CacheBytes: kb << 10})
		misses := float64(m.Mem.Stats.DReadMisses+m.Mem.Stats.IReadMisses) /
			float64(m.Stats.Instrs)
		t.Logf("%2d KB cache: %.3f read misses/instr, CPI %.2f", kb, misses, m.CPI())
		if prev >= 0 && misses > prev*1.05 {
			t.Errorf("%d KB cache misses more than the smaller one (%.3f > %.3f)",
				kb, misses, prev)
		}
		prev = misses
	}
}

func TestTBSizeSweepMonotone(t *testing.T) {
	var prev float64 = -1
	for _, entries := range []int{32, 128, 512} {
		m := runWith(t, mem.Config{TBEntries: entries})
		misses := float64(m.Mem.Stats.DTBMisses+m.Mem.Stats.ITBMisses) /
			float64(m.Stats.Instrs)
		t.Logf("%3d-entry TB: %.4f misses/instr", entries, misses)
		if prev >= 0 && misses > prev*1.05 {
			t.Errorf("%d-entry TB misses more than the smaller one (%.4f > %.4f)",
				entries, misses, prev)
		}
		prev = misses
	}
}

func TestMissLatencySweepRaisesCPI(t *testing.T) {
	var prev float64 = -1
	for _, lat := range []int{2, 6, 16} {
		m := runWith(t, mem.Config{MissLatency: lat})
		t.Logf("%2d-cycle miss latency: CPI %.2f", lat, m.CPI())
		if prev >= 0 && m.CPI() <= prev {
			t.Errorf("latency %d gives CPI %.2f, not above %.2f", lat, m.CPI(), prev)
		}
		prev = m.CPI()
	}
}

func TestWriteBusySweepRaisesWriteStall(t *testing.T) {
	var prev float64 = -1
	for _, busy := range []int{1, 6, 14} {
		m := runWith(t, mem.Config{WriteBusy: busy})
		ws := float64(m.Mem.Stats.WriteStall) / float64(m.Stats.Instrs)
		t.Logf("%2d-cycle write buffer: %.3f write-stall cycles/instr", busy, ws)
		if prev >= 0 && ws < prev {
			t.Errorf("write busy %d stalls less (%.3f) than faster buffer (%.3f)",
				busy, ws, prev)
		}
		prev = ws
	}
}

func TestIdenticalConfigIsDeterministic(t *testing.T) {
	a := runWith(t, mem.Config{})
	b := runWith(t, mem.Config{})
	if a.E.Now != b.E.Now {
		t.Errorf("non-deterministic: %d vs %d cycles", a.E.Now, b.E.Now)
	}
	if a.Mem.Stats != b.Mem.Stats {
		t.Errorf("non-deterministic stats:\n%+v\n%+v", a.Mem.Stats, b.Mem.Stats)
	}
}

// TestOverlappedDecodeSavesPredictedCycles checks the §5 prediction: the
// 11/750-style overlapped I-Decode saves one cycle on each
// non-PC-CHANGING instruction, i.e. roughly (1 - taken fraction) cycles
// per instruction.
func TestOverlappedDecodeSavesPredictedCycles(t *testing.T) {
	tr, err := workload.Generate(workload.TimesharingA(15000))
	if err != nil {
		t.Fatal(err)
	}
	base := New(Config{Mem: mem.Config{}}, tr.Program)
	if err := base.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	tr2, err := workload.Generate(workload.TimesharingA(15000))
	if err != nil {
		t.Fatal(err)
	}
	over := New(Config{Mem: mem.Config{}, OverlapDecode: true}, tr2.Program)
	if err := over.Run(tr2.Stream()); err != nil {
		t.Fatal(err)
	}
	saved := base.CPI() - over.CPI()
	t.Logf("base CPI %.3f, overlapped %.3f, saved %.3f cycles/instr",
		base.CPI(), over.CPI(), saved)
	// Taken redirects are ~26%% of instructions, so the saving should be
	// roughly 0.74 cycles/instruction (some is recovered IB time).
	if saved < 0.4 || saved > 1.1 {
		t.Errorf("overlapped decode saved %.3f cycles/instr; §5 predicts ≈0.7", saved)
	}
}
