package machine

import (
	"strings"
	"testing"

	"vax780/internal/mem"
	"vax780/internal/upc"
	"vax780/internal/vax"
	"vax780/internal/workload"
)

// layout places instructions consecutively starting at base, assigning
// PCs, and returns the trace items plus the program image.
func layout(t *testing.T, base uint32, ins []*vax.Instr) *workload.Trace {
	t.Helper()
	prog := workload.NewProgram()
	pc := base
	items := make([]*workload.Item, 0, len(ins))
	for _, in := range ins {
		in.PC = pc
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
		pc += uint32(in.Size())
		items = append(items, &workload.Item{Kind: workload.KindInstr, In: in})
	}
	return &workload.Trace{Program: prog, Items: items}
}

func regSpec(r int) vax.Specifier {
	return vax.Specifier{Mode: vax.ModeRegister, Reg: r, Index: -1}
}

func litSpec(v int32) vax.Specifier {
	return vax.Specifier{Mode: vax.ModeLiteral, Disp: v, Index: -1}
}

func memSpec(mode vax.AddrMode, reg int, disp int32, addr uint32) vax.Specifier {
	return vax.Specifier{Mode: mode, Reg: reg, Disp: disp, Addr: addr, Index: -1}
}

func newTestMachine(t *testing.T, tr *workload.Trace) (*Machine, *upc.Monitor) {
	t.Helper()
	mon := upc.New()
	mon.Start()
	m := New(Config{Mem: mem.Config{}, Monitor: mon, Strict: true}, tr.Program)
	return m, mon
}

func TestStraightLineMoves(t *testing.T) {
	ins := []*vax.Instr{
		{Op: vax.MOVL, Specs: []vax.Specifier{litSpec(5), regSpec(1)}},
		{Op: vax.MOVL, Specs: []vax.Specifier{regSpec(1), regSpec(2)}},
		{Op: vax.ADDL2, Specs: []vax.Specifier{litSpec(1), regSpec(2)}},
		{Op: vax.NOP},
	}
	tr := layout(t, 0x1000, ins)
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Instrs != 4 {
		t.Errorf("Instrs = %d, want 4", m.Stats.Instrs)
	}
	// The IRD location's execution count IS the instruction count.
	ird, _ := mon.Read(m.ROM.IRD)
	if ird != 4 {
		t.Errorf("IRD bucket = %d, want 4", ird)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("resyncs = %d, want 0", m.Stats.Resyncs)
	}
	if cpi := m.CPI(); cpi < 2 || cpi > 60 {
		t.Errorf("CPI = %.1f out of sane range (cold caches)", cpi)
	}
}

func TestCycleConservation(t *testing.T) {
	// Total monitor cycles must equal EBOX Now exactly: every cycle ticks
	// exactly one bucket in exactly one count set.
	ins := []*vax.Instr{
		{Op: vax.MOVL, Specs: []vax.Specifier{
			memSpec(vax.ModeByteDisp, 3, 8, 0x5008), regSpec(1)}},
		{Op: vax.MOVL, Specs: []vax.Specifier{
			regSpec(1), memSpec(vax.ModeByteDisp, 3, 12, 0x500C)}},
		{Op: vax.PUSHL, Specs: []vax.Specifier{regSpec(1)}},
		{Op: vax.TSTL, Specs: []vax.Specifier{regSpec(1)}},
	}
	tr := layout(t, 0x1000, ins)
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if got := mon.Snapshot().TotalCycles(); got != m.E.Now {
		t.Errorf("monitor cycles %d != EBOX cycles %d", got, m.E.Now)
	}
}

func TestTakenBranchRedirects(t *testing.T) {
	// BRB forward over a MOVL; the MOVL must not run, and the stream
	// carries only executed instructions.
	br := &vax.Instr{Op: vax.BRB, Taken: true}
	skipped := &vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{litSpec(1), regSpec(1)}}
	after := &vax.Instr{Op: vax.NOP}

	prog := workload.NewProgram()
	br.PC = 0x1000
	skipped.PC = br.PC + uint32(br.Size())
	after.PC = skipped.PC + uint32(skipped.Size())
	br.BranchDisp = int32(after.PC - (br.PC + uint32(br.Size())))
	br.Target = after.PC
	for _, in := range []*vax.Instr{br, skipped, after} {
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
	}
	items := []*workload.Item{
		{Kind: workload.KindInstr, In: br},
		{Kind: workload.KindInstr, In: after},
	}
	tr := &workload.Trace{Program: prog, Items: items}
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("taken branch needed %d resyncs; redirect is broken", m.Stats.Resyncs)
	}
	// The B-DISP flow ran exactly once.
	bd, _ := mon.Read(m.ROM.BDisp)
	if bd != 1 {
		t.Errorf("B-DISP executions = %d, want 1", bd)
	}
}

func TestUntakenBranchFallsThrough(t *testing.T) {
	br := &vax.Instr{Op: vax.BEQL, Taken: false, BranchDisp: 10}
	after := &vax.Instr{Op: vax.NOP}
	tr := layout(t, 0x1000, []*vax.Instr{br, after})
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Resyncs != 0 {
		t.Error("untaken branch broke the I-stream")
	}
	// B-DISP must NOT run for an untaken branch (§5).
	bd, _ := mon.Read(m.ROM.BDisp)
	if bd != 0 {
		t.Errorf("B-DISP executions = %d, want 0", bd)
	}
}

func TestLoopBranchIterates(t *testing.T) {
	// A 3-iteration SOBGTR loop over a body instruction: body, sob, body,
	// sob(taken), ..., exit.
	body := func() *vax.Instr {
		return &vax.Instr{Op: vax.INCL, Specs: []vax.Specifier{regSpec(2)}}
	}
	sob := func(taken bool) *vax.Instr {
		return &vax.Instr{Op: vax.SOBGTR, Taken: taken,
			Specs: []vax.Specifier{regSpec(3)}}
	}
	b0 := body()
	s0 := sob(true)
	b1 := body()
	s1 := sob(true)
	b2 := body()
	s2 := sob(false)
	exit := &vax.Instr{Op: vax.NOP}

	prog := workload.NewProgram()
	b0.PC = 0x2000
	s0.PC = b0.PC + uint32(b0.Size())
	// The loop branches back to b0: same addresses each iteration.
	disp := int32(b0.PC) - int32(s0.PC+uint32(s0.Size()))
	for _, s := range []*vax.Instr{s0, s1, s2} {
		s.PC = s0.PC
		s.BranchDisp = disp
		s.Target = b0.PC
	}
	b1.PC, b2.PC = b0.PC, b0.PC
	exit.PC = s0.PC + uint32(s0.Size())
	for _, in := range []*vax.Instr{b0, s0, exit} {
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
	}
	items := []*workload.Item{}
	for _, in := range []*vax.Instr{b0, s0, b1, s1, b2, s2, exit} {
		items = append(items, &workload.Item{Kind: workload.KindInstr, In: in})
	}
	tr := &workload.Trace{Program: prog, Items: items}
	m, _ := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("loop needed %d resyncs", m.Stats.Resyncs)
	}
	if m.Stats.Instrs != 7 {
		t.Errorf("Instrs = %d, want 7", m.Stats.Instrs)
	}
}

func TestCallRetStackTraffic(t *testing.T) {
	call := &vax.Instr{Op: vax.CALLS, Taken: true, RegCount: 3,
		Specs: []vax.Specifier{
			litSpec(0),
			memSpec(vax.ModeLongDisp, 2, 0x100, 0x3000),
		}}
	callee := &vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{litSpec(9), regSpec(0)}}
	ret := &vax.Instr{Op: vax.RET, Taken: true, RegCount: 3}
	after := &vax.Instr{Op: vax.NOP}

	prog := workload.NewProgram()
	call.PC = 0x1000
	after.PC = call.PC + uint32(call.Size())
	callee.PC = 0x3000
	ret.PC = callee.PC + uint32(callee.Size())
	call.Target = callee.PC
	ret.Target = after.PC
	for _, in := range []*vax.Instr{call, callee, ret, after} {
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
	}
	items := []*workload.Item{}
	for _, in := range []*vax.Instr{call, callee, ret, after} {
		items = append(items, &workload.Item{Kind: workload.KindInstr, In: in})
	}
	tr := &workload.Trace{Program: prog, Items: items}
	m, _ := newTestMachine(t, tr)
	spBefore := m.E.SP
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("call/ret needed %d resyncs", m.Stats.Resyncs)
	}
	// CALLS pushes 3 registers + 5 state longwords; RET pops 4 + 3.
	if m.Mem.Stats.DWrites < 8 {
		t.Errorf("only %d D-writes; CALLS should push at least 8 longwords", m.Mem.Stats.DWrites)
	}
	if m.Mem.Stats.DReads < 7 {
		t.Errorf("only %d D-reads; RET should pop at least 7", m.Mem.Stats.DReads)
	}
	// Stack pointer balance: CALL pushed 8, RET popped 7 plus mask read —
	// SP ends near where it started (within the state-longword skew).
	if diff := int64(m.E.SP) - int64(spBefore); diff < -64 || diff > 64 {
		t.Errorf("SP drifted %d bytes over call/ret", diff)
	}
}

func TestInterruptDelivery(t *testing.T) {
	user := &vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{litSpec(1), regSpec(1)}}
	handler := &vax.Instr{Op: vax.TSTL, Specs: []vax.Specifier{regSpec(0)}}
	rei := &vax.Instr{Op: vax.REI, Taken: true}
	resume := &vax.Instr{Op: vax.NOP}

	prog := workload.NewProgram()
	user.PC = 0x1000
	resume.PC = user.PC + uint32(user.Size())
	handler.PC = 0x8000_1000
	rei.PC = handler.PC + uint32(handler.Size())
	rei.Target = resume.PC
	for _, in := range []*vax.Instr{user, handler, rei, resume} {
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
	}
	items := []*workload.Item{
		{Kind: workload.KindInstr, In: user},
		{Kind: workload.KindInterrupt, HandlerPC: handler.PC},
		{Kind: workload.KindInstr, In: handler},
		{Kind: workload.KindInstr, In: rei},
		{Kind: workload.KindInstr, In: resume},
	}
	tr := &workload.Trace{Program: prog, Items: items}
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Interrupts != 1 {
		t.Errorf("Interrupts = %d, want 1", m.Stats.Interrupts)
	}
	if m.Stats.Resyncs != 0 {
		t.Errorf("interrupt path needed %d resyncs", m.Stats.Resyncs)
	}
	// Interrupt microcode ran: its entry location counted once.
	n, _ := mon.Read(m.ROM.Interrupt)
	if n != 1 {
		t.Errorf("interrupt flow entry count = %d, want 1", n)
	}
}

func TestTBMissServiceRuns(t *testing.T) {
	// A D-stream reference to a never-seen page must trap to the TB miss
	// microcode and then succeed on retry.
	ins := []*vax.Instr{
		{Op: vax.MOVL, Specs: []vax.Specifier{
			memSpec(vax.ModeLongDisp, 4, 0, 0x0070_0000), regSpec(1)}},
		{Op: vax.NOP},
	}
	tr := layout(t, 0x1000, ins)
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Mem.Stats.DTBMisses == 0 {
		t.Error("no D-stream TB miss recorded")
	}
	if m.Mem.Stats.PTEReads == 0 {
		t.Error("TB miss service did not read a PTE")
	}
	// The abort location counted at least one microtrap.
	n, _ := mon.Read(m.ROM.Abort)
	if n == 0 {
		t.Error("no abort cycles recorded")
	}
	// I-stream TB misses happened too (cold TB at 0x1000).
	if m.Mem.Stats.ITBMisses == 0 {
		t.Error("no I-stream TB miss recorded on a cold TB")
	}
}

func TestUnalignedTrap(t *testing.T) {
	sp := memSpec(vax.ModeLongDisp, 4, 0, 0x0070_0002)
	sp.Unaligned = true
	ins := []*vax.Instr{
		{Op: vax.MOVL, Specs: []vax.Specifier{sp, regSpec(1)}},
		{Op: vax.NOP},
	}
	tr := layout(t, 0x1000, ins)
	m, mon := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Mem.Stats.Unaligned != 1 {
		t.Errorf("Unaligned = %d, want 1", m.Mem.Stats.Unaligned)
	}
	n, _ := mon.Read(m.ROM.UnalignedRead)
	if n == 0 {
		t.Error("alignment microcode did not run")
	}
}

func TestCharacterStringLoop(t *testing.T) {
	movc := &vax.Instr{Op: vax.MOVC3, StrLen: 40,
		Specs: []vax.Specifier{
			litSpec(40),
			memSpec(vax.ModeRegDeferred, 1, 0, 0x6000),
			memSpec(vax.ModeRegDeferred, 2, 0, 0x7000),
		}}
	ins := []*vax.Instr{movc, {Op: vax.NOP}}
	tr := layout(t, 0x1000, ins)
	m, _ := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	// 40 bytes = 10 longwords: ≥10 string reads and ≥10 string writes.
	if m.Mem.Stats.DReads < 10 || m.Mem.Stats.DWrites < 10 {
		t.Errorf("string traffic too small: r=%d w=%d",
			m.Mem.Stats.DReads, m.Mem.Stats.DWrites)
	}
	// The paper: character microcode avoids write stalls by pacing writes.
	if m.Mem.Stats.WriteStall > 5 {
		t.Errorf("MOVC3 write-stalled %d cycles; the loop should pace writes",
			m.Mem.Stats.WriteStall)
	}
}

func TestContextSwitchFlushesTB(t *testing.T) {
	// Prime a process translation, LDPCTX to a new process, and check the
	// process half was flushed while system entries survive.
	mov := &vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{
		memSpec(vax.ModeRegDeferred, 5, 0, 0x6000), regSpec(1)}}
	sv := &vax.Instr{Op: vax.SVPCTX}
	ld := &vax.Instr{Op: vax.LDPCTX}
	after := &vax.Instr{Op: vax.NOP}
	tr := layout(t, 0x8000_2000, []*vax.Instr{mov, sv, ld, after})
	tr.Items[2].SwitchTo = 9
	m, _ := newTestMachine(t, tr)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Mem.ASID() != 9 {
		t.Errorf("ASID = %d, want 9 after LDPCTX", m.Mem.ASID())
	}
	if _, ok := m.Mem.Translate(0x6000); ok {
		t.Error("process TB entry survived the context switch")
	}
	// The instruction stream itself was in system space and must survive.
	if _, ok := m.Mem.Translate(0x8000_2000); !ok {
		t.Error("system TB entry lost on context switch")
	}
}

func TestDescribeMentionsComponents(t *testing.T) {
	tr := layout(t, 0x1000, []*vax.Instr{{Op: vax.NOP}})
	m, _ := newTestMachine(t, tr)
	d := m.Describe()
	for _, want := range []string{"EBOX", "Translation Buffer", "Write Buffer", "SBI", "I-Decode", "200 ns"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q", want)
		}
	}
}

func TestStepUnknownKind(t *testing.T) {
	tr := layout(t, 0x1000, []*vax.Instr{{Op: vax.NOP}})
	m, _ := newTestMachine(t, tr)
	if err := m.Step(&workload.Item{Kind: workload.Kind(99)}); err == nil {
		t.Error("unknown item kind should fail")
	}
}

// TestContextSwitchInsideInterruptBanksSP: when the scheduler (running on
// the interrupt stack) LDPCTXes to a new process, the outgoing process's
// parked SP must be banked and the REI must land on the INCOMING
// process's stack, inside its region.
func TestContextSwitchInsideInterruptBanksSP(t *testing.T) {
	sched := []*vax.Instr{
		{Op: vax.SVPCTX},
		{Op: vax.LDPCTX},
		{Op: vax.REI, Taken: true},
	}
	resume := &vax.Instr{Op: vax.NOP}

	prog := workload.NewProgram()
	pc := uint32(0x8000_3000)
	for _, in := range sched {
		in.PC = pc
		if err := prog.PutInstr(in); err != nil {
			t.Fatal(err)
		}
		pc += uint32(in.Size())
	}
	resume.PC = 0x0910_0000 // inside process 9's code slot
	if err := prog.PutInstr(resume); err != nil {
		t.Fatal(err)
	}
	sched[2].Target = resume.PC

	items := []*workload.Item{
		{Kind: workload.KindInterrupt, HandlerPC: sched[0].PC},
		{Kind: workload.KindInstr, In: sched[0]},
		{Kind: workload.KindInstr, In: sched[1], SwitchTo: 9},
		{Kind: workload.KindInstr, In: sched[2]},
		{Kind: workload.KindInstr, In: resume},
	}
	tr := &workload.Trace{Program: prog, Items: items}
	m, _ := newTestMachine(t, tr)
	oldSP := m.E.SP
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	if m.Mem.ASID() != 9 {
		t.Fatalf("ASID = %d", m.Mem.ASID())
	}
	lo := uint32(procStackBase + 9*procStackSlot)
	hi := lo + stackBytes
	if m.E.SP < lo || m.E.SP > hi {
		t.Errorf("SP %#x outside process 9's stack [%#x,%#x]", m.E.SP, lo, hi)
	}
	if m.E.StackLo != lo || m.E.StackHi != hi {
		t.Errorf("stack bounds [%#x,%#x], want [%#x,%#x]", m.E.StackLo, m.E.StackHi, lo, hi)
	}
	// The outgoing process's SP was banked for its next turn.
	if banked, ok := m.procSP[1]; !ok || banked != oldSP {
		t.Errorf("process 1 SP banked as %#x,%v; want %#x", banked, ok, oldSP)
	}
}
