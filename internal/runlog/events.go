package runlog

// Event constructors: one per ledger event type, each producing the
// exact attribute set Schema() pins. Keeping construction here (rather
// than ad-hoc attr lists at call sites) is what makes the golden-schema
// test a real invariant: a new field must be added in both places or
// the test fails.

import "log/slog"

// RunStartEvent opens a run's ledger: the configuration fingerprint
// (the same FNV-64a hash the checkpoint format uses, so a ledger can be
// matched against a checkpoint file), the workload list, and the fault
// plan's identity when one is attached. Parallelism is deliberately
// absent: the ledger is specified to be byte-identical across -j.
func RunStartEvent(configHash uint64, workloads string, count, instructions int,
	faultSeed uint64, hasFaults bool) Event {

	attrs := []slog.Attr{
		slog.String("config", hexHash(configHash)),
		slog.String("workloads", workloads),
		slog.Int("count", count),
		slog.Int("instructions", instructions),
		slog.Bool("faults", hasFaults),
	}
	if hasFaults {
		attrs = append(attrs, slog.Uint64("fault_seed", faultSeed))
	}
	return Event{Type: EvRunStart, Attrs: attrs}
}

// ResumeEvent records workloads folded back in from a checkpoint.
func ResumeEvent(path string, restored int) Event {
	return Event{Type: EvResume, Attrs: []slog.Attr{
		slog.String("path", path),
		slog.Int("restored", restored),
	}}
}

// WlStartEvent records one workload machine starting.
func WlStartEvent(workload string, index, instructions int) Event {
	return Event{Type: EvWlStart, Attrs: []slog.Attr{
		slog.String("workload", workload),
		slog.Int("index", index),
		slog.Int("instructions", instructions),
	}}
}

// WlDoneEvent records one workload machine completing.
func WlDoneEvent(workload string, index int, instrs, cycles uint64,
	cpi float64, retries int, saturated bool) Event {

	return Event{Type: EvWlDone, Attrs: []slog.Attr{
		slog.String("workload", workload),
		slog.Int("index", index),
		slog.Uint64("instructions", instrs),
		slog.Uint64("cycles", cycles),
		slog.Float64("cpi", cpi),
		slog.Int("retries", retries),
		slog.Bool("saturated", saturated),
	}}
}

// CheckpointEvent records an atomic checkpoint write.
func CheckpointEvent(path string, records int) Event {
	return Event{Type: EvCheckpoint, Attrs: []slog.Attr{
		slog.String("path", path),
		slog.Int("records", records),
	}}
}

// RetryEvent records a transient machine check the supervisor is
// retrying: the fault's identity plus the backoff it cost.
func RetryEvent(workload string, index, attempt int, cause string,
	upc uint16, cycle uint64, backoffMS int64) Event {

	return Event{Type: EvRetry, Level: slog.LevelWarn, Attrs: []slog.Attr{
		slog.String("workload", workload),
		slog.Int("index", index),
		slog.Int("attempt", attempt),
		slog.String("cause", cause),
		slog.Uint64("upc", uint64(upc)),
		slog.Uint64("cycle", cycle),
		slog.Int64("backoff_ms", backoffMS),
	}}
}

// FaultsEvent records a workload's fault-injection tally (emitted once
// per workload when a plan is attached, including all-zero tallies, so
// a fault-configured run's ledger always documents what was injected).
func FaultsEvent(workload string, index int, total uint64, classes string) Event {
	return Event{Type: EvFaults, Attrs: []slog.Attr{
		slog.String("workload", workload),
		slog.Int("index", index),
		slog.Uint64("total", total),
		slog.String("classes", classes),
	}}
}

// FaultEvent records a workload abort: the typed machine fault plus the
// flight-recorder snapshot of the microcode path that led to it.
// flight must be a json-marshalable slice of flight entries; its final
// entry's micro-PC equals the fault's upc by construction (the EBOX
// records the faulting micro-PC as the recorder's last word).
func FaultEvent(workload string, attempts int, upc uint16, cycle uint64,
	site, cause string, transient bool, flight any) Event {

	return Event{Type: EvFault, Level: slog.LevelWarn, Attrs: []slog.Attr{
		slog.String("workload", workload),
		slog.Int("attempts", attempts),
		slog.Uint64("upc", uint64(upc)),
		slog.Uint64("cycle", cycle),
		slog.String("site", site),
		slog.String("cause", cause),
		slog.Bool("transient", transient),
		slog.Any("flight", flight),
	}}
}

// ProfEvent records the host-time profiler's report: which engine
// produced it, the sampling parameters (zero for the exact engine), the
// cycles it attributed, and the hot-flow list. flows must be a
// json-marshalable slice of flow rows carrying only deterministic data
// (cycle counts and shares); host carries the wall-clock side (measured
// ns) and is stripped by StripWallClock like run-done's host group.
func ProfEvent(engine string, stride int, samples, cycles uint64,
	flows any, host any) Event {

	attrs := []slog.Attr{
		slog.String("engine", engine),
		slog.Int("stride", stride),
		slog.Uint64("samples", samples),
		slog.Uint64("cycles", cycles),
		slog.Any("flows", flows),
	}
	if host != nil {
		attrs = append(attrs, slog.Any("host", host))
	}
	return Event{Type: EvProf, Attrs: attrs}
}

// RunDoneEvent closes a run's ledger: composite totals, the Table 8
// summary (cycles per average instruction by activity row), the
// profiler's summary when one was attached (nil otherwise), and the
// host self-profile. The host group is wall-clock data and is stripped
// by StripWallClock; everything else is a pure function of seed and
// configuration.
func RunDoneEvent(workloads int, instrs, cycles uint64, cpi float64,
	retries, resumed int, faults string, table8 []slog.Attr,
	prof []slog.Attr, host HostStats) Event {

	attrs := []slog.Attr{
		slog.Int("workloads", workloads),
		slog.Uint64("instructions", instrs),
		slog.Uint64("cycles", cycles),
		slog.Float64("cpi", cpi),
		slog.Int("retries", retries),
		slog.Int("resumed", resumed),
		slog.String("faults", faults),
		slog.Attr{Key: "table8", Value: slog.GroupValue(table8...)},
	}
	if prof != nil {
		attrs = append(attrs, slog.Attr{Key: "prof", Value: slog.GroupValue(prof...)})
	}
	attrs = append(attrs, slog.Any("host", host))
	return Event{Type: EvRunDone, Attrs: attrs}
}

// SweepStartEvent opens a sweep ledger.
func SweepStartEvent(points int) Event {
	return Event{Type: EvSweepStart, Attrs: []slog.Attr{
		slog.Int("points", points),
	}}
}

// PointDoneEvent records one design point's outcome. Exactly one of
// cpi/errMsg is meaningful; err is the empty string on success.
func PointDoneEvent(label string, index int, instrs, cycles uint64,
	cpi float64, errMsg string) Event {

	return Event{Type: EvPointDone, Attrs: []slog.Attr{
		slog.String("label", label),
		slog.Int("index", index),
		slog.Uint64("instructions", instrs),
		slog.Uint64("cycles", cycles),
		slog.Float64("cpi", cpi),
		slog.String("error", errMsg),
	}}
}

// SweepDoneEvent closes a sweep ledger.
func SweepDoneEvent(points, errors int) Event {
	return Event{Type: EvSweepDone, Attrs: []slog.Attr{
		slog.Int("points", points),
		slog.Int("errors", errors),
	}}
}

// ProgressEvent wraps a fleet snapshot for the live bus. It is never
// persisted: progress is wall-clock data.
func ProgressEvent(s Snapshot) Event {
	return Event{Type: EvProgress, Attrs: []slog.Attr{
		slog.Any("progress", s),
	}}
}

// JobQueuedEvent records a job admitted to the vaxd queue: its
// identity, its content-address key, the submitting tenant, and the
// full spec (json-marshalable) — the spec rides on the journal so a
// crashed daemon can requeue the job from this record alone.
func JobQueuedEvent(id, key, tenant string, deadlineMS int64, spec any) Event {
	return Event{Type: EvJobQueued, Attrs: []slog.Attr{
		slog.String("id", id),
		slog.String("key", key),
		slog.String("tenant", tenant),
		slog.Int64("deadline_ms", deadlineMS),
		slog.Any("spec", spec),
	}}
}

// JobStartEvent records a job leaving the queue for a worker. requeues
// counts prior lives of the job (crash recoveries and drain requeues).
func JobStartEvent(id, key string, requeues int) Event {
	return Event{Type: EvJobStart, Attrs: []slog.Attr{
		slog.String("id", id),
		slog.String("key", key),
		slog.Int("requeues", requeues),
	}}
}

// JobDoneEvent closes a job's lifecycle: its terminal state (done,
// failed, evicted, timed-out), the cause for non-done states, whether
// the result was served from the content-addressed cache, and the
// composite totals for completed jobs (zero otherwise). An "evicted"
// record doubles as the requeue marker: recovery treats the job as
// pending again.
func JobDoneEvent(id, key, state, cause string, cached bool,
	instrs, cycles uint64, cpi float64) Event {

	lvl := slog.LevelInfo
	if state != "done" && state != "evicted" {
		lvl = slog.LevelWarn
	}
	return Event{Type: EvJobDone, Level: lvl, Attrs: []slog.Attr{
		slog.String("id", id),
		slog.String("key", key),
		slog.String("state", state),
		slog.String("cause", cause),
		slog.Bool("cached", cached),
		slog.Uint64("instructions", instrs),
		slog.Uint64("cycles", cycles),
		slog.Float64("cpi", cpi),
	}}
}

// DrainEvent records a graceful drain: admission stopped, in-flight
// jobs checkpointed and requeued.
func DrainEvent(reason string, requeued int) Event {
	return Event{Type: EvDrain, Attrs: []slog.Attr{
		slog.String("reason", reason),
		slog.Int("requeued", requeued),
	}}
}

// JobHTTPEvent records one settled POST /jobs request at the HTTP
// edge: the job it produced (empty when the request never made a job,
// e.g. a malformed spec), the route, the status code written, and the
// tenant. The request duration is wall-clock data and rides in the
// host group so StripWallClock removes it. Poll/fetch GETs are
// deliberately not journaled: the journal is fsynced per record and
// clients poll every few milliseconds.
func JobHTTPEvent(id, route, tenant string, status int, durNs int64) Event {
	return Event{Type: EvJobHTTP, Attrs: []slog.Attr{
		slog.String("id", id),
		slog.String("route", route),
		slog.String("tenant", tenant),
		slog.Int("status", status),
		slog.Attr{Key: "host", Value: slog.GroupValue(slog.Int64("dur_ns", durNs))},
	}}
}

// JobShedEvent records a submission rejected at admission — queue
// full, quota exhausted, or the daemon draining. Sheds were previously
// invisible in the journal, which made the 429/503 counters on
// /metrics unverifiable.
func JobShedEvent(tenant, reason string) Event {
	return Event{Type: EvJobShed, Level: slog.LevelWarn, Attrs: []slog.Attr{
		slog.String("tenant", tenant),
		slog.String("reason", reason),
	}}
}

// CommitRaceEvent records a first-writer-wins commit race in the
// content-addressed store: a finished staging directory was discarded
// because an identical bundle was already committed under key.
func CommitRaceEvent(key string) Event {
	return Event{Type: EvCommitRace, Attrs: []slog.Attr{
		slog.String("key", key),
	}}
}

// JournalTornEvent records a torn journal tail repaired at startup:
// records partial lines truncated (crash mid-append). The repair runs
// before the journal reopens for append, so this event is itself the
// first record of the new epoch and the recomposed counter stays exact.
func JournalTornEvent(records int) Event {
	return Event{Type: EvJournalTorn, Level: slog.LevelWarn, Attrs: []slog.Attr{
		slog.Int("records", records),
	}}
}

// hexHash renders a configuration hash the way checkpoint errors do.
func hexHash(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
