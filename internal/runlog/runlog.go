// Package runlog is the run ledger: a structured, append-only record of
// what a measurement run did — started, executed, checkpointed, faulted,
// retried, finished — as one JSONL event stream. The paper's monitor was
// passive and always-on, but its *runs* were opaque: the board answered
// "what happened over the whole interval", never "what is happening now"
// or "what led up to this fault". The ledger closes that gap the way
// Röhl et al. (2017) argue event data must be closed: the measurement
// run itself is documented and auditable, one machine-readable record
// per event, so any result can be traced back to the run that produced
// it.
//
// Three views share one event stream:
//
//   - the JSONL file (log/slog JSON handler): the durable, auditable
//     ledger. Its event order is canonical — workload-scoped events are
//     buffered per workload (Child) and persisted at merge time in
//     workload order, so the file is byte-identical across sequential
//     and parallel runs once wall-clock fields are stripped;
//   - the Bus: the live view. Subscribers (the SSE /events endpoint,
//     vaxtop, a Progress callback) see events the moment they happen,
//     in execution order, with bounded buffers that drop rather than
//     wedge the run;
//   - the progress Tracker: periodic fleet snapshots (per-worker
//     workload, simulated cycles, instr/s, ETA) published on the Bus
//     and to a callback.
//
// This package is the repository's one sanctioned home for wall-clock
// reads (see internal/golint's determinism exemptions): timestamps,
// rates, and host statistics measure the *host*, never the simulation,
// and nothing here feeds back into simulated state. Every wall-derived
// field lives either in the "time" attribute or under the "host" event
// group, which StripWallClock removes for determinism comparisons.
package runlog

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Event types of the ledger schema (the slog message). Schema() pins
// the attribute set of each.
const (
	EvRunStart   = "run-start"
	EvResume     = "checkpoint-resumed"
	EvWlStart    = "workload-start"
	EvWlDone     = "workload-done"
	EvCheckpoint = "checkpoint-written"
	EvRetry      = "retry"
	EvFaults     = "faults-injected"
	EvFault      = "machine-fault"
	EvProf       = "prof"
	EvRunDone    = "run-done"
	EvSweepStart = "sweep-start"
	EvPointDone  = "sweep-point-done"
	EvSweepDone  = "sweep-done"

	// Job lifecycle events of the vaxd service ledger (which doubles as
	// the content-addressed store's journal: crash recovery replays it).
	EvJobQueued = "job-queued"
	EvJobStart  = "job-start"
	EvJobDone   = "job-done"
	EvDrain     = "drain"

	// Service observability events: the HTTP edge, shed admissions, and
	// the castore's previously-silent recoveries. These exist so every
	// counter vaxd exports on /metrics recomposes exactly from the
	// journal (obs.Validate); none of them carries recovery state.
	EvJobHTTP     = "job-http"
	EvJobShed     = "job-shed"
	EvCommitRace  = "commit-race"
	EvJournalTorn = "journal-torn"

	// EvProgress is bus-only: periodic fleet snapshots are wall-clock
	// data and never enter the JSONL file.
	EvProgress = "progress"
)

// Event is one ledger record: a type (the slog message) plus an ordered
// attribute list. The same Event feeds the JSONL file (via slog) and
// the live Bus (via JSON); the attribute order is the schema order.
type Event struct {
	Type  string
	Level slog.Level
	Attrs []slog.Attr
}

// Ledger writes the canonical JSONL event stream and fans live events
// out on its Bus. A nil *Ledger is a valid "no ledger" for every
// method, so call sites need no guards. All persistence goes through
// one mutex: events are serialized in the order Emit sees them.
type Ledger struct {
	mu    sync.Mutex
	log   *slog.Logger // nil: bus-only ledger (no JSONL sink)
	bus   *Bus
	seq   uint64
	start time.Time
}

// New builds a ledger writing JSONL to w (nil w: bus-only). The wall
// clock starts now; host statistics report elapsed time against it.
func New(w io.Writer) *Ledger {
	l := &Ledger{bus: NewBus(), start: time.Now()}
	if w != nil {
		l.log = slog.New(slog.NewJSONHandler(w, nil))
	}
	return l
}

// NewOn is New publishing on an externally owned bus instead of a
// fresh one (nil bus: identical to New). The vaxd service uses this to
// keep one live bus per job: SSE subscribers attach to the job's bus
// before its run starts, and the run's ledger events reach them the
// moment the run constructs its Ledger on that bus.
func NewOn(w io.Writer, bus *Bus) *Ledger {
	l := New(w)
	if bus != nil {
		l.bus = bus
	}
	return l
}

// Bus returns the live event bus (nil on a nil ledger).
func (l *Ledger) Bus() *Bus {
	if l == nil {
		return nil
	}
	return l.bus
}

// Start returns the wall-clock instant the ledger was created.
func (l *Ledger) Start() time.Time {
	if l == nil {
		return time.Time{}
	}
	return l.start
}

// Emit persists one event to the JSONL stream (sequence-numbered) and
// publishes it on the bus. Safe for concurrent use; no-op on nil.
func (l *Ledger) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.persistLocked(ev)
	l.mu.Unlock()
	l.bus.Publish(ev)
}

// Publish puts an event on the live bus without persisting it (the
// progress tracker's periodic snapshots use this).
func (l *Ledger) Publish(ev Event) {
	if l == nil {
		return
	}
	l.bus.Publish(ev)
}

func (l *Ledger) persistLocked(ev Event) {
	if l.log == nil {
		l.seq++
		return
	}
	attrs := make([]slog.Attr, 0, len(ev.Attrs)+1)
	attrs = append(attrs, slog.Uint64("seq", l.seq))
	attrs = append(attrs, ev.Attrs...)
	l.seq++
	l.log.LogAttrs(context.Background(), ev.Level, ev.Type, attrs...)
}

// Child returns a workload-scoped emitter: events published live
// immediately, buffered for canonical persistence at Absorb time. A
// nil ledger returns a nil child; a nil child ignores Emit.
func (l *Ledger) Child() *Child {
	if l == nil {
		return nil
	}
	return &Child{led: l}
}

// Child buffers one workload's events. Emit is single-goroutine (the
// workload's supervisor); Absorb happens on the merging goroutine
// after the worker is done with it.
type Child struct {
	led    *Ledger
	events []Event
}

// Emit publishes the event live and buffers it for persistence.
func (c *Child) Emit(ev Event) {
	if c == nil {
		return
	}
	c.events = append(c.events, ev)
	c.led.bus.Publish(ev)
}

// Absorb persists a child's buffered events, in emission order, without
// re-publishing them (the bus already saw them live). Called in
// workload order by the merge, this is what makes the JSONL file
// byte-identical across sequential and parallel runs.
func (l *Ledger) Absorb(c *Child) {
	if l == nil || c == nil {
		return
	}
	l.mu.Lock()
	for _, ev := range c.events {
		l.persistLocked(ev)
	}
	l.mu.Unlock()
	c.events = c.events[:0]
}

// Elapsed returns wall seconds since the ledger was created.
func (l *Ledger) Elapsed() float64 {
	if l == nil {
		return 0
	}
	return time.Since(l.start).Seconds()
}
