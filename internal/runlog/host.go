package runlog

// Host self-profile: the simulator measuring the machine it runs on,
// the complement of the simulated measurements. Captured once at
// run-done (into the ledger's "host" group, stripped for determinism
// comparison) and periodically by the telemetry /metrics gauges.

import (
	"runtime"
	"time"
)

// HostStats is a point-in-time host self-profile.
type HostStats struct {
	ElapsedSeconds  float64 `json:"elapsed_s"`
	NsPerSimCycle   float64 `json:"ns_per_sim_cycle"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	SysBytes        uint64  `json:"sys_bytes"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalNs  uint64  `json:"gc_pause_total_ns"`
	Goroutines      int     `json:"goroutines"`
}

// CaptureHost reads the runtime's memory statistics and derives
// ns-per-simulated-cycle from the elapsed wall time and the simulated
// cycle count (zero cycles: the gauge reads zero).
func CaptureHost(elapsed time.Duration, simCycles uint64) HostStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := HostStats{
		ElapsedSeconds:  elapsed.Seconds(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		SysBytes:        ms.Sys,
		NumGC:           ms.NumGC,
		GCPauseTotalNs:  ms.PauseTotalNs,
		Goroutines:      runtime.NumGoroutine(),
	}
	if simCycles > 0 {
		h.NsPerSimCycle = float64(elapsed.Nanoseconds()) / float64(simCycles)
	}
	return h
}

// Host captures the host self-profile against the ledger's own wall
// clock. Zero value on a nil ledger.
func (l *Ledger) Host(simCycles uint64) HostStats {
	if l == nil {
		return HostStats{}
	}
	return CaptureHost(time.Since(l.start), simCycles)
}

// Clock is a wall-clock origin for host-side span timing. Every
// wall-clock read of the repository lives in this package (the
// determinism analyzer enforces it); the profiler's span builders take
// their offsets from a Clock instead of reading time themselves.
type Clock struct {
	start time.Time
}

// NewClock starts a clock at the current instant.
func NewClock() *Clock { return &Clock{start: time.Now()} }

// Ns returns nanoseconds since the clock's origin. Nil-safe (zero).
func (c *Clock) Ns() float64 {
	if c == nil {
		return 0
	}
	return float64(time.Since(c.start).Nanoseconds())
}
