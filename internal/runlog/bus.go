package runlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
)

// Bus is the live event fan-out: bounded, non-blocking publication to
// any number of subscribers. A slow or stalled subscriber loses events
// (its drop counter ticks) — the run is never wedged by an observer,
// the same passivity discipline as the histogram board itself.
type Bus struct {
	mu   sync.Mutex
	subs map[int]*subscriber
	next int
}

type subscriber struct {
	ch      chan Event
	dropped uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*subscriber)}
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1) and returns its event channel plus a cancel function.
// Cancel closes the channel; events published while the buffer is full
// are dropped, never blocked on. Safe on a nil bus (returns a closed
// channel and a no-op cancel).
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if b == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan Event, buf)}
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = s
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(s.ch)
		})
	}
	return s.ch, cancel
}

// Publish delivers the event to every subscriber whose buffer has
// room; full buffers drop. No-op on nil.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
}

// Subscribers reports how many subscribers are attached.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// JSON renders the event as one JSON object — {"ev": type, attrs...} —
// the wire form of the SSE /events stream and the vaxtop feed. Attr
// order follows the schema order, like the JSONL file.
func (e Event) JSON() []byte {
	var buf bytes.Buffer
	buf.WriteByte('{')
	buf.WriteString(`"ev":`)
	writeJSONString(&buf, e.Type)
	for _, a := range e.Attrs {
		buf.WriteByte(',')
		writeJSONString(&buf, a.Key)
		buf.WriteByte(':')
		writeJSONValue(&buf, a.Value)
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

func writeJSONString(buf *bytes.Buffer, s string) {
	b, _ := json.Marshal(s)
	buf.Write(b)
}

func writeJSONValue(buf *bytes.Buffer, v slog.Value) {
	v = v.Resolve()
	switch v.Kind() {
	case slog.KindString:
		writeJSONString(buf, v.String())
	case slog.KindInt64:
		fmt.Fprintf(buf, "%d", v.Int64())
	case slog.KindUint64:
		fmt.Fprintf(buf, "%d", v.Uint64())
	case slog.KindFloat64:
		b, err := json.Marshal(v.Float64())
		if err != nil {
			buf.WriteString("null")
			return
		}
		buf.Write(b)
	case slog.KindBool:
		fmt.Fprintf(buf, "%t", v.Bool())
	case slog.KindGroup:
		buf.WriteByte('{')
		for i, a := range v.Group() {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, a.Key)
			buf.WriteByte(':')
			writeJSONValue(buf, a.Value)
		}
		buf.WriteByte('}')
	default:
		b, err := json.Marshal(v.Any())
		if err != nil {
			buf.WriteString("null")
			return
		}
		buf.Write(b)
	}
}
