package runlog

// The ledger's golden schema: for every event type, the exact attribute
// keys a JSONL record may carry. TestLedgerSchema pins this against the
// constructors; Validate is reused by vaxdiag -ledger -check and CI so
// a drifting format fails loudly everywhere at once.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// EventSchema lists an event type's required and optional attribute
// keys (beyond the standard slog time/level/msg envelope and the
// ledger's seq counter).
type EventSchema struct {
	Required []string
	Optional []string
}

// stdKeys is the envelope every JSONL record carries: slog's handler
// fields plus the ledger sequence number.
var stdKeys = []string{"time", "level", "msg", "seq"}

// Schema returns the golden ledger schema, keyed by event type. The
// bus-only progress event is deliberately absent: its presence in a
// JSONL file is a validation error.
func Schema() map[string]EventSchema {
	return map[string]EventSchema{
		EvRunStart: {
			Required: []string{"config", "workloads", "count", "instructions", "faults"},
			Optional: []string{"fault_seed"},
		},
		EvResume: {
			Required: []string{"path", "restored"},
		},
		EvWlStart: {
			Required: []string{"workload", "index", "instructions"},
		},
		EvWlDone: {
			Required: []string{"workload", "index", "instructions", "cycles",
				"cpi", "retries", "saturated"},
		},
		EvCheckpoint: {
			Required: []string{"path", "records"},
		},
		EvRetry: {
			Required: []string{"workload", "index", "attempt", "cause", "upc",
				"cycle", "backoff_ms"},
		},
		EvFaults: {
			Required: []string{"workload", "index", "total", "classes"},
		},
		EvFault: {
			Required: []string{"workload", "attempts", "upc", "cycle", "site",
				"cause", "transient", "flight"},
		},
		EvProf: {
			Required: []string{"engine", "stride", "samples", "cycles", "flows"},
			Optional: []string{"host"},
		},
		EvRunDone: {
			Required: []string{"workloads", "instructions", "cycles", "cpi",
				"retries", "resumed", "faults", "table8", "host"},
			Optional: []string{"prof"},
		},
		EvSweepStart: {
			Required: []string{"points"},
		},
		EvPointDone: {
			Required: []string{"label", "index", "instructions", "cycles",
				"cpi", "error"},
		},
		EvSweepDone: {
			Required: []string{"points", "errors"},
		},
		EvJobQueued: {
			Required: []string{"id", "key", "tenant", "deadline_ms", "spec"},
		},
		EvJobStart: {
			Required: []string{"id", "key", "requeues"},
		},
		EvJobDone: {
			Required: []string{"id", "key", "state", "cause", "cached",
				"instructions", "cycles", "cpi"},
		},
		EvDrain: {
			Required: []string{"reason", "requeued"},
		},
		EvJobHTTP: {
			Required: []string{"id", "route", "tenant", "status"},
			// The request duration is wall-clock data; StripWallClock
			// removes the host group, so it cannot be required.
			Optional: []string{"host"},
		},
		EvJobShed: {
			Required: []string{"tenant", "reason"},
		},
		EvCommitRace: {
			Required: []string{"key"},
		},
		EvJournalTorn: {
			Required: []string{"records"},
		},
	}
}

// ValidateLine checks one JSONL record against the golden schema:
// envelope present, known event type, all required attributes present,
// no attributes outside the schema.
func ValidateLine(line []byte) error {
	var rec map[string]json.RawMessage
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	var typ string
	if raw, ok := rec["msg"]; !ok {
		return fmt.Errorf("missing msg field")
	} else if err := json.Unmarshal(raw, &typ); err != nil {
		return fmt.Errorf("msg is not a string: %w", err)
	}
	es, ok := Schema()[typ]
	if !ok {
		return fmt.Errorf("unknown event type %q", typ)
	}
	allowed := make(map[string]bool, len(stdKeys)+len(es.Required)+len(es.Optional))
	for _, k := range stdKeys {
		allowed[k] = true
	}
	for _, k := range es.Required {
		allowed[k] = true
		if _, ok := rec[k]; !ok {
			return fmt.Errorf("%s: missing required attribute %q", typ, k)
		}
	}
	for _, k := range es.Optional {
		allowed[k] = true
	}
	var extra []string
	for k := range rec {
		if !allowed[k] {
			extra = append(extra, k)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return fmt.Errorf("%s: attributes outside schema: %v", typ, extra)
	}
	return nil
}

// Validate checks a whole JSONL stream, returning the first offending
// line number (1-based) in the error.
func Validate(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := ValidateLine(line); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading ledger: %w", err)
	}
	if n == 0 {
		return fmt.Errorf("empty ledger")
	}
	return nil
}

// wallKeys are the attributes StripWallClock removes: the slog
// timestamp on every record, and the run-done host self-profile (both
// measure the host, not the simulation).
var wallKeys = []string{"time", "host"}

// StripWallClock canonicalizes a JSONL ledger for determinism
// comparison: wall-clock attributes removed, remaining keys re-encoded
// in sorted order, one record per line. Two runs of the same
// configuration must strip to identical bytes regardless of
// parallelism.
func StripWallClock(data []byte) ([]byte, error) {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", n, err)
		}
		for _, k := range wallKeys {
			delete(rec, k)
		}
		// encoding/json sorts map keys, giving the canonical order.
		enc, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", n, err)
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}
