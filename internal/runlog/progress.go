package runlog

// Live fleet progress: a Tracker periodically samples the run's worker
// slots (via an injected closure, so the measurement packages never
// read the clock themselves), derives rates and ETAs, and publishes
// snapshots — to an atomic "latest" cell for /progress, to the bus for
// SSE and vaxtop, and to an optional callback for RunConfig.Progress.

import (
	"sync"
	"sync/atomic"
	"time"
)

// WorkerSample is one worker slot's instantaneous state, as sampled
// from the run's atomics.
type WorkerSample struct {
	Worker      int    // slot index
	Label       string // current workload name ("" when idle)
	Instrs      uint64 // instructions retired in the current unit
	TotalInstrs uint64 // instruction target of the current unit
	Cycles      uint64 // cycles simulated in the current unit
	Faults      uint64 // machine faults seen by this slot so far
	Retries     uint64 // retries performed by this slot so far
	Busy        bool
}

// FleetSample is one whole-fleet observation: the worker slots plus the
// run-level totals the workers alone cannot see (completed units and
// the overall instruction budget, for ETA).
type FleetSample struct {
	Workers     []WorkerSample
	DoneUnits   int    // workloads / sweep points completed
	TotalUnits  int    // workloads / sweep points overall
	DoneInstrs  uint64 // instructions retired by completed units
	DoneCycles  uint64 // cycles simulated by completed units
	TotalInstrs uint64 // instruction budget of the whole run (0: unknown)
}

// WorkerProgress is the derived per-worker view in a Snapshot.
type WorkerProgress struct {
	Worker      int     `json:"worker"`
	Label       string  `json:"label"`
	Instrs      uint64  `json:"instructions"`
	TotalInstrs uint64  `json:"total_instructions"`
	Cycles      uint64  `json:"cycles"`
	InstrRate   float64 `json:"instr_per_s"`
	ETASeconds  float64 `json:"eta_s"`
	Faults      uint64  `json:"faults"`
	Retries     uint64  `json:"retries"`
	Busy        bool    `json:"busy"`
}

// Snapshot is one derived fleet-progress observation, the payload of
// the bus-only progress event, the /progress endpoint, and vaxtop.
type Snapshot struct {
	ElapsedSeconds float64          `json:"elapsed_s"`
	DoneUnits      int              `json:"done_units"`
	TotalUnits     int              `json:"total_units"`
	Instrs         uint64           `json:"instructions"`
	Cycles         uint64           `json:"cycles"`
	InstrRate      float64          `json:"instr_per_s"`
	NsPerSimCycle  float64          `json:"ns_per_sim_cycle"`
	ETASeconds     float64          `json:"eta_s"`
	Faults         uint64           `json:"faults"`
	Retries        uint64           `json:"retries"`
	Workers        []WorkerProgress `json:"workers"`
	Final          bool             `json:"final"`
}

// Tracker derives periodic Snapshots from a FleetSample closure.
type Tracker struct {
	interval time.Duration
	sample   func() FleetSample
	sink     func(Snapshot) // optional callback (RunConfig.Progress)
	led      *Ledger        // optional: snapshots published on its bus

	latest atomic.Pointer[Snapshot]

	mu         sync.Mutex
	start      time.Time
	prevAt     time.Time
	prevInstrs uint64
	prevWorker map[int]uint64 // worker slot -> instrs at previous tick

	stop chan struct{}
	done chan struct{}
}

// NewTracker builds a tracker sampling every interval (minimum 10ms;
// zero means the 1s default). sink may be nil.
func NewTracker(interval time.Duration, sample func() FleetSample, sink func(Snapshot)) *Tracker {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Tracker{
		interval:   interval,
		sample:     sample,
		sink:       sink,
		prevWorker: make(map[int]uint64),
	}
}

// Attach routes snapshots onto the ledger's live bus as progress
// events (never into the JSONL file).
func (t *Tracker) Attach(l *Ledger) {
	if t == nil {
		return
	}
	t.led = l
}

// Start launches the sampling goroutine. No-op on nil.
func (t *Tracker) Start() {
	if t == nil || t.stop != nil {
		return
	}
	now := time.Now()
	t.start = now
	t.prevAt = now
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.loop()
}

func (t *Tracker) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.publish(t.observe(false))
		}
	}
}

// Stop halts sampling, takes one final snapshot (marked Final), and
// returns it. Safe to call more than once; nil-safe.
func (t *Tracker) Stop() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	if t.stop != nil {
		select {
		case <-t.stop:
		default:
			close(t.stop)
		}
		<-t.done
	}
	s := t.observe(true)
	t.publish(s)
	return s
}

// Latest returns the most recent snapshot, if any.
func (t *Tracker) Latest() (Snapshot, bool) {
	if t == nil {
		return Snapshot{}, false
	}
	p := t.latest.Load()
	if p == nil {
		return Snapshot{}, false
	}
	return *p, true
}

func (t *Tracker) publish(s Snapshot) {
	t.latest.Store(&s)
	if t.sink != nil {
		t.sink(s)
	}
	if t.led != nil {
		t.led.Publish(ProgressEvent(s))
	}
}

// observe samples the fleet and derives rates against the previous
// observation window.
func (t *Tracker) observe(final bool) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()

	now := time.Now()
	if t.start.IsZero() {
		t.start = now
		t.prevAt = now
	}
	fs := t.sample()

	s := Snapshot{
		ElapsedSeconds: now.Sub(t.start).Seconds(),
		DoneUnits:      fs.DoneUnits,
		TotalUnits:     fs.TotalUnits,
		Instrs:         fs.DoneInstrs,
		Cycles:         fs.DoneCycles,
		Final:          final,
	}
	window := now.Sub(t.prevAt).Seconds()
	for _, w := range fs.Workers {
		wp := WorkerProgress{
			Worker:      w.Worker,
			Label:       w.Label,
			Instrs:      w.Instrs,
			TotalInstrs: w.TotalInstrs,
			Cycles:      w.Cycles,
			Faults:      w.Faults,
			Retries:     w.Retries,
			Busy:        w.Busy,
		}
		s.Faults += w.Faults
		s.Retries += w.Retries
		if w.Busy {
			s.Instrs += w.Instrs
			s.Cycles += w.Cycles
		}
		if window > 0 {
			prev := t.prevWorker[w.Worker]
			if w.Instrs >= prev {
				wp.InstrRate = float64(w.Instrs-prev) / window
			}
			if wp.InstrRate > 0 && w.TotalInstrs > w.Instrs {
				wp.ETASeconds = float64(w.TotalInstrs-w.Instrs) / wp.InstrRate
			}
		}
		t.prevWorker[w.Worker] = w.Instrs
		s.Workers = append(s.Workers, wp)
	}
	if window > 0 && s.Instrs >= t.prevInstrs {
		s.InstrRate = float64(s.Instrs-t.prevInstrs) / window
	}
	if s.Cycles > 0 {
		s.NsPerSimCycle = now.Sub(t.start).Seconds() * 1e9 / float64(s.Cycles)
	}
	if s.InstrRate > 0 && fs.TotalInstrs > s.Instrs {
		s.ETASeconds = float64(fs.TotalInstrs-s.Instrs) / s.InstrRate
	}
	t.prevAt = now
	t.prevInstrs = s.Instrs
	return s
}
