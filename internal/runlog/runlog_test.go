package runlog

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleEvents returns one instance of every persistable event type,
// exercising each constructor.
func sampleEvents() []Event {
	flight := []map[string]any{
		{"cycle": 100, "upc": 16, "stalled": false, "class": "exec", "region": "base"},
		{"cycle": 101, "upc": 17, "stalled": true, "class": "exec", "region": "base"},
	}
	return []Event{
		RunStartEvent(0xdeadbeef, "direct,loop", 2, 1000, 42, true),
		ResumeEvent("run.ckpt", 1),
		WlStartEvent("direct", 0, 1000),
		FaultsEvent("direct", 0, 3, "mem-parity=2 tb-glitch=1"),
		RetryEvent("direct", 0, 1, "mem-parity", 0x22, 555, 50),
		WlDoneEvent("direct", 0, 1000, 10949, 10.9, 1, false),
		CheckpointEvent("run.ckpt", 1),
		FaultEvent("loop", 4, 0x31, 777, "ebox", "microcode-hang", false, flight),
		ProfEvent("sampling", 64, 150, 9600,
			[]map[string]any{{"name": "IRD", "cycles": 4000, "share": 0.41}},
			map[string]any{"wall_ns": 1.5e6}),
		RunDoneEvent(2, 2000, 21900, 10.95, 1, 1, "total=3",
			[]slog.Attr{slog.Float64("COMPUTE", 3.5)},
			[]slog.Attr{slog.String("engine", "sampling"), slog.Uint64("samples", 150),
				slog.String("top_flow", "IRD")},
			HostStats{ElapsedSeconds: 0.5}),
		SweepStartEvent(3),
		PointDoneEvent("cache=0", 0, 1000, 12000, 12.0, ""),
		SweepDoneEvent(3, 0),
		JobQueuedEvent("j-0001", "a1b2c3d4e5f60789", "alice", 30000,
			map[string]any{"instructions": 1000, "workloads": []string{"TIMESHARING-A"}}),
		JobStartEvent("j-0001", "a1b2c3d4e5f60789", 1),
		JobDoneEvent("j-0001", "a1b2c3d4e5f60789", "done", "", false, 1000, 10949, 10.9),
		DrainEvent("SIGTERM", 2),
		JobHTTPEvent("j-0001", "POST /jobs", "alice", 202, 1500000),
		JobShedEvent("bob", "queue-full"),
		CommitRaceEvent("a1b2c3d4e5f60789"),
		JournalTornEvent(1),
	}
}

func TestLedgerJSONLMatchesGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	led := New(&buf)
	for _, ev := range sampleEvents() {
		led.Emit(ev)
	}
	if err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ledger fails its own schema: %v", err)
	}
	// Every schema type must have been exercised.
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Msg string `json:"msg"`
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		seen[rec.Msg] = true
	}
	for typ := range Schema() {
		if !seen[typ] {
			t.Errorf("schema type %q not covered by sampleEvents", typ)
		}
	}
}

func TestLedgerSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	led := New(&buf)
	for _, ev := range sampleEvents() {
		led.Emit(ev)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines {
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i) {
			t.Fatalf("line %d has seq %d", i, rec.Seq)
		}
	}
}

func TestValidateRejectsBadLines(t *testing.T) {
	cases := map[string]string{
		"unknown type":     `{"time":"t","level":"INFO","msg":"mystery","seq":0}`,
		"missing required": `{"time":"t","level":"INFO","msg":"workload-start","seq":0,"workload":"direct"}`,
		"extra attr":       `{"time":"t","level":"INFO","msg":"sweep-start","seq":0,"points":3,"bogus":1}`,
		"progress in file": `{"time":"t","level":"INFO","msg":"progress","seq":0}`,
		"not json":         `nope`,
	}
	for name, line := range cases {
		if err := ValidateLine([]byte(line)); err == nil {
			t.Errorf("%s: ValidateLine accepted %s", name, line)
		}
	}
	if err := Validate(strings.NewReader("")); err == nil {
		t.Error("Validate accepted an empty ledger")
	}
}

func TestChildAbsorbOrderIsCanonical(t *testing.T) {
	// Two workloads finishing out of order must still persist in the
	// order they are absorbed — the merge's workload order.
	var buf bytes.Buffer
	led := New(&buf)
	c0 := led.Child()
	c1 := led.Child()
	c1.Emit(WlStartEvent("loop", 1, 10)) // "finishes" first
	c0.Emit(WlStartEvent("direct", 0, 10))
	led.Absorb(c0)
	led.Absorb(c1)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"workload":"direct"`) {
		t.Fatalf("absorb order not canonical: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"workload":"loop"`) {
		t.Fatalf("absorb order not canonical: %s", lines[1])
	}
}

func TestChildPublishesLiveBeforeAbsorb(t *testing.T) {
	led := New(nil)
	ch, cancel := led.Bus().Subscribe(4)
	defer cancel()
	c := led.Child()
	c.Emit(WlStartEvent("direct", 0, 10))
	select {
	case ev := <-ch:
		if ev.Type != EvWlStart {
			t.Fatalf("got %q", ev.Type)
		}
	default:
		t.Fatal("child emit not visible on bus before absorb")
	}
	led.Absorb(c)
	select {
	case ev := <-ch:
		t.Fatalf("absorb re-published %q", ev.Type)
	default:
	}
}

func TestStripWallClock(t *testing.T) {
	var a, b bytes.Buffer
	la := New(&a)
	for _, ev := range sampleEvents() {
		la.Emit(ev)
	}
	time.Sleep(2 * time.Millisecond) // force different timestamps
	lb := New(&b)
	for _, ev := range sampleEvents() {
		lb.Emit(ev)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("expected raw ledgers to differ by timestamp")
	}
	sa, err := StripWallClock(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := StripWallClock(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("stripped ledgers differ:\n%s\nvs\n%s", sa, sb)
	}
	if bytes.Contains(sa, []byte(`"time"`)) || bytes.Contains(sa, []byte(`"host"`)) {
		t.Fatal("wall-clock fields survived stripping")
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Emit(SweepStartEvent(1))
	l.Publish(SweepStartEvent(1))
	c := l.Child()
	c.Emit(SweepStartEvent(1))
	l.Absorb(c)
	if l.Bus() != nil {
		t.Fatal("nil ledger bus should be nil")
	}
	if h := l.Host(100); h != (HostStats{}) {
		t.Fatal("nil ledger host stats should be zero")
	}
	if l.Elapsed() != 0 {
		t.Fatal("nil ledger elapsed should be zero")
	}
	var b *Bus
	b.Publish(SweepStartEvent(1))
	ch, cancel := b.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil bus channel should be closed")
	}
}

func TestBusDropsWhenFull(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(SweepStartEvent(i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber")
	}
	// Exactly one event fits the buffer; the rest dropped.
	ev := <-ch
	if ev.Type != EvSweepStart {
		t.Fatalf("got %q", ev.Type)
	}
}

func TestBusCancelDuringPublish(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := b.Subscribe(2)
			for range ch {
			}
			_ = cancel
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Publish(SweepStartEvent(j))
			}
		}()
	}
	// Cancel all subscribers so range loops terminate.
	time.Sleep(10 * time.Millisecond)
	b.mu.Lock()
	subs := make([]*subscriber, 0, len(b.subs))
	for id, s := range b.subs {
		subs = append(subs, s)
		delete(b.subs, id)
	}
	b.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers left: %d", n)
	}
}

func TestEventJSON(t *testing.T) {
	ev := RunDoneEvent(2, 2000, 21900, 10.95, 1, 0, "total=0",
		[]slog.Attr{slog.Float64("COMPUTE", 3.5)}, nil, HostStats{Goroutines: 4})
	var rec map[string]any
	if err := json.Unmarshal(ev.JSON(), &rec); err != nil {
		t.Fatalf("Event.JSON not valid JSON: %v\n%s", err, ev.JSON())
	}
	if rec["ev"] != EvRunDone {
		t.Fatalf("ev field = %v", rec["ev"])
	}
	t8, ok := rec["table8"].(map[string]any)
	if !ok || t8["COMPUTE"] != 3.5 {
		t.Fatalf("table8 group mangled: %v", rec["table8"])
	}
	host, ok := rec["host"].(map[string]any)
	if !ok || host["goroutines"] != float64(4) {
		t.Fatalf("host any-value mangled: %v", rec["host"])
	}
}

func TestTrackerSnapshots(t *testing.T) {
	var mu sync.Mutex
	instrs := uint64(0)
	sample := func() FleetSample {
		mu.Lock()
		defer mu.Unlock()
		return FleetSample{
			Workers: []WorkerSample{{
				Worker: 0, Label: "direct", Instrs: instrs,
				TotalInstrs: 1000, Cycles: instrs * 11, Busy: true,
			}},
			TotalUnits:  2,
			TotalInstrs: 2000,
		}
	}
	var sunk []Snapshot
	var sinkMu sync.Mutex
	tr := NewTracker(10*time.Millisecond, sample, func(s Snapshot) {
		sinkMu.Lock()
		sunk = append(sunk, s)
		sinkMu.Unlock()
	})
	led := New(nil)
	tr.Attach(led)
	ch, cancel := led.Bus().Subscribe(64)
	defer cancel()

	tr.Start()
	for i := 0; i < 5; i++ {
		mu.Lock()
		instrs += 100
		mu.Unlock()
		time.Sleep(12 * time.Millisecond)
	}
	final := tr.Stop()
	if !final.Final {
		t.Fatal("Stop snapshot not marked final")
	}
	if final.Instrs == 0 || final.Cycles == 0 {
		t.Fatalf("final snapshot empty: %+v", final)
	}
	if final.TotalUnits != 2 {
		t.Fatalf("total units = %d", final.TotalUnits)
	}
	if len(final.Workers) != 1 || final.Workers[0].Label != "direct" {
		t.Fatalf("workers: %+v", final.Workers)
	}
	if s, ok := tr.Latest(); !ok || !s.Final {
		t.Fatal("Latest should return the final snapshot")
	}
	sinkMu.Lock()
	n := len(sunk)
	sinkMu.Unlock()
	if n == 0 {
		t.Fatal("sink never called")
	}
	// The bus must have seen progress events.
	sawProgress := false
	for {
		select {
		case ev := <-ch:
			if ev.Type == EvProgress {
				sawProgress = true
			}
			continue
		default:
		}
		break
	}
	if !sawProgress {
		t.Fatal("no progress events on bus")
	}
	// Stop twice is safe.
	tr.Stop()
	var nilTr *Tracker
	nilTr.Start()
	nilTr.Stop()
	nilTr.Attach(nil)
}

func TestCaptureHost(t *testing.T) {
	h := CaptureHost(2*time.Second, 1_000_000)
	if h.ElapsedSeconds != 2 {
		t.Fatalf("elapsed = %v", h.ElapsedSeconds)
	}
	if h.NsPerSimCycle != 2000 {
		t.Fatalf("ns/sim-cycle = %v", h.NsPerSimCycle)
	}
	if h.SysBytes == 0 || h.Goroutines == 0 {
		t.Fatalf("memstats not captured: %+v", h)
	}
	if z := CaptureHost(time.Second, 0); z.NsPerSimCycle != 0 {
		t.Fatal("zero cycles should not divide")
	}
}
