package ebox

import (
	"testing"

	"vax780/internal/vax"
)

// TestOverlapSkipsIRDAfterFallThrough: with OverlapDecode, the second of
// two fall-through instructions pays no IRD cycle.
func TestOverlapSkipsIRDAfterFallThrough(t *testing.T) {
	r := newRig()
	r.e.OverlapDecode = true
	in1 := &vax.Instr{Op: vax.NOP}
	in2 := &vax.Instr{Op: vax.NOP}
	r.load(in1, 0x1000)
	r.load(in2, 0x1000+uint32(in1.Size()))
	r.ib.Redirect(0x1000)
	for _, in := range []*vax.Instr{in1, in2} {
		ctx := &InstrCtx{In: in, DstSpec: -1, FieldSpec: -1}
		if err := r.e.RunInstr(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The first instruction pays the IRD cycle (nothing preceded it);
	// the second overlaps it away.
	if got := r.mon.normal[r.rom.IRD]; got != 1 {
		t.Errorf("IRD cycles = %d, want 1 (second decode overlapped)", got)
	}
	if r.e.Instrs != 2 {
		t.Errorf("Instrs = %d", r.e.Instrs)
	}
}

// TestOverlapPaysIRDAfterRedirect: a taken branch flushes the pipeline,
// so the next instruction pays the decode cycle even when overlapping.
func TestOverlapPaysIRDAfterRedirect(t *testing.T) {
	r := newRig()
	r.e.OverlapDecode = true
	br := &vax.Instr{Op: vax.BRB, Taken: true, BranchDisp: 4}
	after := &vax.Instr{Op: vax.NOP}
	br.Target = 0x1000 + uint32(br.Size()) + 4
	r.load(br, 0x1000)
	r.load(after, br.Target)
	r.ib.Redirect(0x1000)
	for _, in := range []*vax.Instr{br, after} {
		ctx := &InstrCtx{In: in, DstSpec: -1, FieldSpec: -1, Target: in.Target}
		if err := r.e.RunInstr(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Both instructions pay IRD: the first because the machine just
	// started, the second because the branch redirected the I-stream.
	if got := r.mon.normal[r.rom.IRD]; got != 2 {
		t.Errorf("IRD cycles = %d, want 2 (redirect forces decode)", got)
	}
}

// TestOverlapOffAlwaysPaysIRD: the stock 780 pays the decode cycle on
// every instruction.
func TestOverlapOffAlwaysPaysIRD(t *testing.T) {
	r := newRig()
	ins := []*vax.Instr{{Op: vax.NOP}, {Op: vax.NOP}, {Op: vax.NOP}}
	pc := uint32(0x1000)
	for _, in := range ins {
		r.load(in, pc)
		pc += uint32(in.Size())
	}
	r.ib.Redirect(0x1000)
	for _, in := range ins {
		ctx := &InstrCtx{In: in, DstSpec: -1, FieldSpec: -1}
		if err := r.e.RunInstr(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.mon.normal[r.rom.IRD]; got != 3 {
		t.Errorf("IRD cycles = %d, want 3", got)
	}
}
