package ebox

import (
	"testing"

	"vax780/internal/ibox"
	"vax780/internal/mem"
	"vax780/internal/ucode"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// testMonitor records every tick for microstate-level assertions.
type testMonitor struct {
	normal  map[uint16]uint64
	stalled map[uint16]uint64
	total   uint64
}

func newTestMonitor() *testMonitor {
	return &testMonitor{normal: map[uint16]uint64{}, stalled: map[uint16]uint64{}}
}

func (m *testMonitor) Tick(addr uint16, stalled bool) {
	if stalled {
		m.stalled[addr]++
	} else {
		m.normal[addr]++
	}
	m.total++
}

// rig wires an EBOX over a real ROM, memory system and IBox whose code
// image is a simple byte map.
type rig struct {
	rom  *urom.ROM
	mem  *mem.System
	ib   *ibox.IBox
	e    *EBOX
	mon  *testMonitor
	code map[uint32]byte
}

var sharedROM = urom.Build()

func newRig() *rig {
	r := &rig{rom: sharedROM, code: map[uint32]byte{}}
	r.mem = mem.New(mem.Config{})
	r.ib = ibox.New(r.mem, func(va uint32) (byte, bool) {
		b, ok := r.code[va]
		return b, ok
	})
	r.mon = newTestMonitor()
	r.e = New(r.rom, r.mem, r.ib, r.mon)
	r.e.Strict = true
	r.e.SP = 0x4100_0000
	r.e.StackLo = 0x4100_0000 - (64 << 10)
	r.e.StackHi = 0x4100_0000
	return r
}

// load places an instruction's encoding at its PC and redirects the IB.
func (r *rig) load(in *vax.Instr, pc uint32) {
	in.PC = pc
	for i, b := range vax.Encode(nil, in) {
		r.code[pc+uint32(i)] = b
	}
}

func (r *rig) run(t *testing.T, in *vax.Instr, ctx *InstrCtx) {
	t.Helper()
	if ctx == nil {
		ctx = &InstrCtx{DstSpec: -1, FieldSpec: -1}
	}
	ctx.In = in
	if ctx.Target == 0 {
		ctx.Target = in.Target
	}
	r.ib.Redirect(in.PC)
	if err := r.e.RunInstr(ctx); err != nil {
		t.Fatal(err)
	}
}

func regSpec(n int) vax.Specifier {
	return vax.Specifier{Mode: vax.ModeRegister, Reg: n, Index: -1}
}

func TestIRDCountsOncePerInstruction(t *testing.T) {
	r := newRig()
	in := &vax.Instr{Op: vax.NOP}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if got := r.mon.normal[r.rom.IRD]; got != 1 {
		t.Errorf("IRD count = %d, want 1", got)
	}
	if r.e.Instrs != 1 {
		t.Errorf("Instrs = %d", r.e.Instrs)
	}
}

func TestOptimizedEntrySkipsStagingCycle(t *testing.T) {
	r := newRig()
	// ADDL2 #1, R2 → register destination → optimized entry: the staging
	// cycle at ExecEntry must NOT be executed.
	in := &vax.Instr{Op: vax.ADDL2, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 1, Index: -1}, regSpec(2)}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if got := r.mon.normal[r.rom.ExecEntry[vax.ADDL2]]; got != 0 {
		t.Errorf("staging cycle executed %d times; optimization should skip it", got)
	}
	if got := r.mon.normal[r.rom.ExecEntryOpt[vax.ADDL2]]; got != 1 {
		t.Errorf("optimized entry count = %d, want 1", got)
	}
}

func TestUnoptimizedEntryWithMemoryOperand(t *testing.T) {
	r := newRig()
	r.mem.InsertTB(0x5000)
	in := &vax.Instr{Op: vax.ADDL2, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 1, Index: -1},
		{Mode: vax.ModeByteDisp, Reg: 2, Disp: 8, Addr: 0x5008, Index: -1}}}
	r.load(in, 0x1000)
	ctx := &InstrCtx{DstSpec: 1, FieldSpec: -1}
	r.run(t, in, ctx)
	if got := r.mon.normal[r.rom.ExecEntry[vax.ADDL2]]; got != 1 {
		t.Errorf("standard entry count = %d, want 1", got)
	}
	// The destination store runs the SPEC2-6 RSTORE flow.
	if got := r.mon.normal[r.rom.RStore[1]]; got != 1 {
		t.Errorf("RSTORE count = %d, want 1", got)
	}
	if r.mem.Stats.DWrites != 1 {
		t.Errorf("DWrites = %d, want 1 (the result store)", r.mem.Stats.DWrites)
	}
}

func TestRStoreSpec1ForFirstSpecifierDestination(t *testing.T) {
	r := newRig()
	r.mem.InsertTB(0x5000)
	// CLRL 8(R2): the sole (first) specifier is the memory destination.
	in := &vax.Instr{Op: vax.CLRL, Specs: []vax.Specifier{
		{Mode: vax.ModeByteDisp, Reg: 2, Disp: 8, Addr: 0x5008, Index: -1}}}
	r.load(in, 0x1000)
	r.run(t, in, &InstrCtx{DstSpec: 0, FieldSpec: -1})
	if got := r.mon.normal[r.rom.RStore[0]]; got != 1 {
		t.Errorf("spec1 RSTORE count = %d, want 1", got)
	}
	if got := r.mon.normal[r.rom.RStore[1]]; got != 0 {
		t.Errorf("specN RSTORE count = %d, want 0", got)
	}
}

func TestLoopCounterDrivesIterations(t *testing.T) {
	r := newRig()
	// PUSHR with 5 registers: the push loop body runs 5 times.
	in := &vax.Instr{Op: vax.PUSHR, RegCount: 5, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 0x3E, Index: -1}}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if r.mem.Stats.DWrites != 5 {
		t.Errorf("PUSHR pushed %d longwords, want 5", r.mem.Stats.DWrites)
	}
}

func TestStringLoopLongwords(t *testing.T) {
	r := newRig()
	for _, va := range []uint32{0x6000, 0x7000} {
		r.mem.InsertTB(va)
	}
	in := &vax.Instr{Op: vax.MOVC3, StrLen: 17, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 17, Index: -1},
		{Mode: vax.ModeRegDeferred, Reg: 1, Addr: 0x6000, Index: -1},
		{Mode: vax.ModeRegDeferred, Reg: 2, Addr: 0x7000, Index: -1}}}
	r.load(in, 0x1000)
	ctx := &InstrCtx{DstSpec: -1, FieldSpec: -1, StrSrc: 0x6000, StrDst: 0x7000}
	r.run(t, in, ctx)
	// ceil(17/4) = 5 longword reads and writes.
	if r.mem.Stats.DReads != 5 || r.mem.Stats.DWrites != 5 {
		t.Errorf("string traffic r=%d w=%d, want 5/5", r.mem.Stats.DReads, r.mem.Stats.DWrites)
	}
	// Cursors advanced by 5 longwords.
	if ctx.StrSrc != 0x6000+20 || ctx.StrDst != 0x7000+20 {
		t.Errorf("cursors: src=%#x dst=%#x", ctx.StrSrc, ctx.StrDst)
	}
}

func TestReadStallAttributedToReadingMicroinstruction(t *testing.T) {
	r := newRig()
	r.mem.InsertTB(0x5000)
	// Cold cache: the displacement-mode operand read misses and stalls.
	in := &vax.Instr{Op: vax.TSTL, Specs: []vax.Specifier{
		{Mode: vax.ModeByteDisp, Reg: 2, Disp: 8, Addr: 0x5008, Index: -1}}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	// Find the spec1 displacement read location.
	readLoc := r.rom.SpecEntry[0][vax.ModeByteDisp][urom.VarRead] + 1 // addr calc, then read
	if got := r.mon.normal[readLoc]; got != 1 {
		t.Errorf("read cycle count = %d, want 1", got)
	}
	if got := r.mon.stalled[readLoc]; got == 0 {
		t.Error("no stall cycles at the reading microinstruction (cold cache must miss)")
	}
}

func TestWriteStallAttribution(t *testing.T) {
	r := newRig()
	// Two PUSHLs back to back: the second write hits the busy buffer.
	in1 := &vax.Instr{Op: vax.PUSHL, Specs: []vax.Specifier{regSpec(1)}}
	in2 := &vax.Instr{Op: vax.PUSHL, Specs: []vax.Specifier{regSpec(1)}}
	r.load(in1, 0x1000)
	r.load(in2, 0x1000+uint32(in1.Size()))
	r.ib.Redirect(0x1000)
	ctx := &InstrCtx{DstSpec: -1, FieldSpec: -1}
	ctx.In = in1
	if err := r.e.RunInstr(ctx); err != nil {
		t.Fatal(err)
	}
	ctx2 := &InstrCtx{DstSpec: -1, FieldSpec: -1}
	ctx2.In = in2
	if err := r.e.RunInstr(ctx2); err != nil {
		t.Fatal(err)
	}
	if r.mem.Stats.WriteStall == 0 {
		t.Error("second push should write-stall behind the one-longword buffer")
	}
	// The stall lands at the push's write microinstruction.
	pushLoc := r.rom.ExecEntry[vax.PUSHL]
	if r.mon.stalled[pushLoc] == 0 {
		t.Error("write stall not attributed to the push microinstruction")
	}
}

func TestTBMissTrapRunsServiceAndRetries(t *testing.T) {
	r := newRig()
	// No TB entry for the operand page: the read traps, the service flow
	// installs the translation, the read retries and completes.
	in := &vax.Instr{Op: vax.TSTL, Specs: []vax.Specifier{
		{Mode: vax.ModeRegDeferred, Reg: 1, Addr: 0x0070_0000, Index: -1}}}
	r.load(in, 0x1000)
	r.mem.InsertTB(0x1000) // keep the I-stream from missing too
	r.run(t, in, nil)
	if r.mem.Stats.DTBMisses != 1 {
		t.Errorf("DTBMisses = %d, want 1", r.mem.Stats.DTBMisses)
	}
	if got := r.mon.normal[r.rom.TBMiss]; got != 1 {
		t.Errorf("TB miss service entries = %d, want 1", got)
	}
	if r.mon.normal[r.rom.Abort] == 0 {
		t.Error("no abort cycle for the microtrap")
	}
	// After service the translation must be installed.
	if _, ok := r.mem.Translate(0x0070_0000); !ok {
		t.Error("service flow did not install the translation")
	}
	// The read eventually succeeded exactly once.
	if r.mem.Stats.DReads != 1 {
		t.Errorf("DReads = %d, want 1", r.mem.Stats.DReads)
	}
}

func TestIndexedFirstSpecifierRunsSharedBaseFlow(t *testing.T) {
	r := newRig()
	r.mem.InsertTB(0x5000)
	in := &vax.Instr{Op: vax.TSTL, Specs: []vax.Specifier{
		{Mode: vax.ModeByteDisp, Reg: 2, Disp: 8, Addr: 0x5008, Index: 3}}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if got := r.mon.normal[r.rom.IdxEntry[0]]; got != 1 {
		t.Errorf("spec1 index preamble count = %d, want 1", got)
	}
	// The base flow executed is the SPEC2-6 copy (sharing artifact).
	base := r.rom.SpecEntry[1][vax.ModeByteDisp][urom.VarRead]
	if got := r.mon.normal[base]; got != 1 {
		t.Errorf("shared SPEC2-6 base flow count = %d, want 1", got)
	}
	// The SPEC1 copy must NOT run.
	s1 := r.rom.SpecEntry[0][vax.ModeByteDisp][urom.VarRead]
	if got := r.mon.normal[s1]; got != 0 {
		t.Errorf("SPEC1 flow ran %d times for an indexed specifier", got)
	}
}

func TestBDispRunsOnlyWhenTaken(t *testing.T) {
	r := newRig()
	taken := &vax.Instr{Op: vax.BEQL, Taken: true, BranchDisp: 2}
	taken.Target = 0x1000 + 2 + 2
	r.load(taken, 0x1000)
	// Materialize the target so the redirect lands on bytes.
	nop := &vax.Instr{Op: vax.NOP}
	r.load(nop, taken.Target)
	r.run(t, taken, nil)
	if got := r.mon.normal[r.rom.BDisp]; got != 1 {
		t.Errorf("B-DISP count = %d, want 1", got)
	}

	r2 := newRig()
	untaken := &vax.Instr{Op: vax.BEQL, Taken: false, BranchDisp: 2}
	r2.load(untaken, 0x1000)
	r2.run(t, untaken, nil)
	if got := r2.mon.normal[r2.rom.BDisp]; got != 0 {
		t.Errorf("untaken branch ran B-DISP %d times", got)
	}
}

func TestSIRRDispatch(t *testing.T) {
	r := newRig()
	in := &vax.Instr{Op: vax.MTPR, SIRR: true, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 4, Index: -1},
		{Mode: vax.ModeLiteral, Disp: 0x14, Index: -1}}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if got := r.mon.normal[r.rom.ExecEntrySIRR]; got != 1 {
		t.Errorf("SIRR exit count = %d, want 1", got)
	}
	if got := r.mon.normal[r.rom.ExecEntry[vax.MTPR]]; got != 0 {
		t.Errorf("ordinary MTPR flow ran %d times for a SIRR write", got)
	}
}

func TestStrictDecodeMismatchFails(t *testing.T) {
	r := newRig()
	// Materialize a MOVL encoding but claim the trace executes TSTL.
	real := &vax.Instr{Op: vax.MOVL, Specs: []vax.Specifier{regSpec(1), regSpec(2)}}
	r.load(real, 0x1000)
	fake := &vax.Instr{Op: vax.TSTL, PC: 0x1000, Specs: []vax.Specifier{regSpec(1)}}
	ctx := &InstrCtx{In: fake, DstSpec: -1, FieldSpec: -1}
	r.ib.Redirect(0x1000)
	if err := r.e.RunInstr(ctx); err == nil {
		t.Error("strict mode should reject a decode mismatch")
	}
}

func TestStackWrapStaysInRegion(t *testing.T) {
	r := newRig()
	r.e.SP = r.e.StackLo + 4
	in := &vax.Instr{Op: vax.PUSHR, RegCount: 8, Specs: []vax.Specifier{
		{Mode: vax.ModeLiteral, Disp: 0x3F, Index: -1}}}
	r.load(in, 0x1000)
	r.run(t, in, nil)
	if r.e.SP < r.e.StackLo || r.e.SP > r.e.StackHi {
		t.Errorf("SP %#x escaped region [%#x,%#x]", r.e.SP, r.e.StackLo, r.e.StackHi)
	}
}

func TestCycleAccountingExact(t *testing.T) {
	r := newRig()
	r.mem.InsertTB(0x5000)
	ins := []*vax.Instr{
		{Op: vax.MOVL, Specs: []vax.Specifier{regSpec(1), regSpec(2)}},
		{Op: vax.ADDL2, Specs: []vax.Specifier{
			{Mode: vax.ModeByteDisp, Reg: 3, Disp: 4, Addr: 0x5004, Index: -1},
			regSpec(4)}},
		{Op: vax.NOP},
	}
	pc := uint32(0x1000)
	for _, in := range ins {
		r.load(in, pc)
		pc += uint32(in.Size())
	}
	r.ib.Redirect(0x1000)
	for _, in := range ins {
		ctx := &InstrCtx{In: in, DstSpec: -1, FieldSpec: -1}
		if err := r.e.RunInstr(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if r.mon.total != r.e.Now {
		t.Errorf("monitor saw %d cycles, EBOX advanced %d", r.mon.total, r.e.Now)
	}
}

func TestRunawayMicrocodeDetected(t *testing.T) {
	// A hand-built image with an infinite loop must be caught, not hang.
	asm := ucode.NewAssembler()
	asm.Region(ucode.RegDecode)
	asm.Label("ird").DecodeInstr("d")
	asm.Label("stall.instr").IBStallLoc(ucode.IBDecodeInstr, "s")
	asm.Label("spin").Jump("spin", "forever")
	// Reuse the real ROM but overwrite a copy's NOP entry to spin.
	// Simpler: drive run() directly at the spin location via RunOverhead.
	img := asm.MustAssemble()
	rom := &urom.ROM{Image: img}
	rom.IRD = img.Addr("ird")
	m := mem.New(mem.Config{})
	ib := ibox.New(m, func(uint32) (byte, bool) { return 0, false })
	e := New(rom, m, ib, nil)
	err := e.RunOverhead(img.Addr("spin"), &InstrCtx{DstSpec: -1, FieldSpec: -1})
	if err == nil {
		t.Error("runaway microcode not detected")
	}
}
