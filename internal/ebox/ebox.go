// Package ebox implements the VAX-11/780 EBOX: the microsequencer that
// executes the control store image against the memory subsystem and the
// I-Fetch/I-Decode stages. One call to Tick on the attached monitor is
// made per 200 ns EBOX cycle — the exact observation point of the paper's
// UPC histogram hardware. The six cycle classes of Table 8 (compute,
// read, read-stall, write, write-stall, IB-stall) are mutually exclusive
// by construction: every cycle ticks exactly one (address, stall-set)
// bucket.
package ebox

import (
	"fmt"

	"vax780/internal/faults"
	"vax780/internal/ibox"
	"vax780/internal/mem"
	"vax780/internal/ucode"
	"vax780/internal/ufuse"
	"vax780/internal/upc"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// Monitor is the passive per-cycle observation hook (the UPC board).
type Monitor interface {
	Tick(addr uint16, stalled bool)
}

// Probe is the telemetry layer's cycle-resolution hook. Unlike Monitor
// it carries the cycle number, so consumers can build timelines without
// keeping their own clock. It is nil on an uninstrumented machine; the
// fast path is a single nil check per cycle.
type Probe interface {
	// Cycle observes one 200 ns EBOX cycle — the same observation point
	// as the UPC board's count pulse.
	Cycle(now uint64, addr uint16, stalled bool)
	// TBMiss observes a D-stream translation-buffer microtrap.
	TBMiss(now uint64, istream bool, va uint32)
}

// BulkProbe is the optional bulk extension of Probe, implemented by the
// telemetry layer. Quiet reports how many of the next n cycles are
// observation-free (no interval boundary, no pending board command);
// CycleRun applies that many un-stalled cycles in one call, bit-exact
// with n individual Cycle calls over a span Quiet approved. The
// superword replay path uses it to amortize the per-cycle hook cost
// while routing every observable event — an interval roll, a board
// command — through the ordinary per-cycle path at its exact cycle.
type BulkProbe interface {
	Probe
	Quiet(now uint64, n int) int
	CycleRun(now uint64, addr uint16, n int)
}

// InstrCtx carries everything data-dependent about one instruction (or
// overhead event) execution: the trace record plus derived operand
// context prepared by the machine.
type InstrCtx struct {
	In *vax.Instr // nil for overhead flows (interrupt delivery)

	// DstSpec is the index of the memory destination specifier whose
	// write the RSTORE flow performs, or -1 when the result goes to a
	// register (or nowhere).
	DstSpec int

	// FieldSpec is the index of the specifier providing the operand that
	// execute-phase MemReadOperand/MemWriteOperand cycles reference
	// (bit-field bases), or -1.
	FieldSpec int

	// String operand cursors for MemReadString/MemWriteString.
	StrSrc, StrDst uint32

	// ScalarVA is the cursor for MemReadScalar/MemWriteScalar (entry
	// masks, case tables, PCB longwords, interrupt vectors, ...).
	ScalarVA uint32

	// Target is the I-stream redirect target used by IBRedirect cycles.
	Target uint32
}

// EBOX is the microsequencer.
type EBOX struct {
	ROM *urom.ROM
	Mem *mem.System
	IB  *ibox.IBox

	// Mon is the attached per-cycle observation hook; nil when the
	// machine runs unmonitored.
	Mon Monitor

	// upcMon is the devirtualized fast path, set once at construction
	// when Mon is the real histogram board: tick then skips the
	// interface dispatch and inlines the board's count pulse.
	upcMon *upc.Monitor

	// Probe, when non-nil, receives telemetry events (cycle stream and
	// D-stream TB misses).
	Probe Probe

	// FR, when non-nil, is the micro-PC flight recorder: a fixed ring of
	// the last N cycles for post-mortems. Concrete type, so the per-cycle
	// call devirtualizes; disabled cost is this one pointer test.
	FR *upc.FlightRecorder

	// Samp, when non-nil, is the host-time profiler's micro-PC sampler:
	// every stride-th cycle lands in a sampled histogram. Concrete type,
	// same disabled cost as FR — one pointer test per cycle.
	Samp *upc.Sampler

	// Fuse, when non-nil, is the compiled superword table
	// (internal/ufuse): straight-line runs the control store proves
	// pure execute as one dispatch each. The measurement hooks no
	// longer deopt: a superword replays its statically-proven per-cycle
	// effect stream into the flight recorder and sampler in bulk, and —
	// when a telemetry Probe is attached — interleaves the hooks cycle
	// by cycle in exactly tick's order, so a probe that snapshots or
	// reconfigures the board mid-superword observes the same machine an
	// interpreted run would. Only a fault plan (CheckFaults) or a
	// Monitor that is not the devirtualized histogram board forces
	// single-step interpretation (run checks once per flow entry).
	Fuse *ufuse.Plan

	// Now is the cycle counter (200 ns units).
	Now uint64

	// SP is the current stack pointer; StackLo/StackHi bound the region
	// so synthetic push/pop imbalance cannot walk off to infinity.
	SP               uint32
	StackLo, StackHi uint32

	// Strict enables decode verification against the trace record;
	// mismatches indicate an encoder/generator inconsistency.
	Strict bool

	// OverlapDecode models the improvement the paper names in §5: "saving
	// the non-overlapped I-Decode cycle could save one cycle on each
	// non-PC-changing instruction. (The later VAX model 11/750 did
	// [this].)" When set, the IRD cycle is free whenever the previous
	// instruction fell through (the IB pipeline was not redirected).
	OverlapDecode bool

	// CheckFaults is set by the machine when a fault plan is attached:
	// only then does the EBOX poll the memory subsystem for latched
	// parity errors after each data reference (one boolean test per
	// reference on the disabled path).
	CheckFaults bool

	// redirected records whether the current instruction redirected the
	// I-stream (branch taken / call / return), which forces the next
	// instruction to pay the full decode cycle even when overlapping.
	redirected bool

	// inAlign marks an alignment flow in progress, so a degenerate
	// faulting address of 0 (trapBase indistinguishable from "not in a
	// trap") cannot re-enter the alignment trap. This is EBOX state, not
	// a trace-record toggle: the trace stays read-only and shareable
	// across concurrently running machines.
	inAlign bool

	// microstate
	ctx      *InstrCtx
	upc      uint16
	uret     uint16
	loop     int
	pendBase uint16 // base-flow entry for an indexed specifier
	curSpec  int    // specifier whose operand memory functions reference
	specIdx  int    // next specifier to decode

	// Instrs counts RunInstr completions (cross-check for the IRD bucket).
	Instrs uint64
}

// New builds an EBOX. mon may be nil (unmonitored). When mon is the
// real histogram board the EBOX devirtualizes it once here, so the
// per-cycle tick pays a concrete inlined increment instead of an
// interface dispatch.
func New(rom *urom.ROM, m *mem.System, ib *ibox.IBox, mon Monitor) *EBOX {
	// The first instruction always pays its decode cycle: there is no
	// previous instruction to overlap it with.
	e := &EBOX{ROM: rom, Mem: m, IB: ib, Mon: mon, redirected: true}
	e.upcMon, _ = mon.(*upc.Monitor)
	return e
}

// tick advances one EBOX cycle: the monitor observes it, the I-Fetch
// stage gets its cycle (issuing a refill only when the cache port is
// free), and time moves. The monitor fast path (a healthy running
// board) is fully inlined; a stopped board, an attached fault
// injector, or a non-board Monitor implementation falls back to the
// full-service call.
func (e *EBOX) tick(addr uint16, stalled, portBusy bool) {
	if mon := e.upcMon; mon != nil {
		if mon.Fast() {
			mon.TickFast(addr, stalled)
		} else {
			mon.Tick(addr, stalled)
		}
	} else if e.Mon != nil {
		e.Mon.Tick(addr, stalled)
	}
	if e.Probe != nil {
		e.Probe.Cycle(e.Now, addr, stalled)
	}
	if e.FR != nil {
		e.FR.Record(e.Now, addr, stalled)
	}
	if e.Samp != nil {
		e.Samp.Sample(addr, stalled)
	}
	e.IB.Tick(e.Now, !portBusy)
	e.Now++
}

// RunInstr executes one traced instruction to completion.
func (e *EBOX) RunInstr(ctx *InstrCtx) error {
	e.ctx = ctx
	e.specIdx = 0
	e.curSpec = -1
	overlapped := e.OverlapDecode && !e.redirected
	e.redirected = false
	var err error
	if overlapped {
		// The decode cycle overlaps the previous instruction's execution:
		// the dispatch happens without a counted IRD cycle (IB waits, if
		// any, still cost their stall cycles).
		var next uint16
		next, err = e.dispatchInstr()
		if err == nil {
			err = e.run(next)
		}
	} else {
		err = e.run(e.ROM.IRD)
	}
	if err != nil {
		return fmt.Errorf("ebox: %s at PC %#x: %w", ctx.In.Op, ctx.In.PC, err)
	}
	e.Instrs++
	return nil
}

// RunOverhead executes an overhead flow (interrupt delivery) that is not
// associated with an instruction.
func (e *EBOX) RunOverhead(entry uint16, ctx *InstrCtx) error {
	e.ctx = ctx
	e.specIdx = 0
	e.curSpec = -1
	return e.run(entry)
}

// run is the microsequencer main loop: execute from entry until an
// end-of-instruction microinstruction completes.
//
// With a fusion plan attached, a straight-line run the control store
// proves pure executes as one superword: the run's statically-proven
// per-cycle effect stream — histogram increments, I-Fetch advances,
// flight-recorder entries, sampler hits, telemetry cycles — is replayed
// by fusedReplay, the cycle counter jumps by the run length, and the
// run's final word goes through the ordinary sequencer — the proven
// deopt point for branches, dispatches, loop back-edges, and I-stream
// redirects. When the final word is a SeqURet whose return site roots
// another superword, the inner loop chains straight into it without
// re-entering the interpreter: the analyzer's return-site fusion pass
// proves every site such a return can land on is a legal superword head
// or single-step entry. Memory words, IB-stall waits, and loop-counter
// loads are never inside a superword, so the data-dependent paths below
// are reached exactly as the interpreter reaches them.
func (e *EBOX) run(entry uint16) error {
	e.upc = entry
	fuse := e.Fuse
	if fuse != nil && (e.upcMon == nil || e.CheckFaults) {
		// A fault plan needs the interpreter's per-reference poll points,
		// and a non-board Monitor cannot take the bulk count vector:
		// both force single-step interpretation.
		fuse = nil
	}
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			return fmt.Errorf("microcode runaway at uPC %#o", e.upc)
		}

		if fuse != nil {
			// Chained superword loop: each iteration executes one
			// superword and sequences its final word; when the successor
			// (a jump target or a uret return site) roots another
			// superword, the chain continues without touching the
			// outer-loop dispatch. Fast() is re-checked per superword —
			// and per cycle inside fusedReplay when a probe is attached —
			// because a probe command can stop the board mid-run.
			for n := fuse.Len(e.upc); n != 0 && e.upcMon.Fast(); n = fuse.Len(e.upc) {
				if steps++; steps > 1_000_000 {
					return fmt.Errorf("microcode runaway at uPC %#o", e.upc)
				}
				e.fusedReplay(n)
				e.upc += uint16(n - 1)
				mi := e.ROM.Image.At(e.upc)
				next, done, err := e.seq(mi)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				e.upc = next
			}
		}

		mi := e.ROM.Image.At(e.upc)

		if mi.Loop != ucode.LoopNone {
			e.loop = e.loopCount(mi.Loop, mi.N)
		}

		if mi.Mem != ucode.MemNone {
			ok, err := e.doMem(mi, 0)
			if err != nil {
				return err
			}
			if !ok {
				continue // microtrap serviced; retry this microinstruction
			}
		} else {
			e.tick(e.upc, false, false)
		}

		next, done, err := e.seq(mi)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		e.upc = next
	}
}

// fusedReplay replays one superword's proven per-cycle effect stream:
// n consecutive un-stalled cycles at e.upc, e.upc+1, …, with one
// normal-set histogram increment, one flight-recorder entry, one
// sampler countdown, and one free-port I-Fetch advance each — exactly
// what n calls of tick(addr, false, false) would perform, which is what
// the analyzer's effect-summary pass proves of every fusible segment.
//
// With a telemetry probe attached the hooks are interleaved cycle by
// cycle in tick's exact call order: Probe.Cycle can snapshot the
// histogram (interval roll) or apply a board command (stop, clear)
// between any two cycles, so the monitor tick must precede the probe
// and Fast() must be re-tested every cycle. Without a probe nothing can
// mutate observer state mid-superword, so the bulk variants — proven
// bit-exact against their single-step loops — apply the whole stream at
// once.
func (e *EBOX) fusedReplay(n int) {
	if e.Probe != nil {
		if bp, ok := e.Probe.(BulkProbe); ok {
			e.fusedReplayBulk(bp, n)
			return
		}
		addr := e.upc
		for i := 0; i < n; i++ {
			if mon := e.upcMon; mon.Fast() {
				mon.TickFast(addr, false)
			} else {
				mon.Tick(addr, false)
			}
			e.Probe.Cycle(e.Now, addr, false)
			if e.FR != nil {
				e.FR.Record(e.Now, addr, false)
			}
			if e.Samp != nil {
				e.Samp.Sample(addr, false)
			}
			e.IB.Tick(e.Now, true)
			e.Now++
			addr++
		}
		return
	}
	e.upcMon.TickRun(e.upc, n)
	if e.FR != nil {
		e.FR.RecordRun(e.Now, e.upc, n)
	}
	if e.Samp != nil {
		e.Samp.SampleRun(e.upc, n)
	}
	e.IB.TickRun(e.Now, n)
	e.Now += uint64(n)
}

// fusedReplayBulk replays a superword under a bulk-capable probe:
// observation-free spans apply in one call per hook, and any cycle that
// can observe the machine — an interval roll, a pending board command,
// or a stopped board — goes through the exact per-cycle sequence tick
// performs, monitor first (so a roll inside Probe.Cycle snapshots a
// histogram that already counts the boundary cycle, as the interpreted
// run's would). Fast is re-tested per chunk because a board command
// applied at a boundary can stop or clear the board mid-superword.
func (e *EBOX) fusedReplayBulk(p BulkProbe, n int) {
	addr := e.upc
	for n > 0 {
		k := 0
		if e.upcMon.Fast() {
			k = p.Quiet(e.Now, n)
		}
		if k <= 0 {
			if mon := e.upcMon; mon.Fast() {
				mon.TickFast(addr, false)
			} else {
				mon.Tick(addr, false)
			}
			p.Cycle(e.Now, addr, false)
			if e.FR != nil {
				e.FR.Record(e.Now, addr, false)
			}
			if e.Samp != nil {
				e.Samp.Sample(addr, false)
			}
			e.IB.Tick(e.Now, true)
			e.Now++
			addr++
			n--
			continue
		}
		e.upcMon.TickRun(addr, k)
		p.CycleRun(e.Now, addr, k)
		if e.FR != nil {
			e.FR.RecordRun(e.Now, addr, k)
		}
		if e.Samp != nil {
			e.Samp.SampleRun(addr, k)
		}
		e.IB.TickRun(e.Now, k)
		e.Now += uint64(k)
		addr += uint16(k)
		n -= k
	}
}

// loopCount resolves a loop-counter load against the instruction context.
func (e *EBOX) loopCount(src ucode.LoopSrc, n int) int {
	v := 1
	in := e.ctx.In
	switch src {
	case ucode.LoopImm:
		v = n
	case ucode.LoopRegCount:
		if in != nil {
			v = in.RegCount
		}
	case ucode.LoopStrLW:
		if in != nil {
			v = (in.StrLen + 3) / 4
		}
	case ucode.LoopStrBytes:
		if in != nil {
			v = in.StrLen
		}
	case ucode.LoopDigits:
		if in != nil {
			v = (in.Digits + 1) / 2
		}
	case ucode.LoopFieldLen:
		if in != nil {
			v = (in.FieldLen + 31) / 32
		}
	}
	if v < 1 {
		v = 1
	}
	return v
}

// push returns the VA for a stack push, wrapping within the stack region.
func (e *EBOX) push() uint32 {
	e.SP -= 4
	if e.SP < e.StackLo {
		e.SP = e.StackHi - 4
	}
	return e.SP
}

// pop returns the VA for a stack pop.
func (e *EBOX) pop() uint32 {
	va := e.SP
	e.SP += 4
	if e.SP > e.StackHi {
		e.SP = e.StackLo + 4
		va = e.StackLo
	}
	return va
}

// memVA resolves the effective virtual address of a memory function.
// trapBase is nonzero inside trap-service flows (the faulting address).
func (e *EBOX) memVA(f ucode.MemFunc, trapBase uint32) (va uint32, spec *vax.Specifier, err error) {
	ctx := e.ctx
	switch f {
	case ucode.MemReadOperand, ucode.MemWriteOperand:
		if trapBase != 0 {
			// Alignment microcode: the second physical reference.
			return trapBase + 4, nil, nil
		}
		idx := e.curSpec
		mi := e.ROM.Image.At(e.upc)
		if mi.Region >= ucode.RegExecSimple && mi.Region <= ucode.RegExecDecimal {
			idx = ctx.FieldSpec
		}
		if idx < 0 || ctx.In == nil || idx >= len(ctx.In.Specs) {
			return ctx.ScalarVA, nil, nil
		}
		return ctx.In.Specs[idx].Addr, &ctx.In.Specs[idx], nil
	case ucode.MemReadPointer:
		if e.curSpec >= 0 && ctx.In != nil && e.curSpec < len(ctx.In.Specs) {
			return ctx.In.Specs[e.curSpec].PtrAddr, nil, nil
		}
		return ctx.ScalarVA, nil, nil
	case ucode.MemReadStack:
		return e.pop(), nil, nil
	case ucode.MemWriteStack:
		return e.push(), nil, nil
	case ucode.MemReadString:
		va := ctx.StrSrc
		ctx.StrSrc += 4
		return va, nil, nil
	case ucode.MemWriteString:
		va := ctx.StrDst
		ctx.StrDst += 4
		return va, nil, nil
	case ucode.MemReadScalar, ucode.MemWriteScalar:
		va := ctx.ScalarVA
		ctx.ScalarVA += 4
		return va, nil, nil
	case ucode.MemReadPTE:
		// Resolved by the caller (physical).
		return 0, nil, nil
	}
	// An unhandled memory function is a control-store authoring bug.
	// It used to panic straight through the public Run API; it is now a
	// (non-transient) machine-check abort so a supervisor can report it
	// as a typed error instead of crashing the process.
	return 0, nil, e.machineCheck(faults.CodeMicrocodeBug, "ebox.memVA", 0,
		fmt.Errorf("unhandled mem func %v", f))
}

// machineCheck takes a machine-check abort: one abort cycle (the same
// control-store location every microtrap passes through), then the
// typed fault carrying the micro-PC, cycle, and site. All fault paths —
// injected and organic — report through here.
func (e *EBOX) machineCheck(code faults.Code, site string, va uint32, detail error) *faults.MachineCheck {
	e.tick(e.ROM.Abort, false, false)
	// The recorder's last word is the faulting micro-PC itself (after
	// the abort cycle above), so a flight snapshot always ends at the
	// same address the typed fault reports.
	if e.FR != nil {
		e.FR.Record(e.Now, e.upc, false)
	}
	return &faults.MachineCheck{
		Code:  code,
		UPC:   e.upc,
		Cycle: e.Now,
		Site:  site,
		VA:    va,
		Err:   detail,
	}
}

// InjectMachineCheck is the machine's entry for a plan-scheduled
// spontaneous machine check (routed through the same abort path).
func (e *EBOX) InjectMachineCheck(site string) *faults.MachineCheck {
	return e.machineCheck(faults.CodeInjectedAbort, site, 0, nil)
}

// doMem performs the memory function of the current microinstruction,
// ticking its cycles. It returns ok=false when a TB-miss microtrap was
// taken and the microinstruction must be retried. trapBase is nonzero
// when already inside a trap-service flow.
func (e *EBOX) doMem(mi *ucode.MicroInst, trapBase uint32) (bool, error) {
	// PTE reads are physical: the TB-miss flow computes the PTE address
	// from the faulting VA and bypasses translation.
	if mi.Mem == ucode.MemReadPTE {
		stall := e.Mem.PTERead(e.Mem.PTEAddr(trapBase), e.Now)
		e.tick(e.upc, false, true)
		for i := 0; i < stall; i++ {
			e.tick(e.upc, true, true)
		}
		if e.CheckFaults {
			if ppa, bad := e.Mem.TakeParity(); bad {
				return false, e.machineCheck(faults.CodeMemParity,
					"ebox.doMem pte", ppa, nil)
			}
		}
		return true, nil
	}

	va, spec, err := e.memVA(mi.Mem, trapBase)
	if err != nil {
		return false, err
	}
	pa, hit := e.Mem.Translate(va)
	if !hit {
		e.Mem.NoteTBMiss(false)
		if e.Probe != nil {
			e.Probe.TBMiss(e.Now, false, va)
		}
		if err := e.trap(e.ROM.TBMiss, va); err != nil {
			return false, err
		}
		e.Mem.InsertTB(va)
		// The stack/string/scalar cursors may have moved; undo the side
		// effects so the retry recomputes them.
		e.undoCursor(mi.Mem, va)
		return false, nil
	}

	if mi.Mem.IsRead() {
		stall := e.Mem.DRead(pa, e.Now)
		e.tick(e.upc, false, true)
		for i := 0; i < stall; i++ {
			e.tick(e.upc, true, true)
		}
		if e.CheckFaults {
			if ppa, bad := e.Mem.TakeParity(); bad {
				return false, e.machineCheck(faults.CodeMemParity,
					"ebox.doMem read", ppa, nil)
			}
		}
	} else {
		stall := e.Mem.DWrite(pa, e.Now)
		for i := 0; i < stall; i++ {
			e.tick(e.upc, true, true)
		}
		e.tick(e.upc, false, true)
	}

	// Unaligned operands need a second physical reference, performed by
	// the alignment microcode (Mem Mgmt region). The alignment flow
	// resolves its own references with a nonzero trapBase (memVA then
	// returns spec=nil), so it cannot normally re-enter this branch;
	// inAlign closes the degenerate va==0 case.
	if spec != nil && spec.Unaligned && trapBase == 0 && !e.inAlign {
		e.Mem.NoteUnaligned()
		entry := e.ROM.UnalignedRead
		if mi.Mem.IsWrite() {
			entry = e.ROM.UnalignedWrite
		}
		e.inAlign = true
		err := e.trap(entry, va)
		e.inAlign = false
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// undoCursor reverses the context side effect of an address resolution
// whose reference trapped before executing.
func (e *EBOX) undoCursor(f ucode.MemFunc, va uint32) {
	switch f {
	case ucode.MemReadStack:
		e.SP = va
	case ucode.MemWriteStack:
		e.SP = va + 4
		if e.SP > e.StackHi {
			e.SP = e.StackHi
		}
	case ucode.MemReadString:
		e.ctx.StrSrc -= 4
	case ucode.MemWriteString:
		e.ctx.StrDst -= 4
	case ucode.MemReadScalar, ucode.MemWriteScalar:
		e.ctx.ScalarVA -= 4
	}
}

// trap runs a microtrap: one abort cycle, then the service flow until its
// TrapRet. trapVA is the faulting virtual address.
func (e *EBOX) trap(entry uint16, trapVA uint32) error {
	e.tick(e.ROM.Abort, false, false)
	savedUPC := e.upc
	e.upc = entry
	for steps := 0; ; steps++ {
		if steps > 10_000 {
			return fmt.Errorf("trap flow runaway at uPC %#o", e.upc)
		}
		mi := e.ROM.Image.At(e.upc)
		if mi.Mem != ucode.MemNone {
			ok, err := e.doMem(mi, trapVA)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		} else {
			e.tick(e.upc, false, false)
		}
		switch mi.Seq {
		case ucode.SeqNext:
			e.upc++
		case ucode.SeqJump:
			e.upc = mi.Target
		case ucode.SeqTrapRet:
			e.upc = savedUPC
			return nil
		default:
			return fmt.Errorf("illegal seq %v in trap flow at %#o", mi.Seq, e.upc)
		}
	}
}

// serviceITBMiss runs the TB-miss flow for a pending I-stream miss.
func (e *EBOX) serviceITBMiss() error {
	_, va := e.IB.ITBMiss()
	if err := e.trap(e.ROM.TBMiss, va); err != nil {
		return err
	}
	e.Mem.InsertTB(va)
	e.IB.ClearITBMiss()
	return nil
}
