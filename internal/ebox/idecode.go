package ebox

import (
	"fmt"

	"vax780/internal/faults"
	"vax780/internal/ibox"
	"vax780/internal/ucode"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// seq resolves the sequencer function of the just-executed
// microinstruction, performing any I-stream request it carries. It
// returns the next micro-PC, or done=true when the instruction completed.
func (e *EBOX) seq(mi *ucode.MicroInst) (next uint16, done bool, err error) {
	// I-stream side effects that do not determine sequencing.
	if mi.IB == ucode.IBRedirect {
		e.IB.Redirect(e.ctx.Target)
		e.redirected = true
	}

	switch mi.Seq {
	case ucode.SeqNext:
		return e.upc + 1, false, nil

	case ucode.SeqJump:
		return mi.Target, false, nil

	case ucode.SeqLoop:
		e.loop--
		if e.loop > 0 {
			return mi.Target, false, nil
		}
		return e.upc + 1, false, nil

	case ucode.SeqEndInstr:
		return 0, true, nil

	case ucode.SeqStore:
		if d := e.ctx.DstSpec; d >= 0 {
			e.curSpec = d
			if d == 0 {
				return e.ROM.RStore[0], false, nil
			}
			return e.ROM.RStore[1], false, nil
		}
		return 0, true, nil

	case ucode.SeqCondTaken:
		if e.ctx.In == nil {
			return 0, false, fmt.Errorf("conditional outside instruction at uPC %#o", e.upc)
		}
		if e.ctx.In.Taken {
			// Taken: decode the branch displacement and run the B-DISP
			// micro-subroutine, returning to the take path.
			next, err := e.decodeBranch()
			if err != nil {
				return 0, false, err
			}
			e.uret = mi.Target
			return next, false, nil
		}
		// Untaken: consume the displacement bytes in this same cycle and
		// end the instruction.
		if err := e.skipBranch(); err != nil {
			return 0, false, err
		}
		return 0, true, nil

	case ucode.SeqURet:
		return e.uret, false, nil

	case ucode.SeqDispatch:
		switch mi.IB {
		case ucode.IBDecodeInstr:
			next, err := e.dispatchInstr()
			return next, false, err
		case ucode.IBDecodeSpec:
			next, err := e.dispatchNext()
			return next, false, err
		case ucode.IBDecodeBranch:
			// Stand-alone branch decode (always-taken flows).
			next, err := e.decodeBranch()
			if err != nil {
				return 0, false, err
			}
			e.uret = e.upc + 1
			return next, false, nil
		case ucode.IBNone:
			// Indexed-specifier base dispatch.
			return e.pendBase, false, nil
		}
		return 0, false, fmt.Errorf("dispatch without IB function at uPC %#o", e.upc)
	}
	return 0, false, fmt.Errorf("unhandled seq %v at uPC %#o", mi.Seq, e.upc)
}

// waitIB stalls at the given IB-stall wait location until the IB holds at
// least need bytes, servicing any pending I-stream TB miss. Each waited
// cycle is an execution of the stall microinstruction — the paper's IB
// stall metric.
func (e *EBOX) waitIB(stallLoc uint16, need int) error {
	if need > len(e.IB.Bytes()) {
		for waited := 0; len(e.IB.Bytes()) < need; waited++ {
			if waited > 10_000 {
				return fmt.Errorf("IB starvation waiting for %d bytes at VA %#x", need, e.IB.BufVA())
			}
			if miss, _ := e.IB.ITBMiss(); miss {
				if err := e.serviceITBMiss(); err != nil {
					return err
				}
				continue
			}
			e.tick(stallLoc, false, false)
		}
	}
	return nil
}

// dispatchInstr performs the IRD dispatch: consume the opcode byte and
// choose the first specifier flow or the execute flow.
func (e *EBOX) dispatchInstr() (uint16, error) {
	if err := e.waitIB(e.ROM.IBStallInstr, 1); err != nil {
		return 0, err
	}
	op, err := vax.DecodeOpcode(e.IB.Bytes())
	if err != nil {
		return 0, fmt.Errorf("opcode decode at VA %#x: %w", e.IB.BufVA(), err)
	}
	if e.Strict && op != e.ctx.In.Op {
		return 0, fmt.Errorf("decode mismatch: IB has %s, trace has %s at PC %#x",
			op, e.ctx.In.Op, e.ctx.In.PC)
	}
	if err := e.IB.Consume(1); err != nil {
		return 0, e.machineCheck(faults.CodeIBOverrun, "ebox.dispatchInstr",
			e.IB.BufVA(), err)
	}
	if len(op.Info().Specs) == 0 {
		return e.execEntry(op)
	}
	return e.dispatchSpec()
}

// dispatchNext handles the end-of-specifier-flow dispatch: the next
// specifier, or the execute flow once all specifiers are processed.
func (e *EBOX) dispatchNext() (uint16, error) {
	if e.ctx.In == nil {
		return 0, fmt.Errorf("specifier dispatch outside instruction")
	}
	if e.specIdx < len(e.ctx.In.Specs) {
		return e.dispatchSpec()
	}
	return e.execEntry(e.ctx.In.Op)
}

// dispatchSpec decodes specifier number specIdx from the IB and returns
// its flow entry.
func (e *EBOX) dispatchSpec() (uint16, error) {
	in := e.ctx.In
	info := in.Info()
	stallLoc := e.ROM.IBStallSpecN
	if e.specIdx == 0 {
		stallLoc = e.ROM.IBStallSpec1
	}

	var ds vax.DecodedSpec
	for {
		var err error
		ds, err = vax.DecodeSpec(e.IB.Bytes(), info.Specs[e.specIdx].Type)
		if err == nil {
			break
		}
		if err != vax.ErrShort {
			return 0, fmt.Errorf("specifier decode: %w", err)
		}
		if len(e.IB.Bytes()) >= ibox.Capacity {
			return 0, fmt.Errorf("specifier larger than IB at PC %#x", in.PC)
		}
		if err := e.waitIB(stallLoc, len(e.IB.Bytes())+1); err != nil {
			return 0, err
		}
	}

	if e.Strict {
		want := in.Specs[e.specIdx]
		if ds.Mode != want.Mode || ds.Index != want.Index {
			return 0, fmt.Errorf("specifier %d decode mismatch at PC %#x: decoded %v[idx %d], trace %v[idx %d]",
				e.specIdx, in.PC, ds.Mode, ds.Index, want.Mode, want.Index)
		}
	}

	if err := e.IB.Consume(ds.Len); err != nil {
		return 0, e.machineCheck(faults.CodeIBOverrun, "ebox.dispatchSpec",
			e.IB.BufVA(), err)
	}
	e.curSpec = e.specIdx
	pos := 1
	if e.specIdx == 0 {
		pos = 0
	}
	e.specIdx++

	variant := urom.VariantFor(info.Specs[e.curSpec].Access)
	if ds.Index >= 0 {
		// Indexed: one preamble cycle in this position's region, then the
		// shared SPEC2-6 base flow (the paper's attribution artifact).
		e.pendBase = e.ROM.SpecEntry[1][ds.Mode][variant]
		return e.ROM.IdxEntry[pos], nil
	}
	return e.ROM.SpecEntry[pos][ds.Mode][variant], nil
}

// execEntry selects the execute flow entry for op, applying the
// field-base memory variant and the literal/register operand
// optimization. An opcode the control store holds no execute flow for
// is a machine-check abort (address 0 is a valid control-store
// location, so presence is tracked explicitly in HasExecFlow).
func (e *EBOX) execEntry(op vax.Opcode) (uint16, error) {
	if !e.ROM.HasExecFlow[op] {
		return 0, e.machineCheck(faults.CodeMissingFlow, "ebox.execEntry",
			e.ctx.In.PC, fmt.Errorf("no execute flow for %s", op))
	}
	in := e.ctx.In

	if in.SIRR && op == vax.MTPR {
		return e.ROM.ExecEntrySIRR, nil
	}
	if e.ROM.ExecEntryMem[op] != 0 && e.ctx.FieldSpec >= 0 &&
		in.Specs[e.ctx.FieldSpec].Mode.IsMemory() {
		return e.ROM.ExecEntryMem[op], nil
	}
	if e.ROM.ExecEntryOpt[op] != 0 && len(in.Specs) > 0 {
		last := in.Specs[len(in.Specs)-1].Mode
		if last == vax.ModeRegister || last == vax.ModeLiteral {
			return e.ROM.ExecEntryOpt[op], nil
		}
	}
	return e.ROM.ExecEntry[op], nil
}

// decodeBranch consumes the branch displacement from the IB and returns
// the B-DISP flow entry.
func (e *EBOX) decodeBranch() (uint16, error) {
	size := e.ctx.In.Info().BranchDispSize
	if size == 0 {
		return 0, fmt.Errorf("%s has no branch displacement", e.ctx.In.Op)
	}
	if err := e.waitIB(e.ROM.IBStallBDisp, size); err != nil {
		return 0, err
	}
	if e.Strict {
		d, err := vax.DecodeBranchDisp(e.IB.Bytes(), size)
		if err != nil {
			return 0, err
		}
		if d != e.ctx.In.BranchDisp {
			return 0, fmt.Errorf("branch displacement mismatch at PC %#x: IB %d, trace %d",
				e.ctx.In.PC, d, e.ctx.In.BranchDisp)
		}
	}
	if err := e.IB.Consume(size); err != nil {
		return 0, e.machineCheck(faults.CodeIBOverrun, "ebox.decodeBranch",
			e.IB.BufVA(), err)
	}
	return e.ROM.BDisp, nil
}

// skipBranch consumes the displacement bytes of an untaken branch within
// the current cycle (no target computation, §5).
func (e *EBOX) skipBranch() error {
	size := e.ctx.In.Info().BranchDispSize
	if size == 0 {
		return nil
	}
	if err := e.waitIB(e.ROM.IBStallBDisp, size); err != nil {
		return err
	}
	if err := e.IB.Consume(size); err != nil {
		return e.machineCheck(faults.CodeIBOverrun, "ebox.skipBranch",
			e.IB.BufVA(), err)
	}
	return nil
}
