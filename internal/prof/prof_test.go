package prof

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vax780/internal/analysis"
	"vax780/internal/paper"
	"vax780/internal/ulint"
	"vax780/internal/upc"
	"vax780/internal/urom"
)

func testIndex(t testing.TB) (*urom.ROM, *ulint.FlowIndex) {
	t.Helper()
	rom := urom.Build()
	return rom, ulint.NewFlowIndex(rom)
}

// synthetic histogram: every owned word of the first few flows ticked,
// restricted to buckets the EBOX can physically pulse.
func synthHist(ix *ulint.FlowIndex) *upc.Histogram {
	rom := urom.Build()
	h := &upc.Histogram{}
	for i, f := range ix.Flows() {
		if i >= 8 {
			break
		}
		for _, w := range f.Words {
			mi := rom.Image.At(w)
			if analysis.BucketTickable(mi, false) {
				h.Normal[w] = uint64(100 * (i + 1))
			}
			if analysis.BucketTickable(mi, true) {
				h.Stalled[w] = uint64(10 * (i + 1))
			}
		}
	}
	return h
}

func TestExactAttributesAllCycles(t *testing.T) {
	rom, ix := testIndex(t)
	h := synthHist(ix)
	p := Exact(rom, ix, h, nil)
	if p.Engine != "exact" {
		t.Fatalf("engine = %q", p.Engine)
	}
	if p.TotalCycles != h.TotalCycles() {
		t.Fatalf("total %d, histogram holds %d", p.TotalCycles, h.TotalCycles())
	}
	var flowCycles uint64
	var shares float64
	for _, f := range p.Flows {
		flowCycles += f.Cycles
		shares += f.Share
	}
	if flowCycles+p.Unattributed != p.TotalCycles {
		t.Fatalf("flows %d + unattributed %d != total %d",
			flowCycles, p.Unattributed, p.TotalCycles)
	}
	if p.Unattributed > 0 {
		t.Fatalf("synthetic histogram over owned words left %d unattributed", p.Unattributed)
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Fatalf("shares sum to %v", shares)
	}
	// Hottest-first order.
	for i := 1; i < len(p.Flows); i++ {
		if p.Flows[i].Cycles > p.Flows[i-1].Cycles {
			t.Fatal("flows not sorted hottest first")
		}
	}
}

func TestExactPricesWithCalibration(t *testing.T) {
	rom, ix := testIndex(t)
	h := synthHist(ix)
	cal := Uniform(60)
	p := Exact(rom, ix, h, cal)
	want := float64(60) * float64(p.TotalCycles)
	// Every class priced equally: total ns = cycles × 60, modulo
	// unattributable buckets (none on a clean store with this input).
	if math.Abs(p.TotalNs-want)/want > 0.01 {
		t.Fatalf("uniform pricing: got %v ns, want ~%v", p.TotalNs, want)
	}
}

func TestSampledScalesByStride(t *testing.T) {
	rom, ix := testIndex(t)
	h := synthHist(ix) // interpreted as sample counts
	p := Sampled(rom, ix, h, 64, 1e9)
	if p.Engine != "sampling" || p.Stride != 64 {
		t.Fatalf("engine/stride = %q/%d", p.Engine, p.Stride)
	}
	if p.Samples != h.TotalCycles() {
		t.Fatalf("samples = %d, want %d", p.Samples, h.TotalCycles())
	}
	if p.TotalCycles != p.Samples*64 {
		t.Fatalf("total cycles %d != samples×stride %d", p.TotalCycles, p.Samples*64)
	}
	if math.Abs(p.TotalNs-1e9) > 1e-3*1e9 {
		t.Fatalf("sampled total ns %v should equal wall ns 1e9", p.TotalNs)
	}
}

func TestSolveRecoversKnownCosts(t *testing.T) {
	// Synthesize probes from a known cost vector with distinct class
	// mixes; Solve must recover it closely.
	truth := [paper.NumT8Cols]float64{50, 80, 30, 90, 35, 20}
	mixes := [][paper.NumT8Cols]uint64{
		{900_000, 50_000, 30_000, 20_000, 10_000, 100_000},
		{500_000, 200_000, 150_000, 60_000, 40_000, 50_000},
		{700_000, 20_000, 10_000, 150_000, 120_000, 30_000},
		{300_000, 100_000, 300_000, 30_000, 20_000, 250_000},
		{850_000, 60_000, 20_000, 25_000, 15_000, 200_000},
		{400_000, 300_000, 100_000, 100_000, 90_000, 10_000},
		{600_000, 80_000, 250_000, 40_000, 180_000, 60_000},
	}
	var probes []Probe
	for _, m := range mixes {
		var wall float64
		for c, n := range m {
			wall += float64(n) * truth[c]
		}
		probes = append(probes, Probe{ClassCycles: m, WallNs: wall})
	}
	cal, err := Solve(probes)
	if err != nil {
		t.Fatal(err)
	}
	for c := range truth {
		if rel := math.Abs(cal.NsPerClass[c]-truth[c]) / truth[c]; rel > 0.05 {
			t.Fatalf("class %d: solved %v, truth %v (rel err %.3f)",
				c, cal.NsPerClass[c], truth[c], rel)
		}
	}
	// Pricing a fresh mix with the solved calibration reconstructs its
	// wall time.
	test := [paper.NumT8Cols]uint64{640_000, 90_000, 70_000, 45_000, 30_000, 120_000}
	var wall float64
	for c, n := range test {
		wall += float64(n) * truth[c]
	}
	if got := cal.Price(test); math.Abs(got-wall)/wall > 0.02 {
		t.Fatalf("priced %v, want %v", got, wall)
	}
}

func TestSolveDegenerateFallsBackToUniform(t *testing.T) {
	// One probe cannot separate six classes: the ridge pull must keep
	// the solution near the uniform rate rather than exploding.
	probe := Probe{
		ClassCycles: [paper.NumT8Cols]uint64{500_000, 100_000, 100_000, 100_000, 100_000, 100_000},
		WallNs:      60e6,
	}
	cal, err := Solve([]Probe{probe})
	if err != nil {
		t.Fatal(err)
	}
	u := 60e6 / 1_000_000.0
	for c, ns := range cal.NsPerClass {
		if ns < 0 || ns > 4*u {
			t.Fatalf("class %d cost %v wild against uniform %v", c, ns, u)
		}
	}
}

func TestSolveRejectsEmpty(t *testing.T) {
	if _, err := Solve(nil); err == nil {
		t.Fatal("empty probe set must error")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	rom, ix := testIndex(t)
	p := Exact(rom, ix, synthHist(ix), Uniform(55))
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalCycles != p.TotalCycles || len(q.Flows) != len(p.Flows) {
		t.Fatal("round trip lost data")
	}
}

func TestTableRenders(t *testing.T) {
	rom, ix := testIndex(t)
	p := Exact(rom, ix, synthHist(ix), Uniform(55))
	tbl := p.Table(5)
	if !strings.Contains(tbl, "hot flows") || !strings.Contains(tbl, p.Flows[0].Name) {
		t.Fatalf("table missing content:\n%s", tbl)
	}
}

func TestDiffProfiles(t *testing.T) {
	rom, ix := testIndex(t)
	h1 := synthHist(ix)
	p1 := Exact(rom, ix, h1, nil)
	// Double the hottest flow's counts in the second profile.
	h2 := synthHist(ix)
	hot := p1.Flows[0]
	for fi, f := range ix.Flows() {
		if f.Name != hot.Name {
			continue
		}
		_ = fi
		for _, w := range f.Words {
			h2.Normal[w] *= 2
			h2.Stalled[w] *= 2
		}
	}
	p2 := Exact(rom, ix, h2, nil)
	deltas := DiffProfiles(p1, p2)
	if len(deltas) == 0 || deltas[0].Name != hot.Name || deltas[0].ShareDelta <= 0 {
		t.Fatalf("hottest mover should be %s gaining share; got %+v", hot.Name, deltas[0])
	}
	out := RenderDiff(deltas, 10, 0)
	if !strings.Contains(out, hot.Name) {
		t.Fatalf("render missing mover:\n%s", out)
	}
}

func TestTargetsRankFusibleSegments(t *testing.T) {
	rom, ix := testIndex(t)
	h := synthHist(ix)
	ts := Targets(rom, ix, h, Uniform(60))
	if len(ts) == 0 {
		t.Skip("synthetic histogram hit no fusible segments")
	}
	for i, tg := range ts {
		if tg.Len < 2 {
			t.Fatalf("target %d has %d words; fusible needs >= 2", i, tg.Len)
		}
		if tg.Fusibility <= 0 || tg.Fusibility >= 1 {
			t.Fatalf("fusibility %v out of (0,1)", tg.Fusibility)
		}
		if i > 0 && ts[i].Score > ts[i-1].Score {
			t.Fatal("targets not sorted by score")
		}
	}
	if out := RenderTargets(ts, 5); !strings.Contains(out, "JIT targets") {
		t.Fatalf("render: %s", out)
	}
}

func TestSpansExport(t *testing.T) {
	rom, ix := testIndex(t)
	p := Sampled(rom, ix, synthHist(ix), 64, 5e8)
	root := NewSpan("run", "composite", 0, 1e9)
	ws := root.Add(NewSpan("workload", "TIMESHARING-A", 0, 5e8))
	FlowSpans(ws, p, 4)
	if len(ws.Children) == 0 {
		t.Fatal("no flow spans synthesized")
	}
	var total float64
	for _, c := range ws.Children {
		if c.Kind != "flow" {
			t.Fatalf("child kind %q", c.Kind)
		}
		total += c.DurNs
	}
	if math.Abs(total-ws.DurNs)/ws.DurNs > 1e-6 {
		t.Fatalf("flow spans cover %v of %v ns", total, ws.DurNs)
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, root); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 2+len(ws.Children) {
		t.Fatalf("chrome trace has %d events", len(parsed.TraceEvents))
	}

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, root); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jsonl)
	rows := 0
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("jsonl row %d invalid: %v", rows, err)
		}
		if _, ok := row["path"]; !ok {
			t.Fatalf("row %d missing path", rows)
		}
		rows++
	}
	if rows != 2+len(ws.Children) {
		t.Fatalf("jsonl rows = %d", rows)
	}
}

func TestClassTotalsMatchesProfile(t *testing.T) {
	rom, ix := testIndex(t)
	h := synthHist(ix)
	totals := ClassTotals(rom, h)
	p := Exact(rom, ix, h, nil)
	var fromFlows [paper.NumT8Cols]uint64
	for _, f := range p.Flows {
		for c, n := range f.ClassCycles {
			fromFlows[c] += n
		}
	}
	if totals != fromFlows {
		t.Fatalf("class totals %v != per-flow sums %v", totals, fromFlows)
	}
}
