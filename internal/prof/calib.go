package prof

// Calibration: the per-class host-cost model of the exact engine. The
// six Table 8 cycle classes are the priceable units — a compute cycle,
// a read, a read stall, … each costs the host a different number of
// nanoseconds to simulate — and a calibration assigns each its
// ns/cycle. Costs are solved from timing probes: runs with different
// class mixes (the five workloads weight strings, memory and stalls
// very differently), each contributing one equation
//
//	Σ_class cycles[class] · ns[class] ≈ measured wall ns
//
// solved as a ridge-regularized least-squares system pulled toward the
// uniform ns/cycle estimate, so a probe set too degenerate to separate
// two classes degrades gracefully to pricing them equally instead of
// producing wild negative costs. Probes should be timed interleaved
// (A/B/A/B/..., medians per probe) so host frequency drift cancels —
// the same discipline the CI tripwire uses.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"vax780/internal/analysis"
	"vax780/internal/paper"
	"vax780/internal/upc"
	"vax780/internal/urom"
)

// Calibration prices simulated cycles in host nanoseconds per class.
type Calibration struct {
	// NsPerClass is the host cost, in nanoseconds, of simulating one
	// cycle of each Table 8 class (indexed by paper.Table8Col).
	NsPerClass [paper.NumT8Cols]float64 `json:"ns_per_class"`

	// Host fingerprints where the calibration was measured (GOOS/GOARCH
	// or free text); a profile priced under a foreign calibration is
	// still proportional, just not reconcilable to local wall time.
	Host string `json:"host,omitempty"`

	// Probes counts the timing probes the solve consumed (0 for
	// synthetic calibrations such as Uniform).
	Probes int `json:"probes,omitempty"`
}

// Uniform builds the degenerate calibration pricing every class at the
// same ns/cycle — the zeroth-order model (total wall / total cycles)
// and the regularization anchor of Solve.
func Uniform(nsPerCycle float64) *Calibration {
	c := &Calibration{}
	for i := range c.NsPerClass {
		c.NsPerClass[i] = nsPerCycle
	}
	return c
}

// Price returns the host nanoseconds for a class-cycle vector.
func (c *Calibration) Price(classCycles [paper.NumT8Cols]uint64) float64 {
	var ns float64
	for i, n := range classCycles {
		ns += float64(n) * c.NsPerClass[i]
	}
	return ns
}

// WriteJSON marshals the calibration, indented, trailing newline.
func (c *Calibration) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadCalibration unmarshals a calibration written by WriteJSON.
func ReadCalibration(r io.Reader) (*Calibration, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("prof: parsing calibration: %w", err)
	}
	return &c, nil
}

// Probe is one timing observation: a run's class-cycle vector and its
// measured wall time.
type Probe struct {
	Label       string
	ClassCycles [paper.NumT8Cols]uint64
	WallNs      float64
}

// ClassTotals sums a histogram's cycles per Table 8 class — the
// class-cycle vector of a probe. Cycles outside the decomposition
// (possible only on an unclean control store) are dropped.
func ClassTotals(rom *urom.ROM, h *upc.Histogram) [paper.NumT8Cols]uint64 {
	var out [paper.NumT8Cols]uint64
	limit := rom.Image.Size()
	if limit > upc.Buckets {
		limit = upc.Buckets
	}
	for addr := 0; addr < limit; addr++ {
		normal, stalled := h.At(uint16(addr))
		if normal == 0 && stalled == 0 {
			continue
		}
		mi := rom.Image.At(uint16(addr))
		if normal > 0 {
			if _, col, ok := analysis.BucketCell(mi, false); ok {
				out[col] += normal
			}
		}
		if stalled > 0 {
			if _, col, ok := analysis.BucketCell(mi, true); ok {
				out[col] += stalled
			}
		}
	}
	return out
}

// Solve fits per-class costs to the probes by ridge-regularized least
// squares: minimize Σ_i (Σ_c n_ic·x_c − w_i)² + λ·Σ_c (x_c − u)²,
// where u is the uniform ns/cycle estimate over all probes. λ scales
// with the system so the pull toward uniform only decides directions
// the probes themselves cannot. Negative class costs (noise letting
// one collinear column compensate another) are handled by the
// active-set method: the most negative class is pinned to zero and
// the reduced system re-solved, so the remaining costs re-absorb the
// removed column's contribution instead of the fit silently inflating
// — clamping after the fact would overprice every probe that spends
// cycles in the surviving classes.
func Solve(probes []Probe) (*Calibration, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("prof: no calibration probes")
	}
	const k = int(paper.NumT8Cols)

	var totalCycles, totalNs float64
	for _, p := range probes {
		for _, n := range p.ClassCycles {
			totalCycles += float64(n)
		}
		totalNs += p.WallNs
	}
	if totalCycles == 0 || totalNs <= 0 {
		return nil, fmt.Errorf("prof: calibration probes carry no cycles or no time")
	}
	u := totalNs / totalCycles

	// Normal equations A·x = b with A = XᵀX + λI, b = Xᵀy + λu.
	var A [k][k]float64
	var b [k]float64
	for _, p := range probes {
		for i := 0; i < k; i++ {
			ni := float64(p.ClassCycles[i])
			if ni == 0 {
				continue
			}
			b[i] += ni * p.WallNs
			for j := 0; j < k; j++ {
				A[i][j] += ni * float64(p.ClassCycles[j])
			}
		}
	}
	var trace float64
	for i := 0; i < k; i++ {
		trace += A[i][i]
	}
	lambda := 1e-4 * trace / float64(k)
	if lambda <= 0 {
		lambda = 1
	}
	for i := 0; i < k; i++ {
		A[i][i] += lambda
		b[i] += lambda * u
	}

	// Active-set non-negative solve: pin the most negative class to
	// zero and re-solve until every remaining cost is non-negative. A
	// pinned class keeps x_i = 0 by turning its row and column into the
	// identity; at most k-1 eliminations terminate the loop.
	active := [k]bool{}
	for i := range active {
		active[i] = true
	}
	var x [k]float64
	for {
		Ar, br := A, b
		for i := 0; i < k; i++ {
			if active[i] {
				continue
			}
			for j := 0; j < k; j++ {
				Ar[i][j], Ar[j][i] = 0, 0
			}
			Ar[i][i] = 1
			br[i] = 0
		}
		var err error
		x, err = solveLinear(Ar, br)
		if err != nil {
			return nil, err
		}
		worst, worstVal := -1, 0.0
		for i := 0; i < k; i++ {
			if active[i] && (x[i] < worstVal || math.IsNaN(x[i])) {
				worst, worstVal = i, x[i]
			}
		}
		if worst < 0 {
			break
		}
		active[worst] = false
	}

	// Rescale so the fitted probe total equals the measured total: the
	// fit decides the classes' relative costs, the aggregate decides
	// the absolute scale. Host noise that defeats the per-class
	// decomposition then degrades toward the uniform estimate instead
	// of skewing the calibration's overall price level — which is what
	// keeps a profile's TotalNs reconciling with measured wall time.
	var fitted float64
	for _, p := range probes {
		for c := 0; c < k; c++ {
			fitted += float64(p.ClassCycles[c]) * x[c]
		}
	}
	if fitted > 0 {
		s := totalNs / fitted
		for i := 0; i < k; i++ {
			x[i] *= s
		}
	}

	cal := &Calibration{Probes: len(probes)}
	for i := 0; i < k; i++ {
		if x[i] < 0 || math.IsNaN(x[i]) {
			x[i] = 0
		}
		cal.NsPerClass[i] = x[i]
	}
	return cal, nil
}

// solveLinear solves the k×k system by Gaussian elimination with
// partial pivoting; the ridge term guarantees it is nonsingular.
func solveLinear(A [paper.NumT8Cols][paper.NumT8Cols]float64, b [paper.NumT8Cols]float64) ([paper.NumT8Cols]float64, error) {
	const k = int(paper.NumT8Cols)
	var x [paper.NumT8Cols]float64
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return x, fmt.Errorf("prof: singular calibration system at class %d", col)
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < k; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := k - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < k; c++ {
			sum -= A[r][c] * x[c]
		}
		x[r] = sum / A[r][r]
	}
	return x, nil
}
