package prof

// The span model: a run's wall time as a tree — sweep → run →
// workload → flow — exported as Chrome trace-event JSON (load in
// Perfetto / chrome://tracing) and as JSONL rows alongside the runlog
// ledger. Sweep, run and workload spans are measured (their start/end
// wall offsets come from the host clock); flow spans are synthesized by
// partitioning a workload's measured duration proportionally to its
// sampled flow shares — the profiler's statement of "of this
// workload's 1.2 s, the string-move flow cost 300 ms".

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span is one node of the wall-time tree. Times are nanoseconds from
// the profile clock's origin.
type Span struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"` // "sweep", "run", "workload", "flow"
	StartNs  float64 `json:"start_ns"`
	DurNs    float64 `json:"dur_ns"`
	Children []*Span `json:"children,omitempty"`
}

// NewSpan builds a span node.
func NewSpan(kind, name string, startNs, durNs float64) *Span {
	return &Span{Kind: kind, Name: name, StartNs: startNs, DurNs: durNs}
}

// Add appends a child span and returns it.
func (s *Span) Add(child *Span) *Span {
	s.Children = append(s.Children, child)
	return child
}

// FlowSpans synthesizes a workload span's flow children from a profile:
// the span's duration is partitioned proportionally to the profile's
// flow shares, hottest first, capped at maxFlows with the remainder
// rolled into "(other flows)". The synthetic nature is the point: flow
// residency interleaves at cycle scale, far below what wall-clock spans
// can resolve, so the partition shows magnitude, not order.
func FlowSpans(ws *Span, p *Profile, maxFlows int) {
	if p == nil || p.TotalCycles == 0 || ws.DurNs <= 0 {
		return
	}
	if maxFlows <= 0 {
		maxFlows = 10
	}
	at := ws.StartNs
	var covered float64
	for i, f := range p.Top(maxFlows) {
		_ = i
		dur := f.Share * ws.DurNs
		ws.Add(NewSpan("flow", f.Name, at, dur))
		at += dur
		covered += f.Share
	}
	if rest := 1 - covered; rest > 1e-9 {
		ws.Add(NewSpan("flow", "(other flows)", at, rest*ws.DurNs))
	}
}

// chromeEvent is one Chrome trace-event row ("X" = complete event;
// timestamps and durations in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace writes the span tree as Chrome trace-event JSON.
// Depth-1 spans (a run's workloads, a sweep's runs) each get their own
// track so concurrently executing spans render side by side; deeper
// spans inherit their parent's track.
func WriteChromeTrace(w io.Writer, root *Span) error {
	var events []chromeEvent
	var walk func(s *Span, tid int, depth int)
	walk = func(s *Span, tid int, depth int) {
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Kind, Ph: "X",
			Ts: s.StartNs / 1e3, Dur: s.DurNs / 1e3,
			Pid: 1, Tid: tid,
		})
		for i, c := range s.Children {
			ct := tid
			if depth == 0 {
				ct = i + 1
			}
			walk(c, ct, depth+1)
		}
	}
	walk(root, 0, 0)
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// spanRow is one JSONL row: the span plus its path from the root, so a
// flat reader (jq, the ledger tooling) needs no tree reconstruction.
type spanRow struct {
	Path    string  `json:"path"`
	Kind    string  `json:"kind"`
	StartNs float64 `json:"start_ns"`
	DurNs   float64 `json:"dur_ns"`
}

// WriteJSONL writes the span tree as one JSON object per line,
// depth-first, each row carrying its slash-joined path.
func WriteJSONL(w io.Writer, root *Span) error {
	enc := json.NewEncoder(w)
	var walk func(s *Span, prefix string) error
	walk = func(s *Span, prefix string) error {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		if err := enc.Encode(spanRow{Path: path, Kind: s.Kind, StartNs: s.StartNs, DurNs: s.DurNs}); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return fmt.Errorf("prof: writing spans: %w", err)
	}
	return nil
}
