// Package prof is the host-time attribution layer: it maps wall-clock
// nanoseconds spent simulating onto the simulator's micro-architectural
// structure — control-store flows, regions, and the Table 8 cycle
// classes — the same way the paper maps the 780's elapsed time onto its
// microcode with the UPC histogram board. Where the board answers
// "where do the *simulated* cycles go", this package answers "where
// does the *simulator's own* time go", which is the data the
// flow-fusion JIT needs to pick targets.
//
// Two engines share one report format:
//
//   - The exact engine (Exact) prices every histogram bucket: a
//     calibration assigns each Table 8 cycle class a host cost in
//     ns/cycle (solved from interleaved A/B timings of runs with
//     different class mixes, see Solve), and the run's composite bucket
//     histogram — which is bit-exact across -j — multiplies through it.
//     The result is deterministic: same histogram, same calibration,
//     same profile, byte for byte.
//
//   - The sampling engine (Sampled) prices what a upc.Sampler observed
//     live: every stride-th cycle's micro-PC, classified through the
//     same flow index and BucketCell map, scaled to the measured wall
//     time of the run. It costs one nil test per cycle when off and a
//     countdown decrement when on.
//
// Both classify through ulint's flow index, so profiling and the
// static analyzer cannot disagree about flow boundaries.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"vax780/internal/analysis"
	"vax780/internal/paper"
	"vax780/internal/ulint"
	"vax780/internal/upc"
	"vax780/internal/urom"
)

// FlowCost is one flow's attributed cost.
type FlowCost struct {
	Name  string `json:"name"`
	Entry uint16 `json:"entry"`

	// Cycles attributed to the flow: exact bucket counts (exact engine)
	// or samples × stride (sampling engine).
	Cycles uint64 `json:"cycles"`

	// ClassCycles splits Cycles over the six Table 8 cycle classes.
	ClassCycles [paper.NumT8Cols]uint64 `json:"class_cycles"`

	// Share is Cycles over the profile's total (including unattributed).
	Share float64 `json:"share"`

	// Ns estimates the host nanoseconds the flow cost: class cycles
	// priced by the calibration (exact) or the flow's share of the
	// measured wall time (sampling). Zero when neither was available.
	Ns float64 `json:"ns,omitempty"`
}

// Profile is the shared report format of both engines.
type Profile struct {
	// Engine is "exact" or "sampling".
	Engine string `json:"engine"`

	// TotalCycles counts every cycle the input histogram holds,
	// attributed or not.
	TotalCycles uint64 `json:"total_cycles"`

	// Unattributed counts cycles on words no flow owns.
	Unattributed uint64 `json:"unattributed,omitempty"`

	// Stride and Samples describe the sampling engine's input (zero for
	// the exact engine). TotalCycles is then Samples × Stride.
	Stride  int    `json:"stride,omitempty"`
	Samples uint64 `json:"samples,omitempty"`

	// WallNs is the measured wall time of the profiled run, when the
	// caller had one; TotalNs is the sum of attributed flow ns. For the
	// exact engine the two reconciling is the calibration's validity
	// check; for the sampling engine TotalNs is WallNs by construction.
	WallNs  float64 `json:"wall_ns,omitempty"`
	TotalNs float64 `json:"total_ns,omitempty"`

	// Flows holds every flow with attributed cycles, hottest first
	// (ties broken by entry address, so the order is deterministic).
	Flows []FlowCost `json:"flows"`
}

// Top returns the n hottest flows (all of them when n <= 0 or exceeds
// the count).
func (p *Profile) Top(n int) []FlowCost {
	if n <= 0 || n > len(p.Flows) {
		n = len(p.Flows)
	}
	return p.Flows[:n]
}

// WriteJSON marshals the profile, indented, with a trailing newline.
func (p *Profile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadProfile unmarshals a profile written by WriteJSON.
func ReadProfile(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("prof: parsing profile: %w", err)
	}
	return &p, nil
}

// Table renders the top-n hot-flow table.
func (p *Profile) Table(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hot flows (%s engine", p.Engine)
	if p.Engine == "sampling" {
		fmt.Fprintf(&b, ", %d samples × stride %d", p.Samples, p.Stride)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%4s  %-22s %6s  %12s %7s  %12s\n",
		"#", "flow", "entry", "cycles", "share", "est host ns")
	for i, f := range p.Top(n) {
		ns := "-"
		if f.Ns > 0 {
			ns = fmt.Sprintf("%12.0f", f.Ns)
		}
		fmt.Fprintf(&b, "%4d  %-22s %06o  %12d %6.2f%%  %12s\n",
			i+1, f.Name, f.Entry, f.Cycles, 100*f.Share, ns)
	}
	if p.Unattributed > 0 {
		fmt.Fprintf(&b, "      %-22s %6s  %12d %6.2f%%\n", "(unattributed)", "",
			p.Unattributed, 100*float64(p.Unattributed)/float64(p.TotalCycles))
	}
	if p.TotalNs > 0 {
		fmt.Fprintf(&b, "total attributed: %.3f ms", p.TotalNs/1e6)
		if p.WallNs > 0 {
			fmt.Fprintf(&b, "  measured wall: %.3f ms  (attributed/wall = %.1f%%)",
				p.WallNs/1e6, 100*p.TotalNs/p.WallNs)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// attribute is the shared classification walk of both engines: price
// every bucket of h, assign it to its owning flow and Table 8 class.
// Flows come out hottest first.
func attribute(rom *urom.ROM, ix *ulint.FlowIndex, h *upc.Histogram) *Profile {
	flows := ix.Flows()
	costs := make([]FlowCost, len(flows))
	for i, f := range flows {
		costs[i].Name = f.Name
		costs[i].Entry = f.Entry
	}
	p := &Profile{}
	limit := rom.Image.Size()
	if limit > upc.Buckets {
		limit = upc.Buckets
	}
	for addr := 0; addr < limit; addr++ {
		normal, stalled := h.At(uint16(addr))
		if normal == 0 && stalled == 0 {
			continue
		}
		p.TotalCycles += normal + stalled
		fi, owned := ix.FlowOf(uint16(addr))
		if !owned {
			p.Unattributed += normal + stalled
			continue
		}
		c := &costs[fi]
		c.Cycles += normal + stalled
		mi := rom.Image.At(uint16(addr))
		if n := normal; n > 0 {
			if _, col, ok := analysis.BucketCell(mi, false); ok {
				c.ClassCycles[col] += n
			}
		}
		if n := stalled; n > 0 {
			if _, col, ok := analysis.BucketCell(mi, true); ok {
				c.ClassCycles[col] += n
			}
		}
	}
	for _, c := range costs {
		if c.Cycles == 0 {
			continue
		}
		if p.TotalCycles > 0 {
			c.Share = float64(c.Cycles) / float64(p.TotalCycles)
		}
		p.Flows = append(p.Flows, c)
	}
	sort.Slice(p.Flows, func(i, j int) bool {
		if p.Flows[i].Cycles != p.Flows[j].Cycles {
			return p.Flows[i].Cycles > p.Flows[j].Cycles
		}
		return p.Flows[i].Entry < p.Flows[j].Entry
	})
	return p
}

// Exact runs the exact engine: attribute the run's bucket histogram to
// flows and price it with the calibration (nil: cycles and shares only).
// The input histogram is bit-exact across -j, the flow index and the
// calibration are fixed inputs, so the profile is deterministic.
func Exact(rom *urom.ROM, ix *ulint.FlowIndex, h *upc.Histogram, cal *Calibration) *Profile {
	p := attribute(rom, ix, h)
	p.Engine = "exact"
	if cal != nil {
		for i := range p.Flows {
			p.Flows[i].Ns = cal.Price(p.Flows[i].ClassCycles)
			p.TotalNs += p.Flows[i].Ns
		}
		// Unattributed cycles are priced at the calibration's average
		// rate so the total covers the whole run.
		if p.Unattributed > 0 && p.TotalCycles > p.Unattributed {
			attributed := p.TotalCycles - p.Unattributed
			p.TotalNs += float64(p.Unattributed) * p.TotalNs / float64(attributed)
		}
	}
	return p
}

// Sampled runs the sampling engine over a sampler's snapshot: each
// sample stands for stride cycles, and the measured wall time (when
// wallNs > 0) is distributed over flows by their sampled share.
func Sampled(rom *urom.ROM, ix *ulint.FlowIndex, snap *upc.Histogram, stride int, wallNs float64) *Profile {
	if stride <= 0 {
		stride = upc.DefaultSampleStride
	}
	p := attribute(rom, ix, snap)
	p.Engine = "sampling"
	p.Stride = stride
	p.Samples = p.TotalCycles
	p.TotalCycles *= uint64(stride)
	p.Unattributed *= uint64(stride)
	p.WallNs = wallNs
	for i := range p.Flows {
		p.Flows[i].Cycles *= uint64(stride)
		for c := range p.Flows[i].ClassCycles {
			p.Flows[i].ClassCycles[c] *= uint64(stride)
		}
		if wallNs > 0 {
			p.Flows[i].Ns = p.Flows[i].Share * wallNs
			p.TotalNs += p.Flows[i].Ns
		}
	}
	return p
}
