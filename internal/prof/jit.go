package prof

// JIT targeting: ranking the control store's straight-line segments by
// how much host time fusing each would recover. ulint proves which
// segments are fusible (pure compute runs with no scheduling point);
// the histogram says how often each executes; the calibration prices
// those cycles. Score = host ns spent in the segment × the fraction of
// its per-word dispatch overhead fusion eliminates — the ROADMAP's
// flow-fusion JIT consumes this list top-down.

import (
	"fmt"
	"sort"
	"strings"

	"vax780/internal/paper"
	"vax780/internal/ulint"
	"vax780/internal/upc"
	"vax780/internal/urom"
)

// Target is one fusible straight-line segment, priced.
type Target struct {
	Flow  string `json:"flow"`
	Entry uint16 `json:"entry"` // flow entry
	Start uint16 `json:"start"` // segment start
	Len   int    `json:"len"`   // words in the segment

	// Cycles the run spent inside the segment's words.
	Cycles uint64 `json:"cycles"`

	// Ns prices those cycles under the calibration (compute class —
	// fusible segments contain no memory or IB words by construction).
	Ns float64 `json:"ns,omitempty"`

	// Fusibility is the fraction of the segment's sequencing overhead
	// fusion eliminates: (len-1)/len dispatch decisions disappear when
	// the run executes as one block.
	Fusibility float64 `json:"fusibility"`

	// Score ranks the list: Ns × Fusibility (Cycles × Fusibility when
	// no calibration priced the cycles).
	Score float64 `json:"score"`

	// RankedBy names the quantity Score actually ranks this row by:
	// "ns" when a calibration priced the segment's cycles, "cycles"
	// when there was no calibration — or a degenerate one whose
	// active-set solve pinned the compute class at zero ns. The fusion
	// seeder reads this to weight rows correctly: a cycle-ranked score
	// is heat, not host time, and must not be compared against ns-ranked
	// scores from another run.
	RankedBy string `json:"ranked_by"`
}

// Targets builds the ranked JIT targeting list from the run's exact
// histogram. cal may be nil (ranking by cycles instead of ns).
func Targets(rom *urom.ROM, ix *ulint.FlowIndex, h *upc.Histogram, cal *Calibration) []Target {
	var out []Target
	for _, f := range ix.Flows() {
		for _, seg := range f.Segments {
			if !seg.Fusible {
				continue
			}
			var cycles uint64
			for w := seg.Start; w < seg.End(); w++ {
				normal, stalled := h.At(w)
				cycles += normal + stalled
			}
			if cycles == 0 {
				continue
			}
			t := Target{
				Flow:       f.Name,
				Entry:      f.Entry,
				Start:      seg.Start,
				Len:        seg.Len,
				Cycles:     cycles,
				Fusibility: float64(seg.Len-1) / float64(seg.Len),
			}
			// Cycle ranking is the fallback: a degenerate calibration
			// can price the compute class at zero (the active-set solve
			// pinned it), and a list scored all-zero would order by
			// address, not heat. Each row is annotated with the basis it
			// was actually ranked by, so the fallback is visible to the
			// fusion seeder instead of masquerading as a host-ns score.
			t.Score = float64(cycles) * t.Fusibility
			t.RankedBy = "cycles"
			if cal != nil {
				t.Ns = float64(cycles) * cal.NsPerClass[paper.T8Compute]
				if t.Ns > 0 {
					t.Score = t.Ns * t.Fusibility
					t.RankedBy = "ns"
				}
			}
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// RenderTargets formats the top-n targets as the vaxprof table.
func RenderTargets(targets []Target, n int) string {
	if n <= 0 || n > len(targets) {
		n = len(targets)
	}
	var b strings.Builder
	b.WriteString("JIT targets: fusible straight-line segments by host ns × fusibility\n")
	fmt.Fprintf(&b, "%4s  %-22s %6s  %5s  %12s  %6s  %12s  %-6s\n",
		"#", "flow", "start", "words", "cycles", "fus", "est host ns", "rank")
	for i, t := range targets[:n] {
		ns := "-"
		if t.Ns > 0 {
			ns = fmt.Sprintf("%12.0f", t.Ns)
		}
		fmt.Fprintf(&b, "%4d  %-22s %06o  %5d  %12d  %5.2f  %12s  %-6s\n",
			i+1, t.Flow, t.Start, t.Len, t.Cycles, t.Fusibility, ns, t.RankedBy)
	}
	return b.String()
}
