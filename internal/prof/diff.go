package prof

// Profile diffing: the regression view over two profiles of the same
// build or two builds of the same workload. Flows are matched by name;
// the interesting quantity is the share delta (robust against the two
// runs having different lengths or hosts) with the ns delta alongside
// when both profiles priced their flows.

import (
	"fmt"
	"sort"
	"strings"
)

// FlowDelta is one flow's movement between two profiles.
type FlowDelta struct {
	Name       string
	OldShare   float64
	NewShare   float64
	ShareDelta float64 // NewShare - OldShare
	OldNs      float64
	NewNs      float64
}

// DiffProfiles matches the two profiles' flows by name and returns the
// deltas, largest absolute share movement first.
func DiffProfiles(old, new *Profile) []FlowDelta {
	byName := make(map[string]*FlowDelta)
	get := func(name string) *FlowDelta {
		d, ok := byName[name]
		if !ok {
			d = &FlowDelta{Name: name}
			byName[name] = d
		}
		return d
	}
	for _, f := range old.Flows {
		d := get(f.Name)
		d.OldShare += f.Share
		d.OldNs += f.Ns
	}
	for _, f := range new.Flows {
		d := get(f.Name)
		d.NewShare += f.Share
		d.NewNs += f.Ns
	}
	out := make([]FlowDelta, 0, len(byName))
	for _, d := range byName {
		d.ShareDelta = d.NewShare - d.OldShare
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].ShareDelta), abs(out[j].ShareDelta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderDiff formats the top-n deltas; rows below minShareDelta (in
// share points, e.g. 0.001 = 0.1pt) are elided.
func RenderDiff(deltas []FlowDelta, n int, minShareDelta float64) string {
	var b strings.Builder
	b.WriteString("profile diff (share of run, old → new)\n")
	fmt.Fprintf(&b, "%-22s %8s  %8s  %8s\n", "flow", "old", "new", "delta")
	shown := 0
	for _, d := range deltas {
		if n > 0 && shown >= n {
			break
		}
		if abs(d.ShareDelta) < minShareDelta {
			continue
		}
		fmt.Fprintf(&b, "%-22s %7.2f%%  %7.2f%%  %+7.2fpt\n",
			d.Name, 100*d.OldShare, 100*d.NewShare, 100*d.ShareDelta)
		shown++
	}
	if shown == 0 {
		b.WriteString("(no flow moved above the threshold)\n")
	}
	return b.String()
}
