// Package telemetry is the live observability layer of the simulated
// VAX-11/780. The paper's measurement instrument was itself a passive
// observer — a histogram board that attributed every 200 ns cycle to an
// activity without perturbing the measured system (§2.2). This package
// extends that discipline to the reproduction: a set of zero-allocation
// event probes threaded through the machine, ebox, ibox, and mem layers
// (nil-check fast path when disabled), feeding
//
//   - live atomic counters, exported as Prometheus text and expvar;
//   - an interval recorder that snapshots the UPC histogram and memory
//     counters every N cycles into a per-interval CPI-decomposition
//     time series (CSV/JSON);
//   - a Chrome trace-event exporter that renders microcode flows,
//     stalls, and interrupts on a per-cycle timeline loadable in
//     chrome://tracing or Perfetto;
//   - an HTTP monitor mirroring the board's Unibus start/stop/clear/read
//     registers as endpoints, alongside net/http/pprof.
//
// All hook methods are called from the single simulation goroutine; the
// HTTP side reads only atomics and immutable published snapshots, so a
// live run can be watched concurrently without locks on the hot path.
package telemetry

import (
	"fmt"
	"sync/atomic"

	"vax780/internal/mem"
	"vax780/internal/runlog"
	"vax780/internal/upc"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// Options configures a Telemetry instance.
type Options struct {
	// ROM is the microprogram the machine runs; the tracer and the
	// interval decomposition need its region map. Required when
	// TraceMaxEvents != 0.
	ROM *urom.ROM

	// IntervalCycles enables the interval recorder with the given
	// snapshot period in EBOX cycles (0 disables it).
	IntervalCycles uint64

	// TraceMaxEvents enables the Chrome trace-event collector with a cap
	// on retained events (0 disables tracing; negative means unlimited).
	TraceMaxEvents int
}

// Counters are the live atomic event counters. They are safe to read
// from any goroutine while a run executes.
type Counters struct {
	Cycles      atomic.Uint64 // every EBOX cycle
	StallCycles atomic.Uint64 // read- and write-stalled cycles
	Instrs      atomic.Uint64 // instruction decode events
	CacheMissD  atomic.Uint64 // D-stream (incl. PTE) cache read misses
	CacheMissI  atomic.Uint64 // I-stream cache read misses
	TBMissD     atomic.Uint64 // D-stream translation-buffer misses
	TBMissI     atomic.Uint64 // I-stream translation-buffer misses
	IBRefills   atomic.Uint64 // IB refill references issued
	Interrupts  atomic.Uint64 // interrupt deliveries
	CtxSwitches atomic.Uint64 // context switches (LDPCTX)
	Intervals   atomic.Uint64 // interval records rolled
}

// CPI returns cycles per decoded instruction so far.
func (c *Counters) CPI() float64 {
	in := c.Instrs.Load()
	if in == 0 {
		return 0
	}
	return float64(c.Cycles.Load()) / float64(in)
}

// Pending board-command bits (the Unibus CSR writes of the HTTP monitor,
// applied by the simulation goroutine at the next cycle).
const (
	cmdStart = 1 << iota
	cmdStop
	cmdClear
)

// Status bits published for the HTTP CSR view.
const (
	StatusRunning = 1 << iota
	StatusSaturated
)

// Telemetry is the concrete event sink. It implements the probe
// interfaces of the ebox, ibox, and mem packages, and receives
// machine-level events (decode, interrupt, context switch) directly.
type Telemetry struct {
	C Counters

	rom *urom.ROM
	rec *Recorder
	tr  *Tracer

	// offset maps the current machine's cycle counter onto the
	// continuous telemetry timeline: a composite run executes several
	// machines in sequence, each starting at cycle 0.
	offset uint64
	maxAbs uint64 // one past the last observed absolute cycle

	// mon/stats are the currently bound machine's monitor and hardware
	// counters (simulation goroutine only).
	mon   *upc.Monitor
	stats *mem.Stats

	cmd    atomic.Uint32                 // pending board commands
	status atomic.Uint32                 // published CSR status bits
	snap   atomic.Pointer[boardSnapshot] // latest published histogram

	// watched is set once Handler builds the HTTP view. Until then no
	// reader of published board snapshots exists, so the interval
	// recorder skips the per-roll full-board dump and publish (a
	// headless run pays one delta pass per interval instead of two
	// snapshot copies plus two saturation scans). Board commands imply
	// a watcher and always publish.
	watched atomic.Bool

	// Live feeds attached by the run (events.go): the ledger's event bus
	// behind /events and the fleet tracker's snapshot closure behind
	// /progress and the host gauges.
	evBus  atomic.Pointer[runlog.Bus]
	progFn atomic.Pointer[progressFunc]
	profFn atomic.Pointer[profFunc]

	finished bool
}

// boardSnapshot is an immutable published readout of the board.
type boardSnapshot struct {
	Cycle uint64 // absolute cycle at which the snapshot was taken
	Hist  *upc.Histogram
}

// New builds a telemetry sink from opts.
func New(opts Options) *Telemetry {
	t := &Telemetry{rom: opts.ROM}
	if opts.IntervalCycles > 0 {
		t.rec = newRecorder(opts.IntervalCycles)
	}
	if opts.TraceMaxEvents != 0 {
		if opts.ROM == nil {
			panic("telemetry: tracing requires Options.ROM")
		}
		t.tr = newTracer(opts.ROM, opts.TraceMaxEvents)
	}
	return t
}

// ROM returns the microprogram bound at construction (may be nil).
func (t *Telemetry) ROM() *urom.ROM { return t.rom }

// Bind attaches the next machine's UPC monitor and hardware counters.
// A composite run calls Bind once per workload machine; the telemetry
// timeline continues across binds. Any partial recorder interval of the
// previous machine is closed first.
func (t *Telemetry) Bind(mon *upc.Monitor, stats *mem.Stats) {
	if t.rec != nil {
		t.rec.flush(t, t.maxAbs)
		t.rec.rebind(mon, stats, t.maxAbs)
	}
	t.offset = t.maxAbs
	t.mon = mon
	t.stats = stats
	t.publishStatus()
}

// Phase marks a named phase boundary (one per workload experiment) on
// the trace timeline. Any trace slices left open by the previous
// machine are closed first: a workload boundary ends its flows, it
// does not let them span into an unrelated experiment — and closing
// them here (rather than at Bind) makes the sequential event stream
// identical to a parallel run's per-workload streams spliced in order.
func (t *Telemetry) Phase(name string) {
	if t.tr != nil {
		t.tr.finish(t.maxAbs)
		t.tr.phase(t.maxAbs, name)
	}
}

// NewChild builds a detached telemetry sink with this instance's
// configuration: the same recorder period and trace cap, sharing the
// read-only ROM tables. A parallel composite run gives each workload
// machine its own child (observing from cycle 0), then splices the
// children back in workload order with Absorb. Children have no HTTP
// side: board commands and published snapshots stay on the parent.
func (t *Telemetry) NewChild() *Telemetry {
	c := &Telemetry{rom: t.rom}
	if t.rec != nil {
		c.rec = newRecorder(t.rec.period)
	}
	if t.tr != nil {
		c.tr = newChildTracer(t.tr)
	}
	return c
}

// Absorb splices a child sink's observations onto this timeline:
// counters are summed, recorder intervals are appended with their
// cycles shifted by the parent's current end-of-timeline, and trace
// events likewise. Called in workload order, the result is bit-exact
// with a sequential run observing the same machines in that order.
// The child must not be observing concurrently during the call.
func (t *Telemetry) Absorb(c *Telemetry) {
	c.Finish()
	shift := t.maxAbs
	t.C.Cycles.Add(c.C.Cycles.Load())
	t.C.StallCycles.Add(c.C.StallCycles.Load())
	t.C.Instrs.Add(c.C.Instrs.Load())
	t.C.CacheMissD.Add(c.C.CacheMissD.Load())
	t.C.CacheMissI.Add(c.C.CacheMissI.Load())
	t.C.TBMissD.Add(c.C.TBMissD.Load())
	t.C.TBMissI.Add(c.C.TBMissI.Load())
	t.C.IBRefills.Add(c.C.IBRefills.Load())
	t.C.Interrupts.Add(c.C.Interrupts.Load())
	t.C.CtxSwitches.Add(c.C.CtxSwitches.Load())
	t.C.Intervals.Add(c.C.Intervals.Load())
	if t.rec != nil && c.rec != nil {
		t.rec.absorb(c.rec, shift)
	}
	if t.tr != nil && c.tr != nil {
		t.tr.absorb(c.tr, shift)
	}
	t.maxAbs = shift + c.maxAbs
	t.offset = t.maxAbs
	t.mon = c.mon
	t.stats = c.stats
	t.finished = false
	t.publish(t.maxAbs)
}

// Finish closes the last partial recorder interval and any open trace
// slices. Exporters call it implicitly; calling it more than once is
// harmless. After Finish the recorded series and trace are complete up
// to the last observed cycle.
func (t *Telemetry) Finish() {
	if t.finished {
		return
	}
	t.finished = true
	if t.rec != nil {
		t.rec.flush(t, t.maxAbs)
	}
	if t.tr != nil {
		t.tr.finish(t.maxAbs)
	}
	t.publishStatus()
}

// --- probe methods (simulation goroutine, hot path) ---

// Cycle observes one EBOX cycle: the same observation point as the UPC
// board's count pulse. Implements the ebox Probe.
func (t *Telemetry) Cycle(now uint64, addr uint16, stalled bool) {
	abs := now + t.offset
	t.maxAbs = abs + 1
	t.finished = false
	t.C.Cycles.Add(1)
	if stalled {
		t.C.StallCycles.Add(1)
	}
	if cmd := t.cmd.Load(); cmd != 0 {
		t.applyCmd(cmd, abs)
	}
	if t.rec != nil {
		t.rec.cycle(t, abs)
	}
	if t.tr != nil {
		t.tr.cycle(abs, addr, stalled)
	}
}

// Quiet returns how many of the next n cycles starting at now are
// observation-free: no pending board command and no interval-recorder
// boundary. The superword replay path bulk-applies exactly that many
// cycles through CycleRun and routes the boundary cycle itself through
// the ordinary per-cycle Cycle, so rolls and board commands execute at
// a cycle boundary with the monitor histogram in precisely the state
// the interpreted run would show them. A command that arrives
// asynchronously during a bulk span is noticed at the span's end — the
// same store-to-observation latency a Unibus CSR write always had.
// Implements the ebox BulkProbe extension.
func (t *Telemetry) Quiet(now uint64, n int) int {
	if t.cmd.Load() != 0 {
		return 0
	}
	if t.rec != nil {
		if q := t.rec.quiet(now + t.offset); q < n {
			return q
		}
	}
	return n
}

// CycleRun observes n consecutive un-stalled cycles at addr, addr+1, …
// in one call: the counters advance by n, and the tracer coalesces the
// span by control-store region. Callers must bound n by Quiet first —
// the span must contain no interval boundary and no pending board
// command — which makes the call bit-exact with n individual Cycle
// calls. Implements the ebox BulkProbe extension.
func (t *Telemetry) CycleRun(now uint64, addr uint16, n int) {
	abs := now + t.offset
	t.maxAbs = abs + uint64(n)
	t.finished = false
	t.C.Cycles.Add(uint64(n))
	if t.tr != nil {
		t.tr.cycleRun(abs, addr, n)
	}
}

// TBMiss observes a translation-buffer miss (shared by the ebox and
// ibox probes: the D-stream microtrap and the I-stream miss flag).
func (t *Telemetry) TBMiss(now uint64, istream bool, va uint32) {
	if istream {
		t.C.TBMissI.Add(1)
	} else {
		t.C.TBMissD.Add(1)
	}
	if t.tr != nil {
		t.tr.tbMiss(now+t.offset, istream, va)
	}
}

// CacheMiss observes a cache read miss. Implements the mem Probe.
func (t *Telemetry) CacheMiss(now uint64, istream bool, pa uint32, stall int) {
	if istream {
		t.C.CacheMissI.Add(1)
	} else {
		t.C.CacheMissD.Add(1)
	}
}

// Refill observes an IB refill reference. Implements the ibox Probe.
func (t *Telemetry) Refill(now uint64, va uint32, latency int, miss bool) {
	t.C.IBRefills.Add(1)
}

// Instr observes an instruction decode (machine-level event).
func (t *Telemetry) Instr(now uint64, pc uint32, op vax.Opcode) {
	t.C.Instrs.Add(1)
	if t.tr != nil {
		t.tr.instr(now+t.offset, pc, op)
	}
}

// Interrupt observes an interrupt delivery (machine-level event).
func (t *Telemetry) Interrupt(now uint64, handler uint32) {
	t.C.Interrupts.Add(1)
	if t.tr != nil {
		t.tr.interrupt(now+t.offset, handler)
	}
}

// CtxSwitch observes a context switch (machine-level event).
func (t *Telemetry) CtxSwitch(now uint64, from, to uint32) {
	t.C.CtxSwitches.Add(1)
	if t.tr != nil {
		t.tr.ctxSwitch(now+t.offset, from, to)
	}
}

// --- board control (HTTP side writes command bits; the simulation
// goroutine applies them at the next cycle, exactly as Unibus register
// writes took effect asynchronously to the measured system) ---

// Command requests a board action: "start", "stop", or "clear".
func (t *Telemetry) Command(name string) error {
	switch name {
	case "start":
		t.orCmd(cmdStart)
	case "stop":
		t.orCmd(cmdStop)
	case "clear":
		t.orCmd(cmdClear)
	default:
		return fmt.Errorf("telemetry: unknown board command %q", name)
	}
	return nil
}

func (t *Telemetry) orCmd(bit uint32) {
	for {
		old := t.cmd.Load()
		if t.cmd.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func (t *Telemetry) applyCmd(cmd uint32, abs uint64) {
	t.cmd.Store(0)
	if t.mon == nil {
		return
	}
	if cmd&cmdClear != 0 {
		t.mon.Clear()
	}
	if cmd&cmdStop != 0 {
		t.mon.Stop()
	}
	if cmd&cmdStart != 0 {
		t.mon.Start()
	}
	t.publish(abs)
}

// publish stores an immutable board readout for the HTTP side.
func (t *Telemetry) publish(abs uint64) {
	if t.mon != nil {
		t.publishHist(abs, t.mon.Snapshot())
		return
	}
	t.publishStatus()
}

// publishHist publishes an already-dumped histogram (the interval
// recorder reuses its roll snapshot here). h must not be mutated after
// the call.
func (t *Telemetry) publishHist(abs uint64, h *upc.Histogram) {
	t.snap.Store(&boardSnapshot{Cycle: abs, Hist: h})
	t.publishStatus()
}

func (t *Telemetry) publishStatus() {
	var s uint32
	if t.mon != nil {
		if t.mon.Running() {
			s |= StatusRunning
		}
		if t.mon.Saturated() {
			s |= StatusSaturated
		}
	}
	t.status.Store(s)
}

// Status returns the published CSR status bits.
func (t *Telemetry) Status() uint32 { return t.status.Load() }

// Snapshot returns the latest published board readout (nil until the
// first interval boundary or board command).
func (t *Telemetry) Snapshot() (cycle uint64, h *upc.Histogram) {
	s := t.snap.Load()
	if s == nil {
		return 0, nil
	}
	return s.Cycle, s.Hist
}

// Recorder returns the interval recorder (nil when disabled).
func (t *Telemetry) Recorder() *Recorder { return t.rec }

// Tracer returns the Chrome trace collector (nil when disabled).
func (t *Telemetry) Tracer() *Tracer { return t.tr }

// DescribeProbes renders the probe-point map of the telemetry layer:
// which package emits which event, and what each feeds.
func DescribeProbes() string {
	return `telemetry probe points (all zero-allocation, nil-checked when detached):
  ebox.tick          -> Cycle(now, uPC, stalled)   every 200 ns EBOX cycle (the UPC tap)
  ebox.doMem         -> TBMiss(now, d-stream, va)  TB-miss microtrap entry
  ibox.Tick          -> TBMiss(now, i-stream, va)  I-stream miss flag raised
  ibox.Tick          -> Refill(now, va, latency)   IB refill reference issued
  mem.DRead/PTERead  -> CacheMiss(now, d, pa)      D-stream cache read miss
  mem.IRead          -> CacheMiss(now, i, pa)      I-stream cache read miss
  machine.runInstr   -> Instr(now, pc, opcode)     instruction decode event
  machine.deliverInterrupt -> Interrupt(now, pc)   interrupt delivery
  machine LDPCTX     -> CtxSwitch(now, from, to)   context switch
consumers:
  Counters           live atomics: /metrics, expvar
  Recorder           per-N-cycle UPC+mem snapshots -> interval CPI series (CSV/JSON)
  Tracer             Chrome trace_event JSON (chrome://tracing, Perfetto)
  board registers    /board/{start,stop,clear,read,csr} (Unibus CSR mirror)`
}
