// Chrome trace-event exporter: renders the simulated machine's per-cycle
// activity — microcode flows by control-store region, read/write stalls,
// instruction decode slices, interrupts, and context switches — as a
// trace_event JSON timeline loadable in chrome://tracing or Perfetto.
// One EBOX cycle is 200 ns = 0.2 µs of trace time.

package telemetry

import (
	"encoding/json"
	"io"

	"vax780/internal/ucode"
	"vax780/internal/urom"
	"vax780/internal/vax"
)

// Trace track (tid) assignment within the single simulated process.
const (
	tidInstr  = 1 // instruction decode slices
	tidRegion = 2 // microcode flow slices by control-store region
	tidStall  = 3 // read/write stall slices
	tidEvents = 4 // interrupts, context switches, TB misses
)

// cycleMicros converts an absolute cycle number to trace microseconds.
func cycleMicros(cycle uint64) float64 { return float64(cycle) * 0.2 }

// argKind tags the typed argument payload of a hot-path trace event.
// The collector is on the simulation hot path (one call per EBOX cycle
// with tracing enabled), so events carry their arguments as plain
// fields; the map[string]any form the trace_event JSON wants is built
// once per event at write time, not once per event at collection time.
// Only the cold metadata events (emitted at construction) carry a
// prebuilt map.
type argKind uint8

const (
	argsNone      argKind = iota
	argsMap               // cold path: prebuilt map in M
	argsEntry             // {"entry": AS}
	argsPC                // {"pc": A}
	argsHandlerPC         // {"handler_pc": A}
	argsFromTo            // {"from": A, "to": B}
	argsVA                // {"va": A}
)

// traceEvent is one collected trace record. Timestamps are kept in
// integer cycles (not float microseconds) so a child tracer's events
// can be shifted onto the parent timeline bit-exactly at merge; the
// float conversion happens once, at write time.
type traceEvent struct {
	Name  string
	Ph    string
	Start uint64 // cycle (unused by metadata events)
	End   uint64 // cycle, exclusive (complete "X" events only)
	Pid   int
	Tid   int
	S     string

	// Typed argument payload (see argKind).
	AK   argKind
	AS   string
	A, B uint32
	M    map[string]any
}

// args materializes the event's argument map for the JSON exporter.
func (ev *traceEvent) args() map[string]any {
	switch ev.AK {
	case argsMap:
		return ev.M
	case argsEntry:
		return map[string]any{"entry": ev.AS}
	case argsPC:
		return map[string]any{"pc": ev.A}
	case argsHandlerPC:
		return map[string]any{"handler_pc": ev.A}
	case argsFromTo:
		return map[string]any{"from": ev.A, "to": ev.B}
	case argsVA:
		return map[string]any{"va": ev.A}
	}
	return nil
}

// wireEvent is the trace_event JSON record (the subset Perfetto
// consumes).
type wireEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of the trace_event spec.
type traceFile struct {
	TraceEvents     []wireEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Tracer collects trace events from the probe stream. It coalesces
// consecutive cycles of the same control-store region into one slice,
// and consecutive stalled cycles into stall slices, so the event volume
// scales with activity changes rather than raw cycles.
type Tracer struct {
	max    int // retained-event cap (<0: unlimited)
	events []traceEvent

	region []ucode.Region // control-store address -> region
	label  []string       // control-store address -> flow entry label

	// open slices
	curRegion   ucode.Region
	regionStart uint64
	regionLabel string
	haveRegion  bool

	stallStart uint64
	inStall    bool

	instrName  string
	instrPC    uint32
	instrStart uint64
	haveInstr  bool

	truncated bool
	finished  bool
}

func newTracer(rom *urom.ROM, maxEvents int) *Tracer {
	size := rom.Image.Size()
	tr := &Tracer{
		max:    maxEvents,
		events: make([]traceEvent, 0, eventPrealloc(maxEvents)),
		region: make([]ucode.Region, size),
		label:  make([]string, size),
	}
	var lastLabel string
	for addr := 0; addr < size; addr++ {
		mi := rom.Image.At(uint16(addr))
		tr.region[addr] = mi.Region
		if mi.Label != "" {
			lastLabel = mi.Label
		}
		tr.label[addr] = lastLabel
	}
	tr.meta()
	return tr
}

// eventPrealloc sizes the collector's initial event buffer: enough to
// absorb a busy run's region and instruction slices without repeated
// geometric growth (each growth copies every collected event), bounded
// so a high retained-event cap does not commit tens of megabytes up
// front.
func eventPrealloc(maxEvents int) int {
	const bound = 1 << 16
	if maxEvents < 0 || maxEvents > bound {
		return bound
	}
	return maxEvents
}

// newChildTracer builds a per-workload tracer for a parallel composite
// run: it shares the parent's read-only address tables, carries the
// parent's full event cap (so the merge — which re-applies the cap in
// workload order — reproduces exactly the sequential truncation
// point), and emits no metadata events (the parent already has them).
func newChildTracer(parent *Tracer) *Tracer {
	return &Tracer{
		max:    parent.max,
		events: make([]traceEvent, 0, eventPrealloc(parent.max)),
		region: parent.region,
		label:  parent.label,
	}
}

// meta emits the process/thread naming metadata events.
func (tr *Tracer) meta() {
	names := []struct {
		tid  int
		name string
	}{
		{tidInstr, "VAX instructions"},
		{tidRegion, "microcode region"},
		{tidStall, "memory stalls"},
		{tidEvents, "system events"},
	}
	tr.events = append(tr.events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		AK: argsMap, M: map[string]any{"name": "VAX-11/780 (simulated)"},
	})
	for _, n := range names {
		tr.events = append(tr.events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: n.tid,
			AK: argsMap, M: map[string]any{"name": n.name},
		})
		tr.events = append(tr.events, traceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: n.tid,
			AK: argsMap, M: map[string]any{"sort_index": n.tid},
		})
	}
}

// emit appends an event unless the cap is reached.
func (tr *Tracer) emit(ev traceEvent) {
	if tr.max >= 0 && len(tr.events) >= tr.max {
		tr.truncated = true
		return
	}
	tr.events = append(tr.events, ev)
}

// slice emits a complete ("X") event spanning [start, end) cycles.
func (tr *Tracer) slice(name string, tid int, start, end uint64, ak argKind, as string, a, b uint32) {
	if end <= start {
		end = start + 1
	}
	tr.emit(traceEvent{
		Name: name, Ph: "X", Pid: 1, Tid: tid,
		Start: start, End: end, AK: ak, AS: as, A: a, B: b,
	})
}

// instant emits an instant ("i") event at the given cycle.
func (tr *Tracer) instant(name string, tid int, at uint64, ak argKind, a, b uint32) {
	tr.emit(traceEvent{
		Name: name, Ph: "i", S: "t", Pid: 1, Tid: tid,
		Start: at, AK: ak, A: a, B: b,
	})
}

// cycle observes one EBOX cycle at the given control-store address.
func (tr *Tracer) cycle(abs uint64, addr uint16, stalled bool) {
	tr.finished = false
	r := ucode.RegNone
	lbl := ""
	if int(addr) < len(tr.region) {
		r = tr.region[addr]
		lbl = tr.label[addr]
	}
	if !tr.haveRegion {
		tr.curRegion, tr.regionStart, tr.regionLabel, tr.haveRegion = r, abs, lbl, true
	} else if r != tr.curRegion {
		tr.closeRegion(abs)
		tr.curRegion, tr.regionStart, tr.regionLabel = r, abs, lbl
	}

	if stalled && !tr.inStall {
		tr.inStall, tr.stallStart = true, abs
	} else if !stalled && tr.inStall {
		tr.slice("stall", tidStall, tr.stallStart, abs, argsNone, "", 0, 0)
		tr.inStall = false
	}
}

// cycleRun observes n consecutive un-stalled cycles at addr, addr+1, …
// — the superword replay path's bulk tracer application. The first
// cycle goes through the ordinary per-cycle observer (it may close a
// stall slice left open by the preceding memory reference and start a
// new region slice, in that order); the rest advance by runs of
// identical control-store region, emitting exactly the region
// transitions n individual cycle calls would. Within a same-region run
// nothing changes, so the cost is one table scan instead of n state
// machine steps.
func (tr *Tracer) cycleRun(abs uint64, addr uint16, n int) {
	tr.cycle(abs, addr, false)
	for i := 1; i < n; {
		a := int(addr) + i
		r := ucode.RegNone
		lbl := ""
		if a < len(tr.region) {
			r = tr.region[a]
			lbl = tr.label[a]
		}
		if r != tr.curRegion {
			tr.closeRegion(abs + uint64(i))
			tr.curRegion, tr.regionStart, tr.regionLabel = r, abs+uint64(i), lbl
		}
		j := i + 1
		if a < len(tr.region) {
			for j < n && int(addr)+j < len(tr.region) && tr.region[int(addr)+j] == r {
				j++
			}
		} else {
			for j < n && int(addr)+j >= len(tr.region) {
				j++
			}
		}
		i = j
	}
}

func (tr *Tracer) closeRegion(end uint64) {
	tr.slice(tr.curRegion.String(), tidRegion, tr.regionStart, end, argsEntry, tr.regionLabel, 0, 0)
}

// instr observes an instruction decode: the previous instruction's
// slice is closed and a new one opened.
func (tr *Tracer) instr(abs uint64, pc uint32, op vax.Opcode) {
	if tr.haveInstr {
		tr.slice(tr.instrName, tidInstr, tr.instrStart, abs, argsPC, "", tr.instrPC, 0)
	}
	tr.instrName, tr.instrPC, tr.instrStart, tr.haveInstr = op.String(), pc, abs, true
}

func (tr *Tracer) interrupt(abs uint64, handler uint32) {
	tr.instant("interrupt", tidEvents, abs, argsHandlerPC, handler, 0)
}

func (tr *Tracer) ctxSwitch(abs uint64, from, to uint32) {
	tr.instant("context switch", tidEvents, abs, argsFromTo, from, to)
}

func (tr *Tracer) tbMiss(abs uint64, istream bool, va uint32) {
	name := "TB miss (D)"
	if istream {
		name = "TB miss (I)"
	}
	tr.instant(name, tidEvents, abs, argsVA, va, 0)
}

// phase marks a workload-experiment boundary.
func (tr *Tracer) phase(abs uint64, name string) {
	tr.emit(traceEvent{
		Name: "phase: " + name, Ph: "i", S: "g", Pid: 1, Tid: tidEvents,
		Start: abs,
	})
}

// finish closes every open slice at the given end cycle.
func (tr *Tracer) finish(end uint64) {
	if tr.finished {
		return
	}
	tr.finished = true
	if tr.haveRegion && end > tr.regionStart {
		tr.closeRegion(end)
		tr.haveRegion = false
	}
	if tr.inStall {
		tr.slice("stall", tidStall, tr.stallStart, end, argsNone, "", 0, 0)
		tr.inStall = false
	}
	if tr.haveInstr {
		tr.slice(tr.instrName, tidInstr, tr.instrStart, end, argsPC, "", tr.instrPC, 0)
		tr.haveInstr = false
	}
}

// absorb appends a finished child tracer's events, shifted onto the
// parent timeline. The cap is re-applied against the parent's running
// event count, so a merged trace truncates at exactly the byte the
// sequential trace would. Timestamps shift exactly because they are
// integer cycles; nothing is re-derived.
func (tr *Tracer) absorb(child *Tracer, shift uint64) {
	for _, ev := range child.events {
		ev.Start += shift
		if ev.Ph == "X" {
			ev.End += shift
		}
		tr.emit(ev)
	}
	// A child that hit its own cap dropped events the sequential trace
	// (which reaches the cap no later) would also have dropped.
	if child.truncated {
		tr.truncated = true
	}
}

// Truncated reports whether the event cap dropped events.
func (tr *Tracer) Truncated() bool { return tr.truncated }

// Events returns the number of collected events.
func (tr *Tracer) Events() int { return len(tr.events) }

// WriteTrace writes the collected timeline as trace_event JSON. The
// telemetry layer's Finish must have closed the open slices first
// (Telemetry.WriteTrace does this).
func (tr *Tracer) WriteTrace(w io.Writer) error {
	evs := make([]wireEvent, len(tr.events))
	for i, ev := range tr.events {
		we := wireEvent{
			Name: ev.Name, Ph: ev.Ph, Pid: ev.Pid, Tid: ev.Tid,
			S: ev.S, Args: ev.args(),
		}
		if ev.Ph != "M" {
			we.Ts = cycleMicros(ev.Start)
		}
		if ev.Ph == "X" {
			we.Dur = cycleMicros(ev.End) - cycleMicros(ev.Start)
		}
		evs[i] = we
	}
	f := traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"source":      "vax780 telemetry layer",
			"cycle_ns":    200,
			"truncated":   tr.truncated,
			"event_count": len(tr.events),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteTrace exports the Chrome trace; it returns an error when tracing
// was not enabled.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	if t.tr == nil {
		return errTraceDisabled
	}
	t.Finish()
	return t.tr.WriteTrace(w)
}
