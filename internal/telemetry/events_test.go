package telemetry_test

// Tests of the live observability endpoints: /events streams the run
// ledger's bus as SSE in publication order, a subscriber connecting
// mid-run only sees events from its subscription on, a disconnecting
// subscriber never wedges the publisher, /progress serves the fleet
// tracker's latest snapshot, and /metrics carries the host
// self-profile gauges.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vax780/internal/machine"
	"vax780/internal/runlog"
	"vax780/internal/telemetry"
)

func newServer(t *testing.T) (*telemetry.Telemetry, *httptest.Server) {
	t.Helper()
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), IntervalCycles: 500})
	srv := httptest.NewServer(tel.Handler())
	t.Cleanup(srv.Close)
	return tel, srv
}

// sseEvent is one parsed "event:"/"data:" frame.
type sseEvent struct {
	Type string
	Data map[string]any
}

// readFrames parses n SSE frames off the stream.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended after %d of %d frames: %v", len(out), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("SSE data line is not JSON: %v (%q)", err, line)
			}
		case line == "" && cur.Type != "":
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	return out
}

// TestEventsBeforeAttach: with no run attached, the live endpoints
// degrade to 503 instead of hanging or erroring out the mux.
func TestEventsBeforeAttach(t *testing.T) {
	_, srv := newServer(t)
	for _, path := range []string{"/events", "/progress"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before attach: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestEventsStreamOrdered: a subscriber receives every event published
// after it connected, in publication order, with the ledger's sequence
// numbers intact.
func TestEventsStreamOrdered(t *testing.T) {
	tel, srv := newServer(t)
	led := runlog.New(io.Discard)
	tel.SetEvents(led.Bus())

	// Events emitted before the subscriber exist only in the file.
	led.Emit(runlog.WlStartEvent("EARLY", 0, 100))

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// http.Get returns once headers arrive, and the handler subscribes
	// before writing them — so everything from here on is received.
	const n = 5
	for i := 0; i < n; i++ {
		led.Emit(runlog.WlDoneEvent("WL", i, 1000, 10000, 10.0, 0, false))
	}

	frames := readFrames(t, bufio.NewReader(resp.Body), n)
	for i, f := range frames {
		if f.Type != "workload-done" {
			t.Errorf("frame %d type = %q, want workload-done (pre-subscription events must not replay)", i, f.Type)
		}
		if ev, _ := f.Data["ev"].(string); ev != f.Type {
			t.Errorf("frame %d data tags itself %q, SSE event line says %q", i, ev, f.Type)
		}
		if idx, _ := f.Data["index"].(float64); int(idx) != i {
			t.Errorf("frame %d carries index %v — events out of order", i, f.Data["index"])
		}
	}
}

// TestEventsDisconnectDoesNotWedge: a subscriber that goes away must
// not block the publisher — the bus drops on full buffers and the
// handler unsubscribes when the request context ends.
func TestEventsDisconnectDoesNotWedge(t *testing.T) {
	tel, srv := newServer(t)
	led := runlog.New(io.Discard)
	bus := led.Bus()
	tel.SetEvents(bus)

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if bus.Subscribers() != 1 {
		t.Fatalf("subscribers = %d after connect, want 1", bus.Subscribers())
	}
	resp.Body.Close()

	// Publish far more events than any buffer holds; a wedged publisher
	// would hang the test here.
	for i := 0; i < 4096; i++ {
		led.Emit(runlog.CheckpointEvent("x", i))
	}

	// The handler notices the dead connection and unsubscribes.
	deadline := time.Now().Add(5 * time.Second)
	for bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d long after disconnect, want 0", bus.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProgressEndpointAndHostGauges: /progress serves the tracker's
// latest snapshot as JSON, and /metrics grows the host self-profile
// gauges — including ns-per-sim-cycle once a snapshot exists.
func TestProgressEndpointAndHostGauges(t *testing.T) {
	tel, srv := newServer(t)
	snap := runlog.Snapshot{
		ElapsedSeconds: 1.5,
		DoneUnits:      2, TotalUnits: 5,
		Instrs: 12345, Cycles: 98765,
		InstrRate: 1e6, NsPerSimCycle: 61.5, ETASeconds: 3.5,
		Workers: []runlog.WorkerProgress{{Worker: 0, Label: "TIMESHARING-A", Busy: true}},
	}
	tel.SetProgress(func() (runlog.Snapshot, bool) { return snap, true })
	led := runlog.New(io.Discard)
	tel.SetEvents(led.Bus())

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	var got runlog.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Instrs != snap.Instrs || got.NsPerSimCycle != snap.NsPerSimCycle ||
		len(got.Workers) != 1 || got.Workers[0].Label != "TIMESHARING-A" {
		t.Errorf("/progress returned %+v, want %+v", got, snap)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"vax780_host_heap_alloc_bytes",
		"vax780_host_gc_total",
		"vax780_host_goroutines",
		"vax780_host_ns_per_sim_cycle 61.5",
		"vax780_progress_instr_per_s 1e+06",
		"vax780_event_subscribers 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}
