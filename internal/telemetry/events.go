// The live event and progress feeds of the HTTP monitor: the run
// ledger's bus streamed as Server-Sent Events at /events, the fleet
// tracker's latest snapshot served as JSON at /progress, and host
// self-profile gauges appended to /metrics. Both feeds attach lazily —
// Run wires them when a ledger/tracker exists — and every handler
// degrades to 503 when no run is attached, so the monitor can be
// served before, during, and after runs.

package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"

	"vax780/internal/runlog"
)

// progressFunc boxes the snapshot closure so it can live in an
// atomic.Pointer (function values cannot be stored atomically).
type progressFunc struct {
	latest func() (runlog.Snapshot, bool)
}

// profFunc boxes the profiler's latest-profile closure the same way.
type profFunc struct {
	latest func() any
}

// SetProf attaches the host-time profiler's latest-profile closure,
// feeding /prof. The closure returns nil until the first workload's
// samples merge, then the cumulative (finally the whole-run) Profile.
func (t *Telemetry) SetProf(latest func() any) {
	t.profFn.Store(&profFunc{latest: latest})
}

// serveProf serves the latest published host-time profile as JSON.
func (t *Telemetry) serveProf(w http.ResponseWriter, r *http.Request) {
	p := t.profFn.Load()
	if p == nil || p.latest == nil {
		http.Error(w, "no profiler attached (set RunConfig.Profiler)",
			http.StatusServiceUnavailable)
		return
	}
	prof := p.latest()
	if prof == nil {
		http.Error(w, "no profile published yet (first workload still executing)",
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, prof)
}

// SetEvents attaches a run's live event bus; /events subscribers from
// then on receive its stream. Safe to call while the handler serves.
func (t *Telemetry) SetEvents(b *runlog.Bus) {
	t.evBus.Store(b)
}

// SetProgress attaches the fleet tracker's latest-snapshot closure,
// feeding /progress and the host gauges on /metrics.
func (t *Telemetry) SetProgress(latest func() (runlog.Snapshot, bool)) {
	t.progFn.Store(&progressFunc{latest: latest})
}

// latestProgress returns the current fleet snapshot, if a tracker is
// attached and has published one.
func (t *Telemetry) latestProgress() (runlog.Snapshot, bool) {
	p := t.progFn.Load()
	if p == nil || p.latest == nil {
		return runlog.Snapshot{}, false
	}
	return p.latest()
}

// serveEvents streams the run ledger's live bus as Server-Sent Events.
func (t *Telemetry) serveEvents(w http.ResponseWriter, r *http.Request) {
	bus := t.evBus.Load()
	if bus == nil {
		http.Error(w, "no run attached (start a run with a Ledger, Progress, or Telemetry consumer)",
			http.StatusServiceUnavailable)
		return
	}
	ServeBus(w, r, bus)
}

// ServeBus streams one live event bus as Server-Sent Events: one
// "event:"/"data:" frame per ledger event, the data line being the
// event's canonical JSON object. A subscriber that falls behind loses
// events rather than slowing the run (the bus drops on full buffers) —
// the board's passivity discipline extended to the observers. This is
// the shared plumbing behind the monitor's /events endpoint and the
// vaxd service's per-job streams (see SSEMux).
func ServeBus(w http.ResponseWriter, r *http.Request, bus *runlog.Bus) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := bus.Subscribe(sseBuffer)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.JSON())
			fl.Flush()
		}
	}
}

// sseBuffer is the per-subscriber event buffer of /events. Progress
// events arrive at the tracker period and run events in bursts at
// workload boundaries; 256 rides out any realistic burst.
const sseBuffer = 256

// serveProgress serves the latest fleet-progress snapshot as JSON.
func (t *Telemetry) serveProgress(w http.ResponseWriter, r *http.Request) {
	s, ok := t.latestProgress()
	if !ok {
		http.Error(w, "no progress published yet (no run attached, or first sample pending)",
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, s)
}

// writeHostMetrics appends the host self-profile to /metrics: the
// simulator observing its own substrate (allocation, GC, goroutines)
// plus the cost ratio that matters for the reproduction — host
// nanoseconds per simulated 200ns cycle.
func (t *Telemetry) writeHostMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("vax780_host_heap_alloc_bytes", "live heap bytes of the simulator process", float64(ms.HeapAlloc))
	gauge("vax780_host_sys_bytes", "total memory obtained from the OS", float64(ms.Sys))
	gauge("vax780_host_gc_total", "completed GC cycles", float64(ms.NumGC))
	gauge("vax780_host_gc_pause_total_ns", "cumulative GC stop-the-world pause", float64(ms.PauseTotalNs))
	gauge("vax780_host_goroutines", "live goroutines", float64(runtime.NumGoroutine()))
	if s, ok := t.latestProgress(); ok {
		gauge("vax780_host_ns_per_sim_cycle", "host wall nanoseconds per simulated 200ns cycle", s.NsPerSimCycle)
		gauge("vax780_progress_instr_per_s", "fleet instruction throughput", s.InstrRate)
		gauge("vax780_progress_eta_s", "estimated seconds to run completion", s.ETASeconds)
	}
	if bus := t.evBus.Load(); bus != nil {
		gauge("vax780_event_subscribers", "live /events subscribers", float64(bus.Subscribers()))
	}
}
