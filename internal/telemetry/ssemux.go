// The per-job SSE mux of the vaxd service: one live event bus per job,
// addressed by job ID, each streamed with the same ServeBus plumbing as
// the monitor's /events endpoint. Buses outlive their runs — a job's
// bus is attached at admission and detached only when the job is
// forgotten — so a client can subscribe before the run starts and keep
// the stream across the queued → running → done lifecycle.

package telemetry

import (
	"net/http"
	"sync"

	"vax780/internal/runlog"
)

// SSEMux routes Server-Sent-Event subscribers to per-key live event
// buses. The zero value is not usable; call NewSSEMux.
type SSEMux struct {
	mu    sync.RWMutex
	buses map[string]*runlog.Bus
}

// NewSSEMux returns an empty mux.
func NewSSEMux() *SSEMux {
	return &SSEMux{buses: make(map[string]*runlog.Bus)}
}

// Attach registers (or replaces) the bus served under key.
func (m *SSEMux) Attach(key string, bus *runlog.Bus) {
	m.mu.Lock()
	m.buses[key] = bus
	m.mu.Unlock()
}

// Detach removes the bus under key. Streams already subscribed keep
// draining the bus; new subscribers get 404.
func (m *SSEMux) Detach(key string) {
	m.mu.Lock()
	delete(m.buses, key)
	m.mu.Unlock()
}

// Lookup returns the bus under key, if attached.
func (m *SSEMux) Lookup(key string) (*runlog.Bus, bool) {
	m.mu.RLock()
	b, ok := m.buses[key]
	m.mu.RUnlock()
	return b, ok
}

// ServeKey streams the bus registered under key as SSE, or 404s.
func (m *SSEMux) ServeKey(w http.ResponseWriter, r *http.Request, key string) {
	bus, ok := m.Lookup(key)
	if !ok {
		http.Error(w, "no event stream under that key", http.StatusNotFound)
		return
	}
	ServeBus(w, r, bus)
}
