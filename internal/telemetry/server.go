// The live HTTP monitor: Prometheus-text /metrics, expvar, net/http/pprof,
// and a mirror of the histogram board's Unibus control path — the
// start/stop/clear/read register sequence of §2.2 — as /board endpoints.

package telemetry

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync/atomic"

	"vax780/internal/upc"
)

var errTraceDisabled = errors.New("telemetry: tracing not enabled")

// liveTel is the telemetry instance behind the process-wide expvar
// export (expvar's registry is global, so the publication happens once).
var liveTel atomic.Pointer[Telemetry]

var publishExpvar = func() func() {
	var done atomic.Bool
	return func() {
		if done.Swap(true) {
			return
		}
		expvar.Publish("vax780", expvar.Func(func() any {
			t := liveTel.Load()
			if t == nil {
				return nil
			}
			return t.counterMap()
		}))
	}
}()

// counterMap snapshots the live counters into an ordered-key map.
func (t *Telemetry) counterMap() map[string]any {
	return map[string]any{
		"cycles":           t.C.Cycles.Load(),
		"stall_cycles":     t.C.StallCycles.Load(),
		"instructions":     t.C.Instrs.Load(),
		"cpi":              t.C.CPI(),
		"cache_miss_d":     t.C.CacheMissD.Load(),
		"cache_miss_i":     t.C.CacheMissI.Load(),
		"tb_miss_d":        t.C.TBMissD.Load(),
		"tb_miss_i":        t.C.TBMissI.Load(),
		"ib_refills":       t.C.IBRefills.Load(),
		"interrupts":       t.C.Interrupts.Load(),
		"context_switches": t.C.CtxSwitches.Load(),
		"intervals":        t.C.Intervals.Load(),
	}
}

// Handler returns the monitor's HTTP handler:
//
//	/metrics            Prometheus text exposition of the live counters
//	/debug/vars         expvar (including the "vax780" counter map)
//	/debug/pprof/...    net/http/pprof profiles of the running simulator
//	/board/start        request collection start (Unibus CSR run bit)
//	/board/stop         request collection stop
//	/board/clear        request bucket clear
//	/board/csr          board status (running, saturated, snapshot cycle)
//	/board/read?addr=N  read one bucket from the latest published snapshot
//	/board/read?hot=N   read the N hottest buckets
//	/events             server-sent event stream of interval snapshots
//	/progress           fleet progress JSON (per-workload completion)
//	/prof               latest host-time profile (sampling engine) JSON
//
// Board commands are applied by the simulation goroutine at its next
// cycle, mirroring how Unibus register writes reached the real board
// asynchronously to the measured system.
func (t *Telemetry) Handler() http.Handler {
	liveTel.Store(t)
	t.watched.Store(true)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, cmd := range []string{"start", "stop", "clear"} {
		cmd := cmd
		mux.HandleFunc("/board/"+cmd, func(w http.ResponseWriter, r *http.Request) {
			if err := t.Command(cmd); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "%s requested; applied at the next simulated cycle\n", cmd)
		})
	}
	mux.HandleFunc("/board/csr", t.serveCSR)
	mux.HandleFunc("/board/read", t.serveRead)
	mux.HandleFunc("/events", t.serveEvents)
	mux.HandleFunc("/progress", t.serveProgress)
	mux.HandleFunc("/prof", t.serveProf)
	return mux
}

// serveMetrics writes the Prometheus text exposition format.
func (t *Telemetry) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("vax780_cycles_total", "simulated 200ns EBOX cycles", t.C.Cycles.Load())
	counter("vax780_stall_cycles_total", "read- and write-stalled cycles", t.C.StallCycles.Load())
	counter("vax780_instructions_total", "decoded VAX instructions", t.C.Instrs.Load())
	fmt.Fprintf(w, "# HELP vax780_cache_miss_total cache read misses by stream\n"+
		"# TYPE vax780_cache_miss_total counter\n"+
		"vax780_cache_miss_total{stream=\"d\"} %d\n"+
		"vax780_cache_miss_total{stream=\"i\"} %d\n",
		t.C.CacheMissD.Load(), t.C.CacheMissI.Load())
	fmt.Fprintf(w, "# HELP vax780_tb_miss_total translation-buffer misses by stream\n"+
		"# TYPE vax780_tb_miss_total counter\n"+
		"vax780_tb_miss_total{stream=\"d\"} %d\n"+
		"vax780_tb_miss_total{stream=\"i\"} %d\n",
		t.C.TBMissD.Load(), t.C.TBMissI.Load())
	counter("vax780_ib_refills_total", "IB refill references", t.C.IBRefills.Load())
	counter("vax780_interrupts_total", "interrupt deliveries", t.C.Interrupts.Load())
	counter("vax780_context_switches_total", "context switches", t.C.CtxSwitches.Load())
	counter("vax780_intervals_total", "recorder intervals rolled", t.C.Intervals.Load())
	gauge("vax780_cpi", "cycles per instruction so far", t.C.CPI())
	status := t.Status()
	running, saturated := 0.0, 0.0
	if status&StatusRunning != 0 {
		running = 1
	}
	if status&StatusSaturated != 0 {
		saturated = 1
	}
	gauge("vax780_board_running", "UPC board collecting (CSR run bit)", running)
	gauge("vax780_board_saturated", "a board counter saturated (CSR sat bit)", saturated)
	t.writeHostMetrics(w)
}

// serveCSR reports the board status the way a CSR read would.
func (t *Telemetry) serveCSR(w http.ResponseWriter, r *http.Request) {
	status := t.Status()
	cycle, h := t.Snapshot()
	resp := map[string]any{
		"running":        status&StatusRunning != 0,
		"saturated":      status&StatusSaturated != 0,
		"snapshot_cycle": cycle,
		"has_snapshot":   h != nil,
		"pending_cmd":    t.cmd.Load(),
	}
	writeJSON(w, resp)
}

// serveRead reads buckets from the latest published snapshot — the
// Unibus address/data register read sequence over HTTP.
func (t *Telemetry) serveRead(w http.ResponseWriter, r *http.Request) {
	cycle, h := t.Snapshot()
	if h == nil {
		http.Error(w, "no snapshot published yet (wait for an interval boundary or issue a board command)",
			http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	if hot := q.Get("hot"); hot != "" {
		n, err := strconv.Atoi(hot)
		if err != nil || n <= 0 {
			http.Error(w, "bad hot count", http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{
			"snapshot_cycle": cycle,
			"buckets":        hotBuckets(h, n),
		})
		return
	}
	addr, err := strconv.ParseUint(q.Get("addr"), 0, 16)
	if err != nil {
		http.Error(w, "addr or hot query parameter required", http.StatusBadRequest)
		return
	}
	n, s := h.At(uint16(addr) % upc.Buckets)
	writeJSON(w, map[string]any{
		"snapshot_cycle": cycle,
		"addr":           addr,
		"normal":         n,
		"stalled":        s,
	})
}

// bucketCount is one bucket of a /board/read?hot=N response.
type bucketCount struct {
	Addr    uint16 `json:"addr"`
	Normal  uint64 `json:"normal"`
	Stalled uint64 `json:"stalled"`
}

func hotBuckets(h *upc.Histogram, n int) []bucketCount {
	all := make([]bucketCount, 0, 64)
	for a := 0; a < upc.Buckets; a++ {
		nm, st := h.At(uint16(a))
		if nm+st > 0 {
			all = append(all, bucketCount{Addr: uint16(a), Normal: nm, Stalled: st})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].Normal+all[i].Stalled > all[j].Normal+all[j].Stalled
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
