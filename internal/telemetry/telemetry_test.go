// External test package: the telemetry layer is exercised through real
// machine runs (machine imports only the probe interfaces, so this
// direction is cycle-free).
package telemetry_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"vax780/internal/machine"
	"vax780/internal/mem"
	"vax780/internal/telemetry"
	"vax780/internal/upc"
	"vax780/internal/workload"
)

// runInstrumented executes one generated workload on a machine with the
// given telemetry layer attached and returns the machine and monitor.
func runInstrumented(t *testing.T, tel *telemetry.Telemetry, instrs int) (*machine.Machine, *upc.Monitor) {
	t.Helper()
	tr, err := workload.Generate(workload.TimesharingA(instrs))
	if err != nil {
		t.Fatal(err)
	}
	mon := upc.New()
	mon.Start()
	m := machine.New(machine.Config{
		Mem:       mem.Config{},
		Monitor:   mon,
		Telemetry: tel,
	}, tr.Program)
	if err := m.Run(tr.Stream()); err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	return m, mon
}

func TestCountersMatchMachine(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM()})
	m, _ := runInstrumented(t, tel, 3000)
	tel.Finish()

	c := &tel.C
	if got, want := c.Cycles.Load(), m.E.Now; got != want {
		t.Errorf("Cycles = %d, want machine's %d", got, want)
	}
	if got, want := c.Instrs.Load(), m.Stats.Instrs; got != want {
		t.Errorf("Instrs = %d, want machine's %d", got, want)
	}
	st := m.Mem.Stats
	if got, want := c.CacheMissD.Load(), st.DReadMisses+st.PTEReadMisses; got != want {
		t.Errorf("CacheMissD = %d, want %d (DReadMisses+PTEReadMisses)", got, want)
	}
	if got, want := c.CacheMissI.Load(), st.IReadMisses; got != want {
		t.Errorf("CacheMissI = %d, want %d", got, want)
	}
	if got, want := c.TBMissD.Load(), st.DTBMisses; got != want {
		t.Errorf("TBMissD = %d, want %d", got, want)
	}
	if got, want := c.TBMissI.Load(), st.ITBMisses; got != want {
		t.Errorf("TBMissI = %d, want %d", got, want)
	}
	if got, want := c.IBRefills.Load(), m.IB.Refs; got != want {
		t.Errorf("IBRefills = %d, want %d", got, want)
	}
	if got, want := c.Interrupts.Load(), m.Stats.Interrupts; got != want {
		t.Errorf("Interrupts = %d, want %d", got, want)
	}
	if got, want := c.StallCycles.Load(), st.ReadStall+st.WriteStall; got != want {
		t.Errorf("StallCycles = %d, want %d (ReadStall+WriteStall)", got, want)
	}
	if cpi := c.CPI(); cpi < 1 || cpi > 100 {
		t.Errorf("CPI = %g, implausible", cpi)
	}
}

func TestIntervalSumsEqualHistogram(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), IntervalCycles: 1000})
	m, mon := runInstrumented(t, tel, 3000)
	tel.Finish()

	rec := tel.Recorder()
	if rec == nil {
		t.Fatal("recorder not enabled")
	}
	if len(rec.Intervals()) < 2 {
		t.Fatalf("only %d intervals recorded", len(rec.Intervals()))
	}
	// The acceptance invariant: summed interval cycles equal the final
	// histogram's total cycles.
	if got, want := rec.TotalCycles(), mon.Snapshot().TotalCycles(); got != want {
		t.Errorf("interval cycle sum = %d, histogram total = %d", got, want)
	}
	// The hardware-counter deltas recompose to the run totals.
	if got := rec.CompositeStats(); got != m.Mem.Stats {
		t.Errorf("composite stats mismatch:\n got %+v\nwant %+v", got, m.Mem.Stats)
	}
	// Interval boundaries are contiguous and instruction deltas sum up.
	var prevEnd, instrs uint64
	for i, iv := range rec.Intervals() {
		if iv.StartCycle != prevEnd {
			t.Errorf("interval %d starts at %d, previous ended at %d", i, iv.StartCycle, prevEnd)
		}
		if iv.EndCycle <= iv.StartCycle {
			t.Errorf("interval %d is empty [%d,%d)", i, iv.StartCycle, iv.EndCycle)
		}
		prevEnd = iv.EndCycle
		instrs += iv.Instrs
	}
	if instrs != m.Stats.Instrs {
		t.Errorf("interval instruction sum = %d, machine ran %d", instrs, m.Stats.Instrs)
	}
}

func TestBindContinuesTimeline(t *testing.T) {
	// Two sequential machines on one telemetry layer: the paper's board
	// stayed attached across experiments. The combined interval series
	// must cover both runs with a continuous cycle axis.
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), IntervalCycles: 1000})
	m1, mon1 := runInstrumented(t, tel, 1500)
	m2, mon2 := runInstrumented(t, tel, 1500)
	tel.Finish()

	if got, want := tel.C.Cycles.Load(), m1.E.Now+m2.E.Now; got != want {
		t.Errorf("Cycles = %d, want %d across two machines", got, want)
	}
	rec := tel.Recorder()
	total := mon1.Snapshot().TotalCycles() + mon2.Snapshot().TotalCycles()
	if got := rec.TotalCycles(); got != total {
		t.Errorf("interval cycle sum = %d, summed histograms = %d", got, total)
	}
	var prevEnd uint64
	for i, iv := range rec.Intervals() {
		if iv.StartCycle < prevEnd {
			t.Errorf("interval %d rewinds the timeline: start %d < previous end %d",
				i, iv.StartCycle, prevEnd)
		}
		prevEnd = iv.EndCycle
	}
}

func TestRowsAndExports(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), IntervalCycles: 1000})
	m, _ := runInstrumented(t, tel, 3000)

	rows := tel.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var cycles, instrs uint64
	for i, r := range rows {
		if r.Index != i {
			t.Errorf("row %d has index %d", i, r.Index)
		}
		cycles += r.Cycles
		instrs += r.Instructions
		perClass := r.Compute + r.Read + r.ReadStall + r.Write + r.WriteStall + r.IBStall
		if r.CPI > 0 && (perClass < r.CPI*0.99 || perClass > r.CPI*1.01) {
			t.Errorf("row %d: per-class sum %.4f != CPI %.4f", i, perClass, r.CPI)
		}
	}
	if cycles != m.E.Now {
		t.Errorf("row cycle sum = %d, machine ran %d", cycles, m.E.Now)
	}
	// The histogram counts instructions at the IRD microinstruction; the
	// machine counts decode events — identical on an unperturbed run.
	if instrs != m.Stats.Instrs {
		t.Errorf("row instruction sum = %d, machine ran %d", instrs, m.Stats.Instrs)
	}

	var csv bytes.Buffer
	if err := tel.WriteIntervalsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), len(rows))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Errorf("CSV line %d has %d fields, header has %d", i, got, wantCols)
		}
	}

	var jsonBuf bytes.Buffer
	if err := tel.WriteIntervalsJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("interval JSON does not parse: %v", err)
	}
	if len(decoded) != len(rows) {
		t.Errorf("JSON has %d rows, want %d", len(decoded), len(rows))
	}
}

func TestTraceIsValidTraceEventJSON(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), TraceMaxEvents: 50000})
	m, _ := runInstrumented(t, tel, 500)
	tel.Finish()

	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{}
	var lastEnd float64
	for _, ev := range tf.TraceEvents {
		phases[ev.Ph] = true
		switch ev.Ph {
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %g", ev.Name, ev.Dur)
			}
			if end := ev.Ts + ev.Dur; end > lastEnd {
				lastEnd = end
			}
		case "M", "i", "I":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if !phases["X"] || !phases["M"] {
		t.Errorf("trace lacks slices or metadata: phases %v", phases)
	}
	// Timestamps are microseconds at 200 ns per cycle: the last slice
	// ends at 0.2 µs × total cycles.
	if want := float64(m.E.Now) * 0.2; lastEnd < want*0.9 || lastEnd > want*1.1 {
		t.Errorf("trace ends at %.1f µs, machine ran %.1f µs", lastEnd, want)
	}
}

func TestTraceRespectsEventCap(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), TraceMaxEvents: 100})
	runInstrumented(t, tel, 2000)
	tel.Finish()

	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]any    `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	// The cap bounds retained events (metadata records ride on top).
	if len(tf.TraceEvents) > 120 {
		t.Errorf("cap 100 retained %d events", len(tf.TraceEvents))
	}
	if tf.OtherData["truncated"] != true {
		t.Error("truncated dump not flagged in otherData")
	}
}

func TestWriteTraceDisabled(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM()})
	if err := tel.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteTrace with tracing disabled should error")
	}
}

func TestBoardCommands(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM()})
	if err := tel.Command("bogus"); err == nil {
		t.Error("unknown command accepted")
	}

	mon := upc.New()
	mon.Start()
	var st mem.Stats
	tel.Bind(mon, &st)

	// A pending stop is applied at the next simulated cycle, not
	// immediately — the Unibus write semantics.
	if err := tel.Command("stop"); err != nil {
		t.Fatal(err)
	}
	if !mon.Running() {
		t.Fatal("command applied before a cycle ran")
	}
	tel.Cycle(0, 0x10, false)
	if mon.Running() {
		t.Error("stop command not applied on the next cycle")
	}
	if tel.Status()&telemetry.StatusRunning != 0 {
		t.Error("published status still shows running")
	}
	// Applying a command publishes a readable snapshot.
	if _, h := tel.Snapshot(); h == nil {
		t.Error("no snapshot published after a board command")
	}

	tel.Command("clear")
	tel.Command("start")
	tel.Cycle(1, 0x10, false)
	if !mon.Running() {
		t.Error("start command not applied")
	}
	if n, s := mon.Read(0x10); n != 0 || s != 0 {
		t.Errorf("clear command did not clear: bucket 0x10 = %d/%d", n, s)
	}
}

func TestServerEndpoints(t *testing.T) {
	tel := telemetry.New(telemetry.Options{ROM: machine.ROM(), IntervalCycles: 500})
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	// Before any published snapshot, /board/read is unavailable.
	if got := get(t, srv.URL+"/board/read?addr=1").code; got != 503 {
		t.Errorf("/board/read before snapshot: status %d, want 503", got)
	}

	runInstrumented(t, tel, 2000)
	tel.Finish()

	metrics := get(t, srv.URL+"/metrics")
	if metrics.code != 200 {
		t.Fatalf("/metrics status %d", metrics.code)
	}
	for _, want := range []string{
		"# TYPE vax780_cycles_total counter",
		"# TYPE vax780_cpi gauge",
		`vax780_cache_miss_total{stream="d"}`,
		"vax780_intervals_total",
	} {
		if !strings.Contains(metrics.body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	vars := get(t, srv.URL+"/debug/vars")
	if vars.code != 200 || !strings.Contains(vars.body, `"vax780"`) {
		t.Errorf("/debug/vars status %d, vax780 map present: %v",
			vars.code, strings.Contains(vars.body, `"vax780"`))
	}

	pprofIdx := get(t, srv.URL+"/debug/pprof/")
	if pprofIdx.code != 200 {
		t.Errorf("/debug/pprof/ status %d", pprofIdx.code)
	}

	csr := get(t, srv.URL+"/board/csr")
	if csr.code != 200 {
		t.Fatalf("/board/csr status %d", csr.code)
	}
	var csrResp map[string]any
	if err := json.Unmarshal([]byte(csr.body), &csrResp); err != nil {
		t.Fatalf("/board/csr is not JSON: %v", err)
	}
	if csrResp["has_snapshot"] != true {
		t.Error("/board/csr reports no snapshot after a recorded run")
	}

	read := get(t, srv.URL+"/board/read?hot=5")
	if read.code != 200 {
		t.Fatalf("/board/read?hot=5 status %d", read.code)
	}
	var hotResp struct {
		Buckets []struct {
			Addr   int    `json:"addr"`
			Normal uint64 `json:"normal"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(read.body), &hotResp); err != nil {
		t.Fatal(err)
	}
	if len(hotResp.Buckets) != 5 {
		t.Errorf("hot=5 returned %d buckets", len(hotResp.Buckets))
	}

	// Single-bucket read of the hottest location agrees with the list.
	if len(hotResp.Buckets) > 0 {
		one := get(t, srv.URL+"/board/read?addr="+strconv.Itoa(hotResp.Buckets[0].Addr))
		if one.code != 200 || !strings.Contains(one.body, `"normal"`) {
			t.Errorf("/board/read?addr status %d body %q", one.code, one.body)
		}
	}

	// Board command endpoints accept and defer.
	if got := get(t, srv.URL+"/board/stop").code; got != 202 {
		t.Errorf("/board/stop status %d, want 202", got)
	}
}

type resp struct {
	code int
	body string
}

func get(t *testing.T, url string) resp {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp{code: r.StatusCode, body: string(body)}
}
