// The interval recorder: the extension the paper's §2.2 names as a
// limitation of its averages-only reduction ("no measures of the
// variation of the statistics during the measurement are collected").
// Every N cycles it snapshots the UPC histogram and the hardware event
// counters, producing a time series of per-interval CPI decompositions.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"vax780/internal/analysis"
	"vax780/internal/mem"
	"vax780/internal/upc"
)

// Interval is one recorded measurement interval: the histogram and
// hardware-counter deltas accumulated between two snapshots.
type Interval struct {
	StartCycle uint64 // absolute telemetry cycle, inclusive
	EndCycle   uint64 // exclusive
	Hist       *upc.Histogram
	Stats      mem.Stats
	Instrs     uint64 // decode events in the interval
}

// Recorder snapshots the bound monitor and memory counters on a fixed
// cycle period. It lives entirely on the simulation goroutine; the
// recorded series is read after the run (or through published board
// snapshots while it executes).
type Recorder struct {
	period uint64
	nextAt uint64
	start  uint64 // current interval start (absolute cycle)

	mon   *upc.Monitor
	stats *mem.Stats

	prevHist   *upc.Histogram
	prevStats  mem.Stats
	prevInstrs uint64

	intervals []Interval
}

func newRecorder(period uint64) *Recorder {
	return &Recorder{period: period, nextAt: period}
}

// rebind points the recorder at a fresh machine's monitor and counters;
// the previous machine's partial interval must already be flushed.
func (r *Recorder) rebind(mon *upc.Monitor, stats *mem.Stats, abs uint64) {
	r.mon = mon
	r.stats = stats
	r.prevHist = &upc.Histogram{}
	r.prevStats = mem.Stats{}
	r.start = abs
	r.nextAt = abs + r.period
}

// cycle is the per-cycle hook: roll an interval when the period elapses.
func (r *Recorder) cycle(t *Telemetry, abs uint64) {
	if abs+1 >= r.nextAt {
		r.roll(t, abs+1)
		r.nextAt += r.period
	}
}

// quiet returns how many consecutive cycles starting at absolute cycle
// abs can elapse before the next interval boundary: a cycle at c is
// boundary-free iff c+1 < nextAt, so a run of k cycles from abs is
// quiet iff k <= nextAt-1-abs. The superword replay path uses this to
// bulk-apply spans that provably contain no roll.
func (r *Recorder) quiet(abs uint64) int {
	if abs+1 >= r.nextAt {
		return 0
	}
	q := r.nextAt - 1 - abs
	if q > 1<<30 {
		q = 1 << 30
	}
	return int(q)
}

// flush closes a trailing partial interval (end of a machine or run).
func (r *Recorder) flush(t *Telemetry, abs uint64) {
	if r.mon != nil && abs > r.start {
		r.roll(t, abs)
	}
}

// roll records the delta since the previous snapshot as one interval
// ending at absolute cycle end (exclusive).
func (r *Recorder) roll(t *Telemetry, end uint64) {
	if r.mon == nil || end <= r.start {
		return
	}
	var delta *upc.Histogram
	watched := t.watched.Load()
	if watched {
		// An HTTP view is attached: dump the full board once and derive
		// the interval delta from it, so the dump can be published as an
		// immutable snapshot.
		cur := r.mon.Snapshot()
		delta = cur.Diff(r.prevHist)
		r.prevHist = cur
	} else {
		// Headless: one fused pass computes the delta and advances the
		// previous-counts buffer in place; nothing is published because
		// nothing can read it. end bounds the pulses delivered since the
		// board was cleared, letting the dump skip the saturation scan.
		delta = r.mon.SnapshotDelta(r.prevHist, end)
	}

	// Stats delta: subtract the previous snapshot from a copy of the
	// live counters (Stats.Add is the inverse used when compositing).
	st := *r.stats
	st.Sub(&r.prevStats)

	instrs := t.C.Instrs.Load()
	r.intervals = append(r.intervals, Interval{
		StartCycle: r.start,
		EndCycle:   end,
		Hist:       delta,
		Stats:      st,
		Instrs:     instrs - r.prevInstrs,
	})
	r.prevStats = *r.stats
	r.prevInstrs = instrs
	r.start = end
	t.C.Intervals.Add(1)
	if watched {
		// Publish the snapshot already taken for the delta instead of
		// dumping the board a second time.
		t.publishHist(end, r.prevHist)
	}
}

// absorb appends a finished child recorder's intervals, shifted onto
// the parent timeline. The shift is exact: interval boundaries are
// integer cycles, and the child recorded from cycle 0 with the same
// period, so its boundaries land where a sequential recorder (rebound
// at the shift) would have rolled.
func (r *Recorder) absorb(child *Recorder, shift uint64) {
	for _, iv := range child.intervals {
		iv.StartCycle += shift
		iv.EndCycle += shift
		r.intervals = append(r.intervals, iv)
	}
}

// Intervals returns the recorded series. Only valid once the run has
// finished (after Telemetry.Finish).
func (r *Recorder) Intervals() []Interval { return r.intervals }

// TotalCycles sums every interval's histogram cycles; on an uncleared
// monitor this equals the final composite histogram's total cycles.
func (r *Recorder) TotalCycles() uint64 {
	var n uint64
	for _, iv := range r.intervals {
		n += iv.Hist.TotalCycles()
	}
	return n
}

// CompositeStats sums the per-interval hardware-counter deltas back
// into run totals, reusing the mem.Stats accumulation the composite
// reduction uses.
func (r *Recorder) CompositeStats() mem.Stats {
	var st mem.Stats
	for i := range r.intervals {
		st.Add(&r.intervals[i].Stats)
	}
	return st
}

// IntervalRow is one exported row of the time series: the interval's
// identity, its CPI decomposition by cycle class, and the hardware
// event deltas.
type IntervalRow struct {
	Index        int     `json:"index"`
	StartCycle   uint64  `json:"start_cycle"`
	EndCycle     uint64  `json:"end_cycle"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`

	// Cycles per instruction by cycle class (Table 8 columns).
	Compute    float64 `json:"compute"`
	Read       float64 `json:"read"`
	ReadStall  float64 `json:"read_stall"`
	Write      float64 `json:"write"`
	WriteStall float64 `json:"write_stall"`
	IBStall    float64 `json:"ib_stall"`

	SimplePct float64 `json:"simple_pct"`

	// Hardware event deltas.
	CacheMissD uint64 `json:"cache_miss_d"`
	CacheMissI uint64 `json:"cache_miss_i"`
	TBMissD    uint64 `json:"tb_miss_d"`
	TBMissI    uint64 `json:"tb_miss_i"`
}

// Rows reduces the recorded series into exportable rows using the
// per-interval CPI decomposition of the analysis package.
func (t *Telemetry) Rows() []IntervalRow {
	t.Finish()
	if t.rec == nil || t.rom == nil {
		return nil
	}
	ivs := t.rec.intervals
	hists := make([]*upc.Histogram, len(ivs))
	for i := range ivs {
		hists[i] = ivs[i].Hist
	}
	decomp := analysis.DecomposeIntervals(t.rom, hists)
	rows := make([]IntervalRow, len(ivs))
	for i := range ivs {
		d := decomp[i]
		rows[i] = IntervalRow{
			Index:        i,
			StartCycle:   ivs[i].StartCycle,
			EndCycle:     ivs[i].EndCycle,
			Instructions: d.Instructions,
			Cycles:       d.Cycles,
			CPI:          d.CPI,
			Compute:      d.Compute(),
			Read:         d.Read(),
			ReadStall:    d.ReadStall(),
			Write:        d.Write(),
			WriteStall:   d.WriteStall(),
			IBStall:      d.IBStall(),
			SimplePct:    d.SimplePct,
			CacheMissD:   ivs[i].Stats.DReadMisses,
			CacheMissI:   ivs[i].Stats.IReadMisses,
			TBMissD:      ivs[i].Stats.DTBMisses,
			TBMissI:      ivs[i].Stats.ITBMisses,
		}
	}
	return rows
}

// WriteIntervalsCSV writes the time series as CSV.
func (t *Telemetry) WriteIntervalsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "interval,start_cycle,end_cycle,instructions,cycles,cpi,"+
		"compute,read,read_stall,write,write_stall,ib_stall,simple_pct,"+
		"cache_miss_d,cache_miss_i,tb_miss_d,tb_miss_i"); err != nil {
		return err
	}
	for _, r := range t.Rows() {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f,%d,%d,%d,%d\n",
			r.Index, r.StartCycle, r.EndCycle, r.Instructions, r.Cycles, r.CPI,
			r.Compute, r.Read, r.ReadStall, r.Write, r.WriteStall, r.IBStall,
			r.SimplePct, r.CacheMissD, r.CacheMissI, r.TBMissD, r.TBMissI)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteIntervalsJSON writes the time series as a JSON array.
func (t *Telemetry) WriteIntervalsJSON(w io.Writer) error {
	rows := t.Rows()
	if rows == nil {
		rows = []IntervalRow{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
