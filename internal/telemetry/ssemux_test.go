package telemetry_test

// Tests of the per-job SSE mux: streams route by key with the same
// plumbing as /events, unknown keys 404, and detaching a key stops new
// subscriptions without cutting streams already draining the bus.

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"vax780/internal/runlog"
	"vax780/internal/telemetry"
)

func muxServer(t *testing.T, mux *telemetry.SSEMux) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeKey(w, r, r.URL.Query().Get("id"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestSSEMuxUnknownKey404s(t *testing.T) {
	srv := muxServer(t, telemetry.NewSSEMux())
	resp, err := http.Get(srv.URL + "?id=j-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSSEMuxRoutesPerKey(t *testing.T) {
	mux := telemetry.NewSSEMux()
	busA, busB := runlog.NewBus(), runlog.NewBus()
	mux.Attach("job-a", busA)
	mux.Attach("job-b", busB)
	srv := muxServer(t, mux)

	respA, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()
	respB, err := http.Get(srv.URL + "?id=job-b")
	if err != nil {
		t.Fatal(err)
	}
	defer respB.Body.Close()

	// Each bus reaches exactly its own stream.
	busA.Publish(runlog.WlStartEvent("A-ONLY", 0, 100))
	busB.Publish(runlog.WlDoneEvent("B-ONLY", 0, 100, 1000, 10, 0, false))

	fa := readFrames(t, bufio.NewReader(respA.Body), 1)
	if fa[0].Type != runlog.EvWlStart || fa[0].Data["workload"] != "A-ONLY" {
		t.Fatalf("stream A got %+v", fa[0])
	}
	fb := readFrames(t, bufio.NewReader(respB.Body), 1)
	if fb[0].Type != runlog.EvWlDone || fb[0].Data["workload"] != "B-ONLY" {
		t.Fatalf("stream B got %+v", fb[0])
	}
}

func TestSSEMuxDetach(t *testing.T) {
	mux := telemetry.NewSSEMux()
	bus := runlog.NewBus()
	mux.Attach("job-a", bus)
	srv := muxServer(t, mux)

	// Subscribe while attached; the stream must survive a Detach.
	resp, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	mux.Detach("job-a")
	if _, ok := mux.Lookup("job-a"); ok {
		t.Fatal("Lookup after Detach = true")
	}
	late, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	late.Body.Close()
	if late.StatusCode != http.StatusNotFound {
		t.Fatalf("post-detach subscribe: status %d, want 404", late.StatusCode)
	}

	bus.Publish(runlog.WlStartEvent("STILL-LIVE", 0, 100))
	frames := readFrames(t, bufio.NewReader(resp.Body), 1)
	if frames[0].Data["workload"] != "STILL-LIVE" {
		t.Fatalf("pre-detach stream got %+v", frames[0])
	}
}

// TestSSEMuxSubscriberChurnNoLeak hammers one bus with subscribers
// that connect, read a frame, and disconnect mid-stream while a
// publisher keeps the bus busy. Every subscription and its handler
// goroutine must be reclaimed: the bus's subscriber count returns to
// zero and the process goroutine count returns to its baseline. Run
// under -race (the CI race job covers this package) it also proves the
// subscribe/publish/cancel paths are data-race free.
func TestSSEMuxSubscriberChurnNoLeak(t *testing.T) {
	mux := telemetry.NewSSEMux()
	bus := runlog.NewBus()
	mux.Attach("job-a", bus)
	srv := muxServer(t, mux)

	baseline := runtime.NumGoroutine()

	stop := make(chan struct{})
	var pub sync.WaitGroup
	pub.Add(1)
	go func() {
		defer pub.Done()
		for {
			select {
			case <-stop:
				return
			default:
				bus.Publish(runlog.WlStartEvent("CHURN", 0, 100))
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const clients, rounds = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(srv.URL + "?id=job-a")
				if err != nil {
					t.Error(err)
					return
				}
				// Read one frame so the stream is provably live, then
				// abandon it mid-job.
				buf := make([]byte, 256)
				if _, err := resp.Body.Read(buf); err != nil {
					t.Errorf("round %d: %v", i, err)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	pub.Wait()

	// Disconnected subscribers unwind asynchronously (the handler sees
	// the closed connection at its next write or context poll).
	deadline := time.Now().Add(30 * time.Second)
	for bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bus still has %d subscribers after churn", bus.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
