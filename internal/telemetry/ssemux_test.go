package telemetry_test

// Tests of the per-job SSE mux: streams route by key with the same
// plumbing as /events, unknown keys 404, and detaching a key stops new
// subscriptions without cutting streams already draining the bus.

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"testing"

	"vax780/internal/runlog"
	"vax780/internal/telemetry"
)

func muxServer(t *testing.T, mux *telemetry.SSEMux) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeKey(w, r, r.URL.Query().Get("id"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestSSEMuxUnknownKey404s(t *testing.T) {
	srv := muxServer(t, telemetry.NewSSEMux())
	resp, err := http.Get(srv.URL + "?id=j-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSSEMuxRoutesPerKey(t *testing.T) {
	mux := telemetry.NewSSEMux()
	busA, busB := runlog.NewBus(), runlog.NewBus()
	mux.Attach("job-a", busA)
	mux.Attach("job-b", busB)
	srv := muxServer(t, mux)

	respA, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()
	respB, err := http.Get(srv.URL + "?id=job-b")
	if err != nil {
		t.Fatal(err)
	}
	defer respB.Body.Close()

	// Each bus reaches exactly its own stream.
	busA.Publish(runlog.WlStartEvent("A-ONLY", 0, 100))
	busB.Publish(runlog.WlDoneEvent("B-ONLY", 0, 100, 1000, 10, 0, false))

	fa := readFrames(t, bufio.NewReader(respA.Body), 1)
	if fa[0].Type != runlog.EvWlStart || fa[0].Data["workload"] != "A-ONLY" {
		t.Fatalf("stream A got %+v", fa[0])
	}
	fb := readFrames(t, bufio.NewReader(respB.Body), 1)
	if fb[0].Type != runlog.EvWlDone || fb[0].Data["workload"] != "B-ONLY" {
		t.Fatalf("stream B got %+v", fb[0])
	}
}

func TestSSEMuxDetach(t *testing.T) {
	mux := telemetry.NewSSEMux()
	bus := runlog.NewBus()
	mux.Attach("job-a", bus)
	srv := muxServer(t, mux)

	// Subscribe while attached; the stream must survive a Detach.
	resp, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	mux.Detach("job-a")
	if _, ok := mux.Lookup("job-a"); ok {
		t.Fatal("Lookup after Detach = true")
	}
	late, err := http.Get(srv.URL + "?id=job-a")
	if err != nil {
		t.Fatal(err)
	}
	late.Body.Close()
	if late.StatusCode != http.StatusNotFound {
		t.Fatalf("post-detach subscribe: status %d, want 404", late.StatusCode)
	}

	bus.Publish(runlog.WlStartEvent("STILL-LIVE", 0, 100))
	frames := readFrames(t, bufio.NewReader(resp.Body), 1)
	if frames[0].Data["workload"] != "STILL-LIVE" {
		t.Fatalf("pre-detach stream got %+v", frames[0])
	}
}
