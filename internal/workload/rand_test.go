package workload

import "math/rand"

// newTestRand returns a deterministic rand for tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
