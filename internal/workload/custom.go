package workload

// CustomConfig scales the base (composite-calibrated) profile to build a
// user-defined workload: a downstream user's own "experiment" in the
// paper's methodology.
type CustomConfig struct {
	Name         string
	Seed         int64
	Instructions int
	Users        int

	// Multipliers on the base workload's content (1.0 or 0 = unchanged).
	FloatScale   float64 // floating point and integer multiply/divide
	CharScale    float64 // character string instructions
	DecimalScale float64 // packed decimal instructions
	ProcScale    float64 // CALLS/RET procedure linkage
	SyscallScale float64 // CHMK system services
	LoopScale    float64 // counted loops

	// IdleFraction injects the VMS Null process the paper deliberately
	// EXCLUDED (§2.2): branch-to-self idle loops awaiting an interrupt.
	// Nonzero values demonstrate the bias the exclusion avoids: idle
	// instructions are trivially cheap and flood the per-instruction
	// statistics in proportion to system idleness.
	IdleFraction float64

	// Locality overrides (0 = calibrated defaults).
	HotPages  int
	ColdPages int
	ColdFrac  float64

	// Event headway overrides in instructions (0 = Table 7 values).
	InterruptHeadway int
	CtxSwitchHeadway int
}

// scale applies a multiplier, treating 0 as "unchanged".
func scale(v *float64, s float64) {
	if s > 0 {
		*v *= s
	}
}

// Custom builds a Profile from the calibrated base and the given scales.
func Custom(c CustomConfig) Profile {
	p := baseProfile()
	p.Name = c.Name
	if p.Name == "" {
		p.Name = "CUSTOM"
	}
	p.Seed = c.Seed
	p.Instructions = c.Instructions
	if c.Users > 0 {
		p.Users = c.Users
	}
	scale(&p.Scalar.Float, c.FloatScale)
	scale(&p.Scalar.FloatMul, c.FloatScale)
	scale(&p.Scalar.IntMulDiv, c.FloatScale)
	scale(&p.Frag.Char, c.CharScale)
	scale(&p.Frag.Decimal, c.DecimalScale)
	scale(&p.Frag.Proc, c.ProcScale)
	scale(&p.Frag.Syscall, c.SyscallScale)
	scale(&p.Frag.Loop, c.LoopScale)
	p.IdleFraction = c.IdleFraction
	if c.HotPages > 0 {
		p.Data.HotPages = c.HotPages
	}
	if c.ColdPages > 0 {
		p.Data.ColdPages = c.ColdPages
	}
	if c.ColdFrac > 0 {
		p.Data.ColdFrac = c.ColdFrac
	}
	if c.InterruptHeadway > 0 {
		p.InterruptHeadway = c.InterruptHeadway
	}
	if c.CtxSwitchHeadway > 0 {
		p.CtxSwitchHeadway = c.CtxSwitchHeadway
	}
	return p
}
