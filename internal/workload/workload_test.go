package workload

import (
	"testing"

	"vax780/internal/vax"
)

func TestProgramPutAndRead(t *testing.T) {
	p := NewProgram()
	if err := p.Put(0x1000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if b, ok := p.Byte(0x1001); !ok || b != 2 {
		t.Errorf("Byte(0x1001) = %d,%v", b, ok)
	}
	if _, ok := p.Byte(0x2000); ok {
		t.Error("unmaterialized address reported ok")
	}
	// Idempotent re-put is fine.
	if err := p.Put(0x1000, []byte{1, 2, 3}); err != nil {
		t.Errorf("identical re-put failed: %v", err)
	}
	// Conflicting re-put is an error.
	if err := p.Put(0x1001, []byte{9}); err == nil {
		t.Error("conflicting put should fail")
	}
	if p.Bytes() != 3 {
		t.Errorf("Bytes = %d, want 3", p.Bytes())
	}
}

func TestProgramCrossesPages(t *testing.T) {
	p := NewProgram()
	if err := p.Put(510, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{1, 2, 3, 4} {
		if b, ok := p.Byte(uint32(510 + i)); !ok || b != want {
			t.Errorf("byte %d = %d,%v want %d", i, b, ok, want)
		}
	}
}

func TestSliceStream(t *testing.T) {
	items := []*Item{{Kind: KindInstr}, {Kind: KindInterrupt}}
	s := NewSliceStream(items)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	a, ok := s.Next()
	if !ok || a != items[0] {
		t.Error("first item wrong")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Error("stream did not end")
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Error("reset failed")
	}
}

func TestDataSpaceLocality(t *testing.T) {
	g := Generator{}
	_ = g
	d := NewDataSpace(newTestRand(), DataConfig{
		Base: 0x10000, HotPages: 4, ColdPages: 100, ColdFrac: 0.3,
	})
	hotHits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		a, _ := d.Scalar(4)
		if a >= 0x10000 && a < 0x10000+4*512 {
			hotHits++
		}
	}
	frac := float64(hotHits) / n
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("hot fraction = %.2f, want ≈0.7", frac)
	}
}

func TestDataSpaceUnaligned(t *testing.T) {
	d := NewDataSpace(newTestRand(), DataConfig{
		Base: 0x10000, HotPages: 4, ColdPages: 10, UnalignedProb: 0.1,
	})
	unaligned := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, u := d.Scalar(4); u {
			unaligned++
		}
	}
	frac := float64(unaligned) / n
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("unaligned fraction = %.3f, want ≈0.10", frac)
	}
	// Byte operands are never unaligned.
	for i := 0; i < 1000; i++ {
		if _, u := d.Scalar(1); u {
			t.Fatal("byte operand marked unaligned")
		}
	}
}

func TestDataSpaceStringsAdvance(t *testing.T) {
	d := NewDataSpace(newTestRand(), DataConfig{Base: 0x10000, HotPages: 4, ColdPages: 10})
	a := d.String(40)
	b := d.String(40)
	if b <= a {
		t.Errorf("string region did not advance: %#x then %#x", a, b)
	}
}

func TestGenerateSmallTrace(t *testing.T) {
	p := TimesharingA(3000)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Instructions(); got < 3000 {
		t.Errorf("generated %d instructions, want ≥3000", got)
	}
	if tr.Program.Bytes() == 0 {
		t.Error("no code materialized")
	}
	// Every instruction item must be decodable from the program image at
	// its PC and match its own encoding.
	checked := 0
	for _, it := range tr.Items {
		if it.Kind != KindInstr {
			continue
		}
		in := it.In
		enc := vax.Encode(nil, in)
		for i, want := range enc {
			got, ok := tr.Program.Byte(in.PC + uint32(i))
			if !ok || got != want {
				t.Fatalf("%s at %#x: image byte %d = %#x,%v want %#x",
					in.Op, in.PC, i, got, ok, want)
			}
		}
		checked++
		if checked > 500 {
			break
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TimesharingA(2000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TimesharingA(2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("non-deterministic: %d vs %d items", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i].Kind != b.Items[i].Kind {
			t.Fatalf("item %d kind differs", i)
		}
		if a.Items[i].Kind == KindInstr &&
			(a.Items[i].In.Op != b.Items[i].In.Op || a.Items[i].In.PC != b.Items[i].In.PC) {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestGenerateGroupMix(t *testing.T) {
	tr, err := Generate(TimesharingA(60000))
	if err != nil {
		t.Fatal(err)
	}
	var counts [vax.NumGroups]int
	total := 0
	for _, it := range tr.Items {
		if it.Kind != KindInstr {
			continue
		}
		counts[it.In.Info().Group]++
		total++
	}
	pct := func(g vax.Group) float64 { return 100 * float64(counts[g]) / float64(total) }

	// Paper Table 1 targets with generous tolerances (the calibration
	// test in the analysis package is stricter on the composite).
	checks := []struct {
		g      vax.Group
		lo, hi float64
	}{
		{vax.GroupSimple, 76, 90},
		{vax.GroupField, 4, 10},
		{vax.GroupFloat, 1.5, 7},
		{vax.GroupCallRet, 1.5, 6},
		{vax.GroupSystem, 1, 5},
		{vax.GroupCharacter, 0.1, 1.5},
		{vax.GroupDecimal, 0.005, 0.3},
	}
	for _, c := range checks {
		if p := pct(c.g); p < c.lo || p > c.hi {
			t.Errorf("%v = %.2f%%, want [%.1f, %.1f]", c.g, p, c.lo, c.hi)
		}
	}
}

func TestGeneratePCChanging(t *testing.T) {
	tr, err := Generate(TimesharingA(60000))
	if err != nil {
		t.Fatal(err)
	}
	pcChanging, taken, total := 0, 0, 0
	loopBr, loopTaken := 0, 0
	for _, it := range tr.Items {
		if it.Kind != KindInstr {
			continue
		}
		total++
		cls := it.In.Info().PCClass
		if cls == vax.PCNone {
			continue
		}
		pcChanging++
		if it.In.Taken {
			taken++
		}
		if cls == vax.PCLoop {
			loopBr++
			if it.In.Taken {
				loopTaken++
			}
		}
	}
	pcFrac := 100 * float64(pcChanging) / float64(total)
	if pcFrac < 30 || pcFrac > 48 {
		t.Errorf("PC-changing = %.1f%%, paper says 38.5%%", pcFrac)
	}
	takenFrac := 100 * float64(taken) / float64(pcChanging)
	if takenFrac < 55 || takenFrac > 80 {
		t.Errorf("taken fraction = %.1f%%, paper says 67%%", takenFrac)
	}
	if loopBr > 0 {
		lt := 100 * float64(loopTaken) / float64(loopBr)
		if lt < 82 || lt > 97 {
			t.Errorf("loop taken = %.1f%%, paper says 91%%", lt)
		}
	}
}

func TestGenerateSpecifierStats(t *testing.T) {
	tr, err := Generate(TimesharingA(60000))
	if err != nil {
		t.Fatal(err)
	}
	specs, disps, instrs := 0, 0, 0
	sizeSum := 0
	for _, it := range tr.Items {
		if it.Kind != KindInstr {
			continue
		}
		instrs++
		specs += len(it.In.Specs)
		if it.In.Info().BranchDispSize > 0 {
			disps++
		}
		sizeSum += it.In.Size()
	}
	perInstr := float64(specs) / float64(instrs)
	if perInstr < 1.2 || perInstr > 1.8 {
		t.Errorf("specifiers/instruction = %.2f, paper says 1.48", perInstr)
	}
	dispPer := float64(disps) / float64(instrs)
	if dispPer < 0.22 || dispPer > 0.42 {
		t.Errorf("branch displacements/instruction = %.2f, paper says 0.31", dispPer)
	}
	avgSize := float64(sizeSum) / float64(instrs)
	if avgSize < 3.2 || avgSize > 4.6 {
		t.Errorf("average instruction size = %.2f bytes, paper says 3.8", avgSize)
	}
}

func TestGenerateEventHeadways(t *testing.T) {
	tr, err := Generate(TimesharingA(80000))
	if err != nil {
		t.Fatal(err)
	}
	instrs, ints, switches, sirr := 0, 0, 0, 0
	for _, it := range tr.Items {
		switch it.Kind {
		case workItemInstr:
			instrs++
			if it.In.Op == vax.LDPCTX {
				switches++
			}
			if it.In.SIRR {
				sirr++
			}
		case KindInterrupt:
			ints++
		}
	}
	if ints == 0 || switches == 0 || sirr == 0 {
		t.Fatalf("events missing: int=%d switch=%d sirr=%d", ints, switches, sirr)
	}
	intHeadway := float64(instrs) / float64(ints)
	if intHeadway < 400 || intHeadway > 900 {
		t.Errorf("interrupt headway = %.0f, paper says 637", intHeadway)
	}
	swHeadway := float64(instrs) / float64(switches)
	if swHeadway < 3500 || swHeadway > 12000 {
		t.Errorf("context switch headway = %.0f, paper says 6418", swHeadway)
	}
}

const workItemInstr = KindInstr

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range AllProfiles(2500) {
		tr, err := Generate(p)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if tr.Instructions() < 2500 {
			t.Errorf("%s: only %d instructions", p.Name, tr.Instructions())
		}
	}
}
