package workload

import "math/rand"

// DataSpace is the per-process data address engine. It hands out operand
// virtual addresses with a two-level locality structure: a small hot
// working set that mostly hits the 8 KB cache and 64-entry process TB
// half, plus a long cold tail that drives the miss rates the paper
// reports (0.10 D-stream cache read misses and 0.020 D-stream TB misses
// per instruction, §4.2). Strings live in their own sequential region —
// "the relatively poor locality of character strings" (§5).
type DataSpace struct {
	rng *rand.Rand

	hotBase   uint32
	hotPages  int
	coldBase  uint32
	coldPages int
	coldFrac  float64

	strBase uint32
	strSpan uint32
	strNext uint32

	ptrBase uint32

	unalignedProb float64
}

const dsPage = 512

// DataConfig sets a process's data locality.
type DataConfig struct {
	Base          uint32  // region base VA (process-unique)
	HotPages      int     // hot working set, in 512-byte pages
	ColdPages     int     // cold tail size
	ColdFrac      float64 // probability a scalar access goes cold
	UnalignedProb float64 // probability a scalar operand is unaligned
}

// NewDataSpace builds a data address engine.
func NewDataSpace(rng *rand.Rand, cfg DataConfig) *DataSpace {
	hot := cfg.HotPages
	if hot < 1 {
		hot = 8
	}
	cold := cfg.ColdPages
	if cold < 1 {
		cold = 256
	}
	d := &DataSpace{
		rng:           rng,
		hotBase:       cfg.Base,
		hotPages:      hot,
		coldBase:      cfg.Base + uint32(hot*dsPage),
		coldPages:     cold,
		coldFrac:      cfg.ColdFrac,
		unalignedProb: cfg.UnalignedProb,
	}
	d.strBase = d.coldBase + uint32(cold*dsPage)
	d.strSpan = 256 * dsPage
	d.strNext = d.strBase
	d.ptrBase = d.strBase + d.strSpan
	return d
}

// Scalar returns an operand address for a scalar of the given size and
// whether the access is unaligned.
func (d *DataSpace) Scalar(size int) (uint32, bool) {
	var page uint32
	if d.rng.Float64() < d.coldFrac {
		page = d.coldBase + uint32(d.rng.Intn(d.coldPages))*dsPage
	} else {
		page = d.hotBase + uint32(d.rng.Intn(d.hotPages))*dsPage
	}
	if size < 1 {
		size = 4
	}
	slots := dsPage / size
	off := uint32(d.rng.Intn(slots) * size)
	unaligned := size >= 4 && d.rng.Float64() < d.unalignedProb
	if unaligned {
		off = (off + 2) % (dsPage - 4)
	}
	return page + off, unaligned
}

// String returns the base address of an n-byte string operand. Strings
// walk forward through their own region, so successive string operations
// touch fresh cache blocks.
func (d *DataSpace) String(n int) uint32 {
	va := d.strNext
	adv := uint32((n + 7) &^ 7)
	d.strNext += adv
	if d.strNext >= d.strBase+d.strSpan {
		d.strNext = d.strBase
	}
	return va
}

// Pointer returns the address holding an indirection pointer for a
// deferred addressing mode; pointers live with the hot scalars.
func (d *DataSpace) Pointer() uint32 {
	page := d.hotBase + uint32(d.rng.Intn(d.hotPages))*dsPage
	return page + uint32(d.rng.Intn(dsPage/4)*4)
}
