package workload

import (
	"math/rand"

	"vax780/internal/vax"
)

// FragWeights are the relative frequencies of control-flow fragments the
// generator emits. They are chosen per profile so the dynamic instruction
// mix reproduces Tables 1 and 2 of the paper.
type FragWeights struct {
	Straight float64 // run of scalar instructions
	Cond     float64 // conditional branch (plus BRB/BRW)
	Loop     float64 // counted loop (SOB/AOB/ACB), ~10 iterations
	BitBr    float64 // bit branch (FIELD group)
	LowBit   float64 // BLBS/BLBC
	Sub      float64 // BSB/JSB ... RSB subroutine
	Proc     float64 // CALLS ... RET procedure
	Jmp      float64 // JMP
	Case     float64 // CASEx
	Char     float64 // character string instruction
	Decimal  float64 // packed decimal instruction
	Syscall  float64 // CHMK ... kernel ... REI
}

// ScalarWeights are the relative frequencies of scalar instruction
// categories within straight-line code.
type ScalarWeights struct {
	Moves, Arith, Bool, Cmp, Cvt, Push, MoveAddr float64
	Field, Float, FloatMul, IntMulDiv            float64
}

// Profile parameterizes one synthetic workload, standing in for one of
// the paper's five measurement experiments.
type Profile struct {
	Name         string
	Seed         int64
	Instructions int // dynamic instructions to generate
	Users        int // simulated processes (the paper: 15/30/40/40/32)

	Frag   FragWeights
	Scalar ScalarWeights

	// Branch behaviour (Table 2).
	PCondTaken   float64 // conditional branches (BRB/BRW are always taken)
	PBitTaken    float64
	PLowBitTaken float64
	LoopContinue float64 // per-iteration continue probability (0.9 → ~10 iterations)

	// Specifier mode distributions (Table 4).
	Spec1    ModeDist
	SpecN    ModeDist
	IdxProb1 float64
	IdxProbN float64

	// Data-dependent operand sizes.
	RegCountMin, RegCountMax int
	StrLenMin, StrLenMax     int
	DigitsMin, DigitsMax     int

	// Locality.
	Data DataConfig // Base is assigned per process

	// VMS event headways in instructions (Table 7).
	InterruptHeadway int
	SoftIntHeadway   int
	CtxSwitchHeadway int

	// Activities optionally gives each simulated user a session script:
	// a rotation of phases (edit, compile, compute, ...) whose scale
	// factors modulate the base mix while active. Empty means the
	// stationary base mix.
	Activities []Activity

	// IdleFraction is the share of instructions spent in the VMS Null
	// process (branch-to-self awaiting an interrupt). The paper EXCLUDES
	// the Null process from measurement because it "would bias all
	// per-instruction statistics in proportion to the idleness of the
	// system" (§2.2); a nonzero value here reproduces that bias.
	IdleFraction float64
}

// Address-space layout: each process gets a 16 MB slot holding its code
// (low half) and data (high half); kernel code and handlers live in
// system space.
const (
	procSlotBase   = 0x0010_0000
	procSlotSize   = 0x0100_0000
	procDataOffset = 0x0080_0000
	kernelCodeBase = 0x8000_1000
	sysDataBase    = 0x8800_0000
)

// routine is a reusable static code body (subroutine, procedure, kernel
// service routine, or interrupt handler).
type routine struct {
	entry uint32
	body  []*vax.Instr // protos, including the terminating return
}

// proc is one simulated process.
type proc struct {
	asid  uint32
	cur   uint32 // code layout cursor
	data  *DataSpace
	subs  []*routine
	procs []*routine

	// session-script state
	act     int // current activity index
	actLeft int // instructions remaining in the activity
}

// Generator synthesizes one workload trace.
type Generator struct {
	p    Profile
	rng  *rand.Rand
	prog *Program

	items []*Item
	procs []*proc
	cur   int

	sysCur  uint32
	sysData *DataSpace
	kernel  []*routine
	handler []*routine
	sched   *routine

	nInstr   int
	nextInt  int
	nextCtx  int
	nextSirr int

	// phase replay state: programs re-execute their code, so recorded
	// spans of the trace are replayed through a backward ACBL (an outer
	// loop). This is what gives the I-stream its locality.
	phase     []*Item
	phaseGoal int

	// Sampler sets: index 0 is the base mix; indexes 1..n correspond to
	// Profile.Activities.
	scalarSamplers [][]weightedCat
	fragSamplers   [][]weightedFrag
	err            error
}

type weightedCat struct {
	ops *opSampler
	w   float64
}

type weightedFrag struct {
	f func()
	w float64
}

// Generate synthesizes the trace for a profile.
func Generate(p Profile) (*Trace, error) {
	if p.Instructions <= 0 {
		p.Instructions = 100_000
	}
	if p.Users <= 0 {
		p.Users = 8
	}
	g := &Generator{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		prog: NewProgram(),
	}
	g.sysCur = kernelCodeBase
	g.sysData = NewDataSpace(g.rng, DataConfig{
		Base:          sysDataBase,
		HotPages:      p.Data.HotPages,
		ColdPages:     p.Data.ColdPages,
		ColdFrac:      p.Data.ColdFrac,
		UnalignedProb: p.Data.UnalignedProb,
	})
	for i := 0; i < p.Users; i++ {
		asid := uint32(i + 1)
		slot := uint32(procSlotBase) + uint32(i)*procSlotSize
		d := p.Data
		d.Base = slot + procDataOffset
		pr := &proc{
			asid: asid,
			cur:  slot,
			data: NewDataSpace(g.rng, d),
		}
		if n := len(p.Activities); n > 0 {
			// Stagger session phases across users so even short runs
			// sample the whole script.
			pr.act = i % n
			mean := p.Activities[pr.act].MeanLen
			if mean < 1 {
				mean = 1000
			}
			pr.actLeft = 1 + g.rng.Intn(2*mean)
		}
		g.procs = append(g.procs, pr)
	}
	g.buildSamplers()
	g.scheduleEvents()

	g.phaseGoal = g.newPhaseGoal()
	for g.nInstr < p.Instructions && g.err == nil {
		if g.nInstr >= g.nextInt {
			// Interrupts break the recorded phase (their delivery is not
			// part of the process's repeatable control flow).
			g.phase = nil
			g.emitInterrupt()
			continue
		}
		if g.nInstr >= g.nextSirr {
			g.emitSoftIntRequest()
			continue
		}
		if g.p.IdleFraction > 0 && g.rng.Float64() < g.p.IdleFraction/2 {
			g.emitIdle()
			continue
		}
		if len(g.phase) >= g.phaseGoal {
			g.replayPhase()
			g.phase = nil
			g.phaseGoal = g.newPhaseGoal()
		}
		g.emitFragment()
	}
	if g.err != nil {
		return nil, g.err
	}
	return &Trace{Name: p.Name, Program: g.prog, Items: g.items}, nil
}

func (g *Generator) scheduleEvents() {
	g.nextInt = g.headway(g.p.InterruptHeadway)
	g.nextCtx = g.headway(g.p.CtxSwitchHeadway)
	g.nextSirr = g.headway(g.p.SoftIntHeadway)
}

// headway returns the next event time as an exponential interval from now.
func (g *Generator) headway(mean int) int {
	if mean <= 0 {
		return 1 << 30
	}
	iv := int(g.rng.ExpFloat64() * float64(mean))
	if iv < 1 {
		iv = 1
	}
	return g.nInstr + iv
}

func (g *Generator) buildSamplers() {
	g.scalarSamplers = append(g.scalarSamplers, g.buildScalarSampler(g.p.Scalar))
	g.fragSamplers = append(g.fragSamplers, g.buildFragSampler(g.p.Frag))
	for _, act := range g.p.Activities {
		g.scalarSamplers = append(g.scalarSamplers,
			g.buildScalarSampler(scaledScalar(g.p.Scalar, act.Scalar)))
		g.fragSamplers = append(g.fragSamplers,
			g.buildFragSampler(scaledFrag(g.p.Frag, act.Frag)))
	}
}

func (g *Generator) buildScalarSampler(s ScalarWeights) []weightedCat {
	return []weightedCat{
		{newOpSampler(movesOps), s.Moves},
		{newOpSampler(arithOps), s.Arith},
		{newOpSampler(boolOps), s.Bool},
		{newOpSampler(cmpOps), s.Cmp},
		{newOpSampler(cvtOps), s.Cvt},
		{newOpSampler([]weightedOp{{vax.PUSHL, 1}}), s.Push},
		{newOpSampler(moveAddrOps), s.MoveAddr},
		{newOpSampler(fieldOps), s.Field},
		{newOpSampler(floatOps), s.Float},
		{newOpSampler(floatMulOps), s.FloatMul},
		{newOpSampler(intMulDivOps), s.IntMulDiv},
	}
}

func (g *Generator) buildFragSampler(f FragWeights) []weightedFrag {
	return []weightedFrag{
		{g.fragStraight, f.Straight},
		{g.fragCond, f.Cond},
		{g.fragLoop, f.Loop},
		{g.fragBitBr, f.BitBr},
		{g.fragLowBit, f.LowBit},
		{g.fragSub, f.Sub},
		{g.fragProc, f.Proc},
		{g.fragJmp, f.Jmp},
		{g.fragCase, f.Case},
		{g.fragChar, f.Char},
		{g.fragDecimal, f.Decimal},
		{g.fragSyscall, f.Syscall},
	}
}

// samplerIndex returns the sampler set index for the current process's
// activity (0 = base mix when no script is configured).
func (g *Generator) samplerIndex() int {
	if len(g.p.Activities) == 0 {
		return 0
	}
	return 1 + g.curProc().act
}

// advanceScript rotates the current process to its next scripted activity
// when the current one's duration is exhausted.
func (g *Generator) advanceScript(emitted int) {
	if len(g.p.Activities) == 0 {
		return
	}
	p := g.curProc()
	p.actLeft -= emitted
	if p.actLeft > 0 {
		return
	}
	p.act = (p.act + 1) % len(g.p.Activities)
	mean := g.p.Activities[p.act].MeanLen
	if mean < 1 {
		mean = 1000
	}
	p.actLeft = 1 + int(g.rng.ExpFloat64()*float64(mean))
}

func (g *Generator) emitFragment() {
	before := g.nInstr
	sampler := g.fragSamplers[g.samplerIndex()]
	total := 0.0
	for _, wf := range sampler {
		total += wf.w
	}
	x := g.rng.Float64() * total
	done := false
	for _, wf := range sampler {
		x -= wf.w
		if x <= 0 {
			wf.f()
			done = true
			break
		}
	}
	if !done {
		g.fragStraight()
	}
	g.advanceScript(g.nInstr - before)
}

func (g *Generator) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

func (g *Generator) curProc() *proc { return g.procs[g.cur] }

// lay places a proto at the cursor, materializing its bytes.
func (g *Generator) lay(cursor *uint32, in *vax.Instr) {
	in.PC = *cursor
	if err := g.prog.PutInstr(in); err != nil {
		g.fail(err)
	}
	*cursor += uint32(in.Size())
}

func (g *Generator) layMain(in *vax.Instr) { g.lay(&g.curProc().cur, in) }

// exec appends one executed instruction to the trace and records it in
// the current replay phase.
func (g *Generator) exec(in *vax.Instr) *Item {
	it := &Item{Kind: KindInstr, In: in}
	g.items = append(g.items, it)
	g.nInstr++
	g.phase = append(g.phase, it)
	return it
}

func (g *Generator) newPhaseGoal() int {
	return 90 + g.rng.Intn(160)
}

// replayPhase re-executes the recorded phase one to three more times via
// a backward ACBL — the outer loop of a program working through its job.
// Replayed instructions reuse their recorded operand addresses, giving
// both the I-stream and the D-stream their temporal locality.
func (g *Generator) replayPhase() {
	if len(g.phase) == 0 {
		return
	}
	p := g.curProc()
	start := g.phase[0].In.PC
	acbl := g.newInstr(vax.ACBL)
	acbl.PC = p.cur
	next := p.cur + uint32(acbl.Size())
	disp := int64(start) - int64(next)
	if disp < -30000 || disp > -4 {
		return // out of word-displacement range or not a backward jump
	}
	acbl.BranchDisp = int32(disp)
	if err := g.prog.PutInstr(acbl); err != nil {
		g.fail(err)
		return
	}
	p.cur = next

	seq := append([]*Item(nil), g.phase...)
	replays := 1 + g.rng.Intn(3)
	for i := 0; i <= replays; i++ {
		// A due software-interrupt request ends the outer loop early so
		// the request's Table 7 headway is not stretched by replay.
		another := i < replays && g.nInstr < g.nextSirr
		lb := clone(acbl)
		g.bind(lb, p.data)
		lb.Taken = another
		lb.Target = start
		g.exec(lb)
		if !lb.Taken {
			break
		}
		// Interrupts keep firing at their usual rate during replays; the
		// handler resumes at the phase start the ACBL just jumped to.
		if g.nInstr >= g.nextInt {
			g.nextInt = g.headway(g.p.InterruptHeadway)
			g.deliverInterrupt(start)
		}
		for _, it := range seq {
			// Re-execute the identical item: same instruction object,
			// same control flow, same operand addresses.
			g.items = append(g.items, it)
			g.nInstr++
		}
	}
}

// clone copies a proto for one dynamic execution.
func clone(p *vax.Instr) *vax.Instr {
	c := *p
	c.Specs = append([]vax.Specifier(nil), p.Specs...)
	return &c
}

// bind assigns the runtime operand addresses of one dynamic execution.
func (g *Generator) bind(in *vax.Instr, d *DataSpace) {
	info := in.Info()
	for i := range in.Specs {
		sp := &in.Specs[i]
		if !sp.Mode.IsMemory() {
			continue
		}
		size := info.Specs[i].Type.Size()
		if sp.Mode == vax.ModeAbsolute {
			// The absolute address is static (encoded); keep it.
			continue
		}
		addr, unaligned := d.Scalar(size)
		sp.Addr = addr
		sp.Unaligned = unaligned
		if sp.Mode.IsDeferred() {
			sp.PtrAddr = d.Pointer()
		}
	}
}

// execClone binds and executes one dynamic copy of a proto.
func (g *Generator) execClone(p *vax.Instr, d *DataSpace) *vax.Instr {
	c := clone(p)
	g.bind(c, d)
	g.exec(c)
	return c
}

// newScalar builds a fresh scalar instruction proto with sampled
// specifier modes and static fields.
func (g *Generator) newScalar() *vax.Instr {
	sampler := g.scalarSamplers[g.samplerIndex()]
	total := 0.0
	for _, c := range sampler {
		total += c.w
	}
	x := g.rng.Float64() * total
	var ops *opSampler
	for _, c := range sampler {
		x -= c.w
		if x <= 0 {
			ops = c.ops
			break
		}
	}
	if ops == nil {
		ops = sampler[0].ops
	}
	return g.newInstr(ops.sample(g.rng))
}

// newInstr builds a proto for op with sampled specifiers.
func (g *Generator) newInstr(op vax.Opcode) *vax.Instr {
	info := op.Info()
	in := &vax.Instr{Op: op}
	for i, t := range info.Specs {
		in.Specs = append(in.Specs, g.buildSpec(i, t))
	}
	switch info.Flow {
	case vax.FlowFieldExt, vax.FlowFieldIns:
		in.FieldLen = 1 + g.rng.Intn(31)
	}
	return in
}

// buildSpec samples one specifier's static form.
func (g *Generator) buildSpec(slot int, t vax.SpecTemplate) vax.Specifier {
	dist, idxProb := &g.p.SpecN, g.p.IdxProbN
	if slot == 0 {
		dist, idxProb = &g.p.Spec1, g.p.IdxProb1
	}
	mode := dist.sample(g.rng, t.Access, t.Type)
	sp := vax.Specifier{Mode: mode, Reg: g.rng.Intn(12), Index: -1}
	switch mode {
	case vax.ModeLiteral:
		sp.Disp = int32(g.rng.Intn(64))
	case vax.ModeImmediate:
		sp.Disp = g.rng.Int31n(1 << 16)
	case vax.ModeByteDisp, vax.ModeByteDispDeferred:
		sp.Disp = int32(g.rng.Intn(250) - 124)
	case vax.ModeWordDisp, vax.ModeWordDispDeferred:
		sp.Disp = int32(g.rng.Intn(60000) - 30000)
	case vax.ModeLongDisp, vax.ModeLongDispDeferred:
		sp.Disp = g.rng.Int31n(1<<20) - 1<<19
	case vax.ModeAbsolute:
		sp.Addr = sysDataBase + uint32(g.rng.Intn(64))*dsPage +
			uint32(g.rng.Intn(dsPage/4)*4)
	}
	if mode.IsMemory() && mode != vax.ModeAbsolute && g.rng.Float64() < idxProb {
		sp.Index = g.rng.Intn(12)
	}
	return sp
}

func (g *Generator) rngRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}
