package workload

import "vax780/internal/vax"

// fragStraight emits a short run of scalar instructions.
func (g *Generator) fragStraight() {
	n := 2 + g.rng.Intn(5)
	p := g.curProc()
	for i := 0; i < n; i++ {
		in := g.newScalar()
		g.layMain(in)
		g.bind(in, p.data)
		g.exec(in)
	}
}

// layFillers emits k static (never executed) scalar instructions at the
// cursor — the not-taken path of a forward branch — and returns the
// total gap in bytes.
func (g *Generator) layFillers(cursor *uint32, k int) uint32 {
	start := *cursor
	for i := 0; i < k; i++ {
		g.lay(cursor, g.newScalar())
	}
	return *cursor - start
}

// emitForwardBranch lays op at the cursor, choosing taken/untaken, and
// emits its execution. Taken branches skip a filler gap.
func (g *Generator) emitForwardBranch(in *vax.Instr, taken bool) {
	p := g.curProc()
	if !taken {
		in.BranchDisp = 4 // never interpreted
		in.Taken = false
		g.layMain(in)
		g.bind(in, p.data)
		g.exec(in)
		return
	}
	// Lay the branch with a displacement covering 1-3 filler instructions.
	in.PC = p.cur
	size := uint32(in.Size())
	fillerStart := p.cur + size
	gapCursor := fillerStart
	gap := g.layFillers(&gapCursor, 1+g.rng.Intn(3))
	in.BranchDisp = int32(gap)
	in.Taken = true
	in.Target = fillerStart + gap
	if err := g.prog.PutInstr(in); err != nil {
		g.fail(err)
	}
	p.cur = in.Target
	g.bind(in, p.data)
	g.exec(in)
}

// fragCond emits one simple conditional branch (or BRB/BRW, which share
// the flow and are always taken).
func (g *Generator) fragCond() {
	op := newOpSampler(condBrOps).sample(g.rng)
	in := g.newInstr(op)
	taken := g.rng.Float64() < g.p.PCondTaken
	if op == vax.BRB || op == vax.BRW {
		taken = true
	}
	g.emitForwardBranch(in, taken)
}

// fragBitBr emits a bit branch (FIELD group).
func (g *Generator) fragBitBr() {
	op := newOpSampler(bitBrOps).sample(g.rng)
	g.emitForwardBranch(g.newInstr(op), g.rng.Float64() < g.p.PBitTaken)
}

// fragLowBit emits a low-bit test branch.
func (g *Generator) fragLowBit() {
	op := vax.BLBS
	if g.rng.Intn(2) == 0 {
		op = vax.BLBC
	}
	g.emitForwardBranch(g.newInstr(op), g.rng.Float64() < g.p.PLowBitTaken)
}

// fragLoop emits a counted loop: a static body closed by a loop branch,
// iterated a geometric number of times (91% taken ≈ 10 iterations avg).
func (g *Generator) fragLoop() {
	p := g.curProc()
	bodyStart := p.cur
	n := 2 + g.rng.Intn(3)
	body := make([]*vax.Instr, 0, n)
	for i := 0; i < n; i++ {
		in := g.newScalar()
		g.lay(&p.cur, in)
		body = append(body, in)
	}

	op := newOpSampler(loopBrOps).sample(g.rng)
	lop := g.newInstr(op)
	lop.PC = p.cur
	next := p.cur + uint32(lop.Size())
	disp := int32(bodyStart) - int32(next)
	if op.Info().BranchDispSize == 1 && disp < -127 {
		// The body outgrew a byte displacement; ACBL carries a word.
		op = vax.ACBL
		lop = g.newInstr(op)
		lop.PC = p.cur
		next = p.cur + uint32(lop.Size())
		disp = int32(bodyStart) - int32(next)
	}
	lop.BranchDisp = disp
	if err := g.prog.PutInstr(lop); err != nil {
		g.fail(err)
	}
	p.cur = next

	iters := 1
	for g.rng.Float64() < g.p.LoopContinue && iters < 40 {
		iters++
	}
	for it := 0; it < iters; it++ {
		for _, b := range body {
			g.execClone(b, p.data)
		}
		lb := clone(lop)
		g.bind(lb, p.data)
		lb.Taken = it < iters-1
		lb.Target = bodyStart
		g.exec(lb)
	}
}

// newRoutine lays a routine body at the cursor and returns it.
func (g *Generator) newRoutine(cursor *uint32, body []*vax.Instr) *routine {
	r := &routine{entry: *cursor}
	for _, in := range body {
		g.lay(cursor, in)
	}
	r.body = body
	return r
}

// layRoutineInline places a routine in the falling-through code path,
// jumping over it with an executed BRB/BRW (how compilers lay out local
// procedures). The jump-over executes as a taken unconditional branch.
func (g *Generator) layRoutineInline(body []*vax.Instr) *routine {
	p := g.curProc()
	bodyBytes := 0
	for _, b := range body {
		bodyBytes += b.Size()
	}
	op := vax.BRB
	if bodyBytes > 120 {
		op = vax.BRW
	}
	br := &vax.Instr{Op: op}
	br.PC = p.cur
	br.BranchDisp = int32(bodyBytes)
	br.Taken = true
	br.Target = p.cur + uint32(br.Size()) + uint32(bodyBytes)
	if err := g.prog.PutInstr(br); err != nil {
		g.fail(err)
	}
	p.cur += uint32(br.Size())
	r := g.newRoutine(&p.cur, body)
	g.exec(br)
	return r
}

// callRoutine executes a routine's body; the final instruction (a return)
// gets its runtime target and register count.
func (g *Generator) callRoutine(r *routine, d *DataSpace, retTarget uint32, regCount int) {
	for i, b := range r.body {
		c := clone(b)
		g.bind(c, d)
		if i == len(r.body)-1 {
			c.Taken = true
			c.Target = retTarget
			c.RegCount = regCount
		}
		g.exec(c)
	}
}

// fragSub emits a subroutine call: BSBB/BSBW (or JSB when out of
// displacement range) into an RSB-terminated routine.
func (g *Generator) fragSub() {
	p := g.curProc()

	// Prune subroutines that have drifted out of BSBW range.
	live := p.subs[:0]
	for _, s := range p.subs {
		if int64(p.cur)-int64(s.entry) < 30_000 {
			live = append(live, s)
		}
	}
	p.subs = live

	if len(p.subs) < 5 || g.rng.Float64() < 0.25 {
		// Create a new subroutine inline, jumping over it.
		n := 3 + g.rng.Intn(5)
		body := make([]*vax.Instr, 0, n+1)
		for i := 0; i < n; i++ {
			body = append(body, g.newScalar())
		}
		body = append(body, g.newInstr(vax.RSB))
		p.subs = append(p.subs, g.layRoutineInline(body))
	}

	r := p.subs[g.rng.Intn(len(p.subs))]
	var call *vax.Instr
	dist := int64(p.cur) - int64(r.entry)
	switch {
	case g.rng.Float64() < 0.10:
		call = g.newInstr(vax.JSB)
		call.Specs = []vax.Specifier{{
			Mode: vax.ModeLongDisp, Reg: g.rng.Intn(12),
			Disp: int32(r.entry), Addr: r.entry, Index: -1,
		}}
	case dist < 120:
		call = &vax.Instr{Op: vax.BSBB}
	default:
		call = &vax.Instr{Op: vax.BSBW}
	}
	call.PC = p.cur
	ret := p.cur + uint32(call.Size())
	if call.Op != vax.JSB {
		call.BranchDisp = int32(r.entry) - int32(ret)
	}
	call.Taken = true
	call.Target = r.entry
	if err := g.prog.PutInstr(call); err != nil {
		g.fail(err)
	}
	p.cur = ret
	g.exec(call)
	g.callRoutine(r, p.data, ret, 0)
}

// fragProc emits a procedure call: CALLS into a RET-terminated routine,
// with PUSHR/POPR pairs in some bodies (the CALL/RET group of Table 1).
func (g *Generator) fragProc() {
	p := g.curProc()
	if len(p.procs) < 4 || g.rng.Float64() < 0.2 {
		var body []*vax.Instr
		pushpop := g.rng.Float64() < 0.4
		if pushpop {
			body = append(body, g.newInstr(vax.PUSHR))
		}
		n := 3 + g.rng.Intn(6)
		for i := 0; i < n; i++ {
			body = append(body, g.newScalar())
		}
		if pushpop {
			body = append(body, g.newInstr(vax.POPR))
		}
		body = append(body, g.newInstr(vax.RET))
		p.procs = append(p.procs, g.layRoutineInline(body))
	}

	r := p.procs[g.rng.Intn(len(p.procs))]
	call := g.newInstr(vax.CALLS)
	call.Specs[0] = vax.Specifier{Mode: vax.ModeLiteral, Disp: int32(g.rng.Intn(5)), Index: -1}
	call.Specs[1] = vax.Specifier{
		Mode: vax.ModeLongDisp, Reg: g.rng.Intn(12),
		Disp: int32(r.entry), Addr: r.entry, Index: -1,
	}
	call.Taken = true
	call.Target = r.entry
	call.RegCount = g.rngRange(g.p.RegCountMin, g.p.RegCountMax)
	g.layMain(call)
	retPC := p.cur
	g.exec(call)

	regs := call.RegCount
	for i, b := range r.body {
		c := clone(b)
		g.bind(c, p.data)
		switch c.Op {
		case vax.PUSHR, vax.POPR:
			c.RegCount = g.rngRange(g.p.RegCountMin, g.p.RegCountMax)
		case vax.RET:
			c.Taken = true
			c.Target = retPC
			c.RegCount = regs
		}
		_ = i
		g.exec(c)
	}
}

// fragJmp emits an unconditional JMP via an address specifier.
func (g *Generator) fragJmp() {
	p := g.curProc()
	in := g.newInstr(vax.JMP)
	// Fix the target specifier's shape BEFORE sizing: the displacement
	// value doesn't change the encoded length, the mode does.
	in.Specs[0] = vax.Specifier{
		Mode: vax.ModeLongDisp, Reg: g.rng.Intn(12), Index: -1,
	}
	in.PC = p.cur
	gapCursor := p.cur + uint32(in.Size())
	gap := g.layFillers(&gapCursor, 1+g.rng.Intn(2))
	target := p.cur + uint32(in.Size()) + gap
	in.Specs[0].Disp = int32(target)
	in.Specs[0].Addr = target
	in.Taken = true
	in.Target = target
	if err := g.prog.PutInstr(in); err != nil {
		g.fail(err)
	}
	p.cur = target
	g.exec(in)
}

// fragCase emits a CASEx dispatch: the word-offset table follows the
// instruction in the I-stream; execution continues at the first arm.
func (g *Generator) fragCase() {
	p := g.curProc()
	ops := []vax.Opcode{vax.CASEB, vax.CASEW, vax.CASEL}
	in := g.newInstr(ops[g.rng.Intn(3)])
	in.PC = p.cur
	arms := 2 + g.rng.Intn(4)
	tableBytes := uint32(2 * arms)
	target := p.cur + uint32(in.Size()) + tableBytes
	in.Taken = true
	in.Target = target
	if err := g.prog.PutInstr(in); err != nil {
		g.fail(err)
	}
	p.cur = target // skip the (data) dispatch table
	g.bind(in, p.data)
	g.exec(in)
}

// fragChar emits one character-string instruction.
func (g *Generator) fragChar() {
	p := g.curProc()
	op := newOpSampler(charOps).sample(g.rng)
	in := g.newInstr(op)
	in.StrLen = g.rngRange(g.p.StrLenMin, g.p.StrLenMax)
	// The length operand is the short literal when it fits.
	if in.StrLen < 64 {
		in.Specs[0] = vax.Specifier{Mode: vax.ModeLiteral, Disp: int32(in.StrLen), Index: -1}
	}
	g.layMain(in)
	g.bind(in, p.data)
	// String operands come from the string region, not the scalar pools.
	// Absolute-mode specifiers keep their encoded address — it is part of
	// the instruction bytes and must stay consistent with the image.
	info := in.Info()
	for i := range in.Specs {
		if info.Specs[i].Access != vax.AccAddress {
			continue
		}
		if in.Specs[i].Mode != vax.ModeAbsolute {
			in.Specs[i].Addr = p.data.String(in.StrLen)
		}
		in.Specs[i].Unaligned = false
	}
	g.exec(in)
}

// fragDecimal emits one packed-decimal instruction.
func (g *Generator) fragDecimal() {
	p := g.curProc()
	op := newOpSampler(decimalOps).sample(g.rng)
	in := g.newInstr(op)
	in.Digits = g.rngRange(g.p.DigitsMin, g.p.DigitsMax)
	g.layMain(in)
	g.bind(in, p.data)
	info := in.Info()
	for i := range in.Specs {
		if info.Specs[i].Access == vax.AccAddress && in.Specs[i].Mode != vax.ModeAbsolute {
			in.Specs[i].Addr = p.data.String(in.Digits/2 + 1)
			in.Specs[i].Unaligned = false
		}
	}
	g.exec(in)
}

// newKernelBody builds a kernel routine body: privileged operations mixed
// with scalars, ending in term.
func (g *Generator) newKernelBody(n int, kernelFrac float64, term vax.Opcode) []*vax.Instr {
	kOps := newOpSampler(kernelOps)
	body := make([]*vax.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		if g.rng.Float64() < kernelFrac {
			body = append(body, g.newInstr(kOps.sample(g.rng)))
		} else {
			body = append(body, g.newScalar())
		}
	}
	body = append(body, g.newInstr(term))
	return body
}

// fragSyscall emits a system service: CHMK into a kernel routine ending
// in REI.
func (g *Generator) fragSyscall() {
	p := g.curProc()
	if len(g.kernel) < 4 {
		body := g.newKernelBody(8+g.rng.Intn(7), 0.3, vax.REI)
		g.kernel = append(g.kernel, g.newRoutine(&g.sysCur, body))
	}
	r := g.kernel[g.rng.Intn(len(g.kernel))]

	chmk := g.newInstr(vax.CHMK)
	chmk.Specs[0] = vax.Specifier{Mode: vax.ModeLiteral, Disp: int32(g.rng.Intn(60)), Index: -1}
	chmk.Taken = true
	chmk.Target = r.entry
	g.layMain(chmk)
	retPC := p.cur
	g.exec(chmk)
	g.callRoutine(r, g.sysData, retPC, 0)
}

// newSIRRInstr builds the MTPR that posts a software interrupt request
// (the distinct micro-address behind Table 7's request counts).
func (g *Generator) newSIRRInstr() *vax.Instr {
	in := g.newInstr(vax.MTPR)
	in.Specs[0] = vax.Specifier{Mode: vax.ModeLiteral, Disp: 4, Index: -1}
	in.Specs[1] = vax.Specifier{Mode: vax.ModeLiteral, Disp: 0x14, Index: -1} // PR$_SIRR
	in.SIRR = true
	return in
}

// emitInterrupt delivers an interrupt: the machine runs the interrupt
// microcode, then the handler instructions execute, ending in REI back to
// the interrupted stream. Every CtxSwitchHeadway instructions the handler
// is the scheduler, which SVPCTX/LDPCTXes to the next process.
func (g *Generator) emitInterrupt() {
	g.nextInt = g.headway(g.p.InterruptHeadway)
	if g.nInstr >= g.nextCtx && len(g.procs) > 1 {
		g.emitContextSwitch()
		return
	}
	g.deliverInterrupt(g.curProc().cur)
	g.phase = nil // handler items are not part of the process's phase
}

// deliverInterrupt runs an ordinary (non-rescheduling) interrupt handler,
// resuming the interrupted stream at resume.
func (g *Generator) deliverInterrupt(resume uint32) {
	if len(g.handler) < 3 {
		body := g.newKernelBody(9+g.rng.Intn(9), 0.22, vax.REI)
		g.handler = append(g.handler, g.newRoutine(&g.sysCur, body))
	}
	r := g.handler[g.rng.Intn(len(g.handler))]
	g.items = append(g.items, &Item{Kind: KindInterrupt, HandlerPC: r.entry})
	g.callRoutine(r, g.sysData, resume, 0)
}

// emitSoftIntRequest emits the MTPR that posts a software interrupt
// request inline in the current stream. The request must not be
// multiplied by phase replay, or the Table 7 headway shrinks; requests
// therefore end the recorded phase.
func (g *Generator) emitSoftIntRequest() {
	in := g.newSIRRInstr()
	g.layMain(in)
	g.exec(in)
	g.nextSirr = g.headway(g.p.SoftIntHeadway)
	g.phase = nil
}

// emitContextSwitch delivers the rescheduling interrupt: SVPCTX, the
// scheduler's bookkeeping, LDPCTX of the next process, REI into it.
func (g *Generator) emitContextSwitch() {
	g.nextCtx = g.headway(g.p.CtxSwitchHeadway)
	if g.sched == nil {
		var body []*vax.Instr
		body = append(body, g.newInstr(vax.SVPCTX))
		for i := 0; i < 5; i++ {
			body = append(body, g.newScalar())
		}
		body = append(body, g.newInstr(vax.LDPCTX))
		for i := 0; i < 2; i++ {
			body = append(body, g.newScalar())
		}
		body = append(body, g.newInstr(vax.REI))
		g.sched = g.newRoutine(&g.sysCur, body)
	}

	next := (g.cur + 1 + g.rng.Intn(len(g.procs)-1)) % len(g.procs)
	g.items = append(g.items, &Item{Kind: KindInterrupt, HandlerPC: g.sched.entry})
	for i, b := range g.sched.body {
		c := clone(b)
		g.bind(c, g.sysData)
		it := g.exec(c)
		switch c.Op {
		case vax.LDPCTX:
			it.SwitchTo = g.procs[next].asid
			g.cur = next
		case vax.REI:
			c.Taken = true
			c.Target = g.curProc().cur
		}
		_ = i
	}
	g.phase = nil // the new process starts a fresh phase
}

// emitIdle emits a burst of the VMS Null process: a branch-to-self spin
// awaiting an interrupt. The static loop is a single BRB whose target is
// itself; each trace item is one (taken) execution of it.
func (g *Generator) emitIdle() {
	p := g.curProc()
	br := &vax.Instr{Op: vax.BRB, BranchDisp: -2, Taken: true}
	br.PC = p.cur
	br.Target = p.cur
	if err := g.prog.PutInstr(br); err != nil {
		g.fail(err)
	}
	p.cur += uint32(br.Size())
	// ~20 spins per burst at IdleFraction/2 burst probability against
	// ~8-instruction fragments approximates the requested idle share.
	n := 10 + g.rng.Intn(20)
	for i := 0; i < n; i++ {
		c := clone(br)
		if i == n-1 {
			// The final spin falls out of the loop (an interrupt would
			// break it on the real machine): untaken exit.
			c.Taken = false
		}
		g.exec(c)
	}
	g.phase = nil // idle is not replayable program content
}
