package workload

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := Generate(TimesharingA(4000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q != %q", got.Name, orig.Name)
	}
	if len(got.Items) != len(orig.Items) {
		t.Fatalf("items %d != %d", len(got.Items), len(orig.Items))
	}
	for i := range orig.Items {
		a, b := orig.Items[i], got.Items[i]
		if a.Kind != b.Kind {
			t.Fatalf("item %d kind", i)
		}
		if a.Kind != KindInstr {
			if a.HandlerPC != b.HandlerPC {
				t.Fatalf("item %d handler", i)
			}
			continue
		}
		if a.In.Op != b.In.Op || a.In.PC != b.In.PC || a.In.Taken != b.In.Taken ||
			a.In.Target != b.In.Target || len(a.In.Specs) != len(b.In.Specs) {
			t.Fatalf("item %d instruction differs", i)
		}
	}
	if got.Program.Bytes() != orig.Program.Bytes() {
		t.Errorf("program bytes %d != %d", got.Program.Bytes(), orig.Program.Bytes())
	}
	// Every materialized byte must survive.
	checked := 0
	for _, it := range orig.Items {
		if it.Kind != KindInstr {
			continue
		}
		for off := 0; off < it.In.Size(); off++ {
			va := it.In.PC + uint32(off)
			ob, _ := orig.Program.Byte(va)
			gb, ok := got.Program.Byte(va)
			if !ok || gb != ob {
				t.Fatalf("byte %#x differs", va)
			}
		}
		if checked++; checked > 300 {
			break
		}
	}
	checkPCChain(t, got)
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage trace accepted")
	}
}
