package workload

// spec1SamplerDist and specNSamplerDist are the Table 4 distributions
// with the literal and immediate weights boosted to compensate for the
// write/modify/address operand slots where those modes are illegal and
// re-sampled away; the EXECUTED distribution then matches Table 4.
func spec1SamplerDist() ModeDist {
	d := Spec1Table4()
	d.Literal *= 1.25
	d.Immediate *= 1.3
	return d
}

func specNSamplerDist() ModeDist {
	d := SpecNTable4()
	d.Literal *= 2.6
	d.Immediate *= 2.6
	return d
}

// baseProfile returns the common parameterization: fragment and scalar
// weights that reproduce the composite Table 1/Table 2 mix, specifier
// mode distributions from Table 4, branch behaviour from Table 2, operand
// sizes from the Table 9 discussion (≈8 registers per CALL+RET pair,
// 36-44 character strings), locality tuned to the §4.2 miss rates, and
// the Table 7 event headways.
func baseProfile() Profile {
	return Profile{
		Users: 15,
		Frag: FragWeights{
			Straight: 59.5,
			Cond:     193,
			// Phase replays close with ACBL loop branches; the explicit
			// loop weight is reduced so the combined loop-branch rate
			// matches Table 2's 4.1%.
			Loop:    3.2,
			BitBr:   43,
			LowBit:  20,
			Sub:     22,
			Proc:    12,
			Jmp:     3,
			Case:    9,
			Char:    4.3,
			Decimal: 0.3,
			Syscall: 3,
		},
		Scalar: ScalarWeights{
			Moves: 240, Arith: 110, Bool: 35, Cmp: 75, Cvt: 18,
			Push: 25, MoveAddr: 12,
			Field: 26, Float: 30, FloatMul: 4, IntMulDiv: 5,
		},
		PCondTaken:   0.51, // conditionals only; BRB/BRW always branch → 56% for the class
		PBitTaken:    0.44,
		PLowBitTaken: 0.41,
		LoopContinue: 0.90, // ≈10 iterations, 91% taken

		Spec1: spec1SamplerDist(),
		SpecN: specNSamplerDist(),
		// Index probabilities are conditional on a memory base mode
		// (≈43% of specifiers), so these reproduce Table 4's 8.5%/4.2%
		// of ALL specifiers.
		IdxProb1: 0.20,
		IdxProbN: 0.10,

		RegCountMin: 2, RegCountMax: 6,
		StrLenMin: 16, StrLenMax: 63,
		DigitsMin: 6, DigitsMax: 14,

		Data: DataConfig{
			HotPages:      7,
			ColdPages:     150,
			ColdFrac:      0.030,
			UnalignedProb: 0.032,
		},

		InterruptHeadway: 637,
		SoftIntHeadway:   2539,
		CtxSwitchHeadway: 6418,
	}
}

// TimesharingA is the research group's lightly loaded machine:
// text editing, program development, electronic mail; ~15 users.
func TimesharingA(instructions int) Profile {
	p := baseProfile()
	p.Name = "TIMESHARING-A"
	p.Seed = 1984_01
	p.Instructions = instructions
	p.Users = 15
	return p
}

// TimesharingB is the CPU-development group's machine: general
// timesharing plus circuit simulation and microcode development; ~30
// users, heavier load.
func TimesharingB(instructions int) Profile {
	p := baseProfile()
	p.Name = "TIMESHARING-B"
	p.Seed = 1984_02
	p.Instructions = instructions
	p.Users = 30
	// Circuit simulation adds floating point and tighter loops.
	p.Scalar.Float *= 1.6
	p.Scalar.FloatMul *= 1.8
	p.Frag.Loop *= 1.2
	return p
}

// RTEEducational is the RTE script: 40 simulated users doing program
// development in various languages and file manipulation.
func RTEEducational(instructions int) Profile {
	p := baseProfile()
	p.Name = "RTE-EDU"
	p.Seed = 1984_03
	p.Instructions = instructions
	p.Users = 40
	// RTE workloads are scripted by construction: canned user sessions
	// rotating through editing, compiling, computing and file phases.
	p.Activities = SessionScript()
	// Compilers: more procedure linkage and character handling.
	p.Frag.Proc *= 1.3
	p.Frag.Char *= 1.4
	p.Scalar.Field *= 1.2
	p.Scalar.Float *= 0.5
	p.Scalar.FloatMul *= 0.5
	return p
}

// RTEScientific is the RTE script: 40 simulated users doing scientific
// computation and program development.
func RTEScientific(instructions int) Profile {
	p := baseProfile()
	p.Name = "RTE-SCI"
	p.Seed = 1984_04
	p.Instructions = instructions
	p.Users = 40
	p.Activities = SessionScript()
	p.Scalar.Float *= 2.6
	p.Scalar.FloatMul *= 2.8
	p.Scalar.IntMulDiv *= 2.0
	p.Frag.Loop *= 1.4
	p.Frag.Char *= 0.4
	p.Frag.Decimal = 0
	return p
}

// RTECommercial is the RTE script: 32 simulated users doing transactional
// database inquiries and updates.
func RTECommercial(instructions int) Profile {
	p := baseProfile()
	p.Name = "RTE-COM"
	p.Seed = 1984_05
	p.Instructions = instructions
	p.Users = 32
	p.Activities = SessionScript()
	p.Frag.Char *= 3.2
	p.Frag.Decimal *= 6
	p.Frag.Syscall *= 1.5
	p.Scalar.Float *= 0.25
	p.Scalar.FloatMul *= 0.25
	return p
}

// AllProfiles returns the five experiments of the paper, each generating
// the given number of instructions. The composite workload of the paper
// is the SUM of the five UPC histograms (§2.2).
func AllProfiles(instructionsEach int) []Profile {
	return []Profile{
		TimesharingA(instructionsEach),
		TimesharingB(instructionsEach),
		RTEEducational(instructionsEach),
		RTEScientific(instructionsEach),
		RTECommercial(instructionsEach),
	}
}
