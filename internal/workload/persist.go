package workload

import (
	"encoding/gob"
	"fmt"
	"io"
)

// programGob is the wire form of a Program (its maps are unexported).
type programGob struct {
	Pages map[uint32][]byte
	Used  map[uint32][]bool
}

// GobEncode implements gob.GobEncoder for the sparse code image.
func (p *Program) GobEncode() ([]byte, error) {
	pg := programGob{
		Pages: make(map[uint32][]byte, len(p.pages)),
		Used:  make(map[uint32][]bool, len(p.used)),
	}
	for k, v := range p.pages {
		pg.Pages[k] = v[:]
	}
	for k, v := range p.used {
		pg.Used[k] = v[:]
	}
	var buf writerBuffer
	if err := gob.NewEncoder(&buf).Encode(pg); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// GobDecode implements gob.GobDecoder.
func (p *Program) GobDecode(data []byte) error {
	var pg programGob
	if err := gob.NewDecoder(&readerBuffer{b: data}).Decode(&pg); err != nil {
		return err
	}
	p.pages = make(map[uint32]*[pageSize]byte, len(pg.Pages))
	p.used = make(map[uint32]*[pageSize]bool, len(pg.Used))
	for k, v := range pg.Pages {
		if len(v) != pageSize {
			return fmt.Errorf("workload: bad page size %d in trace file", len(v))
		}
		page := new([pageSize]byte)
		copy(page[:], v)
		p.pages[k] = page
	}
	for k, v := range pg.Used {
		if len(v) != pageSize {
			return fmt.Errorf("workload: bad used-map size %d in trace file", len(v))
		}
		used := new([pageSize]bool)
		copy(used[:], v)
		p.used[k] = used
	}
	return nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuffer struct {
	b []byte
	i int
}

func (r *readerBuffer) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// WriteTo serializes the complete trace (program image + items), so a
// generated workload can be archived and replayed bit-identically — or a
// user-supplied trace in the same format can be run on the measured
// machine.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(t); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := gob.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if t.Program == nil {
		return nil, fmt.Errorf("workload: trace file has no program image")
	}
	return t, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
