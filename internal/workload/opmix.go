package workload

import (
	"math/rand"

	"vax780/internal/vax"
)

// ModeDist is an operand specifier addressing-mode distribution; the
// weights follow Table 4 of the paper (SPEC1 and SPEC2-6 differ).
type ModeDist struct {
	Register   float64
	Literal    float64
	Immediate  float64
	Disp       float64 // all displacement widths
	RegDef     float64
	AutoInc    float64
	AutoDec    float64
	DispDef    float64
	Absolute   float64
	AutoIncDef float64
}

// Spec1Table4 is the first-specifier mode distribution of Table 4.
func Spec1Table4() ModeDist {
	return ModeDist{
		Register: 28.7, Literal: 21.1, Immediate: 3.2, Disp: 25.0,
		RegDef: 9.5, AutoInc: 6.0, AutoDec: 2.0, DispDef: 3.0,
		Absolute: 1.0, AutoIncDef: 0.5,
	}
}

// SpecNTable4 is the specifier 2-6 mode distribution of Table 4.
func SpecNTable4() ModeDist {
	return ModeDist{
		Register: 52.6, Literal: 10.8, Immediate: 1.7, Disp: 12.6,
		RegDef: 8.5, AutoInc: 5.4, AutoDec: 2.4, DispDef: 3.4,
		Absolute: 2.2, AutoIncDef: 0.5,
	}
}

// dispWidths selects among byte/word/long displacements; reference [15]
// of the paper: byte most often, longword less often, word least.
var dispWidths = []struct {
	mode vax.AddrMode
	w    float64
}{
	{vax.ModeByteDisp, 0.55},
	{vax.ModeLongDisp, 0.27},
	{vax.ModeWordDisp, 0.18},
}

// sample draws an addressing mode subject to the access constraints of
// the operand slot.
func (md *ModeDist) sample(rng *rand.Rand, acc vax.Access, t vax.DataType) vax.AddrMode {
	type entry struct {
		mode vax.AddrMode
		w    float64
	}
	entries := []entry{
		{vax.ModeRegister, md.Register},
		{vax.ModeLiteral, md.Literal},
		{vax.ModeImmediate, md.Immediate},
		{vax.ModeByteDisp, md.Disp}, // width refined below
		{vax.ModeRegDeferred, md.RegDef},
		{vax.ModeAutoIncrement, md.AutoInc},
		{vax.ModeAutoDecrement, md.AutoDec},
		{vax.ModeByteDispDeferred, md.DispDef},
		{vax.ModeAbsolute, md.Absolute},
		{vax.ModeAutoIncDeferred, md.AutoIncDef},
	}
	// Access constraints: literals/immediates are read-only data; address
	// operands must be in memory; wide immediates do not fit the IB.
	writeLike := acc == vax.AccWrite || acc == vax.AccModify
	addrLike := acc == vax.AccAddress
	wideImm := t == vax.TypeQuad || t == vax.TypeDFloat
	total := 0.0
	for i := range entries {
		e := &entries[i]
		if (writeLike || addrLike) && (e.mode == vax.ModeLiteral || e.mode == vax.ModeImmediate) {
			e.w = 0
		}
		if acc == vax.AccVField && (e.mode == vax.ModeLiteral || e.mode == vax.ModeImmediate) {
			e.w = 0
		}
		if addrLike && e.mode == vax.ModeRegister {
			e.w = 0
		}
		if wideImm && e.mode == vax.ModeImmediate {
			e.w = 0
		}
		total += e.w
	}
	x := rng.Float64() * total
	for i := range entries {
		x -= entries[i].w
		if x <= 0 {
			m := entries[i].mode
			switch m {
			case vax.ModeByteDisp:
				return sampleDispWidth(rng, false)
			case vax.ModeByteDispDeferred:
				return sampleDispWidth(rng, true)
			}
			return m
		}
	}
	return vax.ModeRegister
}

func sampleDispWidth(rng *rand.Rand, deferred bool) vax.AddrMode {
	x := rng.Float64()
	for _, dw := range dispWidths {
		x -= dw.w
		if x <= 0 {
			if deferred {
				switch dw.mode {
				case vax.ModeByteDisp:
					return vax.ModeByteDispDeferred
				case vax.ModeWordDisp:
					return vax.ModeWordDispDeferred
				default:
					return vax.ModeLongDispDeferred
				}
			}
			return dw.mode
		}
	}
	if deferred {
		return vax.ModeByteDispDeferred
	}
	return vax.ModeByteDisp
}

// weightedOp is an opcode with a relative frequency weight.
type weightedOp struct {
	op vax.Opcode
	w  float64
}

// opSampler draws opcodes from a weighted set.
type opSampler struct {
	ops   []weightedOp
	total float64
}

func newOpSampler(ops []weightedOp) *opSampler {
	s := &opSampler{ops: ops}
	for _, o := range ops {
		s.total += o.w
	}
	return s
}

func (s *opSampler) sample(rng *rand.Rand) vax.Opcode {
	x := rng.Float64() * s.total
	for _, o := range s.ops {
		x -= o.w
		if x <= 0 {
			return o.op
		}
	}
	return s.ops[len(s.ops)-1].op
}

// Scalar opcode sets by category. The weights within a category are
// arbitrary (the histogram cannot distinguish sharers anyway); the
// weights ACROSS categories are set per profile.
var (
	movesOps = []weightedOp{
		{vax.MOVL, 55}, {vax.MOVB, 12}, {vax.MOVW, 8}, {vax.MOVQ, 2},
		{vax.CLRL, 12}, {vax.CLRB, 3}, {vax.CLRW, 2}, {vax.CLRQ, 0.5},
		{vax.MOVPSL, 0.3},
	}
	arithOps = []weightedOp{
		{vax.ADDL2, 22}, {vax.ADDL3, 10}, {vax.SUBL2, 14}, {vax.SUBL3, 6},
		{vax.INCL, 16}, {vax.DECL, 10}, {vax.ADDB2, 3}, {vax.SUBB2, 2},
		{vax.ADDW2, 2}, {vax.SUBW2, 1}, {vax.INCW, 2}, {vax.DECW, 1},
		{vax.INCB, 2}, {vax.DECB, 1}, {vax.MNEGL, 2},
		{vax.ADWC, 0.5}, {vax.SBWC, 0.5}, {vax.ASHL, 3},
	}
	boolOps = []weightedOp{
		{vax.BISL2, 8}, {vax.BISL3, 2}, {vax.BICL2, 6}, {vax.BICL3, 2},
		{vax.BICB2, 2}, {vax.XORL2, 2}, {vax.XORL3, 1}, {vax.MCOML, 1},
		{vax.BITL, 4}, {vax.BITB, 3},
	}
	cmpOps = []weightedOp{
		{vax.CMPL, 16}, {vax.CMPB, 8}, {vax.CMPW, 4},
		{vax.TSTL, 14}, {vax.TSTB, 5}, {vax.TSTW, 2},
	}
	cvtOps = []weightedOp{
		{vax.MOVZBL, 6}, {vax.MOVZWL, 4}, {vax.CVTBL, 2}, {vax.CVTWL, 2},
		{vax.CVTLB, 1}, {vax.CVTLW, 1}, {vax.CVTWB, 0.5},
	}
	moveAddrOps = []weightedOp{
		{vax.MOVAL, 4}, {vax.MOVAB, 3}, {vax.PUSHAL, 2}, {vax.PUSHAB, 2},
	}
	condBrOps = []weightedOp{
		{vax.BEQL, 24}, {vax.BNEQ, 22}, {vax.BGTR, 8}, {vax.BLEQ, 7},
		{vax.BGEQ, 9}, {vax.BLSS, 8}, {vax.BGTRU, 3}, {vax.BLEQU, 2},
		{vax.BVC, 0.5}, {vax.BVS, 0.5}, {vax.BCC, 3}, {vax.BCS, 3},
		{vax.BRB, 7}, {vax.BRW, 3},
	}
	loopBrOps = []weightedOp{
		{vax.SOBGTR, 35}, {vax.SOBGEQ, 15}, {vax.AOBLSS, 30},
		{vax.AOBLEQ, 10}, {vax.ACBL, 8}, {vax.ACBW, 2},
	}
	fieldOps = []weightedOp{
		{vax.EXTZV, 30}, {vax.EXTV, 20}, {vax.INSV, 20},
		{vax.FFS, 6}, {vax.FFC, 3}, {vax.CMPV, 3}, {vax.CMPZV, 3},
	}
	bitBrOps = []weightedOp{
		{vax.BBS, 28}, {vax.BBC, 26}, {vax.BBSS, 18}, {vax.BBCC, 14},
		{vax.BBCS, 7}, {vax.BBSC, 7},
	}
	floatOps = []weightedOp{
		{vax.ADDF2, 16}, {vax.ADDF3, 8}, {vax.SUBF2, 10}, {vax.SUBF3, 4},
		{vax.MOVF, 18}, {vax.CMPF, 8}, {vax.TSTF, 4},
		{vax.CVTLF, 5}, {vax.CVTFL, 5},
		{vax.ADDD2, 3}, {vax.SUBD2, 2}, {vax.MOVD, 3}, {vax.CMPD, 1},
	}
	floatMulOps = []weightedOp{
		{vax.MULF2, 10}, {vax.MULF3, 6}, {vax.DIVF2, 4}, {vax.DIVF3, 2},
		{vax.MULD2, 2}, {vax.DIVD2, 1},
	}
	intMulDivOps = []weightedOp{
		{vax.MULL2, 10}, {vax.MULL3, 6}, {vax.DIVL2, 4}, {vax.DIVL3, 3},
		{vax.EMUL, 1}, {vax.EDIV, 1},
	}
	charOps = []weightedOp{
		{vax.MOVC3, 45}, {vax.MOVC5, 18}, {vax.CMPC3, 10}, {vax.CMPC5, 4},
		{vax.LOCC, 12}, {vax.SKPC, 4}, {vax.SCANC, 4}, {vax.SPANC, 2},
		{vax.MOVTC, 1},
	}
	decimalOps = []weightedOp{
		{vax.ADDP4, 20}, {vax.ADDP6, 8}, {vax.SUBP4, 12}, {vax.SUBP6, 4},
		{vax.CMPP3, 8}, {vax.CMPP4, 4}, {vax.MOVP, 16},
		{vax.CVTLP, 8}, {vax.CVTPL, 8}, {vax.CVTPT, 3}, {vax.CVTTP, 2},
		{vax.MULP, 3}, {vax.DIVP, 2}, {vax.ASHP, 2}, {vax.EDITPC, 1},
	}
	kernelOps = []weightedOp{
		{vax.MTPR, 20}, {vax.MFPR, 14}, {vax.INSQUE, 8}, {vax.REMQUE, 7},
		{vax.PROBER, 6}, {vax.PROBEW, 3},
	}
)
